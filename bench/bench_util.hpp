// Shared helpers for the per-table/figure benchmark harnesses.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation on the synthetic stand-in suite. GALA_BENCH_SCALE (default 0.5)
// multiplies all stand-in sizes; raise it for slower, closer-to-paper runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "gala/common/json.hpp"
#include "gala/common/table.hpp"
#include "gala/common/timer.hpp"
#include "gala/graph/standin.hpp"
#include "gala/profiler/profiler.hpp"
#include "gala/telemetry/telemetry.hpp"

namespace gala::bench {

inline double scale_from_env(double fallback = 0.5) {
  if (const char* env = std::getenv("GALA_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0) return s;
  }
  return fallback;
}

struct NamedGraph {
  std::string abbr;
  graph::Graph graph;
};

/// Loads the stand-in suite (all seven graphs, or the listed subset).
inline std::vector<NamedGraph> load_suite(double scale,
                                          const std::vector<std::string>& subset = {}) {
  const auto& abbrs = subset.empty() ? graph::standin_abbrs() : subset;
  std::vector<NamedGraph> out;
  out.reserve(abbrs.size());
  for (const auto& a : abbrs) {
    out.push_back({a, graph::make_standin(a, scale)});
  }
  return out;
}

inline void print_header(const std::string& title, const std::string& paper_ref, double scale) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("Reproduces: %s | stand-in scale %.2f (GALA_BENCH_SCALE)\n\n", paper_ref.c_str(),
              scale);
}

/// Machine-readable sidecar for a bench binary: collects flat key/value rows
/// and writes BENCH_<name>.json next to the stdout table, so per-PR bench
/// trajectories can be tracked by tooling instead of scraped from text.
///
/// Enabled when GALA_BENCH_JSON_DIR names a writable directory (unset =
/// disabled, every call is a no-op). Usage:
///   bench::JsonRecord rec("fig08", scale);
///   rec.row().field("graph", "LJ").field("decide_ms", 12.5);
///   ...
///   rec.save();
class JsonRecord {
 public:
  JsonRecord(std::string name, double scale) : name_(std::move(name)) {
    const char* dir = std::getenv("GALA_BENCH_JSON_DIR");
    if (dir == nullptr || *dir == '\0') return;
    enabled_ = true;
    path_ = std::string(dir) + "/BENCH_" + name_ + ".json";
    // GALA_BENCH_PROFILE=1 additionally captures the per-kernel
    // hardware-counter profile over the bench's lifetime and attaches it to
    // the sidecar as a "profile" member (the perf-diff gate's input).
    if (const char* p = std::getenv("GALA_BENCH_PROFILE");
        p != nullptr && *p != '\0' && std::strcmp(p, "0") != 0) {
      profiling_ = true;
      auto& prof = profiler::Profiler::global();
      prof.reset();
      prof.set_enabled(true);
    }
    w_.begin_object();
    w_.key("bench").value(name_);
    w_.key("scale").value(scale);
    w_.key("rows").begin_array();
  }

  bool enabled() const { return enabled_; }

  /// Begins a new row (closing any open one).
  JsonRecord& row() {
    if (!enabled_) return *this;
    close_row();
    w_.begin_object();
    row_open_ = true;
    return *this;
  }

  JsonRecord& field(const std::string& key, const std::string& value) {
    if (enabled_) w_.key(key).value(value);
    return *this;
  }
  JsonRecord& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  JsonRecord& field(const std::string& key, double value) {
    if (enabled_) w_.key(key).value(value);
    return *this;
  }
  JsonRecord& field(const std::string& key, std::uint64_t value) {
    if (enabled_) w_.key(key).value(value);
    return *this;
  }

  /// Closes the document and writes the file. Idempotent; ~JsonRecord calls
  /// it as a safety net.
  void save() {
    if (!enabled_ || saved_) return;
    close_row();
    w_.end_array();
    if (profiling_) {
      w_.key("profile").begin_object();
      profiler::Profiler::global().append_report(w_);
      w_.end_object();
    }
    w_.end_object();
    telemetry::write_file(path_, w_.str());
    std::printf("wrote %s\n", path_.c_str());
    saved_ = true;
  }

  ~JsonRecord() { save(); }

 private:
  void close_row() {
    if (row_open_) {
      w_.end_object();
      row_open_ = false;
    }
  }

  std::string name_;
  std::string path_;
  JsonWriter w_;
  bool enabled_ = false;
  bool profiling_ = false;
  bool row_open_ = false;
  bool saved_ = false;
};

}  // namespace gala::bench
