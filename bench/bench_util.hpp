// Shared helpers for the per-table/figure benchmark harnesses.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation on the synthetic stand-in suite. GALA_BENCH_SCALE (default 0.5)
// multiplies all stand-in sizes; raise it for slower, closer-to-paper runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gala/common/table.hpp"
#include "gala/common/timer.hpp"
#include "gala/graph/standin.hpp"

namespace gala::bench {

inline double scale_from_env(double fallback = 0.5) {
  if (const char* env = std::getenv("GALA_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0) return s;
  }
  return fallback;
}

struct NamedGraph {
  std::string abbr;
  graph::Graph graph;
};

/// Loads the stand-in suite (all seven graphs, or the listed subset).
inline std::vector<NamedGraph> load_suite(double scale,
                                          const std::vector<std::string>& subset = {}) {
  const auto& abbrs = subset.empty() ? graph::standin_abbrs() : subset;
  std::vector<NamedGraph> out;
  out.reserve(abbrs.size());
  for (const auto& a : abbrs) {
    out.push_back({a, graph::make_standin(a, scale)});
  }
  return out;
}

inline void print_header(const std::string& title, const std::string& paper_ref, double scale) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("Reproduces: %s | stand-in scale %.2f (GALA_BENCH_SCALE)\n\n", paper_ref.c_str(),
              scale);
}

}  // namespace gala::bench
