// Deterministic profiler baseline: small fixed graphs through phase 1 with
// every hashtable policy, sequential launches, and the hardware-counter
// profile attached to the JSON sidecar.
//
// All counters this bench emits are modeled (traffic, probe chains, modeled
// cycles) and therefore bit-identical across machines — only the wall_*
// fields vary, and gala_perf_diff ignores those. CI regenerates this bench's
// sidecar and diffs it against the committed copy in bench/baseline/ (see
// bench/baseline/README.md for the refresh procedure).
//
// Run with:
//   GALA_BENCH_JSON_DIR=<dir> GALA_BENCH_PROFILE=1 ./perf_profile
#include "bench_util.hpp"
#include "gala/core/aggregation.hpp"
#include "gala/core/blas_louvain.hpp"
#include "gala/core/bsp_louvain.hpp"
#include "gala/core/gala.hpp"
#include "gala/core/incremental.hpp"
#include "gala/governor/governor.hpp"
#include "gala/graph/generators.hpp"
#include "gala/memtrace/memtrace.hpp"
#include "gala/metrics/health.hpp"
#include "gala/multigpu/dist_louvain.hpp"
#include "gala/query/executor.hpp"
#include "gala/query/store.hpp"
#include "gala/telemetry/flight_recorder.hpp"

int main() {
  using namespace gala;
  bench::print_header("Deterministic per-kernel profile baseline",
                      "perf-regression gate (no paper figure)", 1.0);
  bench::JsonRecord rec("perf_profile", 1.0);

  struct NamedGraph {
    const char* name;
    graph::Graph g;
  };
  graph::PlantedPartitionParams pp;
  pp.num_vertices = 600;
  pp.num_communities = 12;
  pp.avg_degree = 14.0;
  pp.mixing = 0.25;
  pp.seed = 7;
  std::vector<NamedGraph> graphs;
  graphs.push_back({"ring_of_cliques", graph::ring_of_cliques(16, 8)});
  graphs.push_back({"planted", graph::planted_partition(pp)});

  const core::HashTablePolicy policies[] = {core::HashTablePolicy::GlobalOnly,
                                            core::HashTablePolicy::Hierarchical};
  for (const auto& [name, g] : graphs) {
    for (const auto policy : policies) {
      core::BspConfig cfg;
      cfg.kernel = core::KernelMode::HashOnly;  // exercise the hashtable counters
      cfg.hashtable = policy;
      cfg.parallel = false;  // sequential launches: no pool scheduling noise
      memtrace::MemRegistry::global().reset();  // per-row memory accounting
      core::BspLouvainEngine engine(g, cfg);
      const auto r = engine.run();
      const auto mem = memtrace::MemRegistry::global().report();
      double modeled_ms = 0;
      for (const auto& it : r.iterations) {
        modeled_ms += cfg.device.modeled_ms(it.decide_traffic) +
                      cfg.device.modeled_ms(it.update_traffic);
      }
      std::printf("%-16s %-13s Q=%.5f, %u communities, %.4f modeled ms\n", name,
                  core::to_string(policy).c_str(), r.modularity, r.num_communities, modeled_ms);
      // Health summary on the same trajectory: every field is derived from
      // the modeled iteration series, so it baselines bit-identically.
      const auto health = metrics::analyze_iterations(r.iterations, g.num_vertices());
      rec.row()
          .field("graph", name)
          .field("policy", core::to_string(policy))
          .field("modularity", r.modularity)
          .field("communities", static_cast<std::uint64_t>(r.num_communities))
          .field("iterations", static_cast<std::uint64_t>(r.iterations.size()))
          .field("modeled_ms", modeled_ms)
          .field("ws_heap_allocs", r.workspace.heap_allocs)
          .field("ws_peak_bytes", r.workspace.peak_bytes)
          .field("ws_reuse_efficiency", r.workspace.reuse_rate())
          .field("peak_ws_bytes", mem.peak_ws_bytes())
          .field("peak_total_bytes", mem.peak_total_bytes())
          .field("frag_pct", mem.frag_pct())
          .field("health_stalled", static_cast<std::uint64_t>(health.stalled ? 1 : 0))
          .field("health_frontier_half_life", health.frontier_half_life)
          .field("health_churn_peak", health.churn_peak)
          .field("health_churn_mean", health.churn_mean)
          .field("health_ht_probe_trend", health.ht_probe_trend);
    }
  }
  // One shuffle-kernel pass so the profile also covers decide_shuffle.
  {
    core::BspConfig cfg;
    cfg.kernel = core::KernelMode::ShuffleOnly;
    cfg.parallel = false;
    memtrace::MemRegistry::global().reset();
    core::BspLouvainEngine engine(graphs[0].g, cfg);
    const auto r = engine.run();
    const auto mem = memtrace::MemRegistry::global().report();
    std::printf("%-16s %-13s Q=%.5f, %u communities\n", graphs[0].name, "shuffle",
                r.modularity, r.num_communities);
    rec.row()
        .field("graph", graphs[0].name)
        .field("policy", "shuffle")
        .field("modularity", r.modularity)
        .field("communities", static_cast<std::uint64_t>(r.num_communities))
        .field("iterations", static_cast<std::uint64_t>(r.iterations.size()))
        .field("ws_heap_allocs", r.workspace.heap_allocs)
        .field("ws_peak_bytes", r.workspace.peak_bytes)
        .field("ws_reuse_efficiency", r.workspace.reuse_rate())
        .field("peak_ws_bytes", mem.peak_ws_bytes())
        .field("peak_total_bytes", mem.peak_total_bytes())
        .field("frag_pct", mem.frag_pct());
  }
  // Blas-engine rows: phase 1 through the linear-algebra formulation, then
  // the shared SpGEMM contraction of the resulting partition — one row per
  // accumulator. Everything is modeled (traffic, flops, probe chains,
  // occupancy), so the rows baseline bit-identically; the phase-1 trajectory
  // is engine-independent, so modularity/iterations match the BSP rows above.
  for (const auto& [name, g] : graphs) {
    for (const auto acc : {blas::Accumulator::Hash, blas::Accumulator::Sorted}) {
      core::BspConfig cfg;
      cfg.parallel = false;
      blas::Tuning tuning;
      tuning.accumulator = acc;
      memtrace::MemRegistry::global().reset();
      core::BlasPhase1Stats phase_stats;
      const auto r = core::blas_phase1(g, cfg, tuning, &phase_stats);
      blas::SpgemmStats spgemm;
      const auto agg = core::aggregate(g, r.community, nullptr, tuning, &spgemm);
      const auto mem = memtrace::MemRegistry::global().report();
      double modeled_ms = 0;
      for (const auto& it : r.iterations) {
        modeled_ms += cfg.device.modeled_ms(it.decide_traffic) +
                      cfg.device.modeled_ms(it.update_traffic);
      }
      const char* policy = acc == blas::Accumulator::Hash ? "blas_hash" : "blas_sorted";
      std::printf("%-16s %-13s Q=%.5f, %u communities, %.4f modeled ms, "
                  "%llu spgemm flops\n",
                  name, policy, r.modularity, r.num_communities, modeled_ms,
                  static_cast<unsigned long long>(spgemm.flops));
      rec.row()
          .field("graph", name)
          .field("policy", policy)
          .field("modularity", r.modularity)
          .field("communities", static_cast<std::uint64_t>(r.num_communities))
          .field("iterations", static_cast<std::uint64_t>(r.iterations.size()))
          .field("modeled_ms", modeled_ms)
          .field("pull_iterations", static_cast<std::uint64_t>(phase_stats.pull_iterations))
          .field("push_iterations", static_cast<std::uint64_t>(phase_stats.push_iterations))
          .field("direction_switches", static_cast<std::uint64_t>(phase_stats.direction_switches))
          .field("gathered_rows", phase_stats.gathered_rows)
          .field("spgemm_flops", spgemm.flops)
          .field("spgemm_nnz", spgemm.nnz)
          .field("spgemm_max_row_nnz", spgemm.max_row_nnz)
          .field("spgemm_hash_probes", spgemm.hash_probes)
          .field("spgemm_mean_occupancy", spgemm.mean_occupancy)
          .field("coarse_vertices", static_cast<std::uint64_t>(agg.coarse.num_vertices()))
          .field("ws_heap_allocs", r.workspace.heap_allocs)
          .field("ws_peak_bytes", r.workspace.peak_bytes)
          .field("ws_reuse_efficiency", r.workspace.reuse_rate())
          .field("peak_ws_bytes", mem.peak_ws_bytes())
          .field("peak_total_bytes", mem.peak_total_bytes())
          .field("frag_pct", mem.frag_pct());
    }
  }
  // Distributed rows: the blocking baseline and the async overlap +
  // compressed-delta pipeline on the same graph. Every field is modeled and
  // bit-deterministic (the sync trajectory is independent of host thread
  // scheduling), so comm_bytes gates at zero growth and overlap_efficiency
  // at no-drop in gala_perf_diff.
  {
    const auto g = graph::ring_of_cliques(24, 16);
    for (const bool overlap : {false, true}) {
      multigpu::DistributedConfig cfg;
      cfg.num_gpus = 2;
      cfg.comm_cost.ring_convention = true;
      cfg.overlap = overlap;
      cfg.compress = overlap;
      memtrace::MemRegistry::global().reset();
      const auto r = multigpu::distributed_phase1(g, cfg);
      const auto mem = memtrace::MemRegistry::global().report();
      std::uint64_t comm_bytes = 0;
      double hidden_us = 0, overlap_ratio = 0;
      for (const auto& d : r.devices) {
        comm_bytes += d.comm.bytes;
        hidden_us += d.comm.hidden_us;
        overlap_ratio = std::max(overlap_ratio, d.comm.overlap_ratio());
      }
      std::uint64_t sync_bytes = 0, sync_raw_bytes = 0;
      for (const auto& it : r.iteration_log) {
        sync_bytes += it.sync_bytes;
        sync_raw_bytes += it.sync_raw_bytes;
      }
      std::printf("%-16s %-13s Q=%.5f, %d iterations, %.4f modeled ms, %llu comm bytes\n",
                  "dist_ring_p2", overlap ? "overlap_codec" : "blocking", r.modularity,
                  r.iterations, r.modeled_ms(), static_cast<unsigned long long>(comm_bytes));
      rec.row()
          .field("graph", "dist_ring_p2")
          .field("policy", overlap ? "overlap_codec" : "blocking")
          .field("modularity", r.modularity)
          .field("iterations", static_cast<std::uint64_t>(r.iterations))
          .field("modeled_ms", r.modeled_ms())
          .field("comm_bytes", comm_bytes)
          .field("comm_wait_ms", [&] {
            double worst = 0;
            for (const auto& d : r.devices) worst = std::max(worst, d.comm_modeled_ms());
            return worst;
          }())
          .field("overlap_hidden_us", hidden_us)
          .field("overlap_efficiency", overlap_ratio)
          .field("codec_raw_bytes", sync_raw_bytes)
          .field("codec_packed_bytes", sync_bytes)
          .field("peak_ws_bytes", mem.peak_ws_bytes())
          .field("peak_total_bytes", mem.peak_total_bytes())
          .field("frag_pct", mem.frag_pct());
    }
  }
  // Flight-recorder overhead row: the same sequential phase-1 run with the
  // recorder armed and disarmed. The contract is twofold: the modeled
  // counters must be untouched by instrumentation (flight_overhead_pct
  // compares modeled time and gates absolutely — see gala_perf_diff's
  // "_overhead_pct" rule), and the wall-clock cost of the armed ring stays
  // informational (wall_* keys are skipped by the diff, printed for humans).
  {
    auto& recorder = telemetry::FlightRecorder::global();
    double modeled[2] = {0, 0};  // [disarmed, armed]
    double wall_ms[2] = {0, 0};
    std::uint64_t events = 0;
    for (const int armed : {0, 1}) {
      if (armed) {
        telemetry::FlightRecorder::arm();
      } else {
        telemetry::FlightRecorder::disarm();
      }
      recorder.reset();
      core::BspConfig cfg;
      cfg.parallel = false;
      Timer t;
      core::BspLouvainEngine engine(graphs[1].g, cfg);
      const auto r = engine.run();
      wall_ms[armed] = t.milliseconds();
      for (const auto& it : r.iterations) {
        modeled[armed] += cfg.device.modeled_ms(it.decide_traffic) +
                          cfg.device.modeled_ms(it.update_traffic);
      }
      if (armed) events = recorder.recorded();
    }
    telemetry::FlightRecorder::arm();  // leave the process-wide default
    const double modeled_overhead =
        modeled[0] > 0 ? 100.0 * (modeled[1] - modeled[0]) / modeled[0] : 0.0;
    const double wall_overhead =
        wall_ms[0] > 0 ? 100.0 * (wall_ms[1] - wall_ms[0]) / wall_ms[0] : 0.0;
    std::printf("%-16s %-13s %.4f modeled ms armed vs %.4f disarmed (%+.3f%%), "
                "%llu events, wall %+.2f%%\n",
                "flight_recorder", "overhead", modeled[1], modeled[0], modeled_overhead,
                static_cast<unsigned long long>(events), wall_overhead);
    rec.row()
        .field("graph", "planted")
        .field("policy", "flight_overhead")
        .field("modeled_ms_armed", modeled[1])
        .field("modeled_ms_disarmed", modeled[0])
        .field("flight_overhead_pct", modeled_overhead)
        .field("flight_events", events)
        .field("wall_ms_armed", wall_ms[1])
        .field("wall_ms_disarmed", wall_ms[0])
        .field("wall_flight_overhead_pct", wall_overhead);
  }
  // Memtrace overhead row, same contract as the flight row: the registry
  // only observes allocation sites (it never changes what the engine
  // allocates), so the modeled time delta between armed and disarmed runs
  // must be exactly zero — memtrace_overhead_pct rides the absolute
  // "_overhead_pct" gate. Wall cost of the accounting map is informational.
  {
    double modeled[2] = {0, 0};  // [disarmed, armed]
    double wall_ms[2] = {0, 0};
    std::uint64_t tracked_allocs = 0;
    for (const int armed : {0, 1}) {
      if (armed) {
        memtrace::MemRegistry::arm();
      } else {
        memtrace::MemRegistry::disarm();
      }
      memtrace::MemRegistry::global().reset();
      core::BspConfig cfg;
      cfg.parallel = false;
      Timer t;
      core::BspLouvainEngine engine(graphs[1].g, cfg);
      const auto r = engine.run();
      wall_ms[armed] = t.milliseconds();
      for (const auto& it : r.iterations) {
        modeled[armed] += cfg.device.modeled_ms(it.decide_traffic) +
                          cfg.device.modeled_ms(it.update_traffic);
      }
      if (armed) {
        for (const auto& s : memtrace::MemRegistry::global().report().subsystems) {
          tracked_allocs += s.allocs;
        }
      }
    }
    memtrace::MemRegistry::arm();  // leave the process-wide default
    const double modeled_overhead =
        modeled[0] > 0 ? 100.0 * (modeled[1] - modeled[0]) / modeled[0] : 0.0;
    const double wall_overhead =
        wall_ms[0] > 0 ? 100.0 * (wall_ms[1] - wall_ms[0]) / wall_ms[0] : 0.0;
    std::printf("%-16s %-13s %.4f modeled ms armed vs %.4f disarmed (%+.3f%%), "
                "%llu tracked allocs, wall %+.2f%%\n",
                "memtrace", "overhead", modeled[1], modeled[0], modeled_overhead,
                static_cast<unsigned long long>(tracked_allocs), wall_overhead);
    rec.row()
        .field("graph", "planted")
        .field("policy", "memtrace_overhead")
        .field("modeled_ms_armed", modeled[1])
        .field("modeled_ms_disarmed", modeled[0])
        .field("memtrace_overhead_pct", modeled_overhead)
        .field("memtrace_tracked_allocs", tracked_allocs)
        .field("wall_ms_armed", wall_ms[1])
        .field("wall_ms_disarmed", wall_ms[0])
        .field("wall_memtrace_overhead_pct", wall_overhead);
  }
  // Governor rows: the minimum feasible budget for each stand-in graph under
  // the default sequential config. The probe is a pure function of modeled
  // bytes (binary search over 4096-byte granules, each trial checked for
  // completion + bit-identical partition + peak within budget), so it
  // baselines bit-identically. min_feasible_* rides gala_perf_diff's
  // zero-growth rule: a higher floor means the degradation ladder lost
  // headroom — a robustness regression, not a tuning knob.
  for (const auto& [name, g] : graphs) {
    const auto solve = [&g] {
      core::BspConfig cfg;
      cfg.parallel = false;
      memtrace::MemRegistry::global().reset();
      core::BspLouvainEngine engine(g, cfg);
      return engine.run().community;
    };
    const std::vector<cid_t> reference = solve();
    const std::uint64_t peak = memtrace::MemRegistry::global().report().peak_total_bytes();
    const auto feasible = [&](std::uint64_t budget) {
      governor::BudgetConfig cfg;
      cfg.total_bytes = budget;
      governor::ScopedBudget scoped(cfg);
      std::vector<cid_t> partition;
      try {
        partition = solve();
      } catch (const ResourceExhausted&) {
        return false;
      }
      return memtrace::MemRegistry::global().report().peak_total_bytes() <= budget &&
             partition == reference;
    };
    const std::uint64_t floor = governor::min_feasible_budget(peak, feasible);
    std::printf("%-16s %-13s min feasible budget %llu B (unlimited peak %llu B)\n", name,
                "governor_floor", static_cast<unsigned long long>(floor),
                static_cast<unsigned long long>(peak));
    rec.row()
        .field("graph", name)
        .field("policy", "governor_floor")
        .field("min_feasible_budget_bytes", floor)
        .field("unlimited_peak_bytes", peak);
  }
  // Query-serving rows: a deterministic epoch stream (full run + incremental
  // repairs) published into the snapshot store, then the point and batched
  // read paths. Every gated field — snapshot residency, member-index size,
  // answer checksums, diff cardinality — is a pure function of the seeds,
  // so the rows baseline bit-identically; throughput lives in the separate
  // query_bench sidecar as wall_* fields.
  {
    memtrace::MemRegistry::global().reset();
    query::StoreOptions qopts;
    qopts.max_retained = 4;
    qopts.governor_client = false;
    query::CommunityStore store(qopts);
    const graph::Graph& g = graphs[1].g;  // planted
    const auto initial = core::run_louvain(g);
    store.publish(g, initial);
    graph::Graph current = g;
    std::vector<cid_t> assignment = initial.assignment;
    for (int e = 1; e < 6; ++e) {
      // Heavy cross-community inserts so successive epochs genuinely move
      // vertices — the diff_moved_total gate below must cover real churn.
      std::vector<core::EdgeUpdate> batch;
      for (int i = 0; i < 8; ++i) {
        const auto u = static_cast<vid_t>(splitmix64(300ull * e + i) % current.num_vertices());
        const auto v = static_cast<vid_t>(splitmix64(700ull * e + i) % current.num_vertices());
        batch.push_back({u, v, 24.0, false});
      }
      auto repaired = core::update_communities(current, assignment, batch);
      store.publish(repaired);
      current = std::move(repaired.graph);
      assignment = std::move(repaired.assignment);
    }
    const query::QueryExecutor exec(store, nullptr, /*grain=*/1u << 20);
    query::SnapshotRef snap = store.current();

    // Point path: 4096 deterministic lookups against the newest epoch.
    std::uint64_t point_checksum = 0;
    constexpr std::uint64_t kPointOps = 4096;
    for (std::uint64_t i = 0; i < kPointOps; ++i) {
      point_checksum += exec.community_of(static_cast<vid_t>(
          splitmix64(i ^ 0x9e3779b9ull) % g.num_vertices()));
    }
    std::printf("%-16s %-13s %llu epochs, %zu retained, %llu B resident, checksum %llu\n",
                "planted", "query_point", static_cast<unsigned long long>(store.latest_epoch()),
                store.retained(), static_cast<unsigned long long>(store.resident_bytes()),
                static_cast<unsigned long long>(point_checksum));
    rec.row()
        .field("graph", "planted")
        .field("policy", "query_point")
        .field("ops", kPointOps)
        .field("epochs_published", store.published())
        .field("epochs_retained", static_cast<std::uint64_t>(store.retained()))
        .field("epochs_evicted", store.evicted())
        .field("peak_snapshot_bytes", store.resident_bytes())
        .field("communities", static_cast<std::uint64_t>(snap->num_communities()))
        .field("modularity", snap->modularity())
        .field("checksum", point_checksum);

    // Batched path + every retained cross-epoch diff.
    std::vector<vid_t> queries(2048);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      queries[i] = static_cast<vid_t>(splitmix64(i * 131) % g.num_vertices());
    }
    std::uint64_t batch_checksum = 0;
    for (const cid_t c : exec.community_of(*snap, queries)) batch_checksum += c;
    for (const vid_t s : exec.community_size_of(*snap, queries)) batch_checksum += s;
    std::uint64_t moved_total = 0, diff_pairs = 0;
    for (std::uint64_t i = store.oldest_epoch(); i <= store.latest_epoch(); ++i) {
      for (std::uint64_t j = i + 1; j <= store.latest_epoch(); ++j) {
        moved_total += exec.diff(i, j).moved.size();
        ++diff_pairs;
      }
    }
    std::printf("%-16s %-13s %zu-query batch checksum %llu, %llu diff pairs, %llu moved\n",
                "planted", "query_batch", queries.size(),
                static_cast<unsigned long long>(batch_checksum),
                static_cast<unsigned long long>(diff_pairs),
                static_cast<unsigned long long>(moved_total));
    rec.row()
        .field("graph", "planted")
        .field("policy", "query_batch")
        .field("ops", static_cast<std::uint64_t>(queries.size()))
        .field("peak_snapshot_bytes", store.resident_bytes())
        .field("checksum", batch_checksum)
        .field("diff_pairs", diff_pairs)
        .field("diff_moved_total", moved_total);
  }
  rec.save();
  return 0;
}
