// Figure 8: runtime breakdown of the two-stage pruning optimisation —
//   B  : no pruning at all (DecideAndMove dominates, ~65% in the paper);
//   P1 : MG pruning of DecideAndMove only, weight updating still naive
//        (weight updating becomes the bottleneck, ~46%);
//   P2 : both stages — MG pruning + efficient delta weight update
//        (weight updating accelerated ~7.3x, bottleneck back to Decide).
#include "bench_util.hpp"
#include "gala/core/bsp_louvain.hpp"

int main() {
  using namespace gala;
  const double scale = bench::scale_from_env();
  bench::print_header("Two-stage pruning breakdown (B / P1 / P2)", "Figure 8", scale);

  const auto suite = bench::load_suite(scale);

  TextTable table({"Graph", "stage", "decide ms", "update ms", "other ms", "total ms",
                   "decide%", "update%"});
  bench::JsonRecord rec("fig08_two_stage_breakdown", scale);
  double p1_update_sum = 0, p2_update_sum = 0;

  for (const auto& [abbr, g] : suite) {
    struct Stage {
      const char* name;
      core::PruningStrategy pruning;
      core::WeightUpdateMode update;
    };
    const Stage stages[] = {
        {"B", core::PruningStrategy::None, core::WeightUpdateMode::Recompute},
        {"P1", core::PruningStrategy::ModularityGain, core::WeightUpdateMode::Recompute},
        {"P2", core::PruningStrategy::ModularityGain, core::WeightUpdateMode::Delta},
    };
    for (const Stage& st : stages) {
      core::BspConfig cfg;
      cfg.pruning = st.pruning;
      cfg.weight_update = st.update;
      const auto r = core::bsp_phase1(g, cfg);
      const double total = r.modeled_ms();
      table.row()
          .cell(abbr)
          .cell(st.name)
          .cell(r.decide_modeled_ms, 3)
          .cell(r.update_modeled_ms, 3)
          .cell(r.other_modeled_ms, 3)
          .cell(total, 3)
          .cell(100.0 * r.decide_modeled_ms / total, 1)
          .cell(100.0 * r.update_modeled_ms / total, 1);
      rec.row()
          .field("graph", abbr)
          .field("stage", st.name)
          .field("decide_ms", r.decide_modeled_ms)
          .field("update_ms", r.update_modeled_ms)
          .field("other_ms", r.other_modeled_ms)
          .field("total_ms", total);
      if (st.name[1] == '1') p1_update_sum += r.update_modeled_ms;
      if (st.name[1] == '2') p2_update_sum += r.update_modeled_ms;
    }
  }
  table.print();
  std::printf("\nweight-update speedup P1 -> P2 (suite total): %.1fx (paper: 7.3x)\n",
              p2_update_sum > 0 ? p1_update_sum / p2_update_sum : 0.0);
  std::printf("paper shape: Decide dominates B (65.5%%); update dominates P1 (45.7%%); P2 shifts "
              "the bottleneck back to Decide.\n");
  return 0;
}
