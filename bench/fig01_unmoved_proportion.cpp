// Figure 1(b): proportion of pruned (inactive) and unmoved vertices per
// iteration of phase 1 on the LiveJournal stand-in, under MG pruning.
//
// The paper's observation: as iterations progress, most vertices remain
// unmoved (up to 95%), and MG marks an increasing share of them inactive
// (up to 69%) while never pruning a vertex that would move.
#include "bench_util.hpp"
#include "gala/core/bsp_louvain.hpp"

int main() {
  using namespace gala;
  const double scale = bench::scale_from_env();
  bench::print_header("Pruned (inactive) and unmoved vertices per iteration",
                      "Figure 1(b) — LiveJournal", scale);

  const auto g = graph::make_standin("LJ", scale);
  std::printf("graph LJ (%s): %s\n\n", graph::standin_full_name("LJ").c_str(),
              graph::summary(g).c_str());

  core::BspConfig cfg;
  cfg.pruning = core::PruningStrategy::ModularityGain;
  core::BspLouvainEngine engine(g, cfg);

  TextTable table({"iteration", "inactive%", "unmoved%", "moved", "modularity"});
  const double n = g.num_vertices();
  engine.set_observer([&](int iter, const core::IterationStats& s,
                          std::span<const std::uint8_t> active, std::span<const std::uint8_t>) {
    std::size_t inactive = 0;
    for (const auto a : active) inactive += a == 0;
    table.row()
        .cell(iter)
        .cell(100.0 * static_cast<double>(inactive) / n, 1)
        .cell(100.0 * (n - s.moved) / n, 1)
        .cell(s.moved)
        .cell(s.modularity, 5);
  });
  const auto result = engine.run();
  table.print();

  double peak_inactive = 0;
  for (const auto& it : result.iterations) {
    // inactive share = 1 - active/n
    peak_inactive = std::max(peak_inactive, 1.0 - static_cast<double>(it.active) / n);
  }
  std::printf("\npeak inactive rate: %.1f%% (paper reports up to 69%% on LiveJournal)\n",
              100.0 * peak_inactive);
  std::printf("final modularity: %.5f over %zu iterations\n", result.modularity,
              result.iterations.size());
  return 0;
}
