// Table 4: NMI against ground truth on three LFR benchmark graphs of
// 100k vertices (scaled by GALA_BENCH_SCALE) with different community
// sharpness.
//
// Expected shape (paper): Baseline/MG/SM share the best NMI; RM and PM are
// marginally lower (0.2% / 0.3% average reduction). Graph1 is weakly mixed
// (low NMI ~0.35 regime), Graph2 sharp (~0.92), Graph3 intermediate.
#include "bench_util.hpp"
#include "gala/core/gala.hpp"
#include "gala/graph/generators.hpp"
#include "gala/metrics/nmi.hpp"

int main() {
  using namespace gala;
  const double scale = bench::scale_from_env();
  bench::print_header("NMI vs LFR ground truth across pruning strategies", "Table 4", scale);

  const vid_t n = static_cast<vid_t>(std::max(2000.0, 100000.0 * scale));

  struct LfrSpec {
    std::string name;
    double mixing;
    vid_t min_deg, max_deg;
  };
  // Graph1: heavy mixing (blurry), Graph2: sharp, Graph3: intermediate —
  // chosen to span the paper's three NMI regimes.
  const std::vector<LfrSpec> specs = {
      {"Graph1", 0.58, 5, 50},
      {"Graph2", 0.08, 10, 60},
      {"Graph3", 0.60, 10, 60},
  };
  const std::vector<std::pair<std::string, core::PruningStrategy>> strategies = {
      {"Baseline/MG/SM", core::PruningStrategy::ModularityGain},
      {"RM/MG+RM", core::PruningStrategy::Relaxed},
      {"PM", core::PruningStrategy::Probabilistic},
  };

  TextTable table({"Graph", "#Vertices", "#Edges", "Baseline/MG/SM", "RM/MG+RM", "PM"});
  for (const auto& spec : specs) {
    graph::LfrParams p;
    p.num_vertices = n;
    p.mixing = spec.mixing;
    p.min_degree = spec.min_deg;
    p.max_degree = spec.max_deg;
    p.min_community = 20;
    p.max_community = std::max<vid_t>(40, n / 100);
    p.seed = 97 + static_cast<std::uint64_t>(&spec - specs.data());
    std::vector<cid_t> truth;
    const auto g = graph::lfr(p, truth);

    auto& row = table.row().cell(spec.name).cell(g.num_vertices()).cell(g.num_edges());
    for (const auto& [name, strategy] : strategies) {
      core::GalaConfig cfg;
      cfg.bsp.pruning = strategy;
      const auto result = core::run_louvain(g, cfg);
      row.cell(metrics::nmi(result.assignment, truth), 5);
    }
  }
  table.print();
  std::printf("\npaper shape: Baseline/MG/SM best; RM -0.2%% and PM -0.3%% on average.\n");
  return 0;
}
