// Figure 7: inactive (pruned) proportion per iteration for SM, RM, PM, MG
// and the combined MG+RM on four representative graphs (FR, LJ, TW, UK).
//
// Expected shape (paper): SM prunes almost nothing; RM and PM are
// competitive with MG; MG+RM prunes the most (up to ~92%); all curves rise
// as iterations proceed; PM terminates earliest (aggressive pruning).
#include "bench_util.hpp"
#include "gala/core/bsp_louvain.hpp"

int main() {
  using namespace gala;
  const double scale = bench::scale_from_env();
  bench::print_header("Pruned proportion (inactive rate) per iteration", "Figure 7", scale);

  const std::vector<std::string> graphs = {"FR", "LJ", "TW", "UK"};
  const std::vector<core::PruningStrategy> strategies = {
      core::PruningStrategy::Strict, core::PruningStrategy::Relaxed,
      core::PruningStrategy::Probabilistic, core::PruningStrategy::ModularityGain,
      core::PruningStrategy::MgPlusRelaxed};

  for (const auto& [abbr, g] : bench::load_suite(scale, graphs)) {
    std::printf("--- %s (%s) ---\n", abbr.c_str(), graph::summary(g).c_str());
    // Collect per-iteration inactive rates per strategy.
    std::vector<std::vector<double>> series(strategies.size());
    std::vector<double> final_q(strategies.size());
    const double n = g.num_vertices();
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      core::BspConfig cfg;
      cfg.pruning = strategies[s];
      core::BspLouvainEngine engine(g, cfg);
      engine.set_observer([&](int, const core::IterationStats& st, auto, auto) {
        series[s].push_back(100.0 * (n - st.active) / n);
      });
      final_q[s] = engine.run().modularity;
    }

    TextTable table({"iteration", "SM%", "RM%", "PM%", "MG%", "MG+RM%"});
    std::size_t iters = 0;
    for (const auto& sv : series) iters = std::max(iters, sv.size());
    for (std::size_t i = 0; i < iters; ++i) {
      auto& row = table.row().cell(i);
      for (const auto& sv : series) {
        if (i < sv.size()) {
          row.cell(sv[i], 1);
        } else {
          row.cell("-");  // strategy already terminated
        }
      }
    }
    table.print();
    std::printf("final modularity: SM %.5f  RM %.5f  PM %.5f  MG %.5f  MG+RM %.5f\n\n",
                final_q[0], final_q[1], final_q[2], final_q[3], final_q[4]);
  }
  std::printf("paper shape: SM prunes <4%% on average; MG+RM reaches up to ~92%%; PM terminates "
              "earliest at a modularity cost.\n");
  return 0;
}
