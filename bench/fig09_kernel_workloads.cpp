// Figure 9: memory-management optimisations on the two workload classes.
//
//  (a) small-degree vertices (degree < 32, one warp each): shuffle-based
//      kernel vs hash-based kernel in shared memory vs hash in global
//      memory. Paper: shuffle wins 1.9x over hash-global, 1.2x over
//      hash-shared (registers are the fastest memory).
//  (b) large-degree vertices (states overflow shared memory): hierarchical
//      vs unified vs global-only hashtable. Paper: hierarchical wins 1.5x
//      over global-only and 1.2x over unified; unified degrades most where
//      maximum degree is large.
//
// Methodology: phase 1 runs a few iterations to reach a realistic community
// structure; one DecideAndMove pass is then measured over exactly the
// vertices of each class under each kernel configuration.
#include <algorithm>

#include "bench_util.hpp"
#include "gala/core/bsp_louvain.hpp"

namespace {

using namespace gala;

/// Captures a realistic mid-phase state: communities + totals + sizes.
struct Snapshot {
  std::vector<cid_t> comm;
  std::vector<wt_t> comm_total;
};

Snapshot mid_phase_state(const graph::Graph& g) {
  core::BspConfig cfg;
  cfg.max_iterations = 4;  // partially converged: realistic community mix
  const auto r = core::bsp_phase1(g, cfg);
  Snapshot s;
  s.comm = r.community;
  s.comm_total.assign(g.num_vertices(), 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) s.comm_total[s.comm[v]] += g.degree(v);
  return s;
}

enum class Variant { Shuffle, HashShared, HashGlobal, HashUnified, HashHierarchical };

double measure(const graph::Graph& g, const Snapshot& snap, const std::vector<vid_t>& vertices,
               Variant variant, std::size_t shared_bytes) {
  const core::DecideInput input{&g, snap.comm, snap.comm_total, g.two_m()};
  gpusim::SharedMemoryArena arena(shared_bytes);
  core::HashScratch scratch;
  gpusim::MemoryStats stats;
  for (const vid_t v : vertices) {
    arena.reset();
    switch (variant) {
      case Variant::Shuffle:
        core::shuffle_decide(input, v, arena, stats);
        break;
      case Variant::HashShared:
      case Variant::HashHierarchical:
        core::hash_decide(input, v, core::HashTablePolicy::Hierarchical, arena, scratch, 1, stats);
        break;
      case Variant::HashGlobal:
        core::hash_decide(input, v, core::HashTablePolicy::GlobalOnly, arena, scratch, 1, stats);
        break;
      case Variant::HashUnified:
        core::hash_decide(input, v, core::HashTablePolicy::Unified, arena, scratch, 1, stats);
        break;
    }
  }
  gpusim::DeviceConfig dev;
  return dev.modeled_ms(stats);
}

}  // namespace

int main() {
  const double scale = bench::scale_from_env();
  bench::print_header("Memory management on small/large-degree workloads", "Figure 9", scale);

  const auto suite = bench::load_suite(scale);
  // The paper uses degree > 2000 on billion-edge graphs; the stand-ins are
  // ~1000x smaller, so the "large" class scales to > 128.
  const vid_t small_limit = 32;
  const vid_t large_limit = 128;
  const std::size_t full_shared = 48 * 1024;
  // Large-degree states must overflow shared memory: a tight budget stands
  // in for the paper's >2000-neighbour tables exceeding 48 KiB.
  const std::size_t tight_shared = 64 * sizeof(gala::core::HashBucket);

  std::printf("(a) small-degree vertices (degree < %u), one warp per vertex\n", small_limit);
  gala::TextTable ta({"Graph", "#vertices", "shuffle ms", "hash-shared ms", "hash-global ms",
                      "shuffle vs global", "shuffle vs shared"});
  for (const auto& [abbr, g] : suite) {
    const auto snap = mid_phase_state(g);
    std::vector<gala::vid_t> small;
    for (gala::vid_t v = 0; v < g.num_vertices(); ++v) {
      if (g.out_degree(v) > 0 && g.out_degree(v) < small_limit) small.push_back(v);
    }
    const double shuffle = measure(g, snap, small, Variant::Shuffle, full_shared);
    const double hshared = measure(g, snap, small, Variant::HashShared, full_shared);
    const double hglobal = measure(g, snap, small, Variant::HashGlobal, full_shared);
    ta.row()
        .cell(abbr)
        .cell(small.size())
        .cell(shuffle, 3)
        .cell(hshared, 3)
        .cell(hglobal, 3)
        .cell(hglobal / shuffle, 2)
        .cell(hshared / shuffle, 2);
  }
  ta.print();
  std::printf("paper: shuffle 1.9x vs hash-global, 1.2x vs hash-shared on average\n\n");

  std::printf("(b) large-degree vertices (degree > %u), shared budget %zu buckets\n", large_limit,
              tight_shared / sizeof(gala::core::HashBucket));
  gala::TextTable tb({"Graph", "#vertices", "max deg", "hier ms", "unified ms", "global ms",
                      "hier vs global", "hier vs unified"});
  for (const auto& [abbr, g] : suite) {
    const auto snap = mid_phase_state(g);
    std::vector<gala::vid_t> large;
    gala::vid_t max_deg = 0;
    for (gala::vid_t v = 0; v < g.num_vertices(); ++v) {
      max_deg = std::max(max_deg, g.out_degree(v));
      if (g.out_degree(v) > large_limit) large.push_back(v);
    }
    if (large.empty()) {
      tb.row().cell(abbr).cell(0).cell(max_deg).cell("-").cell("-").cell("-").cell("-").cell("-");
      continue;
    }
    const double hier = measure(g, snap, large, Variant::HashHierarchical, tight_shared);
    const double unified = measure(g, snap, large, Variant::HashUnified, tight_shared);
    const double global = measure(g, snap, large, Variant::HashGlobal, tight_shared);
    tb.row()
        .cell(abbr)
        .cell(large.size())
        .cell(max_deg)
        .cell(hier, 3)
        .cell(unified, 3)
        .cell(global, 3)
        .cell(global / hier, 2)
        .cell(unified / hier, 2);
  }
  tb.print();
  std::printf("paper: hierarchical 1.5x vs global-only, 1.2x vs unified on average; unified "
              "degrades most on hub-heavy graphs (TW, UK, EW)\n");
  return 0;
}
