// Figure 5: end-to-end comparison of GALA against cuGraph, Gunrock, nido,
// Grappolo (GPU), Grappolo (GPU)* and Grappolo (CPU) on phase 1 of round 1.
//
// Modeled time is the primary series (DESIGN.md §1); host wall-clock is
// reported alongside. Expected shape (paper): GALA fastest everywhere, with
// average speedups of 17x (cuGraph), 53x (Gunrock), 21x (nido), 22x
// (Grappolo GPU), 6x (Grappolo GPU*), 222x (Grappolo CPU). All systems
// converge to identical modularity (§5.1), asserted below.
#include <cmath>

#include "bench_util.hpp"
#include "gala/baselines/baseline.hpp"

int main() {
  using namespace gala;
  const double scale = bench::scale_from_env();
  bench::print_header("Comparison with the state of the art", "Figure 5", scale);

  const auto suite = bench::load_suite(scale);
  baselines::BaselineOptions opts;

  std::vector<std::string> system_names;
  std::vector<double> speedup_logsum;  // geometric-mean accumulator
  TextTable table({"Graph", "System", "modeled ms", "wall s", "iters", "modularity", "GALA speedup"});

  for (const auto& [abbr, g] : suite) {
    const auto results = baselines::run_all_systems(g, opts);
    const auto& gala_row = results.back();  // GALA is last
    if (system_names.empty()) {
      for (const auto& r : results) system_names.push_back(r.name);
      speedup_logsum.assign(results.size(), 0.0);
    }
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      const double speedup = r.modeled_ms / gala_row.modeled_ms;
      speedup_logsum[i] += std::log(speedup);
      table.row()
          .cell(abbr)
          .cell(r.name)
          .cell(r.modeled_ms, 3)
          .cell(r.wall_seconds, 2)
          .cell(r.iterations)
          .cell(r.modularity, 5)
          .cell(speedup, 2);
      // §5.1 parity: every system follows the same convergence strategy, so
      // modularity must match GALA's closely.
      if (std::abs(r.modularity - gala_row.modularity) > 0.02) {
        std::printf("WARNING: %s modularity %.5f deviates from GALA %.5f on %s\n", r.name.c_str(),
                    r.modularity, gala_row.modularity, abbr.c_str());
      }
    }
  }
  table.print();

  std::printf("\ngeometric-mean speedup of GALA (paper: cuGraph 17x, Gunrock 53x, nido 21x, "
              "Grappolo-GPU 22x, Grappolo-GPU* 6x, Grappolo-CPU 222x):\n");
  for (std::size_t i = 0; i < system_names.size(); ++i) {
    std::printf("  vs %-16s %.1fx\n", system_names[i].c_str(),
                std::exp(speedup_logsum[i] / static_cast<double>(suite.size())));
  }
  return 0;
}
