// §5.6's closing experiment: phase 1 of round 1 on the largest graph the
// setup can hold, on 8 devices (the paper runs uk-2007-02, 3.4B edges, in
// 43 s on 8 A100s). The stand-in is the biggest FR-class graph this bench
// is allowed to build (GALA_BENCH_SCALE scales it); the code path —
// distributed phase 1 with adaptive sync — is identical.
#include "bench_util.hpp"
#include "gala/multigpu/dist_louvain.hpp"

int main() {
  using namespace gala;
  const double scale = bench::scale_from_env();
  bench::print_header("Largest-graph run on 8 devices", "Section 5.6 (uk-2007-02 analogue)",
                      scale);

  // The uk-2007 analogue: web-graph character (UK) at 4x the usual size.
  const auto g = graph::make_standin("UK", 4.0 * scale);
  std::printf("graph: %s\n", graph::summary(g).c_str());

  multigpu::DistributedConfig cfg;
  cfg.num_gpus = 8;
  cfg.device.model_parallel_lanes = 2048;
  const auto r = multigpu::distributed_phase1(g, cfg);

  std::printf("phase 1 of round 1 on 8 devices: %d iterations, modularity %.5f\n", r.iterations,
              r.modularity);
  std::printf("modeled: %.3f ms total (compute %.3f, comm %.3f) | host wall: %.2f s\n",
              r.modeled_ms(), r.max_compute_modeled_ms(), r.max_comm_modeled_ms(),
              r.wall_seconds);
  std::uint64_t bytes = 0;
  int sparse = 0;
  for (const auto& it : r.iteration_log) {
    bytes += it.sync_bytes;
    sparse += it.sparse_sync;
  }
  std::printf("sync: %.2f MB total, %d/%zu iterations sparse\n", static_cast<double>(bytes) / 1e6,
              sparse, r.iteration_log.size());
  std::printf("paper: 3.4B-edge uk-2007-02 completes in 43 s on 8 A100s — the same code path "
              "at ~%.0fx smaller scale.\n",
              3.4e9 / static_cast<double>(g.num_edges()));
  return 0;
}
