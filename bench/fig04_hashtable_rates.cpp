// Figure 4: the shared-memory maintenance rate and access rate of the
// unified vs hierarchical hashtable per iteration on the LiveJournal
// stand-in (hash kernel forced for all vertices).
//
// Expected shape (paper): hierarchical beats unified by a wide margin
// (~4.7x access rate), its rates *rise* as iterations proceed (fewer
// communities -> better shared-memory fit) while unified stays flat, and
// access rate >= maintenance rate.
#include "bench_util.hpp"
#include "gala/core/bsp_louvain.hpp"

int main() {
  using namespace gala;
  const double scale = bench::scale_from_env();
  bench::print_header("Shared-memory maintenance/access rates of hashtables",
                      "Figure 4 — LiveJournal", scale);

  const auto g = graph::make_standin("LJ", scale);
  std::printf("graph LJ: %s\n", graph::summary(g).c_str());
  // A small shared budget makes placement contention visible at stand-in
  // scale, as the 48 KiB budget does at the paper's scale.
  const std::size_t shared_bytes = 24 * sizeof(core::HashBucket);
  std::printf("shared budget per block: %zu buckets\n\n", shared_bytes / sizeof(core::HashBucket));

  struct Series {
    std::vector<double> maintenance, access;
  };
  auto run = [&](core::HashTablePolicy policy) {
    core::BspConfig cfg;
    cfg.kernel = core::KernelMode::HashOnly;
    cfg.hashtable = policy;
    cfg.device.shared_bytes_per_block = shared_bytes;
    core::BspLouvainEngine engine(g, cfg);
    Series series;
    engine.set_observer([&](int, const core::IterationStats& s, auto, auto) {
      series.maintenance.push_back(s.ht_maintenance_rate);
      series.access.push_back(s.ht_access_rate);
    });
    engine.run();
    return series;
  };

  const Series unified = run(core::HashTablePolicy::Unified);
  const Series hier = run(core::HashTablePolicy::Hierarchical);

  TextTable table({"iteration", "unified:maint%", "unified:access%", "hier:maint%",
                   "hier:access%"});
  const std::size_t iters = std::min(unified.maintenance.size(), hier.maintenance.size());
  for (std::size_t i = 0; i < iters; ++i) {
    table.row()
        .cell(i)
        .cell(100.0 * unified.maintenance[i], 1)
        .cell(100.0 * unified.access[i], 1)
        .cell(100.0 * hier.maintenance[i], 1)
        .cell(100.0 * hier.access[i], 1);
  }
  table.print();

  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (const double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };
  std::printf("\nmean access rate: hierarchical %.1f%% vs unified %.1f%% (%.1fx; paper: 4.7x)\n",
              100.0 * mean(hier.access), 100.0 * mean(unified.access),
              mean(unified.access) > 0 ? mean(hier.access) / mean(unified.access) : 0.0);
  return 0;
}
