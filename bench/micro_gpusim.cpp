// Microbenchmarks (google-benchmark) for the simulator substrate: warp
// collectives, hashtable policies, and the two DecideAndMove kernels on a
// single vertex of parameterised degree. These measure host wall time of
// the simulation itself (useful for keeping the harness fast), not modeled
// GPU time.
#include <benchmark/benchmark.h>

#include "gala/core/kernels.hpp"
#include "gala/gpusim/warp.hpp"
#include "gala/graph/generators.hpp"

namespace {

using namespace gala;
using namespace gala::gpusim;

void BM_WarpMatchAny(benchmark::State& state) {
  WarpValues<cid_t> values{};
  Xoshiro256 rng(1);
  for (auto& v : values) v = static_cast<cid_t>(rng.next_below(static_cast<std::uint64_t>(state.range(0))));
  MemoryStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(warp::match_any(kFullMask, values, stats));
  }
}
BENCHMARK(BM_WarpMatchAny)->Arg(2)->Arg(8)->Arg(32);

void BM_WarpSegmentedReduce(benchmark::State& state) {
  WarpValues<cid_t> keys{};
  WarpValues<wt_t> vals{};
  Xoshiro256 rng(2);
  for (int i = 0; i < kWarpSize; ++i) {
    keys[i] = static_cast<cid_t>(rng.next_below(static_cast<std::uint64_t>(state.range(0))));
    vals[i] = rng.next_double();
  }
  MemoryStats stats;
  const auto masks = warp::match_any(kFullMask, keys, stats);
  for (auto _ : state) {
    benchmark::DoNotOptimize(warp::segmented_reduce_add(kFullMask, masks, vals, stats));
  }
}
BENCHMARK(BM_WarpSegmentedReduce)->Arg(2)->Arg(8)->Arg(32);

struct KernelFixtureState {
  graph::Graph g;
  std::vector<cid_t> comm;
  std::vector<wt_t> comm_total;

  explicit KernelFixtureState(vid_t degree_target) {
    // A star-of-communities vertex: vertex 0 has `degree_target` neighbours
    // spread over ~degree/4 communities.
    graph::GraphBuilder b(degree_target + 1);
    for (vid_t i = 1; i <= degree_target; ++i) b.add_edge(0, i);
    g = b.build();
    comm.resize(g.num_vertices());
    for (vid_t v = 0; v < g.num_vertices(); ++v) comm[v] = v == 0 ? 0 : 1 + (v % std::max<vid_t>(1, degree_target / 4));
    comm_total.assign(g.num_vertices(), 0);
    for (vid_t v = 0; v < g.num_vertices(); ++v) comm_total[comm[v]] += g.degree(v);
  }
};

void BM_ShuffleDecide(benchmark::State& state) {
  KernelFixtureState fx(static_cast<vid_t>(state.range(0)));
  const core::DecideInput input{&fx.g, fx.comm, fx.comm_total, fx.g.two_m()};
  SharedMemoryArena arena(48 * 1024);
  MemoryStats stats;
  for (auto _ : state) {
    arena.reset();
    benchmark::DoNotOptimize(core::shuffle_decide(input, 0, arena, stats));
  }
}
BENCHMARK(BM_ShuffleDecide)->Arg(8)->Arg(31)->Arg(256);

void BM_HashDecide(benchmark::State& state) {
  KernelFixtureState fx(static_cast<vid_t>(state.range(0)));
  const core::DecideInput input{&fx.g, fx.comm, fx.comm_total, fx.g.two_m()};
  SharedMemoryArena arena(48 * 1024);
  core::HashScratch scratch;
  MemoryStats stats;
  const auto policy = static_cast<core::HashTablePolicy>(state.range(1));
  for (auto _ : state) {
    arena.reset();
    benchmark::DoNotOptimize(core::hash_decide(input, 0, policy, arena, scratch, 7, stats));
  }
}
BENCHMARK(BM_HashDecide)
    ->Args({31, 0})
    ->Args({31, 2})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({2048, 0})
    ->Args({2048, 1})
    ->Args({2048, 2});

}  // namespace

BENCHMARK_MAIN();
