// Figure 6: ablation of GALA's two optimisations per graph —
//   Baseline : no pruning, global-memory hashtable for every vertex,
//              naive weight recompute;
//   +MG      : modularity gain-based pruning (both stages, §3);
//   +MG+MM   : pruning plus the memory-management optimisations (workload-
//              aware kernel dispatch + hierarchical hashtable, §4).
//
// Expected shape (paper): MG alone gives ~2.4x (more on larger graphs),
// MM adds ~1.4x, overall ~3.4x.
#include <cmath>

#include "bench_util.hpp"
#include "gala/core/bsp_louvain.hpp"

int main() {
  using namespace gala;
  const double scale = bench::scale_from_env();
  bench::print_header("Impact of optimizations (Baseline / MG / MG+MM)", "Figure 6", scale);

  const auto suite = bench::load_suite(scale);

  auto baseline_cfg = [] {
    core::BspConfig cfg;
    cfg.pruning = core::PruningStrategy::None;
    cfg.kernel = core::KernelMode::HashOnly;
    cfg.hashtable = core::HashTablePolicy::GlobalOnly;
    cfg.weight_update = core::WeightUpdateMode::Recompute;
    return cfg;
  };

  TextTable table({"Graph", "Baseline ms", "+MG ms", "+MG+MM ms", "MG speedup", "total speedup",
                   "modularity"});
  double mg_logsum = 0, total_logsum = 0;

  for (const auto& [abbr, g] : suite) {
    core::BspConfig b = baseline_cfg();
    core::BspConfig mg = baseline_cfg();
    mg.pruning = core::PruningStrategy::ModularityGain;
    mg.weight_update = core::WeightUpdateMode::Delta;
    core::BspConfig full;  // default = MG + auto kernels + hierarchical + delta

    const auto rb = core::bsp_phase1(g, b);
    const auto rmg = core::bsp_phase1(g, mg);
    const auto rfull = core::bsp_phase1(g, full);

    const double mg_speedup = rb.modeled_ms() / rmg.modeled_ms();
    const double total_speedup = rb.modeled_ms() / rfull.modeled_ms();
    mg_logsum += std::log(mg_speedup);
    total_logsum += std::log(total_speedup);
    table.row()
        .cell(abbr)
        .cell(rb.modeled_ms(), 3)
        .cell(rmg.modeled_ms(), 3)
        .cell(rfull.modeled_ms(), 3)
        .cell(mg_speedup, 2)
        .cell(total_speedup, 2)
        .cell(rfull.modularity, 5);
  }
  table.print();

  const double denom = static_cast<double>(suite.size());
  std::printf("\ngeo-mean speedups: MG %.2fx (paper 2.4x), MG+MM %.2fx (paper 3.4x)\n",
              std::exp(mg_logsum / denom), std::exp(total_logsum / denom));
  return 0;
}
