// QPS / latency-percentile harness for the gala::query serving layer.
//
// Publishes a deterministic epoch stream (one full Louvain run plus seven
// incremental repairs) into a CommunityStore, then drives four read
// workloads — point lookups, batched lookups through the thread pool,
// member scans + top-k, and cross-epoch diffs — and reports throughput and
// p50/p95/p99 latency for each.
//
// Determinism contract (the perf-diff gate's input): every op count, epoch
// count, resident-byte figure, and answer checksum is a pure function of
// the seeds below, so those fields baseline bit-identically. Only the
// wall_* fields (QPS, latency percentiles) vary by machine, and
// gala_perf_diff skips wall-prefixed keys.
//
// Run with:
//   GALA_BENCH_JSON_DIR=<dir> ./query_bench
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "bench_util.hpp"
#include "gala/common/prng.hpp"
#include "gala/common/thread_pool.hpp"
#include "gala/core/gala.hpp"
#include "gala/core/incremental.hpp"
#include "gala/graph/generators.hpp"
#include "gala/query/executor.hpp"
#include "gala/query/store.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double to_us(Clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

/// Percentile over an unsorted latency sample (sorts in place).
double pct(std::vector<double>& lat, double p) {
  if (lat.empty()) return 0;
  std::sort(lat.begin(), lat.end());
  const auto idx = static_cast<std::size_t>(p / 100.0 * static_cast<double>(lat.size() - 1));
  return lat[idx];
}

}  // namespace

int main() {
  using namespace gala;
  bench::print_header("gala::query serving throughput and tail latency",
                      "query-serving perf gate (no paper figure)", 1.0);
  bench::JsonRecord rec("query_bench", 1.0);

  // --- deterministic epoch stream -----------------------------------------
  graph::PlantedPartitionParams pp;
  pp.num_vertices = 4000;
  pp.num_communities = 25;
  pp.avg_degree = 14.0;
  pp.mixing = 0.25;
  pp.seed = 11;
  const graph::Graph base = graph::planted_partition(pp);

  query::StoreOptions opts;
  opts.max_retained = 8;
  opts.governor_client = false;
  query::CommunityStore store(opts);

  const auto initial = core::run_louvain(base);
  store.publish(base, initial);
  graph::Graph current = base;
  std::vector<cid_t> assignment = initial.assignment;
  constexpr int kEpochs = 8;
  for (int e = 1; e < kEpochs; ++e) {
    std::vector<core::EdgeUpdate> batch;
    for (int i = 0; i < 6; ++i) {
      const auto u = static_cast<vid_t>(splitmix64(1000ull * e + i) % current.num_vertices());
      const auto v = static_cast<vid_t>(splitmix64(2000ull * e + i) % current.num_vertices());
      batch.push_back({u, v, 1.5, false});
    }
    auto repaired = core::update_communities(current, assignment, batch);
    store.publish(repaired);
    current = std::move(repaired.graph);
    assignment = std::move(repaired.assignment);
  }
  std::printf("stream: %llu epochs published, %zu retained, %llu B resident\n",
              static_cast<unsigned long long>(store.latest_epoch()), store.retained(),
              static_cast<unsigned long long>(store.resident_bytes()));

  ThreadPool pool;
  const query::QueryExecutor exec(store, nullptr, /*grain=*/1u << 20);  // inline
  const query::QueryExecutor pooled(store, &pool, /*grain=*/1024);

  // --- workload 1: point lookups against the newest epoch -----------------
  {
    constexpr std::uint64_t kOps = 50000;
    std::vector<double> lat;
    lat.reserve(kOps);
    std::uint64_t checksum = 0;
    const auto begin = Clock::now();
    for (std::uint64_t i = 0; i < kOps; ++i) {
      const auto v = static_cast<vid_t>(splitmix64(i ^ 0x51ed2701ull) % pp.num_vertices);
      const auto t0 = Clock::now();
      checksum += exec.community_of(v);
      lat.push_back(to_us(Clock::now() - t0));
    }
    const double total_s = to_us(Clock::now() - begin) / 1e6;
    const double qps = static_cast<double>(kOps) / total_s;
    std::printf("%-14s %8llu ops, %10.0f QPS, p50 %.2f us, p95 %.2f us, p99 %.2f us\n",
                "point", static_cast<unsigned long long>(kOps), qps, pct(lat, 50), pct(lat, 95),
                pct(lat, 99));
    rec.row()
        .field("workload", "point")
        .field("ops", kOps)
        .field("epochs", store.latest_epoch())
        .field("retained", static_cast<std::uint64_t>(store.retained()))
        .field("snapshot_bytes", store.resident_bytes())
        .field("checksum", checksum)
        .field("wall_qps", qps)
        .field("wall_p50_us", pct(lat, 50))
        .field("wall_p95_us", pct(lat, 95))
        .field("wall_p99_us", pct(lat, 99));
  }

  // --- workload 2: batched lookups through the thread pool ----------------
  {
    constexpr std::size_t kBatch = 4096;
    constexpr int kBatches = 64;
    std::vector<vid_t> queries(kBatch);
    std::vector<double> lat;
    lat.reserve(kBatches);
    std::uint64_t checksum = 0;
    query::SnapshotRef snap = store.current();
    const auto begin = Clock::now();
    for (int b = 0; b < kBatches; ++b) {
      for (std::size_t i = 0; i < kBatch; ++i) {
        queries[i] = static_cast<vid_t>(splitmix64(b * kBatch + i) % pp.num_vertices);
      }
      const auto t0 = Clock::now();
      const auto owners = pooled.community_of(*snap, queries);
      lat.push_back(to_us(Clock::now() - t0));
      for (cid_t c : owners) checksum += c;
    }
    const double total_s = to_us(Clock::now() - begin) / 1e6;
    const double qps = static_cast<double>(kBatch) * kBatches / total_s;
    std::printf("%-14s %8zu ops, %10.0f QPS, p50 %.2f us, p95 %.2f us, p99 %.2f us (batch)\n",
                "batch", kBatch * kBatches, qps, pct(lat, 50), pct(lat, 95), pct(lat, 99));
    rec.row()
        .field("workload", "batch")
        .field("ops", static_cast<std::uint64_t>(kBatch) * kBatches)
        .field("batch_size", static_cast<std::uint64_t>(kBatch))
        .field("snapshot_bytes", store.resident_bytes())
        .field("checksum", checksum)
        .field("wall_qps", qps)
        .field("wall_p50_us", pct(lat, 50))
        .field("wall_p95_us", pct(lat, 95))
        .field("wall_p99_us", pct(lat, 99));
  }

  // --- workload 3: member scans + top-k ------------------------------------
  {
    constexpr std::uint64_t kOps = 4000;
    std::vector<double> lat;
    lat.reserve(kOps);
    std::uint64_t members_seen = 0, checksum = 0;
    query::SnapshotRef snap = store.current();
    const cid_t k = snap->num_communities();
    const auto begin = Clock::now();
    for (std::uint64_t i = 0; i < kOps; ++i) {
      const auto c = static_cast<cid_t>(splitmix64(i ^ 0xabcdef12ull) % k);
      const auto t0 = Clock::now();
      const auto row = exec.members(*snap, c);
      lat.push_back(to_us(Clock::now() - t0));
      members_seen += row.size();
      checksum += row.empty() ? 0 : row.front() + row.back();
    }
    const auto top = exec.top_k(*snap, 10);
    for (const auto& t : top) checksum += t.community + t.size;
    const double total_s = to_us(Clock::now() - begin) / 1e6;
    const double qps = static_cast<double>(kOps) / total_s;
    std::printf("%-14s %8llu ops, %10.0f QPS, p50 %.2f us, p99 %.2f us, %llu members\n",
                "members", static_cast<unsigned long long>(kOps), qps, pct(lat, 50),
                pct(lat, 99), static_cast<unsigned long long>(members_seen));
    rec.row()
        .field("workload", "members")
        .field("ops", kOps)
        .field("members_seen", members_seen)
        .field("top_k", static_cast<std::uint64_t>(top.size()))
        .field("checksum", checksum)
        .field("wall_qps", qps)
        .field("wall_p50_us", pct(lat, 50))
        .field("wall_p95_us", pct(lat, 95))
        .field("wall_p99_us", pct(lat, 99));
  }

  // --- workload 4: cross-epoch diffs over every retained pair --------------
  {
    std::vector<double> lat;
    std::uint64_t moved_total = 0, pairs = 0;
    const auto begin = Clock::now();
    for (std::uint64_t i = store.oldest_epoch(); i <= store.latest_epoch(); ++i) {
      for (std::uint64_t j = i + 1; j <= store.latest_epoch(); ++j) {
        const auto t0 = Clock::now();
        const auto d = pooled.diff(i, j);
        lat.push_back(to_us(Clock::now() - t0));
        moved_total += d.moved.size();
        ++pairs;
      }
    }
    const double total_s = to_us(Clock::now() - begin) / 1e6;
    const double qps = static_cast<double>(pairs) / total_s;
    std::printf("%-14s %8llu ops, %10.0f QPS, p50 %.2f us, p99 %.2f us, %llu moved\n",
                "diff", static_cast<unsigned long long>(pairs), qps, pct(lat, 50), pct(lat, 99),
                static_cast<unsigned long long>(moved_total));
    rec.row()
        .field("workload", "diff")
        .field("ops", pairs)
        .field("moved_total", moved_total)
        .field("wall_qps", qps)
        .field("wall_p50_us", pct(lat, 50))
        .field("wall_p95_us", pct(lat, 95))
        .field("wall_p99_us", pct(lat, 99));
  }

  rec.save();
  return 0;
}
