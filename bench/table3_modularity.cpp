// Table 3: final modularity of the full multi-level pipeline under each
// pruning strategy.
//
// Expected shape (paper): Baseline, MG and SM are *identical* (no false
// negatives); RM/MG+RM lose a little (avg 0.00119); PM loses more
// (avg 0.00413); the loss concentrates on TW (blurred communities).
#include <cmath>

#include "bench_util.hpp"
#include "gala/core/gala.hpp"

int main() {
  using namespace gala;
  const double scale = bench::scale_from_env();
  bench::print_header("Modularity comparison across pruning strategies", "Table 3", scale);

  const auto suite = bench::load_suite(scale);
  const std::vector<std::pair<std::string, core::PruningStrategy>> strategies = {
      {"Baseline", core::PruningStrategy::None},
      {"MG", core::PruningStrategy::ModularityGain},
      {"SM", core::PruningStrategy::Strict},
      {"RM", core::PruningStrategy::Relaxed},
      {"MG+RM", core::PruningStrategy::MgPlusRelaxed},
      {"PM", core::PruningStrategy::Probabilistic},
  };

  TextTable table({"Graph", "Baseline", "MG", "SM", "RM", "MG+RM", "PM", "RM loss", "PM loss"});
  double rm_loss_sum = 0, pm_loss_sum = 0;

  for (const auto& [abbr, g] : suite) {
    std::vector<wt_t> q(strategies.size());
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      core::GalaConfig cfg;
      cfg.bsp.pruning = strategies[s].second;
      q[s] = core::run_louvain(g, cfg).modularity;
    }
    const wt_t rm_loss = q[0] - q[3];
    const wt_t pm_loss = q[0] - q[5];
    rm_loss_sum += rm_loss;
    pm_loss_sum += pm_loss;
    auto& row = table.row().cell(abbr);
    for (const wt_t v : q) row.cell(v, 5);
    row.cell(rm_loss, 5).cell(pm_loss, 5);
  }
  table.print();

  const double denom = static_cast<double>(suite.size());
  std::printf("\navg modularity loss: RM %.5f (paper 0.00119), PM %.5f (paper 0.00413)\n",
              rm_loss_sum / denom, pm_loss_sum / denom);
  std::printf("MG and SM must match Baseline (zero false negatives, Theorem 6).\n");
  return 0;
}
