// Figure 10: multi-GPU scaling.
//
//  (a) speedup of phase 1 (round 1) from 1 to 8 simulated GPUs, per graph —
//      paper: avg 2.5x at 8 GPUs, sub-linear due to communication.
//  (b) computation vs communication breakdown on OR — paper: compute drops
//      4.4x from 1 to 8 GPUs while communication stays nearly constant and
//      reaches ~43% of runtime at 8 GPUs.
//
// The simulated device is scaled to the stand-in graphs (model lanes 2048
// instead of a full A100's 221k) so the compute/communication balance
// matches the paper's regime; see DESIGN.md §1/§4.
#include <cmath>

#include "bench_util.hpp"
#include "gala/multigpu/dist_louvain.hpp"

int main() {
  using namespace gala;
  const double scale = bench::scale_from_env();
  bench::print_header("Multi-GPU scalability", "Figure 10", scale);

  const auto suite = bench::load_suite(scale);
  const std::vector<std::size_t> gpu_counts = {1, 2, 4, 8};

  auto make_config = [](std::size_t gpus) {
    multigpu::DistributedConfig cfg;
    cfg.num_gpus = gpus;
    cfg.device.model_parallel_lanes = 2048;  // device scaled to the stand-ins
    // NCCL ring charging, used consistently for every figure on this page
    // (the canonical convention is asserted against it in multigpu_test).
    cfg.comm_cost.ring_convention = true;
    return cfg;
  };

  std::printf("(a) speedup over 1 GPU (modeled time)\n");
  TextTable ta({"Graph", "1 GPU ms", "2 GPUs", "4 GPUs", "8 GPUs", "speedup@8", "modularity"});
  double logsum8 = 0;
  for (const auto& [abbr, g] : suite) {
    std::vector<double> totals;
    wt_t q = 0;
    for (const std::size_t p : gpu_counts) {
      const auto r = multigpu::distributed_phase1(g, make_config(p));
      totals.push_back(r.modeled_ms());
      q = r.modularity;
    }
    const double speedup8 = totals[0] / totals[3];
    logsum8 += std::log(speedup8);
    ta.row()
        .cell(abbr)
        .cell(totals[0], 3)
        .cell(totals[0] / totals[1], 2)
        .cell(totals[0] / totals[2], 2)
        .cell(speedup8, 2)
        .cell(speedup8, 2)
        .cell(q, 5);
  }
  ta.print();
  std::printf("geo-mean speedup at 8 GPUs: %.2fx (paper: 2.5x average)\n\n",
              std::exp(logsum8 / static_cast<double>(suite.size())));

  std::printf("(b) computation vs communication breakdown on OR\n");
  const auto or_graph = graph::make_standin("OR", scale);
  TextTable tb({"GPUs", "compute ms", "comm ms", "total ms", "comm share %", "sparse iters",
                "dense iters"});
  double compute1 = 0;
  for (const std::size_t p : gpu_counts) {
    const auto r = multigpu::distributed_phase1(or_graph, make_config(p));
    const double compute = r.max_compute_modeled_ms();
    const double comm = r.max_comm_modeled_ms();
    if (p == 1) compute1 = compute;
    int sparse = 0, dense = 0;
    for (const auto& it : r.iteration_log) (it.sparse_sync ? sparse : dense)++;
    tb.row()
        .cell(p)
        .cell(compute, 3)
        .cell(comm, 3)
        .cell(compute + comm, 3)
        .cell(100.0 * comm / (compute + comm), 1)
        .cell(sparse)
        .cell(dense);
  }
  tb.print();
  const auto r8 = multigpu::distributed_phase1(or_graph, make_config(8));
  std::printf("compute reduction 1->8 GPUs: %.1fx (paper: 4.4x); comm share at 8 GPUs: %.0f%% "
              "(paper: 43%%)\n",
              compute1 / r8.max_compute_modeled_ms(),
              100.0 * r8.max_comm_modeled_ms() / r8.modeled_ms());

  // Dense/sparse/adaptive ablation (the §4.3 design choice), with and
  // without the compressed sparse-delta codec: the codec shrinks the sparse
  // wire size, so the adaptive dense/sparse crossover shifts earlier.
  std::printf("\n(c) synchronization strategy ablation on OR, 8 GPUs\n");
  TextTable tc({"sync", "codec", "comm ms", "sync bytes total", "sparse iters", "total ms"});
  for (const bool compress : {false, true}) {
    for (const auto mode :
         {multigpu::SyncMode::Dense, multigpu::SyncMode::Sparse, multigpu::SyncMode::Adaptive}) {
      auto cfg = make_config(8);
      cfg.sync = mode;
      cfg.compress = compress;
      const auto r = multigpu::distributed_phase1(or_graph, cfg);
      std::uint64_t bytes = 0;
      int sparse = 0;
      for (const auto& it : r.iteration_log) {
        bytes += it.sync_bytes;
        if (it.sparse_sync) sparse++;
      }
      tc.row()
          .cell(to_string(mode))
          .cell(compress ? "on" : "off")
          .cell(r.max_comm_modeled_ms(), 3)
          .cell(bytes)
          .cell(sparse)
          .cell(r.modeled_ms(), 3);
    }
  }
  tc.print();
  std::printf("adaptive should match or beat both fixed strategies (the paper's switch rule).\n");

  // Async double-buffered sync: post/complete exchanges overlapped with
  // rank-local window work, plus compressed sparse deltas. Results are
  // bit-identical to the blocking baseline; the win is hidden comm time.
  std::printf("\n(d) async overlap + compressed deltas vs blocking sync, per graph at 4 GPUs\n");
  TextTable td({"Graph", "blocking ms", "overlap ms", "wait ms blk", "wait ms ovl", "wait cut %",
                "identical"});
  double logsum_cut = 0;
  for (const auto& [abbr, g] : suite) {
    auto off = make_config(4);
    auto on = off;
    on.overlap = true;
    on.compress = true;
    const auto r_off = multigpu::distributed_phase1(g, off);
    const auto r_on = multigpu::distributed_phase1(g, on);
    const double cut =
        100.0 * (1.0 - r_on.max_comm_modeled_ms() / r_off.max_comm_modeled_ms());
    logsum_cut += std::log(r_off.max_comm_modeled_ms() / r_on.max_comm_modeled_ms());
    td.row()
        .cell(abbr)
        .cell(r_off.modeled_ms(), 3)
        .cell(r_on.modeled_ms(), 3)
        .cell(r_off.max_comm_modeled_ms(), 3)
        .cell(r_on.max_comm_modeled_ms(), 3)
        .cell(cut, 1)
        .cell(r_on.community == r_off.community ? "yes" : "NO");
  }
  td.print();
  std::printf("geo-mean comm-wait reduction at 4 GPUs: %.0f%% (target: >= 20%% per graph)\n",
              100.0 * (1.0 - std::exp(-logsum_cut / static_cast<double>(suite.size()))));

  std::printf("\n(e) overlap scaling on OR: exposed comm wait by device count\n");
  TextTable te({"GPUs", "blocking total", "overlap total", "wait blk", "wait ovl", "hidden us",
                "overlap ratio"});
  for (const std::size_t p : gpu_counts) {
    auto off = make_config(p);
    auto on = off;
    on.overlap = true;
    on.compress = true;
    const auto r_off = multigpu::distributed_phase1(or_graph, off);
    const auto r_on = multigpu::distributed_phase1(or_graph, on);
    double hidden_us = 0, ratio = 0;
    for (const auto& d : r_on.devices) {
      if (d.comm.hidden_us > hidden_us) {
        hidden_us = d.comm.hidden_us;
        ratio = d.comm.overlap_ratio();
      }
    }
    te.row()
        .cell(p)
        .cell(r_off.modeled_ms(), 3)
        .cell(r_on.modeled_ms(), 3)
        .cell(r_off.max_comm_modeled_ms(), 3)
        .cell(r_on.max_comm_modeled_ms(), 3)
        .cell(hidden_us, 1)
        .cell(ratio, 3);
  }
  te.print();
  std::printf("overlap+codec must never exceed the blocking baseline's modeled time.\n");
  return 0;
}
