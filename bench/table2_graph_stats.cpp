// Table 2: statistics of the evaluation graphs. The paper lists the seven
// public datasets; this bench prints the synthetic stand-ins actually used
// (at the current GALA_BENCH_SCALE) next to the originals' published sizes,
// plus the structural properties the substitution preserves (degree skew,
// community sharpness — see DESIGN.md §1).
#include "bench_util.hpp"
#include "gala/core/gala.hpp"
#include "gala/graph/stats.hpp"

int main() {
  using namespace gala;
  const double scale = bench::scale_from_env();
  bench::print_header("Statistics of the evaluation graphs", "Table 2", scale);

  struct PaperRow {
    const char* abbr;
    const char* vertices;
    const char* edges;
  };
  const PaperRow paper[] = {
      {"FR", "65.6M", "1.8B"},  {"LJ", "4.0M", "34.6M"},  {"OR", "3.1M", "117.2M"},
      {"TW", "41.7M", "1.2B"},  {"UK", "18.5M", "298.1M"}, {"EW", "6.5M", "144.6M"},
      {"HW", "2.0M", "114.5M"},
  };

  TextTable table({"Abbr", "Dataset (paper)", "paper V", "paper E", "stand-in V", "stand-in E",
                   "max deg", "mean deg", "Q (full run)"});
  bench::JsonRecord rec("table2_graph_stats", scale);
  for (const auto& row : paper) {
    const auto g = graph::make_standin(row.abbr, scale);
    const auto ds = graph::degree_stats(g);
    const auto result = core::run_louvain(g);
    table.row()
        .cell(row.abbr)
        .cell(graph::standin_full_name(row.abbr))
        .cell(row.vertices)
        .cell(row.edges)
        .cell(g.num_vertices())
        .cell(g.num_edges())
        .cell(ds.max)
        .cell(ds.mean, 1)
        .cell(result.modularity, 3);
    rec.row()
        .field("graph", row.abbr)
        .field("vertices", static_cast<std::uint64_t>(g.num_vertices()))
        .field("edges", static_cast<std::uint64_t>(g.num_edges()))
        .field("max_degree", static_cast<std::uint64_t>(ds.max))
        .field("mean_degree", ds.mean)
        .field("modularity", result.modularity)
        .field("modeled_ms", result.modeled_ms)
        .field("wall_seconds", result.wall_seconds);
  }
  table.print();
  std::printf("\npaper modularity levels (Table 3): FR 0.63, LJ 0.75, OR 0.66, TW 0.47, UK 0.99, "
              "EW 0.66, HW 0.75 — the stand-ins land in the same regimes.\n");
  return 0;
}
