// Vertex-ordering ablation (extension): how graph layout affects the
// shuffle kernel's gather coalescing. The C[u] lookups gather by neighbour
// id; a BFS layout clusters each vertex's neighbours into few 32-element
// segments, while a random/hub-scattered layout touches one transaction
// per lane. Reported per graph and ordering: mean memory transactions per
// warp gather (1 = perfectly coalesced, 32 = fully scattered) and the
// pipeline's modeled time (which charges per access, so it is
// order-insensitive by design — the transaction metric is the diagnostic a
// real GPU port would optimise).
#include "bench_util.hpp"
#include "gala/core/bsp_louvain.hpp"
#include "gala/graph/reorder.hpp"

int main() {
  using namespace gala;
  const double scale = bench::scale_from_env();
  bench::print_header("Vertex-ordering ablation (gather coalescing)",
                      "extension — DESIGN.md layout discussion", scale);

  TextTable table({"Graph", "ordering", "txn/gather", "modularity"});
  for (const auto& [abbr, g] : bench::load_suite(scale, {"LJ", "TW", "UK"})) {
    struct Order {
      const char* name;
      graph::Graph graph;
    };
    std::vector<Order> orders;
    orders.push_back({"original", g});
    orders.push_back({"bfs", graph::apply_permutation(g, graph::bfs_order(g, 0))});
    orders.push_back(
        {"degree-desc", graph::apply_permutation(g, graph::degree_descending_order(g))});

    for (const auto& order : orders) {
      core::BspConfig cfg;
      cfg.kernel = core::KernelMode::ShuffleOnly;  // the gather-sensitive path
      cfg.max_iterations = 6;                      // early iterations dominate gathers
      const auto r = core::bsp_phase1(order.graph, cfg);
      table.row()
          .cell(abbr)
          .cell(order.name)
          .cell(r.total_traffic.transactions_per_gather(), 2)
          .cell(r.modularity, 4);
    }
  }
  table.print();
  std::printf("\nexpected: the stand-ins' generator lays communities out contiguously, so the\n"
              "original order is already near-optimal; BFS stays close; degree-descending\n"
              "scatters each hub's neighbours across segments and coalesces worst. On\n"
              "arbitrary real-world id orders, BFS relabeling is the standard fix this\n"
              "diagnostic motivates. Community quality is layout-invariant (isomorphic\n"
              "graphs, id-tie-breaks aside).\n");
  return 0;
}
