// Ablations of GALA's design knobs beyond the paper's figures:
//  (a) workload-aware dispatch threshold (shuffle vs hash cutover degree),
//  (b) shared-memory budget for the hierarchical hashtable,
//  (c) resolution parameter gamma (community count / modularity trade-off).
// Each sweeps one knob with everything else at GALA defaults.
#include "bench_util.hpp"
#include "gala/core/gala.hpp"

int main() {
  using namespace gala;
  const double scale = bench::scale_from_env();
  bench::print_header("Design-choice ablations", "DESIGN.md §4 knobs (extension)", scale);

  const auto lj = graph::make_standin("LJ", scale);
  const auto tw = graph::make_standin("TW", scale);

  std::printf("(a) kernel dispatch threshold (degree below which the shuffle kernel runs)\n");
  {
    TextTable t({"threshold", "LJ modeled ms", "TW modeled ms"});
    for (const vid_t limit : {0u, 8u, 16u, 32u, 64u, 128u, 1u << 30}) {
      core::BspConfig cfg;
      cfg.shuffle_degree_limit = limit;
      const auto r_lj = core::bsp_phase1(lj, cfg);
      const auto r_tw = core::bsp_phase1(tw, cfg);
      std::string label = limit == 0 ? "hash-only" : limit >= (1u << 30) ? "shuffle-only"
                                                                         : std::to_string(limit);
      t.row().cell(label).cell(r_lj.modeled_ms(), 3).cell(r_tw.modeled_ms(), 3);
    }
    t.print();
    std::printf("expected: a minimum near the warp width (32), GALA's default.\n\n");
  }

  std::printf("(b) shared-memory budget per block (hierarchical hashtable)\n");
  {
    TextTable t({"budget (buckets)", "TW modeled ms", "maint rate %", "access rate %"});
    for (const std::size_t buckets : {4u, 16u, 64u, 256u, 1024u, 4096u}) {
      core::BspConfig cfg;
      cfg.kernel = core::KernelMode::HashOnly;
      cfg.device.shared_bytes_per_block = buckets * sizeof(core::HashBucket);
      const auto r = core::bsp_phase1(tw, cfg);
      t.row()
          .cell(buckets)
          .cell(r.modeled_ms(), 3)
          .cell(100.0 * r.total_traffic.maintenance_rate(), 1)
          .cell(100.0 * r.total_traffic.access_rate(), 1);
    }
    t.print();
    std::printf("expected: time falls and shared rates rise with budget, saturating once\n"
                "the per-vertex community count fits.\n\n");
  }

  std::printf("(c) resolution parameter gamma\n");
  {
    TextTable t({"gamma", "communities", "Q_gamma", "classic Q"});
    for (const double gamma : {0.25, 0.5, 1.0, 2.0, 6.0, 25.0}) {
      core::GalaConfig cfg;
      cfg.bsp.resolution = gamma;
      const auto r = core::run_louvain(lj, cfg);
      t.row()
          .cell(gamma, 2)
          .cell(r.num_communities)
          .cell(r.modularity, 5)
          .cell(core::modularity(lj, r.assignment), 5);
    }
    t.print();
    std::printf("expected: community count grows monotonically with gamma; classic Q peaks\n"
                "at gamma = 1.\n");
  }
  return 0;
}
