// Table 1: false-negative rate and false-positive rate of the four pruning
// strategies (SM, RM, PM, MG) over all iterations of phase 1, per graph.
//
// Expected shape (paper): SM and MG have FNR = 0 by construction; RM and PM
// have small but non-zero FNR; MG achieves the lowest (or near-lowest) FPR,
// SM by far the highest. All strategies degrade on TW (blurred communities).
#include "bench_util.hpp"
#include "gala/core/bsp_louvain.hpp"
#include "gala/metrics/confusion.hpp"

int main() {
  using namespace gala;
  const double scale = bench::scale_from_env();
  bench::print_header("FNR and FPR of pruning strategies", "Table 1", scale);

  const auto suite = bench::load_suite(scale);
  const std::vector<core::PruningStrategy> strategies = {
      core::PruningStrategy::Strict, core::PruningStrategy::Relaxed,
      core::PruningStrategy::Probabilistic, core::PruningStrategy::ModularityGain};

  TextTable table({"Graph", "FNR:SM", "FNR:RM", "FNR:PM", "FNR:MG", "FPR:SM", "FPR:RM", "FPR:PM",
                   "FPR:MG"});
  std::vector<double> fnr_sum(strategies.size(), 0), fpr_sum(strategies.size(), 0);

  for (const auto& [abbr, g] : suite) {
    std::vector<double> fnr(strategies.size()), fpr(strategies.size());
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      core::BspConfig cfg;
      cfg.pruning = strategies[s];
      cfg.track_confusion = true;
      const auto result = core::bsp_phase1(g, cfg);
      const auto summary = metrics::summarize_confusion(result.iterations);
      fnr[s] = summary.fnr();
      fpr[s] = summary.fpr();
      fnr_sum[s] += fnr[s];
      fpr_sum[s] += fpr[s];
    }
    auto& row = table.row().cell(abbr);
    for (const double v : fnr) row.cell(100.0 * v, 2);
    for (const double v : fpr) row.cell(100.0 * v, 2);
  }
  auto& avg = table.row().cell("Avg.");
  for (const double v : fnr_sum) avg.cell(100.0 * v / static_cast<double>(suite.size()), 2);
  for (const double v : fpr_sum) avg.cell(100.0 * v / static_cast<double>(suite.size()), 2);
  table.print();

  std::printf("\nvalues are percentages; paper averages: FNR SM 0.00 / RM 0.37 / PM 6.35 / MG "
              "0.00, FPR SM 91.73 / RM 39.64 / PM 47.33 / MG 32.24\n");
  return 0;
}
