// Unit tests for the CSR graph: builder semantics (merging, symmetry,
// self-loop conventions), invariants, and accessors.
#include "gala/graph/csr.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace gala::graph {
namespace {

TEST(GraphBuilder, BuildsSymmetricSortedAdjacency) {
  GraphBuilder b(4);
  b.add_edge(2, 0, 1.5);
  b.add_edge(0, 1, 2.0);
  b.add_edge(3, 2, 1.0);
  const Graph g = b.build();
  g.validate();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_adjacency(), 6u);
  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  EXPECT_DOUBLE_EQ(g.weights(0)[1], 1.5);
}

TEST(GraphBuilder, MergesParallelEdgesBySummingWeights) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 0, 2.5);  // same undirected edge, other orientation
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.weights(0)[0], 3.5);
  EXPECT_DOUBLE_EQ(g.weights(1)[0], 3.5);
  EXPECT_DOUBLE_EQ(g.total_weight(), 3.5);
}

TEST(GraphBuilder, SelfLoopStoredOnceCountedTwiceInDegree) {
  GraphBuilder b(1);
  b.add_edge(0, 0, 2.0);
  const Graph g = b.build();
  g.validate();
  EXPECT_EQ(g.out_degree(0), 1u);          // one adjacency entry
  EXPECT_DOUBLE_EQ(g.self_loop(0), 2.0);
  EXPECT_DOUBLE_EQ(g.degree(0), 4.0);      // counted twice
  EXPECT_DOUBLE_EQ(g.total_weight(), 2.0); // |E| counts it once
  EXPECT_DOUBLE_EQ(g.two_m(), 4.0);        // sum of degrees
}

TEST(GraphBuilder, DegreeSumEqualsTwoM) {
  const Graph g = testing::small_planted(3);
  wt_t sum = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) sum += g.degree(v);
  EXPECT_NEAR(sum, g.two_m(), 1e-9);
}

TEST(GraphBuilder, RejectsOutOfRangeVertices) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), Error);
  EXPECT_THROW(b.add_edge(5, 0), Error);
}

TEST(GraphBuilder, RejectsNonPositiveWeights) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 1, 0.0), Error);
  EXPECT_THROW(b.add_edge(0, 1, -1.0), Error);
}

TEST(GraphBuilder, EmptyGraphHasZeroEverything) {
  GraphBuilder b(5);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 0.0);
  for (vid_t v = 0; v < 5; ++v) {
    EXPECT_EQ(g.out_degree(v), 0u);
    EXPECT_TRUE(g.neighbors(v).empty());
  }
}

TEST(GraphBuilder, MaxOutDegreeTracked) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  b.add_edge(1, 2);
  const Graph g = b.build();
  EXPECT_EQ(g.max_out_degree(), 3u);
}

TEST(GraphBuilder, BuilderReusableStateCleared) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  EXPECT_EQ(b.num_added(), 1u);
  (void)b.build();
  EXPECT_EQ(b.num_added(), 0u);
}

TEST(Graph, SummaryMentionsCounts) {
  const Graph g = testing::two_triangles();
  const std::string s = summary(g);
  EXPECT_NE(s.find("V=6"), std::string::npos);
  EXPECT_NE(s.find("E=7"), std::string::npos);
}

TEST(Graph, WeightsAndNeighborsAreParallelSpans) {
  const Graph g = testing::small_planted(13);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.neighbors(v).size(), g.weights(v).size());
    EXPECT_EQ(g.neighbors(v).size(), g.out_degree(v));
  }
}

TEST(Graph, ValidatePassesOnGeneratedGraphs) {
  testing::small_planted(17).validate();
  testing::two_triangles().validate();
}

}  // namespace
}  // namespace gala::graph
