// Phase 2 (graph contraction): modularity invariance, weight conservation,
// self-loop formation, and assignment composition.
#include "gala/core/aggregation.hpp"

#include <gtest/gtest.h>

#include "gala/core/modularity.hpp"
#include "gala/core/sequential_louvain.hpp"
#include "gala/graph/generators.hpp"
#include "test_util.hpp"

namespace gala::core {
namespace {

TEST(Aggregation, TwoTrianglesContractToTwoSuperVertices) {
  const auto g = testing::two_triangles();
  std::vector<cid_t> comm = {0, 0, 0, 1, 1, 1};
  const auto agg = aggregate(g, comm);
  EXPECT_EQ(agg.num_communities, 2u);
  EXPECT_EQ(agg.coarse.num_vertices(), 2u);
  // Each triangle: internal weight 3 -> self-loop 3; one bridge edge.
  EXPECT_DOUBLE_EQ(agg.coarse.self_loop(0), 3.0);
  EXPECT_DOUBLE_EQ(agg.coarse.self_loop(1), 3.0);
  EXPECT_DOUBLE_EQ(agg.coarse.total_weight(), g.total_weight());
}

TEST(Aggregation, ModularityIsInvariantUnderContraction) {
  // Q of the partition on the fine graph == Q of singletons on the coarse
  // graph: the defining property of Louvain's phase 2.
  for (const std::uint64_t seed : {1ull, 5ull, 9ull}) {
    const auto g = testing::small_planted(seed, 500, 10, 0.25);
    const auto phase1 = sequential_phase1(g);
    const wt_t q_fine = modularity(g, phase1.assignment);
    const auto agg = aggregate(g, phase1.assignment);
    std::vector<cid_t> singletons(agg.coarse.num_vertices());
    for (vid_t v = 0; v < agg.coarse.num_vertices(); ++v) singletons[v] = v;
    const wt_t q_coarse = modularity(agg.coarse, singletons);
    EXPECT_NEAR(q_fine, q_coarse, 1e-9) << "seed " << seed;
  }
}

TEST(Aggregation, TotalWeightAndDegreeConserved) {
  const auto g = testing::small_planted(3, 400, 8, 0.3);
  const auto phase1 = sequential_phase1(g);
  const auto agg = aggregate(g, phase1.assignment);
  EXPECT_NEAR(agg.coarse.total_weight(), g.total_weight(), 1e-9);
  EXPECT_NEAR(agg.coarse.two_m(), g.two_m(), 1e-9);
  // Super-vertex degree == sum of member degrees.
  std::vector<wt_t> expect(agg.num_communities, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) expect[agg.fine_to_coarse[v]] += g.degree(v);
  for (vid_t c = 0; c < agg.num_communities; ++c) {
    EXPECT_NEAR(agg.coarse.degree(c), expect[c], 1e-9);
  }
}

TEST(Aggregation, PreservesExistingSelfLoops) {
  graph::GraphBuilder b(3);
  b.add_edge(0, 0, 2.0);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  const auto g = b.build();
  std::vector<cid_t> comm = {0, 0, 1};
  const auto agg = aggregate(g, comm);
  // Community {0,1}: self-loop = 2 (v0's loop) + 1 (edge 0-1) = 3.
  EXPECT_DOUBLE_EQ(agg.coarse.self_loop(0), 3.0);
  EXPECT_NEAR(agg.coarse.total_weight(), g.total_weight(), 1e-12);
}

TEST(Aggregation, SingletonPartitionIsIdentity) {
  const auto g = testing::small_planted(7, 100, 4, 0.2);
  std::vector<cid_t> comm(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) comm[v] = v;
  const auto agg = aggregate(g, comm);
  EXPECT_EQ(agg.coarse.num_vertices(), g.num_vertices());
  EXPECT_EQ(agg.coarse.num_adjacency(), g.num_adjacency());
  EXPECT_NEAR(agg.coarse.total_weight(), g.total_weight(), 1e-9);
}

TEST(Aggregation, AllInOneCommunityGivesSingleLoopVertex) {
  const auto g = testing::two_triangles();
  std::vector<cid_t> comm(6, 3);  // sparse id is fine
  const auto agg = aggregate(g, comm);
  EXPECT_EQ(agg.coarse.num_vertices(), 1u);
  EXPECT_DOUBLE_EQ(agg.coarse.self_loop(0), g.total_weight());
  EXPECT_DOUBLE_EQ(agg.coarse.degree(0), g.two_m());
}

TEST(ComposeAssignment, ChainsTwoLevels) {
  const std::vector<cid_t> fine_to_coarse = {0, 0, 1, 2, 1};
  const std::vector<cid_t> coarse_assign = {5, 6, 5};
  const auto composed = compose_assignment(fine_to_coarse, coarse_assign);
  EXPECT_EQ(composed, (std::vector<cid_t>{5, 5, 6, 5, 6}));
}

TEST(ComposeAssignment, RejectsOutOfRangeCoarseIds) {
  const std::vector<cid_t> fine_to_coarse = {0, 3};
  const std::vector<cid_t> coarse_assign = {1, 1};
  EXPECT_THROW(compose_assignment(fine_to_coarse, coarse_assign), Error);
}

}  // namespace
}  // namespace gala::core
