// Consensus (ensemble) clustering extension.
#include "gala/core/consensus.hpp"

#include <gtest/gtest.h>

#include "gala/core/modularity.hpp"
#include "gala/graph/generators.hpp"
#include "gala/metrics/nmi.hpp"
#include "test_util.hpp"

namespace gala::core {
namespace {

TEST(Consensus, MatchesSingleRunOnSharpGraphs) {
  // With unambiguous structure every ensemble member agrees, agreement is
  // ~1, and the consensus equals the planted communities.
  graph::PlantedPartitionParams p;
  p.num_vertices = 800;
  p.num_communities = 8;
  p.avg_degree = 16;
  p.mixing = 0.05;
  p.seed = 9;
  std::vector<cid_t> truth;
  const auto g = graph::planted_partition(p, &truth);
  ConsensusConfig cfg;
  cfg.runs = 4;
  const auto r = consensus_louvain(g, cfg);
  EXPECT_GT(r.ensemble_agreement, 0.95);
  EXPECT_GT(metrics::nmi(r.assignment, truth), 0.95);
}

TEST(Consensus, QualityAtLeastCompetitiveWithSingleRun) {
  const auto g = testing::small_planted(13, 1000, 10, 0.35);
  const auto single = run_louvain(g);
  ConsensusConfig cfg;
  cfg.runs = 6;
  const auto ensemble = consensus_louvain(g, cfg);
  EXPECT_GT(ensemble.modularity, single.modularity - 0.03);
  EXPECT_NEAR(ensemble.modularity, modularity(g, ensemble.assignment), 1e-9);
}

TEST(Consensus, AgreementDropsOnBlurredGraphs) {
  // Sharp vs blurred: the agreement diagnostic must separate them.
  auto agreement_of = [](double mixing) {
    graph::PlantedPartitionParams p;
    p.num_vertices = 600;
    p.num_communities = 6;
    p.avg_degree = 14;
    p.mixing = mixing;
    p.seed = 21;
    const auto g = graph::planted_partition(p);
    ConsensusConfig cfg;
    cfg.runs = 4;
    return consensus_louvain(g, cfg).ensemble_agreement;
  };
  EXPECT_GT(agreement_of(0.05), agreement_of(0.55));
}

TEST(Consensus, SingleRunEnsembleIsIdentityWithFullAgreement) {
  const auto g = testing::small_planted(17, 300, 6, 0.2);
  ConsensusConfig cfg;
  cfg.runs = 1;
  const auto r = consensus_louvain(g, cfg);
  EXPECT_DOUBLE_EQ(r.ensemble_agreement, 1.0);
  EXPECT_GT(r.modularity, 0.0);
}

TEST(Consensus, DeterministicInBaseSeed) {
  const auto g = testing::small_planted(19, 400, 8, 0.3);
  ConsensusConfig cfg;
  cfg.runs = 3;
  const auto a = consensus_louvain(g, cfg);
  const auto b = consensus_louvain(g, cfg);
  EXPECT_EQ(a.assignment, b.assignment);
  cfg.base_seed = 999;
  const auto c = consensus_louvain(g, cfg);
  EXPECT_DOUBLE_EQ(a.modularity, modularity(g, a.assignment));
  (void)c;  // may or may not differ; must simply run
}

TEST(Consensus, RejectsBadConfig) {
  const auto g = testing::two_triangles();
  ConsensusConfig cfg;
  cfg.runs = 0;
  EXPECT_THROW(consensus_louvain(g, cfg), Error);
  cfg.runs = 2;
  cfg.threshold = 1.5;
  EXPECT_THROW(consensus_louvain(g, cfg), Error);
}

}  // namespace
}  // namespace gala::core
