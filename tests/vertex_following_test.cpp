// Vertex following (Grappolo's pendant-merge heuristic).
#include "gala/core/vertex_following.hpp"

#include <gtest/gtest.h>

#include "gala/core/gala.hpp"
#include "gala/core/modularity.hpp"
#include "gala/graph/generators.hpp"
#include "test_util.hpp"

namespace gala::core {
namespace {

TEST(VertexFollowing, MergesPendantsIntoAnchors) {
  // Triangle {0,1,2} with pendant 3 hanging off 0 and chain 4-5 off 1.
  graph::GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  b.add_edge(1, 4);
  b.add_edge(4, 5);
  const auto g = b.build();
  const auto vf = follow_vertices(g);
  vf.reduced.validate();
  // Pendant 3 merges into 0; chain 5 -> 4 -> 1 collapses entirely.
  EXPECT_EQ(vf.followers, 3u);
  EXPECT_EQ(vf.reduced.num_vertices(), 3u);
  EXPECT_EQ(vf.original_to_reduced[3], vf.original_to_reduced[0]);
  EXPECT_EQ(vf.original_to_reduced[4], vf.original_to_reduced[1]);
  EXPECT_EQ(vf.original_to_reduced[5], vf.original_to_reduced[1]);
  // Weight and degree mass preserved.
  EXPECT_NEAR(vf.reduced.total_weight(), g.total_weight(), 1e-12);
  EXPECT_NEAR(vf.reduced.two_m(), g.two_m(), 1e-12);
}

TEST(VertexFollowing, KeepsIsolatedAndSelfLoopVertices) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 2, 3.0);  // self-loop only
  // vertex 3 isolated
  const auto g = b.build();
  const auto vf = follow_vertices(g);
  // {0,1} is a mutual pendant pair: one follows the other; 2 and 3 stay.
  EXPECT_EQ(vf.reduced.num_vertices(), 3u);
  EXPECT_EQ(vf.original_to_reduced[0], vf.original_to_reduced[1]);
  EXPECT_NE(vf.original_to_reduced[2], vf.original_to_reduced[3]);
}

TEST(VertexFollowing, NoFollowersOnMinDegreeTwoGraphs) {
  const auto g = graph::ring_of_cliques(5, 4);
  const auto vf = follow_vertices(g);
  EXPECT_EQ(vf.followers, 0u);
  EXPECT_EQ(vf.reduced.num_vertices(), g.num_vertices());
}

TEST(VertexFollowing, ModularityInvariantUnderTheMerge) {
  // Any partition on the reduced graph expands to a partition on the
  // original with identical modularity.
  graph::GraphBuilder b(7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(3, 5);
  b.add_edge(2, 3);
  b.add_edge(0, 6);  // pendant
  const auto g = b.build();
  const auto vf = follow_vertices(g);
  std::vector<cid_t> reduced_comm(vf.reduced.num_vertices());
  for (vid_t v = 0; v < vf.reduced.num_vertices(); ++v) reduced_comm[v] = v % 2;
  const auto expanded = expand_assignment(vf, reduced_comm);
  EXPECT_NEAR(modularity(vf.reduced, reduced_comm), modularity(g, expanded), 1e-12);
}

TEST(VertexFollowing, PipelineQualityUnchangedWithPendants) {
  // Planted graph plus a pendant on every 10th vertex.
  auto base = testing::small_planted(5, 500, 10, 0.2);
  graph::GraphBuilder b(base.num_vertices() + 50);
  for (vid_t v = 0; v < base.num_vertices(); ++v) {
    auto nbrs = base.neighbors(v);
    auto ws = base.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] >= v) b.add_edge(v, nbrs[i], ws[i]);
    }
  }
  for (vid_t p = 0; p < 50; ++p) b.add_edge(p * 10, base.num_vertices() + p);
  const auto g = b.build();

  GalaConfig plain, following;
  following.vertex_following = true;
  const auto a = run_louvain(g, plain);
  const auto c = run_louvain(g, following);
  EXPECT_NEAR(c.modularity, a.modularity, 0.01);
  EXPECT_NEAR(core::modularity(g, c.assignment), c.modularity, 1e-9);
  // Each pendant shares its anchor's community.
  for (vid_t p = 0; p < 50; ++p) {
    EXPECT_EQ(c.assignment[base.num_vertices() + p], c.assignment[p * 10]);
  }
}

TEST(VertexFollowing, ExpandRejectsWrongSizes) {
  const auto g = testing::two_triangles();
  const auto vf = follow_vertices(g);
  std::vector<cid_t> wrong(vf.reduced.num_vertices() + 1, 0);
  EXPECT_THROW(expand_assignment(vf, wrong), Error);
}

}  // namespace
}  // namespace gala::core
