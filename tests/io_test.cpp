// Graph file I/O: text edge-list and binary round trips, error paths.
#include "gala/graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "test_util.hpp"

namespace gala::graph {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path() / "gala_io_test";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
  }
};

bool graphs_equal(const Graph& a, const Graph& b) {
  if (a.num_vertices() != b.num_vertices() || a.num_adjacency() != b.num_adjacency()) return false;
  for (vid_t v = 0; v < a.num_vertices(); ++v) {
    auto na = a.neighbors(v), nb = b.neighbors(v);
    auto wa = a.weights(v), wb = b.weights(v);
    if (!std::equal(na.begin(), na.end(), nb.begin())) return false;
    for (std::size_t i = 0; i < wa.size(); ++i) {
      if (std::abs(wa[i] - wb[i]) > 1e-12) return false;
    }
  }
  return true;
}

TEST_F(IoTest, EdgeListRoundTrip) {
  const Graph g = testing::small_planted(7, 200, 4, 0.2);
  const std::string path = temp_path("roundtrip.txt");
  save_edge_list(g, path);
  const Graph loaded = load_edge_list(path, g.num_vertices());
  EXPECT_TRUE(graphs_equal(g, loaded));
}

TEST_F(IoTest, BinaryRoundTrip) {
  const Graph g = testing::small_planted(9, 300, 6, 0.3);
  const std::string path = temp_path("roundtrip.bin");
  save_binary(g, path);
  const Graph loaded = load_binary(path);
  EXPECT_TRUE(graphs_equal(g, loaded));
}

TEST_F(IoTest, BinaryPreservesSelfLoops) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 2.0);
  b.add_edge(1, 1, 3.0);
  const Graph g = b.build();
  const std::string path = temp_path("loops.bin");
  save_binary(g, path);
  const Graph loaded = load_binary(path);
  EXPECT_DOUBLE_EQ(loaded.self_loop(1), 3.0);
  EXPECT_DOUBLE_EQ(loaded.degree(1), 8.0);
}

TEST_F(IoTest, ParsesCommentsAndWeights) {
  const std::string path = temp_path("comments.txt");
  std::ofstream out(path);
  out << "# a comment\n% another\n0 1 2.5\n\n1 2\n";
  out.close();
  const Graph g = load_edge_list(path);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.weights(0)[0], 2.5);
  EXPECT_DOUBLE_EQ(g.weights(1)[1], 1.0);  // default weight
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(load_edge_list("/nonexistent/gala/file.txt"), Error);
  EXPECT_THROW(load_binary("/nonexistent/gala/file.bin"), Error);
}

TEST_F(IoTest, MalformedLineThrows) {
  const std::string path = temp_path("bad.txt");
  std::ofstream(path) << "0 not-a-number\n";
  EXPECT_THROW(load_edge_list(path), Error);
}

TEST_F(IoTest, NonPositiveWeightThrows) {
  const std::string path = temp_path("badw.txt");
  std::ofstream(path) << "0 1 -3\n";
  EXPECT_THROW(load_edge_list(path), Error);
}

TEST_F(IoTest, ExplicitVertexCountTooSmallThrows) {
  const std::string path = temp_path("range.txt");
  std::ofstream(path) << "0 9\n";
  EXPECT_THROW(load_edge_list(path, 5), Error);
}

TEST_F(IoTest, BadBinaryMagicThrows) {
  const std::string path = temp_path("garbage.bin");
  std::ofstream(path) << "this is not a graph";
  EXPECT_THROW(load_binary(path), Error);
}

}  // namespace
}  // namespace gala::graph
