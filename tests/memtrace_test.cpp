// gala::memtrace — whole-system memory observability. Covers the registry
// arithmetic, the determinism contract (the deterministic fields of the mem
// report are a function of the request sequence, so they are byte-identical
// across pooling and sync configurations, mirroring the health report), the
// leak detector, the epoch-aligned residency timeline and its Chrome counter
// track, and the provenance stamp shared by every JSON report writer.
#include "gala/memtrace/memtrace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "gala/common/json.hpp"
#include "gala/core/bsp_louvain.hpp"
#include "gala/core/gala.hpp"
#include "gala/exec/context.hpp"
#include "gala/exec/workspace.hpp"
#include "gala/governor/governor.hpp"
#include "gala/metrics/health.hpp"
#include "gala/multigpu/dist_louvain.hpp"
#include "gala/profiler/profiler.hpp"
#include "gala/telemetry/flight_recorder.hpp"
#include "gala/telemetry/telemetry.hpp"
#include "test_util.hpp"

namespace gala::memtrace {
namespace {

// ---------------------------------------------------------------------------
// Registry arithmetic on a private instance (the global registry is shared
// by the whole binary; unit math uses a local one).

TEST(MemRegistryTest, AllocFreeChargeResidentArithmetic) {
  MemRegistry reg;
  reg.on_alloc("phase1.delta", 128, 100, /*workspace=*/true);
  reg.on_alloc("phase1.delta", 256, 200, /*workspace=*/true);
  reg.on_free("phase1.delta", 128);
  reg.charge("multigpu.codec_frames", 64);
  reg.charge("multigpu.codec_frames", 32);
  reg.set_resident("graph.csr", 1000);
  reg.set_resident("graph.csr", 500);

  const MemReport rep = reg.report();
  ASSERT_EQ(rep.subsystems.size(), 3u);  // graph, multigpu, phase1 (sorted)

  const SubsystemStats& graph = rep.subsystems[0];
  EXPECT_EQ(graph.name, "graph");
  EXPECT_EQ(graph.resident, 500u);
  EXPECT_EQ(graph.resident_peak, 1000u);

  const SubsystemStats& mg = rep.subsystems[1];
  EXPECT_EQ(mg.name, "multigpu");
  EXPECT_EQ(mg.allocs, 2u);
  EXPECT_EQ(mg.bytes_total, 96u);
  EXPECT_EQ(mg.live, 0u);   // charge() never holds bytes live
  EXPECT_EQ(mg.peak, 64u);  // largest single charge

  const SubsystemStats& p1 = rep.subsystems[2];
  EXPECT_EQ(p1.name, "phase1");
  ASSERT_EQ(p1.tags.size(), 1u);
  EXPECT_EQ(p1.tags[0].allocs, 2u);
  EXPECT_EQ(p1.tags[0].frees, 1u);
  EXPECT_EQ(p1.tags[0].live, 256u);
  EXPECT_EQ(p1.tags[0].peak, 384u);  // both leases overlapped
  EXPECT_EQ(p1.tags[0].waste, 84u);  // (128-100) + (256-200)
  EXPECT_TRUE(p1.tags[0].workspace);

  EXPECT_EQ(rep.peak_ws_bytes(), 384u);
  EXPECT_EQ(rep.peak_total_bytes(), 384u + 64u + 1000u);
  EXPECT_EQ(rep.live_bytes(), 256u + 500u);
}

TEST(MemRegistryTest, UnknownFreeAndUnderflowAreIgnored) {
  MemRegistry reg;
  reg.on_free("never.seen", 64);  // must not create a cell or throw
  reg.on_alloc("a.b", 64, 64, false);
  reg.on_free("a.b", 128);  // over-credit clamps to zero, not wraparound
  const MemReport rep = reg.report();
  ASSERT_EQ(rep.subsystems.size(), 1u);
  EXPECT_EQ(rep.subsystems[0].live, 0u);
}

TEST(MemRegistryTest, DisarmedWrappersAreNoOps) {
  MemRegistry::global().reset();
  MemRegistry::disarm();
  charge("test.disarmed", 4096);
  set_resident("test.disarmed", 4096);
  MemRegistry::arm();
  const MemReport rep = MemRegistry::global().report();
  for (const auto& s : rep.subsystems) EXPECT_NE(s.name, "test");
}

// ---------------------------------------------------------------------------
// Determinism: the deterministic surface json(/*include_host=*/false) is a
// function of the modeled request sequence alone.

std::string louvain_mem_json(const graph::Graph& g, bool pooling,
                             core::PruningStrategy pruning = core::PruningStrategy::ModularityGain,
                             core::HashTablePolicy table = core::HashTablePolicy::Hierarchical) {
  exec::ExecutionContext ctx({}, /*seed=*/7, pooling);
  core::GalaConfig cfg;
  cfg.bsp.parallel = false;  // shared-rank pool workers would interleave peaks
  cfg.bsp.pruning = pruning;
  cfg.bsp.hashtable = table;
  cfg.bsp.context = &ctx;
  MemRegistry::global().reset();
  (void)core::run_louvain(g, cfg);
  return MemRegistry::global().report().json(/*include_host=*/false);
}

TEST(MemDeterminism, ByteIdenticalAcrossPooling) {
  const auto g = gala::testing::small_planted();
  const std::string pooled = louvain_mem_json(g, /*pooling=*/true);
  EXPECT_EQ(louvain_mem_json(g, /*pooling=*/false), pooled);
}

TEST(MemDeterminism, EveryPruningAndHashtableConfigIsSelfDeterministic) {
  const auto g = gala::testing::small_planted();
  for (const auto pruning :
       {core::PruningStrategy::None, core::PruningStrategy::Strict,
        core::PruningStrategy::Relaxed, core::PruningStrategy::ModularityGain}) {
    for (const auto table : {core::HashTablePolicy::GlobalOnly, core::HashTablePolicy::Unified,
                             core::HashTablePolicy::Hierarchical}) {
      EXPECT_EQ(louvain_mem_json(g, true, pruning, table),
                louvain_mem_json(g, true, pruning, table))
          << "pruning " << static_cast<int>(pruning) << ", table " << static_cast<int>(table);
    }
  }
}

MemReport dist_mem_report(const graph::Graph& g, bool overlap, bool compress) {
  multigpu::DistributedConfig cfg;
  cfg.num_gpus = 4;
  cfg.overlap = overlap;
  cfg.compress = compress;
  MemRegistry::global().reset();
  (void)multigpu::distributed_phase1(g, cfg);
  return MemRegistry::global().report();
}

TEST(MemDeterminism, DistributedSyncModesAreSelfDeterministic) {
  const auto g = gala::testing::small_planted();
  const std::string blocking = dist_mem_report(g, false, false).json(false);
  EXPECT_EQ(dist_mem_report(g, false, false).json(false), blocking);
  const std::string overlapped = dist_mem_report(g, true, true).json(false);
  EXPECT_EQ(dist_mem_report(g, true, true).json(false), overlapped);

  // The overlap pipeline adds its own staging/codec tags, so whole-report
  // identity across modes is not the contract — but tags shared by both
  // modes account identically (same graph, same trajectory).
  const auto find_tag = [](const MemReport& rep, const std::string& name) -> const TagStats* {
    for (const auto& s : rep.subsystems) {
      for (const auto& t : s.tags) {
        if (t.name == name) return &t;
      }
    }
    return nullptr;
  };
  const MemReport a = dist_mem_report(g, false, false);
  const MemReport b = dist_mem_report(g, true, true);
  const TagStats* csr_a = find_tag(a, "graph.csr");
  const TagStats* csr_b = find_tag(b, "graph.csr");
  ASSERT_NE(csr_a, nullptr);
  ASSERT_NE(csr_b, nullptr);
  EXPECT_EQ(csr_a->resident_peak, csr_b->resident_peak);
  EXPECT_GT(csr_a->resident_peak, 0u);
}

// ---------------------------------------------------------------------------
// Workspace integration: the registry's workspace tags mirror the pool's own
// counters, and retention across a level reset is flagged as a leak.

TEST(MemWorkspace, AccountingMatchesWorkspaceStats) {
  const auto g = gala::testing::small_planted();
  exec::ExecutionContext ctx({}, 7, /*pooling=*/true);
  core::GalaConfig cfg;
  cfg.bsp.parallel = false;
  cfg.bsp.context = &ctx;
  MemRegistry::global().reset();
  const auto r = core::run_louvain(g, cfg);

  std::uint64_t allocs = 0, frees = 0;
  for (const auto& s : MemRegistry::global().report().subsystems) {
    for (const auto& t : s.tags) {
      if (!t.workspace) continue;
      allocs += t.allocs;
      frees += t.frees;
    }
  }
  EXPECT_EQ(allocs, r.workspace.checkouts);
  EXPECT_EQ(frees, r.workspace.checkouts);  // every lease released by completion
  EXPECT_GT(allocs, 0u);
}

TEST(MemWorkspace, LeaseHeldAcrossLevelResetIsALeak) {
  MemRegistry::global().reset();
  exec::Workspace ws(/*pooling=*/true);
  {
    auto lease = ws.take<std::uint64_t>(100, "test.retained");
    ws.reset_level();  // lease still live: retention the pool contract forbids
    const MemReport rep = MemRegistry::global().report();
    EXPECT_FALSE(rep.leak_free());
    EXPECT_EQ(rep.level_resets, 1u);
    bool flagged = false;
    for (const TagStats* t : rep.leaks()) {
      if (t->name == "test.retained") {
        flagged = true;
        EXPECT_GE(t->retained, 100 * sizeof(std::uint64_t));
      }
    }
    EXPECT_TRUE(flagged);
    // The stale lease's release is quiet (the epoch trap fires on span()
    // access, not destruction); release now so the test can end cleanly.
  }
  MemRegistry::global().reset();
  ws.reset_level();
  EXPECT_TRUE(MemRegistry::global().report().leak_free());
}

// ---------------------------------------------------------------------------
// Residency timeline and the Chrome counter track.

TEST(MemTimeline, AlignsWithIterationAndLevelBoundaries) {
  const auto g = gala::testing::small_planted();
  exec::ExecutionContext ctx({}, 7, true);
  core::GalaConfig cfg;
  cfg.bsp.parallel = false;
  cfg.bsp.context = &ctx;
  MemRegistry::global().reset();
  const auto r = core::run_louvain(g, cfg);

  const MemReport rep = MemRegistry::global().report();
  std::uint64_t iter_marks = 0, level_marks = 0, total_iterations = 0;
  for (const auto& e : rep.timeline) {
    (e.kind == EpochKind::Iteration ? iter_marks : level_marks) += 1;
    EXPECT_GT(e.total, 0u) << "epoch snapshots should see resident graph bytes";
  }
  for (const auto& lv : r.levels) total_iterations += static_cast<std::uint64_t>(lv.iterations);
  EXPECT_EQ(iter_marks, total_iterations);
  EXPECT_EQ(level_marks, r.levels.size());
  EXPECT_EQ(rep.timeline_dropped, 0u);
}

TEST(MemTimeline, EmitsChromeCounterEventsOnMemoryTrack) {
  auto& tracer = telemetry::Tracer::global();
  tracer.reset();
  tracer.set_enabled(true);
  const auto g = gala::testing::two_triangles();
  exec::ExecutionContext ctx({}, 7, true);
  core::GalaConfig cfg;
  cfg.bsp.parallel = false;
  cfg.bsp.context = &ctx;
  MemRegistry::global().reset();
  (void)core::run_louvain(g, cfg);

  const JsonValue doc = parse_json(tracer.chrome_trace_json());
  tracer.set_enabled(false);
  tracer.reset();
  std::size_t counters = 0;
  for (const auto& e : doc.at("traceEvents").array) {
    if (e.at("ph").string != "C") continue;
    EXPECT_EQ(e.at("name").string, "memory");
    ASSERT_TRUE(e.find("args") != nullptr);
    EXPECT_FALSE(e.at("args").object.empty());
    ++counters;
  }
  EXPECT_GT(counters, 0u);
}

// ---------------------------------------------------------------------------
// Budget sweep: every budget from the unbudgeted peak down to the minimum
// feasible one must produce the exact unbudgeted partition, keep the modeled
// peak within the budget, and leave the leak check clean — whatever ladder
// rungs the pressure engages, and for both pooling modes.

TEST(MemBudgetSweep, PartitionsAreBitIdenticalDownToMinFeasible) {
  const auto g = gala::testing::small_planted();
  for (const bool pooling : {true, false}) {
    const auto run = [&g, pooling] {
      exec::ExecutionContext ctx({}, /*seed=*/7, pooling);
      core::GalaConfig cfg;
      cfg.bsp.parallel = false;
      cfg.bsp.context = &ctx;
      MemRegistry::global().reset();
      return core::run_louvain(g, cfg).assignment;
    };
    const std::vector<cid_t> reference = run();
    const std::uint64_t peak = MemRegistry::global().report().peak_total_bytes();
    ASSERT_GT(peak, 0u);

    const auto feasible = [&](std::uint64_t budget) {
      governor::BudgetConfig cfg;
      cfg.total_bytes = budget;
      governor::ScopedBudget scoped(cfg);
      std::vector<cid_t> partition;
      try {
        partition = run();
      } catch (const ResourceExhausted&) {
        return false;
      }
      const MemReport rep = MemRegistry::global().report();
      return rep.peak_total_bytes() <= budget && rep.leak_free() && partition == reference;
    };
    const std::uint64_t min_budget = governor::min_feasible_budget(peak, feasible);
    ASSERT_GT(min_budget, 0u) << "pooling=" << pooling
                              << ": even the unbudgeted peak was infeasible";

    // 100% / 75% / 50% of the unbudgeted peak, clamped to the feasibility
    // floor the probe just established, plus the floor itself.
    for (const std::uint64_t budget :
         {std::max(peak, min_budget), std::max(peak * 3 / 4, min_budget),
          std::max(peak / 2, min_budget), min_budget}) {
      EXPECT_TRUE(feasible(budget)) << "pooling=" << pooling << " budget=" << budget
                                    << " peak=" << peak << " min_feasible=" << min_budget;
    }
  }
}

// ---------------------------------------------------------------------------
// Report document shape and cross-writer provenance.

void expect_provenance(const std::string& json, const std::string& schema) {
  const JsonValue doc = parse_json(json);
  const JsonValue* prov = doc.find("provenance");
  ASSERT_NE(prov, nullptr) << schema << " report has no provenance";
  EXPECT_FALSE(prov->at("git_sha").string.empty());
  EXPECT_FALSE(prov->at("build_type").string.empty());
  EXPECT_EQ(prov->at("schema").string, schema);
  EXPECT_GE(prov->at("schema_version").number, 1);
}

TEST(MemReportTest, JsonShapeAndSanity) {
  const auto g = gala::testing::small_planted();
  exec::ExecutionContext ctx({}, 7, true);
  core::GalaConfig cfg;
  cfg.bsp.parallel = false;
  cfg.bsp.context = &ctx;
  MemRegistry::global().reset();
  (void)core::run_louvain(g, cfg);
  const MemReport rep = MemRegistry::global().report();

  EXPECT_LE(rep.peak_ws_bytes(), rep.peak_total_bytes());
  EXPECT_GE(rep.frag_pct(), 0.0);
  EXPECT_LE(rep.frag_pct(), 100.0);
  EXPECT_TRUE(rep.leak_free());

  const JsonValue doc = parse_json(rep.json());
  EXPECT_EQ(doc.at("mem_schema").number, MemReport::kSchema);
  EXPECT_TRUE(doc.at("armed").boolean);
  EXPECT_FALSE(doc.at("subsystems").array.empty());
  EXPECT_EQ(doc.at("totals").at("peak_ws_bytes").number,
            static_cast<double>(rep.peak_ws_bytes()));
  EXPECT_TRUE(doc.at("leak_check").at("clean").boolean);
  EXPECT_FALSE(doc.at("timeline").array.empty());
  EXPECT_NE(doc.find("host"), nullptr);
  // The deterministic surface must not carry the pool-state dependent host
  // section.
  EXPECT_EQ(parse_json(rep.json(false)).find("host"), nullptr);
}

TEST(MemReportTest, GovernorSectionSplicesInAndIsAbsentWhenEmpty) {
  MemRegistry reg;
  reg.on_alloc("a.b", 64, 64, /*workspace=*/false);
  MemReport rep = reg.report();
  EXPECT_EQ(parse_json(rep.json(false)).find("governor"), nullptr)
      << "an ungoverned report must not grow a governor key (byte-identity pin)";
  rep.governor = "{\"budget_total\":123,\"rung\":\"none\"}";
  const JsonValue doc = parse_json(rep.json(false));
  ASSERT_NE(doc.find("governor"), nullptr);
  EXPECT_EQ(doc.at("governor").at("budget_total").number, 123.0);
  EXPECT_EQ(doc.at("governor").at("rung").string, "none");
}

TEST(ProvenanceTest, EveryReportWriterIsStamped) {
  MemRegistry::global().reset();
  expect_provenance(MemRegistry::global().report().json(), "mem");

  metrics::HealthMonitor monitor;
  expect_provenance(monitor.report().json(), "health");

  expect_provenance(telemetry::FlightRecorder::global().json("test"), "flight");

  auto& tracer = telemetry::Tracer::global();
  expect_provenance(tracer.chrome_trace_json(), "trace");
  expect_provenance(telemetry::metrics_json(tracer, telemetry::Registry::global()), "metrics");

  expect_provenance(profiler::Profiler::global().report_json(), "profile");
}

}  // namespace
}  // namespace gala::memtrace
