// Tests for the synthetic graph generators, including property-style sweeps
// (TEST_P) over their parameter spaces.
#include "gala/graph/generators.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "gala/graph/standin.hpp"

namespace gala::graph {
namespace {

TEST(ErdosRenyi, ExactEdgeCountNoLoopsNoDuplicates) {
  const Graph g = erdos_renyi(100, 500, 1);
  g.validate();
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 500u);
  for (vid_t v = 0; v < g.num_vertices(); ++v) EXPECT_DOUBLE_EQ(g.self_loop(v), 0.0);
}

TEST(ErdosRenyi, RejectsImpossibleEdgeCounts) {
  EXPECT_THROW(erdos_renyi(4, 100, 1), Error);
  EXPECT_THROW(erdos_renyi(1, 0, 1), Error);
}

TEST(ErdosRenyi, DeterministicBySeed) {
  const Graph a = erdos_renyi(50, 100, 9);
  const Graph b = erdos_renyi(50, 100, 9);
  ASSERT_EQ(a.num_adjacency(), b.num_adjacency());
  for (vid_t v = 0; v < a.num_vertices(); ++v) {
    ASSERT_TRUE(std::equal(a.neighbors(v).begin(), a.neighbors(v).end(),
                           b.neighbors(v).begin()));
  }
}

TEST(RingOfCliques, StructureIsExact) {
  const vid_t k = 5, s = 4;
  const Graph g = ring_of_cliques(k, s);
  g.validate();
  EXPECT_EQ(g.num_vertices(), k * s);
  // Edges: k * C(s,2) cliques + k bridges.
  EXPECT_EQ(g.num_edges(), k * (s * (s - 1) / 2) + k);
}

TEST(RingOfCliques, SingleCliqueHasNoBridges) {
  const Graph g = ring_of_cliques(1, 5);
  EXPECT_EQ(g.num_edges(), 10u);
}

TEST(SamplePowerLaw, RespectsBoundsAndSkew) {
  Xoshiro256 rng(3);
  const auto xs = sample_power_law(2, 50, 2.5, 20000, rng);
  vid_t lo = 1000, hi = 0;
  double mean = 0;
  for (const vid_t x : xs) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    mean += x;
  }
  mean /= static_cast<double>(xs.size());
  EXPECT_GE(lo, 2u);
  EXPECT_LE(hi, 50u);
  // Power law with gamma 2.5 on [2,50]: mean well below the midpoint.
  EXPECT_LT(mean, 8.0);
  EXPECT_GT(mean, 2.0);
}

struct PlantedCase {
  vid_t n;
  vid_t k;
  double mixing;
  double degree_exponent;
};

class PlantedPartitionSweep : public ::testing::TestWithParam<PlantedCase> {};

TEST_P(PlantedPartitionSweep, ProducesRequestedStructure) {
  const auto param = GetParam();
  PlantedPartitionParams p;
  p.num_vertices = param.n;
  p.num_communities = param.k;
  p.avg_degree = 12;
  p.mixing = param.mixing;
  p.degree_exponent = param.degree_exponent;
  p.seed = 17;
  std::vector<cid_t> truth;
  const Graph g = planted_partition(p, &truth);
  g.validate();

  ASSERT_EQ(truth.size(), param.n);
  // Every community non-empty, ids in range.
  std::vector<vid_t> sizes(param.k, 0);
  for (const cid_t c : truth) {
    ASSERT_LT(c, param.k);
    ++sizes[c];
  }
  for (const vid_t s : sizes) EXPECT_GT(s, 0u);

  // Empirical mixing: fraction of edge weight crossing communities should
  // track the requested mixing (the spanning path adds a little internal).
  wt_t cross = 0, total = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    auto nbrs = g.neighbors(v);
    auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      total += ws[i];
      if (truth[nbrs[i]] != truth[v]) cross += ws[i];
    }
  }
  EXPECT_NEAR(cross / total, param.mixing, 0.08);

  // Average weighted degree near the request (the per-community spanning
  // path adds ~2 on top of avg_degree).
  EXPECT_NEAR(g.two_m() / param.n, 12.0 + 2.0, 3.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlantedPartitionSweep,
                         ::testing::Values(PlantedCase{2000, 10, 0.1, 0.0},
                                           PlantedCase{2000, 10, 0.4, 0.0},
                                           PlantedCase{2000, 40, 0.25, 2.5},
                                           PlantedCase{5000, 5, 0.05, 2.1},
                                           PlantedCase{1000, 1, 0.0, 0.0}));

TEST(PlantedPartition, SkewProducesHubs) {
  PlantedPartitionParams p;
  p.num_vertices = 5000;
  p.num_communities = 10;
  p.avg_degree = 20;
  p.mixing = 0.3;
  p.degree_exponent = 2.1;
  p.max_degree_ratio = 200;
  p.seed = 23;
  const Graph g = planted_partition(p);
  // Hubs: max degree far above the average.
  EXPECT_GT(g.max_out_degree(), 4 * 20u);
}

TEST(PlantedPartition, RejectsBadParameters) {
  PlantedPartitionParams p;
  p.num_vertices = 10;
  p.num_communities = 20;  // more communities than vertices
  EXPECT_THROW(planted_partition(p), Error);
  p.num_communities = 2;
  p.mixing = 1.0;
  EXPECT_THROW(planted_partition(p), Error);
}

TEST(Rmat, ProducesSkewedGraphOfRequestedScale) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.seed = 5;
  const Graph g = rmat(p);
  g.validate();
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_GT(g.num_edges(), 4000u);
  // Heavy skew: the max degree dwarfs the average.
  const double avg = static_cast<double>(g.num_adjacency()) / g.num_vertices();
  EXPECT_GT(g.max_out_degree(), 5 * avg);
}

TEST(Rmat, RejectsBadQuadrants) {
  RmatParams p;
  p.a = 0.9;
  p.b = 0.2;
  p.c = 0.2;  // sums beyond 1
  EXPECT_THROW(rmat(p), Error);
}

class LfrSweep : public ::testing::TestWithParam<double> {};

TEST_P(LfrSweep, MixingAndDegreesTrackParameters) {
  const double mu = GetParam();
  LfrParams p;
  p.num_vertices = 3000;
  p.min_degree = 5;
  p.max_degree = 40;
  p.min_community = 20;
  p.max_community = 200;
  p.mixing = mu;
  p.seed = 31;
  std::vector<cid_t> truth;
  const Graph g = lfr(p, truth);
  g.validate();
  ASSERT_EQ(truth.size(), p.num_vertices);

  // Community sizes within bounds (the last may be folded, so allow upper
  // slack of one max_community).
  std::vector<vid_t> sizes;
  {
    std::vector<vid_t> count(p.num_vertices, 0);
    cid_t max_c = 0;
    for (const cid_t c : truth) {
      ++count[c];
      max_c = std::max(max_c, c);
    }
    for (cid_t c = 0; c <= max_c; ++c) {
      if (count[c] > 0) sizes.push_back(count[c]);
    }
  }
  EXPECT_GT(sizes.size(), 3u);
  for (const vid_t s : sizes) EXPECT_LE(s, 2 * p.max_community);

  // Empirical mixing within tolerance of mu (stub matching is approximate).
  wt_t cross = 0, total = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      total += 1;
      if (truth[nbrs[i]] != truth[v]) cross += 1;
    }
  }
  EXPECT_NEAR(cross / total, mu, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Mixings, LfrSweep, ::testing::Values(0.1, 0.3, 0.5));

TEST(StandIns, AllSevenBuildAndValidate) {
  for (const auto& abbr : standin_abbrs()) {
    const Graph g = make_standin(abbr, 0.05);
    g.validate();
    EXPECT_GT(g.num_vertices(), 0u) << abbr;
    EXPECT_GT(g.num_edges(), 0u) << abbr;
    EXPECT_FALSE(standin_full_name(abbr).empty());
  }
}

TEST(StandIns, ScaleGrowsTheGraph) {
  const Graph small = make_standin("LJ", 0.05);
  const Graph large = make_standin("LJ", 0.2);
  EXPECT_GT(large.num_vertices(), 2 * small.num_vertices());
}

TEST(StandIns, UnknownAbbrThrows) {
  EXPECT_THROW(make_standin("XX"), Error);
  EXPECT_THROW(standin_full_name("XX"), Error);
}

}  // namespace
}  // namespace gala::graph
