// Shared helpers for the GALA test suites.
#pragma once

#include <gtest/gtest.h>

#include "gala/graph/csr.hpp"
#include "gala/graph/generators.hpp"

namespace gala::testing {

/// Tiny two-triangle graph joined by one bridge: the canonical hand-checkable
/// community structure. Vertices 0-2 and 3-5; bridge {2,3}.
inline graph::Graph two_triangles() {
  graph::GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(3, 5);
  b.add_edge(2, 3);
  return b.build();
}

/// Karate-club-sized deterministic planted graph for mid-size tests.
inline graph::Graph small_planted(std::uint64_t seed = 5, vid_t n = 400, vid_t k = 8,
                                  double mixing = 0.15) {
  graph::PlantedPartitionParams p;
  p.num_vertices = n;
  p.num_communities = k;
  p.avg_degree = 12;
  p.mixing = mixing;
  p.seed = seed;
  return graph::planted_partition(p);
}

}  // namespace gala::testing
