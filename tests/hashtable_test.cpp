// NeighborCommunityTable under all three placement policies: correctness
// against a std::map reference (property-swept), placement behaviour, and
// the Fig. 4 accounting.
#include "gala/core/hashtables.hpp"

#include <gtest/gtest.h>

#include <map>

#include "gala/common/prng.hpp"

namespace gala::core {
namespace {

constexpr std::size_t kBucketBytes = sizeof(HashBucket);

struct TableHarness {
  gpusim::SharedMemoryArena arena;
  HashScratch scratch;
  gpusim::MemoryStats stats;

  explicit TableHarness(std::size_t shared_buckets)
      : arena(shared_buckets * kBucketBytes) {}

  NeighborCommunityTable make(HashTablePolicy policy, vid_t capacity, std::uint64_t salt = 42) {
    return NeighborCommunityTable(policy, arena, scratch, capacity, salt, stats);
  }
};

class PolicyTest : public ::testing::TestWithParam<HashTablePolicy> {};

TEST_P(PolicyTest, AccumulatesLikeAReferenceMap) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    TableHarness h(16);
    auto table = h.make(GetParam(), 256, seed);
    Xoshiro256 rng(seed);
    std::map<cid_t, wt_t> reference;
    auto total_of = [](cid_t c) { return static_cast<wt_t>(c) * 10; };
    for (int i = 0; i < 256; ++i) {
      const cid_t c = static_cast<cid_t>(rng.next_below(40));
      const wt_t w = 1.0 + rng.next_double();
      table.upsert(c, w, total_of);
      reference[c] += w;
    }
    EXPECT_EQ(table.size(), reference.size());
    std::map<cid_t, wt_t> seen;
    table.for_each([&](cid_t c, wt_t w, wt_t total) {
      seen[c] = w;
      EXPECT_DOUBLE_EQ(total, total_of(c)) << "cached D_V(C) for " << c;
    });
    ASSERT_EQ(seen.size(), reference.size());
    for (const auto& [c, w] : reference) EXPECT_NEAR(seen[c], w, 1e-12) << "community " << c;
  }
}

TEST_P(PolicyTest, ResetEmptiesTheTableForReuse) {
  TableHarness h(16);
  auto table = h.make(GetParam(), 64);
  table.upsert(5, 1.0, [](cid_t) { return 0.0; });
  table.upsert(9, 2.0, [](cid_t) { return 0.0; });
  EXPECT_EQ(table.size(), 2u);
  table.reset();
  EXPECT_EQ(table.size(), 0u);
  int visited = 0;
  table.for_each([&](cid_t, wt_t, wt_t) { ++visited; });
  EXPECT_EQ(visited, 0);
  // The scratch slab must be clean for the next vertex.
  for (const auto& b : h.scratch) EXPECT_EQ(b.key, kInvalidCid);
}

TEST_P(PolicyTest, HandlesMoreKeysThanSharedBuckets) {
  TableHarness h(4);  // tiny shared part forces overflow
  auto table = h.make(GetParam(), 128);
  for (cid_t c = 0; c < 100; ++c) table.upsert(c, 1.0, [](cid_t) { return 0.0; });
  EXPECT_EQ(table.size(), 100u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest,
                         ::testing::Values(HashTablePolicy::GlobalOnly, HashTablePolicy::Unified,
                                           HashTablePolicy::Hierarchical),
                         [](const auto& info) {
                           switch (info.param) {
                             case HashTablePolicy::GlobalOnly:
                               return std::string("GlobalOnly");
                             case HashTablePolicy::Unified:
                               return std::string("Unified");
                             case HashTablePolicy::Hierarchical:
                               return std::string("Hierarchical");
                           }
                           return std::string("Unknown");
                         });

TEST(HashTablePlacement, GlobalOnlyNeverTouchesShared) {
  TableHarness h(16);
  auto table = h.make(HashTablePolicy::GlobalOnly, 64);
  for (cid_t c = 0; c < 50; ++c) table.upsert(c, 1.0, [](cid_t) { return 0.0; });
  EXPECT_EQ(h.stats.ht_maintain_shared, 0u);
  EXPECT_EQ(h.stats.ht_access_shared, 0u);
  EXPECT_EQ(h.stats.shared_reads, 0u);
  EXPECT_GT(h.stats.ht_maintain_global, 0u);
}

TEST(HashTablePlacement, HierarchicalPrioritisesShared) {
  // With enough shared buckets, hierarchical keeps (nearly) everything in
  // shared memory; unified spills ~g/(s+g) of entries to global by design.
  constexpr vid_t kKeys = 24;
  TableHarness hier_h(64), uni_h(64);
  auto hier = hier_h.make(HashTablePolicy::Hierarchical, 64);
  auto uni = uni_h.make(HashTablePolicy::Unified, 64);
  for (cid_t c = 0; c < kKeys; ++c) {
    hier.upsert(c, 1.0, [](cid_t) { return 0.0; });
    uni.upsert(c, 1.0, [](cid_t) { return 0.0; });
  }
  // Single-probe h0 into 64 shared buckets: some birthday collisions spill
  // to global, but the bulk stays shared.
  EXPECT_GT(hier_h.stats.maintenance_rate(), 0.65);
  EXPECT_GT(hier_h.stats.maintenance_rate(), uni_h.stats.maintenance_rate());
  EXPECT_GT(hier_h.stats.access_rate(), uni_h.stats.access_rate());
}

TEST(HashTablePlacement, RepeatedAccessPushesAccessRateAboveMaintenance) {
  // A hot community maintained in shared memory is re-accessed many times:
  // access rate should exceed maintenance rate (the paper's observation).
  TableHarness h(8);
  auto table = h.make(HashTablePolicy::Hierarchical, 64);
  for (int round = 0; round < 20; ++round) {
    for (cid_t c = 0; c < 12; ++c) table.upsert(c, 1.0, [](cid_t) { return 0.0; });
  }
  EXPECT_GE(h.stats.access_rate(), h.stats.maintenance_rate());
}

TEST(HashTable, CollidingKeysBothSurvive) {
  // Force a collision in the single shared probe: with 1 shared bucket every
  // second key must fall through to global and still accumulate correctly.
  TableHarness h(1);
  auto table = h.make(HashTablePolicy::Hierarchical, 16);
  table.upsert(1, 1.0, [](cid_t) { return 0.0; });
  table.upsert(2, 2.0, [](cid_t) { return 0.0; });
  table.upsert(1, 3.0, [](cid_t) { return 0.0; });
  std::map<cid_t, wt_t> seen;
  table.for_each([&](cid_t c, wt_t w, wt_t) { seen[c] = w; });
  EXPECT_DOUBLE_EQ(seen[1], 4.0);
  EXPECT_DOUBLE_EQ(seen[2], 2.0);
}

TEST(HashTable, ChargesGlobalReadPerInsertForCommunityTotal) {
  TableHarness h(16);
  auto table = h.make(HashTablePolicy::Hierarchical, 16);
  const auto before = h.stats.global_reads;
  table.upsert(3, 1.0, [](cid_t) { return 5.0; });  // insert: loads D_V
  const auto after_insert = h.stats.global_reads;
  table.upsert(3, 1.0, [](cid_t) { return 5.0; });  // update: cached
  EXPECT_EQ(h.stats.global_reads, after_insert);
  EXPECT_GT(after_insert, before);
}

TEST(HashTable, RejectsZeroCapacity) {
  TableHarness h(4);
  EXPECT_THROW(h.make(HashTablePolicy::Hierarchical, 0), Error);
}

TEST(HashTable, PolicyNames) {
  EXPECT_EQ(to_string(HashTablePolicy::GlobalOnly), "global-only");
  EXPECT_EQ(to_string(HashTablePolicy::Unified), "unified");
  EXPECT_EQ(to_string(HashTablePolicy::Hierarchical), "hierarchical");
}

}  // namespace
}  // namespace gala::core
