// Exhaustive configuration-grid sweep: every combination of pruning
// strategy x kernel mode x hashtable policy x weight-update mode must run
// to convergence and satisfy the core invariants on a shared graph. This
// guards against config interactions (e.g. a pruning strategy that only
// works with one kernel) that single-axis tests would miss.
#include <gtest/gtest.h>

#include "gala/core/bsp_louvain.hpp"
#include "gala/core/modularity.hpp"
#include "test_util.hpp"

namespace gala::core {
namespace {

using GridParam = std::tuple<PruningStrategy, KernelMode, HashTablePolicy, WeightUpdateMode>;

class ConfigGrid : public ::testing::TestWithParam<GridParam> {
 protected:
  static const graph::Graph& shared_graph() {
    static const graph::Graph g = testing::small_planted(101, 500, 10, 0.25);
    return g;
  }
  static wt_t exact_baseline() {
    static const wt_t q = [] {
      BspConfig cfg;
      cfg.pruning = PruningStrategy::None;
      cfg.parallel = false;
      return bsp_phase1(shared_graph(), cfg).modularity;
    }();
    return q;
  }
};

TEST_P(ConfigGrid, ConvergesWithInvariantsIntact) {
  const auto [pruning, kernel, hashtable, update] = GetParam();
  BspConfig cfg;
  cfg.pruning = pruning;
  cfg.kernel = kernel;
  cfg.hashtable = hashtable;
  cfg.weight_update = update;
  const auto r = bsp_phase1(shared_graph(), cfg);

  // Converged (not the iteration cap).
  EXPECT_LT(r.iterations.size(), static_cast<std::size_t>(cfg.max_iterations));
  // Reported modularity is honest.
  EXPECT_NEAR(r.modularity, modularity(shared_graph(), r.community), 1e-9);
  // Exact strategies replicate the unpruned result bit-for-bit; lossy ones
  // stay in the same quality regime.
  const bool exact = pruning == PruningStrategy::None || pruning == PruningStrategy::Strict ||
                     pruning == PruningStrategy::ModularityGain;
  if (exact) {
    EXPECT_NEAR(r.modularity, exact_baseline(), 1e-9);
  } else {
    EXPECT_GT(r.modularity, exact_baseline() - 0.05);
  }
  // Traffic accounting always populated.
  EXPECT_GT(r.total_traffic.global_reads, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    FullGrid, ConfigGrid,
    ::testing::Combine(
        ::testing::Values(PruningStrategy::None, PruningStrategy::Strict,
                          PruningStrategy::Relaxed, PruningStrategy::Probabilistic,
                          PruningStrategy::ModularityGain, PruningStrategy::MgPlusRelaxed),
        ::testing::Values(KernelMode::Auto, KernelMode::ShuffleOnly, KernelMode::HashOnly),
        ::testing::Values(HashTablePolicy::GlobalOnly, HashTablePolicy::Unified,
                          HashTablePolicy::Hierarchical),
        ::testing::Values(WeightUpdateMode::Recompute, WeightUpdateMode::Delta)),
    [](const auto& info) {
      // NB: no structured bindings here — commas inside [] would split the
      // macro arguments.
      auto clean = [](std::string s) {
        for (auto& c : s) {
          if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
        }
        return s;
      };
      return clean(to_string(std::get<0>(info.param))) + "_" +
             clean(to_string(std::get<1>(info.param))) + "_" +
             clean(to_string(std::get<2>(info.param))) + "_" +
             clean(to_string(std::get<3>(info.param)));
    });

}  // namespace
}  // namespace gala::core
