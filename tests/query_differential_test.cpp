// Randomized differential harness for the query layer: for random graphs,
// random edge-update streams, and random query batches, every executor
// answer must equal a brute-force scan of the same epoch's raw assignment
// vector. The base seed rotates in CI (GALA_DIFF_SEED, derived from the
// commit SHA) exactly like dist_differential_test; re-run locally with
//   GALA_DIFF_SEED=<seed> ./query_differential_test
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gala/common/prng.hpp"
#include "gala/core/gala.hpp"
#include "gala/core/incremental.hpp"
#include "gala/core/modularity.hpp"
#include "gala/graph/generators.hpp"
#include "gala/query/executor.hpp"
#include "gala/query/store.hpp"
#include "test_util.hpp"

namespace gala::query {
namespace {

std::uint64_t base_seed() {
  if (const char* env = std::getenv("GALA_DIFF_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260807ULL;  // fixed default: local runs are reproducible as-is
}

struct TrialGraph {
  graph::Graph g;
  std::string recipe;
};

TrialGraph make_graph(std::uint64_t seed) {
  const std::uint64_t pick = splitmix64(seed);
  std::ostringstream recipe;
  if (pick % 2 == 0) {
    graph::PlantedPartitionParams p;
    p.num_vertices = 80 + static_cast<vid_t>(splitmix64(seed ^ 1) % 320);
    p.num_communities = 4 + static_cast<vid_t>(splitmix64(seed ^ 2) % 10);
    p.avg_degree = 6.0 + static_cast<double>(splitmix64(seed ^ 3) % 8);
    p.mixing = 0.1 + 0.05 * static_cast<double>(splitmix64(seed ^ 4) % 6);
    p.seed = seed;
    recipe << "planted{n=" << p.num_vertices << " k=" << p.num_communities
           << " deg=" << p.avg_degree << " mix=" << p.mixing << " seed=" << seed << "}";
    return {graph::planted_partition(p), recipe.str()};
  }
  const vid_t n = 60 + static_cast<vid_t>(splitmix64(seed ^ 5) % 240);
  const eid_t m = static_cast<eid_t>(n) * (2 + splitmix64(seed ^ 6) % 4);
  recipe << "erdos_renyi{n=" << n << " m=" << m << " seed=" << seed << "}";
  return {graph::erdos_renyi(n, m, seed), recipe.str()};
}

/// Random valid update batch against `g`: inserts anywhere, removals only of
/// edges that exist (apply_edge_updates throws on unknown removals).
std::vector<core::EdgeUpdate> make_batch(const graph::Graph& g, std::uint64_t seed) {
  const vid_t n = g.num_vertices();
  std::vector<core::EdgeUpdate> batch;
  std::uint64_t s = seed;
  const int inserts = 1 + static_cast<int>(splitmix64(s ^ 11) % 6);
  for (int i = 0; i < inserts; ++i) {
    const vid_t u = static_cast<vid_t>(splitmix64(s ^ (100 + i)) % n);
    const vid_t v = static_cast<vid_t>(splitmix64(s ^ (200 + i)) % n);
    batch.push_back({u, v, 1.0 + static_cast<wt_t>(splitmix64(s ^ (300 + i)) % 3), false});
  }
  const int removals = static_cast<int>(splitmix64(s ^ 12) % 3);
  for (int i = 0; i < removals; ++i) {
    const vid_t u = static_cast<vid_t>(splitmix64(s ^ (400 + i)) % n);
    const auto nbrs = g.neighbors(u);
    if (nbrs.empty()) continue;
    const vid_t v = nbrs[splitmix64(s ^ (500 + i)) % nbrs.size()];
    batch.push_back({u, v, 0.5, true});
  }
  return batch;
}

// ------------------------------------------------- brute-force answers ----
std::vector<vid_t> brute_sizes(std::span<const cid_t> raw, cid_t k) {
  std::vector<vid_t> sizes(k, 0);
  for (cid_t c : raw) ++sizes[c];
  return sizes;
}

std::vector<vid_t> brute_members(std::span<const cid_t> raw, cid_t c) {
  std::vector<vid_t> out;
  for (vid_t v = 0; v < raw.size(); ++v) {
    if (raw[v] == c) out.push_back(v);
  }
  return out;
}

std::vector<cid_t> brute_top_order(std::span<const cid_t> raw, cid_t k) {
  const auto sizes = brute_sizes(raw, k);
  std::vector<cid_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](cid_t a, cid_t b) {
    if (sizes[a] != sizes[b]) return sizes[a] > sizes[b];
    return a < b;
  });
  return order;
}

/// Brute diff: v moved iff the exact member set of its community changed.
std::vector<vid_t> brute_moved(std::span<const cid_t> from, std::span<const cid_t> to) {
  std::vector<vid_t> moved;
  for (vid_t v = 0; v < from.size(); ++v) {
    const auto before = brute_members(from, from[v]);
    const auto after = brute_members(to, to[v]);
    if (before != after) moved.push_back(v);
  }
  return moved;
}

TEST(QueryDifferential, ExecutorMatchesBruteForceOverRandomUpdateStreams) {
  const std::uint64_t base = base_seed();
  std::cout << "[harness] GALA_DIFF_SEED=" << base << "\n";
  constexpr int kTrials = 5;
  constexpr int kEpochsPerTrial = 5;

  for (int trial = 0; trial < kTrials; ++trial) {
    const std::uint64_t seed = splitmix64(base ^ (0x9e3779b97f4a7c15ULL * (trial + 1)));
    TrialGraph tg = make_graph(seed);
    const std::string repro =
        "repro: GALA_DIFF_SEED=" + std::to_string(base) + " trial_seed=" + std::to_string(seed) +
        " graph=" + tg.recipe;

    StoreOptions opts;
    opts.max_retained = kEpochsPerTrial + 1;
    opts.governor_client = false;
    CommunityStore store(opts);
    // Two executors: one always inline, one forced through the thread pool
    // (tiny grain) — answers must agree with brute force either way.
    QueryExecutor inline_exec(store, nullptr, /*grain=*/1u << 20);
    QueryExecutor pooled_exec(store, nullptr, /*grain=*/16);

    graph::Graph current = tg.g;
    auto louvain = core::run_louvain(current);
    std::vector<cid_t> assignment = louvain.assignment;
    store.publish(current, louvain);
    for (int e = 1; e < kEpochsPerTrial; ++e) {
      const auto batch = make_batch(current, splitmix64(seed ^ (7777ULL * e)));
      auto repaired = core::update_communities(current, assignment, batch);
      store.publish(repaired);
      current = std::move(repaired.graph);
      assignment = std::move(repaired.assignment);
    }
    ASSERT_EQ(store.latest_epoch(), static_cast<std::uint64_t>(kEpochsPerTrial)) << repro;

    for (std::uint64_t epoch = 1; epoch <= store.latest_epoch(); ++epoch) {
      SnapshotRef snap = store.at(epoch);
      ASSERT_TRUE(snap) << repro;
      ASSERT_EQ(snap->validate(), "") << repro;
      const auto raw = snap->assignment();
      const cid_t k = snap->num_communities();
      const auto sizes = brute_sizes(raw, k);

      // Random query batch with repeats.
      std::vector<vid_t> queries(64);
      for (std::size_t i = 0; i < queries.size(); ++i) {
        queries[i] = static_cast<vid_t>(splitmix64(seed ^ epoch ^ (i * 131)) % raw.size());
      }
      for (const QueryExecutor* exec : {&inline_exec, &pooled_exec}) {
        const auto communities = exec->community_of(*snap, queries);
        const auto query_sizes = exec->community_size_of(*snap, queries);
        for (std::size_t i = 0; i < queries.size(); ++i) {
          ASSERT_EQ(communities[i], raw[queries[i]]) << repro << " epoch=" << epoch;
          ASSERT_EQ(query_sizes[i], sizes[raw[queries[i]]]) << repro << " epoch=" << epoch;
        }

        const cid_t probe = static_cast<cid_t>(splitmix64(seed ^ epoch ^ 99) % k);
        ASSERT_EQ(exec->members(*snap, probe), brute_members(raw, probe))
            << repro << " epoch=" << epoch;

        const std::size_t top = 1 + splitmix64(seed ^ epoch ^ 55) % (k + 2);
        const auto got = exec->top_k(*snap, top);
        const auto order = brute_top_order(raw, k);
        ASSERT_EQ(got.size(), std::min<std::size_t>(top, k)) << repro;
        for (std::size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i].community, order[i]) << repro << " epoch=" << epoch << " i=" << i;
          ASSERT_EQ(got[i].size, sizes[order[i]]) << repro << " epoch=" << epoch;
        }
      }
    }

    // Cross-epoch diffs, every retained pair (i < j), against the brute
    // membership-set definition.
    for (std::uint64_t i = 1; i <= store.latest_epoch(); ++i) {
      for (std::uint64_t j = i; j <= store.latest_epoch(); ++j) {
        SnapshotRef from = store.at(i);
        SnapshotRef to = store.at(j);
        ASSERT_TRUE(from && to) << repro;
        const auto got = pooled_exec.diff(*from, *to);
        const auto want = brute_moved(from->assignment(), to->assignment());
        ASSERT_EQ(got.moved, want) << repro << " diff(" << i << "," << j << ")";
        // Diff is symmetric in *which* vertices changed membership.
        const auto rev = inline_exec.diff(*to, *from);
        ASSERT_EQ(rev.moved, want) << repro << " reverse diff(" << j << "," << i << ")";
      }
    }
  }
}

TEST(QueryDifferential, SparseLabelSpacesCanonicaliseIdentically) {
  // Publishing wild sparse labels must yield the same canonical snapshot as
  // publishing the pre-renumbered assignment.
  const std::uint64_t base = base_seed();
  for (int trial = 0; trial < 4; ++trial) {
    const std::uint64_t seed = splitmix64(base ^ (0xda942042e4dd58b5ULL * (trial + 1)));
    const auto g = testing::small_planted(seed % 1000, 200, 6, 0.2);
    std::vector<cid_t> sparse(g.num_vertices());
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      // Few distinct, widely-scattered labels.
      sparse[v] = static_cast<cid_t>((splitmix64(seed ^ (v % 7)) % 0x3fffffff) | 1u);
    }
    StoreOptions opts;
    opts.max_retained = 2;
    opts.governor_client = false;
    CommunityStore store(opts);
    store.publish(g, sparse);
    std::vector<cid_t> canonical(sparse.begin(), sparse.end());
    core::renumber_communities(canonical);
    store.publish(g, canonical);
    SnapshotRef a = store.at(1);
    SnapshotRef b = store.at(2);
    ASSERT_TRUE(a && b);
    EXPECT_TRUE(a->same_partition(*b)) << "trial_seed=" << seed;
    EXPECT_EQ(std::vector<cid_t>(a->assignment().begin(), a->assignment().end()), canonical)
        << "trial_seed=" << seed;
  }
}

}  // namespace
}  // namespace gala::query
