// Graph statistics: degree distribution, components, community summaries.
#include "gala/graph/stats.hpp"

#include <gtest/gtest.h>

#include "gala/graph/generators.hpp"
#include "test_util.hpp"

namespace gala::graph {
namespace {

TEST(DegreeStats, HandComputedValues) {
  // Star with 4 leaves: center degree 4, leaves degree 1.
  GraphBuilder b(5);
  for (vid_t v = 1; v < 5; ++v) b.add_edge(0, v);
  const auto s = degree_stats(b.build());
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 8.0 / 5);
  EXPECT_DOUBLE_EQ(s.median, 1.0);
  // Histogram: bucket 0 = degree 0..1 (4 leaves), bucket 2 = degree 4..7.
  ASSERT_EQ(s.log2_histogram.size(), 3u);
  EXPECT_EQ(s.log2_histogram[0], 4u);
  EXPECT_EQ(s.log2_histogram[2], 1u);
}

TEST(DegreeStats, HistogramCoversAllVertices) {
  const auto g = testing::small_planted(3);
  const auto s = degree_stats(g);
  vid_t total = 0;
  for (const vid_t c : s.log2_histogram) total += c;
  EXPECT_EQ(total, g.num_vertices());
  EXPECT_FALSE(describe(s).empty());
}

TEST(DegreeStats, EmptyGraph) {
  GraphBuilder b(0);
  const auto s = degree_stats(b.build());
  EXPECT_EQ(s.max, 0u);
  EXPECT_TRUE(s.log2_histogram.empty());
}

TEST(ConnectedComponents, CountsAndLabelsCorrectly) {
  // Two triangles, one isolated vertex: 3 components.
  GraphBuilder b(7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  const auto g = b.build();
  vid_t k = 0;
  const auto comp = connected_components(g, k);
  EXPECT_EQ(k, 3u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[6], comp[0]);
  EXPECT_EQ(largest_component_size(g), 3u);
}

TEST(ConnectedComponents, ConnectedGraphIsOneComponent) {
  const auto g = graph::ring_of_cliques(5, 4);
  vid_t k = 0;
  connected_components(g, k);
  EXPECT_EQ(k, 1u);
  EXPECT_EQ(largest_component_size(g), 20u);
}

TEST(CommunityStats, SummarisesAPartition) {
  const auto g = testing::two_triangles();
  std::vector<cid_t> comm = {0, 0, 0, 1, 1, 1};
  const auto s = community_stats(g, comm);
  EXPECT_EQ(s.num_communities, 2u);
  EXPECT_EQ(s.largest, 3u);
  EXPECT_EQ(s.smallest, 3u);
  EXPECT_DOUBLE_EQ(s.mean_size, 3.0);
  // 6 internal edges of 7 total: coverage = 12/14 of directed weight.
  EXPECT_NEAR(s.coverage, 12.0 / 14.0, 1e-12);
}

TEST(CommunityStats, SingletonPartitionHasZeroCoverage) {
  const auto g = testing::two_triangles();
  std::vector<cid_t> singles = {0, 1, 2, 3, 4, 5};
  const auto s = community_stats(g, singles);
  EXPECT_EQ(s.num_communities, 6u);
  EXPECT_DOUBLE_EQ(s.coverage, 0.0);
}

TEST(CommunityStats, MismatchedSizeThrows) {
  const auto g = testing::two_triangles();
  std::vector<cid_t> bad = {0, 1};
  EXPECT_THROW(community_stats(g, bad), Error);
}

}  // namespace
}  // namespace gala::graph
