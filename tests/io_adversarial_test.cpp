// Adversarial graph inputs: truncated binaries, lying size fields, malformed
// edge-list lines. Every case must surface as a structured gala::Error that
// names the file (and line, for text inputs) — never a crash, never an
// unbounded allocation, never silently-wrong data.
#include "gala/graph/io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "gala/common/error.hpp"
#include "test_util.hpp"

namespace gala::graph {
namespace {

class AdversarialIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("gala_io_adv_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  std::string write_text(const std::string& name, const std::string& content) {
    const std::string p = path(name);
    std::ofstream out(p);
    out << content;
    return p;
  }

  /// Expects `fn` to throw gala::Error whose message contains every needle.
  template <typename Fn>
  void expect_error(Fn&& fn, std::initializer_list<std::string> needles) {
    try {
      fn();
      FAIL() << "expected gala::Error";
    } catch (const Error& e) {
      const std::string what = e.what();
      for (const std::string& needle : needles) {
        EXPECT_NE(what.find(needle), std::string::npos)
            << "missing '" << needle << "' in: " << what;
      }
    }
  }

  std::filesystem::path dir_;
};

// ---- binary format ----------------------------------------------------------

TEST_F(AdversarialIoTest, BinaryRoundTripStillWorks) {
  const auto g = gala::testing::two_triangles();
  const std::string p = path("good.galabin");
  save_binary(g, p);
  const Graph back = load_binary(p);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
}

TEST_F(AdversarialIoTest, TruncatedBinaryIsStructuredError) {
  const auto g = gala::testing::small_planted();
  const std::string p = path("truncated.galabin");
  save_binary(g, p);
  const auto full = std::filesystem::file_size(p);
  // Chop the file at several depths: inside the weights array, inside the
  // adjacency, inside the offsets, and inside the header. Depending on where
  // the cut lands the loader reports either a short read ("truncated") or an
  // array length that no longer fits the file ("corrupt") — both structured.
  for (const auto keep : {full - 9, full / 2, full / 8, std::uintmax_t{11}, std::uintmax_t{3}}) {
    std::filesystem::resize_file(p, keep);
    expect_error([&] { load_binary(p); }, {"binary graph"});
  }
}

TEST_F(AdversarialIoTest, BadMagicIsRejected) {
  const std::string p = path("notagraph.galabin");
  std::ofstream out(p, std::ios::binary);
  const std::uint64_t junk = 0xdeadbeefdeadbeefULL;
  out.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  out.close();
  expect_error([&] { load_binary(p); }, {"bad magic", p});
}

TEST_F(AdversarialIoTest, OverflowingSizeFieldDoesNotAllocate) {
  // A size field claiming 2^60 elements must become a bounded structured
  // error, not a std::bad_alloc from a ~16 EiB vector resize.
  const std::string p = path("liar.galabin");
  std::ofstream out(p, std::ios::binary);
  const std::uint64_t magic = 0x47414c41475246ULL;
  const std::uint64_t huge = 1ULL << 60;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  out.close();
  expect_error([&] { load_binary(p); }, {"corrupt binary graph"});
}

TEST_F(AdversarialIoTest, ZeroVertexBinaryIsRejected) {
  const std::string p = path("empty.galabin");
  std::ofstream out(p, std::ios::binary);
  const std::uint64_t magic = 0x47414c41475246ULL;
  const std::uint64_t zero = 0;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  for (int i = 0; i < 3; ++i) out.write(reinterpret_cast<const char*>(&zero), sizeof(zero));
  out.close();
  expect_error([&] { load_binary(p); }, {"inconsistent binary graph", p});
}

TEST_F(AdversarialIoTest, CorruptOffsetsAreRejected) {
  const std::string p = path("offsets.galabin");
  std::ofstream out(p, std::ios::binary);
  const std::uint64_t magic = 0x47414c41475246ULL;
  // offsets = [0, 5] but only 1 adjacency entry: offsets.back() mismatch.
  const std::uint64_t offsets_len = 2;
  const std::uint64_t offs[2] = {0, 5};
  const std::uint64_t adj_len = 1;
  const std::uint32_t adj[1] = {0};
  const std::uint64_t w_len = 1;
  const double w[1] = {1.0};
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&offsets_len), sizeof(offsets_len));
  out.write(reinterpret_cast<const char*>(offs), sizeof(offs));
  out.write(reinterpret_cast<const char*>(&adj_len), sizeof(adj_len));
  out.write(reinterpret_cast<const char*>(adj), sizeof(adj));
  out.write(reinterpret_cast<const char*>(&w_len), sizeof(w_len));
  out.write(reinterpret_cast<const char*>(w), sizeof(w));
  out.close();
  expect_error([&] { load_binary(p); }, {"corrupt offsets", p});
}

TEST_F(AdversarialIoTest, OutOfRangeNeighbourIdIsRejected) {
  const std::string p = path("badneighbour.galabin");
  std::ofstream out(p, std::ios::binary);
  const std::uint64_t magic = 0x47414c41475246ULL;
  // 2 vertices, one edge 0 -> 9 (vertex 9 does not exist).
  const std::uint64_t offsets_len = 3;
  const std::uint64_t offs[3] = {0, 1, 2};
  const std::uint64_t adj_len = 2;
  const std::uint32_t adj[2] = {9, 0};
  const std::uint64_t w_len = 2;
  const double w[2] = {1.0, 1.0};
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&offsets_len), sizeof(offsets_len));
  out.write(reinterpret_cast<const char*>(offs), sizeof(offs));
  out.write(reinterpret_cast<const char*>(&adj_len), sizeof(adj_len));
  out.write(reinterpret_cast<const char*>(adj), sizeof(adj));
  out.write(reinterpret_cast<const char*>(&w_len), sizeof(w_len));
  out.write(reinterpret_cast<const char*>(w), sizeof(w));
  out.close();
  expect_error([&] { load_binary(p); }, {"out of range", p});
}

TEST_F(AdversarialIoTest, MissingBinaryFileIsStructuredError) {
  expect_error([&] { load_binary(path("nope.galabin")); }, {"cannot open binary graph"});
}

// ---- edge-list format --------------------------------------------------------

TEST_F(AdversarialIoTest, MalformedEdgeLineNamesFileAndLine) {
  const std::string p = write_text("bad.txt", "0 1\n1 2\nnot an edge\n2 3\n");
  expect_error([&] { load_edge_list(p); }, {"malformed edge", p + ":3"});
}

TEST_F(AdversarialIoTest, MissingEndpointIsMalformed) {
  const std::string p = write_text("half.txt", "0 1\n7\n");
  expect_error([&] { load_edge_list(p); }, {"malformed edge", p + ":2"});
}

TEST_F(AdversarialIoTest, VertexIdOverflowIsRejected) {
  // 4294967295 == kInvalidVid is reserved; anything >= it must be rejected
  // before it wraps into a valid-looking id.
  const std::string p = write_text("overflow.txt", "0 4294967295\n");
  expect_error([&] { load_edge_list(p); }, {"vertex id overflow", p + ":1"});
  const std::string p2 = write_text("overflow2.txt", "0 1\n18446744073709551615 2\n");
  expect_error([&] { load_edge_list(p2); }, {"vertex id overflow", p2 + ":2"});
}

TEST_F(AdversarialIoTest, NegativeIdIsRejectedNotWrapped) {
  // A negative id wraps modulo 2^64 under unsigned extraction; the overflow
  // guard must catch the wrapped value rather than mint a huge vertex id.
  const std::string p = write_text("negative.txt", "0 -5\n");
  expect_error([&] { load_edge_list(p); }, {p + ":1"});
}

TEST_F(AdversarialIoTest, NonPositiveWeightIsRejected) {
  const std::string p = write_text("zeroweight.txt", "0 1 0\n");
  expect_error([&] { load_edge_list(p); }, {"non-positive weight", p + ":1"});
  const std::string p2 = write_text("negweight.txt", "0 1 -3.5\n");
  expect_error([&] { load_edge_list(p2); }, {"non-positive weight", p2 + ":1"});
}

TEST_F(AdversarialIoTest, NumVerticesSmallerThanMaxIdIsRejected) {
  const std::string p = write_text("undersized.txt", "0 1\n5 6\n");
  expect_error([&] { load_edge_list(p, /*num_vertices=*/3); }, {"<= max id"});
}

TEST_F(AdversarialIoTest, MissingEdgeListIsStructuredError) {
  expect_error([&] { load_edge_list(path("absent.txt")); }, {"cannot open edge list"});
}

TEST_F(AdversarialIoTest, CommentsAndBlankLinesStillFine) {
  const std::string p =
      write_text("ok.txt", "# header\n\n% matrix-market style comment\n0 1\n1 2\n0 2 2.5\n");
  const Graph g = load_edge_list(p);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

}  // namespace
}  // namespace gala::graph
