// gala::resilience: the deterministic chaos suite.
//
// For a fixed seed and fault plan, every injected-fault run must either (a)
// recover via retry / rollback / degradation and produce a valid partition —
// with modularity matching the fault-free run to 1e-9 when the recovery path
// preserves semantics, or an explicitly reported degraded path otherwise —
// or (b) fail closed with a structured gala::Error naming the injection
// point. Run by the chaos CI job on every push.
#include "gala/resilience/supervisor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "gala/core/gala.hpp"
#include "gala/core/kernels.hpp"
#include "gala/core/modularity.hpp"
#include "gala/multigpu/dist_louvain.hpp"
#include "gala/telemetry/telemetry.hpp"
#include "test_util.hpp"

namespace gala::resilience {
namespace {

FaultRule rule(FaultSite site, std::string label = "", int rank = -1, int skip_first = 0,
               int max_fires = -1, double probability = 1.0) {
  FaultRule r;
  r.site = site;
  r.label = std::move(label);
  r.rank = rank;
  r.skip_first = skip_first;
  r.max_fires = max_fires;
  r.probability = probability;
  return r;
}

std::uint64_t counter_value(const char* name) {
  return telemetry::Registry::global().counter(name).value();
}

// ---- plan serialisation ----------------------------------------------------

TEST(FaultPlanTest, JsonRoundTrip) {
  FaultPlan plan;
  plan.seed = 99;
  plan.rules.push_back(rule(FaultSite::KernelLaunch, "decide", -1, 2, 3, 0.5));
  plan.rules.push_back(rule(FaultSite::CollectiveCorrupt, "all_gather_v", 1));

  const FaultPlan back = FaultPlan::from_json(plan.to_json());
  ASSERT_EQ(back.rules.size(), 2u);
  EXPECT_EQ(back.seed, 99u);
  EXPECT_EQ(back.rules[0].site, FaultSite::KernelLaunch);
  EXPECT_EQ(back.rules[0].label, "decide");
  EXPECT_EQ(back.rules[0].skip_first, 2);
  EXPECT_EQ(back.rules[0].max_fires, 3);
  EXPECT_DOUBLE_EQ(back.rules[0].probability, 0.5);
  EXPECT_EQ(back.rules[1].site, FaultSite::CollectiveCorrupt);
  EXPECT_EQ(back.rules[1].rank, 1);
}

TEST(FaultPlanTest, RejectsUnknownSiteAndBadProbability) {
  EXPECT_THROW(FaultPlan::from_json(R"({"rules":[{"site":"warp-drive"}]})"), Error);
  EXPECT_THROW(FaultPlan::from_json(R"({"rules":[{"site":"kernel-launch","probability":2}]})"),
               Error);
  EXPECT_THROW(FaultPlan::from_json(R"({"seed":1})"), Error);  // rules required
}

TEST(FaultPlanTest, SiteNamesRoundTrip) {
  for (const FaultSite s :
       {FaultSite::KernelLaunch, FaultSite::SharedAlloc, FaultSite::ScratchGrow,
        FaultSite::CollectiveDrop, FaultSite::CollectiveTimeout, FaultSite::CollectiveCorrupt}) {
    EXPECT_EQ(fault_site_from_string(to_string(s)), s);
  }
}

// ---- injector mechanics ----------------------------------------------------

TEST(FaultInjectorTest, DisarmedCostsNothingAndNeverFires) {
  auto& inj = FaultInjector::global();
  inj.disarm();
  EXPECT_FALSE(FaultInjector::armed());
  EXPECT_FALSE(inj.should_fire(FaultSite::KernelLaunch, "decide"));
  EXPECT_NO_THROW(maybe_inject(FaultSite::KernelLaunch, "decide"));
}

TEST(FaultInjectorTest, FiringPatternIsDeterministicInSeed) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.rules.push_back(rule(FaultSite::KernelLaunch, "", -1, 0, -1, 0.3));

  auto pattern = [&] {
    ScopedFaultPlan armed(plan);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(FaultInjector::global().should_fire(FaultSite::KernelLaunch, "decide"));
    }
    return fired;
  };
  const auto first = pattern();
  const auto second = pattern();
  EXPECT_EQ(first, second);
  // A probability-0.3 rule over 64 hits fires sometimes but not always.
  int fires = 0;
  for (const bool f : first) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);

  plan.seed = 4321;  // different seed, different pattern
  ScopedFaultPlan armed(plan);
  std::vector<bool> other;
  for (int i = 0; i < 64; ++i) {
    other.push_back(FaultInjector::global().should_fire(FaultSite::KernelLaunch, "decide"));
  }
  EXPECT_NE(first, other);
}

TEST(FaultInjectorTest, SkipFirstAndMaxFiresSchedule) {
  FaultPlan plan;
  plan.rules.push_back(rule(FaultSite::ScratchGrow, "", -1, /*skip_first=*/2, /*max_fires=*/2));
  ScopedFaultPlan armed(plan);
  auto& inj = FaultInjector::global();
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(inj.should_fire(FaultSite::ScratchGrow, "x"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, false, false}));
  EXPECT_EQ(inj.fires(), 2u);
}

TEST(FaultInjectorTest, LabelAndRankFiltersApply) {
  FaultPlan plan;
  plan.rules.push_back(rule(FaultSite::CollectiveDrop, "all_gather_v", /*rank=*/1));
  ScopedFaultPlan armed(plan);
  auto& inj = FaultInjector::global();
  EXPECT_FALSE(inj.should_fire(FaultSite::CollectiveDrop, "all_reduce", 1));  // label mismatch
  EXPECT_FALSE(inj.should_fire(FaultSite::CollectiveDrop, "all_gather_v", 0));  // rank mismatch
  EXPECT_TRUE(inj.should_fire(FaultSite::CollectiveDrop, "all_gather_v", 1));
}

// ---- validators ------------------------------------------------------------

TEST(ValidatorTest, CatchesCorruptState) {
  const auto g = gala::testing::two_triangles();
  std::vector<cid_t> ok = {0, 0, 0, 3, 3, 3};
  EXPECT_NO_THROW(validate_partition(g, ok));
  EXPECT_NO_THROW(validate_community_weights(g, ok));

  std::vector<cid_t> out_of_range = {0, 0, 0, 3, 3, 99};
  EXPECT_THROW(validate_partition(g, out_of_range), ValidationError);
  std::vector<cid_t> short_assignment = {0, 0};
  EXPECT_THROW(validate_partition(g, short_assignment), ValidationError);

  EXPECT_NO_THROW(validate_modularity(0.5));
  EXPECT_THROW(validate_modularity(std::numeric_limits<wt_t>::quiet_NaN()), ValidationError);
  EXPECT_THROW(validate_modularity(7.0), ValidationError);

  EXPECT_NO_THROW(validate_csr(g));
}

// ---- supervised pipeline: recovery paths -----------------------------------

// The health advisory (stage "health") is observational; recovery assertions
// look only at events that changed the execution path.
std::vector<RecoveryEvent> recovery_events(const SupervisedResult& sr) {
  std::vector<RecoveryEvent> out;
  for (const RecoveryEvent& e : sr.events) {
    if (e.stage != "health") out.push_back(e);
  }
  return out;
}

TEST(SupervisedRunTest, NoFaultsMatchesUnsupervisedExactly) {
  const auto g = gala::testing::small_planted();
  core::GalaConfig cfg;
  const auto plain = core::run_louvain(g, cfg);
  const auto sup = run_louvain_supervised(g, cfg);
  EXPECT_EQ(sup.result.assignment, plain.assignment);
  EXPECT_NEAR(sup.result.modularity, plain.modularity, 1e-12);
  EXPECT_EQ(sup.retries, 0);
  EXPECT_FALSE(sup.degraded);
  EXPECT_TRUE(recovery_events(sup).empty());
}

TEST(SupervisedRunTest, TransientKernelFaultRetriesToExactParity) {
  const auto g = gala::testing::small_planted();
  core::GalaConfig cfg;
  const auto fault_free = core::run_louvain(g, cfg);

  FaultPlan plan;
  plan.seed = 7;
  plan.rules.push_back(rule(FaultSite::KernelLaunch, "", -1, 0, /*max_fires=*/1));
  ScopedFaultPlan armed(plan);

  const auto sup = run_louvain_supervised(g, cfg);
  EXPECT_EQ(sup.retries, 1);
  const auto recov = recovery_events(sup);
  ASSERT_EQ(recov.size(), 1u);
  EXPECT_EQ(recov[0].action, "retry");
  EXPECT_NE(recov[0].detail.find("kernel-launch"), std::string::npos);
  EXPECT_FALSE(sup.degraded);
  // The retry re-runs the identical deterministic level: bitwise parity.
  EXPECT_EQ(sup.result.assignment, fault_free.assignment);
  EXPECT_NEAR(sup.result.modularity, fault_free.modularity, 1e-9);
}

TEST(SupervisedRunTest, StrictModeFailsClosedNamingInjectionPoint) {
  const auto g = gala::testing::small_planted();
  FaultPlan plan;
  plan.rules.push_back(rule(FaultSite::KernelLaunch, "", -1, 0, 1));
  ScopedFaultPlan armed(plan);

  SupervisorConfig sup;
  sup.strict = true;
  try {
    run_louvain_supervised(g, {}, sup);
    FAIL() << "expected a TransientFault";
  } catch (const TransientFault& e) {
    EXPECT_NE(std::string(e.what()).find("kernel-launch"), std::string::npos);
  }
}

TEST(SupervisedRunTest, PersistentFaultDegradesToSequentialHostPath) {
  const auto g = gala::testing::small_planted();
  const std::uint64_t fallbacks_before = counter_value("resilience.sequential_fallbacks");

  FaultPlan plan;
  plan.rules.push_back(rule(FaultSite::KernelLaunch, ""));  // every launch dies, forever
  ScopedFaultPlan armed(plan);

  SupervisorConfig sup;
  sup.max_retries = 1;
  const auto r = run_louvain_supervised(g, {}, sup);
  EXPECT_TRUE(r.degraded);
  bool saw_fallback = false;
  for (const auto& ev : r.events) saw_fallback |= ev.action == "sequential-fallback";
  EXPECT_TRUE(saw_fallback);
  EXPECT_GT(counter_value("resilience.sequential_fallbacks"), fallbacks_before);
  // The degraded path still yields a valid, decent partition.
  validate_partition(g, r.result.assignment);
  const wt_t audited = core::modularity(g, r.result.assignment);
  EXPECT_NEAR(audited, r.result.modularity, 1e-9);
  EXPECT_GT(audited, 0.3);
}

TEST(SupervisedRunTest, SequentialFallbackDisabledFailsClosed) {
  const auto g = gala::testing::small_planted();
  FaultPlan plan;
  plan.rules.push_back(rule(FaultSite::KernelLaunch, ""));
  ScopedFaultPlan armed(plan);

  SupervisorConfig sup;
  sup.max_retries = 1;
  sup.sequential_fallback = false;
  EXPECT_THROW(run_louvain_supervised(g, {}, sup), TransientFault);
}

TEST(SupervisedRunTest, MonotonicityGuardRollsBackToBestLevel) {
  const auto g = gala::testing::small_planted();
  // A negative slack makes every level-1+ result look like a regression, so
  // the guard must fire and the run must keep the best (level-0) checkpoint.
  SupervisorConfig sup;
  sup.q_slack = -10.0;
  const auto r = run_louvain_supervised(g, {}, sup);
  EXPECT_TRUE(r.rolled_back);
  bool saw_rollback = false;
  for (const auto& ev : r.events) saw_rollback |= ev.action == "rollback";
  EXPECT_TRUE(saw_rollback);
  validate_partition(g, r.result.assignment);
  EXPECT_NEAR(core::modularity(g, r.result.assignment), r.result.modularity, 1e-9);
}

TEST(SupervisedRunTest, SharedArenaFaultDegradesInKernelWithExactParity) {
  const auto g = gala::testing::small_planted();
  core::GalaConfig cfg;
  cfg.bsp.kernel = core::KernelMode::HashOnly;
  cfg.bsp.hashtable = core::HashTablePolicy::Hierarchical;
  const auto fault_free = core::run_louvain(g, cfg);

  const std::uint64_t fallbacks_before = counter_value("resilience.hashtable_fallbacks");
  FaultPlan plan;
  plan.seed = 3;
  plan.rules.push_back(rule(FaultSite::SharedAlloc, "shared-arena", -1, 0, /*max_fires=*/4));
  ScopedFaultPlan armed(plan);

  // The in-kernel Hierarchical -> GlobalOnly fallback absorbs the faults:
  // no supervisor retry needed, and decisions are policy-independent.
  const auto sup = run_louvain_supervised(g, cfg);
  EXPECT_EQ(sup.retries, 0);
  EXPECT_FALSE(sup.degraded);
  EXPECT_GT(counter_value("resilience.hashtable_fallbacks"), fallbacks_before);
  EXPECT_EQ(sup.result.assignment, fault_free.assignment);
  EXPECT_NEAR(sup.result.modularity, fault_free.modularity, 1e-9);
}

// ---- distributed engine: collective faults ---------------------------------

TEST(DistributedFaultTest, CorruptSparseSyncFallsBackToDense) {
  const auto g = gala::testing::small_planted();
  multigpu::DistributedConfig cfg;
  cfg.num_gpus = 2;
  cfg.sync = multigpu::SyncMode::Sparse;
  const auto fault_free = multigpu::distributed_phase1(g, cfg);

  FaultPlan plan;
  plan.rules.push_back(
      rule(FaultSite::CollectiveCorrupt, "all_gather_v", /*rank=*/0, 0, /*max_fires=*/1));
  ScopedFaultPlan armed(plan);

  const auto r = multigpu::distributed_phase1(g, cfg);
  ASSERT_FALSE(r.iteration_log.empty());
  EXPECT_TRUE(r.iteration_log[0].recovered_dense);
  EXPECT_FALSE(r.iteration_log[0].sparse_sync);
  // Dense and sparse sync agree on the replicated state: exact parity.
  EXPECT_EQ(r.community, fault_free.community);
  EXPECT_NEAR(r.modularity, fault_free.modularity, 1e-9);
}

TEST(DistributedFaultTest, PersistentDropFailsClosedWithoutDeadlock) {
  const auto g = gala::testing::two_triangles();
  multigpu::DistributedConfig cfg;
  cfg.num_gpus = 2;
  cfg.sync = multigpu::SyncMode::Sparse;
  cfg.max_sync_retries = 1;

  FaultPlan plan;
  plan.rules.push_back(rule(FaultSite::CollectiveDrop, "all_gather_v", /*rank=*/1));
  ScopedFaultPlan armed(plan);

  try {
    multigpu::distributed_phase1(g, cfg);
    FAIL() << "expected a CollectiveFault";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("collective-drop"), std::string::npos);
  }
}

TEST(DistributedFaultTest, CorruptCompressedOverlappedSyncFallsBackToDense) {
  // The async double-buffered pipeline with codec compression: a corrupted
  // posted community gather must fail closed at the round's second barrier
  // and recover through the barrier-aligned dense retry, bit-identical to
  // the fault-free run.
  const auto g = gala::testing::small_planted();
  multigpu::DistributedConfig cfg;
  cfg.num_gpus = 2;
  cfg.sync = multigpu::SyncMode::Sparse;
  cfg.overlap = true;
  cfg.compress = true;
  const auto fault_free = multigpu::distributed_phase1(g, cfg);

  FaultPlan plan;
  plan.rules.push_back(
      rule(FaultSite::CollectiveCorrupt, "all_gather_v", /*rank=*/0, 0, /*max_fires=*/1));
  ScopedFaultPlan armed(plan);

  const auto r = multigpu::distributed_phase1(g, cfg);
  ASSERT_FALSE(r.iteration_log.empty());
  EXPECT_TRUE(r.iteration_log[0].recovered_dense);
  EXPECT_FALSE(r.iteration_log[0].sparse_sync);
  EXPECT_EQ(r.community, fault_free.community);
  EXPECT_NEAR(r.modularity, fault_free.modularity, 1e-9);
}

TEST(DistributedFaultTest, DroppedWeightGatherRetriesOnTheSecondBuffer) {
  // skip_first=1 lets the community gather through and drops the *weight*
  // gather — the second of the iteration's two double-buffered exchanges.
  // The staged window work must survive the retry (exact parity, no
  // double-applied deltas).
  const auto g = gala::testing::small_planted();
  multigpu::DistributedConfig cfg;
  cfg.num_gpus = 2;
  cfg.sync = multigpu::SyncMode::Adaptive;
  cfg.overlap = true;
  cfg.compress = true;
  const auto fault_free = multigpu::distributed_phase1(g, cfg);

  FaultPlan plan;
  plan.rules.push_back(rule(FaultSite::CollectiveDrop, "all_gather_v", /*rank=*/1,
                            /*skip_first=*/1, /*max_fires=*/1));
  ScopedFaultPlan armed(plan);

  const auto r = multigpu::distributed_phase1(g, cfg);
  EXPECT_EQ(r.community, fault_free.community);
  EXPECT_NEAR(r.modularity, fault_free.modularity, 1e-9);
}

TEST(DistributedFaultTest, PersistentDropWithOverlapFailsClosed) {
  const auto g = gala::testing::small_planted();
  multigpu::DistributedConfig cfg;
  cfg.num_gpus = 2;
  cfg.sync = multigpu::SyncMode::Sparse;
  cfg.overlap = true;
  cfg.compress = true;
  cfg.max_sync_retries = 1;

  FaultPlan plan;
  plan.rules.push_back(rule(FaultSite::CollectiveDrop, "all_gather_v", /*rank=*/1));
  ScopedFaultPlan armed(plan);

  try {
    multigpu::distributed_phase1(g, cfg);
    FAIL() << "expected a CollectiveFault";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("collective-drop"), std::string::npos);
  }
}

TEST(DistributedFaultTest, TimeoutIsDetectedAndNamed) {
  const auto g = gala::testing::two_triangles();
  multigpu::DistributedConfig cfg;
  cfg.num_gpus = 2;
  cfg.sync = multigpu::SyncMode::Dense;
  cfg.max_sync_retries = 0;

  FaultPlan plan;
  plan.rules.push_back(rule(FaultSite::CollectiveTimeout, "all_gather_v", /*rank=*/0));
  ScopedFaultPlan armed(plan);

  try {
    multigpu::distributed_phase1(g, cfg);
    FAIL() << "expected a CollectiveFault";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("collective-timeout"), std::string::npos);
  }
}

// ---- communicator hardening ------------------------------------------------

TEST(CommunicatorTest, CollectivesRejectOutOfRangeRank) {
  multigpu::Communicator comm(2);
  multigpu::CommStats stats;
  const std::vector<int> payload = {1, 2, 3};
  EXPECT_THROW(comm.all_gather_v<int>(5, payload, stats), Error);
  std::vector<double> data = {1.0};
  EXPECT_THROW(comm.all_reduce_sum(2, std::span<double>(data), stats), Error);
  EXPECT_THROW(comm.all_reduce_min(7, 1.0, stats), Error);
}

TEST(CommunicatorTest, ChecksumDetectsSingleBitCorruption) {
  std::vector<std::byte> payload(128);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<std::byte>(i * 31);
  const std::uint64_t clean = multigpu::fnv1a(payload);
  EXPECT_EQ(clean, multigpu::fnv1a(payload));
  payload[64] ^= std::byte{0x01};
  EXPECT_NE(clean, multigpu::fnv1a(payload));
}

}  // namespace
}  // namespace gala::resilience
