// Unit tests for the common substrate: PRNG, thread pool, error macros,
// text tables, timers.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>

#include "gala/common/error.hpp"
#include "gala/common/prng.hpp"
#include "gala/common/table.hpp"
#include "gala/common/thread_pool.hpp"
#include "gala/common/timer.hpp"

namespace gala {
namespace {

TEST(Prng, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 3);
}

TEST(Prng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Prng, NextBelowRespectsBound) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t x = rng.next_below(7);
    EXPECT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Prng, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 10, kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Prng, SplitProducesIndependentStream) {
  Xoshiro256 a(5);
  Xoshiro256 child = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == child();
  EXPECT_LT(equal, 3);
}

TEST(Prng, SplitmixIsConstexprAndStable) {
  static_assert(splitmix64(0) == 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(1), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(5, 5, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, ChunkedCoversRangeContiguously) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(5000);
  pool.parallel_for_chunked(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
    EXPECT_LE(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WorkerExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 100, [](std::size_t i) {
        if (i == 37) throw Error("boom");
      }),
      Error);
  // The pool must remain usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) pool.submit([&] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ErrorMacros, CheckThrowsWithMessage) {
  try {
    GALA_CHECK(1 == 2, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(ErrorMacros, CheckPassesSilently) {
  GALA_CHECK(2 + 2 == 4, "never");
}

TEST(TextTable, AlignsColumnsAndPrintsAllRows) {
  TextTable t({"a", "long-header", "c"});
  t.row().cell("x").cell(3.14159, 2).cell(7);
  t.row().cell("longer-value").cell(1).cell("z");
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("longer-value"), std::string::npos);
  // Header + separator + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, CellBeforeRowThrows) {
  TextTable t({"a"});
  EXPECT_THROW(t.cell("x"), Error);
}

TEST(Timer, MeasuresElapsedTimeMonotonically) {
  Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(PhaseTimer, AccumulatesAcrossStartStop) {
  PhaseTimer t;
  t.start();
  t.stop();
  t.start();
  t.stop();
  EXPECT_EQ(t.count(), 2u);
  EXPECT_GE(t.total_seconds(), 0.0);
  t.reset();
  EXPECT_EQ(t.count(), 0u);
}

TEST(PhaseTimer, DoubleStartClosesOpenInterval) {
  PhaseTimer t;
  t.start();
  t.start();  // must bank the first interval, not discard it
  t.stop();
  EXPECT_EQ(t.count(), 2u);
}

TEST(PhaseTimer, ScopedPhaseStartsAndStops) {
  PhaseTimer t;
  {
    ScopedPhase phase(t);
    EXPECT_EQ(t.count(), 0u);  // interval still open
  }
  EXPECT_EQ(t.count(), 1u);
  {
    ScopedPhase phase(t);
  }
  EXPECT_EQ(t.count(), 2u);
  EXPECT_GE(t.total_seconds(), 0.0);
}

}  // namespace
}  // namespace gala
