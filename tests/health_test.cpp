// gala::metrics health layer: stall detection, oscillation (flip-flop)
// tracking, frontier-decay fitting, churn, and the determinism contract —
// the health report is a function of the algorithm trajectory alone, so it
// is byte-identical across pooling, parallelism, and sync configurations.
#include "gala/metrics/health.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "gala/common/json.hpp"
#include "gala/core/bsp_louvain.hpp"
#include "gala/core/gala.hpp"
#include "gala/exec/context.hpp"
#include "gala/multigpu/dist_louvain.hpp"
#include "test_util.hpp"

namespace gala::metrics {
namespace {

core::IterationStats iter_stats(vid_t active, vid_t moved, double q, double dq,
                                double probe_len = 0) {
  core::IterationStats s;
  s.active = active;
  s.moved = moved;
  s.modularity = q;
  s.delta_q = dq;
  s.ht_mean_probe_length = probe_len;
  return s;
}

// ---------------------------------------------------------------------------
// analyze_iterations: stats-only trajectory analysis.

TEST(AnalyzeIterations, HealthyRunIsNotStalled) {
  std::vector<core::IterationStats> iters = {
      iter_stats(1000, 600, 0.30, 0.30),
      iter_stats(700, 300, 0.45, 0.15),
      iter_stats(350, 100, 0.50, 0.05),
      iter_stats(120, 10, 0.51, 0.01),
  };
  const LevelHealth h = analyze_iterations(iters, 1000);
  EXPECT_FALSE(h.stalled);
  EXPECT_EQ(h.first_stall, -1);
  EXPECT_EQ(h.stall_iterations, 0);
  EXPECT_EQ(h.iterations, 4);
  EXPECT_EQ(h.vertices, 1000u);
  EXPECT_DOUBLE_EQ(h.final_modularity, 0.51);
  EXPECT_DOUBLE_EQ(h.churn_peak, 0.6);
  EXPECT_DOUBLE_EQ(h.churn_mean, (600 + 300 + 100 + 10) / 4.0 / 1000.0);
}

TEST(AnalyzeIterations, FlagsStallAfterWindowFills) {
  // Three consecutive iterations with vanishing gain while vertices still
  // move: the definition of a stall (default window = 3).
  std::vector<core::IterationStats> iters = {
      iter_stats(1000, 500, 0.30, 0.30),
      iter_stats(800, 200, 0.40, 0.10),
      iter_stats(600, 50, 0.40, 1e-9),   // stalled #1
      iter_stats(500, 40, 0.40, 1e-10),  // stalled #2
      iter_stats(400, 30, 0.40, 1e-9),   // stalled #3 -> window filled
  };
  const LevelHealth h = analyze_iterations(iters, 1000);
  EXPECT_TRUE(h.stalled);
  EXPECT_EQ(h.first_stall, 4);  // the iteration at which the window filled
  EXPECT_EQ(h.stall_iterations, 3);
}

TEST(AnalyzeIterations, ConvergedQuietIterationsAreNotAStall) {
  // Tiny gains with zero moves are convergence, not a stall.
  std::vector<core::IterationStats> iters = {
      iter_stats(1000, 500, 0.30, 0.30),
      iter_stats(10, 0, 0.30, 0.0),
      iter_stats(5, 0, 0.30, 0.0),
      iter_stats(2, 0, 0.30, 0.0),
  };
  const LevelHealth h = analyze_iterations(iters, 1000);
  EXPECT_FALSE(h.stalled);
  EXPECT_EQ(h.stall_iterations, 0);
}

TEST(AnalyzeIterations, StallWindowIsConfigurable) {
  std::vector<core::IterationStats> iters = {
      iter_stats(100, 50, 0.3, 1e-9),
      iter_stats(90, 40, 0.3, 1e-9),
  };
  HealthConfig strict;
  strict.stall_window = 2;
  EXPECT_TRUE(analyze_iterations(iters, 100, strict).stalled);
  HealthConfig lax;
  lax.stall_window = 3;
  EXPECT_FALSE(analyze_iterations(iters, 100, lax).stalled);
}

TEST(AnalyzeIterations, FitsFrontierHalfLifeOnGeometricDecay) {
  // active halves every iteration: half-life should fit to ~1 iteration.
  std::vector<core::IterationStats> iters = {
      iter_stats(1024, 512, 0.1, 0.1), iter_stats(512, 256, 0.2, 0.1),
      iter_stats(256, 128, 0.3, 0.1),  iter_stats(128, 64, 0.4, 0.1),
      iter_stats(64, 32, 0.5, 0.1),
  };
  const LevelHealth h = analyze_iterations(iters, 1024);
  EXPECT_NEAR(h.frontier_half_life, 1.0, 1e-9);
}

TEST(AnalyzeIterations, NonDecayingFrontierHasNoHalfLife) {
  std::vector<core::IterationStats> iters = {
      iter_stats(1000, 500, 0.1, 0.1),
      iter_stats(1000, 500, 0.2, 0.1),
      iter_stats(1000, 500, 0.3, 0.1),
  };
  const LevelHealth h = analyze_iterations(iters, 1000);
  EXPECT_DOUBLE_EQ(h.frontier_half_life, 0.0);
}

TEST(AnalyzeIterations, ProbeTrendIsLeastSquaresSlope) {
  std::vector<core::IterationStats> iters = {
      iter_stats(100, 50, 0.1, 0.1, 1.0),
      iter_stats(90, 40, 0.2, 0.1, 1.5),
      iter_stats(80, 30, 0.3, 0.1, 2.0),
  };
  const LevelHealth h = analyze_iterations(iters, 100);
  EXPECT_NEAR(h.ht_probe_trend, 0.5, 1e-9);  // +0.5 probes per iteration
  EXPECT_EQ(h.oscillating_vertices, 0u);     // stats-only: no vertex history
  EXPECT_EQ(h.oscillation_moves, 0u);
}

// ---------------------------------------------------------------------------
// HealthMonitor: per-vertex flip-flop tracking and level boundaries.

void feed(HealthMonitor& m, int iter, const core::IterationStats& s,
          const std::vector<cid_t>& comm) {
  m.observe(iter, s, {}, {}, std::span<const cid_t>(comm.data(), comm.size()));
}

TEST(HealthMonitorTest, DetectsVertexFlipFlop) {
  HealthMonitor m;
  // Vertex 0 bounces singleton 0 -> 1 -> 0 -> 1: each return to the
  // community left two iterations ago is a flip-flop (iterations 1 and 2).
  // Vertex 1 moves monotonically (1 -> 0, then stays): no oscillation.
  feed(m, 0, iter_stats(2, 2, 0.1, 0.1), {1, 0});
  feed(m, 1, iter_stats(2, 1, 0.2, 0.1), {0, 0});
  feed(m, 2, iter_stats(2, 1, 0.3, 0.1), {1, 0});
  const HealthReport r = m.report();
  ASSERT_EQ(r.levels.size(), 1u);
  EXPECT_EQ(r.levels[0].oscillating_vertices, 1u);
  EXPECT_EQ(r.levels[0].oscillation_moves, 2u);
  ASSERT_EQ(r.levels[0].flip_flops.size(), 3u);
  EXPECT_EQ(r.levels[0].flip_flops[0], 0u);
  EXPECT_EQ(r.levels[0].flip_flops[1], 1u);
  EXPECT_EQ(r.levels[0].flip_flops[2], 1u);
}

TEST(HealthMonitorTest, SustainedOscillationCountsEveryFlip) {
  HealthMonitor m;
  // One vertex ping-pongs 0 -> 1 -> 0 -> 1 -> ...: every iteration after the
  // first returns to the community left two iterations ago.
  std::vector<cid_t> a = {1}, b = {0};
  feed(m, 0, iter_stats(1, 1, 0.1, 0.1), a);
  for (int i = 1; i <= 5; ++i) feed(m, i, iter_stats(1, 1, 0.1, 0.01), i % 2 ? b : a);
  const HealthReport r = m.report();
  ASSERT_EQ(r.levels.size(), 1u);
  EXPECT_EQ(r.levels[0].oscillating_vertices, 1u);
  EXPECT_EQ(r.levels[0].oscillation_moves, 5u);
}

TEST(HealthMonitorTest, IterationZeroStartsANewLevel) {
  HealthMonitor m;
  feed(m, 0, iter_stats(4, 2, 0.1, 0.1), {0, 0, 1, 1});
  feed(m, 1, iter_stats(4, 1, 0.2, 0.1), {0, 0, 1, 1});
  feed(m, 0, iter_stats(2, 1, 0.3, 0.1), {0, 1});  // aggregated graph: new level
  const HealthReport r = m.report();
  ASSERT_EQ(r.levels.size(), 2u);
  EXPECT_EQ(r.levels[0].iterations, 2);
  EXPECT_EQ(r.levels[0].vertices, 4u);
  EXPECT_EQ(r.levels[1].iterations, 1);
  EXPECT_EQ(r.levels[1].vertices, 2u);
  EXPECT_EQ(r.levels[1].level, 1);
}

TEST(HealthMonitorTest, ReportIsRepeatableAndResumable) {
  HealthMonitor m;
  feed(m, 0, iter_stats(2, 1, 0.1, 0.1), {0, 1});
  const std::string first = m.report().json();
  EXPECT_EQ(m.report().json(), first);  // report() is idempotent
}

// ---------------------------------------------------------------------------
// Report document and rollups.

TEST(HealthReportTest, JsonRoundTripsWithSummary) {
  HealthMonitor m;
  feed(m, 0, iter_stats(2, 2, 0.1, 0.1), {1, 0});
  feed(m, 1, iter_stats(2, 1, 0.2, 0.1), {0, 0});
  feed(m, 2, iter_stats(2, 1, 0.3, 0.1), {1, 0});
  const HealthReport r = m.report();

  const JsonValue doc = parse_json(r.json());
  EXPECT_EQ(doc.at("health_schema").number, 1);
  EXPECT_DOUBLE_EQ(doc.at("config").at("stall_epsilon").number, 1e-6);
  ASSERT_EQ(doc.at("levels").array.size(), 1u);
  const auto& lv = doc.at("levels").array[0];
  EXPECT_EQ(lv.at("iterations").number, 3);
  EXPECT_EQ(lv.at("oscillating_vertices").number, 1);
  ASSERT_EQ(lv.at("series").at("modularity").array.size(), 3u);
  const auto& summary = doc.at("summary");
  EXPECT_EQ(summary.at("levels").number, 1);
  EXPECT_EQ(summary.at("total_iterations").number, 3);
  EXPECT_EQ(summary.at("oscillating_vertices").number, 1);
}

TEST(HealthReportTest, RollupsAggregateAcrossLevels) {
  HealthReport r;
  LevelHealth a;
  a.level = 0;
  a.iterations = 5;
  a.stalled = true;
  a.oscillating_vertices = 3;
  a.oscillation_moves = 7;
  a.frontier_half_life = 2.0;
  LevelHealth b;
  b.level = 1;
  b.iterations = 2;
  b.oscillating_vertices = 1;
  b.oscillation_moves = 1;
  r.levels = {a, b};
  EXPECT_EQ(r.total_iterations(), 7);
  EXPECT_EQ(r.stalled_levels(), 1);
  EXPECT_EQ(r.first_stall_level(), 0);
  EXPECT_EQ(r.oscillating_vertices(), 4u);
  EXPECT_EQ(r.oscillation_moves(), 8u);
  EXPECT_DOUBLE_EQ(r.frontier_half_life(), 2.0);
}

// ---------------------------------------------------------------------------
// Determinism: the report depends on the trajectory, not the execution
// schedule. Pooling, parallelism, and the sync pipeline must not move a bit.

std::string bsp_health_json(const graph::Graph& g, bool parallel, bool pooling,
                            core::PruningStrategy pruning = core::PruningStrategy::ModularityGain,
                            core::HashTablePolicy table = core::HashTablePolicy::Hierarchical) {
  exec::ExecutionContext ctx({}, /*seed=*/7, pooling);
  HealthMonitor monitor;
  core::GalaConfig cfg;
  cfg.bsp.parallel = parallel;
  cfg.bsp.pruning = pruning;
  cfg.bsp.hashtable = table;
  cfg.bsp.context = &ctx;
  cfg.bsp.on_iteration = monitor.callback();
  (void)core::run_louvain(g, cfg);
  return monitor.report().json();
}

TEST(HealthDeterminism, ByteIdenticalAcrossPoolingAndParallelism) {
  const auto g = gala::testing::small_planted();
  const std::string reference = bsp_health_json(g, /*parallel=*/false, /*pooling=*/true);
  EXPECT_EQ(bsp_health_json(g, /*parallel=*/true, /*pooling=*/true), reference);
  EXPECT_EQ(bsp_health_json(g, /*parallel=*/false, /*pooling=*/false), reference);
  EXPECT_EQ(bsp_health_json(g, /*parallel=*/true, /*pooling=*/false), reference);
}

TEST(HealthDeterminism, EachPruningStrategyIsSelfDeterministic) {
  const auto g = gala::testing::small_planted();
  for (const auto pruning :
       {core::PruningStrategy::None, core::PruningStrategy::Strict,
        core::PruningStrategy::Relaxed, core::PruningStrategy::ModularityGain}) {
    EXPECT_EQ(bsp_health_json(g, true, true, pruning), bsp_health_json(g, false, true, pruning))
        << "pruning strategy " << static_cast<int>(pruning);
  }
}

/// Strips every "ht_..." member from a health document: the probe-length
/// series legitimately differs across hashtable policies while the
/// trajectory (moves, gains, frontier) must not.
std::string strip_ht_fields(const std::string& json) {
  const JsonValue doc = parse_json(json);
  JsonWriter w;
  const std::function<void(const JsonValue&)> emit = [&](const JsonValue& v) {
    switch (v.type) {
      case JsonValue::Type::Object:
        w.begin_object();
        for (const auto& [key, value] : v.object) {
          if (key.rfind("ht_", 0) == 0) continue;
          w.key(key);
          emit(value);
        }
        w.end_object();
        return;
      case JsonValue::Type::Array:
        w.begin_array();
        for (const auto& e : v.array) emit(e);
        w.end_array();
        return;
      case JsonValue::Type::String:
        w.value(v.string);
        return;
      case JsonValue::Type::Number:
        w.value(v.number);
        return;
      case JsonValue::Type::Bool:
        w.value(v.boolean);
        return;
      default:
        w.value(0.0);  // null never appears in health documents
        return;
    }
  };
  emit(doc);
  return w.str();
}

TEST(HealthDeterminism, TrajectoryIdenticalAcrossHashtablePolicies) {
  const auto g = gala::testing::small_planted();
  const std::string hier = bsp_health_json(g, false, true, core::PruningStrategy::ModularityGain,
                                           core::HashTablePolicy::Hierarchical);
  const std::string global = bsp_health_json(g, false, true, core::PruningStrategy::ModularityGain,
                                             core::HashTablePolicy::GlobalOnly);
  EXPECT_EQ(strip_ht_fields(hier), strip_ht_fields(global));
}

std::string dist_health_json(const graph::Graph& g, bool overlap, bool compress) {
  HealthMonitor monitor;
  multigpu::DistributedConfig cfg;
  cfg.num_gpus = 2;
  cfg.overlap = overlap;
  cfg.compress = compress;
  cfg.on_iteration = monitor.callback();
  (void)multigpu::distributed_phase1(g, cfg);
  return monitor.report().json();
}

TEST(HealthDeterminism, ByteIdenticalAcrossSyncConfigurations) {
  const auto g = gala::testing::small_planted();
  const std::string blocking = dist_health_json(g, /*overlap=*/false, /*compress=*/false);
  EXPECT_EQ(dist_health_json(g, true, false), blocking);
  EXPECT_EQ(dist_health_json(g, true, true), blocking);
  EXPECT_EQ(dist_health_json(g, false, true), blocking);
  // Sanity: the distributed observer fed real iterations.
  const JsonValue doc = parse_json(blocking);
  ASSERT_GE(doc.at("levels").array.size(), 1u);
  EXPECT_GT(doc.at("summary").at("total_iterations").number, 0);
}

}  // namespace
}  // namespace gala::metrics
