// Tests for the GPU execution-model simulator: warp collectives (against
// scalar references, property-swept over random lane values and masks),
// the shared-memory arena, the device scheduler, and the cost model.
#include <gtest/gtest.h>

#include "gala/common/prng.hpp"
#include "gala/gpusim/device.hpp"
#include "gala/gpusim/shared_memory.hpp"
#include "gala/gpusim/warp.hpp"

namespace gala::gpusim {
namespace {

TEST(Warp, MatchAnyGroupsEqualValues) {
  WarpValues<int> v{};
  for (int i = 0; i < kWarpSize; ++i) v[i] = i % 3;
  MemoryStats stats;
  const auto masks = warp::match_any(kFullMask, v, stats);
  for (int i = 0; i < kWarpSize; ++i) {
    for (int j = 0; j < kWarpSize; ++j) {
      const bool same = v[i] == v[j];
      EXPECT_EQ(((masks[i] >> j) & 1u) != 0, same) << i << "," << j;
    }
    EXPECT_TRUE(masks[i] & (1u << i)) << "lane must match itself";
  }
  EXPECT_EQ(stats.shuffle_ops, 1u);
}

TEST(Warp, MatchAnyRespectsInactiveLanes) {
  WarpValues<int> v{};
  v.fill(7);
  MemoryStats stats;
  const LaneMask active = 0x0000ffffu;
  const auto masks = warp::match_any(active, v, stats);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(masks[i], active);
  for (int i = 16; i < kWarpSize; ++i) EXPECT_EQ(masks[i], 0u);
}

class WarpProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WarpProperty, SegmentedReduceMatchesScalarReference) {
  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    WarpValues<int> keys{};
    WarpValues<double> vals{};
    const LaneMask active = static_cast<LaneMask>(rng() | 1);  // at least lane 0
    for (int i = 0; i < kWarpSize; ++i) {
      keys[i] = static_cast<int>(rng.next_below(6));
      vals[i] = rng.next_double();
    }
    MemoryStats stats;
    const auto masks = warp::match_any(active, keys, stats);
    const auto sums = warp::segmented_reduce_add(active, masks, vals, stats);
    for (int i = 0; i < kWarpSize; ++i) {
      if (!((active >> i) & 1u)) continue;
      double expect = 0;
      for (int j = 0; j < kWarpSize; ++j) {
        if (((active >> j) & 1u) && keys[j] == keys[i]) expect += vals[j];
      }
      EXPECT_NEAR(sums[i], expect, 1e-12) << "lane " << i;
    }
  }
}

TEST_P(WarpProperty, ReduceMaxAndAddMatchScalarReference) {
  Xoshiro256 rng(GetParam() ^ 0x1234);
  for (int trial = 0; trial < 50; ++trial) {
    WarpValues<double> vals{};
    const LaneMask active = static_cast<LaneMask>(rng() | 1);
    double expect_max = -1e300, expect_sum = 0;
    for (int i = 0; i < kWarpSize; ++i) {
      vals[i] = rng.next_double() - 0.5;
      if ((active >> i) & 1u) {
        expect_max = std::max(expect_max, vals[i]);
        expect_sum += vals[i];
      }
    }
    MemoryStats stats;
    EXPECT_DOUBLE_EQ(warp::reduce_max(active, vals, stats), expect_max);
    EXPECT_NEAR(warp::reduce_add(active, vals, stats), expect_sum, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarpProperty, ::testing::Values(1, 2, 3, 4));

TEST(Warp, BallotCollectsPredicates) {
  WarpValues<bool> preds{};
  preds[0] = preds[5] = preds[31] = true;
  MemoryStats stats;
  EXPECT_EQ(warp::ballot(kFullMask, preds, stats), (1u << 0) | (1u << 5) | (1u << 31));
  // Inactive lanes do not contribute.
  EXPECT_EQ(warp::ballot(0x1u, preds, stats), 1u);
}

TEST(Warp, ShflBroadcastsSourceLane) {
  WarpValues<int> vals{};
  for (int i = 0; i < kWarpSize; ++i) vals[i] = i * 10;
  MemoryStats stats;
  EXPECT_EQ(warp::shfl(kFullMask, vals, 7, stats), 70);
}

TEST(Warp, LeaderLaneAndFirstLanes) {
  EXPECT_EQ(warp::leader_lane(0), -1);
  EXPECT_EQ(warp::leader_lane(0b1000), 3);
  EXPECT_EQ(warp::first_lanes(0), 0u);
  EXPECT_EQ(warp::first_lanes(3), 0b111u);
  EXPECT_EQ(warp::first_lanes(32), kFullMask);
}

TEST(Warp, SegmentedReduceChargesOneOpPerGroup) {
  WarpValues<int> keys{};
  for (int i = 0; i < kWarpSize; ++i) keys[i] = i % 4;  // 4 groups
  WarpValues<double> vals{};
  MemoryStats stats;
  const auto masks = warp::match_any(kFullMask, keys, stats);
  stats = MemoryStats{};
  warp::segmented_reduce_add(kFullMask, masks, vals, stats);
  EXPECT_EQ(stats.shuffle_ops, 4u);
}

TEST(Warp, GatherTransactionsModelCoalescing) {
  MemoryStats stats;
  WarpValues<std::uint32_t> addrs{};
  // Perfectly coalesced: lanes hit consecutive addresses in one segment.
  for (int i = 0; i < kWarpSize; ++i) addrs[i] = 64 + i;
  EXPECT_EQ(warp::gather_transactions(kFullMask, addrs, stats), 1);
  // Fully scattered: every lane in its own segment.
  for (int i = 0; i < kWarpSize; ++i) addrs[i] = static_cast<std::uint32_t>(i) * 1000;
  EXPECT_EQ(warp::gather_transactions(kFullMask, addrs, stats), kWarpSize);
  // Two segments.
  for (int i = 0; i < kWarpSize; ++i) addrs[i] = i < 16 ? 0 : 4096;
  EXPECT_EQ(warp::gather_transactions(kFullMask, addrs, stats), 2);
  // Inactive lanes do not generate transactions.
  for (int i = 0; i < kWarpSize; ++i) addrs[i] = static_cast<std::uint32_t>(i) * 1000;
  EXPECT_EQ(warp::gather_transactions(0x3u, addrs, stats), 2);
  EXPECT_EQ(stats.gather_requests, 4u);
  EXPECT_DOUBLE_EQ(stats.transactions_per_gather(), (1.0 + 32 + 2 + 2) / 4);
}

TEST(SharedMemoryArena, AllocatesUntilCapacityThenThrows) {
  SharedMemoryArena arena(64);
  auto a = arena.allocate<std::uint32_t>(8);  // 32 bytes
  EXPECT_EQ(a.size(), 8u);
  EXPECT_TRUE(arena.fits<std::uint32_t>(8));
  auto b = arena.allocate<std::uint32_t>(8);  // 64 bytes total
  EXPECT_EQ(b.size(), 8u);
  EXPECT_FALSE(arena.fits<std::uint32_t>(1));
  EXPECT_THROW(arena.allocate<std::uint32_t>(1), Error);
}

TEST(SharedMemoryArena, ResetReclaimsEverything) {
  SharedMemoryArena arena(128);
  arena.allocate<double>(16);
  EXPECT_EQ(arena.used_bytes(), 128u);
  arena.reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.allocate<double>(16).size(), 16u);
}

TEST(SharedMemoryArena, AllocationsAreValueInitialised) {
  SharedMemoryArena arena(256);
  auto a = arena.allocate<int>(4);
  a[0] = 42;
  arena.reset();
  auto b = arena.allocate<int>(4);
  EXPECT_EQ(b[0], 0) << "fresh allocation must be zeroed";
}

TEST(SharedMemoryArena, RespectsAlignment) {
  SharedMemoryArena arena(256);
  arena.allocate<char>(1);
  auto d = arena.allocate<double>(1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % alignof(double), 0u);
}

TEST(Device, ParallelAndSequentialLaunchesChargeIdenticalTraffic) {
  Device device;
  auto body = [](BlockContext& ctx) {
    ctx.stats->global_reads += ctx.block_id + 1;
    ctx.shared->allocate<int>(4);
  };
  const auto par = device.launch(100, body);
  const auto seq = device.launch_sequential(100, body);
  EXPECT_EQ(par.traffic.global_reads, seq.traffic.global_reads);
  EXPECT_EQ(par.traffic.global_reads, 100u * 101u / 2);
  EXPECT_DOUBLE_EQ(par.modeled_cycles, seq.modeled_cycles);
}

TEST(Device, SharedArenaResetBetweenBlocks) {
  Device device;
  device.launch_sequential(10, [](BlockContext& ctx) {
    // Each block can claim the full budget: the arena was reset.
    ctx.shared->allocate<std::byte>(ctx.shared->capacity_bytes());
  });
}

TEST(CostModel, CyclesAreLinearInTraffic) {
  CostModel model;
  MemoryStats s;
  s.global_reads = 10;
  s.shared_reads = 10;
  s.register_ops = 10;
  const double base = model.cycles(s);
  MemoryStats d = s;
  d += s;
  EXPECT_DOUBLE_EQ(model.cycles(d), 2 * base);
  EXPECT_GT(model.global_cycles, model.shared_cycles);
  EXPECT_GT(model.shared_cycles, model.register_cycles);
}

TEST(MemoryStats, RatesComputedFromCounters) {
  MemoryStats s;
  EXPECT_DOUBLE_EQ(s.maintenance_rate(), 0.0);
  s.ht_maintain_shared = 3;
  s.ht_maintain_global = 1;
  s.ht_access_shared = 9;
  s.ht_access_global = 1;
  EXPECT_DOUBLE_EQ(s.maintenance_rate(), 0.75);
  EXPECT_DOUBLE_EQ(s.access_rate(), 0.9);
}

}  // namespace
}  // namespace gala::gpusim
