// NMI and entropy (metrics for Table 4).
#include "gala/metrics/nmi.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gala/common/prng.hpp"

namespace gala::metrics {
namespace {

TEST(Nmi, IdenticalPartitionsScoreOne) {
  const std::vector<cid_t> a = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(nmi(a, a), 1.0, 1e-12);
}

TEST(Nmi, RelabelingIsInvariant) {
  const std::vector<cid_t> a = {0, 0, 1, 1, 2, 2};
  const std::vector<cid_t> b = {9, 9, 4, 4, 7, 7};
  EXPECT_NEAR(nmi(a, b), 1.0, 1e-12);
}

TEST(Nmi, IndependentPartitionsScoreNearZero) {
  Xoshiro256 rng(5);
  std::vector<cid_t> a(20000), b(20000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<cid_t>(rng.next_below(10));
    b[i] = static_cast<cid_t>(rng.next_below(10));
  }
  EXPECT_LT(nmi(a, b), 0.02);
}

TEST(Nmi, RefinementScoresBetweenZeroAndOne) {
  // b refines a (splits each cluster in two): informative but not identical.
  std::vector<cid_t> a(1000), b(1000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<cid_t>(i % 4);
    b[i] = static_cast<cid_t>(i % 8);
  }
  const double v = nmi(a, b);
  EXPECT_GT(v, 0.5);
  EXPECT_LT(v, 1.0);
}

TEST(Nmi, SymmetricInItsArguments) {
  Xoshiro256 rng(8);
  std::vector<cid_t> a(500), b(500);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<cid_t>(rng.next_below(5));
    b[i] = static_cast<cid_t>(i % 7);
  }
  EXPECT_NEAR(nmi(a, b), nmi(b, a), 1e-12);
}

TEST(Nmi, TrivialPartitionEdgeCases) {
  const std::vector<cid_t> one_cluster(10, 0);
  const std::vector<cid_t> split = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  EXPECT_NEAR(nmi(one_cluster, one_cluster), 1.0, 1e-12);
  // A constant partition carries no information about any other.
  EXPECT_NEAR(nmi(one_cluster, split), 0.0, 1e-12);
}

TEST(Nmi, MismatchedSizesThrow) {
  const std::vector<cid_t> a = {0, 1};
  const std::vector<cid_t> b = {0, 1, 2};
  EXPECT_THROW(nmi(a, b), Error);
}

TEST(Entropy, MatchesClosedForm) {
  const std::vector<cid_t> uniform4 = {0, 1, 2, 3};
  EXPECT_NEAR(entropy(uniform4), std::log(4.0), 1e-12);
  const std::vector<cid_t> constant(7, 3);
  EXPECT_NEAR(entropy(constant), 0.0, 1e-12);
  const std::vector<cid_t> skew = {0, 0, 0, 1};
  EXPECT_NEAR(entropy(skew), -(0.75 * std::log(0.75) + 0.25 * std::log(0.25)), 1e-12);
}

}  // namespace
}  // namespace gala::metrics
