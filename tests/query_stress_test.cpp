// TSan epoch-race battery for gala::query: reader threads hammer point
// lookups, member scans, and cross-epoch diffs while a writer publishes
// hundreds of epochs (full-run, perturbed, and update_communities repairs).
// Every reader must observe internally-consistent epochs only (validate()
// cross-checks assignment vs sizes vs member CSR vs the modularity sum and
// the epoch footer — a torn publish trips it), epochs must never run
// backwards, and once the readers drain every retired snapshot must be
// reclaimed with no growth in the live memtrace gauge.
//
// Run under -fsanitize=thread (the sanitize-tsan and query-stress CI jobs);
// it is also a correct (slower) plain-build test and runs in the default
// suite.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gala/core/gala.hpp"
#include "gala/core/incremental.hpp"
#include "gala/governor/governor.hpp"
#include "gala/memtrace/memtrace.hpp"
#include "gala/query/executor.hpp"
#include "gala/query/store.hpp"
#include "test_util.hpp"

namespace gala {
namespace {

using query::CommunityStore;
using query::QueryExecutor;
using query::SnapshotRef;
using query::SnapshotSource;
using query::StoreOptions;

constexpr int kReaders = 8;

/// Thread-safe failure sink: readers record, the main thread asserts.
class FailureLog {
 public:
  void record(std::string message) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (messages_.size() < 16) messages_.push_back(std::move(message));
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::string summary() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    for (const auto& m : messages_) out += m + "\n";
    return out;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> messages_;
  std::atomic<std::uint64_t> count_{0};
};

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d4a2a795b9397ULL;
  return z ^ (z >> 31);
}

/// One reader pass over whatever epoch is current: consistency validation,
/// point lookups, a member scan, and (sometimes) a historical diff.
void reader_pass(const CommunityStore& store, const QueryExecutor& exec, FailureLog& failures,
                 std::uint64_t& last_epoch, std::uint64_t& rng, std::uint64_t& reads) {
  SnapshotRef snap = store.current();
  if (!snap) return;
  ++reads;

  if (snap->epoch() < last_epoch) {
    failures.record("epoch ran backwards: " + std::to_string(snap->epoch()) + " after " +
                    std::to_string(last_epoch));
  }
  last_epoch = snap->epoch();

  if (const std::string err = snap->validate(); !err.empty()) {
    failures.record("torn epoch: " + err);
    return;
  }

  const vid_t n = snap->num_vertices();
  const cid_t k = snap->num_communities();
  for (int probe = 0; probe < 16; ++probe) {
    const vid_t v = static_cast<vid_t>(splitmix64(rng) % n);
    const cid_t c = snap->community_of(v);
    if (c >= k) {
      failures.record("point lookup out of range at epoch " + std::to_string(snap->epoch()));
      return;
    }
    if (snap->size(c) == 0) {
      failures.record("member of an empty community at epoch " + std::to_string(snap->epoch()));
      return;
    }
  }

  const cid_t scan = static_cast<cid_t>(splitmix64(rng) % k);
  vid_t seen = 0;
  for (const vid_t v : snap->members(scan)) {
    if (snap->community_of(v) != scan) {
      failures.record("member scan disagrees with assignment at epoch " +
                      std::to_string(snap->epoch()));
      return;
    }
    ++seen;
  }
  if (seen != snap->size(scan)) {
    failures.record("member scan count mismatch at epoch " + std::to_string(snap->epoch()));
    return;
  }

  // Sometimes reach back for a retained historical epoch and diff — the
  // executor pins both sides independently of `snap`.
  if ((splitmix64(rng) & 7u) == 0 && snap->epoch() > 2) {
    const std::uint64_t back = snap->epoch() - 1 - (splitmix64(rng) & 1u);
    if (SnapshotRef old = store.at(back)) {
      if (const std::string err = old->validate(); !err.empty()) {
        failures.record("torn historical epoch: " + err);
        return;
      }
      (void)exec.diff(*old, *snap);
    }
  }
}

TEST(QueryStress, ReadersNeverObserveTornEpochsAcrossHundredsOfPublishes) {
  memtrace::MemRegistry::global().reset();
  const auto g = testing::small_planted(41, 240, 8, 0.2);
  const auto base = core::run_louvain(g);

  StoreOptions opts;
  opts.max_retained = 4;
  opts.governor_client = false;
  CommunityStore store(opts);
  // Batches this size run inline: no cross-reader thread-pool coupling.
  QueryExecutor exec(store, nullptr, /*grain=*/1u << 20);

  constexpr int kPublishes = 240;
  constexpr int kIncrementalEvery = 8;

  FailureLog failures;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> incremental_epochs{0};

  std::thread writer([&] {
    graph::Graph current_graph = g;
    std::vector<cid_t> assignment = base.assignment;
    std::uint64_t rng = 0x5eed5eedULL;
    for (int i = 1; i <= kPublishes; ++i) {
      if (i % kIncrementalEvery == 0) {
        // A real update_communities repair batch: insert two random edges,
        // repair from the previous partition, publish the result.
        std::vector<core::EdgeUpdate> updates;
        const vid_t n = current_graph.num_vertices();
        updates.push_back({static_cast<vid_t>(splitmix64(rng) % n),
                           static_cast<vid_t>(splitmix64(rng) % n), 1.0, false});
        updates.push_back({static_cast<vid_t>(splitmix64(rng) % n),
                           static_cast<vid_t>(splitmix64(rng) % n), 1.0, false});
        auto repaired = core::update_communities(current_graph, assignment, updates);
        store.publish(repaired);
        incremental_epochs.fetch_add(1, std::memory_order_relaxed);
        current_graph = std::move(repaired.graph);
        assignment = std::move(repaired.assignment);
      } else {
        // Perturb a handful of vertices so successive epochs genuinely
        // differ (rebuilt sizes, member CSR, modularity terms).
        std::vector<cid_t> perturbed = assignment;
        for (int moves = 0; moves < 4; ++moves) {
          const vid_t v = static_cast<vid_t>(splitmix64(rng) % perturbed.size());
          perturbed[v] = static_cast<cid_t>(splitmix64(rng) % 8);
        }
        store.publish(current_graph, perturbed, SnapshotSource::Direct);
      }
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  std::vector<std::uint64_t> reads_per_thread(kReaders, 0);
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t last_epoch = 0;
      std::uint64_t rng = 0xface0000ULL + static_cast<std::uint64_t>(t);
      std::uint64_t reads = 0;
      while (!done.load(std::memory_order_acquire)) {
        reader_pass(store, exec, failures, last_epoch, rng, reads);
      }
      // A few passes after the last publish so every reader sees the final
      // epoch at least once.
      for (int i = 0; i < 8; ++i) reader_pass(store, exec, failures, last_epoch, rng, reads);
      reads_per_thread[t] = reads;
    });
  }

  writer.join();
  for (auto& r : readers) r.join();

  EXPECT_EQ(failures.count(), 0u) << failures.summary();
  EXPECT_EQ(store.published(), static_cast<std::uint64_t>(kPublishes));
  EXPECT_EQ(store.latest_epoch(), static_cast<std::uint64_t>(kPublishes));
  EXPECT_GE(incremental_epochs.load(), static_cast<std::uint64_t>(kPublishes / kIncrementalEvery));
  for (int t = 0; t < kReaders; ++t) {
    EXPECT_GT(reads_per_thread[t], 0u) << "reader " << t << " never observed an epoch";
  }

  // Every reader has drained: one reclaim sweep must leave exactly the
  // retained window alive, and the live memtrace gauge must agree — no
  // retained-snapshot leaks.
  store.reclaim();
  EXPECT_EQ(store.live_snapshots(), store.retained());
  EXPECT_EQ(store.retained(), 4u);
  EXPECT_GT(store.reclaimed(), 0u);
  EXPECT_EQ(store.evicted() + store.retained(), store.published());
  EXPECT_EQ(memtrace::MemRegistry::global().live_subsystem("query"), store.resident_bytes());
}

TEST(QueryStress, SingleEpochChurnKeepsThePinValidationHonest) {
  const auto g = testing::two_triangles();
  StoreOptions opts;
  opts.max_retained = 1;  // every publish retires the previous epoch
  opts.governor_client = false;
  CommunityStore store(opts);

  const std::vector<cid_t> a = {0, 0, 0, 1, 1, 1};
  const std::vector<cid_t> b = {0, 1, 2, 3, 4, 5};

  FailureLog failures;
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (int i = 0; i < 400; ++i) store.publish(g, (i & 1) != 0 ? a : b);
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        SnapshotRef snap = store.current();
        if (!snap) continue;
        if (snap->epoch() < last_epoch) failures.record("epoch ran backwards under churn");
        last_epoch = snap->epoch();
        if (const std::string err = snap->validate(); !err.empty()) {
          failures.record("torn epoch under churn: " + err);
        }
        // The two alternating partitions are distinguishable by size(0).
        const vid_t s = snap->size(0);
        if (s != 3 && s != 1) failures.record("impossible community size under churn");
      }
    });
  }

  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(failures.count(), 0u) << failures.summary();
  store.reclaim();
  EXPECT_EQ(store.live_snapshots(), 1u);
  EXPECT_EQ(store.published(), 400u);
}

TEST(QueryStress, GovernorReclaimerRacesReadersAndPublishes) {
  memtrace::MemRegistry::global().reset();
  const auto g = testing::small_planted(43, 800, 8, 0.2);
  const auto base = core::run_louvain(g);

  StoreOptions opts;
  opts.max_retained = 8;  // governor pressure collapses this to 1
  CommunityStore store(opts);

  // Tight enough that publishing 8 retained snapshots crosses the 80%
  // reclaim threshold and keeps the rung-1 reclaimer firing.
  governor::BudgetConfig cfg;
  cfg.total_bytes = 4 * 800 * 12;
  governor::ScopedBudget budget(cfg);

  FailureLog failures;
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (int i = 0; i < 120; ++i) store.publish(g, base.assignment);
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        SnapshotRef snap = store.current();
        if (!snap) continue;
        if (const std::string err = snap->validate(); !err.empty()) {
          failures.record("torn epoch under governor pressure: " + err);
        }
      }
    });
  }

  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(failures.count(), 0u) << failures.summary();
  EXPECT_GE(governor::Governor::global().rung(), governor::Rung::ReclaimSlabs);
  EXPECT_GT(store.evicted(), 0u);
  store.reclaim();
  EXPECT_EQ(store.live_snapshots(), store.retained());
}

}  // namespace
}  // namespace gala
