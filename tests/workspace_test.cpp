// gala::exec Workspace/ExecutionContext: pooled-checkout semantics, epoch
// invalidation, determinism of the pooled engine against fresh allocation,
// and the zero-steady-state-allocation property of the BSP hot loop.
#include "gala/exec/workspace.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "gala/core/bsp_louvain.hpp"
#include "gala/core/gala.hpp"
#include "gala/exec/context.hpp"
#include "test_util.hpp"

namespace gala::exec {
namespace {

// ---- checkout / return ------------------------------------------------------

TEST(Workspace, CheckoutRoundTrip) {
  Workspace ws;
  {
    auto lease = ws.take<std::uint32_t>(100, "test.a");
    ASSERT_TRUE(lease);
    EXPECT_EQ(lease.size(), 100u);
    EXPECT_GE(lease.capacity(), 100u);
    for (std::size_t i = 0; i < lease.size(); ++i) lease[i] = static_cast<std::uint32_t>(i);
    EXPECT_EQ(lease.span()[99], 99u);
    const auto s = ws.stats();
    EXPECT_EQ(s.checkouts, 1u);
    EXPECT_EQ(s.heap_allocs, 1u);
    EXPECT_GT(s.outstanding_bytes, 0u);
  }
  const auto s = ws.stats();
  EXPECT_EQ(s.outstanding_bytes, 0u);
  EXPECT_GT(s.pooled_bytes, 0u);  // the slab went back to the pool
}

TEST(Workspace, ReuseServesFromPoolWithTagAffinity) {
  Workspace ws;
  {
    auto a = ws.take<double>(64, "test.a");
    auto b = ws.take<double>(64, "test.b");  // both live: two distinct slabs
  }
  // Same class, matching tag: must pick the "test.a" slab even though
  // "test.b" was returned more recently.
  auto lease = ws.take<double>(64, "test.a");
  EXPECT_TRUE(lease.recycled_same_tag());
  const auto s = ws.stats();
  EXPECT_EQ(s.heap_allocs, 2u);
  EXPECT_EQ(s.reuse_hits, 1u);
  EXPECT_EQ(s.tag_hits, 1u);
}

TEST(Workspace, SizeClassesArePowersOfTwoAndBestFit) {
  Workspace ws;
  {
    auto lease = ws.take<std::byte>(100, "test.a");  // class 128
    EXPECT_EQ(lease.capacity(), 128u);
  }
  {
    // 64-byte request: its own (empty) class, so best-fit takes the pooled
    // 128-byte slab rather than heap-allocating.
    auto lease = ws.take<std::byte>(33, "test.a");
    EXPECT_EQ(lease.capacity(), 128u);
    EXPECT_TRUE(lease.recycled_same_tag());
  }
  EXPECT_EQ(ws.stats().heap_allocs, 1u);
}

TEST(Workspace, DirtyReuseKeepsSameTagBytesZeroClears) {
  Workspace ws;
  {
    auto lease = ws.take<std::uint8_t>(64, "test.a");
    std::memset(lease.data(), 0xAB, 64);
  }
  {
    auto lease = ws.take<std::uint8_t>(64, "test.a", Fill::Dirty);
    ASSERT_TRUE(lease.recycled_same_tag());
    EXPECT_EQ(lease[0], 0xAB);  // dirty checkout: previous holder's bytes
    EXPECT_EQ(lease[63], 0xAB);
  }
  {
    auto lease = ws.take<std::uint8_t>(64, "test.a", Fill::Zero);
    EXPECT_EQ(lease[0], 0u);
    EXPECT_EQ(lease[63], 0u);
  }
}

// ---- epoch invalidation -----------------------------------------------------

TEST(Workspace, ResetLevelTrapsStaleLeases) {
  Workspace ws;
  auto lease = ws.take<int>(16, "test.a");
  EXPECT_NO_THROW(lease.span());
  ws.reset_level();
  EXPECT_THROW(lease.span(), gala::Error);  // use-after-reset, always-on trap
  lease.release();                          // tolerated, but counted
  EXPECT_EQ(ws.stats().stale_releases, 1u);
  EXPECT_EQ(ws.stats().levels, 1u);
}

TEST(Workspace, ResetLevelRecordsLevelPeak) {
  Workspace ws;
  ws.take<std::byte>(1024, "test.a").release();
  EXPECT_GE(ws.stats().level_peak_bytes, 1024u);
  ws.reset_level();
  // New epoch starts from current outstanding (zero here).
  EXPECT_EQ(ws.stats().level_peak_bytes, 0u);
}

// ---- pooling off ------------------------------------------------------------

TEST(Workspace, PoolingOffAllocatesEveryCheckout) {
  Workspace ws(/*pooling=*/false);
  ws.take<double>(64, "test.a").release();
  ws.take<double>(64, "test.a").release();
  const auto s = ws.stats();
  EXPECT_EQ(s.heap_allocs, 2u);
  EXPECT_EQ(s.reuse_hits, 0u);
  EXPECT_EQ(s.pooled_bytes, 0u);  // returns free instead of pooling
  EXPECT_EQ(s.outstanding_bytes, 0u);
}

TEST(Workspace, TrimFreesIdleSlabs) {
  Workspace ws;
  ws.take<std::byte>(4096, "test.a").release();
  EXPECT_GT(ws.stats().pooled_bytes, 0u);
  EXPECT_GE(ws.trim(), 4096u);
  EXPECT_EQ(ws.stats().pooled_bytes, 0u);
}

// ---- PooledVec --------------------------------------------------------------

TEST(PooledVec, GrowPreservesContentsClearKeepsCapacity) {
  Workspace ws;
  PooledVec<std::uint32_t> vec(ws, "test.vec");
  for (std::uint32_t i = 0; i < 100; ++i) vec.push_back(i);
  ASSERT_EQ(vec.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(vec[i], i);

  const auto allocs_after_fill = ws.stats().heap_allocs;
  const std::size_t cap = vec.capacity();
  vec.clear();
  EXPECT_EQ(vec.size(), 0u);
  EXPECT_EQ(vec.capacity(), cap);
  for (std::uint32_t i = 0; i < 100; ++i) vec.push_back(i + 7);
  EXPECT_EQ(vec[99], 106u);
  // Refilling within capacity touches neither the pool nor the heap.
  EXPECT_EQ(ws.stats().heap_allocs, allocs_after_fill);
}

// ---- engine integration -----------------------------------------------------

// Regression for the old `thread_local std::vector<HashBucket>` scratch: a
// run must leave nothing checked out, and all idle memory must be owned by
// the (trimmable) pool — not pinned to pool threads.
TEST(WorkspaceEngine, ScratchReturnedAfterRun) {
  const auto g = testing::small_planted();
  ExecutionContext ctx;
  core::BspConfig cfg;
  cfg.context = &ctx;
  cfg.parallel = true;  // exercise checkout from pool worker threads
  const auto result = core::bsp_phase1(g, cfg);
  EXPECT_GT(result.modularity, 0.0);

  const auto s = ctx.workspace().stats();
  EXPECT_GT(s.checkouts, 0u);
  EXPECT_EQ(s.outstanding_bytes, 0u);  // every lease returned with the engine
  EXPECT_GT(s.pooled_bytes, 0u);
  EXPECT_GT(ctx.workspace().trim(), 0u);  // the pool owns it all, reclaimable
  EXPECT_EQ(ctx.workspace().stats().pooled_bytes, 0u);
}

// Acceptance: with pooling on, the BSP move loop performs zero heap
// allocations after the first iteration of a level (iteration 0 sizes the
// working set; Relaxed pruning activates everything there, so later
// iterations' demand is a subset).
TEST(WorkspaceEngine, SteadyStateIterationsAllocateNothing) {
  const auto g = testing::small_planted(11, 500, 8, 0.3);
  ExecutionContext ctx;
  core::BspConfig cfg;
  cfg.context = &ctx;
  cfg.parallel = false;
  cfg.pruning = core::PruningStrategy::Relaxed;
  const auto result = core::bsp_phase1(g, cfg);
  ASSERT_GE(result.iterations.size(), 2u) << "graph converged too fast to test steady state";
  EXPECT_GT(result.iterations[0].ws_allocs, 0u);
  for (std::size_t i = 1; i < result.iterations.size(); ++i) {
    EXPECT_EQ(result.iterations[i].ws_allocs, 0u) << "iteration " << i << " hit the heap";
  }
  EXPECT_GT(result.workspace.reuse_rate(), 0.5);
}

// Multi-level pipeline: level N+1 runs entirely out of level N's slabs.
TEST(WorkspaceEngine, LaterLevelsReuseLevelOneSlabs) {
  const auto g = testing::small_planted();
  const auto result = core::run_louvain(g);
  ASSERT_GE(result.levels.size(), 2u);
  EXPECT_GE(result.workspace.levels, 1u);
  EXPECT_GT(result.workspace.reuse_rate(), 0.5);
  EXPECT_EQ(result.workspace.outstanding_bytes, 0u);
}

// ---- determinism: pooled == fresh-allocation --------------------------------

core::Phase1Result run_engine(const graph::Graph& g, core::PruningStrategy pruning,
                              core::HashTablePolicy policy, bool pooling) {
  ExecutionContext ctx({}, /*seed=*/7, pooling);
  core::BspConfig cfg;
  cfg.context = &ctx;
  cfg.parallel = false;
  cfg.pruning = pruning;
  cfg.hashtable = policy;
  return core::bsp_phase1(g, cfg);
}

TEST(WorkspaceDeterminism, PoolingOnOffBitIdenticalAcrossConfigs) {
  const auto g = testing::small_planted(13, 300, 6, 0.25);
  const core::PruningStrategy prunings[] = {
      core::PruningStrategy::Strict, core::PruningStrategy::Relaxed,
      core::PruningStrategy::Probabilistic, core::PruningStrategy::ModularityGain};
  const core::HashTablePolicy policies[] = {core::HashTablePolicy::GlobalOnly,
                                            core::HashTablePolicy::Unified,
                                            core::HashTablePolicy::Hierarchical};
  for (const auto pruning : prunings) {
    for (const auto policy : policies) {
      const auto pooled = run_engine(g, pruning, policy, /*pooling=*/true);
      const auto fresh = run_engine(g, pruning, policy, /*pooling=*/false);
      SCOPED_TRACE(core::to_string(pruning) + " / " + core::to_string(policy));
      EXPECT_EQ(pooled.community, fresh.community);  // bit-identical partition
      EXPECT_EQ(pooled.modularity, fresh.modularity);
      EXPECT_EQ(pooled.iterations.size(), fresh.iterations.size());
      EXPECT_EQ(pooled.total_traffic.global_reads, fresh.total_traffic.global_reads);
      EXPECT_EQ(pooled.total_traffic.shared_reads, fresh.total_traffic.shared_reads);
      // Pooling-off must not reuse anything; pooling-on must.
      EXPECT_EQ(fresh.workspace.reuse_hits, 0u);
      EXPECT_GT(pooled.workspace.reuse_hits, 0u);
    }
  }
}

TEST(WorkspaceDeterminism, FullPipelinePoolingOnOffIdentical) {
  const auto g = testing::small_planted();
  ExecutionContext pooled_ctx({}, 7, /*pooling=*/true);
  ExecutionContext fresh_ctx({}, 7, /*pooling=*/false);
  core::GalaConfig cfg;
  cfg.bsp.parallel = false;
  cfg.bsp.context = &pooled_ctx;
  const auto pooled = core::run_louvain(g, cfg);
  cfg.bsp.context = &fresh_ctx;
  const auto fresh = core::run_louvain(g, cfg);
  EXPECT_EQ(pooled.assignment, fresh.assignment);
  EXPECT_EQ(pooled.modularity, fresh.modularity);
  EXPECT_EQ(pooled.levels.size(), fresh.levels.size());
}

}  // namespace
}  // namespace gala::exec
