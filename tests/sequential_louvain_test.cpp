// The sequential Blondel reference implementation.
#include "gala/core/sequential_louvain.hpp"

#include <gtest/gtest.h>

#include "gala/core/modularity.hpp"
#include "gala/graph/generators.hpp"
#include "test_util.hpp"

namespace gala::core {
namespace {

TEST(SequentialLouvain, FindsTheTwoTriangles) {
  const auto g = testing::two_triangles();
  const auto r = sequential_louvain(g);
  EXPECT_EQ(r.num_communities, 2u);
  EXPECT_NEAR(r.modularity, 2.0 * (6.0 / 14 - 0.25), 1e-9);
}

TEST(SequentialLouvain, RingOfCliquesGetsOneCommunityPerClique) {
  const auto g = graph::ring_of_cliques(10, 5);
  const auto r = sequential_louvain(g);
  EXPECT_EQ(r.num_communities, 10u);
  // All members of a clique share a community.
  for (vid_t c = 0; c < 10; ++c) {
    for (vid_t i = 1; i < 5; ++i) {
      EXPECT_EQ(r.assignment[c * 5 + i], r.assignment[c * 5]);
    }
  }
}

TEST(SequentialLouvain, ReportedModularityMatchesAudit) {
  const auto g = testing::small_planted(21, 800, 10, 0.25);
  const auto r = sequential_louvain(g);
  EXPECT_NEAR(r.modularity, modularity(g, r.assignment), 1e-9);
}

TEST(SequentialLouvain, Phase1NeverDecreasesModularity) {
  const auto g = testing::small_planted(23, 500, 8, 0.3);
  std::vector<cid_t> singles(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) singles[v] = v;
  const wt_t q0 = modularity(g, singles);
  const auto r = sequential_phase1(g);
  EXPECT_GE(r.modularity, q0);
}

TEST(SequentialLouvain, MultiLevelAtLeastAsGoodAsPhase1) {
  const auto g = testing::small_planted(25, 700, 14, 0.2);
  const auto p1 = sequential_phase1(g);
  const auto full = sequential_louvain(g);
  EXPECT_GE(full.modularity, p1.modularity - 1e-9);
  EXPECT_LE(full.num_communities, p1.num_communities);
}

TEST(SequentialLouvain, AssignmentIsDense) {
  const auto g = testing::small_planted(27);
  const auto r = sequential_louvain(g);
  for (const cid_t c : r.assignment) EXPECT_LT(c, r.num_communities);
}

TEST(SequentialLouvain, HandlesWeightedGraphs) {
  // Strong weights must dominate topology: {0,1} and {2,3} despite the ring.
  graph::GraphBuilder b(4);
  b.add_edge(0, 1, 10.0);
  b.add_edge(2, 3, 10.0);
  b.add_edge(1, 2, 0.1);
  b.add_edge(3, 0, 0.1);
  const auto g = b.build();
  const auto r = sequential_louvain(g);
  EXPECT_EQ(r.num_communities, 2u);
  EXPECT_EQ(r.assignment[0], r.assignment[1]);
  EXPECT_EQ(r.assignment[2], r.assignment[3]);
}

}  // namespace
}  // namespace gala::core
