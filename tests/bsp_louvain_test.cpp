// Integration tests for the BSP phase-1 engine: correctness against the
// sequential reference, invariants of the state tracking, and behaviour of
// all configuration axes (kernels, hashtables, pruning, weight update).
#include "gala/core/bsp_louvain.hpp"

#include <gtest/gtest.h>

#include "gala/core/gala.hpp"
#include "gala/core/modularity.hpp"
#include "gala/core/sequential_louvain.hpp"
#include "gala/graph/generators.hpp"
#include "test_util.hpp"

namespace gala::core {
namespace {

TEST(BspLouvain, FindsTheTwoTriangles) {
  const auto g = testing::two_triangles();
  BspConfig cfg;
  cfg.parallel = false;
  const auto result = bsp_phase1(g, cfg);
  EXPECT_EQ(result.num_communities, 2u);
  EXPECT_EQ(result.community[0], result.community[1]);
  EXPECT_EQ(result.community[1], result.community[2]);
  EXPECT_EQ(result.community[3], result.community[4]);
  EXPECT_EQ(result.community[4], result.community[5]);
  EXPECT_NE(result.community[0], result.community[3]);
  EXPECT_NEAR(result.modularity, 2.0 * (6.0 / 14 - 0.25), 1e-9);
}

TEST(BspLouvain, ReportedModularityMatchesIndependentAudit) {
  const auto g = testing::small_planted();
  const auto result = bsp_phase1(g, {});
  EXPECT_NEAR(result.modularity, modularity(g, result.community), 1e-9);
}

TEST(BspLouvain, RecoversPlantedCommunities) {
  std::vector<cid_t> truth;
  graph::PlantedPartitionParams p;
  p.num_vertices = 600;
  p.num_communities = 6;
  p.avg_degree = 16;
  p.mixing = 0.1;
  p.seed = 3;
  const auto g = graph::planted_partition(p, &truth);
  // Phase 1 of round 1 plateaus early under BSP (expected); the multi-level
  // pipeline recovers sequential-level quality.
  const auto phase1 = bsp_phase1(g, {});
  EXPECT_GT(phase1.modularity, 0.05);
  const auto full = run_louvain(g);
  EXPECT_GT(full.modularity, 0.65);  // ~ (1 - mu) - 1/k
  EXPECT_EQ(full.num_communities, 6u);
}

TEST(BspLouvain, ComparableToSequentialReference) {
  const auto g = testing::small_planted(17, 500, 10, 0.2);
  const auto seq = sequential_phase1(g);
  const auto bsp = bsp_phase1(g, {});
  // BSP phase 1 should land in the same quality regime as the sequential
  // sweep (it may differ slightly in either direction).
  EXPECT_GT(bsp.modularity, 0.85 * seq.modularity);
}

TEST(BspLouvain, ModularityNeverBelowStartAndConverges) {
  const auto g = testing::small_planted(23);
  const auto result = bsp_phase1(g, {});
  ASSERT_FALSE(result.iterations.empty());
  // Final iteration either moved nothing or gained < theta.
  const auto& last = result.iterations.back();
  EXPECT_TRUE(last.moved == 0 || last.delta_q < 1e-6);
  EXPECT_GT(result.modularity, 0.0);
}

struct AxisParam {
  KernelMode kernel;
  HashTablePolicy hashtable;
  WeightUpdateMode update;
  bool parallel;
};

class BspAxes : public ::testing::TestWithParam<AxisParam> {};

TEST_P(BspAxes, AllConfigurationsAgreeOnModularity) {
  const auto g = testing::small_planted(29, 500, 10, 0.25);
  BspConfig reference;
  reference.parallel = false;
  const auto expect = bsp_phase1(g, reference);

  BspConfig cfg;
  cfg.kernel = GetParam().kernel;
  cfg.hashtable = GetParam().hashtable;
  cfg.weight_update = GetParam().update;
  cfg.parallel = GetParam().parallel;
  const auto got = bsp_phase1(g, cfg);

  // Every kernel/hashtable/update combination computes the same algorithm;
  // decisions are identical so communities and modularity must match.
  EXPECT_NEAR(got.modularity, expect.modularity, 1e-9);
  EXPECT_EQ(got.num_communities, expect.num_communities);
  EXPECT_NEAR(got.modularity, modularity(g, got.community), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllAxes, BspAxes,
    ::testing::Values(
        AxisParam{KernelMode::Auto, HashTablePolicy::Hierarchical, WeightUpdateMode::Delta, true},
        AxisParam{KernelMode::Auto, HashTablePolicy::Hierarchical, WeightUpdateMode::Recompute,
                  true},
        AxisParam{KernelMode::ShuffleOnly, HashTablePolicy::Hierarchical, WeightUpdateMode::Delta,
                  true},
        AxisParam{KernelMode::HashOnly, HashTablePolicy::Hierarchical, WeightUpdateMode::Delta,
                  true},
        AxisParam{KernelMode::HashOnly, HashTablePolicy::Unified, WeightUpdateMode::Delta, true},
        AxisParam{KernelMode::HashOnly, HashTablePolicy::GlobalOnly, WeightUpdateMode::Delta,
                  true},
        AxisParam{KernelMode::Auto, HashTablePolicy::Unified, WeightUpdateMode::Recompute, false},
        AxisParam{KernelMode::HashOnly, HashTablePolicy::GlobalOnly, WeightUpdateMode::Recompute,
                  false}));

TEST(BspLouvain, DeltaWeightUpdateMatchesRecomputeEveryIteration) {
  // Run two engines in lockstep configs and compare the *state* they report
  // through identical final results on several seeds.
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto g = testing::small_planted(seed, 300, 6, 0.3);
    BspConfig a, b;
    a.weight_update = WeightUpdateMode::Recompute;
    b.weight_update = WeightUpdateMode::Delta;
    a.parallel = b.parallel = false;
    const auto ra = bsp_phase1(g, a);
    const auto rb = bsp_phase1(g, b);
    ASSERT_EQ(ra.iterations.size(), rb.iterations.size()) << "seed " << seed;
    for (std::size_t i = 0; i < ra.iterations.size(); ++i) {
      EXPECT_NEAR(ra.iterations[i].modularity, rb.iterations[i].modularity, 1e-9)
          << "seed " << seed << " iteration " << i;
      EXPECT_EQ(ra.iterations[i].moved, rb.iterations[i].moved);
    }
    EXPECT_EQ(ra.community, rb.community);
  }
}

TEST(BspLouvain, IsolatedVerticesStaySingletons) {
  graph::GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  // Vertices 3 and 4 are isolated.
  const auto g = b.build();
  const auto result = bsp_phase1(g, {});
  EXPECT_EQ(result.community[3], 3u);
  EXPECT_EQ(result.community[4], 4u);
  EXPECT_EQ(result.num_communities, 3u);
}

TEST(BspLouvain, RejectsEmptyGraph) {
  graph::GraphBuilder b(3);
  const auto g = b.build();
  EXPECT_THROW(bsp_phase1(g, {}), Error);
}

TEST(BspLouvain, DeterministicAcrossRuns) {
  const auto g = testing::small_planted(31);
  const auto a = bsp_phase1(g, {});
  const auto b = bsp_phase1(g, {});
  EXPECT_EQ(a.community, b.community);
  EXPECT_EQ(a.iterations.size(), b.iterations.size());
}

TEST(BspLouvain, TrafficAccountingIsPopulated) {
  const auto g = testing::small_planted(37);
  const auto result = bsp_phase1(g, {});
  EXPECT_GT(result.total_traffic.global_reads, 0u);
  EXPECT_GT(result.modeled_ms(), 0.0);
  EXPECT_GT(result.decide_modeled_ms, 0.0);
}

TEST(BspLouvain, ObserverSeesEveryIteration) {
  const auto g = testing::small_planted(41);
  BspConfig cfg;
  BspLouvainEngine engine(g, cfg);
  int calls = 0;
  engine.set_observer([&](int iter, const IterationStats&, std::span<const std::uint8_t> active,
                          std::span<const std::uint8_t> moved) {
    EXPECT_EQ(iter, calls);
    EXPECT_EQ(active.size(), g.num_vertices());
    EXPECT_EQ(moved.size(), g.num_vertices());
    ++calls;
  });
  const auto result = engine.run();
  EXPECT_EQ(static_cast<std::size_t>(calls), result.iterations.size());
}

}  // namespace
}  // namespace gala::core
