// gala::telemetry: span tracing, the counter/gauge/histogram registry, the
// sinks, JSON export validity (parsed back with gala::parse_json), and the
// pipeline instrumentation contract (span payloads match Phase1Result).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "gala/common/json.hpp"
#include "gala/core/bsp_louvain.hpp"
#include "gala/graph/generators.hpp"
#include "gala/telemetry/telemetry.hpp"

namespace gala {
namespace {

namespace fs = std::filesystem;
using telemetry::Registry;
using telemetry::ScopedSpan;
using telemetry::SpanRecord;
using telemetry::Tracer;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// JSON parser (common/json.hpp).

TEST(JsonParser, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("a \"quoted\" string\nwith newline");
  w.key("n").value(std::uint64_t{42});
  w.key("x").value(2.5);
  w.key("flag").value(true);
  w.key("list").begin_array().value(1).value(2).value(3).end_array();
  w.key("nested").begin_object().key("empty").begin_array().end_array().end_object();
  w.end_object();

  const JsonValue doc = parse_json(w.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("name").string, "a \"quoted\" string\nwith newline");
  EXPECT_EQ(doc.at("n").number, 42);
  EXPECT_EQ(doc.at("x").number, 2.5);
  EXPECT_TRUE(doc.at("flag").boolean);
  ASSERT_EQ(doc.at("list").array.size(), 3u);
  EXPECT_EQ(doc.at("list").array[2].number, 3);
  EXPECT_TRUE(doc.at("nested").at("empty").is_array());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParser, AcceptsEscapesAndNegativeExponents) {
  const JsonValue doc = parse_json(R"({"u":"A\t","neg":-1.5e-3,"null":null})");
  EXPECT_EQ(doc.at("u").string, "A\t");
  EXPECT_DOUBLE_EQ(doc.at("neg").number, -1.5e-3);
  EXPECT_TRUE(doc.at("null").is_null());
}

TEST(JsonParser, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_json("{"), Error);
  EXPECT_THROW(parse_json("{\"a\":}"), Error);
  EXPECT_THROW(parse_json("[1,2,]extra"), Error);
  EXPECT_THROW(parse_json("{\"a\":1} trailing"), Error);
  EXPECT_THROW(parse_json("nope"), Error);
}

// ---------------------------------------------------------------------------
// Span recording.

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer tracer;  // null-sink default: disabled
  ASSERT_FALSE(tracer.enabled());
  {
    ScopedSpan span(tracer, "outer");
    span.arg("x", 1.0);
    EXPECT_FALSE(span.active());
    ScopedSpan inner(tracer, "inner");
  }
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(Tracer, RecordsNestedSpansWithDepthAndOrder) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan outer(tracer, "outer", "test");
    {
      ScopedSpan mid(tracer, "mid", "test");
      ScopedSpan leaf(tracer, "leaf", "test");
    }
    ScopedSpan sibling(tracer, "sibling", "test");
  }

  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Completion order: innermost first.
  EXPECT_EQ(spans[0].name, "leaf");
  EXPECT_EQ(spans[1].name, "mid");
  EXPECT_EQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[3].name, "outer");

  const auto find = [&](const std::string& name) {
    for (const auto& s : spans) {
      if (s.name == name) return s;
    }
    ADD_FAILURE() << "span " << name << " missing";
    return SpanRecord{};
  };
  const SpanRecord outer = find("outer"), mid = find("mid"), leaf = find("leaf"),
                   sibling = find("sibling");
  // Begin order via seq, nesting via depth, containment via timestamps.
  EXPECT_LT(outer.seq, mid.seq);
  EXPECT_LT(mid.seq, leaf.seq);
  EXPECT_LT(leaf.seq, sibling.seq);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(mid.depth, 1u);
  EXPECT_EQ(leaf.depth, 2u);
  EXPECT_EQ(sibling.depth, 1u);
  EXPECT_LE(outer.start_us, mid.start_us);
  EXPECT_LE(mid.start_us + mid.dur_us, outer.start_us + outer.dur_us + 1e3);
  EXPECT_GE(outer.dur_us, leaf.dur_us);
}

TEST(Tracer, SpanArgsAreAttached) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan span(tracer, "k", "kernel");
    EXPECT_TRUE(span.active());
    span.arg("global_reads", 128);
    span.arg("modeled_cycles", 51200);
  }
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].args.size(), 2u);
  EXPECT_EQ(spans[0].args[0].first, "global_reads");
  EXPECT_EQ(spans[0].args[0].second, 128);
}

TEST(Tracer, ConcurrentSpansFromManyThreads) {
  Tracer tracer;
  tracer.set_enabled(true);
  constexpr int kThreads = 8, kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span(tracer, "work", "mt");
        ScopedSpan inner(tracer, "inner", "mt");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.span_count(), static_cast<std::size_t>(kThreads * kSpansPerThread * 2));
  // The trace must still be valid JSON.
  const JsonValue doc = parse_json(tracer.chrome_trace_json());
  EXPECT_EQ(doc.at("traceEvents").array.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread * 2));
}

TEST(Tracer, RetentionCapCountsDrops) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_max_spans(3);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span(tracer, "s");
  }
  EXPECT_EQ(tracer.span_count(), 3u);
  EXPECT_EQ(tracer.dropped(), 7u);
  tracer.reset();
  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// ---------------------------------------------------------------------------
// Exports.

TEST(Tracer, ChromeTraceJsonIsValidAndOrdered) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan a(tracer, "first", "phase");
    ScopedSpan b(tracer, "second", "kernel");
    b.arg("bytes", 64);
  }
  const JsonValue doc = parse_json(tracer.chrome_trace_json());
  ASSERT_TRUE(doc.is_object());
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.array.size(), 2u);
  // Sorted by begin order despite completion-order recording.
  EXPECT_EQ(events.array[0].at("name").string, "first");
  EXPECT_EQ(events.array[1].at("name").string, "second");
  for (const auto& e : events.array) {
    EXPECT_EQ(e.at("ph").string, "X");
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    EXPECT_TRUE(e.at("args").is_object());
  }
  EXPECT_EQ(events.array[1].at("args").at("bytes").number, 64);
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
}

TEST(Tracer, ChromeTraceEscapesHostileSpanContent) {
  // Span names/args with quotes, backslashes, newlines, and control bytes
  // must survive the writer -> DOM parser round trip byte-for-byte.
  const std::string hostile = "evil \"name\" \\ with\nnewline\tand \x01 control";
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan span(tracer, hostile, "cat\"egory");
    span.arg("bytes", 64);
  }
  const JsonValue doc = parse_json(tracer.chrome_trace_json());
  const JsonValue& e = doc.at("traceEvents").array[0];
  EXPECT_EQ(e.at("name").string, hostile);
  EXPECT_EQ(e.at("cat").string, "cat\"egory");
  EXPECT_EQ(e.at("args").at("bytes").number, 64);
  // The summary document goes through the same escaping.
  const JsonValue summary = parse_json(tracer.summary_json());
  EXPECT_NE(summary.at("spans").find("cat\"egory/" + hostile), nullptr);
}

TEST(Tracer, RankScopeCreatesPerRankTracksWithMetadata) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan host(tracer, "host-side", "cli");
  }
  for (int rank = 0; rank < 2; ++rank) {
    telemetry::RankScope scope(rank);
    ScopedSpan span(tracer, "decide", "multigpu");
  }
  const JsonValue doc = parse_json(tracer.chrome_trace_json());
  std::set<double> pids;
  std::map<double, std::string> track_names;
  for (const auto& e : doc.at("traceEvents").array) {
    if (e.at("ph").string == "X") pids.insert(e.at("pid").number);
    if (e.at("ph").string == "M" && e.at("name").string == "process_name") {
      track_names[e.at("pid").number] = e.at("args").at("name").string;
    }
  }
  // Host spans on pid 0, rank r on pid r+1, and every track is named.
  EXPECT_EQ(pids, (std::set<double>{0, 1, 2}));
  EXPECT_EQ(track_names.at(0), "host");
  EXPECT_EQ(track_names.at(1), "rank 0");
  EXPECT_EQ(track_names.at(2), "rank 1");
}

TEST(Tracer, HostOnlyTraceKeepsLegacyShapeWithoutMetadata) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan span(tracer, "solo", "test");
  }
  const JsonValue doc = parse_json(tracer.chrome_trace_json());
  ASSERT_EQ(doc.at("traceEvents").array.size(), 1u);  // no "M" events
  EXPECT_EQ(doc.at("traceEvents").array[0].at("ph").string, "X");
}

TEST(Tracer, FlowArrowsLinkPostToComplete) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    telemetry::RankScope scope(0);
    ScopedSpan post(tracer, "post_gather", "multigpu");
    post.flow_out(42);
  }
  {
    telemetry::RankScope scope(1);
    ScopedSpan complete(tracer, "complete_gather", "multigpu");
    complete.flow_in(42);
  }
  const JsonValue doc = parse_json(tracer.chrome_trace_json());
  const JsonValue* start = nullptr;
  const JsonValue* finish = nullptr;
  for (const auto& e : doc.at("traceEvents").array) {
    if (e.at("ph").string == "s") start = &e;
    if (e.at("ph").string == "f") finish = &e;
  }
  ASSERT_NE(start, nullptr);
  ASSERT_NE(finish, nullptr);
  EXPECT_EQ(start->at("id").number, 42);
  EXPECT_EQ(finish->at("id").number, 42);
  EXPECT_EQ(finish->at("bp").string, "e");
  EXPECT_EQ(start->at("pid").number, 1);   // rank 0's track
  EXPECT_EQ(finish->at("pid").number, 2);  // rank 1's track
  // The arrow starts at the posting span's end and lands at the completing
  // span's begin: ts(start) <= ts(finish).
  EXPECT_LE(start->at("ts").number, finish->at("ts").number);
}

TEST(Tracer, SummaryAggregatesByCategoryAndName) {
  Tracer tracer;
  tracer.set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    ScopedSpan span(tracer, "decide", "phase1");
    span.arg("modeled_ms", 2.0);
  }
  {
    ScopedSpan span(tracer, "decide", "kernel");  // same name, other category
  }
  const JsonValue doc = parse_json(tracer.summary_json());
  const JsonValue& agg = doc.at("spans").at("phase1/decide");
  EXPECT_EQ(agg.at("count").number, 3);
  EXPECT_DOUBLE_EQ(agg.at("args").at("modeled_ms").number, 6.0);
  EXPECT_EQ(doc.at("spans").at("kernel/decide").at("count").number, 1);
}

// ---------------------------------------------------------------------------
// Sinks.

TEST(Sinks, ChromeTraceSinkWritesParseableFile) {
  const fs::path path = fs::temp_directory_path() / "gala_sink_chrome.json";
  Tracer tracer;
  tracer.add_sink(std::make_shared<telemetry::ChromeTraceSink>(path.string()));
  EXPECT_TRUE(tracer.enabled());  // add_sink enables
  {
    ScopedSpan span(tracer, "synced", "test");
  }
  tracer.flush_sinks();
  const JsonValue doc = parse_json(read_file(path.string()));
  ASSERT_EQ(doc.at("traceEvents").array.size(), 1u);
  EXPECT_EQ(doc.at("traceEvents").array[0].at("name").string, "synced");
  fs::remove(path);
}

TEST(Sinks, JsonSinkWritesFlatSpanDump) {
  const fs::path path = fs::temp_directory_path() / "gala_sink_flat.json";
  Tracer tracer;
  tracer.add_sink(std::make_shared<telemetry::JsonSink>(path.string()));
  {
    ScopedSpan outer(tracer, "outer", "test");
    ScopedSpan inner(tracer, "inner", "test");
    inner.arg("v", 7);
  }
  tracer.flush_sinks();
  const JsonValue doc = parse_json(read_file(path.string()));
  ASSERT_EQ(doc.at("spans").array.size(), 2u);
  const JsonValue& inner = doc.at("spans").array[0];
  EXPECT_EQ(inner.at("name").string, "inner");
  EXPECT_EQ(inner.at("depth").number, 1);
  EXPECT_EQ(inner.at("args").at("v").number, 7);
  fs::remove(path);
}

TEST(Sinks, TextSinkWritesOneLinePerSpan) {
  const fs::path path = fs::temp_directory_path() / "gala_sink_text.txt";
  {
    std::FILE* f = std::fopen(path.string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    Tracer tracer;
    tracer.add_sink(std::make_shared<telemetry::TextSink>(f));
    {
      ScopedSpan span(tracer, "hello", "test");
      span.arg("n", 3);
    }
    std::fclose(f);
  }
  const std::string text = read_file(path.string());
  EXPECT_NE(text.find("test/hello"), std::string::npos);
  EXPECT_NE(text.find("n=3"), std::string::npos);
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Registry.

TEST(Registry, CountersAggregateAcrossThreads) {
  Registry registry;
  constexpr int kThreads = 8, kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      auto& counter = registry.counter("work.items");  // cached lookup per thread
      for (int i = 0; i < kAdds; ++i) counter.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("work.items").value(),
            static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Registry, HistogramLog2BucketsAndThreadedObserve) {
  using telemetry::Histogram;
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(1023), 10u);
  EXPECT_EQ(Histogram::bucket_index(1024), 11u);
  EXPECT_EQ(Histogram::bucket_lo(0), 0u);
  EXPECT_EQ(Histogram::bucket_lo(1), 1u);
  EXPECT_EQ(Histogram::bucket_lo(11), 1024u);

  Registry registry;
  constexpr int kThreads = 4, kObs = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      auto& h = registry.histogram("degrees");
      for (int i = 0; i < kObs; ++i) h.observe(static_cast<std::uint64_t>(i % 8));
    });
  }
  for (auto& t : threads) t.join();
  auto& h = registry.histogram("degrees");
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kObs);
  // i%8 hits 0 once per 8, 1 once, [2,4) twice, [4,8) four times.
  EXPECT_EQ(h.bucket_count(0), static_cast<std::uint64_t>(kThreads) * kObs / 8);
  EXPECT_EQ(h.bucket_count(2), static_cast<std::uint64_t>(kThreads) * kObs / 4);
  EXPECT_EQ(h.bucket_count(3), static_cast<std::uint64_t>(kThreads) * kObs / 2);
}

TEST(Registry, HistogramBulkObserveAndPercentiles) {
  using telemetry::Histogram;
  Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0u);  // empty histogram
  h.observe_n(1, 90);
  h.observe_n(1024, 10);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 90u + 10u * 1024u);
  // Ranks 1..90 live in the value-1 bucket; ranks 91..100 in [1024, 2048).
  EXPECT_EQ(h.percentile(0.50), 1u);
  EXPECT_EQ(h.percentile(0.90), 1u);
  EXPECT_EQ(h.percentile(0.95), 1024u);
  EXPECT_EQ(h.percentile(0.99), 1024u);
  EXPECT_EQ(h.percentile(1.0), 1024u);
  EXPECT_EQ(h.percentile(0.0), 1u);  // clamps to the first observation
  h.observe_n(5, 0);                 // zero-count bulk observe is a no-op
  EXPECT_EQ(h.count(), 100u);
}

TEST(Registry, PercentilesAreBucketLowerBounds) {
  telemetry::Histogram h;
  for (int i = 0; i < 10; ++i) h.observe(6);  // bucket [4, 8)
  EXPECT_EQ(h.percentile(0.5), 4u);
  EXPECT_EQ(h.percentile(0.99), 4u);
}

TEST(Registry, JsonExportCarriesPercentileSummaries) {
  Registry registry;
  auto& h = registry.histogram("probe.len");
  h.observe_n(1, 90);
  h.observe_n(16, 10);
  const JsonValue doc = parse_json(registry.json());
  const JsonValue& hist = doc.at("histograms").at("probe.len");
  EXPECT_EQ(hist.at("p50").number, 1);
  EXPECT_EQ(hist.at("p95").number, 16);
  EXPECT_EQ(hist.at("p99").number, 16);
}

TEST(Registry, GaugeSetAndAdd) {
  Registry registry;
  registry.gauge("occupancy").set(0.5);
  registry.gauge("occupancy").add(0.25);
  EXPECT_DOUBLE_EQ(registry.gauge("occupancy").value(), 0.75);
  registry.reset();
  EXPECT_DOUBLE_EQ(registry.gauge("occupancy").value(), 0.0);
}

TEST(Registry, JsonExportListsInstruments) {
  Registry registry;
  registry.counter("a.count").add(5);
  registry.gauge("b.gauge").set(1.5);
  registry.histogram("c.hist").observe(9);
  const JsonValue doc = parse_json(registry.json());
  EXPECT_EQ(doc.at("counters").at("a.count").number, 5);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("b.gauge").number, 1.5);
  const JsonValue& hist = doc.at("histograms").at("c.hist");
  EXPECT_EQ(hist.at("count").number, 1);
  EXPECT_EQ(hist.at("sum").number, 9);
  ASSERT_EQ(hist.at("buckets").array.size(), 1u);
  EXPECT_EQ(hist.at("buckets").array[0].at("lo").number, 8);
}

// ---------------------------------------------------------------------------
// Pipeline instrumentation contract.

TEST(PipelineTelemetry, Phase1SpansMatchPhase1Result) {
  auto& tracer = Tracer::global();
  tracer.reset();
  tracer.set_enabled(true);

  graph::PlantedPartitionParams params;
  params.num_vertices = 300;
  params.num_communities = 6;
  params.avg_degree = 12;
  params.mixing = 0.1;
  params.seed = 5;
  const graph::Graph g = graph::planted_partition(params, nullptr);

  core::BspConfig cfg;
  cfg.parallel = false;  // deterministic sequential launches
  const core::Phase1Result result = core::bsp_phase1(g, cfg);
  tracer.set_enabled(false);

  const JsonValue doc = parse_json(tracer.summary_json());
  const JsonValue& spans = doc.at("spans");

  // One span per iteration for each phase.
  const double iters = static_cast<double>(result.iterations.size());
  EXPECT_EQ(spans.at("phase1/iteration").at("count").number, iters);
  EXPECT_EQ(spans.at("phase1/pruning").at("count").number, iters);
  EXPECT_EQ(spans.at("phase1/decide").at("count").number, iters);
  EXPECT_EQ(spans.at("phase1/weight-update").at("count").number, iters);
  EXPECT_EQ(spans.at("phase1/bookkeeping").at("count").number, iters);

  // Modeled-cycle payloads must sum to exactly the Phase1Result figures.
  EXPECT_NEAR(spans.at("phase1/decide").at("args").at("modeled_ms").number,
              result.decide_modeled_ms, 1e-12);
  EXPECT_NEAR(spans.at("phase1/weight-update").at("args").at("modeled_ms").number,
              result.update_modeled_ms, 1e-12);
  EXPECT_NEAR(spans.at("phase1/bookkeeping").at("args").at("modeled_ms").number,
              result.other_modeled_ms, 1e-12);

  // Kernel launches carry their MemoryStats snapshot; summed kernel traffic
  // equals the engine's decide traffic.
  double kernel_reads = 0;
  const JsonValue* shuffle = spans.find("kernel/decide_shuffle");
  const JsonValue* hash = spans.find("kernel/decide_hash");
  ASSERT_TRUE(shuffle != nullptr || hash != nullptr);
  for (const JsonValue* k : {shuffle, hash}) {
    if (k != nullptr) kernel_reads += k->at("args").at("global_reads").number;
  }
  std::uint64_t decide_reads = 0;
  for (const auto& it : result.iterations) decide_reads += it.decide_traffic.global_reads;
  EXPECT_EQ(kernel_reads, static_cast<double>(decide_reads));

  tracer.reset();
}

TEST(PipelineTelemetry, MetricsJsonCombinesSpansAndRegistry) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan span(tracer, "s", "c");
  }
  Registry registry;
  registry.counter("n").add(2);
  const JsonValue doc = parse_json(telemetry::metrics_json(tracer, registry));
  EXPECT_EQ(doc.at("spans").at("c/s").at("count").number, 1);
  EXPECT_EQ(doc.at("counters").at("n").number, 2);
  EXPECT_TRUE(doc.at("histograms").is_object());
}

}  // namespace
}  // namespace gala
