// Baseline systems (Fig. 5 comparators): modularity parity with GALA and
// the expected traffic/modeled-time ordering.
#include "gala/baselines/baseline.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace gala::baselines {
namespace {

const graph::Graph& shared_graph() {
  static const graph::Graph g = testing::small_planted(33, 800, 16, 0.25);
  return g;
}

using Runner = BaselineResult (*)(const graph::Graph&, const BaselineOptions&);

class EachBaseline : public ::testing::TestWithParam<std::pair<const char*, Runner>> {};

TEST_P(EachBaseline, ConvergesToGalaModularity) {
  // §5.1: every system follows the same convergence strategy, so the final
  // modularity matches (identical decide semantics => identical result).
  const auto& g = shared_graph();
  BaselineOptions opts;
  const auto gala = run_gala(g, opts);
  const auto r = GetParam().second(g, opts);
  EXPECT_EQ(r.name, GetParam().first);
  EXPECT_NEAR(r.modularity, gala.modularity, 1e-9);
  EXPECT_EQ(r.community, gala.community);
  EXPECT_GT(r.iterations, 0);
  EXPECT_GT(r.modeled_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Systems, EachBaseline,
    ::testing::Values(std::make_pair("cuGraph", &run_cugraph_like),
                      std::make_pair("Gunrock", &run_gunrock_like),
                      std::make_pair("nido", &run_nido_like),
                      std::make_pair("Grappolo (GPU)", &run_grappolo_gpu),
                      std::make_pair("Grappolo (GPU)*", &run_grappolo_gpu_star),
                      std::make_pair("Grappolo (CPU)", &run_grappolo_cpu)));

TEST(Baselines, GalaIsTheFastestModeledSystem) {
  const auto& g = shared_graph();
  const auto all = run_all_systems(g, {});
  const auto& gala = all.back();
  ASSERT_EQ(gala.name, "GALA");
  // GALA beats every external comparator. Its own blas engine is a second
  // formulation of the same algorithm, not a comparator — it is gated on
  // partition parity below, not on modeled time.
  for (std::size_t i = 0; i + 1 < all.size(); ++i) {
    if (all[i].name.starts_with("GALA")) continue;
    EXPECT_GT(all[i].modeled_ms, gala.modeled_ms) << all[i].name;
  }
}

TEST(Baselines, BlasEngineRowMatchesGalaBitExactly) {
  const auto& g = shared_graph();
  BaselineOptions opts;
  const auto gala = run_gala(g, opts);
  const auto blas = run_gala_blas(g, opts);
  EXPECT_EQ(blas.name, "GALA (blas)");
  EXPECT_EQ(blas.community, gala.community);
  EXPECT_EQ(blas.iterations, gala.iterations);
  EXPECT_NEAR(blas.modularity, gala.modularity, 1e-12);
  EXPECT_GT(blas.modeled_ms, 0.0);
}

TEST(Baselines, TrafficOrderingMatchesTheStrategies) {
  const auto& g = shared_graph();
  BaselineOptions opts;
  const auto gala = run_gala(g, opts);
  const auto gunrock = run_gunrock_like(g, opts);
  const auto cugraph = run_cugraph_like(g, opts);
  const auto grappolo = run_grappolo_gpu(g, opts);
  // Gunrock's edge-list re-materialisation dwarfs everyone's global traffic.
  EXPECT_GT(gunrock.traffic.global_reads, cugraph.traffic.global_reads);
  EXPECT_GT(cugraph.traffic.global_reads, gala.traffic.global_reads);
  // The unpruned global-hashtable baseline reads far more than GALA.
  EXPECT_GT(grappolo.traffic.global_reads, 2 * gala.traffic.global_reads);
}

TEST(Baselines, RunAllReturnsPaperOrder) {
  const auto all = run_all_systems(shared_graph(), {});
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ(all[0].name, "cuGraph");
  EXPECT_EQ(all[1].name, "Gunrock");
  EXPECT_EQ(all[2].name, "nido");
  EXPECT_EQ(all[3].name, "Grappolo (GPU)");
  EXPECT_EQ(all[4].name, "Grappolo (GPU)*");
  EXPECT_EQ(all[5].name, "Grappolo (CPU)");
  EXPECT_EQ(all[6].name, "GALA (blas)");
  EXPECT_EQ(all[7].name, "GALA");  // GALA stays last for results.back()
}

TEST(Baselines, SequentialModeMatchesParallel) {
  const auto& g = shared_graph();
  BaselineOptions par, seq;
  seq.parallel = false;
  const auto a = run_cugraph_like(g, par);
  const auto b = run_cugraph_like(g, seq);
  EXPECT_EQ(a.community, b.community);
  EXPECT_EQ(a.traffic.global_reads, b.traffic.global_reads);
}

}  // namespace
}  // namespace gala::baselines
