// JSON writer and run reports, plus the distributed full pipeline.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "gala/core/gala.hpp"
#include "gala/metrics/report.hpp"
#include "gala/multigpu/dist_louvain.hpp"
#include "test_util.hpp"

namespace gala {
namespace {

TEST(JsonWriter, NestedStructuresAndCommas) {
  metrics::JsonWriter w;
  w.begin_object();
  w.key("a").value(1);
  w.key("b").begin_array().value(1.5).value("x").value(true).end_array();
  w.key("c").begin_object().key("d").value(2).end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[1.5,"x",true],"c":{"d":2}})");
}

TEST(JsonWriter, EscapesStrings) {
  metrics::JsonWriter w;
  w.begin_object();
  w.key("quote\"and\\slash").value("line\nbreak\ttab");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"quote\\\"and\\\\slash\":\"line\\nbreak\\ttab\"}");
}

TEST(JsonWriter, MismatchedEndThrows) {
  metrics::JsonWriter w;
  w.begin_object();
  EXPECT_THROW(w.end_array(), Error);
}

TEST(RunReport, ContainsTheKeyFacts) {
  const auto g = testing::small_planted(3, 300, 6, 0.2);
  core::GalaConfig cfg;
  cfg.refine = true;
  const auto result = core::run_louvain(g, cfg);
  const std::string json = metrics::run_report_json(g, cfg, result);
  EXPECT_NE(json.find("\"pruning\":\"MG\""), std::string::npos);
  EXPECT_NE(json.find("\"refine\":true"), std::string::npos);
  EXPECT_NE(json.find("\"modularity\":"), std::string::npos);
  EXPECT_NE(json.find("\"levels\":["), std::string::npos);
  // Every brace balances.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), std::count(json.begin(), json.end(), '}'));
}

TEST(RunReport, SavesToDisk) {
  const auto g = testing::two_triangles();
  const auto result = core::run_louvain(g);
  const auto dir = std::filesystem::temp_directory_path() / "gala_report_test";
  std::filesystem::create_directories(dir);
  const auto path = (dir / "run.json").string();
  metrics::save_run_report(g, {}, result, path);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"vertices\":6"), std::string::npos);
}

TEST(DistributedFull, MatchesSingleDevicePipelineQuality) {
  const auto g = testing::small_planted(7, 1200, 12, 0.2);
  const auto single = core::run_louvain(g);
  multigpu::DistributedConfig cfg;
  cfg.num_gpus = 4;
  const auto dist = multigpu::distributed_louvain(g, cfg);
  EXPECT_NEAR(dist.modularity, single.modularity, 0.02);
  EXPECT_NEAR(dist.modularity, core::modularity(g, dist.assignment), 1e-9);
  EXPECT_GT(dist.levels, 1);
  EXPECT_GT(dist.modeled_ms, 0.0);
}

TEST(DistributedFull, DeterministicAcrossDeviceCounts) {
  const auto g = testing::small_planted(9, 600, 8, 0.25);
  multigpu::DistributedConfig two, eight;
  two.num_gpus = 2;
  eight.num_gpus = 8;
  const auto a = multigpu::distributed_louvain(g, two);
  const auto b = multigpu::distributed_louvain(g, eight);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.modularity, b.modularity);
}

}  // namespace
}  // namespace gala
