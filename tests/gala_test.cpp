// Integration tests for the top-level GALA pipeline (run_louvain).
#include "gala/core/gala.hpp"

#include <gtest/gtest.h>

#include "gala/core/modularity.hpp"
#include "gala/core/sequential_louvain.hpp"
#include "gala/graph/generators.hpp"
#include "gala/metrics/nmi.hpp"
#include "test_util.hpp"

namespace gala::core {
namespace {

TEST(Gala, RingOfCliquesRecoveredExactly) {
  const auto g = graph::ring_of_cliques(12, 6);
  const auto r = run_louvain(g);
  EXPECT_EQ(r.num_communities, 12u);
  for (vid_t c = 0; c < 12; ++c) {
    for (vid_t i = 1; i < 6; ++i) EXPECT_EQ(r.assignment[c * 6 + i], r.assignment[c * 6]);
  }
}

TEST(Gala, MatchesSequentialQualityOnPlantedGraphs) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto g = testing::small_planted(seed, 1000, 12, 0.2);
    const auto seq = sequential_louvain(g);
    const auto gala = run_louvain(g);
    EXPECT_GT(gala.modularity, 0.97 * seq.modularity) << "seed " << seed;
    EXPECT_NEAR(gala.modularity, modularity(g, gala.assignment), 1e-9);
  }
}

TEST(Gala, RecoversGroundTruthOnSharpGraphs) {
  graph::PlantedPartitionParams p;
  p.num_vertices = 2000;
  p.num_communities = 20;
  p.avg_degree = 16;
  p.mixing = 0.05;
  p.seed = 12;
  std::vector<cid_t> truth;
  const auto g = graph::planted_partition(p, &truth);
  const auto r = run_louvain(g);
  EXPECT_GT(metrics::nmi(r.assignment, truth), 0.95);
}

TEST(Gala, LevelsCompressMonotonically) {
  const auto g = testing::small_planted(7, 3000, 30, 0.2);
  const auto r = run_louvain(g);
  ASSERT_GE(r.levels.size(), 2u);
  for (std::size_t i = 0; i < r.levels.size(); ++i) {
    EXPECT_LE(r.levels[i].communities, r.levels[i].vertices);
    if (i > 0) {
      EXPECT_EQ(r.levels[i].vertices, r.levels[i - 1].communities);
      EXPECT_GE(r.levels[i].modularity + 1e-9, r.levels[i - 1].modularity);
    }
  }
}

TEST(Gala, AssignmentIsDenseAndCovering) {
  const auto g = testing::small_planted(9);
  const auto r = run_louvain(g);
  ASSERT_EQ(r.assignment.size(), g.num_vertices());
  std::vector<bool> used(r.num_communities, false);
  for (const cid_t c : r.assignment) {
    ASSERT_LT(c, r.num_communities);
    used[c] = true;
  }
  for (const bool u : used) EXPECT_TRUE(u);
}

TEST(Gala, KeepFirstRoundCapturesIterationDetail) {
  const auto g = testing::small_planted(11);
  GalaConfig cfg;
  cfg.keep_first_round = true;
  const auto r = run_louvain(g, cfg);
  EXPECT_FALSE(r.first_round.iterations.empty());
  EXPECT_EQ(static_cast<int>(r.first_round.iterations.size()), r.levels[0].iterations);
}

TEST(Gala, DeterministicAcrossRuns) {
  const auto g = testing::small_planted(13);
  const auto a = run_louvain(g);
  const auto b = run_louvain(g);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.modularity, b.modularity);
}

TEST(Gala, AllPruningStrategiesReachSimilarQuality) {
  const auto g = testing::small_planted(15, 1500, 15, 0.25);
  GalaConfig base;
  const auto baseline = run_louvain(g, base);
  for (const auto strategy :
       {PruningStrategy::None, PruningStrategy::Strict, PruningStrategy::Relaxed,
        PruningStrategy::Probabilistic, PruningStrategy::MgPlusRelaxed}) {
    GalaConfig cfg;
    cfg.bsp.pruning = strategy;
    const auto r = run_louvain(g, cfg);
    EXPECT_GT(r.modularity, baseline.modularity - 0.02) << to_string(strategy);
  }
}

TEST(Gala, ModeledTimeAccumulatesAcrossLevels) {
  const auto g = testing::small_planted(17);
  const auto r = run_louvain(g);
  EXPECT_GT(r.modeled_ms, 0.0);
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(Gala, WeightedGraphsRespectWeights) {
  graph::GraphBuilder b(6);
  // Two weighted triangles bridged by a heavy edge: the heavy bridge glues
  // everything into one community.
  for (const auto& [u, v] :
       {std::pair<vid_t, vid_t>{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}}) {
    b.add_edge(u, v, 0.1);
  }
  b.add_edge(2, 3, 50.0);
  const auto g = b.build();
  const auto r = run_louvain(g);
  EXPECT_EQ(r.assignment[2], r.assignment[3]);
}

}  // namespace
}  // namespace gala::core
