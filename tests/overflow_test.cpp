// Overflow paths: shared-arena exhaustion, global-scratch growth, and the
// shuffle kernel's multi-chunk spill — the resource edges the degradation
// ladder is built on. Every test exercises a *real* overflow (no fault
// injection): tiny arenas, pre-filled arenas, high-degree vertices.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gala/core/hashtables.hpp"
#include "gala/core/kernels.hpp"
#include "gala/gpusim/shared_memory.hpp"
#include "gala/telemetry/telemetry.hpp"
#include "test_util.hpp"

namespace gala::core {
namespace {

constexpr std::uint64_t kSalt = 0x5eedULL;

/// A hub vertex 0 with `leaves` spokes, every leaf in its own community —
/// the worst case for per-vertex table capacity and for warp chunking.
graph::Graph star(vid_t leaves) {
  graph::GraphBuilder b(leaves + 1);
  for (vid_t i = 1; i <= leaves; ++i) b.add_edge(0, i, 1.0 + 0.25 * (i % 4));
  return b.build();
}

/// Identity partition + its community totals, packaged for the kernels.
struct DecideFixture {
  graph::Graph g;
  std::vector<cid_t> comm;
  std::vector<wt_t> comm_total;

  explicit DecideFixture(graph::Graph graph) : g(std::move(graph)) {
    comm.resize(g.num_vertices());
    comm_total.resize(g.num_vertices());
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      comm[v] = v;
      comm_total[v] = g.degree(v);
    }
  }

  DecideInput input() const { return {&g, comm, comm_total, g.two_m(), 1.0}; }
};

void expect_same_decision(const Decision& a, const Decision& b) {
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
  EXPECT_DOUBLE_EQ(a.curr_score, b.curr_score);
  EXPECT_DOUBLE_EQ(a.weight_to_curr, b.weight_to_curr);
}

// ---- shared arena ----------------------------------------------------------

TEST(ArenaOverflowTest, AllocateBeyondCapacityThrowsResourceExhausted) {
  gpusim::SharedMemoryArena arena(64);
  EXPECT_FALSE(arena.fits<HashBucket>(10));
  EXPECT_THROW(arena.allocate<HashBucket>(10), ResourceExhausted);
  // A failed allocation leaves the arena usable.
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_NO_THROW(arena.allocate<HashBucket>(2));
}

TEST(ArenaOverflowTest, ExhaustionMessageIsStructured) {
  gpusim::SharedMemoryArena arena(32);
  try {
    arena.allocate<HashBucket>(100);
    FAIL() << "expected ResourceExhausted";
  } catch (const ResourceExhausted& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shared memory overflow"), std::string::npos);
    EXPECT_NE(what.find("capacity 32B"), std::string::npos);
  }
}

TEST(ArenaOverflowTest, PrefilledArenaFailsTableConstruction) {
  // GlobalOnly never touches the arena, so a full arena must only break the
  // shared-placement policies.
  for (const HashTablePolicy policy : {HashTablePolicy::Hierarchical, HashTablePolicy::Unified}) {
    gpusim::SharedMemoryArena arena(8 * sizeof(HashBucket));
    arena.allocate<HashBucket>(8);  // another kernel's tables own the block
    HashScratch scratch;
    gpusim::MemoryStats stats;
    EXPECT_THROW(
        NeighborCommunityTable(policy, arena, scratch, /*capacity_hint=*/4, kSalt, stats),
        ResourceExhausted)
        << to_string(policy);
  }
  gpusim::SharedMemoryArena arena(8 * sizeof(HashBucket));
  arena.allocate<HashBucket>(8);
  HashScratch scratch;
  gpusim::MemoryStats stats;
  EXPECT_NO_THROW(
      NeighborCommunityTable(HashTablePolicy::GlobalOnly, arena, scratch, 4, kSalt, stats));
}

// ---- hash kernel degradation -----------------------------------------------

TEST(HashKernelOverflowTest, ExhaustedArenaDegradesToGlobalOnlyWithSameDecision) {
  const DecideFixture fx(gala::testing::two_triangles());
  const DecideInput in = fx.input();

  gpusim::SharedMemoryArena fresh(48 * 1024);
  HashScratch scratch_a;
  gpusim::MemoryStats stats_a;
  const Decision reference =
      hash_decide(in, /*v=*/2, HashTablePolicy::GlobalOnly, fresh, scratch_a, kSalt, stats_a);

  const std::uint64_t fallbacks_before =
      telemetry::Registry::global().counter("resilience.hashtable_fallbacks").value();

  gpusim::SharedMemoryArena full(4 * sizeof(HashBucket));
  full.allocate<HashBucket>(4);
  HashScratch scratch_b;
  gpusim::MemoryStats stats_b;
  const Decision degraded =
      hash_decide(in, /*v=*/2, HashTablePolicy::Hierarchical, full, scratch_b, kSalt, stats_b);

  expect_same_decision(reference, degraded);
  EXPECT_EQ(telemetry::Registry::global().counter("resilience.hashtable_fallbacks").value(),
            fallbacks_before + 1);
}

TEST(HashKernelOverflowTest, AllPoliciesAgreeOnEveryVertex) {
  const DecideFixture fx(gala::testing::small_planted());
  const DecideInput in = fx.input();
  gpusim::SharedMemoryArena arena(48 * 1024);
  HashScratch scratch;
  for (vid_t v = 0; v < fx.g.num_vertices(); v += 37) {
    arena.reset();
    gpusim::MemoryStats s0, s1, s2;
    const Decision a = hash_decide(in, v, HashTablePolicy::GlobalOnly, arena, scratch, kSalt, s0);
    arena.reset();
    const Decision b = hash_decide(in, v, HashTablePolicy::Unified, arena, scratch, kSalt, s1);
    arena.reset();
    const Decision c =
        hash_decide(in, v, HashTablePolicy::Hierarchical, arena, scratch, kSalt, s2);
    expect_same_decision(a, b);
    expect_same_decision(a, c);
  }
}

// ---- global-scratch growth --------------------------------------------------

TEST(ScratchGrowthTest, AllPoliciesGrowScratchToPowerOfTwoCapacity) {
  for (const HashTablePolicy policy :
       {HashTablePolicy::GlobalOnly, HashTablePolicy::Unified, HashTablePolicy::Hierarchical}) {
    gpusim::SharedMemoryArena arena(48 * 1024);
    HashScratch scratch;  // starts empty: first table must grow it
    gpusim::MemoryStats stats;
    {
      NeighborCommunityTable table(policy, arena, scratch, /*capacity_hint=*/10, kSalt, stats);
      // want = bit_ceil(10 * 2) = 32 global buckets for every policy.
      EXPECT_EQ(table.global_buckets(), 32u) << to_string(policy);
    }
    EXPECT_GE(scratch.size(), 32u) << to_string(policy);

    // A second, bigger table grows the same scratch in place; a smaller one
    // reuses it without shrinking.
    const std::size_t grown = scratch.size();
    gpusim::MemoryStats stats2;
    arena.reset();
    { NeighborCommunityTable t2(policy, arena, scratch, 100, kSalt, stats2); }
    EXPECT_GE(scratch.size(), 256u) << to_string(policy);
    gpusim::MemoryStats stats3;
    arena.reset();
    { NeighborCommunityTable t3(policy, arena, scratch, 3, kSalt, stats3); }
    EXPECT_GE(scratch.size(), std::max<std::size_t>(grown, 256)) << to_string(policy);
  }
}

TEST(ScratchGrowthTest, TablesWorkAfterGrowth) {
  // Fill a freshly-grown table past its shared capacity so entries provably
  // land in (and read back from) the global part.
  const DecideFixture fx(star(100));
  gpusim::SharedMemoryArena arena(4 * sizeof(HashBucket));  // only 4 shared buckets
  HashScratch scratch;
  gpusim::MemoryStats stats;
  NeighborCommunityTable table(HashTablePolicy::Hierarchical, arena, scratch,
                               /*capacity_hint=*/100, kSalt, stats);
  for (cid_t c = 1; c <= 100; ++c) {
    table.upsert(c, 1.0, [&](cid_t id) { return fx.comm_total[id]; });
  }
  EXPECT_EQ(table.size(), 100u);
  EXPECT_GT(stats.ht_maintain_global, 0u);  // shared part (4 buckets) overflowed
  wt_t sum = 0;
  table.for_each([&](cid_t, wt_t w, wt_t) { sum += w; });
  EXPECT_DOUBLE_EQ(sum, 100.0);
}

// ---- shuffle multi-chunk spill ----------------------------------------------

TEST(ShuffleSpillTest, MultiChunkSpillMatchesHashKernel) {
  // Degree 40 > warp size forces the chunked spill-and-merge path.
  const DecideFixture fx(star(40));
  const DecideInput in = fx.input();

  gpusim::SharedMemoryArena spill(48 * 1024);
  gpusim::MemoryStats shuffle_stats;
  const Decision via_shuffle = shuffle_decide(in, /*v=*/0, spill, shuffle_stats);
  EXPECT_GT(shuffle_stats.shared_writes, 0u);  // leaders spilled to shared memory

  gpusim::SharedMemoryArena arena(48 * 1024);
  HashScratch scratch;
  gpusim::MemoryStats hash_stats;
  const Decision via_hash =
      hash_decide(in, /*v=*/0, HashTablePolicy::GlobalOnly, arena, scratch, kSalt, hash_stats);

  expect_same_decision(via_shuffle, via_hash);
}

TEST(ShuffleSpillTest, SingleChunkNeverTouchesSpillArena) {
  const DecideFixture fx(star(32));  // deg == warp size: registers only
  gpusim::SharedMemoryArena spill(0);  // any touch would throw
  gpusim::MemoryStats stats;
  EXPECT_NO_THROW(shuffle_decide(fx.input(), 0, spill, stats));
  EXPECT_EQ(spill.used_bytes(), 0u);
}

TEST(ShuffleSpillTest, TinySpillArenaFailsClosed) {
  const DecideFixture fx(star(40));
  gpusim::SharedMemoryArena spill(64);  // deg-40 spill list needs 640B
  gpusim::MemoryStats stats;
  EXPECT_THROW(shuffle_decide(fx.input(), 0, spill, stats), ResourceExhausted);
}

}  // namespace
}  // namespace gala::core
