// Extension features: ARI metric, label propagation, the resolution
// parameter, incremental updates, and the CLI argument parser.
#include <gtest/gtest.h>

#include "gala/baselines/label_propagation.hpp"
#include "gala/common/cli.hpp"
#include "gala/core/bsp_louvain.hpp"
#include "gala/core/gala.hpp"
#include "gala/core/incremental.hpp"
#include "gala/core/refinement.hpp"
#include "gala/core/modularity.hpp"
#include "gala/graph/generators.hpp"
#include "gala/metrics/ari.hpp"
#include "gala/metrics/nmi.hpp"
#include "test_util.hpp"

namespace gala {
namespace {

// ---------------------------------------------------------------- ARI ----
TEST(Ari, IdenticalPartitionsScoreOne) {
  const std::vector<cid_t> a = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(metrics::adjusted_rand_index(a, a), 1.0, 1e-12);
  const std::vector<cid_t> relabeled = {7, 7, 3, 3, 9, 9};
  EXPECT_NEAR(metrics::adjusted_rand_index(a, relabeled), 1.0, 1e-12);
}

TEST(Ari, IndependentPartitionsScoreNearZero) {
  Xoshiro256 rng(3);
  std::vector<cid_t> a(20000), b(20000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<cid_t>(rng.next_below(8));
    b[i] = static_cast<cid_t>(rng.next_below(8));
  }
  EXPECT_NEAR(metrics::adjusted_rand_index(a, b), 0.0, 0.01);
}

TEST(Ari, PartialAgreementLandsBetween) {
  std::vector<cid_t> a(1000), b(1000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<cid_t>(i % 4);
    b[i] = static_cast<cid_t>(i % 8);  // refinement of a
  }
  const double v = metrics::adjusted_rand_index(a, b);
  EXPECT_GT(v, 0.2);
  EXPECT_LT(v, 1.0);
}

TEST(Ari, MismatchedSizesThrow) {
  const std::vector<cid_t> a = {0};
  const std::vector<cid_t> b = {0, 1};
  EXPECT_THROW(metrics::adjusted_rand_index(a, b), Error);
}

// ------------------------------------------------------------------ LPA ----
TEST(LabelPropagation, FindsSharpCommunities) {
  graph::PlantedPartitionParams p;
  p.num_vertices = 1000;
  p.num_communities = 10;
  p.avg_degree = 16;
  p.mixing = 0.05;
  p.seed = 5;
  std::vector<cid_t> truth;
  const auto g = graph::planted_partition(p, &truth);
  const auto r = baselines::label_propagation(g);
  EXPECT_GT(metrics::nmi(r.labels, truth), 0.9);
  EXPECT_GT(r.iterations, 0);
}

TEST(LabelPropagation, CliquesGetUniformLabels) {
  const auto g = graph::ring_of_cliques(8, 6);
  const auto r = baselines::label_propagation(g);
  for (vid_t c = 0; c < 8; ++c) {
    for (vid_t i = 1; i < 6; ++i) EXPECT_EQ(r.labels[c * 6 + i], r.labels[c * 6]);
  }
}

TEST(LabelPropagation, SynchronousModeTerminates) {
  const auto g = testing::small_planted(7, 400, 8, 0.2);
  baselines::LpaOptions opts;
  opts.synchronous = true;
  const auto r = baselines::label_propagation(g, opts);
  EXPECT_LE(r.iterations, opts.max_iterations);
  EXPECT_GT(r.num_communities, 0u);
}

TEST(LabelPropagation, LouvainBeatsLpaOnModularity) {
  // LPA optimises no objective; on a moderately mixed graph GALA's
  // modularity should dominate.
  const auto g = testing::small_planted(9, 1000, 10, 0.35);
  const auto lpa = baselines::label_propagation(g);
  const auto gala = core::run_louvain(g);
  EXPECT_GT(gala.modularity, core::modularity(g, lpa.labels));
}

// ----------------------------------------------------------- resolution ----
TEST(Resolution, HigherGammaYieldsMoreCommunities) {
  const auto g = testing::small_planted(11, 1500, 15, 0.15);
  auto communities_at = [&](double gamma) {
    core::GalaConfig cfg;
    cfg.bsp.resolution = gamma;
    return core::run_louvain(g, cfg).num_communities;
  };
  const vid_t low = communities_at(0.2);
  const vid_t mid = communities_at(1.0);
  const vid_t high = communities_at(25.0);  // planted blocks have no internal
  EXPECT_LE(low, mid);                      // structure, so only a large gamma
  EXPECT_LT(mid, high);                     // splits them
}

TEST(Resolution, GammaOneMatchesClassicModularity) {
  const auto g = testing::small_planted(13);
  std::vector<cid_t> comm(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) comm[v] = v % 5;
  EXPECT_DOUBLE_EQ(core::modularity(g, comm), core::modularity(g, comm, 1.0));
  EXPECT_NE(core::modularity(g, comm, 2.0), core::modularity(g, comm, 1.0));
}

TEST(Resolution, ReportedModularityUsesConfiguredGamma) {
  const auto g = testing::small_planted(15);
  core::GalaConfig cfg;
  cfg.bsp.resolution = 2.0;
  const auto r = core::run_louvain(g, cfg);
  EXPECT_NEAR(r.modularity, core::modularity(g, r.assignment, 2.0), 1e-9);
}

TEST(Resolution, MgPruningStillHasZeroFalseNegativesUnderGamma) {
  const auto g = testing::small_planted(17, 500, 10, 0.25);
  for (const double gamma : {0.5, 2.0}) {
    core::BspConfig cfg;
    cfg.resolution = gamma;
    cfg.track_confusion = true;
    const auto r = core::bsp_phase1(g, cfg);
    std::uint64_t fn = 0;
    for (const auto& it : r.iterations) fn += it.fn;
    EXPECT_EQ(fn, 0u) << "gamma " << gamma;
  }
}

// ----------------------------------------------------------- incremental ----
TEST(Incremental, ApplyEdgeUpdatesInsertAndRemove) {
  const auto g = testing::two_triangles();
  std::vector<core::EdgeUpdate> updates = {
      {0, 4, 2.0, false},        // new cross edge
      {2, 3, 1.0, true},         // remove the bridge
  };
  const auto updated = core::apply_edge_updates(g, updates);
  updated.validate();
  EXPECT_EQ(updated.num_edges(), g.num_edges());  // one added, one removed
  // Edge {0,4} exists with weight 2.
  auto nbrs = updated.neighbors(0);
  auto it = std::find(nbrs.begin(), nbrs.end(), 4u);
  ASSERT_NE(it, nbrs.end());
  EXPECT_DOUBLE_EQ(updated.weights(0)[it - nbrs.begin()], 2.0);
  // Bridge gone.
  auto n2 = updated.neighbors(2);
  EXPECT_EQ(std::find(n2.begin(), n2.end(), 3u), n2.end());
}

TEST(Incremental, RemovingMissingEdgeThrows) {
  const auto g = testing::two_triangles();
  std::vector<core::EdgeUpdate> updates = {{0, 5, 1.0, true}};
  EXPECT_THROW(core::apply_edge_updates(g, updates), Error);
}

// Adversarial batches: the update map is keyed on the *undirected* edge, so
// duplicates, both orientations, and mixed add/remove sequences within one
// batch must fold into a single per-edge weight.
TEST(Incremental, DuplicateUpdatesInOneBatchAccumulate) {
  const auto g = testing::two_triangles();
  std::vector<core::EdgeUpdate> updates = {
      {0, 4, 1.5, false},
      {0, 4, 2.5, false},        // same edge again: weights sum to 4
      {2, 3, 0.5, true},
      {2, 3, 0.5, true},         // two partial removals delete the bridge
  };
  const auto updated = core::apply_edge_updates(g, updates);
  updated.validate();
  auto nbrs = updated.neighbors(0);
  auto it = std::find(nbrs.begin(), nbrs.end(), 4u);
  ASSERT_NE(it, nbrs.end());
  EXPECT_DOUBLE_EQ(updated.weights(0)[it - nbrs.begin()], 4.0);
  auto n2 = updated.neighbors(2);
  EXPECT_EQ(std::find(n2.begin(), n2.end(), 3u), n2.end());
}

TEST(Incremental, OverRemovalDeletesTheEdgeCleanly) {
  const auto g = testing::two_triangles();  // bridge {2,3} has weight 1
  std::vector<core::EdgeUpdate> updates = {{2, 3, 5.0, true}};
  const auto updated = core::apply_edge_updates(g, updates);
  updated.validate();
  EXPECT_EQ(updated.num_edges(), g.num_edges() - 1);
  auto n2 = updated.neighbors(2);
  EXPECT_EQ(std::find(n2.begin(), n2.end(), 3u), n2.end());
  // Total weight never goes negative through over-removal.
  EXPECT_DOUBLE_EQ(updated.total_weight(), g.total_weight() - 1.0);
}

TEST(Incremental, BothOrientationsCollideOnOneEdge) {
  const auto g = testing::two_triangles();
  std::vector<core::EdgeUpdate> updates = {
      {0, 4, 1.0, false},
      {4, 0, 3.0, false},        // {v,u} is the same undirected edge as {u,v}
  };
  const auto updated = core::apply_edge_updates(g, updates);
  updated.validate();
  EXPECT_EQ(updated.num_edges(), g.num_edges() + 1);  // one new edge, not two
  auto nbrs = updated.neighbors(4);
  auto it = std::find(nbrs.begin(), nbrs.end(), 0u);
  ASSERT_NE(it, nbrs.end());
  EXPECT_DOUBLE_EQ(updated.weights(4)[it - nbrs.begin()], 4.0);
  // And a removal addressed with the swapped orientation finds the edge.
  std::vector<core::EdgeUpdate> removal = {{4, 0, 4.0, true}};
  const auto reverted = core::apply_edge_updates(updated, removal);
  EXPECT_EQ(reverted.num_edges(), g.num_edges());
}

TEST(Incremental, SelfLoopUpdatesRideTheSamePath) {
  const auto g = testing::two_triangles();
  std::vector<core::EdgeUpdate> add = {{1, 1, 2.0, false}, {1, 1, 1.0, false}};
  const auto with_loop = core::apply_edge_updates(g, add);
  with_loop.validate();
  EXPECT_DOUBLE_EQ(with_loop.self_loop(1), 3.0);
  EXPECT_DOUBLE_EQ(with_loop.total_weight(), g.total_weight() + 3.0);
  // Partial removal keeps the loop; over-removal erases it.
  std::vector<core::EdgeUpdate> partial = {{1, 1, 1.0, true}};
  const auto reduced = core::apply_edge_updates(with_loop, partial);
  EXPECT_DOUBLE_EQ(reduced.self_loop(1), 2.0);
  std::vector<core::EdgeUpdate> all = {{1, 1, 9.0, true}};
  const auto gone = core::apply_edge_updates(with_loop, all);
  EXPECT_DOUBLE_EQ(gone.self_loop(1), 0.0);
  EXPECT_DOUBLE_EQ(gone.total_weight(), g.total_weight());
}

TEST(Incremental, NonPositiveUpdateWeightThrows) {
  const auto g = testing::two_triangles();
  std::vector<core::EdgeUpdate> zero = {{0, 4, 0.0, false}};
  EXPECT_THROW(core::apply_edge_updates(g, zero), Error);
  std::vector<core::EdgeUpdate> negative = {{0, 4, -1.0, true}};
  EXPECT_THROW(core::apply_edge_updates(g, negative), Error);
}

TEST(Incremental, RepairReachesFullRecomputeQuality) {
  const auto g = testing::small_planted(19, 1500, 15, 0.2);
  const auto initial = core::run_louvain(g);

  // Perturb: a sprinkle of random cross-community edges.
  Xoshiro256 rng(4);
  std::vector<core::EdgeUpdate> updates;
  for (int i = 0; i < 30; ++i) {
    const auto u = static_cast<vid_t>(rng.next_below(g.num_vertices()));
    const auto v = static_cast<vid_t>(rng.next_below(g.num_vertices()));
    if (u != v) updates.push_back({u, v, 1.0, false});
  }

  const auto repaired = core::update_communities(g, initial.assignment, updates);
  const auto updated_graph = core::apply_edge_updates(g, updates);
  const auto scratch = core::run_louvain(updated_graph);
  EXPECT_GT(repaired.modularity, 0.98 * scratch.modularity);
  EXPECT_NEAR(repaired.modularity,
              core::modularity(repaired.graph, repaired.assignment), 1e-9);
}

TEST(Incremental, MgScreensOutTheUntouchedBulk) {
  const auto g = testing::small_planted(21, 3000, 30, 0.15);
  const auto initial = core::run_louvain(g);
  std::vector<core::EdgeUpdate> updates = {{0, g.num_vertices() / 2, 5.0, false}};
  const auto repaired = core::update_communities(g, initial.assignment, updates);
  // The repair should evaluate far fewer vertex-decisions than one full
  // sweep of the graph would.
  EXPECT_LT(repaired.evaluated_vertices, g.num_vertices() / 2);
}

TEST(Incremental, DeletionHeavyBatchSplitsCommunities) {
  // Remove every bridge of a ring of cliques: the repair must keep (or
  // restore) one community per clique, and deletions must not corrupt the
  // graph.
  const auto g = graph::ring_of_cliques(6, 5);
  const auto initial = core::run_louvain(g);
  std::vector<core::EdgeUpdate> updates;
  for (vid_t c = 0; c < 6; ++c) {
    const vid_t from = c * 5 + 4;
    const vid_t to = ((c + 1) % 6) * 5;
    updates.push_back({from, to, 1.0, true});
  }
  const auto repaired = core::update_communities(g, initial.assignment, updates);
  repaired.graph.validate();
  EXPECT_EQ(repaired.graph.num_edges(), g.num_edges() - 6);
  EXPECT_EQ(repaired.num_communities, 6u);
  // Disconnected cliques: every community fully internal -> coverage 1.
  EXPECT_TRUE(core::is_partition_connected(repaired.graph, repaired.assignment));
}

TEST(Incremental, EmptyBatchIsAFixedPointOfRepair) {
  // An empty update batch must reproduce the previous partition exactly:
  // same graph, same communities (canonically renumbered), same modularity.
  // The query layer publishes such batches as new epochs that compare equal.
  const auto g = testing::small_planted(27, 800, 10, 0.2);
  const auto initial = core::run_louvain(g);
  const auto repaired = core::update_communities(g, initial.assignment, {});

  repaired.graph.validate();
  EXPECT_EQ(repaired.graph.num_edges(), g.num_edges());
  EXPECT_DOUBLE_EQ(repaired.graph.total_weight(), g.total_weight());

  std::vector<cid_t> canonical(initial.assignment);
  core::renumber_communities(canonical);
  EXPECT_EQ(repaired.assignment, canonical);
  EXPECT_EQ(repaired.num_communities, initial.num_communities);
  EXPECT_DOUBLE_EQ(repaired.modularity, initial.modularity);
}

TEST(Incremental, BatchTouchingEveryVertexStillBeatsFullRerun) {
  // Worst-case batch width: every vertex is an update endpoint (a ring of
  // new cross-community edges). Modularity-gain pruning still screens out
  // vertices with no profitable move, so the warm repair must pay far fewer
  // vertex evaluations than a from-scratch phase 1 on the updated graph,
  // which grinds down from singletons.
  const auto g = testing::small_planted(29, 1200, 12, 0.2);
  const auto initial = core::run_louvain(g);
  std::vector<core::EdgeUpdate> updates;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    updates.push_back({v, static_cast<vid_t>((v + 1) % g.num_vertices()), 2.0, false});
  }
  const auto repaired = core::update_communities(g, initial.assignment, updates);
  EXPECT_GT(repaired.modularity, 0.0);

  const auto updated = core::apply_edge_updates(g, updates);
  core::BspConfig cfg;
  const auto scratch = core::bsp_phase1(updated, cfg);
  std::uint64_t scratch_evaluated = 0;
  for (const auto& it : scratch.iterations) scratch_evaluated += it.active;
  // From scratch, the first sweep alone evaluates all n vertices; the warm
  // repair must come in strictly under that.
  EXPECT_GE(scratch_evaluated, g.num_vertices());
  EXPECT_LT(repaired.evaluated_vertices, scratch_evaluated);
}

TEST(Incremental, RepeatedRepairOfAnIdenticalPartitionIsIdempotent) {
  // Repairing the repair (with no further updates) must be bit-stable:
  // identical assignment vector, identical modularity — the property that
  // lets the query layer assert equal snapshots for repeated publishes.
  const auto g = testing::small_planted(31, 600, 8, 0.25);
  const auto initial = core::run_louvain(g);
  const auto first = core::update_communities(g, initial.assignment, {});
  const auto second = core::update_communities(g, first.assignment, {});
  EXPECT_EQ(second.assignment, first.assignment);
  EXPECT_EQ(second.num_communities, first.num_communities);
  EXPECT_DOUBLE_EQ(second.modularity, first.modularity);
  EXPECT_EQ(second.repair_iterations, first.repair_iterations);
}

TEST(Extensions, AllFlagsComposeInOnePipelineRun) {
  // refine + vertex_following + resolution together must produce a valid,
  // audited result.
  auto base = testing::small_planted(25, 600, 8, 0.2);
  graph::GraphBuilder b(base.num_vertices() + 20);
  for (vid_t v = 0; v < base.num_vertices(); ++v) {
    auto nbrs = base.neighbors(v);
    auto ws = base.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] >= v) b.add_edge(v, nbrs[i], ws[i]);
    }
  }
  for (vid_t p = 0; p < 20; ++p) b.add_edge(p * 7, base.num_vertices() + p);  // pendants
  const auto g = b.build();

  core::GalaConfig cfg;
  cfg.refine = true;
  cfg.vertex_following = true;
  cfg.bsp.resolution = 1.5;
  const auto r = core::run_louvain(g, cfg);
  EXPECT_NEAR(r.modularity, core::modularity(g, r.assignment, 1.5), 1e-9);
  EXPECT_TRUE(core::is_partition_connected(g, r.assignment));
  for (const cid_t c : r.assignment) EXPECT_LT(c, r.num_communities);
}

// ------------------------------------------------------------------ CLI ----
TEST(ArgParser, ParsesFlagsOptionsAndPositionals) {
  ArgParser args("prog", "test");
  args.add_flag("verbose", "v").add_option("count", "c", "5").add_positional("input", "file");
  const char* argv[] = {"prog", "--verbose", "file.txt", "--count", "9"};
  ASSERT_TRUE(args.parse(5, argv));
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("input"), "file.txt");
  EXPECT_EQ(args.get_int("count"), 9);
}

TEST(ArgParser, EqualsSyntaxAndDefaults) {
  ArgParser args("prog", "test");
  args.add_option("ratio", "r", "0.5");
  const char* argv[] = {"prog", "--ratio=0.75"};
  ASSERT_TRUE(args.parse(2, argv));
  EXPECT_DOUBLE_EQ(args.get_double("ratio"), 0.75);
  ArgParser defaults("prog", "test");
  defaults.add_option("ratio", "r", "0.5");
  const char* argv2[] = {"prog"};
  ASSERT_TRUE(defaults.parse(1, argv2));
  EXPECT_DOUBLE_EQ(defaults.get_double("ratio"), 0.5);
}

TEST(ArgParser, RejectsUnknownAndMalformed) {
  ArgParser args("prog", "test");
  args.add_option("count", "c", "1");
  const char* bad[] = {"prog", "--nope"};
  EXPECT_FALSE(args.parse(2, bad));
  EXPECT_FALSE(args.error().empty());

  ArgParser args2("prog", "test");
  args2.add_option("count", "c", "1");
  const char* missing_value[] = {"prog", "--count"};
  EXPECT_FALSE(args2.parse(2, missing_value));

  ArgParser args3("prog", "test");
  args3.add_option("count", "c", "1");
  const char* argv3[] = {"prog", "--count", "xyz"};
  ASSERT_TRUE(args3.parse(3, argv3));
  EXPECT_THROW(args3.get_int("count"), Error);
}

TEST(ArgParser, MissingRequiredPositionalFails) {
  ArgParser args("prog", "test");
  args.add_positional("input", "file");
  const char* argv[] = {"prog"};
  EXPECT_FALSE(args.parse(1, argv));
}

TEST(ArgParser, LaterValueWins) {
  ArgParser args("prog", "test");
  args.add_option("count", "c", "1");
  const char* argv[] = {"prog", "--count", "2", "--count", "3"};
  ASSERT_TRUE(args.parse(5, argv));
  EXPECT_EQ(args.get_int("count"), 3);
}

}  // namespace
}  // namespace gala
