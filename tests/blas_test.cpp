// gala::blas primitives and the linear-algebra engine: SpGEMM contraction
// parity against the historical edge-list builder, hash/sorted accumulator
// bit-identity, governor-forced degradation, pull/push direction
// equivalence, determinism, and the steady-state zero-allocation gate.
#include <gtest/gtest.h>

#include <vector>

#include "gala/blas/blas.hpp"
#include "gala/blas/spgemm.hpp"
#include "gala/core/aggregation.hpp"
#include "gala/core/blas_louvain.hpp"
#include "gala/core/bsp_louvain.hpp"
#include "gala/core/gala.hpp"
#include "gala/core/modularity.hpp"
#include "gala/exec/context.hpp"
#include "gala/governor/governor.hpp"
#include "gala/memtrace/memtrace.hpp"
#include "test_util.hpp"

namespace gala {
namespace {

using exec::ExecutionContext;

/// The pre-SpGEMM contraction, verbatim: emit each undirected fine edge once
/// from the u >= v side into the edge-list builder. The SpGEMM must
/// reproduce this graph bit-for-bit on exact-weight inputs.
graph::Graph legacy_contract(const graph::Graph& g, std::span<const cid_t> fine_to_coarse,
                             vid_t num_coarse) {
  graph::GraphBuilder builder(num_coarse);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const cid_t cv = fine_to_coarse[v];
    auto nbrs = g.neighbors(v);
    auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vid_t u = nbrs[i];
      if (u < v) continue;
      builder.add_edge(cv, fine_to_coarse[u], ws[i]);
    }
  }
  return builder.build();
}

void expect_same_graph(const graph::Graph& a, const graph::Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_adjacency(), b.num_adjacency());
  EXPECT_EQ(a.total_weight(), b.total_weight());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.max_out_degree(), b.max_out_degree());
  for (vid_t v = 0; v < a.num_vertices(); ++v) {
    EXPECT_EQ(a.degree(v), b.degree(v)) << "degree of " << v;
    EXPECT_EQ(a.self_loop(v), b.self_loop(v)) << "self-loop of " << v;
    const auto an = a.neighbors(v);
    const auto bn = b.neighbors(v);
    ASSERT_EQ(an.size(), bn.size()) << "row " << v;
    const auto aw = a.weights(v);
    const auto bw = b.weights(v);
    for (std::size_t i = 0; i < an.size(); ++i) {
      EXPECT_EQ(an[i], bn[i]) << "row " << v << " entry " << i;
      EXPECT_EQ(aw[i], bw[i]) << "row " << v << " entry " << i;
    }
  }
}

/// A dense community map with a mix of singletons, merged pairs, and one
/// large community — deterministic in n.
std::vector<cid_t> mixed_partition(vid_t n, vid_t num_coarse) {
  std::vector<cid_t> fc(n);
  for (vid_t v = 0; v < n; ++v) fc[v] = (v * 7 + 3) % num_coarse;
  return fc;
}

TEST(BlasSpgemm, ContractMatchesLegacyBuilderBitExact) {
  for (const auto& g :
       {testing::two_triangles(), testing::small_planted(5, 300, 6, 0.2)}) {
    const vid_t num_coarse = std::max<vid_t>(2, g.num_vertices() / 7);
    const auto fc = mixed_partition(g.num_vertices(), num_coarse);
    const graph::Graph reference = legacy_contract(g, fc, num_coarse);
    for (const blas::Accumulator acc : {blas::Accumulator::Hash, blas::Accumulator::Sorted}) {
      blas::Tuning tuning;
      tuning.accumulator = acc;
      blas::SpgemmStats stats;
      const graph::Graph coarse =
          blas::contract_csr(g, fc, num_coarse, nullptr, tuning, &stats);
      SCOPED_TRACE(blas::to_string(acc));
      expect_same_graph(reference, coarse);
      EXPECT_EQ(stats.accumulator, acc);
      EXPECT_FALSE(stats.governor_forced);
      EXPECT_EQ(stats.nnz, coarse.num_adjacency());
      EXPECT_GT(stats.flops, 0u);
    }
  }
}

TEST(BlasSpgemm, WorkspaceAndHeapScratchAgree) {
  const auto g = testing::small_planted(9, 250, 5, 0.25);
  const auto fc = mixed_partition(g.num_vertices(), 31);
  ExecutionContext ctx;
  const graph::Graph pooled = blas::contract_csr(g, fc, 31, &ctx.workspace());
  const graph::Graph heap = blas::contract_csr(g, fc, 31, nullptr);
  expect_same_graph(pooled, heap);
  EXPECT_EQ(ctx.workspace().stats().outstanding_bytes, 0u);
}

TEST(BlasSpgemm, ModularityInvariantUnderContraction) {
  const auto g = testing::small_planted(7, 280, 7, 0.2);
  core::BspConfig cfg;
  cfg.parallel = false;
  const auto phase1 = core::bsp_phase1(g, cfg);
  const auto agg = core::aggregate(g, phase1.community);
  // Q of the contracted graph under singleton assignment equals Q of the
  // fine graph under the phase-1 partition (the §2.2 invariant the
  // historical builder was pinned by).
  std::vector<cid_t> singletons(agg.coarse.num_vertices());
  for (vid_t v = 0; v < agg.coarse.num_vertices(); ++v) singletons[v] = v;
  EXPECT_NEAR(core::modularity(agg.coarse, singletons),
              core::modularity(g, phase1.community), 1e-12);
}

TEST(BlasSpgemm, GovernorRungTwoForcesSortedWithIdenticalOutput) {
  const auto g = testing::small_planted(13, 260, 6, 0.25);
  const auto fc = mixed_partition(g.num_vertices(), 29);
  const graph::Graph reference = blas::contract_csr(g, fc, 29, nullptr);

  memtrace::MemRegistry::global().reset();
  {
    governor::BudgetConfig cfg;
    cfg.total_bytes = 1000;
    governor::ScopedBudget scoped(cfg);
    governor::Governor::global().admit("test.pressure", 870, /*may_throw=*/false);
    ASSERT_TRUE(governor::Governor::global().force_sorted_accumulator());

    blas::SpgemmStats stats;
    const graph::Graph coarse =
        blas::contract_csr(g, fc, 29, nullptr, blas::Tuning{}, &stats);
    EXPECT_EQ(stats.accumulator, blas::Accumulator::Sorted);
    EXPECT_TRUE(stats.governor_forced);
    expect_same_graph(reference, coarse);
  }
  governor::Governor::global().uninstall();
  memtrace::MemRegistry::global().reset();
}

TEST(BlasEngine, MatchesBspTrajectoryOnPlantedGraph) {
  const auto g = testing::small_planted(5, 400, 8, 0.15);
  core::BspConfig cfg;
  cfg.parallel = false;
  const auto bsp = core::bsp_phase1(g, cfg);
  const auto blas_result = core::blas_phase1(g, cfg);
  ASSERT_EQ(bsp.community.size(), blas_result.community.size());
  EXPECT_EQ(bsp.community, blas_result.community);
  EXPECT_EQ(bsp.num_communities, blas_result.num_communities);
  EXPECT_NEAR(bsp.modularity, blas_result.modularity, 1e-12);
  EXPECT_EQ(bsp.iterations.size(), blas_result.iterations.size());
}

TEST(BlasEngine, PullAndPushDirectionsAgree) {
  const auto g = testing::small_planted(8, 350, 7, 0.2);
  core::BspConfig cfg;
  cfg.parallel = false;
  blas::Tuning pull;
  pull.pull_threshold = 0.0;  // density >= 0 always: pure pull
  blas::Tuning push;
  push.pull_threshold = 1.1;  // density can never reach it: pure push
  core::BlasPhase1Stats pull_stats;
  core::BlasPhase1Stats push_stats;
  const auto a = core::blas_phase1(g, cfg, pull, &pull_stats);
  const auto b = core::blas_phase1(g, cfg, push, &push_stats);
  EXPECT_EQ(a.community, b.community);
  EXPECT_EQ(a.modularity, b.modularity);
  EXPECT_EQ(pull_stats.push_iterations, 0);
  EXPECT_EQ(push_stats.pull_iterations, 0);
  EXPECT_EQ(pull_stats.gathered_rows, push_stats.gathered_rows);
}

TEST(BlasEngine, ParallelMatchesSequential) {
  const auto g = testing::small_planted(6, 320, 8, 0.2);
  core::BspConfig seq;
  seq.parallel = false;
  core::BspConfig par;
  par.parallel = true;
  const auto a = core::blas_phase1(g, seq);
  const auto b = core::blas_phase1(g, par);
  EXPECT_EQ(a.community, b.community);
  EXPECT_EQ(a.modularity, b.modularity);
}

TEST(BlasEngine, SteadyStateIterationsAllocateNothing) {
  const auto g = testing::small_planted(11, 500, 8, 0.3);
  for (const double threshold : {0.0, 1.1}) {  // pure pull, then pure push
    ExecutionContext ctx;
    core::BspConfig cfg;
    cfg.context = &ctx;
    cfg.parallel = false;
    cfg.pruning = core::PruningStrategy::Relaxed;
    blas::Tuning tuning;
    tuning.pull_threshold = threshold;
    const auto result = core::blas_phase1(g, cfg, tuning);
    SCOPED_TRACE(threshold);
    ASSERT_GE(result.iterations.size(), 2u) << "graph converged too fast to test steady state";
    EXPECT_GT(result.iterations[0].ws_allocs, 0u);
    for (std::size_t i = 1; i < result.iterations.size(); ++i) {
      EXPECT_EQ(result.iterations[i].ws_allocs, 0u) << "iteration " << i << " hit the heap";
    }
    EXPECT_GT(result.workspace.reuse_rate(), 0.5);
  }
}

TEST(BlasEngine, FullPipelineRunsAndIsDeterministic) {
  const auto g = testing::small_planted(4, 380, 8, 0.2);
  core::GalaConfig cfg;
  cfg.backend = core::Backend::Blas;
  cfg.bsp.parallel = false;
  const auto a = core::run_louvain(g, cfg);
  const auto b = core::run_louvain(g, cfg);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.modularity, b.modularity);
  EXPECT_GT(a.modularity, 0.4);
  EXPECT_GE(a.levels.size(), 1u);

  core::GalaConfig bsp_cfg = cfg;
  bsp_cfg.backend = core::Backend::Bsp;
  const auto c = core::run_louvain(g, bsp_cfg);
  EXPECT_EQ(a.assignment, c.assignment);
  EXPECT_NEAR(a.modularity, c.modularity, 1e-12);
}

}  // namespace
}  // namespace gala
