// gala::query unit battery: snapshot construction, epoch ring semantics,
// RCU-style deferred reclamation, the batched executor, and the memtrace /
// governor integration seams.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "gala/core/gala.hpp"
#include "gala/core/incremental.hpp"
#include "gala/core/modularity.hpp"
#include "gala/governor/governor.hpp"
#include "gala/memtrace/memtrace.hpp"
#include "gala/query/executor.hpp"
#include "gala/query/store.hpp"
#include "test_util.hpp"

namespace gala {
namespace {

using query::CommunityStore;
using query::QueryExecutor;
using query::SnapshotRef;
using query::SnapshotSource;
using query::StoreOptions;

StoreOptions plain_options(std::size_t max_retained = 8) {
  StoreOptions o;
  o.max_retained = max_retained;
  o.governor_client = false;  // most tests want no global-governor coupling
  return o;
}

// ------------------------------------------------------------ snapshot ----
TEST(QuerySnapshot, TwoTrianglesDerivedStateIsExact) {
  const auto g = testing::two_triangles();
  const std::vector<cid_t> assign = {0, 0, 0, 1, 1, 1};
  CommunityStore store(plain_options());
  EXPECT_EQ(store.publish(g, assign), 1u);

  SnapshotRef snap = store.current();
  ASSERT_TRUE(snap);
  EXPECT_EQ(snap->epoch(), 1u);
  EXPECT_EQ(snap->source(), SnapshotSource::Direct);
  EXPECT_EQ(snap->num_vertices(), 6u);
  EXPECT_EQ(snap->num_communities(), 2u);
  EXPECT_EQ(snap->size(0), 3u);
  EXPECT_EQ(snap->size(1), 3u);
  // Each triangle vertex has degree 2 (intra) + bridge endpoints add 1.
  EXPECT_DOUBLE_EQ(snap->weight(0), 7.0);
  EXPECT_DOUBLE_EQ(snap->weight(1), 7.0);
  const std::vector<vid_t> left(snap->members(0).begin(), snap->members(0).end());
  const std::vector<vid_t> right(snap->members(1).begin(), snap->members(1).end());
  EXPECT_EQ(left, (std::vector<vid_t>{0, 1, 2}));
  EXPECT_EQ(right, (std::vector<vid_t>{3, 4, 5}));
  EXPECT_DOUBLE_EQ(snap->modularity(), core::modularity(g, assign, 1.0));
  EXPECT_DOUBLE_EQ(snap->modularity_of(0) + snap->modularity_of(1), snap->modularity());
  EXPECT_EQ(snap->validate(), "");
  EXPECT_GT(snap->bytes(), 0u);
}

TEST(QuerySnapshot, LabelPermutationsCanonicalise) {
  const auto g = testing::two_triangles();
  CommunityStore store(plain_options());
  store.publish(g, std::vector<cid_t>{0, 0, 0, 1, 1, 1});
  store.publish(g, std::vector<cid_t>{9, 9, 9, 4, 4, 4});  // same partition, silly labels
  SnapshotRef a = store.at(1);
  SnapshotRef b = store.at(2);
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  EXPECT_TRUE(a->same_partition(*b));
  EXPECT_EQ(std::vector<cid_t>(b->assignment().begin(), b->assignment().end()),
            (std::vector<cid_t>{0, 0, 0, 1, 1, 1}));
}

TEST(QuerySnapshot, PublishedEnginePartitionMatchesEngineModularity) {
  const auto g = testing::small_planted(21);
  const auto result = core::run_louvain(g);
  CommunityStore store(plain_options());
  store.publish(g, result);
  SnapshotRef snap = store.current();
  ASSERT_TRUE(snap);
  EXPECT_EQ(snap->source(), SnapshotSource::FullRun);
  EXPECT_EQ(snap->num_communities(), result.num_communities);
  EXPECT_DOUBLE_EQ(snap->modularity(), core::modularity(g, result.assignment, 1.0));
  EXPECT_EQ(snap->validate(), "");
}

// ---------------------------------------------------------- epoch ring ----
TEST(QueryStore, RetentionWindowEvictsOldest) {
  const auto g = testing::two_triangles();
  CommunityStore store(plain_options(/*max_retained=*/4));
  EXPECT_FALSE(store.current());
  EXPECT_EQ(store.latest_epoch(), 0u);
  for (int i = 0; i < 12; ++i) store.publish(g, std::vector<cid_t>{0, 0, 0, 1, 1, 1});
  EXPECT_EQ(store.latest_epoch(), 12u);
  EXPECT_EQ(store.oldest_epoch(), 9u);
  EXPECT_EQ(store.retained(), 4u);
  EXPECT_EQ(store.published(), 12u);
  EXPECT_EQ(store.evicted(), 8u);
  EXPECT_FALSE(store.at(8));
  EXPECT_TRUE(store.at(9));
  EXPECT_TRUE(store.at(12));
  EXPECT_FALSE(store.at(13));
  EXPECT_FALSE(store.at(99));
  // No readers were pinning: every evicted snapshot is already reclaimed.
  EXPECT_EQ(store.live_snapshots(), 4u);
  EXPECT_EQ(store.reclaimed(), 8u);
}

TEST(QueryStore, PinnedSnapshotSurvivesEvictionUntilReleased) {
  const auto g = testing::two_triangles();
  CommunityStore store(plain_options(/*max_retained=*/2));
  store.publish(g, std::vector<cid_t>{0, 0, 0, 1, 1, 1});
  SnapshotRef pinned = store.at(1);
  ASSERT_TRUE(pinned);
  const std::uint64_t one_snapshot = pinned->bytes();

  for (int i = 0; i < 6; ++i) store.publish(g, std::vector<cid_t>{0, 1, 2, 3, 4, 5});
  EXPECT_FALSE(store.at(1));  // unreachable for new readers...
  EXPECT_EQ(pinned->epoch(), 1u);  // ...but the held ref still reads cleanly
  EXPECT_EQ(pinned->validate(), "");
  EXPECT_EQ(pinned->size(0), 3u);
  EXPECT_EQ(store.live_snapshots(), 3u);  // 2 retained + 1 pinned retiree
  EXPECT_EQ(store.resident_bytes(), store.at(6)->bytes() + store.at(7)->bytes() + one_snapshot);

  pinned.release();
  EXPECT_EQ(store.reclaim(), one_snapshot);
  EXPECT_EQ(store.live_snapshots(), 2u);
}

TEST(QueryStore, SetMaxRetainedClampsAndApplies) {
  const auto g = testing::two_triangles();
  CommunityStore store(plain_options(/*max_retained=*/8));
  store.set_max_retained(3);
  for (int i = 0; i < 10; ++i) store.publish(g, std::vector<cid_t>{0, 0, 0, 1, 1, 1});
  EXPECT_EQ(store.retained(), 3u);
  store.set_max_retained(0);  // clamps to 1
  store.publish(g, std::vector<cid_t>{0, 0, 0, 1, 1, 1});
  EXPECT_EQ(store.retained(), 1u);
  store.set_max_retained(64);  // clamps to the ring capacity (8)
  EXPECT_EQ(store.max_retained(), 8u);
}

// ------------------------------------------------------------ memtrace ----
TEST(QueryStore, ResidencyGaugeTracksLiveSnapshots) {
  memtrace::MemRegistry::global().reset();
  const auto g = testing::small_planted(23);
  {
    CommunityStore store(plain_options(/*max_retained=*/2));
    const auto result = core::run_louvain(g);
    for (int i = 0; i < 5; ++i) store.publish(g, result);
    EXPECT_EQ(memtrace::MemRegistry::global().live_subsystem("query"), store.resident_bytes());
    EXPECT_GT(store.resident_bytes(), 0u);
  }
  // Store destruction returns the gauge to zero — nothing leaks.
  EXPECT_EQ(memtrace::MemRegistry::global().live_subsystem("query"), 0u);
}

// ------------------------------------------------------------ governor ----
TEST(QueryStore, GovernorPressureCollapsesRetention) {
  memtrace::MemRegistry::global().reset();
  const auto g = testing::small_planted(25, 2000, 10, 0.2);
  const auto result = core::run_louvain(g);
  StoreOptions opts;
  opts.max_retained = 8;
  CommunityStore store(opts);  // governor client on
  governor::BudgetConfig cfg;
  cfg.total_bytes = 3 * (2000 * 3 * 4);  // ~3 snapshots of headroom
  governor::ScopedBudget scoped(cfg);
  for (int i = 0; i < 8; ++i) store.publish(g, result);
  EXPECT_GE(governor::Governor::global().rung(), governor::Rung::ReclaimSlabs);
  // Under ladder pressure the store sheds history down to the newest epoch.
  EXPECT_EQ(store.retained(), 1u);
  EXPECT_GT(store.evicted(), 0u);
  EXPECT_TRUE(store.current());
}

// ------------------------------------------------------------ executor ----
TEST(QueryExecutor, BatchedAnswersMatchBruteForce) {
  const auto g = testing::small_planted(27, 600, 12, 0.2);
  const auto result = core::run_louvain(g);
  CommunityStore store(plain_options());
  store.publish(g, result);
  QueryExecutor exec(store);
  SnapshotRef snap = store.current();
  ASSERT_TRUE(snap);
  const auto raw = snap->assignment();

  std::vector<vid_t> batch(g.num_vertices());
  std::iota(batch.begin(), batch.end(), 0);
  std::reverse(batch.begin(), batch.end());
  const auto communities = exec.community_of(*snap, batch);
  const auto sizes = exec.community_size_of(*snap, batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(communities[i], raw[batch[i]]);
    vid_t brute = 0;
    for (cid_t c : raw) brute += (c == raw[batch[i]]) ? 1 : 0;
    ASSERT_EQ(sizes[i], brute) << "at " << i;
  }

  const auto top = exec.top_k(*snap, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_GE(top[0].size, top[1].size);
  EXPECT_GE(top[1].size, top[2].size);
  for (const auto& t : top) {
    EXPECT_EQ(t.size, snap->size(t.community));
    EXPECT_DOUBLE_EQ(t.weight, snap->weight(t.community));
  }
  EXPECT_EQ(exec.top_k(*snap, 1u << 20).size(), snap->num_communities());

  const auto mem = exec.members(*snap, top[0].community);
  EXPECT_EQ(mem.size(), top[0].size);
  EXPECT_TRUE(std::is_sorted(mem.begin(), mem.end()));
  for (vid_t v : mem) EXPECT_EQ(raw[v], top[0].community);

  EXPECT_EQ(exec.community_of(5), raw[5]);
}

TEST(QueryExecutor, PointLookupThrowsOnEmptyStoreAndBadVertex) {
  CommunityStore store(plain_options());
  QueryExecutor exec(store);
  EXPECT_THROW(exec.community_of(0), Error);
  store.publish(testing::two_triangles(), std::vector<cid_t>{0, 0, 0, 1, 1, 1});
  EXPECT_THROW(exec.community_of(6), Error);
  SnapshotRef snap = store.current();
  EXPECT_THROW(exec.members(*snap, 2), Error);
}

TEST(QueryExecutor, DiffIsLabelInvariantAndFlagsChangedMemberships) {
  const auto g = testing::two_triangles();
  CommunityStore store(plain_options());
  store.publish(g, std::vector<cid_t>{0, 0, 0, 1, 1, 1});  // epoch 1
  store.publish(g, std::vector<cid_t>{0, 0, 1, 1, 1, 1});  // epoch 2: v2 switched sides
  store.publish(g, std::vector<cid_t>{7, 7, 3, 3, 3, 3});  // epoch 3: relabel of epoch 2

  QueryExecutor exec(store);
  const auto same = exec.diff(2, 3);
  EXPECT_TRUE(same.moved.empty()) << "relabelling is not movement";
  EXPECT_EQ(same.from_epoch, 2u);
  EXPECT_EQ(same.to_epoch, 3u);

  // v2's switch changed the membership set of both communities, so every
  // vertex's members()/size() answer went stale — all six are flagged.
  const auto moved = exec.diff(1, 2);
  EXPECT_EQ(moved.moved, (std::vector<vid_t>{0, 1, 2, 3, 4, 5}));

  const auto self_diff = exec.diff(1, 1);
  EXPECT_TRUE(self_diff.moved.empty());

  EXPECT_THROW(exec.diff(0, 1), Error);
  store.publish(testing::small_planted(29), core::run_louvain(testing::small_planted(29)));
  EXPECT_THROW(exec.diff(1, 4), Error);  // different vertex sets
}

// ----------------------------------------------------------- writers ----
TEST(QueryStore, IncrementalPublishRidesTheUpdatedGraph) {
  const auto g = testing::small_planted(31);
  const auto base = core::run_louvain(g);
  CommunityStore store(plain_options());
  store.publish(g, base);

  std::vector<core::EdgeUpdate> updates;
  updates.push_back({0, 1, 2.5, false});
  updates.push_back({2, 3, 1.5, false});
  const auto repaired = core::update_communities(g, base.assignment, updates);
  store.publish(repaired);

  SnapshotRef snap = store.at(2);
  ASSERT_TRUE(snap);
  EXPECT_EQ(snap->source(), SnapshotSource::IncrementalUpdate);
  EXPECT_EQ(snap->num_communities(), repaired.num_communities);
  EXPECT_DOUBLE_EQ(snap->modularity(),
                   core::modularity(repaired.graph, repaired.assignment, 1.0));
  EXPECT_EQ(snap->validate(), "");
}

TEST(QueryStore, EmptyUpdateBatchPublishesAnEqualEpoch) {
  const auto g = testing::small_planted(33);
  const auto base = core::run_louvain(g);
  CommunityStore store(plain_options());
  store.publish(g, base);
  const auto repaired = core::update_communities(g, base.assignment, {});
  store.publish(repaired);

  SnapshotRef before = store.at(1);
  SnapshotRef after = store.at(2);
  ASSERT_TRUE(before);
  ASSERT_TRUE(after);
  EXPECT_TRUE(before->same_partition(*after));
  QueryExecutor exec(store);
  EXPECT_TRUE(exec.diff(1, 2).moved.empty());
}

}  // namespace
}  // namespace gala
