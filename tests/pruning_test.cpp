// Pruning strategies (§3): the MG zero-false-negative guarantee (Theorem 6)
// as an executable property, the relative behaviour of SM/RM/PM, and the
// compute_active plumbing.
#include "gala/core/pruning.hpp"

#include <gtest/gtest.h>

#include "gala/core/bsp_louvain.hpp"
#include "gala/metrics/confusion.hpp"
#include "test_util.hpp"

namespace gala::core {
namespace {

metrics::ConfusionSummary run_confusion(const graph::Graph& g, PruningStrategy strategy,
                                        std::uint64_t seed = 7) {
  BspConfig cfg;
  cfg.pruning = strategy;
  cfg.track_confusion = true;
  cfg.seed = seed;
  const auto result = bsp_phase1(g, cfg);
  return metrics::summarize_confusion(result.iterations);
}

class ZeroFalseNegatives
    : public ::testing::TestWithParam<std::tuple<PruningStrategy, std::uint64_t>> {};

TEST_P(ZeroFalseNegatives, TheoremHoldsOnRandomGraphs) {
  // Theorem 6 (MG) and Lemma 3 (SM): across every iteration of phase 1, no
  // vertex classified inactive would have moved.
  const auto [strategy, seed] = GetParam();
  const auto g = testing::small_planted(seed, 600, 12, 0.25);
  const auto summary = run_confusion(g, strategy, seed);
  EXPECT_EQ(summary.fn, 0u);
  EXPECT_GT(summary.tn, 0u) << "strategy should prune something";
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndSeeds, ZeroFalseNegatives,
    ::testing::Combine(::testing::Values(PruningStrategy::Strict,
                                         PruningStrategy::ModularityGain),
                       ::testing::Values(1, 2, 3, 4, 5)));

TEST(Pruning, MgPrunesMoreThanStrict) {
  const auto g = testing::small_planted(11, 800, 16, 0.2);
  const auto sm = run_confusion(g, PruningStrategy::Strict);
  const auto mg = run_confusion(g, PruningStrategy::ModularityGain);
  // Lower FPR == more of the truly-unmoved vertices pruned.
  EXPECT_LT(mg.fpr(), sm.fpr());
}

TEST(Pruning, RelaxedCanMissMoves) {
  // RM admits false negatives in principle; across several seeds it should
  // never *increase* quality beyond MG and usually shows fn > 0 somewhere.
  std::uint64_t total_fn = 0;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull}) {
    const auto g = testing::small_planted(seed, 500, 10, 0.3);
    total_fn += run_confusion(g, PruningStrategy::Relaxed, seed).fn;
  }
  EXPECT_GT(total_fn, 0u) << "expected at least one RM false negative across seeds";
}

TEST(Pruning, MgPlusRelaxedPrunesAtLeastAsMuchAsEither) {
  const auto g = testing::small_planted(13, 600, 12, 0.25);
  const auto mg = run_confusion(g, PruningStrategy::ModularityGain);
  const auto combo = run_confusion(g, PruningStrategy::MgPlusRelaxed);
  // The union of inactive sets can only shrink the active set.
  EXPECT_LE(combo.fp + combo.tp, mg.fp + mg.tp);
}

TEST(Pruning, ProbabilisticPrunesRoughlyAlphaOfUnmoved) {
  const auto g = testing::small_planted(17, 2000, 20, 0.2);
  BspConfig cfg;
  cfg.pruning = PruningStrategy::Probabilistic;
  cfg.pm_alpha = 0.25;
  cfg.track_confusion = true;
  const auto result = bsp_phase1(g, cfg);
  const auto summary = metrics::summarize_confusion(result.iterations);
  // FPR should approach 1 - alpha (each unmoved vertex survives pruning
  // with probability 1 - alpha).
  EXPECT_NEAR(summary.fpr(), 0.75, 0.1);
}

TEST(Pruning, MgPredicateMatchesEquationSix) {
  // Hand-built context: one vertex, all terms chosen to sit exactly on the
  // boundary of Equation 6.
  graph::GraphBuilder b(2);
  b.add_edge(0, 1, 4.0);
  const auto g = b.build();
  std::vector<cid_t> comm = {0, 0};
  std::vector<wt_t> weight = {4.0, 4.0};  // both vertices fully internal
  std::vector<wt_t> total = {8.0, 0.0};
  std::vector<std::uint8_t> moved = {0, 0}, changed = {0, 0};
  PruningContext ctx{&g, comm, weight, total, /*min_comm_total=*/8.0, g.two_m(),
                     moved, changed, /*iteration=*/1};
  // lhs = 2*4 - 4 + (8-8)*4/8 = 4 >= 0 -> inactive.
  EXPECT_TRUE(mg_is_inactive(ctx, 0));
  // Shrink the vertex's community weight: 2*1 - 4 = -2 < 0 -> active.
  weight[0] = 1.0;
  EXPECT_FALSE(mg_is_inactive(ctx, 0));
}

TEST(Pruning, HistoryStrategiesActivateEverythingOnIterationZero) {
  const auto g = testing::two_triangles();
  std::vector<cid_t> comm = {0, 1, 2, 3, 4, 5};
  std::vector<wt_t> weight(6, 0), total(6, 2);
  std::vector<std::uint8_t> moved(6, 0), changed(6, 0);
  PruningContext ctx{&g, comm, weight, total, 2.0, g.two_m(), moved, changed, 0};
  Xoshiro256 rng(1);
  std::vector<std::uint8_t> active(6, 0);
  for (const auto strategy :
       {PruningStrategy::Strict, PruningStrategy::Relaxed, PruningStrategy::Probabilistic}) {
    compute_active(strategy, ctx, 0.25, rng, active);
    for (const auto a : active) EXPECT_EQ(a, 1) << to_string(strategy);
  }
}

TEST(Pruning, ComputeActiveParallelMatchesSerial) {
  const auto g = testing::small_planted(19, 1000, 10, 0.2);
  // Build a plausible mid-run context from a short engine run.
  BspConfig cfg;
  cfg.max_iterations = 3;
  const auto result = bsp_phase1(g, cfg);
  std::vector<cid_t> comm = result.community;
  std::vector<wt_t> total(g.num_vertices(), 0);
  std::vector<wt_t> weight(g.num_vertices(), 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) total[comm[v]] += g.degree(v);
  std::vector<std::uint8_t> moved(g.num_vertices(), 0), changed(g.num_vertices(), 0);
  for (vid_t v = 0; v < g.num_vertices(); v += 3) moved[v] = 1;
  for (vid_t v = 0; v < g.num_vertices(); v += 5) changed[v % 17] = 1;
  wt_t min_total = 1e300;
  for (vid_t c = 0; c < g.num_vertices(); ++c) {
    if (total[c] > 0) min_total = std::min(min_total, total[c]);
  }
  const PruningContext ctx{&g, comm, weight, total, min_total, g.two_m(), moved, changed, 2};

  for (const auto strategy :
       {PruningStrategy::Strict, PruningStrategy::Relaxed, PruningStrategy::Probabilistic,
        PruningStrategy::ModularityGain, PruningStrategy::MgPlusRelaxed}) {
    std::vector<std::uint8_t> serial(g.num_vertices()), parallel(g.num_vertices());
    Xoshiro256 r1(42), r2(42);
    compute_active(strategy, ctx, 0.25, r1, serial, nullptr);
    compute_active(strategy, ctx, 0.25, r2, parallel, &ThreadPool::global());
    EXPECT_EQ(serial, parallel) << to_string(strategy);
  }
}

TEST(Pruning, StrategyNames) {
  EXPECT_EQ(to_string(PruningStrategy::None), "none");
  EXPECT_EQ(to_string(PruningStrategy::Strict), "SM");
  EXPECT_EQ(to_string(PruningStrategy::Relaxed), "RM");
  EXPECT_EQ(to_string(PruningStrategy::Probabilistic), "PM");
  EXPECT_EQ(to_string(PruningStrategy::ModularityGain), "MG");
  EXPECT_EQ(to_string(PruningStrategy::MgPlusRelaxed), "MG+RM");
}

TEST(Pruning, MgAndStrictPreserveTheExactTrajectory) {
  // Zero false negatives implies the pruned run takes the same moves as the
  // unpruned run — communities must be identical, not just similar.
  for (const std::uint64_t seed : {2ull, 4ull, 8ull}) {
    const auto g = testing::small_planted(seed, 400, 8, 0.3);
    BspConfig none_cfg;
    none_cfg.pruning = PruningStrategy::None;
    const auto baseline = bsp_phase1(g, none_cfg);
    for (const auto strategy : {PruningStrategy::ModularityGain, PruningStrategy::Strict}) {
      BspConfig cfg;
      cfg.pruning = strategy;
      const auto pruned = bsp_phase1(g, cfg);
      EXPECT_EQ(pruned.community, baseline.community) << to_string(strategy) << " seed " << seed;
      EXPECT_DOUBLE_EQ(pruned.modularity, baseline.modularity);
    }
  }
}

}  // namespace
}  // namespace gala::core
