// End-to-end tests of the `gala` CLI binary: real subprocess invocations
// exercising detect/stats/generate/convert and their error paths. The
// binary path is injected by CMake as GALA_CLI_PATH.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "gala/common/json.hpp"  // header-only; used to parse emitted telemetry

namespace {

namespace fs = std::filesystem;

class CliE2e : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "gala_cli_e2e";
    fs::create_directories(dir_);
  }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  /// Runs the CLI with `args`, capturing stdout+stderr; returns exit code.
  int run(const std::string& args, std::string* output = nullptr) const {
    const std::string out_file = path("last_output.txt");
    const std::string cmd = std::string(GALA_CLI_PATH) + " " + args + " > " + out_file + " 2>&1";
    const int status = std::system(cmd.c_str());
    if (output != nullptr) {
      std::ifstream in(out_file);
      std::ostringstream ss;
      ss << in.rdbuf();
      *output = ss.str();
    }
    return WEXITSTATUS(status);
  }

  fs::path dir_;
};

TEST_F(CliE2e, GenerateDetectPipeline) {
  std::string out;
  ASSERT_EQ(run("generate planted --vertices 400 --communities 4 --mixing 0.1 --out " +
                    path("g.txt") + " --truth " + path("truth.txt"),
                &out),
            0)
      << out;
  EXPECT_TRUE(fs::exists(path("g.txt")));
  EXPECT_TRUE(fs::exists(path("truth.txt")));

  ASSERT_EQ(run("detect " + path("g.txt") + " --output " + path("comm.txt") + " --connected",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("modularity"), std::string::npos);
  EXPECT_NE(out.find("all communities connected: yes"), std::string::npos);

  // The community file covers every vertex.
  std::ifstream comm(path("comm.txt"));
  int lines = 0;
  std::string line;
  while (std::getline(comm, line)) ++lines;
  EXPECT_EQ(lines, 400);
}

TEST_F(CliE2e, DetectWithStandinAndJsonReport) {
  std::string out;
  ASSERT_EQ(run("detect standin:HW:0.05 --refine --json " + path("run.json"), &out), 0) << out;
  std::ifstream json(path("run.json"));
  std::ostringstream ss;
  ss << json.rdbuf();
  EXPECT_NE(ss.str().find("\"refine\":true"), std::string::npos);
}

TEST_F(CliE2e, DistributedDetect) {
  std::string out;
  ASSERT_EQ(run("detect standin:OR:0.05 --gpus 4", &out), 0) << out;
  EXPECT_NE(out.find("distributed phase 1 on 4 devices"), std::string::npos);
}

TEST_F(CliE2e, LpaAlgorithm) {
  std::string out;
  ASSERT_EQ(run("detect standin:LJ:0.05 --algorithm lpa", &out), 0) << out;
  EXPECT_NE(out.find("label propagation"), std::string::npos);
}

TEST_F(CliE2e, StatsCommand) {
  std::string out;
  ASSERT_EQ(run("stats standin:TW:0.05", &out), 0) << out;
  EXPECT_NE(out.find("connected components"), std::string::npos);
  EXPECT_NE(out.find("degree bucket"), std::string::npos);
}

TEST_F(CliE2e, ConvertRoundTripAcrossFormats) {
  std::string out;
  ASSERT_EQ(run("generate ring --cliques 6 --clique-size 4 --out " + path("ring.txt"), &out), 0);
  ASSERT_EQ(run("convert " + path("ring.txt") + " " + path("ring.bin"), &out), 0) << out;
  ASSERT_EQ(run("convert " + path("ring.bin") + " " + path("ring.graph"), &out), 0) << out;
  ASSERT_EQ(run("detect " + path("ring.graph"), &out), 0) << out;
  EXPECT_NE(out.find("24 communities") == std::string::npos &&
                    out.find("6 communities") == std::string::npos,
            true)
      << out;  // either granularity is fine; detection must succeed
}

TEST_F(CliE2e, CompareCommand) {
  std::string out;
  ASSERT_EQ(run("generate planted --vertices 200 --communities 2 --mixing 0.05 --out " +
                    path("cmp.txt") + " --truth " + path("cmp_truth.txt"),
                &out),
            0);
  ASSERT_EQ(run("detect " + path("cmp.txt") + " --output " + path("cmp_comm.txt"), &out), 0);
  ASSERT_EQ(run("compare " + path("cmp_comm.txt") + " " + path("cmp_truth.txt"), &out), 0) << out;
  EXPECT_NE(out.find("NMI:"), std::string::npos);
  EXPECT_NE(out.find("ARI:"), std::string::npos);
}

TEST_F(CliE2e, DetectEmitsTraceAndMetrics) {
  std::string out;
  ASSERT_EQ(run("detect standin:HW:0.05 --trace-out " + path("run.trace.json") +
                    " --metrics-out " + path("run.metrics.json"),
                &out),
            0)
      << out;
  EXPECT_NE(out.find("wrote trace to"), std::string::npos);

  const auto slurp = [this](const std::string& name) {
    std::ifstream in(path(name));
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };

  // The trace is valid Chrome-trace JSON containing the pipeline phases.
  const gala::JsonValue trace = gala::parse_json(slurp("run.trace.json"));
  const gala::JsonValue& events = trace.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_FALSE(events.array.empty());
  std::set<std::string> names;
  std::size_t counter_events = 0;
  for (const auto& e : events.array) {
    names.insert(e.at("name").string);
    // Spans ("X") plus the memtrace residency counter track ("C").
    const std::string& ph = e.at("ph").string;
    EXPECT_TRUE(ph == "X" || ph == "C") << ph;
    if (ph == "C") {
      EXPECT_EQ(e.at("name").string, "memory");
      ++counter_events;
    }
  }
  for (const char* expected :
       {"load-graph", "phase1", "iteration", "decide", "weight-update", "pruning", "level"}) {
    EXPECT_TRUE(names.count(expected)) << "trace missing phase: " << expected;
  }
  EXPECT_GT(counter_events, 0u) << "trace missing the memory counter track";

  // The metrics document carries the aggregated spans and the registry.
  const gala::JsonValue metrics = gala::parse_json(slurp("run.metrics.json"));
  EXPECT_NE(metrics.at("spans").find("phase1/decide"), nullptr);
  EXPECT_NE(metrics.at("spans").find("pipeline/phase1"), nullptr);
  EXPECT_GT(metrics.at("counters").at("gpusim.launches").number, 0);
  EXPECT_GT(metrics.at("counters").at("phase1.iterations").number, 0);
  EXPECT_NE(metrics.at("histograms").find("gpusim.blocks_per_launch"), nullptr);
}

TEST_F(CliE2e, DetectEmitsKernelProfile) {
  std::string out;
  ASSERT_EQ(run("detect standin:HW:0.05 --profile-out " + path("run.profile.json"), &out), 0)
      << out;
  EXPECT_NE(out.find("wrote kernel profile to"), std::string::npos);

  std::ifstream in(path("run.profile.json"));
  std::ostringstream ss;
  ss << in.rdbuf();
  const gala::JsonValue profile = gala::parse_json(ss.str());
  EXPECT_EQ(profile.at("profile_schema").number, 1);
  EXPECT_GT(profile.at("ceilings").at("dram_gbps").number, 0);

  const gala::JsonValue& kernels = profile.at("kernels");
  ASSERT_TRUE(kernels.is_array());
  ASSERT_FALSE(kernels.array.empty());
  for (const auto& k : kernels.array) {
    EXPECT_GT(k.at("launches").number, 0);
    const double coalescing = k.at("coalescing_efficiency").number;
    EXPECT_GE(coalescing, 0.0);
    EXPECT_LE(coalescing, 1.0);
    EXPECT_GE(k.at("bank_conflict_factor").number, 1.0);
    EXPECT_NE(k.find("roofline"), nullptr);
  }
}

TEST_F(CliE2e, DetectEmitsFlightRecorderDump) {
  std::string out;
  ASSERT_EQ(run("detect standin:HW:0.05 --flight-out " + path("run.flight.json") +
                    " --flight-depth 256",
                &out),
            0)
      << out;
  EXPECT_NE(out.find("wrote flight recorder dump to"), std::string::npos);

  std::ifstream in(path("run.flight.json"));
  std::ostringstream ss;
  ss << in.rdbuf();
  const gala::JsonValue doc = gala::parse_json(ss.str());
  EXPECT_EQ(doc.at("flight_schema").number, 1);
  EXPECT_EQ(doc.at("reason").string, "end-of-run");
  EXPECT_EQ(doc.at("depth").number, 256);
  const auto& events = doc.at("events").array;
  ASSERT_FALSE(events.empty());
  double prev_seq = -1;
  std::set<std::string> kinds;
  for (const auto& e : events) {
    EXPECT_GT(e.at("seq").number, prev_seq);  // the global clock is monotonic
    prev_seq = e.at("seq").number;
    kinds.insert(e.at("kind").string);
  }
  EXPECT_TRUE(kinds.count("level-begin"));
  EXPECT_TRUE(kinds.count("iter-begin"));
  EXPECT_TRUE(kinds.count("iter-end"));
}

TEST_F(CliE2e, DetectEmitsHealthReport) {
  std::string out;
  ASSERT_EQ(run("detect standin:HW:0.05 --health-out " + path("run.health.json"), &out), 0)
      << out;
  EXPECT_NE(out.find("wrote health report to"), std::string::npos);

  std::ifstream in(path("run.health.json"));
  std::ostringstream ss;
  ss << in.rdbuf();
  const gala::JsonValue doc = gala::parse_json(ss.str());
  EXPECT_EQ(doc.at("health_schema").number, 1);
  ASSERT_FALSE(doc.at("levels").array.empty());
  EXPECT_GT(doc.at("summary").at("total_iterations").number, 0);
  const auto& lv = doc.at("levels").array[0];
  EXPECT_GT(lv.at("vertices").number, 0);
  EXPECT_EQ(lv.at("series").at("modularity").array.size(),
            static_cast<std::size_t>(lv.at("iterations").number));
}

TEST_F(CliE2e, DetectEmitsMemReport) {
  std::string out;
  ASSERT_EQ(run("detect standin:HW:0.05 --mem-out " + path("run.mem.json"), &out), 0) << out;
  EXPECT_NE(out.find("wrote memory report to"), std::string::npos);

  std::ifstream in(path("run.mem.json"));
  std::ostringstream ss;
  ss << in.rdbuf();
  const gala::JsonValue doc = gala::parse_json(ss.str());
  EXPECT_EQ(doc.at("mem_schema").number, 1);
  ASSERT_FALSE(doc.at("subsystems").array.empty());
  std::set<std::string> names;
  for (const auto& s : doc.at("subsystems").array) names.insert(s.at("name").string);
  EXPECT_TRUE(names.count("graph"));  // CSR residency is always tracked
  EXPECT_GT(doc.at("totals").at("peak_total_bytes").number, 0);
  EXPECT_TRUE(doc.at("leak_check").at("clean").boolean);
  EXPECT_FALSE(doc.at("timeline").array.empty());
  const auto& first = doc.at("timeline").array[0];
  double sum = 0;
  for (const auto& [name, bytes] : first.at("subsystems").object) sum += bytes.number;
  EXPECT_EQ(sum, first.at("total").number);
}

TEST_F(CliE2e, UnwritableOutputPathsFailFastWithFileAndReason) {
  // Every output flag probes its path up front (one shared
  // probe_output_path table in the CLI): the run must fail before any work
  // happens, naming the file and the OS reason.
  for (const char* flag : {"--output", "--json", "--trace-out", "--metrics-out", "--profile-out",
                           "--flight-out", "--health-out", "--mem-out", "--governor-out"}) {
    std::string out;
    EXPECT_NE(run(std::string("detect standin:HW:0.05 ") + flag +
                      " /nonexistent-dir/out.json",
                  &out),
              0)
        << flag;
    EXPECT_NE(out.find("/nonexistent-dir/out.json"), std::string::npos) << out;
    EXPECT_NE(out.find("No such file or directory"), std::string::npos) << out;
    EXPECT_NE(out.find(flag), std::string::npos) << out;  // which flag was at fault
  }
}

TEST_F(CliE2e, GovernedDetectEmitsGovernorSectionAndReport) {
  std::string out;
  ASSERT_EQ(run("detect standin:HW:0.05 --mem-budget 1G --mem-out " + path("gov.mem.json") +
                    " --governor-out " + path("gov.json"),
                &out),
            0)
      << out;
  EXPECT_NE(out.find("governor: enforcing budget 1073741824 B"), std::string::npos) << out;
  EXPECT_NE(out.find("governor: budget"), std::string::npos) << out;
  EXPECT_NE(out.find("wrote governor report to"), std::string::npos) << out;

  const auto slurp = [this](const std::string& name) {
    std::ifstream in(path(name));
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  // A generous budget engages no rungs, but the governor section must still
  // land in both documents with the budget and zeroed ladder state.
  const gala::JsonValue mem = gala::parse_json(slurp("gov.mem.json"));
  ASSERT_NE(mem.find("governor"), nullptr) << "mem report missing governor section";
  EXPECT_EQ(mem.at("governor").at("budget_total").number, 1073741824.0);
  EXPECT_EQ(mem.at("governor").at("rung").string, "none");
  EXPECT_EQ(mem.at("governor").at("denials").number, 0);
  EXPECT_GT(mem.at("governor").at("admits").number, 0);

  const gala::JsonValue gov = gala::parse_json(slurp("gov.json"));
  EXPECT_EQ(gov.at("governor").at("budget_total").number, 1073741824.0);
  EXPECT_EQ(gov.at("provenance").at("schema").string, "governor");
}

TEST_F(CliE2e, ProbeMinBudgetReportsAFeasibleFloor) {
  std::string out;
  ASSERT_EQ(run("detect standin:HW:0.05 --probe-min-budget --governor-out " + path("probe.json"),
                &out),
            0)
      << out;
  EXPECT_NE(out.find("min feasible budget:"), std::string::npos) << out;

  std::ifstream in(path("probe.json"));
  std::ostringstream ss;
  ss << in.rdbuf();
  const gala::JsonValue doc = gala::parse_json(ss.str());
  const double min_feasible = doc.at("min_feasible_budget_bytes").number;
  const double peak = doc.at("unlimited_peak_bytes").number;
  EXPECT_GT(min_feasible, 0) << "probe found no feasible budget";
  EXPECT_GT(peak, 0);
  // The floor can round up past the raw peak (granule ceiling + ladder
  // effects) but never collapses to nothing or explodes past it.
  EXPECT_LE(min_feasible, peak + 2 * 4096);
}

TEST_F(CliE2e, InvalidBudgetsAreRejectedWithFlagAndReason) {
  // 18000000000000000000K wraps past 2^64 if multiplied unchecked; the parser
  // must refuse it rather than silently enforcing a tiny budget.
  for (const char* bad : {"0", "abc", "-5", "12Q", "4096X", "18000000000000000000K",
                          "99999999999999999999"}) {
    std::string out;
    EXPECT_NE(run(std::string("detect standin:HW:0.05 --mem-budget '") + bad + "'", &out), 0)
        << "accepted --mem-budget " << bad;
    EXPECT_NE(out.find("mem-budget"), std::string::npos) << out;
  }
  std::string out;
  EXPECT_NE(run("detect standin:HW:0.05 --mem-budget-sub phase1", &out), 0);
  EXPECT_NE(out.find("is not subsystem=bytes"), std::string::npos) << out;
  EXPECT_NE(run("detect standin:HW:0.05 --mem-budget-sub phase1=0", &out), 0);
  EXPECT_NE(out.find("must be positive"), std::string::npos) << out;
}

TEST_F(CliE2e, InvalidFlightDepthIsRejected) {
  std::string out;
  EXPECT_NE(run("detect standin:HW:0.05 --flight-depth 0 --flight-out " +
                    path("fl.json"),
                &out),
            0);
  EXPECT_NE(out.find("flight-depth"), std::string::npos) << out;
}

TEST_F(CliE2e, ErrorPathsReturnNonZero) {
  std::string out;
  EXPECT_NE(run("detect /nonexistent/path.txt", &out), 0);
  EXPECT_NE(out.find("error:"), std::string::npos);
  EXPECT_NE(run("nonsense-command", &out), 0);
  EXPECT_NE(run("detect standin:LJ:0.05 --pruning bogus", &out), 0);
  EXPECT_NE(run("generate bogus-type --out " + path("x.txt"), &out), 0);
}

TEST_F(CliE2e, BackendSelection) {
  std::string out;
  ASSERT_EQ(run("detect standin:HW:0.05 --backend blas", &out), 0) << out;
  EXPECT_NE(out.find("modularity"), std::string::npos);

  // Fail-fast probe table: each bad selection is rejected before the solve,
  // naming the flag and the accepted values.
  struct Row {
    std::string args;
    std::string expect;
  };
  const Row rows[] = {
      {"detect standin:HW:0.05 --backend bogus", "unknown backend 'bogus' (bsp|blas)"},
      {"detect standin:HW:0.05 --backend blas --gpus 4", "--backend: blas is single-device"},
  };
  for (const Row& row : rows) {
    EXPECT_NE(run(row.args, &out), 0) << row.args;
    EXPECT_NE(out.find(row.expect), std::string::npos) << row.args << "\n" << out;
    EXPECT_EQ(out.find("graph:"), std::string::npos)
        << "solve started despite bad flags:\n" << out;
  }
}

TEST_F(CliE2e, ServeQueryFlags) {
  std::string out;
  ASSERT_EQ(run("detect standin:HW:0.05 --serve --query-epochs 2", &out), 0) << out;
  EXPECT_NE(out.find("query: epoch 1 serving"), std::string::npos) << out;
  EXPECT_NE(out.find("query: v0 -> community"), std::string::npos) << out;

  // Fail-fast probe table: bad query-store selections are rejected before
  // the graph loads, naming the flag and the reason (same contract as the
  // --backend probes above).
  struct Row {
    std::string args;
    std::string expect;
  };
  const Row rows[] = {
      {"detect standin:HW:0.05 --query-epochs 2", "--query-epochs: only meaningful with --serve"},
      {"detect standin:HW:0.05 --serve --query-epochs 0", "--query-epochs: must be positive"},
      {"detect standin:HW:0.05 --serve --query-epochs -3", "--query-epochs: must be positive"},
      {"detect standin:HW:0.05 --serve --query-epochs abc", "'abc' is not an integer"},
  };
  for (const Row& row : rows) {
    EXPECT_NE(run(row.args, &out), 0) << row.args;
    EXPECT_NE(out.find(row.expect), std::string::npos) << row.args << "\n" << out;
    EXPECT_EQ(out.find("graph:"), std::string::npos)
        << "solve started despite bad flags:\n" << out;
  }
}

TEST_F(CliE2e, HelpExitsCleanly) {
  std::string out;
  EXPECT_EQ(run("detect --help", &out), 0);
  EXPECT_NE(out.find("usage:"), std::string::npos);
}

}  // namespace
