// Cross-implementation consistency fuzzing: on randomized graphs spanning
// several generator families, every engine variant must agree with the
// deterministic single-threaded reference bit-for-bit (same decide
// semantics), and all quality invariants must hold.
#include <gtest/gtest.h>

#include "gala/baselines/baseline.hpp"
#include "gala/core/gala.hpp"
#include "gala/core/modularity.hpp"
#include "gala/core/sequential_louvain.hpp"
#include "gala/graph/generators.hpp"
#include "gala/metrics/nmi.hpp"
#include "gala/multigpu/dist_louvain.hpp"

namespace gala {
namespace {

struct FuzzCase {
  const char* family;
  std::uint64_t seed;
};

graph::Graph make_graph(const FuzzCase& c) {
  Xoshiro256 rng(c.seed * 7919);
  const std::string family = c.family;
  if (family == "planted") {
    graph::PlantedPartitionParams p;
    p.num_vertices = 200 + static_cast<vid_t>(rng.next_below(600));
    p.num_communities = 2 + static_cast<vid_t>(rng.next_below(20));
    p.avg_degree = 6 + static_cast<double>(rng.next_below(20));
    p.mixing = 0.05 + 0.5 * rng.next_double();
    p.degree_exponent = rng.next_double() < 0.5 ? 0.0 : 2.2;
    p.seed = c.seed;
    return graph::planted_partition(p);
  }
  if (family == "er") {
    const vid_t n = 100 + static_cast<vid_t>(rng.next_below(400));
    return graph::erdos_renyi(n, static_cast<eid_t>(n) * (2 + rng.next_below(8)), c.seed);
  }
  if (family == "rmat") {
    graph::RmatParams p;
    p.scale = 8 + static_cast<int>(rng.next_below(3));
    p.edge_factor = 4 + static_cast<double>(rng.next_below(8));
    p.seed = c.seed;
    return graph::rmat(p);
  }
  graph::LfrParams p;
  p.num_vertices = 500 + static_cast<vid_t>(rng.next_below(1000));
  p.mixing = 0.1 + 0.4 * rng.next_double();
  p.min_community = 10;
  p.max_community = 200;
  p.seed = c.seed;
  std::vector<cid_t> truth;
  return graph::lfr(p, truth);
}

class CrossImplementationFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(CrossImplementationFuzz, AllEnginesAgreeAndInvariantsHold) {
  const auto g = make_graph(GetParam());
  ASSERT_GT(g.total_weight(), 0.0);
  g.validate();

  // Reference: deterministic sequential-launch engine.
  core::BspConfig ref_cfg;
  ref_cfg.parallel = false;
  const auto ref = core::bsp_phase1(g, ref_cfg);

  // 1. Parallel engine agrees bit-for-bit.
  const auto par = core::bsp_phase1(g, {});
  EXPECT_EQ(par.community, ref.community);

  // 2. Distributed engine (3 devices) agrees bit-for-bit.
  multigpu::DistributedConfig dist_cfg;
  dist_cfg.num_gpus = 3;
  const auto dist = multigpu::distributed_phase1(g, dist_cfg);
  EXPECT_EQ(dist.community, ref.community);

  // 3. Hash-only with every hashtable policy agrees.
  for (const auto policy : {core::HashTablePolicy::GlobalOnly, core::HashTablePolicy::Unified,
                            core::HashTablePolicy::Hierarchical}) {
    core::BspConfig cfg;
    cfg.kernel = core::KernelMode::HashOnly;
    cfg.hashtable = policy;
    EXPECT_EQ(core::bsp_phase1(g, cfg).community, ref.community) << to_string(policy);
  }

  // 4. Reported modularity matches the independent audit.
  EXPECT_NEAR(ref.modularity, core::modularity(g, ref.community), 1e-9);

  // 5. The full pipeline never scores below its own phase 1 and lands in
  //    the sequential reference's quality regime.
  const auto full = core::run_louvain(g);
  EXPECT_GE(full.modularity + 1e-9, ref.modularity);
  const auto seq = core::sequential_louvain(g);
  // BSP Louvain trails the sequential sweep most on structureless low-Q
  // graphs (cf. the paper's TW results), so the bound is relative with an
  // absolute floor.
  EXPECT_GT(full.modularity, seq.modularity - std::max(0.09, 0.15 * seq.modularity));

  // 6. Assignment is dense and covering.
  for (const cid_t c : full.assignment) EXPECT_LT(c, full.num_communities);
}

INSTANTIATE_TEST_SUITE_P(
    Families, CrossImplementationFuzz,
    ::testing::Values(FuzzCase{"planted", 1}, FuzzCase{"planted", 2}, FuzzCase{"planted", 3},
                      FuzzCase{"er", 4}, FuzzCase{"er", 5}, FuzzCase{"rmat", 6},
                      FuzzCase{"rmat", 7}, FuzzCase{"lfr", 8}, FuzzCase{"lfr", 9},
                      FuzzCase{"planted", 10}),
    [](const auto& info) {
      return std::string(info.param.family) + "_" + std::to_string(info.param.seed);
    });

TEST(BaselineParityFuzz, EverySystemMatchesGalaOnRandomGraphs) {
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const auto g = make_graph({"planted", seed});
    const auto all = baselines::run_all_systems(g, {});
    const auto& gala = all.back();
    for (const auto& r : all) {
      EXPECT_EQ(r.community, gala.community) << r.name << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace gala
