// BSP vs blas backend parity over the full stand-in suite (the CI
// backend-parity job runs exactly this binary).
//
// The two engines share the move rule, pruning, convergence test, and the
// SpGEMM contraction, and both accumulate per-community weights in adjacency
// encounter order — so on the integer-weight stand-ins their trajectories
// are bit-identical: same assignment, same modularity, level for level.
#include <gtest/gtest.h>

#include <string>

#include "gala/core/gala.hpp"
#include "gala/graph/standin.hpp"

namespace gala {
namespace {

constexpr double kScale = 0.05;

class BackendParity : public ::testing::TestWithParam<std::string> {};

TEST_P(BackendParity, BlasMatchesBspOnStandIn) {
  const graph::Graph g = graph::make_standin(GetParam(), kScale);

  core::GalaConfig cfg;
  cfg.bsp.parallel = false;
  cfg.backend = core::Backend::Bsp;
  const core::GalaResult bsp = core::run_louvain(g, cfg);

  cfg.backend = core::Backend::Blas;
  const core::GalaResult blas1 = core::run_louvain(g, cfg);
  const core::GalaResult blas2 = core::run_louvain(g, cfg);

  // Determinism of the blas backend across runs.
  EXPECT_EQ(blas1.assignment, blas2.assignment);
  EXPECT_EQ(blas1.modularity, blas2.modularity);

  // Cross-backend parity: identical hierarchy on exact-weight graphs.
  EXPECT_EQ(bsp.assignment, blas1.assignment);
  EXPECT_EQ(bsp.num_communities, blas1.num_communities);
  EXPECT_NEAR(bsp.modularity, blas1.modularity, 1e-9);
  ASSERT_EQ(bsp.levels.size(), blas1.levels.size());
  for (std::size_t i = 0; i < bsp.levels.size(); ++i) {
    EXPECT_EQ(bsp.levels[i].communities, blas1.levels[i].communities) << "level " << i;
    EXPECT_EQ(bsp.levels[i].iterations, blas1.levels[i].iterations) << "level " << i;
    EXPECT_NEAR(bsp.levels[i].modularity, blas1.levels[i].modularity, 1e-9) << "level " << i;
  }
  EXPECT_GT(blas1.modularity, 0.2);
}

TEST_P(BackendParity, BlasCompletesUnderParallelExecution) {
  const graph::Graph g = graph::make_standin(GetParam(), kScale);
  core::GalaConfig cfg;
  cfg.backend = core::Backend::Blas;
  cfg.bsp.parallel = true;
  const core::GalaResult result = core::run_louvain(g, cfg);
  EXPECT_GT(result.modularity, 0.2);
  EXPECT_GT(result.num_communities, 0u);
  EXPECT_EQ(result.workspace.outstanding_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(StandInSuite, BackendParity,
                         ::testing::ValuesIn(graph::standin_abbrs()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace gala
