// Vertex-range partitioning for the multi-GPU layer.
#include "gala/graph/partition.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace gala::graph {
namespace {

TEST(Partition, CoversAllVerticesContiguously) {
  const Graph g = testing::small_planted(3, 500, 8, 0.2);
  for (const std::size_t parts : {1u, 2u, 3u, 7u}) {
    const auto ranges = partition_by_edges(g, parts);
    ASSERT_EQ(ranges.size(), parts);
    EXPECT_EQ(ranges.front().begin, 0u);
    EXPECT_EQ(ranges.back().end, g.num_vertices());
    for (std::size_t p = 1; p < parts; ++p) EXPECT_EQ(ranges[p].begin, ranges[p - 1].end);
  }
}

TEST(Partition, BalancesAdjacencyEntries) {
  const Graph g = testing::small_planted(5, 2000, 20, 0.2);
  const auto ranges = partition_by_edges(g, 4);
  std::vector<eid_t> load(4, 0);
  for (std::size_t p = 0; p < 4; ++p) {
    for (vid_t v = ranges[p].begin; v < ranges[p].end; ++v) load[p] += g.out_degree(v);
  }
  const eid_t target = g.num_adjacency() / 4;
  for (const eid_t l : load) {
    EXPECT_NEAR(static_cast<double>(l), static_cast<double>(target), 0.25 * target);
  }
}

TEST(Partition, MorePartsThanVerticesStillCovers) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Graph g = b.build();
  const auto ranges = partition_by_edges(g, 8);
  EXPECT_EQ(ranges.back().end, 3u);
  vid_t covered = 0;
  for (const auto& r : ranges) covered += r.size();
  EXPECT_EQ(covered, 3u);
}

TEST(Partition, OwnerOfFindsTheRightRange) {
  const Graph g = testing::small_planted(7, 300, 6, 0.2);
  const auto ranges = partition_by_edges(g, 5);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const std::size_t p = owner_of(ranges, v);
    EXPECT_GE(v, ranges[p].begin);
    EXPECT_LT(v, ranges[p].end);
  }
}

TEST(Partition, ZeroPartsRejected) {
  const Graph g = testing::two_triangles();
  EXPECT_THROW(partition_by_edges(g, 0), Error);
}

}  // namespace
}  // namespace gala::graph
