// gala::governor — enforceable memory budgets with a deterministic
// degradation ladder. Covers the threshold schedule (80/85/90/95% projected
// utilisation), rung stickiness (escalate-only, monotone transition list),
// the may-throw floor (ResourceExhausted on a Workspace checkout the budget
// cannot admit), subsystem caps, budget shrink (both direct and via the
// budget-shrink fault site), reclaimer registration, the report fragment,
// and the min-feasible-budget binary search.
#include "gala/governor/governor.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "gala/common/json.hpp"
#include "gala/core/gala.hpp"
#include "gala/exec/context.hpp"
#include "gala/exec/workspace.hpp"
#include "gala/memtrace/memtrace.hpp"
#include "gala/resilience/fault_injection.hpp"
#include "test_util.hpp"

namespace gala::governor {
namespace {

/// Fresh registry + installed budget for every test (ScopedBudget uninstalls
/// on scope exit, so a failing test cannot leak an armed hook into the next).
struct GovernorFixture : ::testing::Test {
  void SetUp() override { memtrace::MemRegistry::global().reset(); }
  void TearDown() override {
    Governor::global().uninstall();
    memtrace::MemRegistry::global().reset();
  }
};

using GovernorLadder = GovernorFixture;
using GovernorShrink = GovernorFixture;
using GovernorEnforce = GovernorFixture;

TEST_F(GovernorLadder, EscalatesAtThresholdSchedule) {
  BudgetConfig cfg;
  cfg.total_bytes = 1000;
  ScopedBudget scoped(cfg);
  auto& gov = Governor::global();

  gov.admit("test.x", 790, /*may_throw=*/false);  // 79%: below every rung
  EXPECT_EQ(gov.rung(), Rung::None);
  EXPECT_EQ(gov.frontier_chunk(), 0u);

  gov.admit("test.x", 820, false);  // 82%
  EXPECT_EQ(gov.rung(), Rung::ReclaimSlabs);
  gov.admit("test.x", 870, false);  // 87%
  EXPECT_EQ(gov.rung(), Rung::GlobalOnlyHash);
  EXPECT_TRUE(gov.force_global_only());
  EXPECT_FALSE(gov.force_sparse_sync());
  gov.admit("test.x", 920, false);  // 92%
  EXPECT_EQ(gov.rung(), Rung::SparseSync);
  EXPECT_TRUE(gov.force_sparse_sync());
  gov.admit("test.x", 960, false);  // 96%
  EXPECT_EQ(gov.rung(), Rung::ChunkedFrontier);
  EXPECT_EQ(gov.frontier_chunk(), 4096u);

  // Over budget on a non-throwing site: denial recorded, no throw, and the
  // ladder does not reach the floor.
  gov.admit("test.x", 1100, false);
  EXPECT_EQ(gov.denials(), 1u);
  EXPECT_EQ(gov.rung(), Rung::ChunkedFrontier);

  // The floor: a may-throw site the budget cannot admit refuses by throwing.
  EXPECT_THROW(gov.admit("test.x", 1100, /*may_throw=*/true), ResourceExhausted);
  EXPECT_EQ(gov.rung(), Rung::HostFallback);
  EXPECT_EQ(gov.admits(), 7u);
}

TEST_F(GovernorLadder, RungsAreStickyAndTransitionsMonotone) {
  BudgetConfig cfg;
  cfg.total_bytes = 1000;
  ScopedBudget scoped(cfg);
  auto& gov = Governor::global();

  gov.admit("test.x", 960, false);  // jumps straight through rungs 1-4
  EXPECT_EQ(gov.rung(), Rung::ChunkedFrontier);
  gov.admit("test.x", 10, false);  // pressure released: the ladder stays put
  EXPECT_EQ(gov.rung(), Rung::ChunkedFrontier);

  const JsonValue doc = parse_json(gov.section_json());
  const auto& transitions = doc.at("transitions").array;
  ASSERT_EQ(transitions.size(), 4u);
  double prev = 0;
  for (const auto& t : transitions) {
    EXPECT_GT(t.at("ordinal").number, prev);
    prev = t.at("ordinal").number;
  }
}

TEST_F(GovernorLadder, SubsystemCapEscalatesWithoutTotalBudget) {
  BudgetConfig cfg;  // total stays 0 (unlimited): only the cap enforces
  cfg.subsystem_caps.emplace_back("phase1", 1000);
  ScopedBudget scoped(cfg);
  auto& gov = Governor::global();

  gov.admit("gpusim.arena", 5000, false);  // other subsystems are uncapped
  EXPECT_EQ(gov.rung(), Rung::None);
  gov.admit("phase1.delta", 900, false);  // 90% of the phase1 cap
  EXPECT_EQ(gov.rung(), Rung::SparseSync);
  EXPECT_THROW(gov.admit("phase1.delta", 1100, true), ResourceExhausted);
}

TEST_F(GovernorLadder, ReclaimersRunOnFirstEscalation) {
  BudgetConfig cfg;
  cfg.total_bytes = 1000;
  ScopedBudget scoped(cfg);
  auto& gov = Governor::global();
  int calls = 0;
  gov.register_reclaimer(&calls, [&calls] {
    ++calls;
    return std::uint64_t{64};
  });
  gov.admit("test.x", 820, false);  // crosses the reclaim threshold
  EXPECT_EQ(calls, 1);
  EXPECT_GE(gov.reclaims(), 1u);
  gov.unregister_reclaimer(&calls);
  gov.admit("test.x", 1100, false);  // denial path re-runs reclaimers
  EXPECT_EQ(calls, 1);              // unregistered: not called again
}

TEST_F(GovernorShrink, ShrinkNeverRaisesAndNeverDisables) {
  BudgetConfig cfg;
  cfg.total_bytes = 1000;
  ScopedBudget scoped(cfg);
  auto& gov = Governor::global();

  gov.shrink_budget(400);
  EXPECT_EQ(gov.budget_total(), 400u);
  EXPECT_EQ(gov.shrinks(), 1u);
  gov.shrink_budget(600);  // raising is refused
  EXPECT_EQ(gov.budget_total(), 400u);
  EXPECT_EQ(gov.shrinks(), 1u);
  gov.shrink_budget(0);  // 0 would mean unlimited; clamps to 1 instead
  EXPECT_EQ(gov.budget_total(), 1u);
}

TEST_F(GovernorShrink, BudgetShrinkFaultSiteCutsTheBudgetDeterministically) {
  resilience::FaultPlan plan;
  resilience::FaultRule rule;
  rule.site = resilience::FaultSite::BudgetShrink;
  rule.max_fires = 1;
  plan.rules.push_back(rule);
  resilience::ScopedFaultPlan armed(plan);

  BudgetConfig cfg;
  cfg.total_bytes = 1000;
  ScopedBudget scoped(cfg);
  auto& gov = Governor::global();

  gov.admit("test.x", 10, false);  // the fault fires here: cut to max(live, 500)
  EXPECT_EQ(gov.budget_total(), 500u);
  EXPECT_EQ(gov.shrinks(), 1u);
  gov.admit("test.x", 10, false);  // max_fires exhausted: budget holds
  EXPECT_EQ(gov.budget_total(), 500u);
  EXPECT_EQ(gov.shrinks(), 1u);

  const JsonValue doc = parse_json(gov.section_json());
  EXPECT_EQ(doc.at("budget_initial").number, 1000.0);
  EXPECT_EQ(doc.at("budget_total").number, 500.0);
}

TEST_F(GovernorEnforce, WorkspaceCheckoutOverBudgetThrowsAndRecoversOnUninstall) {
  exec::Workspace ws(/*pooling=*/true);
  {
    BudgetConfig cfg;
    cfg.total_bytes = 1024;
    ScopedBudget scoped(cfg);
    EXPECT_THROW(ws.take<std::uint64_t>(1000, "test.denied"), ResourceExhausted);
    EXPECT_EQ(Governor::global().rung(), Rung::HostFallback);
    EXPECT_GE(Governor::global().denials(), 1u);
  }
  // Budget gone: the same checkout is admitted.
  auto lease = ws.take<std::uint64_t>(1000, "test.granted");
  EXPECT_EQ(lease.span().size(), 1000u);
}

TEST_F(GovernorEnforce, GaugeResetAdmitsOnlyTheIncrease) {
  BudgetConfig cfg;
  cfg.total_bytes = 1000;
  ScopedBudget scoped(cfg);
  auto& gov = Governor::global();

  memtrace::set_resident("test.gauge", 600);  // 60%: below every rung
  EXPECT_EQ(gov.rung(), Rung::None);
  // Re-setting an existing gauge must not project old + new (1200 here):
  // live_total already carries the 600, so the admission charge is zero.
  memtrace::set_resident("test.gauge", 600);
  memtrace::set_resident("test.gauge", 700);  // genuine growth: 70%
  EXPECT_EQ(gov.rung(), Rung::None);
  EXPECT_EQ(gov.denials(), 0u);

  memtrace::set_resident("test.gauge", 100);  // shrinking re-set releases
  memtrace::set_resident("test.gauge", 820);  // 100 live + 720 delta = 82%
  EXPECT_EQ(gov.rung(), Rung::ReclaimSlabs);
  EXPECT_EQ(memtrace::MemRegistry::global().live_total(), 820u);
}

TEST_F(GovernorEnforce, ConcurrentEscalationsStayMonotoneAndTeardownIsSafe) {
  BudgetConfig cfg;
  cfg.total_bytes = 1000;
  ScopedBudget scoped(cfg);
  auto& gov = Governor::global();

  // Threads race up the ladder while registering and tearing down stack-owned
  // reclaimers (standing in for rank ExecutionContexts unwinding mid-run);
  // unregister_reclaimer must drain in-flight invocations before the capture
  // dies, and concurrent escalations must still record in rung order.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&gov, t] {
      for (int i = 0; i < 50; ++i) {
        int local = 0;
        gov.register_reclaimer(&local, [&local] {
          ++local;
          return std::uint64_t{0};
        });
        gov.admit("test.race", 820 + 45 * t, /*may_throw=*/false);  // 82..95.5%
        gov.unregister_reclaimer(&local);  // `local` leaves scope right after
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(gov.rung(), Rung::ChunkedFrontier);

  const JsonValue doc = parse_json(gov.section_json());
  const auto& transitions = doc.at("transitions").array;
  ASSERT_EQ(transitions.size(), 4u);
  double prev = 0;
  for (const auto& t : transitions) {
    EXPECT_GT(t.at("ordinal").number, prev);
    prev = t.at("ordinal").number;
  }
}

TEST_F(GovernorEnforce, HookIsNullWhenUninstalled) {
  EXPECT_EQ(memtrace::MemRegistry::admit_hook(), nullptr);
  EXPECT_FALSE(Governor::enabled());
  {
    BudgetConfig cfg;
    cfg.total_bytes = 1 << 20;
    ScopedBudget scoped(cfg);
    EXPECT_NE(memtrace::MemRegistry::admit_hook(), nullptr);
    EXPECT_TRUE(Governor::enabled());
  }
  EXPECT_EQ(memtrace::MemRegistry::admit_hook(), nullptr);
}

TEST_F(GovernorEnforce, SectionJsonShape) {
  BudgetConfig cfg;
  cfg.total_bytes = 2048;
  cfg.subsystem_caps.emplace_back("phase1", 1024);
  ScopedBudget scoped(cfg);
  Governor::global().admit("test.x", 100, false);

  const JsonValue doc = parse_json(Governor::global().section_json());
  EXPECT_EQ(doc.at("budget_total").number, 2048.0);
  EXPECT_EQ(doc.at("rung").string, "none");
  EXPECT_EQ(doc.at("rung_ordinal").number, 0.0);
  EXPECT_EQ(doc.at("admits").number, 1.0);
  EXPECT_EQ(doc.at("frontier_chunk").number, 4096.0);
  ASSERT_EQ(doc.at("subsystem_caps").array.size(), 1u);
  EXPECT_EQ(doc.at("subsystem_caps").array[0].at("name").string, "phase1");
  EXPECT_EQ(doc.at("subsystem_caps").array[0].at("cap").number, 1024.0);
  EXPECT_TRUE(doc.at("transitions").array.empty());
}

// ---------------------------------------------------------------------------
// min_feasible_budget: monotone binary search over granules.

TEST(MinFeasibleBudget, FindsTheSmallestFeasibleGranule) {
  int probes = 0;
  const auto feasible = [&probes](std::uint64_t b) {
    ++probes;
    return b >= 37000;
  };
  // 9 * 4096 = 36864 is infeasible, 10 * 4096 = 40960 is the first granule up.
  EXPECT_EQ(min_feasible_budget(100000, feasible, 4096), 40960u);
  EXPECT_LE(probes, 8);  // log2(25 granules) + the two endpoint probes
}

TEST(MinFeasibleBudget, InfeasibleCeilingReturnsZero) {
  EXPECT_EQ(min_feasible_budget(100000, [](std::uint64_t) { return false; }, 4096), 0u);
}

TEST(MinFeasibleBudget, TriviallyFeasibleReturnsOneGranule) {
  EXPECT_EQ(min_feasible_budget(100000, [](std::uint64_t) { return true; }, 4096), 4096u);
}

TEST(MinFeasibleBudget, ZeroGranularityIsClampedToOneByte) {
  EXPECT_EQ(min_feasible_budget(8, [](std::uint64_t b) { return b >= 5; }, 0), 5u);
}

// ---------------------------------------------------------------------------
// End-to-end: a budget generous enough never to deny still produces the
// exact partition and mem accounting of an unbudgeted run.

TEST(GovernorEndToEnd, GenerousBudgetIsInvisible) {
  const auto g = gala::testing::small_planted();
  const auto run = [&g] {
    exec::ExecutionContext ctx({}, /*seed=*/7, /*pooling=*/true);
    core::GalaConfig cfg;
    cfg.bsp.parallel = false;
    cfg.bsp.context = &ctx;
    memtrace::MemRegistry::global().reset();
    return core::run_louvain(g, cfg).assignment;
  };
  const std::vector<cid_t> reference = run();

  BudgetConfig cfg;
  cfg.total_bytes = 1ull << 32;
  ScopedBudget scoped(cfg);
  EXPECT_EQ(run(), reference);
  EXPECT_EQ(Governor::global().rung(), Rung::None);
  EXPECT_EQ(Governor::global().denials(), 0u);
  EXPECT_GT(Governor::global().admits(), 0u);
}

}  // namespace
}  // namespace gala::governor
