// Matrix Market / METIS loaders and the vertex reordering utilities.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "gala/core/gala.hpp"
#include "gala/graph/formats.hpp"
#include "gala/graph/reorder.hpp"
#include "test_util.hpp"

namespace gala::graph {
namespace {

std::string temp_file(const std::string& name, const std::string& content) {
  const auto dir = std::filesystem::temp_directory_path() / "gala_formats_test";
  std::filesystem::create_directories(dir);
  const auto path = (dir / name).string();
  std::ofstream(path) << content;
  return path;
}

TEST(MatrixMarket, LoadsSymmetricWeighted) {
  const auto path = temp_file("sym.mtx",
                              "%%MatrixMarket matrix coordinate real symmetric\n"
                              "% a comment\n"
                              "4 4 3\n"
                              "2 1 1.5\n"
                              "3 2 2.0\n"
                              "4 1 0.5\n");
  const Graph g = load_matrix_market(path);
  g.validate();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(g.weights(0)[0], 1.5);  // edge {0,1}
}

TEST(MatrixMarket, PatternEntriesGetUnitWeight) {
  const auto path = temp_file("pat.mtx",
                              "%%MatrixMarket matrix coordinate pattern symmetric\n"
                              "3 3 2\n"
                              "2 1\n"
                              "3 1\n");
  const Graph g = load_matrix_market(path);
  EXPECT_DOUBLE_EQ(g.total_weight(), 2.0);
}

TEST(MatrixMarket, GeneralMatricesAreSymmetrisedBySumming) {
  const auto path = temp_file("gen.mtx",
                              "%%MatrixMarket matrix coordinate real general\n"
                              "2 2 2\n"
                              "1 2 1.0\n"
                              "2 1 2.0\n");
  const Graph g = load_matrix_market(path);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.weights(0)[0], 3.0);
}

TEST(MatrixMarket, DiagonalBecomesSelfLoop) {
  const auto path = temp_file("diag.mtx",
                              "%%MatrixMarket matrix coordinate real symmetric\n"
                              "2 2 2\n"
                              "1 1 4.0\n"
                              "2 1 1.0\n");
  const Graph g = load_matrix_market(path);
  EXPECT_DOUBLE_EQ(g.self_loop(0), 4.0);
}

TEST(MatrixMarket, RejectsMalformedInput) {
  EXPECT_THROW(load_matrix_market(temp_file("bad1.mtx", "not a banner\n1 1 0\n")), Error);
  EXPECT_THROW(load_matrix_market(temp_file(
                   "bad2.mtx", "%%MatrixMarket matrix coordinate real symmetric\n2 3 0\n")),
               Error);
  EXPECT_THROW(load_matrix_market(temp_file(
                   "bad3.mtx",
                   "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 2 1.0\n")),
               Error);  // truncated
}

TEST(Metis, RoundTripThroughSaveAndLoad) {
  const Graph g = testing::small_planted(5, 200, 4, 0.2);
  const auto dir = std::filesystem::temp_directory_path() / "gala_formats_test";
  std::filesystem::create_directories(dir);
  const auto path = (dir / "round.graph").string();
  save_metis(g, path);
  const Graph loaded = load_metis(path);
  EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  EXPECT_NEAR(loaded.total_weight(), g.total_weight(), 1e-9);
  loaded.validate();
}

TEST(Metis, LoadsUnweightedListing) {
  const auto path = temp_file("plain.graph",
                              "% triangle plus pendant\n"
                              "4 4 0\n"
                              "2 3\n"
                              "1 3\n"
                              "1 2 4\n"
                              "3\n");
  const Graph g = load_metis(path);
  g.validate();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
}

TEST(Metis, HeaderEdgeCountMismatchThrows) {
  const auto path = temp_file("mismatch.graph", "3 5 0\n2\n1 3\n2\n");
  EXPECT_THROW(load_metis(path), Error);
}

TEST(Metis, SelfLoopsRejectedOnSave) {
  GraphBuilder b(2);
  b.add_edge(0, 0, 1.0);
  b.add_edge(0, 1, 1.0);
  const Graph g = b.build();
  const auto dir = std::filesystem::temp_directory_path() / "gala_formats_test";
  EXPECT_THROW(save_metis(g, (dir / "loops.graph").string()), Error);
}

// ------------------------------------------------------------- reorder ----

TEST(Reorder, DegreeDescendingPutsHubsFirst) {
  GraphBuilder b(5);
  for (vid_t v = 1; v < 5; ++v) b.add_edge(0, v);  // star: 0 is the hub
  b.add_edge(1, 2);
  const Graph g = b.build();
  const auto perm = degree_descending_order(g);
  validate_permutation(perm, 5);
  EXPECT_EQ(perm[0], 0u);  // hub gets rank 0
  const Graph h = apply_permutation(g, perm);
  for (vid_t v = 1; v < h.num_vertices(); ++v) {
    EXPECT_LE(h.out_degree(v), h.out_degree(v - 1));
  }
}

TEST(Reorder, BfsOrderIsAValidPermutationCoveringComponents) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);  // second component; vertex 5 isolated
  const Graph g = b.build();
  const auto perm = bfs_order(g, 0);
  validate_permutation(perm, 6);
  EXPECT_EQ(perm[0], 0u);
  EXPECT_LT(perm[1], perm[2]);  // BFS layers respected
}

TEST(Reorder, PermutedGraphIsIsomorphic) {
  const Graph g = testing::small_planted(7, 300, 6, 0.25);
  const auto perm = degree_descending_order(g);
  const Graph h = apply_permutation(g, perm);
  h.validate();
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_NEAR(h.total_weight(), g.total_weight(), 1e-9);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(h.out_degree(perm[v]), g.out_degree(v));
    EXPECT_NEAR(h.degree(perm[v]), g.degree(v), 1e-12);
  }
}

TEST(Reorder, CommunityDetectionIsOrderInvariantUpToRelabeling) {
  // Louvain results depend on id-based tie-breaks, so partitions may differ
  // slightly across orders — but quality must match closely.
  const Graph g = testing::small_planted(9, 800, 8, 0.2);
  const auto direct = core::run_louvain(g);
  const auto perm = bfs_order(g, 0);
  const Graph h = apply_permutation(g, perm);
  const auto permuted = core::run_louvain(h);
  const auto back = unpermute_assignment(perm, permuted.assignment);
  EXPECT_NEAR(core::modularity(g, back), direct.modularity, 0.03);
}

TEST(Reorder, UnpermuteInvertsApply) {
  const Graph g = testing::small_planted(11, 100, 4, 0.2);
  const auto perm = degree_descending_order(g);
  // Build an assignment keyed by permuted ids, then map back.
  std::vector<cid_t> permuted(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) permuted[v] = v % 3;
  const auto original = unpermute_assignment(perm, permuted);
  for (vid_t old_id = 0; old_id < g.num_vertices(); ++old_id) {
    EXPECT_EQ(original[old_id], permuted[perm[old_id]]);
  }
}

TEST(Reorder, RejectsInvalidPermutations) {
  const Graph g = testing::two_triangles();
  Permutation bad = {0, 1, 2, 3, 4, 4};  // repeated
  EXPECT_THROW(apply_permutation(g, bad), Error);
  Permutation short_perm = {0, 1};
  EXPECT_THROW(apply_permutation(g, short_perm), Error);
}

}  // namespace
}  // namespace gala::graph
