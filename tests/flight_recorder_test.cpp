// gala::telemetry::FlightRecorder: ring wrap-around, the global event clock,
// concurrent wait-free writers (exercised under TSan in CI), drain-while-armed
// consistency, post-mortem JSON round-trips through the DOM parser, and the
// chaos contract that every injected fault leaves a non-empty dump.
#include "gala/telemetry/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "gala/common/json.hpp"
#include "gala/core/gala.hpp"
#include "gala/resilience/fault_injection.hpp"
#include "gala/resilience/supervisor.hpp"
#include "gala/telemetry/telemetry.hpp"
#include "test_util.hpp"

namespace gala::telemetry {
namespace {

namespace fs = std::filesystem;

/// Fresh-state fixture: every test starts with an empty, armed recorder at
/// the default depth (the recorder is a process-wide singleton).
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::global().set_depth(FlightRecorder::kDefaultDepth);
    FlightRecorder::global().reset();
    FlightRecorder::arm();
  }
  void TearDown() override {
    FlightRecorder::global().set_depth(FlightRecorder::kDefaultDepth);
    FlightRecorder::global().reset();
    FlightRecorder::arm();
  }
};

TEST_F(FlightRecorderTest, RecordsAndDrainsInSeqOrder) {
  auto& rec = FlightRecorder::global();
  rec.record(FlightKind::LevelBegin, 0, 100);
  rec.record(FlightKind::IterationBegin, 0, 100);
  rec.record(FlightKind::IterationEnd, 0.5, 0.1);

  const auto events = rec.drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FlightKind::LevelBegin);
  EXPECT_EQ(events[1].kind, FlightKind::IterationBegin);
  EXPECT_EQ(events[2].kind, FlightKind::IterationEnd);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_DOUBLE_EQ(events[2].a, 0.5);
  EXPECT_DOUBLE_EQ(events[2].b, 0.1);
  EXPECT_EQ(events[0].rank, -1);  // no ambient RankScope in this test
  EXPECT_EQ(rec.recorded(), 3u);
}

TEST_F(FlightRecorderTest, DisarmedRecordsNothing) {
  auto& rec = FlightRecorder::global();
  FlightRecorder::disarm();
  flight(FlightKind::Apply, 1, 2);  // the helper checks the armed flag
  FlightRecorder::arm();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.drain().empty());
}

TEST_F(FlightRecorderTest, SmallRingWrapsKeepingNewestEvents) {
  auto& rec = FlightRecorder::global();
  rec.set_depth(8);  // minimum depth; also a power of two
  ASSERT_EQ(rec.depth(), 8u);

  for (int i = 0; i < 100; ++i) {
    rec.record(FlightKind::Apply, static_cast<double>(i), 0);
  }
  const auto events = rec.drain();
  // One writer thread: exactly the last `depth` events survive, in order.
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].a, static_cast<double>(92 + i));
  }
  EXPECT_EQ(rec.recorded(), 100u);
}

TEST_F(FlightRecorderTest, DepthRoundsUpToPowerOfTwo) {
  auto& rec = FlightRecorder::global();
  rec.set_depth(9);
  EXPECT_EQ(rec.depth(), 16u);
  rec.set_depth(1);
  EXPECT_EQ(rec.depth(), 8u);  // floor
}

TEST_F(FlightRecorderTest, RankScopeTagsEvents) {
  auto& rec = FlightRecorder::global();
  {
    RankScope scope(3);
    flight(FlightKind::SyncPost, 0, 128);
  }
  flight(FlightKind::SyncComplete, 0, 5, /*rank=*/1);  // explicit beats ambient
  const auto events = rec.drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].rank, 3);
  EXPECT_EQ(events[1].rank, 1);
}

TEST_F(FlightRecorderTest, ConcurrentWritersProduceUniqueOrderedSeqs) {
  auto& rec = FlightRecorder::global();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.record(FlightKind::Decide, static_cast<double>(t), static_cast<double>(i));
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto events = rec.drain();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::set<std::uint64_t> seqs;
  std::set<std::uint16_t> tids;
  for (std::size_t i = 0; i < events.size(); ++i) {
    seqs.insert(events[i].seq);
    tids.insert(events[i].tid);
    if (i > 0) {
      EXPECT_LT(events[i - 1].seq, events[i].seq);  // drain sorts by seq
    }
  }
  EXPECT_EQ(seqs.size(), events.size());  // the clock never hands out duplicates
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(FlightRecorderTest, DrainWhileWritersAppendNeverTearsEvents) {
  auto& rec = FlightRecorder::global();
  rec.set_depth(64);  // small ring maximizes lapping during the copy
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      rec.record(FlightKind::Apply, static_cast<double>(i & 0xffff), 1.0);
      ++i;
    }
  });
  for (int round = 0; round < 200; ++round) {
    const auto events = rec.drain();
    // Lapped slots are discarded, never returned torn: every surviving event
    // carries the payload shape the writer stores.
    std::uint64_t prev = 0;
    for (const auto& e : events) {
      EXPECT_EQ(e.kind, FlightKind::Apply);
      EXPECT_DOUBLE_EQ(e.b, 1.0);
      EXPECT_GE(e.a, 0.0);
      EXPECT_LT(e.a, 65536.0);
      if (prev != 0) {
        EXPECT_LT(prev, e.seq);
      }
      prev = e.seq;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST_F(FlightRecorderTest, ResetForgetsEventsAndRestartsClock) {
  auto& rec = FlightRecorder::global();
  rec.record(FlightKind::Apply);
  rec.record(FlightKind::Apply);
  rec.reset();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.drain().empty());
  rec.record(FlightKind::Prune, 10, 2);
  const auto events = rec.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FlightKind::Prune);
}

TEST_F(FlightRecorderTest, PostMortemJsonRoundTripsThroughParser) {
  auto& rec = FlightRecorder::global();
  {
    RankScope scope(2);
    rec.record(FlightKind::FaultFire, 1, 1);
  }
  rec.record(FlightKind::Retry, 0, 1);
  rec.record(FlightKind::Rollback, 3, 0.42);

  const JsonValue doc = parse_json(rec.json("test \"quoted\"\nreason"));
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("flight_schema").number, FlightRecorder::kSchema);
  // Escaping hardening: the reason survives quotes and newlines intact.
  EXPECT_EQ(doc.at("reason").string, "test \"quoted\"\nreason");
  EXPECT_EQ(doc.at("recorded").number, 3);
  EXPECT_EQ(doc.at("dropped").number, 0);
  const auto& events = doc.at("events").array;
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at("kind").string, "fault-fire");
  EXPECT_EQ(events[0].at("rank").number, 2);
  EXPECT_EQ(events[1].at("kind").string, "retry");
  EXPECT_EQ(events[2].at("kind").string, "rollback");
  EXPECT_DOUBLE_EQ(events[2].at("b").number, 0.42);
  double prev = -1;
  for (const auto& e : events) {
    EXPECT_GT(e.at("seq").number, prev);
    prev = e.at("seq").number;
  }
}

TEST_F(FlightRecorderTest, JsonLastNKeepsOnlyNewestEvents) {
  auto& rec = FlightRecorder::global();
  for (int i = 0; i < 10; ++i) rec.record(FlightKind::Apply, static_cast<double>(i), 0);
  const JsonValue doc = parse_json(rec.json("window", /*last_n=*/4));
  const auto& events = doc.at("events").array;
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events[0].at("a").number, 6);
  EXPECT_DOUBLE_EQ(events[3].at("a").number, 9);
}

TEST_F(FlightRecorderTest, WritePostmortemReportsIoFailureWithoutThrowing) {
  auto& rec = FlightRecorder::global();
  rec.record(FlightKind::Apply);
  EXPECT_FALSE(rec.write_postmortem("/nonexistent-dir/flight.json", "reason"));

  const std::string path = (fs::temp_directory_path() / "gala_flight_ok.json").string();
  EXPECT_TRUE(rec.write_postmortem(path, "reason"));
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const JsonValue doc = parse_json(ss.str());
  EXPECT_EQ(doc.at("events").array.size(), 1u);
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Chaos contract: every injected fault leaves a non-empty post-mortem window.

TEST_F(FlightRecorderTest, EngineRunRecordsIterationEvents) {
  const auto g = gala::testing::small_planted();
  core::GalaConfig cfg;
  (void)core::run_louvain(g, cfg);

  std::set<FlightKind> kinds;
  for (const auto& e : FlightRecorder::global().drain()) kinds.insert(e.kind);
  EXPECT_TRUE(kinds.count(FlightKind::LevelBegin));
  EXPECT_TRUE(kinds.count(FlightKind::IterationBegin));
  EXPECT_TRUE(kinds.count(FlightKind::Decide));
  EXPECT_TRUE(kinds.count(FlightKind::Apply));
  EXPECT_TRUE(kinds.count(FlightKind::IterationEnd));
}

TEST_F(FlightRecorderTest, EveryInjectedFaultProducesNonEmptyPostMortem) {
  const auto g = gala::testing::small_planted();

  resilience::FaultPlan plan;
  plan.seed = 7;
  resilience::FaultRule r;
  r.site = resilience::FaultSite::KernelLaunch;
  r.max_fires = 1;
  plan.rules.push_back(r);
  resilience::ScopedFaultPlan armed(plan);

  const std::string path = (fs::temp_directory_path() / "gala_flight_chaos.json").string();
  resilience::SupervisorConfig sup;
  sup.flight_dump_path = path;
  const auto result = resilience::run_louvain_supervised(g, {}, sup);
  EXPECT_EQ(result.retries, 1);

  // The supervisor dumped the window at the retry decision; the dump must
  // exist, parse, and contain the fault and the retry that answered it.
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::ostringstream ss;
  ss << in.rdbuf();
  const JsonValue doc = parse_json(ss.str());
  EXPECT_EQ(doc.at("flight_schema").number, FlightRecorder::kSchema);
  const auto& events = doc.at("events").array;
  ASSERT_FALSE(events.empty());
  bool saw_fault = false, saw_retry = false;
  for (const auto& e : events) {
    saw_fault |= e.at("kind").string == "fault-fire";
    saw_retry |= e.at("kind").string == "retry";
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_retry);
  EXPECT_NE(doc.at("reason").string.find("retry"), std::string::npos);
  fs::remove(path);
}

TEST_F(FlightRecorderTest, KindNamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (std::uint16_t k = 1; k <= static_cast<std::uint16_t>(FlightKind::HealthOscillation); ++k) {
    const char* name = to_string(static_cast<FlightKind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_FALSE(std::string(name).empty());
    names.insert(name);
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(FlightKind::HealthOscillation));
}

}  // namespace
}  // namespace gala::telemetry
