// Leiden-style refinement (extension): refinement property (every refined
// sub-community is connected and respects phase-1 boundaries) and the
// refine-enabled pipeline.
#include "gala/core/refinement.hpp"

#include <gtest/gtest.h>

#include "gala/core/aggregation.hpp"
#include "gala/core/blas_louvain.hpp"
#include "gala/core/bsp_louvain.hpp"
#include "gala/core/gala.hpp"
#include "gala/core/modularity.hpp"
#include "test_util.hpp"

namespace gala::core {
namespace {

TEST(Refinement, RefinesWithinCommunityBoundaries) {
  const auto g = testing::small_planted(3, 500, 10, 0.25);
  const auto phase1 = bsp_phase1(g, {});
  const auto r = refine_partition(g, phase1.community);
  ASSERT_EQ(r.refined.size(), g.num_vertices());
  // Refinement: same sub-community implies same phase-1 community.
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const vid_t u : g.neighbors(v)) {
      if (r.refined[u] == r.refined[v]) {
        EXPECT_EQ(phase1.community[u], phase1.community[v]);
      }
    }
  }
  EXPECT_GE(r.num_subcommunities, phase1.num_communities);
}

class RefinementConnectivity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RefinementConnectivity, EverySubCommunityIsConnected) {
  const auto g = testing::small_planted(GetParam(), 600, 12, 0.3);
  const auto phase1 = bsp_phase1(g, {});
  const auto r = refine_partition(g, phase1.community, 1.0, GetParam());
  EXPECT_TRUE(is_partition_connected(g, r.refined));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefinementConnectivity, ::testing::Values(1, 2, 3, 4, 5));

TEST(Refinement, SingletonPartitionStaysSingleton) {
  const auto g = testing::two_triangles();
  std::vector<cid_t> singles = {0, 1, 2, 3, 4, 5};
  const auto r = refine_partition(g, singles);
  EXPECT_EQ(r.num_subcommunities, 6u);
  EXPECT_EQ(r.communities_split, 0u);
}

TEST(Refinement, MergesWithinASingleCommunity) {
  // Everything in one community: refinement should still build non-trivial
  // sub-communities out of the triangles.
  const auto g = testing::two_triangles();
  std::vector<cid_t> one(6, 0);
  const auto r = refine_partition(g, one);
  EXPECT_LT(r.num_subcommunities, 6u);
  EXPECT_TRUE(is_partition_connected(g, r.refined));
}

TEST(Refinement, SplitsDisconnectedCommunities) {
  // Two disjoint triangles forced into one community must split.
  graph::GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(3, 5);
  const auto g = b.build();
  std::vector<cid_t> one(6, 0);
  EXPECT_FALSE(is_partition_connected(g, one));
  const auto r = refine_partition(g, one);
  EXPECT_TRUE(is_partition_connected(g, r.refined));
  EXPECT_GE(r.num_subcommunities, 2u);
  EXPECT_NE(r.refined[0], r.refined[3]);
}

TEST(Refinement, DeterministicInSeed) {
  const auto g = testing::small_planted(9, 400, 8, 0.3);
  const auto phase1 = bsp_phase1(g, {});
  const auto a = refine_partition(g, phase1.community, 1.0, 7);
  const auto b = refine_partition(g, phase1.community, 1.0, 7);
  EXPECT_EQ(a.refined, b.refined);
}

TEST(IsPartitionConnected, HandlesIsolatedVertices) {
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  const auto g = b.build();  // vertex 2 isolated
  std::vector<cid_t> comm = {0, 0, 1};
  EXPECT_TRUE(is_partition_connected(g, comm));
  std::vector<cid_t> bad = {0, 1, 0};  // {0,2} disconnected
  EXPECT_FALSE(is_partition_connected(g, bad));
}

// Connectivity validation over *blas-backend* hierarchies: the refinement
// guarantee must survive the linear-algebra engine's phase 1 and its SpGEMM
// contraction, not just the BSP path it was developed against.
class BlasHierarchyConnectivity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlasHierarchyConnectivity, FinalPartitionIsConnected) {
  const auto g = testing::small_planted(GetParam(), 500, 10, 0.3);
  GalaConfig cfg;
  cfg.backend = Backend::Blas;
  cfg.refine = true;
  const auto r = run_louvain(g, cfg);
  EXPECT_TRUE(is_partition_connected(g, r.assignment)) << "seed " << GetParam();
  EXPECT_NEAR(r.modularity, modularity(g, r.assignment), 1e-9);
}

TEST_P(BlasHierarchyConnectivity, EveryLevelOfTheHierarchyIsConnected) {
  // Walk the hierarchy by hand through the blas engine: phase 1, refine,
  // validate, contract through the shared SpGEMM, repeat.
  auto g = testing::small_planted(GetParam() + 100, 450, 9, 0.25);
  BspConfig cfg;
  cfg.parallel = false;
  for (int level = 0; level < 4 && g.num_vertices() > 8; ++level) {
    const auto phase1 = blas_phase1(g, cfg);
    const auto refined = refine_partition(g, phase1.community, 1.0, GetParam());
    EXPECT_TRUE(is_partition_connected(g, refined.refined))
        << "seed " << GetParam() << " level " << level;
    const auto agg = aggregate(g, refined.refined, nullptr, blas::Tuning{});
    if (agg.coarse.num_vertices() == g.num_vertices()) break;
    g = agg.coarse;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlasHierarchyConnectivity,
                         ::testing::Values(21, 22, 23, 24, 25));

TEST(Refinement, PipelineWithRefineReachesComparableQuality) {
  const auto g = testing::small_planted(11, 1000, 12, 0.2);
  GalaConfig plain, leiden;
  leiden.refine = true;
  const auto a = run_louvain(g, plain);
  const auto b = run_louvain(g, leiden);
  EXPECT_GT(b.modularity, 0.95 * a.modularity);
  EXPECT_NEAR(b.modularity, modularity(g, b.assignment), 1e-9);
}

}  // namespace
}  // namespace gala::core
