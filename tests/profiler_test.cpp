// Hardware-counter emulation: every profiler counter checked against a
// hand-computable scenario — coalescing, divergence, bank conflicts, probe
// chains, occupancy, load imbalance, and the roofline report shape.
#include "gala/profiler/profiler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "gala/common/json.hpp"
#include "gala/core/hashtables.hpp"
#include "gala/gpusim/device.hpp"
#include "gala/gpusim/shared_memory.hpp"
#include "gala/gpusim/warp.hpp"

namespace gala {
namespace {

using gpusim::kWarpSize;
using gpusim::MemoryStats;
using gpusim::WarpValues;

// ---------------------------------------------------------------------------
// Coalescing: gather transactions per warp request.

TEST(Coalescing, ConsecutiveAddressesAreOneTransaction) {
  MemoryStats stats;
  WarpValues<std::uint32_t> addrs{};
  for (int i = 0; i < kWarpSize; ++i) addrs[i] = static_cast<std::uint32_t>(i);
  const int transactions = gpusim::warp::gather_transactions(gpusim::kFullMask, addrs, stats);
  EXPECT_EQ(transactions, 1);
  EXPECT_EQ(stats.gather_requests, 1u);
  EXPECT_EQ(stats.gather_transactions, 1u);
  EXPECT_DOUBLE_EQ(stats.coalescing_efficiency(), 1.0);
}

TEST(Coalescing, Stride32IsFullyScattered) {
  MemoryStats stats;
  WarpValues<std::uint32_t> addrs{};
  for (int i = 0; i < kWarpSize; ++i) addrs[i] = static_cast<std::uint32_t>(i * kWarpSize);
  const int transactions = gpusim::warp::gather_transactions(gpusim::kFullMask, addrs, stats);
  EXPECT_EQ(transactions, 32);
  EXPECT_DOUBLE_EQ(stats.coalescing_efficiency(), 1.0 / 32.0);
  EXPECT_DOUBLE_EQ(stats.transactions_per_gather(), 32.0);
}

TEST(Coalescing, EfficiencyDefaultsToPerfectWithNoGathers) {
  MemoryStats stats;
  EXPECT_DOUBLE_EQ(stats.coalescing_efficiency(), 1.0);
}

// ---------------------------------------------------------------------------
// Branch divergence: active-lane fraction per warp-wide issue.

TEST(Divergence, QuarterActiveWarpScoresQuarterEfficiency) {
  MemoryStats stats;
  gpusim::warp::charge_simt_issue(gpusim::warp::first_lanes(8), stats);
  EXPECT_EQ(stats.simt_lane_slots, 32u);
  EXPECT_EQ(stats.simt_active_lanes, 8u);
  EXPECT_DOUBLE_EQ(stats.divergence_efficiency(), 0.25);
}

TEST(Divergence, CollectivesChargeTheirActiveMask) {
  MemoryStats stats;
  WarpValues<double> values{};
  for (int i = 0; i < 16; ++i) values[i] = 1.0;
  const double sum = gpusim::warp::reduce_add(gpusim::warp::first_lanes(16), values, stats);
  EXPECT_DOUBLE_EQ(sum, 16.0);
  EXPECT_DOUBLE_EQ(stats.divergence_efficiency(), 0.5);
}

TEST(Divergence, FullWarpIsPerfect) {
  MemoryStats stats;
  WarpValues<double> values{};
  gpusim::warp::reduce_add(gpusim::kFullMask, values, stats);
  EXPECT_DOUBLE_EQ(stats.divergence_efficiency(), 1.0);
}

// ---------------------------------------------------------------------------
// Shared-memory bank conflicts.

TEST(BankConflicts, WarpWideSameBankSerialisesInto32Waves) {
  MemoryStats stats;
  WarpValues<std::uint64_t> words{};
  // 32 distinct words, all congruent mod 32: one bank, 32 waves.
  for (int i = 0; i < kWarpSize; ++i) words[i] = static_cast<std::uint64_t>(i) * kWarpSize;
  const int waves = gpusim::warp::shared_transactions(gpusim::kFullMask, words, stats);
  EXPECT_EQ(waves, 32);
  EXPECT_EQ(stats.bank_conflicts(), 31u);
  EXPECT_DOUBLE_EQ(stats.bank_conflict_factor(), 32.0);
}

TEST(BankConflicts, ConsecutiveWordsAreConflictFree) {
  MemoryStats stats;
  WarpValues<std::uint64_t> words{};
  for (int i = 0; i < kWarpSize; ++i) words[i] = static_cast<std::uint64_t>(i);
  EXPECT_EQ(gpusim::warp::shared_transactions(gpusim::kFullMask, words, stats), 1);
  EXPECT_EQ(stats.bank_conflicts(), 0u);
  EXPECT_DOUBLE_EQ(stats.bank_conflict_factor(), 1.0);
}

TEST(BankConflicts, SameWordBroadcastsInOneWave) {
  MemoryStats stats;
  WarpValues<std::uint64_t> words{};
  for (int i = 0; i < kWarpSize; ++i) words[i] = 7;
  EXPECT_EQ(gpusim::warp::shared_transactions(gpusim::kFullMask, words, stats), 1);
  EXPECT_EQ(stats.bank_conflicts(), 0u);
}

TEST(BankConflictModel, RegroupsSequentialAccessesIntoWarps) {
  // 32 sequential accesses striding one bank: one warp request, 32 waves.
  MemoryStats conflicted;
  {
    gpusim::BankConflictModel model(conflicted);
    for (int i = 0; i < kWarpSize; ++i) {
      model.observe_word(static_cast<std::uint64_t>(i) * kWarpSize);
    }
  }
  EXPECT_EQ(conflicted.shared_requests, 1u);
  EXPECT_EQ(conflicted.shared_waves, 32u);

  MemoryStats clean;
  {
    gpusim::BankConflictModel model(clean);
    for (int i = 0; i < kWarpSize; ++i) model.observe_word(static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(clean.shared_requests, 1u);
  EXPECT_EQ(clean.shared_waves, 1u);
}

TEST(BankConflictModel, DestructorFlushesAPartialWarp) {
  MemoryStats stats;
  {
    gpusim::BankConflictModel model(stats);
    model.observe_word(0);
    model.observe_word(gpusim::kSharedBanks);  // second word in bank 0
  }
  // Two distinct words in bank 0: one request, two waves.
  EXPECT_EQ(stats.shared_requests, 1u);
  EXPECT_EQ(stats.shared_waves, 2u);
}

// ---------------------------------------------------------------------------
// Hashtable probe chains and occupancy.

struct TableHarness {
  gpusim::SharedMemoryArena arena;
  core::HashScratch scratch;
  MemoryStats stats;

  explicit TableHarness(std::size_t shared_buckets)
      : arena(shared_buckets * sizeof(core::HashBucket)) {}

  core::NeighborCommunityTable make(core::HashTablePolicy policy, vid_t capacity,
                                    std::uint64_t salt = 42) {
    return core::NeighborCommunityTable(policy, arena, scratch, capacity, salt, stats);
  }
};

TEST(ProbeHistogram, RepeatedKeyIsFiveSingleProbeLookups) {
  TableHarness h(16);
  {
    auto table = h.make(core::HashTablePolicy::GlobalOnly, 16);
    for (int i = 0; i < 5; ++i) table.upsert(9, 1.0, [](cid_t) { return 0.0; });
  }
  EXPECT_EQ(h.stats.ht_lookups, 5u);
  EXPECT_EQ(h.stats.ht_probes, 5u);
  EXPECT_EQ(h.stats.ht_probe_hist[1], 5u);
  EXPECT_DOUBLE_EQ(h.stats.mean_probe_length(), 1.0);
}

TEST(ProbeHistogram, HierarchicalFallThroughIsATwoProbeChain) {
  // One shared bucket: the first key claims it, the second key's shared
  // probe misses and falls through to global — a 2-probe chain each access.
  TableHarness h(1);
  {
    auto table = h.make(core::HashTablePolicy::Hierarchical, 16);
    table.upsert(1, 1.0, [](cid_t) { return 0.0; });  // shared, 1 probe
    table.upsert(2, 1.0, [](cid_t) { return 0.0; });  // falls through, 2 probes
    table.upsert(2, 1.0, [](cid_t) { return 0.0; });  // same chain again
  }
  EXPECT_EQ(h.stats.ht_lookups, 3u);
  EXPECT_EQ(h.stats.ht_probe_hist[1], 1u);
  EXPECT_EQ(h.stats.ht_probe_hist[2], 2u);
  EXPECT_DOUBLE_EQ(h.stats.mean_probe_length(), 5.0 / 3.0);
}

TEST(Occupancy, RecordedOncePerTableOnFirstReset) {
  TableHarness h(16);
  {
    auto table = h.make(core::HashTablePolicy::GlobalOnly, 16);
    table.upsert(1, 1.0, [](cid_t) { return 0.0; });
    table.reset();
    table.reset();  // second reset (and the destructor) must not resample
  }
  EXPECT_EQ(h.stats.ht_tables, 1u);
}

TEST(Occupancy, DecileBucketsFollowTheLoadFactor) {
  MemoryStats stats;
  stats.record_table_occupancy(5, 10);   // 50% -> decile 5
  stats.record_table_occupancy(10, 10);  // full -> last bucket
  stats.record_table_occupancy(0, 10);   // empty -> decile 0
  EXPECT_EQ(stats.ht_occupancy_hist[5], 1u);
  EXPECT_EQ(stats.ht_occupancy_hist[10], 1u);
  EXPECT_EQ(stats.ht_occupancy_hist[0], 1u);
  EXPECT_EQ(stats.ht_tables, 3u);
}

// ---------------------------------------------------------------------------
// Gini / DRAM-byte helpers.

TEST(Gini, HandComputedValues) {
  const std::vector<double> skewed{10, 0, 0, 0};
  EXPECT_DOUBLE_EQ(profiler::gini(skewed), 0.75);
  const std::vector<double> equal{3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(profiler::gini(equal), 0.0);
  EXPECT_DOUBLE_EQ(profiler::gini({}), 0.0);
  const std::vector<double> one{5};
  EXPECT_DOUBLE_EQ(profiler::gini(one), 0.0);
}

TEST(DramBytes, FourPerWordEightPerAtomic) {
  MemoryStats stats;
  stats.global_reads = 10;
  stats.global_writes = 5;
  stats.global_atomics = 2;
  stats.shared_reads = 100;  // shared traffic never reaches DRAM
  EXPECT_DOUBLE_EQ(profiler::modeled_dram_bytes(stats), 4.0 * 15 + 8.0 * 2);
}

// ---------------------------------------------------------------------------
// Profiler aggregation and the report document.

class ProfilerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& p = profiler::Profiler::global();
    p.reset();
    p.set_enabled(true);
  }
  void TearDown() override {
    auto& p = profiler::Profiler::global();
    p.set_enabled(false);
    p.reset();
  }
};

TEST_F(ProfilerFixture, DeviceLaunchRecordsLoadImbalance) {
  gpusim::Device device;
  // Block 0 does all the work: per-block cycles [10 * 400, 0, 0, 0].
  device.launch_sequential(
      4,
      [](gpusim::BlockContext& ctx) {
        if (ctx.block_id == 0) ctx.stats->global_reads += 10;
      },
      "imbalance_kernel");
  const auto kernels = profiler::Profiler::global().snapshot();
  ASSERT_EQ(kernels.size(), 1u);
  const auto& k = kernels[0];
  EXPECT_EQ(k.name, "imbalance_kernel");
  EXPECT_EQ(k.launches, 1u);
  EXPECT_EQ(k.blocks, 4u);
  EXPECT_EQ(k.traffic.global_reads, 10u);
  EXPECT_EQ(k.imbalance_samples, 1u);
  EXPECT_DOUBLE_EQ(k.mean_max_over_mean(), 4.0);
  EXPECT_DOUBLE_EQ(k.worst_max_over_mean, 4.0);
  EXPECT_DOUBLE_EQ(k.mean_gini(), 0.75);
}

TEST_F(ProfilerFixture, LaunchesUnderOneNameAggregate) {
  gpusim::Device device;
  const auto body = [](gpusim::BlockContext& ctx) { ctx.stats->global_reads += 1; };
  device.launch_sequential(2, body, "k");
  device.launch_sequential(3, body, "k");
  const auto kernels = profiler::Profiler::global().snapshot();
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_EQ(kernels[0].launches, 2u);
  EXPECT_EQ(kernels[0].blocks, 5u);
  EXPECT_EQ(kernels[0].traffic.global_reads, 5u);
}

TEST_F(ProfilerFixture, DisabledProfilerRecordsNothing) {
  profiler::Profiler::global().set_enabled(false);
  gpusim::Device device;
  device.launch_sequential(
      1, [](gpusim::BlockContext& ctx) { ctx.stats->global_reads += 1; }, "k");
  EXPECT_TRUE(profiler::Profiler::global().snapshot().empty());
}

TEST_F(ProfilerFixture, ReportJsonHasTheDocumentedShape) {
  gpusim::Device device;
  device.launch_sequential(
      2,
      [](gpusim::BlockContext& ctx) {
        ctx.stats->global_reads += 4;
        ctx.stats->register_ops += 8;
        ctx.stats->record_probe_chain(2);
        ctx.stats->record_table_occupancy(1, 2);
      },
      "shape_kernel");
  const JsonValue doc = parse_json(profiler::Profiler::global().report_json());
  EXPECT_EQ(doc.at("profile_schema").number, 1.0);
  EXPECT_DOUBLE_EQ(doc.at("ceilings").at("dram_gbps").number, 1555.0);
  const auto& kernels = doc.at("kernels");
  ASSERT_EQ(kernels.array.size(), 1u);
  const JsonValue& k = kernels.array[0];
  EXPECT_EQ(k.at("name").string, "shape_kernel");
  EXPECT_EQ(k.at("launches").number, 1.0);
  EXPECT_EQ(k.at("counters").at("global_reads").number, 8.0);
  EXPECT_EQ(k.at("hashtable").at("lookups").number, 2.0);
  EXPECT_EQ(k.at("hashtable").at("probe_hist").array.size(), 1u);
  EXPECT_EQ(k.at("hashtable").at("probe_hist").array[0].at("len").number, 2.0);
  EXPECT_EQ(k.at("hashtable").at("probe_hist").array[0].at("count").number, 2.0);
  // dram_bytes = 4 * 8 global reads; AI = 16 register ops / 32 bytes.
  EXPECT_DOUBLE_EQ(k.at("roofline").at("dram_bytes").number, 32.0);
  EXPECT_DOUBLE_EQ(k.at("roofline").at("arithmetic_intensity").number, 0.5);
  EXPECT_EQ(k.at("roofline").at("bound").string, "memory");
  EXPECT_DOUBLE_EQ(k.at("divergence_efficiency").number, 1.0);
  EXPECT_DOUBLE_EQ(k.at("bank_conflict_factor").number, 1.0);
}

TEST_F(ProfilerFixture, ResetForgetsKernelsButKeepsCeilings) {
  profiler::RooflineCeilings custom;
  custom.dram_gbps = 900.0;
  auto& p = profiler::Profiler::global();
  p.set_ceilings(custom);
  gpusim::Device device;
  device.launch_sequential(
      1, [](gpusim::BlockContext& ctx) { ctx.stats->global_reads += 1; }, "k");
  p.reset();
  EXPECT_TRUE(p.snapshot().empty());
  EXPECT_DOUBLE_EQ(p.ceilings().dram_gbps, 900.0);
  p.set_ceilings(profiler::RooflineCeilings{});
}

TEST(MemoryStatsMerge, HistogramsAndCountersAdd) {
  MemoryStats a, b;
  a.record_probe_chain(1);
  b.record_probe_chain(1);
  b.record_probe_chain(30);  // beyond the last bucket boundary? no: bucket 16 absorbs >= 16
  b.simt_lane_slots = 32;
  b.simt_active_lanes = 16;
  a += b;
  EXPECT_EQ(a.ht_lookups, 3u);
  EXPECT_EQ(a.ht_probe_hist[1], 2u);
  EXPECT_EQ(a.ht_probe_hist[MemoryStats::kProbeBuckets - 1], 1u);
  EXPECT_EQ(a.simt_active_lanes, 16u);
}

}  // namespace
}  // namespace gala
