// Unit tests for modularity, gain scoring, and community renumbering.
#include "gala/core/modularity.hpp"

#include <gtest/gtest.h>

#include "gala/graph/generators.hpp"
#include "test_util.hpp"

namespace gala::core {
namespace {

TEST(Modularity, SingletonPartitionOfCliquePair) {
  const auto g = testing::two_triangles();
  // Singletons: Q = 0 - sum (d_v/2m)^2; 2m = 14.
  std::vector<cid_t> singles = {0, 1, 2, 3, 4, 5};
  const wt_t q = modularity(g, singles);
  wt_t expect = 0;
  for (vid_t v = 0; v < 6; ++v) {
    const wt_t f = g.degree(v) / g.two_m();
    expect -= f * f;
  }
  EXPECT_NEAR(q, expect, 1e-12);
}

TEST(Modularity, TwoTrianglePartitionMatchesHandComputation) {
  const auto g = testing::two_triangles();
  std::vector<cid_t> comm = {0, 0, 0, 1, 1, 1};
  // Each triangle: D_C = 6 (3 internal edges twice), D_V = 7, 2m = 14.
  // Q = 2 * (6/14 - (7/14)^2) = 2*(0.428571 - 0.25) = 0.357142...
  EXPECT_NEAR(modularity(g, comm), 2.0 * (6.0 / 14 - 0.25), 1e-12);
}

TEST(Modularity, AllInOneCommunityIsZeroForLooplessGraph) {
  const auto g = testing::two_triangles();
  std::vector<cid_t> comm(6, 0);
  // D_C(C) = 2|E|, D_V(C) = 2|E| -> Q = 1 - 1 = 0.
  EXPECT_NEAR(modularity(g, comm), 0.0, 1e-12);
}

TEST(Modularity, SelfLoopsCountTwiceInInternalWeight) {
  graph::GraphBuilder b(2);
  b.add_edge(0, 1, 1.0);
  b.add_edge(0, 0, 2.0);  // self-loop, weight 2
  const auto g = b.build();
  // |E| = 3, 2|E| = 6; d(0) = 1 + 2*2 = 5, d(1) = 1.
  EXPECT_NEAR(g.two_m(), 6.0, 1e-12);
  EXPECT_NEAR(g.degree(0), 5.0, 1e-12);
  std::vector<cid_t> singles = {0, 1};
  // C0: D_C = 2*2 = 4, D_V = 5; C1: D_C = 0, D_V = 1.
  const wt_t expect = (4.0 / 6 - 25.0 / 36) + (0.0 - 1.0 / 36);
  EXPECT_NEAR(modularity(g, singles), expect, 1e-12);
}

TEST(Modularity, MoveScoreMatchesModularityDelta) {
  // Brute-force check: score difference == |E| * (Q_after - Q_before) when
  // moving one vertex between communities.
  const auto g = testing::small_planted(11, 60, 3, 0.3);
  std::vector<cid_t> comm(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) comm[v] = v % 3;

  std::vector<wt_t> total(3, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) total[comm[v]] += g.degree(v);

  for (vid_t v = 0; v < 10; ++v) {
    const cid_t from = comm[v];
    const cid_t to = (from + 1) % 3;
    wt_t e_from = 0, e_to = 0;
    auto nbrs = g.neighbors(v);
    auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] == v) continue;
      if (comm[nbrs[i]] == from) e_from += ws[i];
      if (comm[nbrs[i]] == to) e_to += ws[i];
    }
    const wt_t q_before = modularity(g, comm);
    comm[v] = to;
    const wt_t q_after = modularity(g, comm);
    comm[v] = from;

    const wt_t score_stay = move_score(e_from, total[from], g.degree(v), g.two_m(), true);
    const wt_t score_move = move_score(e_to, total[to], g.degree(v), g.two_m(), false);
    EXPECT_NEAR((score_move - score_stay) / g.total_weight(), q_after - q_before, 1e-10)
        << "vertex " << v;
  }
}

TEST(RenumberCommunities, CompactsSparseIdsStably) {
  std::vector<cid_t> comm = {7, 3, 7, 9, 3};
  std::vector<cid_t> reps;
  const vid_t k = renumber_communities(comm, &reps);
  EXPECT_EQ(k, 3u);
  EXPECT_EQ(comm, (std::vector<cid_t>{0, 1, 0, 2, 1}));
  EXPECT_EQ(reps, (std::vector<cid_t>{7, 3, 9}));
}

TEST(RenumberCommunities, HandlesIdsBeyondVertexRange) {
  std::vector<cid_t> comm = {1000000, 0, 1000000};
  EXPECT_EQ(renumber_communities(comm), 2u);
  EXPECT_EQ(comm, (std::vector<cid_t>{0, 1, 0}));
}

TEST(CountCommunities, CountsDistinct) {
  std::vector<cid_t> comm = {5, 5, 2, 9, 2};
  EXPECT_EQ(count_communities(comm), 3u);
}

}  // namespace
}  // namespace gala::core
