// Direct executable checks of the paper's theory (§2-§3): Equation 2's gain
// against brute-force modularity deltas, Lemma 5's sufficient condition,
// the Equation 5 -> Equation 6 bound chain, and the stand-in suite's
// fidelity to the per-graph regimes the experiments depend on.
#include <gtest/gtest.h>

#include <map>

#include "gala/core/gala.hpp"
#include "gala/core/kernels.hpp"
#include "gala/core/modularity.hpp"
#include "gala/core/pruning.hpp"
#include "gala/graph/generators.hpp"
#include "gala/graph/standin.hpp"
#include "test_util.hpp"

namespace gala::core {
namespace {

/// Random community state on g with k communities, plus derived quantities.
struct TheoryState {
  std::vector<cid_t> comm;
  std::vector<wt_t> comm_total;
  std::vector<wt_t> weight;  // e_{v,C[v]}
  wt_t min_total = 0;

  TheoryState(const graph::Graph& g, cid_t k, std::uint64_t seed) {
    const vid_t n = g.num_vertices();
    comm.resize(n);
    comm_total.assign(n, 0);
    weight.assign(n, 0);
    Xoshiro256 rng(seed);
    for (vid_t v = 0; v < n; ++v) {
      comm[v] = static_cast<cid_t>(rng.next_below(k));
      comm_total[comm[v]] += g.degree(v);
    }
    for (vid_t v = 0; v < n; ++v) {
      auto nbrs = g.neighbors(v);
      auto ws = g.weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (nbrs[i] != v && comm[nbrs[i]] == comm[v]) weight[v] += ws[i];
      }
    }
    min_total = std::numeric_limits<wt_t>::max();
    for (cid_t c = 0; c < n; ++c) {
      bool used = false;
      for (vid_t v = 0; v < n && !used; ++v) used = comm[v] == c;
      if (used) min_total = std::min(min_total, comm_total[c]);
    }
  }
};

class TheorySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TheorySweep, Equation2GainMatchesBruteForceModularityDelta) {
  // DeltaQ(v -> C) computed by the score formula must equal the actual
  // modularity difference of performing the move, for random moves.
  const auto g = testing::small_planted(GetParam(), 120, 4, 0.35);
  TheoryState st(g, 5, GetParam());
  Xoshiro256 rng(GetParam() ^ 0xbeef);
  for (int trial = 0; trial < 20; ++trial) {
    const auto v = static_cast<vid_t>(rng.next_below(g.num_vertices()));
    const auto to = static_cast<cid_t>(rng.next_below(5));
    const cid_t from = st.comm[v];
    if (to == from) continue;

    wt_t e_to = 0;
    auto nbrs = g.neighbors(v);
    auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] != v && st.comm[nbrs[i]] == to) e_to += ws[i];
    }
    const wt_t score_stay = move_score(st.weight[v], st.comm_total[from], g.degree(v), g.two_m(),
                                       /*in_community=*/true);
    const wt_t score_move = move_score(e_to, st.comm_total[to], g.degree(v), g.two_m(), false);

    const wt_t q_before = modularity(g, st.comm);
    st.comm[v] = to;
    const wt_t q_after = modularity(g, st.comm);
    st.comm[v] = from;

    EXPECT_NEAR(q_after - q_before, (score_move - score_stay) / g.total_weight(), 1e-10)
        << "v=" << v << " to=" << to;
  }
}

TEST_P(TheorySweep, Lemma5EquationSixImpliesNoBeneficialMove) {
  // The Eq. 6 bound chain: whenever mg_is_inactive holds on a random state,
  // *no* neighbouring community beats staying — checked by brute force.
  const auto g = testing::small_planted(GetParam() ^ 0x77, 200, 6, 0.3);
  TheoryState st(g, 8, GetParam());
  std::vector<std::uint8_t> dummy_moved(g.num_vertices(), 0);
  const PruningContext ctx{&g,        st.comm,    st.weight, st.comm_total, st.min_total,
                           g.two_m(), dummy_moved, dummy_moved, 1};

  gpusim::SharedMemoryArena arena(48 * 1024);
  HashScratch scratch;
  gpusim::MemoryStats stats;
  const DecideInput input{&g, st.comm, st.comm_total, g.two_m()};
  int inactive_count = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (!mg_is_inactive(ctx, v)) continue;
    ++inactive_count;
    arena.reset();
    const Decision d =
        hash_decide(input, v, HashTablePolicy::Hierarchical, arena, scratch, 3, stats);
    EXPECT_LE(d.best_score, d.curr_score + 1e-12)
        << "Eq.6 held for v=" << v << " but moving to " << d.best << " would gain";
  }
  // The random state should exercise the predicate at least somewhere.
  // (Not guaranteed for every seed, but holds for the chosen ones.)
  EXPECT_GE(inactive_count, 0);
}

TEST_P(TheorySweep, EquationSixIsLooserThanEquationFive) {
  // Eq. 6 (one global bound) never deactivates a vertex that the exact
  // per-neighbour Eq. 5 check would keep active — i.e. Eq.6-inactive is a
  // subset of Eq.5-inactive.
  const auto g = testing::small_planted(GetParam() ^ 0xaa, 150, 5, 0.3);
  TheoryState st(g, 6, GetParam());
  std::vector<std::uint8_t> dummy(g.num_vertices(), 0);
  const PruningContext ctx{&g,        st.comm, st.weight, st.comm_total, st.min_total,
                           g.two_m(), dummy,   dummy,     1};
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (!mg_is_inactive(ctx, v)) continue;
    // Exact Eq. 5 for every neighbour u.
    const wt_t dv = g.degree(v);
    auto nbrs = g.neighbors(v);
    auto ws = g.weights(v);
    std::map<cid_t, wt_t> e;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] != v) e[st.comm[nbrs[i]]] += ws[i];
    }
    const wt_t e_own = e.count(st.comm[v]) ? e[st.comm[v]] : 0;
    for (const auto& [c, e_c] : e) {
      if (c == st.comm[v]) continue;
      const wt_t lhs =
          e_own - e_c + (st.comm_total[c] - st.comm_total[st.comm[v]]) * dv / g.two_m();
      EXPECT_GE(lhs, -1e-12) << "Eq.5 violated for v=" << v << " c=" << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheorySweep, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(StandInRegimes, ModularityLevelsMatchThePaperTable3) {
  // The experiments depend on the stand-ins landing in the right modularity
  // regimes (sharp UK, blurred TW, social graphs in the 0.6-0.8 band).
  struct Regime {
    const char* abbr;
    double lo, hi;
  };
  const Regime regimes[] = {
      {"FR", 0.55, 0.75}, {"LJ", 0.68, 0.85}, {"OR", 0.58, 0.75}, {"TW", 0.35, 0.60},
      {"UK", 0.93, 1.00}, {"EW", 0.58, 0.78}, {"HW", 0.65, 0.85},
  };
  for (const auto& r : regimes) {
    const auto g = graph::make_standin(r.abbr, 0.15);
    const auto result = run_louvain(g);
    EXPECT_GT(result.modularity, r.lo) << r.abbr;
    EXPECT_LT(result.modularity, r.hi) << r.abbr;
  }
}

TEST(StandInRegimes, TwIsTheBlurriestUkTheSharpest) {
  std::map<std::string, wt_t> q;
  for (const auto& abbr : graph::standin_abbrs()) {
    q[abbr] = run_louvain(graph::make_standin(abbr, 0.12)).modularity;
  }
  for (const auto& [abbr, value] : q) {
    if (abbr != "TW") {
      EXPECT_LT(q["TW"], value) << abbr;
    }
    if (abbr != "UK") {
      EXPECT_GT(q["UK"], value) << abbr;
    }
  }
}

}  // namespace
}  // namespace gala::core
