// The two DecideAndMove kernels against a brute-force reference: identical
// best-community decisions on randomized states, across degrees spanning
// the single-warp and multi-chunk regimes, plus the shared move guard.
#include "gala/core/kernels.hpp"

#include <gtest/gtest.h>

#include <map>

#include "gala/common/prng.hpp"
#include "gala/graph/generators.hpp"
#include "test_util.hpp"

namespace gala::core {
namespace {

/// Brute-force DecideAndMove: exact per-community weights via std::map.
Decision reference_decide(const DecideInput& in, vid_t v) {
  const graph::Graph& g = *in.g;
  const cid_t curr = in.comm[v];
  const wt_t dv = g.degree(v);
  std::map<cid_t, wt_t> acc;
  auto nbrs = g.neighbors(v);
  auto ws = g.weights(v);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] != v) acc[in.comm[nbrs[i]]] += ws[i];
  }
  Decision d;
  d.weight_to_curr = acc.count(curr) ? acc[curr] : 0;
  d.curr_score = move_score(d.weight_to_curr, in.comm_total[curr], dv, in.two_m, true);
  d.best = kInvalidCid;
  for (const auto& [c, w] : acc) {
    const wt_t score = move_score(w, in.comm_total[c], dv, in.two_m, c == curr);
    if (d.best == kInvalidCid || score > d.best_score || (score == d.best_score && c < d.best)) {
      d.best = c;
      d.best_score = score;
    }
  }
  if (d.best == kInvalidCid) {
    d.best = curr;
    d.best_score = d.curr_score;
  }
  return d;
}

/// Randomized state: each vertex in one of k communities.
struct State {
  std::vector<cid_t> comm;
  std::vector<wt_t> comm_total;
};

State random_state(const graph::Graph& g, cid_t k, std::uint64_t seed) {
  State s;
  s.comm.resize(g.num_vertices());
  s.comm_total.assign(g.num_vertices(), 0);
  Xoshiro256 rng(seed);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    s.comm[v] = static_cast<cid_t>(rng.next_below(k));
    s.comm_total[s.comm[v]] += g.degree(v);
  }
  return s;
}

void expect_same_decision(const Decision& got, const Decision& want, vid_t v) {
  EXPECT_EQ(got.best, want.best) << "vertex " << v;
  EXPECT_NEAR(got.best_score, want.best_score, 1e-9) << "vertex " << v;
  EXPECT_NEAR(got.curr_score, want.curr_score, 1e-9) << "vertex " << v;
  EXPECT_NEAR(got.weight_to_curr, want.weight_to_curr, 1e-9) << "vertex " << v;
}

struct KernelCase {
  vid_t n;
  eid_t m;
  cid_t k;
  std::uint64_t seed;
};

class KernelAgreement : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelAgreement, BothKernelsMatchBruteForce) {
  const auto param = GetParam();
  const auto g = graph::erdos_renyi(param.n, param.m, param.seed);
  const State s = random_state(g, param.k, param.seed ^ 7);
  const DecideInput input{&g, s.comm, s.comm_total, g.two_m()};

  gpusim::SharedMemoryArena arena(48 * 1024);
  HashScratch scratch;
  gpusim::MemoryStats stats;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const Decision want = reference_decide(input, v);
    arena.reset();
    expect_same_decision(shuffle_decide(input, v, arena, stats), want, v);
    for (const auto policy : {HashTablePolicy::GlobalOnly, HashTablePolicy::Unified,
                              HashTablePolicy::Hierarchical}) {
      arena.reset();
      expect_same_decision(hash_decide(input, v, policy, arena, scratch, 99, stats), want, v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DegreeRegimes, KernelAgreement,
    ::testing::Values(KernelCase{40, 80, 5, 1},      // small degrees, single warp
                      KernelCase{60, 900, 4, 2},     // medium degrees around 32
                      KernelCase{50, 1100, 12, 3},   // multi-chunk shuffle path
                      KernelCase{30, 420, 29, 4},    // nearly one community per vertex
                      KernelCase{64, 2000, 2, 5}));  // dense, few communities

TEST(Kernels, SelfLoopsAreExcludedFromDecisions) {
  graph::GraphBuilder b(3);
  b.add_edge(0, 0, 100.0);  // huge self-loop must not attract anyone
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  const auto g = b.build();
  State s = random_state(g, 3, 11);
  s.comm = {0, 1, 2};
  s.comm_total.assign(3, 0);
  for (vid_t v = 0; v < 3; ++v) s.comm_total[s.comm[v]] += g.degree(v);
  const DecideInput input{&g, s.comm, s.comm_total, g.two_m()};
  gpusim::SharedMemoryArena arena(48 * 1024);
  HashScratch scratch;
  gpusim::MemoryStats stats;
  const Decision d = shuffle_decide(input, 0, arena, stats);
  // Vertex 0's own self-loop contributes nothing to e_{0,C}.
  EXPECT_DOUBLE_EQ(d.weight_to_curr, 0.0);
  expect_same_decision(d, reference_decide(input, 0), 0);
}

TEST(Kernels, ShuffleChargesRegistersHashChargesTables) {
  const auto g = graph::erdos_renyi(40, 200, 3);
  const State s = random_state(g, 6, 3);
  const DecideInput input{&g, s.comm, s.comm_total, g.two_m()};
  gpusim::SharedMemoryArena arena(48 * 1024);
  HashScratch scratch;

  gpusim::MemoryStats shuffle_stats;
  gpusim::MemoryStats hash_stats;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    arena.reset();
    shuffle_decide(input, v, arena, shuffle_stats);
    arena.reset();
    hash_decide(input, v, HashTablePolicy::Hierarchical, arena, scratch, 1, hash_stats);
  }
  EXPECT_GT(shuffle_stats.shuffle_ops, 0u);
  EXPECT_EQ(hash_stats.shuffle_ops, 0u);
  EXPECT_GT(hash_stats.ht_access_shared + hash_stats.ht_access_global, 0u);
}

TEST(MoveGuard, MovesOnlyOnStrictImprovement) {
  std::vector<vid_t> sizes = {2, 2};
  Decision d;
  d.best = 1;
  d.best_score = 1.0;
  d.curr_score = 1.0;  // tie: stay (Lemma 5 convention)
  EXPECT_EQ(apply_move_guard(d, 0, sizes), 0u);
  d.best_score = 1.5;
  EXPECT_EQ(apply_move_guard(d, 0, sizes), 1u);
  d.best_score = 0.5;
  EXPECT_EQ(apply_move_guard(d, 0, sizes), 0u);
}

TEST(MoveGuard, SingletonSwapOnlyTowardSmallerId) {
  std::vector<vid_t> sizes = {1, 1, 5};
  Decision up;
  up.best = 1;
  up.best_score = 2.0;
  up.curr_score = 0.0;
  EXPECT_EQ(apply_move_guard(up, 0, sizes), 0u) << "singleton->singleton upward blocked";
  Decision down = up;
  down.best = 0;
  EXPECT_EQ(apply_move_guard(down, 1, sizes), 0u) << "downward allowed";
  // Moving into a non-singleton community is always allowed on gain.
  Decision into_big = up;
  into_big.best = 2;
  EXPECT_EQ(apply_move_guard(into_big, 0, sizes), 2u);
}

TEST(MoveGuard, InvalidBestStays) {
  std::vector<vid_t> sizes = {1};
  Decision d;  // best = kInvalidCid
  EXPECT_EQ(apply_move_guard(d, 0, sizes), 0u);
}

}  // namespace
}  // namespace gala::core
