// Multi-GPU layer: collectives, distributed/single-device parity, and the
// dense/sparse synchronisation behaviour.
#include <gtest/gtest.h>

#include <thread>

#include "gala/core/bsp_louvain.hpp"
#include "gala/multigpu/dist_louvain.hpp"
#include "test_util.hpp"

namespace gala::multigpu {
namespace {

TEST(Collectives, AllGatherVConcatenatesInRankOrder) {
  constexpr std::size_t P = 4;
  Communicator comm(P);
  std::vector<std::vector<int>> results(P);
  std::vector<CommStats> stats(P);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < P; ++r) {
    threads.emplace_back([&, r] {
      std::vector<int> local(r + 1, static_cast<int>(r));  // rank r sends r+1 copies of r
      results[r] = comm.all_gather_v<int>(r, local, stats[r]);
    });
  }
  for (auto& t : threads) t.join();
  const std::vector<int> expect = {0, 1, 1, 2, 2, 2, 3, 3, 3, 3};
  for (std::size_t r = 0; r < P; ++r) {
    EXPECT_EQ(results[r], expect) << "rank " << r;
    EXPECT_EQ(stats[r].collectives, 1u);
    EXPECT_EQ(stats[r].bytes, expect.size() * sizeof(int));
    EXPECT_GT(stats[r].modeled_us, 0.0);
  }
}

TEST(Collectives, AllGatherVHandlesEmptyContributions) {
  constexpr std::size_t P = 3;
  Communicator comm(P);
  std::vector<std::vector<double>> results(P);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < P; ++r) {
    threads.emplace_back([&, r] {
      CommStats stats;
      std::vector<double> local;
      if (r == 1) local = {3.5};
      results[r] = comm.all_gather_v<double>(r, local, stats);
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t r = 0; r < P; ++r) EXPECT_EQ(results[r], std::vector<double>{3.5});
}

TEST(Collectives, AllReduceSumIsExactAndRepeatable) {
  constexpr std::size_t P = 4;
  Communicator comm(P);
  std::vector<std::thread> threads;
  std::vector<std::array<double, 3>> data(P);
  for (std::size_t r = 0; r < P; ++r) data[r] = {1.0 * r, 2.0, -1.0 * r};
  for (std::size_t r = 0; r < P; ++r) {
    threads.emplace_back([&, r] {
      CommStats stats;
      // Two rounds: the buffer must be cleanly reset between collectives.
      comm.all_reduce_sum(r, data[r], stats);
      comm.all_reduce_sum(r, data[r], stats);
    });
  }
  for (auto& t : threads) t.join();
  // Round 1: {0+1+2+3, 8, -6} = {6, 8, -6}; round 2 sums the reduced copies.
  for (std::size_t r = 0; r < P; ++r) {
    EXPECT_DOUBLE_EQ(data[r][0], 24.0);
    EXPECT_DOUBLE_EQ(data[r][1], 32.0);
    EXPECT_DOUBLE_EQ(data[r][2], -24.0);
  }
}

TEST(Collectives, AllReduceMin) {
  constexpr std::size_t P = 3;
  Communicator comm(P);
  std::vector<double> results(P);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < P; ++r) {
    threads.emplace_back([&, r] {
      CommStats stats;
      results[r] = comm.all_reduce_min(r, 10.0 - static_cast<double>(r), stats);
    });
  }
  for (auto& t : threads) t.join();
  for (const double v : results) EXPECT_DOUBLE_EQ(v, 8.0);
}

TEST(CommCostModel, AlphaBetaShape) {
  CommCostModel cost;
  EXPECT_DOUBLE_EQ(cost.microseconds(0), cost.alpha_us);
  EXPECT_GT(cost.microseconds(1 << 20), cost.microseconds(1 << 10));
}

class DeviceCounts : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DeviceCounts, MatchesSingleEngineTrajectoryExactly) {
  const auto g = testing::small_planted(41, 800, 16, 0.25);
  core::BspConfig single_cfg;
  single_cfg.parallel = false;
  const auto single = core::bsp_phase1(g, single_cfg);

  DistributedConfig cfg;
  cfg.num_gpus = GetParam();
  const auto dist = distributed_phase1(g, cfg);
  EXPECT_EQ(dist.community, single.community);
  EXPECT_NEAR(dist.modularity, single.modularity, 1e-9);
  EXPECT_EQ(static_cast<std::size_t>(dist.iterations), single.iterations.size());
}

INSTANTIATE_TEST_SUITE_P(OneToEight, DeviceCounts, ::testing::Values(1, 2, 3, 4, 8));

TEST(Distributed, AllSyncModesProduceTheSameResult) {
  const auto g = testing::small_planted(43, 600, 12, 0.3);
  std::vector<std::vector<cid_t>> communities;
  for (const auto mode : {SyncMode::Dense, SyncMode::Sparse, SyncMode::Adaptive}) {
    DistributedConfig cfg;
    cfg.num_gpus = 4;
    cfg.sync = mode;
    communities.push_back(distributed_phase1(g, cfg).community);
  }
  EXPECT_EQ(communities[0], communities[1]);
  EXPECT_EQ(communities[1], communities[2]);
}

TEST(Distributed, AdaptiveSwitchesToSparseInLateIterations) {
  const auto g = testing::small_planted(47, 2000, 20, 0.2);
  DistributedConfig cfg;
  cfg.num_gpus = 4;
  cfg.sync = SyncMode::Adaptive;
  const auto r = distributed_phase1(g, cfg);
  ASSERT_GT(r.iteration_log.size(), 2u);
  // Moves decay over iterations, so the tail must be sparse.
  EXPECT_TRUE(r.iteration_log.back().sparse_sync);
  // Sparse payloads must be smaller than the dense payload for the switch
  // to have been correct.
  const std::uint64_t dense_bytes = static_cast<std::uint64_t>(g.num_vertices()) * sizeof(cid_t);
  for (const auto& it : r.iteration_log) {
    if (it.sparse_sync) {
      EXPECT_LT(it.sync_bytes, dense_bytes);
    }
  }
}

TEST(Distributed, SparseMovesFewerBytesThanDenseOverall) {
  const auto g = testing::small_planted(49, 1500, 15, 0.25);
  auto total_bytes = [&](SyncMode mode) {
    DistributedConfig cfg;
    cfg.num_gpus = 4;
    cfg.sync = mode;
    const auto r = distributed_phase1(g, cfg);
    std::uint64_t bytes = 0;
    for (const auto& it : r.iteration_log) bytes += it.sync_bytes;
    return bytes;
  };
  const auto dense = total_bytes(SyncMode::Dense);
  const auto adaptive = total_bytes(SyncMode::Adaptive);
  EXPECT_LE(adaptive, dense);
}

TEST(Distributed, ComputeTrafficSplitsAcrossDevices) {
  const auto g = testing::small_planted(51, 2000, 20, 0.25);
  DistributedConfig one, four;
  one.num_gpus = 1;
  four.num_gpus = 4;
  const auto r1 = distributed_phase1(g, one);
  const auto r4 = distributed_phase1(g, four);
  // Per-device decide traffic must shrink substantially with more devices.
  EXPECT_LT(r4.max_compute_modeled_ms(), 0.6 * r1.max_compute_modeled_ms());
  // The union of all devices' traffic is ~ the single-device traffic.
  std::uint64_t reads4 = 0;
  for (const auto& d : r4.devices) reads4 += d.traffic.global_reads;
  EXPECT_NEAR(static_cast<double>(reads4),
              static_cast<double>(r1.devices[0].traffic.global_reads),
              0.1 * static_cast<double>(r1.devices[0].traffic.global_reads));
}

TEST(Distributed, PruningStrategiesMatchSingleEngineExactly) {
  // The deterministic strategies must produce the single-engine trajectory
  // under distribution (same decisions, same pruning, exact sync).
  const auto g = testing::small_planted(53, 500, 10, 0.3);
  for (const auto strategy :
       {core::PruningStrategy::None, core::PruningStrategy::Strict,
        core::PruningStrategy::Relaxed, core::PruningStrategy::ModularityGain,
        core::PruningStrategy::MgPlusRelaxed}) {
    core::BspConfig single_cfg;
    single_cfg.pruning = strategy;
    single_cfg.parallel = false;
    const auto single = core::bsp_phase1(g, single_cfg);
    DistributedConfig cfg;
    cfg.num_gpus = 3;
    cfg.pruning = strategy;
    const auto r = distributed_phase1(g, cfg);
    EXPECT_EQ(r.community, single.community) << core::to_string(strategy);
  }
}

TEST(Distributed, RejectsZeroDevices) {
  const auto g = testing::two_triangles();
  DistributedConfig cfg;
  cfg.num_gpus = 0;
  EXPECT_THROW(distributed_phase1(g, cfg), Error);
}

}  // namespace
}  // namespace gala::multigpu
