// Multi-GPU layer: collectives, distributed/single-device parity, and the
// dense/sparse synchronisation behaviour.
#include <gtest/gtest.h>

#include <thread>

#include "gala/core/bsp_louvain.hpp"
#include "gala/multigpu/delta_codec.hpp"
#include "gala/multigpu/dist_louvain.hpp"
#include "test_util.hpp"

namespace gala::multigpu {
namespace {

TEST(Collectives, AllGatherVConcatenatesInRankOrder) {
  constexpr std::size_t P = 4;
  Communicator comm(P);
  std::vector<std::vector<int>> results(P);
  std::vector<CommStats> stats(P);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < P; ++r) {
    threads.emplace_back([&, r] {
      std::vector<int> local(r + 1, static_cast<int>(r));  // rank r sends r+1 copies of r
      results[r] = comm.all_gather_v<int>(r, local, stats[r]);
    });
  }
  for (auto& t : threads) t.join();
  const std::vector<int> expect = {0, 1, 1, 2, 2, 2, 3, 3, 3, 3};
  for (std::size_t r = 0; r < P; ++r) {
    EXPECT_EQ(results[r], expect) << "rank " << r;
    EXPECT_EQ(stats[r].collectives, 1u);
    EXPECT_EQ(stats[r].bytes, expect.size() * sizeof(int));
    EXPECT_GT(stats[r].modeled_us, 0.0);
  }
}

TEST(Collectives, AllGatherVHandlesEmptyContributions) {
  constexpr std::size_t P = 3;
  Communicator comm(P);
  std::vector<std::vector<double>> results(P);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < P; ++r) {
    threads.emplace_back([&, r] {
      CommStats stats;
      std::vector<double> local;
      if (r == 1) local = {3.5};
      results[r] = comm.all_gather_v<double>(r, local, stats);
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t r = 0; r < P; ++r) EXPECT_EQ(results[r], std::vector<double>{3.5});
}

TEST(Collectives, AllReduceSumIsExactAndRepeatable) {
  constexpr std::size_t P = 4;
  Communicator comm(P);
  std::vector<std::thread> threads;
  std::vector<std::array<double, 3>> data(P);
  for (std::size_t r = 0; r < P; ++r) data[r] = {1.0 * r, 2.0, -1.0 * r};
  for (std::size_t r = 0; r < P; ++r) {
    threads.emplace_back([&, r] {
      CommStats stats;
      // Two rounds: the buffer must be cleanly reset between collectives.
      comm.all_reduce_sum(r, data[r], stats);
      comm.all_reduce_sum(r, data[r], stats);
    });
  }
  for (auto& t : threads) t.join();
  // Round 1: {0+1+2+3, 8, -6} = {6, 8, -6}; round 2 sums the reduced copies.
  for (std::size_t r = 0; r < P; ++r) {
    EXPECT_DOUBLE_EQ(data[r][0], 24.0);
    EXPECT_DOUBLE_EQ(data[r][1], 32.0);
    EXPECT_DOUBLE_EQ(data[r][2], -24.0);
  }
}

TEST(Collectives, AllReduceMin) {
  constexpr std::size_t P = 3;
  Communicator comm(P);
  std::vector<double> results(P);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < P; ++r) {
    threads.emplace_back([&, r] {
      CommStats stats;
      results[r] = comm.all_reduce_min(r, 10.0 - static_cast<double>(r), stats);
    });
  }
  for (auto& t : threads) t.join();
  for (const double v : results) EXPECT_DOUBLE_EQ(v, 8.0);
}

TEST(CommCostModel, AlphaBetaShape) {
  CommCostModel cost;
  EXPECT_DOUBLE_EQ(cost.microseconds(0), cost.alpha_us);
  EXPECT_GT(cost.microseconds(1 << 20), cost.microseconds(1 << 10));
}

// Both byte-charging conventions against their closed forms: canonical
// charges the full payload, ring charges the NCCL ring volumes — AllGather
// moves (P-1)/P of the total per device, AllReduce 2·(P-1)/P of its buffer.
TEST(CommCostModel, CanonicalAndRingConventionsMatchClosedForms) {
  constexpr std::size_t P = 4;
  constexpr std::size_t kPerRank = 6;  // ints gathered per rank
  constexpr std::size_t kReduceLen = 5;
  for (const bool ring : {false, true}) {
    CommCostModel cost;
    cost.ring_convention = ring;
    Communicator comm(P, cost);
    std::vector<CommStats> stats(P);
    std::vector<std::thread> threads;
    for (std::size_t r = 0; r < P; ++r) {
      threads.emplace_back([&, r] {
        std::vector<int> local(kPerRank, static_cast<int>(r));
        (void)comm.all_gather_v<int>(r, local, stats[r]);
        std::vector<double> buf(kReduceLen, 1.0);
        comm.all_reduce_sum(r, buf, stats[r]);
        (void)comm.all_reduce_min(r, static_cast<double>(r), stats[r]);
      });
    }
    for (auto& t : threads) t.join();
    const std::size_t gather_total = P * kPerRank * sizeof(int);
    const std::size_t reduce_payload = kReduceLen * sizeof(double);
    const std::size_t min_payload = P * sizeof(double);  // modeled as a scalar gather
    const std::size_t expect =
        ring ? gather_total * (P - 1) / P + 2 * reduce_payload * (P - 1) / P +
                   min_payload * (P - 1) / P
             : gather_total + reduce_payload + min_payload;
    for (std::size_t r = 0; r < P; ++r) {
      EXPECT_EQ(stats[r].bytes, expect) << (ring ? "ring" : "canonical") << " rank " << r;
      EXPECT_EQ(stats[r].collectives, 3u);
    }
  }
}

// The posted (post/complete) form must be byte- and data-identical to the
// blocking form; overlap credit turns modeled time into hidden time without
// touching the byte accounting.
TEST(Collectives, PostCompleteMatchesBlockingAndCreditsOverlap) {
  constexpr std::size_t P = 3;
  Communicator comm(P);
  std::vector<std::vector<int>> results(P);
  std::vector<CommStats> stats(P);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < P; ++r) {
    threads.emplace_back([&, r] {
      std::vector<int> local(r + 1, static_cast<int>(r));
      // Round 1: enough credit to hide the whole collective.
      auto pending = comm.post_gather_v<int>(r, local);
      comm.complete_gather_v<int>(std::move(pending), stats[r], results[r], /*credit=*/1e9);
      EXPECT_FALSE(pending.active());
      // Round 2: zero credit — fully exposed.
      auto pending2 = comm.post_gather_v<int>(r, local);
      std::vector<int> out2;
      comm.complete_gather_v<int>(std::move(pending2), stats[r], out2);
      EXPECT_EQ(out2, results[r]);
    });
  }
  for (auto& t : threads) t.join();
  const std::vector<int> expect = {0, 1, 1, 2, 2, 2};
  const std::size_t round_bytes = expect.size() * sizeof(int);
  for (std::size_t r = 0; r < P; ++r) {
    EXPECT_EQ(results[r], expect);
    EXPECT_EQ(stats[r].collectives, 2u);
    EXPECT_EQ(stats[r].posted, 2u);
    EXPECT_EQ(stats[r].bytes, 2 * round_bytes);
    // Round 1 fully hidden, round 2 fully exposed: hidden == half of modeled.
    EXPECT_NEAR(stats[r].hidden_us, stats[r].modeled_us / 2, 1e-9);
    EXPECT_NEAR(stats[r].wait_us(), stats[r].modeled_us / 2, 1e-9);
    EXPECT_NEAR(stats[r].overlap_ratio(), 0.5, 1e-9);
  }
}

// ---- sparse-delta codec ----------------------------------------------------

TEST(DeltaCodec, RoundTripsEdgeCaseMoveSets) {
  constexpr vid_t n = 32;
  std::vector<MoveRecord> all;
  for (vid_t v = 0; v < n; ++v) all.push_back({v, static_cast<cid_t>(n - 1 - v)});
  const std::vector<std::vector<MoveRecord>> cases = {
      {},                                 // empty move set
      {{7, 3}},                           // single move
      all,                                // every vertex moves
      {{0, 5}, {1, 5}, {31, 5}},          // one destination community
      {{2, 9}, {3, 1}, {5, 9}, {30, 1}},  // repeating dictionary entries
  };
  for (const auto& moves : cases) {
    std::vector<std::byte> wire;
    encode_moves(moves, wire);
    std::vector<MoveRecord> back;
    decode_moves(wire, n, back);
    EXPECT_EQ(back.size(), moves.size());
    EXPECT_TRUE(std::equal(back.begin(), back.end(), moves.begin()));
  }
}

TEST(DeltaCodec, ConcatenatedFramesDecodeInRankOrder) {
  constexpr vid_t n = 100;
  const std::vector<MoveRecord> rank0 = {{1, 4}, {2, 4}, {9, 8}};
  const std::vector<MoveRecord> rank1 = {};  // empty contribution: zero bytes
  const std::vector<MoveRecord> rank2 = {{50, 4}, {77, 12}};
  std::vector<std::byte> wire;
  encode_moves(rank0, wire);
  encode_moves(rank2, wire);  // rank 1 contributed nothing
  (void)rank1;
  std::vector<MoveRecord> back;
  decode_moves(wire, n, back);
  std::vector<MoveRecord> expect = rank0;
  expect.insert(expect.end(), rank2.begin(), rank2.end());
  ASSERT_EQ(back.size(), expect.size());
  EXPECT_TRUE(std::equal(back.begin(), back.end(), expect.begin()));
}

TEST(DeltaCodec, CompressesDenseMoveRuns) {
  // Sorted dense runs with few destinations: the codec's target shape. The
  // encoded frame must be well under the raw 8-byte records.
  constexpr vid_t n = 4096;
  std::vector<MoveRecord> moves;
  for (vid_t v = 0; v < n; v += 2) moves.push_back({v, static_cast<cid_t>(v % 16)});
  std::vector<std::byte> wire;
  encode_moves(moves, wire);
  EXPECT_LT(wire.size(), moves.size() * sizeof(MoveRecord) / 2);
}

TEST(DeltaCodec, EveryTruncationRaisesCollectiveFault) {
  constexpr vid_t n = 48;
  std::vector<MoveRecord> moves;
  for (vid_t v = 0; v < n; v += 2) moves.push_back({v, static_cast<cid_t>(v % 5)});
  std::vector<std::byte> wire;
  encode_moves(moves, wire);
  // len = 0 is excluded: an empty concatenation is the legitimate
  // "no rank moved anything" payload and decodes to zero records.
  for (std::size_t len = 1; len < wire.size(); ++len) {
    std::vector<std::byte> cut(wire.begin(), wire.begin() + len);
    std::vector<MoveRecord> out;
    EXPECT_THROW(decode_moves(cut, n, out), CollectiveFault) << "prefix of " << len << " bytes";
  }
}

TEST(DeltaCodec, RejectsOutOfRangeAndNonMonotoneStreams) {
  constexpr vid_t n = 10;
  std::vector<MoveRecord> out;
  // Vertex id beyond num_vertices: valid frame for a bigger graph, rejected
  // when decoded against the smaller one.
  std::vector<std::byte> wire;
  encode_moves(std::vector<MoveRecord>{{15, 2}}, wire);
  EXPECT_THROW(decode_moves(wire, n, out), CollectiveFault);
  // Encoder refuses non-ascending input outright (it cannot build a frame
  // the decoder would reject).
  std::vector<std::byte> bad;
  EXPECT_THROW(encode_moves(std::vector<MoveRecord>{{5, 1}, {5, 2}}, bad), Error);
  EXPECT_THROW(encode_moves(std::vector<MoveRecord>{{5, 1}, {3, 2}}, bad), Error);
}

class DeviceCounts : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DeviceCounts, MatchesSingleEngineTrajectoryExactly) {
  const auto g = testing::small_planted(41, 800, 16, 0.25);
  core::BspConfig single_cfg;
  single_cfg.parallel = false;
  const auto single = core::bsp_phase1(g, single_cfg);

  DistributedConfig cfg;
  cfg.num_gpus = GetParam();
  const auto dist = distributed_phase1(g, cfg);
  EXPECT_EQ(dist.community, single.community);
  EXPECT_NEAR(dist.modularity, single.modularity, 1e-9);
  EXPECT_EQ(static_cast<std::size_t>(dist.iterations), single.iterations.size());
}

INSTANTIATE_TEST_SUITE_P(OneToEight, DeviceCounts, ::testing::Values(1, 2, 3, 4, 8));

TEST(Distributed, AllSyncModesProduceTheSameResult) {
  const auto g = testing::small_planted(43, 600, 12, 0.3);
  std::vector<std::vector<cid_t>> communities;
  for (const auto mode : {SyncMode::Dense, SyncMode::Sparse, SyncMode::Adaptive}) {
    DistributedConfig cfg;
    cfg.num_gpus = 4;
    cfg.sync = mode;
    communities.push_back(distributed_phase1(g, cfg).community);
  }
  EXPECT_EQ(communities[0], communities[1]);
  EXPECT_EQ(communities[1], communities[2]);
}

TEST(Distributed, AdaptiveSwitchesToSparseInLateIterations) {
  const auto g = testing::small_planted(47, 2000, 20, 0.2);
  DistributedConfig cfg;
  cfg.num_gpus = 4;
  cfg.sync = SyncMode::Adaptive;
  const auto r = distributed_phase1(g, cfg);
  ASSERT_GT(r.iteration_log.size(), 2u);
  // Moves decay over iterations, so the tail must be sparse.
  EXPECT_TRUE(r.iteration_log.back().sparse_sync);
  // Sparse payloads must be smaller than the dense payload for the switch
  // to have been correct.
  const std::uint64_t dense_bytes = static_cast<std::uint64_t>(g.num_vertices()) * sizeof(cid_t);
  for (const auto& it : r.iteration_log) {
    if (it.sparse_sync) {
      EXPECT_LT(it.sync_bytes, dense_bytes);
    }
  }
}

TEST(Distributed, SparseMovesFewerBytesThanDenseOverall) {
  const auto g = testing::small_planted(49, 1500, 15, 0.25);
  auto total_bytes = [&](SyncMode mode) {
    DistributedConfig cfg;
    cfg.num_gpus = 4;
    cfg.sync = mode;
    const auto r = distributed_phase1(g, cfg);
    std::uint64_t bytes = 0;
    for (const auto& it : r.iteration_log) bytes += it.sync_bytes;
    return bytes;
  };
  const auto dense = total_bytes(SyncMode::Dense);
  const auto adaptive = total_bytes(SyncMode::Adaptive);
  EXPECT_LE(adaptive, dense);
}

TEST(Distributed, ComputeTrafficSplitsAcrossDevices) {
  const auto g = testing::small_planted(51, 2000, 20, 0.25);
  DistributedConfig one, four;
  one.num_gpus = 1;
  four.num_gpus = 4;
  const auto r1 = distributed_phase1(g, one);
  const auto r4 = distributed_phase1(g, four);
  // Per-device decide traffic must shrink substantially with more devices.
  EXPECT_LT(r4.max_compute_modeled_ms(), 0.6 * r1.max_compute_modeled_ms());
  // The union of all devices' traffic is the single-device traffic plus the
  // replicated bookkeeping scans (totals/modularity reductions and the
  // next_comm seed copy are per-replica O(n) kernels, so their charge grows
  // with P by design) — decide/emission traffic itself must not duplicate.
  std::uint64_t reads4 = 0;
  for (const auto& d : r4.devices) reads4 += d.traffic.global_reads;
  const auto reads1 = static_cast<double>(r1.devices[0].traffic.global_reads);
  EXPECT_GT(static_cast<double>(reads4), 0.9 * reads1);
  const double replicated_bound =
      4.0 * 4.0 * static_cast<double>(g.num_vertices()) *
      static_cast<double>(r4.iterations);  // 4 ranks x ~4n replicated reads/iter
  EXPECT_LT(static_cast<double>(reads4), 1.1 * reads1 + replicated_bound);
}

TEST(Distributed, PruningStrategiesMatchSingleEngineExactly) {
  // The deterministic strategies must produce the single-engine trajectory
  // under distribution (same decisions, same pruning, exact sync).
  const auto g = testing::small_planted(53, 500, 10, 0.3);
  for (const auto strategy :
       {core::PruningStrategy::None, core::PruningStrategy::Strict,
        core::PruningStrategy::Relaxed, core::PruningStrategy::ModularityGain,
        core::PruningStrategy::MgPlusRelaxed}) {
    core::BspConfig single_cfg;
    single_cfg.pruning = strategy;
    single_cfg.parallel = false;
    const auto single = core::bsp_phase1(g, single_cfg);
    DistributedConfig cfg;
    cfg.num_gpus = 3;
    cfg.pruning = strategy;
    const auto r = distributed_phase1(g, cfg);
    EXPECT_EQ(r.community, single.community) << core::to_string(strategy);
  }
}

TEST(Distributed, OverlapIsBitIdenticalAndHidesCommunication) {
  // Ring of cliques: interior clique vertices have fully rank-local
  // neighbourhoods, so the local frontier covers most of the graph and the
  // windows carry real work into the posted exchanges. Few modeled lanes
  // (a small simulated device) keep the window compute comparable to the
  // collective alpha, the regime overlap exists for.
  const auto g = graph::ring_of_cliques(24, 64);
  DistributedConfig off;
  off.num_gpus = 4;
  off.device.model_parallel_lanes = 128;
  DistributedConfig on = off;
  on.overlap = true;
  const auto r_off = distributed_phase1(g, off);
  const auto r_on = distributed_phase1(g, on);

  EXPECT_EQ(r_on.community, r_off.community);
  EXPECT_EQ(r_on.iterations, r_off.iterations);
  EXPECT_NEAR(r_on.modularity, r_off.modularity, 1e-12);

  double hidden_on = 0, hidden_off = 0;
  std::uint64_t posted_on = 0;
  for (const auto& d : r_on.devices) {
    hidden_on += d.comm.hidden_us;
    posted_on += d.comm.posted;
  }
  for (const auto& d : r_off.devices) hidden_off += d.comm.hidden_us;
  EXPECT_EQ(hidden_off, 0.0);  // blocking runs hide nothing
  EXPECT_GT(hidden_on, 0.0);
  EXPECT_GT(posted_on, 0u);
  // The acceptance bar: exposed communication shrinks by >= 20% on the
  // slowest device, and the end-to-end modeled time never regresses.
  EXPECT_LT(r_on.max_comm_modeled_ms(), 0.8 * r_off.max_comm_modeled_ms());
  EXPECT_LE(r_on.modeled_ms(), r_off.modeled_ms());
  // Hiding time does not change what was charged for the wire.
  for (const auto& d : r_on.devices) {
    EXPECT_NEAR(d.comm_full_modeled_ms(), d.comm_modeled_ms() + d.comm.hidden_us / 1e3, 1e-9);
  }
}

TEST(Distributed, CompressionShrinksSparsePayloadBitIdentically) {
  const auto g = testing::small_planted(59, 1500, 15, 0.25);
  DistributedConfig raw;
  raw.num_gpus = 4;
  raw.sync = SyncMode::Adaptive;
  DistributedConfig packed = raw;
  packed.compress = true;
  const auto r_raw = distributed_phase1(g, raw);
  const auto r_packed = distributed_phase1(g, packed);

  EXPECT_EQ(r_packed.community, r_raw.community);
  EXPECT_EQ(r_packed.iterations, r_raw.iterations);

  std::uint64_t bytes_raw = 0, bytes_packed = 0;
  bool saw_sparse_savings = false;
  for (const auto& it : r_raw.iteration_log) bytes_raw += it.sync_bytes;
  for (const auto& it : r_packed.iteration_log) {
    bytes_packed += it.sync_bytes;
    // The log records both the wire payload and what raw records would have
    // cost. Framing overhead can exceed raw for a handful of movers, but
    // the mid-run sparse iterations must show real savings.
    if (it.sparse_sync && it.sync_bytes < it.sync_raw_bytes) saw_sparse_savings = true;
  }
  EXPECT_TRUE(saw_sparse_savings);
  EXPECT_LT(bytes_packed, bytes_raw);
}

TEST(Distributed, RejectsZeroDevices) {
  const auto g = testing::two_triangles();
  DistributedConfig cfg;
  cfg.num_gpus = 0;
  EXPECT_THROW(distributed_phase1(g, cfg), Error);
}

}  // namespace
}  // namespace gala::multigpu
