// Dendrogram: cuts, monotone coarsening, modularity consistency per level,
// and block-collective traffic accounting.
#include "gala/core/dendrogram.hpp"

#include <gtest/gtest.h>

#include "gala/core/modularity.hpp"
#include "gala/gpusim/block.hpp"
#include "test_util.hpp"

namespace gala::core {
namespace {

TEST(Dendrogram, CutZeroIsSingletons) {
  const auto g = testing::small_planted(3, 300, 6, 0.2);
  const auto d = build_dendrogram(g);
  const auto cut0 = d.cut(0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(cut0[v], v);
}

TEST(Dendrogram, CutsCoarsenMonotonically) {
  const auto g = testing::small_planted(5, 2000, 20, 0.2);
  const auto d = build_dendrogram(g);
  ASSERT_GE(d.num_levels(), 2u);
  vid_t prev_k = g.num_vertices() + 1;
  for (std::size_t depth = 0; depth <= d.num_levels(); ++depth) {
    const vid_t k = count_communities(d.cut(depth));
    EXPECT_LE(k, prev_k) << "depth " << depth;
    prev_k = k;
  }
}

TEST(Dendrogram, DeeperCutsRefine) {
  // A deeper cut merges whole communities of the shallower cut: same cut-d
  // community implies same cut-(d+1) community.
  const auto g = testing::small_planted(7, 1000, 10, 0.25);
  const auto d = build_dendrogram(g);
  ASSERT_GE(d.num_levels(), 2u);
  const auto fine = d.cut(1);
  const auto coarse = d.cut(2);
  std::vector<cid_t> mapped(count_communities(fine), kInvalidCid);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    auto& m = mapped[fine[v]];
    if (m == kInvalidCid) {
      m = coarse[v];
    } else {
      EXPECT_EQ(m, coarse[v]) << "vertex " << v;
    }
  }
}

TEST(Dendrogram, PerLevelModularityMatchesAudit) {
  const auto g = testing::small_planted(9, 800, 8, 0.2);
  const auto d = build_dendrogram(g);
  for (std::size_t depth = 1; depth <= d.num_levels(); ++depth) {
    const auto cut = d.cut(depth);
    EXPECT_NEAR(modularity(g, cut), d.level(depth - 1).modularity, 1e-9) << "depth " << depth;
  }
}

TEST(Dendrogram, CutAtMostRespectsBound) {
  const auto g = testing::small_planted(11, 2000, 25, 0.2);
  const auto d = build_dendrogram(g);
  const vid_t final_k = d.level(d.num_levels() - 1).num_communities;
  const auto cut = d.cut_at_most(final_k * 3);
  const vid_t k = count_communities(cut);
  EXPECT_LE(k, final_k * 3);
  EXPECT_GE(k, final_k);
  // Unsatisfiable bound falls back to the final partition.
  EXPECT_EQ(count_communities(d.cut_at_most(1)), final_k);
}

TEST(Dendrogram, OutOfRangeCutThrows) {
  const auto g = testing::small_planted(13);
  const auto d = build_dendrogram(g);
  EXPECT_THROW(d.cut(d.num_levels() + 1), Error);
  EXPECT_THROW(d.level(d.num_levels()), Error);
}

TEST(BlockCollectives, TreeReductionChargesLogRounds) {
  gpusim::MemoryStats stats;
  EXPECT_EQ(gpusim::block::charge_tree_reduction(1, stats), 0);
  EXPECT_EQ(stats.shared_reads, 0u);
  EXPECT_EQ(gpusim::block::charge_tree_reduction(256, stats), 8);
  EXPECT_GT(stats.shared_reads, 256u);
}

TEST(BlockCollectives, ArgmaxAndSumAreCorrect) {
  gpusim::MemoryStats stats;
  const std::vector<double> values = {1.0, 5.0, 3.0, 5.0};
  EXPECT_EQ(gpusim::block::reduce_argmax<double>(values, stats), 1u);  // tie -> lower index
  EXPECT_DOUBLE_EQ(gpusim::block::reduce_add<double>(values, stats), 14.0);
  const auto scan = gpusim::block::exclusive_scan<double>(values, stats);
  EXPECT_EQ(scan, (std::vector<double>{0.0, 1.0, 6.0, 9.0}));
}

}  // namespace
}  // namespace gala::core
