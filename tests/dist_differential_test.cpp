// Randomized differential harness for the distributed engine: every
// distributed configuration — device counts, sync modes, pruning and
// hashtable policies, overlap and compression on or off — must produce a
// partition bit-identical to the single-GPU engine's sequential trajectory.
//
// The base seed rotates in CI (GALA_DIFF_SEED, derived from the commit SHA)
// so every run explores fresh graphs; on failure each assertion prints the
// reproducing (seed, config) tuple. Re-run locally with
//   GALA_DIFF_SEED=<seed> ./dist_differential_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "gala/core/bsp_louvain.hpp"
#include "gala/governor/governor.hpp"
#include "gala/graph/generators.hpp"
#include "gala/memtrace/memtrace.hpp"
#include "gala/multigpu/delta_codec.hpp"
#include "gala/multigpu/dist_louvain.hpp"
#include "test_util.hpp"

namespace gala::multigpu {
namespace {

std::uint64_t base_seed() {
  if (const char* env = std::getenv("GALA_DIFF_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260807ULL;  // fixed default: local runs are reproducible as-is
}

/// One trial's generated graph plus everything needed to reproduce it.
struct TrialGraph {
  graph::Graph g;
  std::string recipe;
};

TrialGraph make_graph(std::uint64_t seed) {
  // Alternate generator families so the harness sees both community-
  // structured and unstructured topologies (the sync payloads differ a lot).
  const std::uint64_t pick = splitmix64(seed);
  std::ostringstream recipe;
  if (pick % 2 == 0) {
    graph::PlantedPartitionParams p;
    p.num_vertices = 100 + static_cast<vid_t>(splitmix64(seed ^ 1) % 400);
    p.num_communities = 4 + static_cast<vid_t>(splitmix64(seed ^ 2) % 12);
    p.avg_degree = 6.0 + static_cast<double>(splitmix64(seed ^ 3) % 10);
    p.mixing = 0.1 + 0.05 * static_cast<double>(splitmix64(seed ^ 4) % 6);
    p.seed = seed;
    recipe << "planted{n=" << p.num_vertices << " k=" << p.num_communities
           << " deg=" << p.avg_degree << " mix=" << p.mixing << " seed=" << seed << "}";
    return {graph::planted_partition(p), recipe.str()};
  }
  const vid_t n = 60 + static_cast<vid_t>(splitmix64(seed ^ 5) % 300);
  const eid_t m = static_cast<eid_t>(n) * (2 + splitmix64(seed ^ 6) % 5);
  recipe << "erdos_renyi{n=" << n << " m=" << m << " seed=" << seed << "}";
  return {graph::erdos_renyi(n, m, seed), recipe.str()};
}

std::string repro_tuple(std::uint64_t seed, const std::string& graph_recipe,
                        const DistributedConfig& cfg) {
  std::ostringstream os;
  os << "repro: GALA_DIFF_SEED=" << base_seed() << " trial_seed=" << seed << " graph="
     << graph_recipe << " P=" << cfg.num_gpus << " sync=" << to_string(cfg.sync)
     << " pruning=" << core::to_string(cfg.pruning)
     << " hashtable=" << core::to_string(cfg.hashtable) << " overlap=" << cfg.overlap
     << " compress=" << cfg.compress;
  return os.str();
}

/// Reference trajectory: the sequential single-GPU engine with the same
/// policy knobs (deterministic launch order, so its partition is exact).
core::Phase1Result single_reference(const graph::Graph& g, const DistributedConfig& cfg) {
  core::BspConfig single;
  single.pruning = cfg.pruning;
  single.kernel = cfg.kernel;
  single.hashtable = cfg.hashtable;
  single.shuffle_degree_limit = cfg.shuffle_degree_limit;
  single.resolution = cfg.resolution;
  single.theta = cfg.theta;
  single.max_iterations = cfg.max_iterations;
  single.seed = cfg.seed;
  single.pm_alpha = cfg.pm_alpha;
  single.parallel = false;
  return core::bsp_phase1(g, single);
}

TEST(DistDifferential, RandomizedTrialsMatchSingleEngineBitIdentically) {
  const std::uint64_t base = base_seed();
  std::cout << "[harness] GALA_DIFF_SEED=" << base << "\n";
  constexpr int kTrials = 8;
  const core::PruningStrategy strategies[] = {
      core::PruningStrategy::None,          core::PruningStrategy::Strict,
      core::PruningStrategy::Relaxed,       core::PruningStrategy::ModularityGain,
      core::PruningStrategy::MgPlusRelaxed,
  };
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::uint64_t seed = splitmix64(base ^ (0x9e3779b97f4a7c15ULL * (trial + 1)));
    const TrialGraph tg = make_graph(seed);

    DistributedConfig proto;
    proto.pruning = strategies[trial % std::size(strategies)];
    proto.hashtable = static_cast<core::HashTablePolicy>(trial % 3);
    proto.seed = seed;
    const auto reference = single_reference(tg.g, proto);

    for (const std::size_t P : {1, 2, 4}) {
      for (const auto sync : {SyncMode::Dense, SyncMode::Sparse, SyncMode::Adaptive}) {
        for (const bool overlap : {false, true}) {
          for (const bool compress : {false, true}) {
            DistributedConfig cfg = proto;
            cfg.num_gpus = P;
            cfg.sync = sync;
            cfg.overlap = overlap;
            cfg.compress = compress;
            const auto dist = distributed_phase1(tg.g, cfg);
            ASSERT_EQ(dist.community, reference.community)
                << repro_tuple(seed, tg.recipe, cfg);
            ASSERT_EQ(static_cast<std::size_t>(dist.iterations), reference.iterations.size())
                << repro_tuple(seed, tg.recipe, cfg);
            ASSERT_NEAR(dist.modularity, reference.modularity, 1e-9)
                << repro_tuple(seed, tg.recipe, cfg);
          }
        }
      }
    }
  }
}

TEST(DistDifferential, ProbabilisticPruningIsConfigInvariantAcrossTheGrid) {
  // PM pruning draws its per-iteration coins from the engine's own stream,
  // so it does not line up with the single engine — but every distributed
  // configuration must still agree with every other one bit-for-bit.
  const std::uint64_t base = base_seed();
  for (int trial = 0; trial < 3; ++trial) {
    const std::uint64_t seed = splitmix64(base ^ (0xbf58476d1ce4e5b9ULL * (trial + 1)));
    const TrialGraph tg = make_graph(seed);
    DistributedConfig proto;
    proto.pruning = core::PruningStrategy::Probabilistic;
    proto.seed = seed;
    proto.num_gpus = 1;
    proto.sync = SyncMode::Dense;
    const auto reference = distributed_phase1(tg.g, proto);
    for (const std::size_t P : {2, 4}) {
      for (const auto sync : {SyncMode::Sparse, SyncMode::Adaptive}) {
        for (const bool overlap : {false, true}) {
          DistributedConfig cfg = proto;
          cfg.num_gpus = P;
          cfg.sync = sync;
          cfg.overlap = overlap;
          cfg.compress = true;
          const auto dist = distributed_phase1(tg.g, cfg);
          ASSERT_EQ(dist.community, reference.community) << repro_tuple(seed, tg.recipe, cfg);
        }
      }
    }
  }
}

TEST(DistDifferential, FullPolicyGridOnFixedGraph) {
  // Exhaustive (non-random) sweep on one fixed mid-size graph: the
  // acceptance grid of pruning × hashtable × sync × overlap × compress.
  const auto g = gala::testing::small_planted(61, 300, 8, 0.25);
  const core::PruningStrategy strategies[] = {
      core::PruningStrategy::None,          core::PruningStrategy::Strict,
      core::PruningStrategy::Relaxed,       core::PruningStrategy::ModularityGain,
      core::PruningStrategy::MgPlusRelaxed,
  };
  const core::HashTablePolicy hashtables[] = {
      core::HashTablePolicy::GlobalOnly,
      core::HashTablePolicy::Unified,
      core::HashTablePolicy::Hierarchical,
  };
  for (const auto pruning : strategies) {
    for (const auto hashtable : hashtables) {
      DistributedConfig proto;
      proto.pruning = pruning;
      proto.hashtable = hashtable;
      const auto reference = single_reference(g, proto);
      for (const auto sync : {SyncMode::Dense, SyncMode::Sparse, SyncMode::Adaptive}) {
        for (const bool overlap : {false, true}) {
          for (const bool compress : {false, true}) {
            DistributedConfig cfg = proto;
            cfg.num_gpus = 3;
            cfg.sync = sync;
            cfg.overlap = overlap;
            cfg.compress = compress;
            const auto dist = distributed_phase1(g, cfg);
            ASSERT_EQ(dist.community, reference.community) << repro_tuple(0, "fixed", cfg);
          }
        }
      }
    }
  }
}

TEST(DistDifferential, BudgetSweepKeepsEveryEngineBitIdentical) {
  // Memory pressure must never change the answer: the governor's ladder
  // (global-only tables, forced sparse sync, chunked frontiers) is exercised
  // by sweeping budgets from the unbudgeted peak down to the minimum
  // feasible one, on both the single engine and P=4 overlapped, and every
  // governed partition must equal the ungoverned single-engine reference.
  const auto g = gala::testing::small_planted(61, 300, 8, 0.25);
  DistributedConfig proto;  // defaults: MG pruning, hierarchical tables
  const auto reference = single_reference(g, proto);

  const auto run_dist = [&g, &proto](std::size_t P, bool overlap) {
    DistributedConfig cfg = proto;
    cfg.num_gpus = P;
    cfg.overlap = overlap;
    cfg.compress = overlap;
    memtrace::MemRegistry::global().reset();
    return distributed_phase1(g, cfg).community;
  };
  for (const auto& [P, overlap] : {std::pair<std::size_t, bool>{1, false}, {4, true}}) {
    ASSERT_EQ(run_dist(P, overlap), reference.community) << "ungoverned P=" << P;
    const std::uint64_t peak = memtrace::MemRegistry::global().report().peak_total_bytes();
    ASSERT_GT(peak, 0u);

    const auto feasible = [&](std::uint64_t budget) {
      governor::BudgetConfig cfg;
      cfg.total_bytes = budget;
      governor::ScopedBudget scoped(cfg);
      std::vector<cid_t> partition;
      try {
        partition = run_dist(P, overlap);
      } catch (const ResourceExhausted&) {
        return false;
      }
      const auto rep = memtrace::MemRegistry::global().report();
      return rep.peak_total_bytes() <= budget && rep.leak_free() &&
             partition == reference.community;
    };
    const std::uint64_t min_budget = governor::min_feasible_budget(peak, feasible);
    ASSERT_GT(min_budget, 0u) << "P=" << P << " overlap=" << overlap
                              << ": even the unbudgeted peak was infeasible";
    for (const std::uint64_t budget :
         {std::max(peak, min_budget), std::max(peak * 3 / 4, min_budget),
          std::max(peak / 2, min_budget), min_budget}) {
      EXPECT_TRUE(feasible(budget)) << "P=" << P << " overlap=" << overlap
                                    << " budget=" << budget << " peak=" << peak
                                    << " min_feasible=" << min_budget;
    }
  }
}

TEST(DistDifferential, CodecRoundTripsRandomMoveSets) {
  const std::uint64_t base = base_seed();
  for (int trial = 0; trial < 32; ++trial) {
    const std::uint64_t seed = splitmix64(base ^ (0x94d049bb133111ebULL * (trial + 1)));
    const vid_t n = 16 + static_cast<vid_t>(splitmix64(seed) % 5000);
    // Random sorted subset of [0, n) with random destinations.
    std::vector<MoveRecord> moves;
    std::uint64_t s = seed;
    for (vid_t v = 0; v < n; ++v) {
      s = splitmix64(s);
      if (s % 100 < 23) moves.push_back({v, static_cast<cid_t>(splitmix64(s ^ v) % n)});
    }
    std::vector<std::byte> wire;
    encode_moves(moves, wire);
    std::vector<MoveRecord> back;
    decode_moves(wire, n, back);
    ASSERT_EQ(back.size(), moves.size()) << "trial_seed=" << seed << " n=" << n;
    ASSERT_TRUE(std::equal(back.begin(), back.end(), moves.begin()))
        << "trial_seed=" << seed << " n=" << n;
  }
}

TEST(DistDifferential, CodecRejectsEverySingleBitFlip) {
  // A corrupted payload must raise CollectiveFault, never decode garbage.
  const std::uint64_t seed = splitmix64(base_seed() ^ 0xd6e8feb86659fd93ULL);
  constexpr vid_t n = 64;
  std::vector<MoveRecord> moves;
  for (vid_t v = 0; v < n; v += 3) moves.push_back({v, static_cast<cid_t>((v * 7) % n)});
  std::vector<std::byte> wire;
  encode_moves(moves, wire);
  (void)seed;
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::byte> corrupt = wire;
      corrupt[byte] ^= static_cast<std::byte>(1 << bit);
      std::vector<MoveRecord> out;
      EXPECT_THROW(decode_moves(corrupt, n, out), CollectiveFault)
          << "flip at byte " << byte << " bit " << bit << " decoded without fault";
    }
  }
}

}  // namespace
}  // namespace gala::multigpu
