file(REMOVE_RECURSE
  "CMakeFiles/gala_test.dir/gala_test.cpp.o"
  "CMakeFiles/gala_test.dir/gala_test.cpp.o.d"
  "gala_test"
  "gala_test.pdb"
  "gala_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gala_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
