# Empty dependencies file for gala_test.
# This may be replaced when dependencies are built.
