file(REMOVE_RECURSE
  "CMakeFiles/config_grid_test.dir/config_grid_test.cpp.o"
  "CMakeFiles/config_grid_test.dir/config_grid_test.cpp.o.d"
  "config_grid_test"
  "config_grid_test.pdb"
  "config_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
