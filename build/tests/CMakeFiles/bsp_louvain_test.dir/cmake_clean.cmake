file(REMOVE_RECURSE
  "CMakeFiles/bsp_louvain_test.dir/bsp_louvain_test.cpp.o"
  "CMakeFiles/bsp_louvain_test.dir/bsp_louvain_test.cpp.o.d"
  "bsp_louvain_test"
  "bsp_louvain_test.pdb"
  "bsp_louvain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsp_louvain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
