# Empty dependencies file for bsp_louvain_test.
# This may be replaced when dependencies are built.
