
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/refinement_test.cpp" "tests/CMakeFiles/refinement_test.dir/refinement_test.cpp.o" "gcc" "tests/CMakeFiles/refinement_test.dir/refinement_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gala/core/CMakeFiles/gala_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gala/graph/CMakeFiles/gala_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/gala/gpusim/CMakeFiles/gala_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/gala/common/CMakeFiles/gala_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gala/metrics/CMakeFiles/gala_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/gala/metrics/CMakeFiles/gala_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/gala/baselines/CMakeFiles/gala_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/gala/multigpu/CMakeFiles/gala_multigpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
