file(REMOVE_RECURSE
  "CMakeFiles/nmi_test.dir/nmi_test.cpp.o"
  "CMakeFiles/nmi_test.dir/nmi_test.cpp.o.d"
  "nmi_test"
  "nmi_test.pdb"
  "nmi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
