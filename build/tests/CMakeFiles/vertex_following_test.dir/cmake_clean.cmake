file(REMOVE_RECURSE
  "CMakeFiles/vertex_following_test.dir/vertex_following_test.cpp.o"
  "CMakeFiles/vertex_following_test.dir/vertex_following_test.cpp.o.d"
  "vertex_following_test"
  "vertex_following_test.pdb"
  "vertex_following_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vertex_following_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
