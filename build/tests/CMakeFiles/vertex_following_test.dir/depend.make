# Empty dependencies file for vertex_following_test.
# This may be replaced when dependencies are built.
