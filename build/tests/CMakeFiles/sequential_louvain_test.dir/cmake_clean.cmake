file(REMOVE_RECURSE
  "CMakeFiles/sequential_louvain_test.dir/sequential_louvain_test.cpp.o"
  "CMakeFiles/sequential_louvain_test.dir/sequential_louvain_test.cpp.o.d"
  "sequential_louvain_test"
  "sequential_louvain_test.pdb"
  "sequential_louvain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequential_louvain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
