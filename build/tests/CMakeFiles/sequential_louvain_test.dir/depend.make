# Empty dependencies file for sequential_louvain_test.
# This may be replaced when dependencies are built.
