file(REMOVE_RECURSE
  "CMakeFiles/formats_reorder_test.dir/formats_reorder_test.cpp.o"
  "CMakeFiles/formats_reorder_test.dir/formats_reorder_test.cpp.o.d"
  "formats_reorder_test"
  "formats_reorder_test.pdb"
  "formats_reorder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formats_reorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
