file(REMOVE_RECURSE
  "CMakeFiles/dendrogram_test.dir/dendrogram_test.cpp.o"
  "CMakeFiles/dendrogram_test.dir/dendrogram_test.cpp.o.d"
  "dendrogram_test"
  "dendrogram_test.pdb"
  "dendrogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dendrogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
