# Empty dependencies file for gala.
# This may be replaced when dependencies are built.
