file(REMOVE_RECURSE
  "CMakeFiles/gala.dir/gala_cli.cpp.o"
  "CMakeFiles/gala.dir/gala_cli.cpp.o.d"
  "gala"
  "gala.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gala.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
