# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("gala/common")
subdirs("gala/graph")
subdirs("gala/gpusim")
subdirs("gala/metrics")
subdirs("gala/core")
subdirs("gala/multigpu")
subdirs("gala/baselines")
