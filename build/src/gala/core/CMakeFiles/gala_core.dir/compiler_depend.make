# Empty compiler generated dependencies file for gala_core.
# This may be replaced when dependencies are built.
