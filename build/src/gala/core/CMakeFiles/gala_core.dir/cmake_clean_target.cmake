file(REMOVE_RECURSE
  "libgala_core.a"
)
