
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gala/core/aggregation.cpp" "src/gala/core/CMakeFiles/gala_core.dir/aggregation.cpp.o" "gcc" "src/gala/core/CMakeFiles/gala_core.dir/aggregation.cpp.o.d"
  "/root/repo/src/gala/core/bsp_louvain.cpp" "src/gala/core/CMakeFiles/gala_core.dir/bsp_louvain.cpp.o" "gcc" "src/gala/core/CMakeFiles/gala_core.dir/bsp_louvain.cpp.o.d"
  "/root/repo/src/gala/core/consensus.cpp" "src/gala/core/CMakeFiles/gala_core.dir/consensus.cpp.o" "gcc" "src/gala/core/CMakeFiles/gala_core.dir/consensus.cpp.o.d"
  "/root/repo/src/gala/core/dendrogram.cpp" "src/gala/core/CMakeFiles/gala_core.dir/dendrogram.cpp.o" "gcc" "src/gala/core/CMakeFiles/gala_core.dir/dendrogram.cpp.o.d"
  "/root/repo/src/gala/core/gala.cpp" "src/gala/core/CMakeFiles/gala_core.dir/gala.cpp.o" "gcc" "src/gala/core/CMakeFiles/gala_core.dir/gala.cpp.o.d"
  "/root/repo/src/gala/core/hashtables.cpp" "src/gala/core/CMakeFiles/gala_core.dir/hashtables.cpp.o" "gcc" "src/gala/core/CMakeFiles/gala_core.dir/hashtables.cpp.o.d"
  "/root/repo/src/gala/core/incremental.cpp" "src/gala/core/CMakeFiles/gala_core.dir/incremental.cpp.o" "gcc" "src/gala/core/CMakeFiles/gala_core.dir/incremental.cpp.o.d"
  "/root/repo/src/gala/core/kernels.cpp" "src/gala/core/CMakeFiles/gala_core.dir/kernels.cpp.o" "gcc" "src/gala/core/CMakeFiles/gala_core.dir/kernels.cpp.o.d"
  "/root/repo/src/gala/core/modularity.cpp" "src/gala/core/CMakeFiles/gala_core.dir/modularity.cpp.o" "gcc" "src/gala/core/CMakeFiles/gala_core.dir/modularity.cpp.o.d"
  "/root/repo/src/gala/core/pruning.cpp" "src/gala/core/CMakeFiles/gala_core.dir/pruning.cpp.o" "gcc" "src/gala/core/CMakeFiles/gala_core.dir/pruning.cpp.o.d"
  "/root/repo/src/gala/core/refinement.cpp" "src/gala/core/CMakeFiles/gala_core.dir/refinement.cpp.o" "gcc" "src/gala/core/CMakeFiles/gala_core.dir/refinement.cpp.o.d"
  "/root/repo/src/gala/core/sequential_louvain.cpp" "src/gala/core/CMakeFiles/gala_core.dir/sequential_louvain.cpp.o" "gcc" "src/gala/core/CMakeFiles/gala_core.dir/sequential_louvain.cpp.o.d"
  "/root/repo/src/gala/core/vertex_following.cpp" "src/gala/core/CMakeFiles/gala_core.dir/vertex_following.cpp.o" "gcc" "src/gala/core/CMakeFiles/gala_core.dir/vertex_following.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gala/common/CMakeFiles/gala_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gala/graph/CMakeFiles/gala_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/gala/gpusim/CMakeFiles/gala_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/gala/metrics/CMakeFiles/gala_quality.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
