file(REMOVE_RECURSE
  "CMakeFiles/gala_core.dir/aggregation.cpp.o"
  "CMakeFiles/gala_core.dir/aggregation.cpp.o.d"
  "CMakeFiles/gala_core.dir/bsp_louvain.cpp.o"
  "CMakeFiles/gala_core.dir/bsp_louvain.cpp.o.d"
  "CMakeFiles/gala_core.dir/consensus.cpp.o"
  "CMakeFiles/gala_core.dir/consensus.cpp.o.d"
  "CMakeFiles/gala_core.dir/dendrogram.cpp.o"
  "CMakeFiles/gala_core.dir/dendrogram.cpp.o.d"
  "CMakeFiles/gala_core.dir/gala.cpp.o"
  "CMakeFiles/gala_core.dir/gala.cpp.o.d"
  "CMakeFiles/gala_core.dir/hashtables.cpp.o"
  "CMakeFiles/gala_core.dir/hashtables.cpp.o.d"
  "CMakeFiles/gala_core.dir/incremental.cpp.o"
  "CMakeFiles/gala_core.dir/incremental.cpp.o.d"
  "CMakeFiles/gala_core.dir/kernels.cpp.o"
  "CMakeFiles/gala_core.dir/kernels.cpp.o.d"
  "CMakeFiles/gala_core.dir/modularity.cpp.o"
  "CMakeFiles/gala_core.dir/modularity.cpp.o.d"
  "CMakeFiles/gala_core.dir/pruning.cpp.o"
  "CMakeFiles/gala_core.dir/pruning.cpp.o.d"
  "CMakeFiles/gala_core.dir/refinement.cpp.o"
  "CMakeFiles/gala_core.dir/refinement.cpp.o.d"
  "CMakeFiles/gala_core.dir/sequential_louvain.cpp.o"
  "CMakeFiles/gala_core.dir/sequential_louvain.cpp.o.d"
  "CMakeFiles/gala_core.dir/vertex_following.cpp.o"
  "CMakeFiles/gala_core.dir/vertex_following.cpp.o.d"
  "libgala_core.a"
  "libgala_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gala_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
