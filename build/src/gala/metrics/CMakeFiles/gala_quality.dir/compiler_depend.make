# Empty compiler generated dependencies file for gala_quality.
# This may be replaced when dependencies are built.
