file(REMOVE_RECURSE
  "libgala_quality.a"
)
