file(REMOVE_RECURSE
  "CMakeFiles/gala_quality.dir/ari.cpp.o"
  "CMakeFiles/gala_quality.dir/ari.cpp.o.d"
  "CMakeFiles/gala_quality.dir/nmi.cpp.o"
  "CMakeFiles/gala_quality.dir/nmi.cpp.o.d"
  "libgala_quality.a"
  "libgala_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gala_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
