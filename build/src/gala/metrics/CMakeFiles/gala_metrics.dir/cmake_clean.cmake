file(REMOVE_RECURSE
  "CMakeFiles/gala_metrics.dir/confusion.cpp.o"
  "CMakeFiles/gala_metrics.dir/confusion.cpp.o.d"
  "CMakeFiles/gala_metrics.dir/report.cpp.o"
  "CMakeFiles/gala_metrics.dir/report.cpp.o.d"
  "libgala_metrics.a"
  "libgala_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gala_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
