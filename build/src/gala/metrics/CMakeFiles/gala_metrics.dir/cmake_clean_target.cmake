file(REMOVE_RECURSE
  "libgala_metrics.a"
)
