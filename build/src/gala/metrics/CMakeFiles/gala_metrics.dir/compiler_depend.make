# Empty compiler generated dependencies file for gala_metrics.
# This may be replaced when dependencies are built.
