file(REMOVE_RECURSE
  "CMakeFiles/gala_common.dir/thread_pool.cpp.o"
  "CMakeFiles/gala_common.dir/thread_pool.cpp.o.d"
  "libgala_common.a"
  "libgala_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gala_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
