file(REMOVE_RECURSE
  "libgala_common.a"
)
