# Empty compiler generated dependencies file for gala_common.
# This may be replaced when dependencies are built.
