file(REMOVE_RECURSE
  "libgala_graph.a"
)
