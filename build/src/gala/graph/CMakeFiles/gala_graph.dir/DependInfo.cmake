
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gala/graph/csr.cpp" "src/gala/graph/CMakeFiles/gala_graph.dir/csr.cpp.o" "gcc" "src/gala/graph/CMakeFiles/gala_graph.dir/csr.cpp.o.d"
  "/root/repo/src/gala/graph/formats.cpp" "src/gala/graph/CMakeFiles/gala_graph.dir/formats.cpp.o" "gcc" "src/gala/graph/CMakeFiles/gala_graph.dir/formats.cpp.o.d"
  "/root/repo/src/gala/graph/generators.cpp" "src/gala/graph/CMakeFiles/gala_graph.dir/generators.cpp.o" "gcc" "src/gala/graph/CMakeFiles/gala_graph.dir/generators.cpp.o.d"
  "/root/repo/src/gala/graph/io.cpp" "src/gala/graph/CMakeFiles/gala_graph.dir/io.cpp.o" "gcc" "src/gala/graph/CMakeFiles/gala_graph.dir/io.cpp.o.d"
  "/root/repo/src/gala/graph/partition.cpp" "src/gala/graph/CMakeFiles/gala_graph.dir/partition.cpp.o" "gcc" "src/gala/graph/CMakeFiles/gala_graph.dir/partition.cpp.o.d"
  "/root/repo/src/gala/graph/reorder.cpp" "src/gala/graph/CMakeFiles/gala_graph.dir/reorder.cpp.o" "gcc" "src/gala/graph/CMakeFiles/gala_graph.dir/reorder.cpp.o.d"
  "/root/repo/src/gala/graph/standin.cpp" "src/gala/graph/CMakeFiles/gala_graph.dir/standin.cpp.o" "gcc" "src/gala/graph/CMakeFiles/gala_graph.dir/standin.cpp.o.d"
  "/root/repo/src/gala/graph/stats.cpp" "src/gala/graph/CMakeFiles/gala_graph.dir/stats.cpp.o" "gcc" "src/gala/graph/CMakeFiles/gala_graph.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gala/common/CMakeFiles/gala_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
