file(REMOVE_RECURSE
  "CMakeFiles/gala_graph.dir/csr.cpp.o"
  "CMakeFiles/gala_graph.dir/csr.cpp.o.d"
  "CMakeFiles/gala_graph.dir/formats.cpp.o"
  "CMakeFiles/gala_graph.dir/formats.cpp.o.d"
  "CMakeFiles/gala_graph.dir/generators.cpp.o"
  "CMakeFiles/gala_graph.dir/generators.cpp.o.d"
  "CMakeFiles/gala_graph.dir/io.cpp.o"
  "CMakeFiles/gala_graph.dir/io.cpp.o.d"
  "CMakeFiles/gala_graph.dir/partition.cpp.o"
  "CMakeFiles/gala_graph.dir/partition.cpp.o.d"
  "CMakeFiles/gala_graph.dir/reorder.cpp.o"
  "CMakeFiles/gala_graph.dir/reorder.cpp.o.d"
  "CMakeFiles/gala_graph.dir/standin.cpp.o"
  "CMakeFiles/gala_graph.dir/standin.cpp.o.d"
  "CMakeFiles/gala_graph.dir/stats.cpp.o"
  "CMakeFiles/gala_graph.dir/stats.cpp.o.d"
  "libgala_graph.a"
  "libgala_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gala_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
