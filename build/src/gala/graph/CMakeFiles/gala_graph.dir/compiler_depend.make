# Empty compiler generated dependencies file for gala_graph.
# This may be replaced when dependencies are built.
