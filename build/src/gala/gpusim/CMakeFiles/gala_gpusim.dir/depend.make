# Empty dependencies file for gala_gpusim.
# This may be replaced when dependencies are built.
