file(REMOVE_RECURSE
  "CMakeFiles/gala_gpusim.dir/device.cpp.o"
  "CMakeFiles/gala_gpusim.dir/device.cpp.o.d"
  "libgala_gpusim.a"
  "libgala_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gala_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
