file(REMOVE_RECURSE
  "libgala_gpusim.a"
)
