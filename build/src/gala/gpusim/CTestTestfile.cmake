# CMake generated Testfile for 
# Source directory: /root/repo/src/gala/gpusim
# Build directory: /root/repo/build/src/gala/gpusim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
