file(REMOVE_RECURSE
  "CMakeFiles/gala_baselines.dir/baseline.cpp.o"
  "CMakeFiles/gala_baselines.dir/baseline.cpp.o.d"
  "CMakeFiles/gala_baselines.dir/label_propagation.cpp.o"
  "CMakeFiles/gala_baselines.dir/label_propagation.cpp.o.d"
  "libgala_baselines.a"
  "libgala_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gala_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
