file(REMOVE_RECURSE
  "libgala_baselines.a"
)
