# Empty compiler generated dependencies file for gala_baselines.
# This may be replaced when dependencies are built.
