file(REMOVE_RECURSE
  "CMakeFiles/gala_multigpu.dir/collectives.cpp.o"
  "CMakeFiles/gala_multigpu.dir/collectives.cpp.o.d"
  "CMakeFiles/gala_multigpu.dir/dist_louvain.cpp.o"
  "CMakeFiles/gala_multigpu.dir/dist_louvain.cpp.o.d"
  "libgala_multigpu.a"
  "libgala_multigpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gala_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
