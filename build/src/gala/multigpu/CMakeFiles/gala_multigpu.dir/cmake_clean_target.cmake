file(REMOVE_RECURSE
  "libgala_multigpu.a"
)
