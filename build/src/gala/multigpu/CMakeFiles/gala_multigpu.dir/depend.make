# Empty dependencies file for gala_multigpu.
# This may be replaced when dependencies are built.
