file(REMOVE_RECURSE
  "CMakeFiles/web_hierarchy.dir/web_hierarchy.cpp.o"
  "CMakeFiles/web_hierarchy.dir/web_hierarchy.cpp.o.d"
  "web_hierarchy"
  "web_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
