# Empty dependencies file for web_hierarchy.
# This may be replaced when dependencies are built.
