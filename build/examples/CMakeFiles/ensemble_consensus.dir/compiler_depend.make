# Empty compiler generated dependencies file for ensemble_consensus.
# This may be replaced when dependencies are built.
