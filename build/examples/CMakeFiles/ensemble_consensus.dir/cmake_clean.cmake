file(REMOVE_RECURSE
  "CMakeFiles/ensemble_consensus.dir/ensemble_consensus.cpp.o"
  "CMakeFiles/ensemble_consensus.dir/ensemble_consensus.cpp.o.d"
  "ensemble_consensus"
  "ensemble_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
