file(REMOVE_RECURSE
  "CMakeFiles/fig08_two_stage_breakdown.dir/fig08_two_stage_breakdown.cpp.o"
  "CMakeFiles/fig08_two_stage_breakdown.dir/fig08_two_stage_breakdown.cpp.o.d"
  "fig08_two_stage_breakdown"
  "fig08_two_stage_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_two_stage_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
