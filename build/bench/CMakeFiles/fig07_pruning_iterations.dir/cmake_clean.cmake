file(REMOVE_RECURSE
  "CMakeFiles/fig07_pruning_iterations.dir/fig07_pruning_iterations.cpp.o"
  "CMakeFiles/fig07_pruning_iterations.dir/fig07_pruning_iterations.cpp.o.d"
  "fig07_pruning_iterations"
  "fig07_pruning_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_pruning_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
