# Empty compiler generated dependencies file for fig07_pruning_iterations.
# This may be replaced when dependencies are built.
