# Empty compiler generated dependencies file for table1_fnr_fpr.
# This may be replaced when dependencies are built.
