file(REMOVE_RECURSE
  "CMakeFiles/table1_fnr_fpr.dir/table1_fnr_fpr.cpp.o"
  "CMakeFiles/table1_fnr_fpr.dir/table1_fnr_fpr.cpp.o.d"
  "table1_fnr_fpr"
  "table1_fnr_fpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fnr_fpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
