file(REMOVE_RECURSE
  "CMakeFiles/fig06_optimization_ablation.dir/fig06_optimization_ablation.cpp.o"
  "CMakeFiles/fig06_optimization_ablation.dir/fig06_optimization_ablation.cpp.o.d"
  "fig06_optimization_ablation"
  "fig06_optimization_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_optimization_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
