# Empty dependencies file for fig06_optimization_ablation.
# This may be replaced when dependencies are built.
