file(REMOVE_RECURSE
  "CMakeFiles/fig09_kernel_workloads.dir/fig09_kernel_workloads.cpp.o"
  "CMakeFiles/fig09_kernel_workloads.dir/fig09_kernel_workloads.cpp.o.d"
  "fig09_kernel_workloads"
  "fig09_kernel_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_kernel_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
