# Empty compiler generated dependencies file for fig09_kernel_workloads.
# This may be replaced when dependencies are built.
