# Empty dependencies file for table3_modularity.
# This may be replaced when dependencies are built.
