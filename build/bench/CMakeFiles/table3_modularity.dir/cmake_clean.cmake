file(REMOVE_RECURSE
  "CMakeFiles/table3_modularity.dir/table3_modularity.cpp.o"
  "CMakeFiles/table3_modularity.dir/table3_modularity.cpp.o.d"
  "table3_modularity"
  "table3_modularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_modularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
