# Empty dependencies file for sec56_large_run.
# This may be replaced when dependencies are built.
