file(REMOVE_RECURSE
  "CMakeFiles/sec56_large_run.dir/sec56_large_run.cpp.o"
  "CMakeFiles/sec56_large_run.dir/sec56_large_run.cpp.o.d"
  "sec56_large_run"
  "sec56_large_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec56_large_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
