file(REMOVE_RECURSE
  "CMakeFiles/fig05_sota_comparison.dir/fig05_sota_comparison.cpp.o"
  "CMakeFiles/fig05_sota_comparison.dir/fig05_sota_comparison.cpp.o.d"
  "fig05_sota_comparison"
  "fig05_sota_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_sota_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
