# Empty compiler generated dependencies file for fig05_sota_comparison.
# This may be replaced when dependencies are built.
