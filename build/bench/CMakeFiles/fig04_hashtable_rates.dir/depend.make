# Empty dependencies file for fig04_hashtable_rates.
# This may be replaced when dependencies are built.
