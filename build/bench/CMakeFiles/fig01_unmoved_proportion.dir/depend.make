# Empty dependencies file for fig01_unmoved_proportion.
# This may be replaced when dependencies are built.
