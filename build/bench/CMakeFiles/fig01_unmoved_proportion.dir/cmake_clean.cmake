file(REMOVE_RECURSE
  "CMakeFiles/fig01_unmoved_proportion.dir/fig01_unmoved_proportion.cpp.o"
  "CMakeFiles/fig01_unmoved_proportion.dir/fig01_unmoved_proportion.cpp.o.d"
  "fig01_unmoved_proportion"
  "fig01_unmoved_proportion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_unmoved_proportion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
