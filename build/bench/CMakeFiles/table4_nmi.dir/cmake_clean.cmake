file(REMOVE_RECURSE
  "CMakeFiles/table4_nmi.dir/table4_nmi.cpp.o"
  "CMakeFiles/table4_nmi.dir/table4_nmi.cpp.o.d"
  "table4_nmi"
  "table4_nmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_nmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
