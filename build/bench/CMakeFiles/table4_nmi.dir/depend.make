# Empty dependencies file for table4_nmi.
# This may be replaced when dependencies are built.
