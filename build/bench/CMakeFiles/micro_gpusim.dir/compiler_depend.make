# Empty compiler generated dependencies file for micro_gpusim.
# This may be replaced when dependencies are built.
