file(REMOVE_RECURSE
  "CMakeFiles/micro_gpusim.dir/micro_gpusim.cpp.o"
  "CMakeFiles/micro_gpusim.dir/micro_gpusim.cpp.o.d"
  "micro_gpusim"
  "micro_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
