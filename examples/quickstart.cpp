// Quickstart: build a graph, run GALA, read the communities.
//
//   ./quickstart [edge_list.txt]
//
// With no argument, a small synthetic social network is generated. With a
// path, the file is loaded as a whitespace "u v [w]" edge list (0-based ids,
// '#' comments).
#include <cstdio>

#include "gala/core/gala.hpp"
#include "gala/graph/generators.hpp"
#include "gala/graph/io.hpp"

int main(int argc, char** argv) {
  using namespace gala;

  // 1. Get a graph: load from disk or generate a planted-partition network.
  graph::Graph g;
  if (argc > 1) {
    std::printf("loading %s ...\n", argv[1]);
    g = graph::load_edge_list(argv[1]);
  } else {
    graph::PlantedPartitionParams params;
    params.num_vertices = 2000;
    params.num_communities = 20;
    params.avg_degree = 14;
    params.mixing = 0.15;
    params.seed = 42;
    g = graph::planted_partition(params);
  }
  std::printf("graph: %s\n", graph::summary(g).c_str());

  // 2. Run the full multi-level Louvain pipeline with GALA's defaults
  //    (MG pruning, workload-aware kernels, hierarchical hashtable,
  //    delta weight updates).
  core::GalaConfig config;
  const core::GalaResult result = core::run_louvain(g, config);

  // 3. Inspect the result.
  std::printf("modularity Q = %.5f, %u communities, %zu levels, %.3f s\n", result.modularity,
              result.num_communities, result.levels.size(), result.wall_seconds);
  for (const auto& level : result.levels) {
    std::printf("  level: %u vertices -> %u communities (Q = %.5f, %d iterations)\n",
                level.vertices, level.communities, level.modularity, level.iterations);
  }

  // result.assignment[v] is the community of vertex v.
  std::printf("community of vertex 0: %u\n", result.assignment[0]);
  std::printf("\nTo run on your own graph: ./quickstart path/to/edges.txt\n");
  return 0;
}
