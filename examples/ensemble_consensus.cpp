// Ensemble consensus clustering: when should you trust a single Louvain
// run? This example contrasts a sharp network with a blurred one — the
// ensemble-agreement diagnostic exposes the difference, and consensus
// clustering stabilises the blurred case.
#include <cstdio>

#include "gala/common/table.hpp"
#include "gala/core/consensus.hpp"
#include "gala/graph/generators.hpp"
#include "gala/metrics/nmi.hpp"

int main() {
  using namespace gala;

  TextTable table({"network", "mixing", "agreement", "consensus Q", "single-run Q",
                   "NMI vs truth"});
  for (const double mixing : {0.10, 0.45, 0.60}) {
    graph::PlantedPartitionParams p;
    p.num_vertices = 5000;
    p.num_communities = 25;
    p.avg_degree = 14;
    p.mixing = mixing;
    p.seed = 11;
    std::vector<cid_t> truth;
    const graph::Graph g = graph::planted_partition(p, &truth);

    const core::GalaResult single = core::run_louvain(g);

    core::ConsensusConfig cfg;
    cfg.runs = 8;
    const core::ConsensusResult ensemble = core::consensus_louvain(g, cfg);

    table.row()
        .cell(mixing < 0.3 ? "sharp" : mixing < 0.5 ? "blurred" : "very blurred")
        .cell(mixing, 2)
        .cell(ensemble.ensemble_agreement, 3)
        .cell(ensemble.modularity, 4)
        .cell(single.modularity, 4)
        .cell(metrics::nmi(ensemble.assignment, truth), 3);
  }
  table.print();

  std::printf("\nreading the table: agreement near 1 means every ensemble member found the\n"
              "same structure (single runs are trustworthy); low agreement flags ambiguous\n"
              "structure, where the consensus partition is the robust summary.\n");
  return 0;
}
