// Hierarchical community structure of a web-like graph.
//
// The Louvain method's second phase builds a hierarchy: each level contracts
// communities into super-vertices. On web graphs (sharp communities, Q near
// 1) the hierarchy is deep and informative — this example walks it level by
// level, demonstrating the aggregation API directly (phase 1 + aggregate in
// a loop, the same loop run_louvain wraps), and writes the final communities
// to a file an analyst could join against page metadata.
#include <cstdio>
#include <fstream>

#include "gala/common/table.hpp"
#include "gala/core/aggregation.hpp"
#include "gala/core/bsp_louvain.hpp"
#include "gala/core/modularity.hpp"
#include "gala/graph/standin.hpp"

int main() {
  using namespace gala;

  const graph::Graph root = graph::make_standin("UK", 0.4);
  std::printf("web graph (uk-2002 stand-in): %s\n\n", graph::summary(root).c_str());

  // Walk the hierarchy manually: phase 1, contract, repeat.
  std::vector<cid_t> flat(root.num_vertices());
  for (vid_t v = 0; v < root.num_vertices(); ++v) flat[v] = v;

  TextTable table({"level", "vertices", "edges", "communities", "modularity", "compression"});
  const graph::Graph* current = &root;
  graph::Graph owned;
  wt_t prev_q = -1;
  for (int level = 0;; ++level) {
    const core::Phase1Result phase1 = core::bsp_phase1(*current, {});
    const core::AggregationResult agg = core::aggregate(*current, phase1.community);
    table.row()
        .cell(level)
        .cell(current->num_vertices())
        .cell(current->num_edges())
        .cell(agg.num_communities)
        .cell(phase1.modularity, 5)
        .cell(static_cast<double>(current->num_vertices()) / agg.num_communities, 1);

    flat = core::compose_assignment(flat, agg.fine_to_coarse);
    if (phase1.modularity - prev_q < 1e-6 && level > 0) break;
    prev_q = phase1.modularity;
    if (agg.num_communities == current->num_vertices()) break;
    owned = std::move(agg.coarse);
    current = &owned;
  }
  table.print();

  const wt_t q = core::modularity(root, flat);
  std::printf("\nfinal: %u communities at modularity %.5f\n", core::count_communities(flat), q);

  const char* out_path = "web_communities.tsv";
  std::ofstream out(out_path);
  out << "# vertex\tcommunity\n";
  for (vid_t v = 0; v < root.num_vertices(); ++v) out << v << '\t' << flat[v] << '\n';
  std::printf("wrote per-page communities to %s\n", out_path);
  return 0;
}
