// Maintaining communities over a stream of edge updates (the incremental
// extension). A social network keeps evolving: every batch of new
// friendships triggers a *repair* of the existing community structure
// rather than a recomputation — MG pruning (Equation 6 of the paper) acts
// as delta screening, so untouched regions are never re-evaluated.
#include <cstdio>

#include "gala/common/prng.hpp"
#include "gala/common/table.hpp"
#include "gala/core/incremental.hpp"
#include "gala/graph/generators.hpp"

int main() {
  using namespace gala;

  graph::PlantedPartitionParams params;
  params.num_vertices = 20000;
  params.num_communities = 100;
  params.avg_degree = 16;
  params.mixing = 0.2;
  params.seed = 7;
  graph::Graph g = graph::planted_partition(params);
  std::printf("initial network: %s\n", graph::summary(g).c_str());

  core::GalaResult current = core::run_louvain(g);
  std::printf("initial detection: %u communities, Q = %.5f\n\n", current.num_communities,
              current.modularity);

  Xoshiro256 rng(99);
  TextTable table({"batch", "updates", "evaluated", "evaluated/V per iter %", "communities",
                   "modularity"});
  std::vector<cid_t> assignment = current.assignment;

  for (int batch = 1; batch <= 5; ++batch) {
    // Each batch: a burst of new friendships, biased inside communities
    // with a sprinkle of cross-community bridges.
    std::vector<core::EdgeUpdate> updates;
    for (int i = 0; i < 200; ++i) {
      const auto u = static_cast<vid_t>(rng.next_below(g.num_vertices()));
      const auto v = static_cast<vid_t>(rng.next_below(g.num_vertices()));
      if (u != v) updates.push_back({u, v, 1.0, false});
    }

    const core::IncrementalResult repaired = core::update_communities(g, assignment, updates);
    const double evals_per_sweep =
        100.0 * static_cast<double>(repaired.evaluated_vertices) /
        (static_cast<double>(g.num_vertices()) * std::max(1, repaired.repair_iterations));
    table.row()
        .cell(batch)
        .cell(updates.size())
        .cell(repaired.evaluated_vertices)
        .cell(evals_per_sweep, 1)
        .cell(repaired.num_communities)
        .cell(repaired.modularity, 5);

    g = repaired.graph;
    assignment = repaired.assignment;
  }
  table.print();
  std::printf("\n'evaluated' counts DecideAndMove calls during the repair; a from-scratch\n"
              "run would evaluate V vertices in every iteration. MG pruning screens the\n"
              "untouched bulk out on iteration 0.\n");
  return 0;
}
