// Social network analysis — the paper's motivating scenario (§1).
//
// Generates a LiveJournal-like social graph with planted friend groups,
// detects communities with GALA, and reports what an analyst would look at:
// community size distribution, the largest communities, recovery quality
// against the planted ground truth (NMI), and how much work MG pruning
// saved along the way.
#include <algorithm>
#include <cstdio>
#include <map>

#include "gala/common/table.hpp"
#include "gala/core/gala.hpp"
#include "gala/graph/generators.hpp"
#include "gala/metrics/nmi.hpp"

int main() {
  using namespace gala;

  // A mid-sized social network: skewed degrees (influencers), moderately
  // mixed friend groups.
  graph::PlantedPartitionParams params;
  params.num_vertices = 30000;
  params.num_communities = 150;
  params.avg_degree = 18;
  params.mixing = 0.25;
  params.degree_exponent = 2.5;
  params.max_degree_ratio = 80;
  params.seed = 2026;
  std::vector<cid_t> ground_truth;
  const graph::Graph g = graph::planted_partition(params, &ground_truth);
  std::printf("social network: %s\n\n", graph::summary(g).c_str());

  // Detect communities; keep the first round's per-iteration detail so we
  // can report the pruning savings.
  core::GalaConfig config;
  config.keep_first_round = true;
  const core::GalaResult result = core::run_louvain(g, config);

  std::printf("found %u communities, modularity %.4f, in %.3f s (host)\n", result.num_communities,
              result.modularity, result.wall_seconds);
  std::printf("recovery vs planted groups: NMI = %.4f\n\n",
              metrics::nmi(result.assignment, ground_truth));

  // Community size distribution.
  std::map<cid_t, vid_t> sizes;
  for (const cid_t c : result.assignment) ++sizes[c];
  std::vector<vid_t> size_list;
  size_list.reserve(sizes.size());
  for (const auto& [c, s] : sizes) size_list.push_back(s);
  std::sort(size_list.rbegin(), size_list.rend());

  TextTable table({"rank", "community size", "share of network %"});
  for (std::size_t i = 0; i < std::min<std::size_t>(5, size_list.size()); ++i) {
    table.row()
        .cell(i + 1)
        .cell(size_list[i])
        .cell(100.0 * size_list[i] / g.num_vertices(), 1);
  }
  table.print();
  std::printf("median community size: %u\n\n", size_list[size_list.size() / 2]);

  // How much work did MG pruning save in round 1?
  std::uint64_t active_total = 0;
  const auto& round1 = result.first_round;
  for (const auto& it : round1.iterations) active_total += it.active;
  const double possible =
      static_cast<double>(g.num_vertices()) * static_cast<double>(round1.iterations.size());
  std::printf("MG pruning: %zu iterations, %.1f%% of vertex evaluations skipped\n",
              round1.iterations.size(), 100.0 * (1.0 - static_cast<double>(active_total) / possible));
  return 0;
}
