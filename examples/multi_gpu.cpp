// Scaling community detection across multiple (simulated) GPUs.
//
// Demonstrates the §4.3 distributed engine: 1-D vertex partitioning, the
// dense/sparse/adaptive synchronisation choice, and how to read the
// per-device compute/communication breakdown. On a real deployment the
// simulated NCCL layer maps 1:1 onto ncclAllGather/ncclAllReduce calls.
#include <cstdio>

#include "gala/common/table.hpp"
#include "gala/graph/standin.hpp"
#include "gala/multigpu/dist_louvain.hpp"

int main() {
  using namespace gala;

  const graph::Graph g = graph::make_standin("OR", 0.5);
  std::printf("graph (com-Orkut stand-in): %s\n\n", graph::summary(g).c_str());

  TextTable table({"GPUs", "sync", "iters", "modularity", "compute ms", "comm ms", "total ms",
                   "sync MB"});
  for (const std::size_t gpus : {1, 2, 4, 8}) {
    multigpu::DistributedConfig config;
    config.num_gpus = gpus;
    config.sync = multigpu::SyncMode::Adaptive;
    config.device.model_parallel_lanes = 2048;  // device scaled to the stand-in

    const multigpu::DistributedResult r = multigpu::distributed_phase1(g, config);
    std::uint64_t sync_bytes = 0;
    for (const auto& it : r.iteration_log) sync_bytes += it.sync_bytes;
    table.row()
        .cell(gpus)
        .cell(to_string(config.sync))
        .cell(r.iterations)
        .cell(r.modularity, 5)
        .cell(r.max_compute_modeled_ms(), 3)
        .cell(r.max_comm_modeled_ms(), 3)
        .cell(r.modeled_ms(), 3)
        .cell(static_cast<double>(sync_bytes) / 1e6, 2);
  }
  table.print();

  std::printf("\nnote: modularity is identical at every device count — the BSP iteration is\n"
              "deterministic and the sync keeps replicas exact, so multi-GPU changes only\n"
              "where work happens, never the result.\n");
  return 0;
}
