// Compressed sparse-delta wire codec (shared library; paper §4.3).
//
// Grown in the multi-GPU sync path and hoisted here unchanged so other
// subsystems (the out-of-core CSR loader ROADMAP names, checkpointing) can
// reuse the frame format without linking the distributed engine;
// gala/multigpu/delta_codec.hpp re-exports these names for its call sites.
//
// The sparse synchronisation ships (vertex, new community) move records.
// Raw records cost 8 bytes each; this codec exploits the two regularities
// the move stream always has — vertex ids are sorted (the decide loop walks
// the owned range in order) and the set of destination communities is far
// smaller than the set of movers — to shrink the wire payload:
//
//   - vertex ids are delta-encoded (first id raw, then successor gaps) and
//     LEB128-varint packed, so dense move runs cost ~1 byte per vertex,
//   - communities are dictionary-mapped: each distinct destination id is
//     stored once (first-appearance order) and records carry the varint
//     dictionary index.
//
// One rank's moves form a self-delimiting *frame*; an all-gather of frames
// concatenates in rank order and decode_moves() walks the concatenation.
//
//   u32 LE   body length N (bytes following this field)
//   body:
//     varint record count
//     varint dictionary size
//     dict entries       — varint community id each, first-appearance order
//     vertex stream      — varint first id, then varint gaps (gap >= 1)
//     community stream   — varint dictionary index per record
//     u64 LE  FNV-1a checksum over the body bytes before this trailer
//
// Decoding is fail-closed: a truncated buffer, a varint running past the
// frame, a checksum mismatch, a non-monotone vertex stream, an
// out-of-range id, or leftover bytes all raise CodecFault — a corrupted
// payload is never decoded into garbage moves. The frame checksum makes the
// codec self-verifying even outside the communicator's own staging checksum
// (which guards the same bytes in transit).
//
// The charged wire size is the encoded size: the caller gathers the frame
// bytes through the communicator, so the alpha-beta cost model and the
// adaptive dense/sparse crossover see the real compressed payload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gala/common/types.hpp"
#include "gala/exec/workspace.hpp"
#include "gala/resilience/fault_injection.hpp"

namespace gala::codec {

/// A frame failed to decode (truncation, checksum mismatch, malformed
/// stream). Retryable: derives from resilience::TransientFault so supervisor
/// retry loops treat a corrupt payload like any other transient collective
/// failure. gala::multigpu aliases this as CollectiveFault.
class CodecFault : public resilience::TransientFault {
 public:
  using TransientFault::TransientFault;
};

/// FNV-1a over a byte span — the frame/sync-message integrity check.
inline std::uint64_t fnv1a(std::span<const std::byte> bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Sparse-sync wire record: one moved vertex.
struct MoveRecord {
  vid_t vertex;
  cid_t community;
};

inline bool operator==(const MoveRecord& a, const MoveRecord& b) {
  return a.vertex == b.vertex && a.community == b.community;
}

/// Appends one frame encoding `moves` to `out`. Preconditions (checked):
/// vertex ids strictly ascending. Encoding an empty set yields a valid
/// (minimal) frame; callers normally skip it and contribute zero bytes.
void encode_moves(std::span<const MoveRecord> moves, std::vector<std::byte>& out);
void encode_moves(std::span<const MoveRecord> moves, exec::PooledVec<std::byte>& out);

/// Decodes a concatenation of frames (rank order), appending every record
/// to `out`. `num_vertices` bounds both vertex and community ids and the
/// per-frame record count. Throws CodecFault on any malformed input;
/// `out` may hold records from frames decoded before the fault — callers
/// clear it on retry.
void decode_moves(std::span<const std::byte> frames, vid_t num_vertices,
                  std::vector<MoveRecord>& out);
void decode_moves(std::span<const std::byte> frames, vid_t num_vertices,
                  exec::PooledVec<MoveRecord>& out);

}  // namespace gala::codec
