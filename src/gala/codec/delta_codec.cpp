#include "gala/codec/delta_codec.hpp"

#include <cstdint>
#include <unordered_map>

#include "gala/common/error.hpp"
#include "gala/memtrace/memtrace.hpp"

namespace gala::codec {
namespace {

constexpr std::size_t kMaxVarint32 = 5;  // LEB128 bytes for a 32-bit value

template <typename ByteVec>
void put_varint(ByteVec& out, std::uint32_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

template <typename ByteVec>
void put_u32(ByteVec& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

template <typename ByteVec>
void put_u64(ByteVec& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

/// Bounded cursor over one frame body; every read is range-checked so a
/// corrupt length or varint can never run past the buffer.
struct Cursor {
  const std::byte* p;
  const std::byte* end;

  std::size_t remaining() const { return static_cast<std::size_t>(end - p); }

  std::uint32_t varint32() {
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < kMaxVarint32; ++i) {
      if (p == end) GALA_THROW(CodecFault, "sparse-delta codec: varint truncated");
      const auto b = static_cast<std::uint32_t>(*p++);
      if (i == kMaxVarint32 - 1 && (b & 0x7f) > 0x0f) {
        GALA_THROW(CodecFault, "sparse-delta codec: varint overflows 32 bits");
      }
      v |= (b & 0x7f) << (7 * i);
      if ((b & 0x80) == 0) return v;
    }
    GALA_THROW(CodecFault, "sparse-delta codec: varint longer than " << kMaxVarint32
                                                                     << " bytes");
  }
};

std::uint32_t read_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t read_u64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

template <typename ByteVec>
void encode_impl(std::span<const MoveRecord> moves, ByteVec& out) {
  // Body is assembled in a scratch frame so the length prefix is exact.
  // Dictionary: distinct destination communities in first-appearance order.
  std::vector<std::byte> body;
  body.reserve(16 + moves.size() * 3);
  std::unordered_map<cid_t, std::uint32_t> dict_index;
  std::vector<cid_t> dict;
  dict_index.reserve(moves.size());
  for (const MoveRecord& m : moves) {
    if (dict_index.emplace(m.community, static_cast<std::uint32_t>(dict.size())).second) {
      dict.push_back(m.community);
    }
  }
  put_varint(body, static_cast<std::uint32_t>(moves.size()));
  put_varint(body, static_cast<std::uint32_t>(dict.size()));
  for (const cid_t c : dict) put_varint(body, c);
  vid_t prev = 0;
  for (std::size_t i = 0; i < moves.size(); ++i) {
    const vid_t v = moves[i].vertex;
    if (i == 0) {
      put_varint(body, v);
    } else {
      GALA_CHECK(v > prev, "encode_moves: vertex ids must be strictly ascending ("
                               << v << " after " << prev << ")");
      put_varint(body, v - prev);
    }
    prev = v;
  }
  for (const MoveRecord& m : moves) put_varint(body, dict_index.at(m.community));
  put_u64(body, fnv1a(std::span<const std::byte>(body.data(), body.size())));

  put_u32(out, static_cast<std::uint32_t>(body.size()));
  for (const std::byte b : body) out.push_back(b);
}

template <typename MoveVec>
void decode_impl(std::span<const std::byte> frames, vid_t num_vertices, MoveVec& out) {
  const std::byte* p = frames.data();
  const std::byte* const end = p + frames.size();
  while (p != end) {
    if (end - p < 4) GALA_THROW(CodecFault, "sparse-delta codec: truncated frame header");
    const std::uint32_t body_bytes = read_u32(p);
    p += 4;
    if (static_cast<std::size_t>(end - p) < body_bytes) {
      GALA_THROW(CodecFault, "sparse-delta codec: frame body truncated (need "
                                 << body_bytes << " bytes, have " << (end - p) << ")");
    }
    if (body_bytes < 2 + 8) {
      GALA_THROW(CodecFault, "sparse-delta codec: frame body impossibly short ("
                                 << body_bytes << " bytes)");
    }
    // Verify the trailer checksum before interpreting a single field, so a
    // bit flip anywhere in the frame is caught up front.
    const std::byte* const body = p;
    const std::byte* const trailer = body + body_bytes - 8;
    if (fnv1a(std::span<const std::byte>(body, trailer)) != read_u64(trailer)) {
      GALA_THROW(CodecFault, "sparse-delta codec: frame checksum mismatch");
    }
    Cursor cur{body, trailer};
    const std::uint32_t count = cur.varint32();
    const std::uint32_t dict_size = cur.varint32();
    if (count > num_vertices) {
      GALA_THROW(CodecFault, "sparse-delta codec: record count " << count
                                                                 << " exceeds vertex count "
                                                                 << num_vertices);
    }
    if (dict_size > count) {
      GALA_THROW(CodecFault, "sparse-delta codec: dictionary size " << dict_size
                                                                    << " exceeds record count "
                                                                    << count);
    }
    std::vector<cid_t> dict(dict_size);
    for (std::uint32_t i = 0; i < dict_size; ++i) {
      dict[i] = cur.varint32();
      if (dict[i] >= num_vertices) {
        GALA_THROW(CodecFault, "sparse-delta codec: community id " << dict[i] << " out of range");
      }
    }
    std::vector<vid_t> vertices(count);
    vid_t prev = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t raw = cur.varint32();
      if (i == 0) {
        vertices[i] = raw;
      } else {
        if (raw == 0) {
          GALA_THROW(CodecFault, "sparse-delta codec: vertex stream not strictly ascending");
        }
        if (raw > num_vertices - prev) {
          GALA_THROW(CodecFault, "sparse-delta codec: vertex id overflows vertex count");
        }
        vertices[i] = prev + raw;
      }
      if (vertices[i] >= num_vertices) {
        GALA_THROW(CodecFault,
                   "sparse-delta codec: vertex id " << vertices[i] << " out of range");
      }
      prev = vertices[i];
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t idx = cur.varint32();
      if (idx >= dict_size) {
        GALA_THROW(CodecFault,
                   "sparse-delta codec: dictionary index " << idx << " out of range");
      }
      out.push_back({vertices[i], dict[idx]});
    }
    if (cur.p != trailer) {
      GALA_THROW(CodecFault, "sparse-delta codec: " << cur.remaining()
                                                    << " unconsumed bytes in frame body");
    }
    p = body + body_bytes;
  }
}

}  // namespace

// The charge tag keeps the "multigpu.codec_frames" name the codec was born
// with: the committed perf baselines and the memtrace subsystem breakdown pin
// it, and the multi-GPU sync remains the dominant producer of frames.
void encode_moves(std::span<const MoveRecord> moves, std::vector<std::byte>& out) {
  encode_impl(moves, out);
  memtrace::charge("multigpu.codec_frames", out.size());
}

void encode_moves(std::span<const MoveRecord> moves, exec::PooledVec<std::byte>& out) {
  encode_impl(moves, out);
  memtrace::charge("multigpu.codec_frames", out.size());
}

void decode_moves(std::span<const std::byte> frames, vid_t num_vertices,
                  std::vector<MoveRecord>& out) {
  decode_impl(frames, num_vertices, out);
}

void decode_moves(std::span<const std::byte> frames, vid_t num_vertices,
                  exec::PooledVec<MoveRecord>& out) {
  decode_impl(frames, num_vertices, out);
}

}  // namespace gala::codec
