// ExecutionContext — the one handle a pipeline run owns.
//
// Bundles the resources every layer used to construct privately: the
// simulated device (bound to the context's Workspace so kernel launches draw
// arena pages and profiling buffers from the pool), the pooled Workspace
// itself, the host thread pool, and the run's PRNG seed. Telemetry, the
// profiler, and the fault injector remain process-global singletons — the
// context exposes them for discoverability rather than re-owning them.
//
// Ownership rules:
//  - run_louvain creates one context per pipeline and calls
//    workspace().reset_level() between levels, so level N+1 reuses level N's
//    slabs instead of reallocating.
//  - BspConfig::context lets callers share a context across engines (the
//    multi-level pipeline, warm-started incremental runs). When it is null
//    the engine creates a private one, preserving the old behaviour.
//  - The distributed engine gives each rank its own context: workspaces are
//    thread-safe, but rank-private pools avoid cross-thread contention and
//    keep per-device accounting separable.
//
// Every buffer checked out of the workspace is returned before the context
// dies; the context must outlive every engine constructed against it.
#pragma once

#include <cstdint>

#include "gala/common/thread_pool.hpp"
#include "gala/exec/workspace.hpp"
#include "gala/governor/governor.hpp"
#include "gala/gpusim/device.hpp"

namespace gala::exec {

class ExecutionContext {
 public:
  explicit ExecutionContext(const gpusim::DeviceConfig& device_config = {},
                            std::uint64_t seed = 7, bool pooling = true,
                            ThreadPool* pool = nullptr)
      : workspace_(pooling), device_(device_config, &workspace_), seed_(seed),
        pool_(pool != nullptr ? pool : &ThreadPool::global()) {
    // Rung 1 of the governor's degradation ladder trims idle pooled slabs;
    // each context volunteers its workspace (trim() is thread-safe and only
    // touches free lists, never outstanding leases).
    governor::Governor::global().register_reclaimer(
        this, [this] { return static_cast<std::uint64_t>(workspace_.trim()); });
  }

  ~ExecutionContext() { governor::Governor::global().unregister_reclaimer(this); }

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  Workspace& workspace() { return workspace_; }
  const Workspace& workspace() const { return workspace_; }
  gpusim::Device& device() { return device_; }
  const gpusim::Device& device() const { return device_; }
  ThreadPool& pool() { return *pool_; }
  std::uint64_t seed() const { return seed_; }

  /// Marks a level boundary: records the level's buffer high-water mark and
  /// invalidates any lease that (incorrectly) straddles it.
  void reset_level() { workspace_.reset_level(); }

 private:
  Workspace workspace_;
  gpusim::Device device_;  // bound to workspace_: arena pages come from the pool
  std::uint64_t seed_;
  ThreadPool* pool_;  // not owned
};

}  // namespace gala::exec
