// Pooled buffer workspace — the engine's single memory plan.
//
// A Workspace owns every transient buffer the pipeline needs (host arrays
// standing in for device global memory, shared-memory arena pages, hashtable
// scratch slabs) in size-class-bucketed free lists. Callers check buffers
// out with an explicit type, element count, tag, and fill policy
//
//   auto lease = ws.take<wt_t>(n, "phase1.delta", Fill::Zero);
//
// and the RAII Lease returns the slab to the pool on destruction. After the
// first iteration of a level has established the working set, every
// subsequent checkout is served from the pool — the BSP hot loop performs
// zero heap allocations (the property the perf-diff gate asserts via the
// `heap_allocs` counter).
//
// Semantics the rest of the system builds on:
//
//  - Size classes: capacities are powers of two (min 64 B). A request is
//    served best-fit: its exact class first, then the nearest larger class.
//  - Tag affinity: a slab remembers the tag it was last checked out under
//    and a class match prefers same-tag slabs. `Lease::recycled_same_tag()`
//    tells the caller whether a *dirty* checkout still holds that tag's
//    bytes — the hashtable scratch uses this to skip re-initialising slabs
//    whose empty-bucket invariant is maintained by table reset().
//  - Fill policy is explicit at checkout: Fill::Zero memsets the requested
//    range; Fill::Dirty hands the slab over as-is (the caller owns
//    initialisation, which is what makes reuse bit-identical to fresh
//    allocation wherever the code already writes before reading).
//  - reset_level() starts a new epoch (one per Louvain level). It records
//    the level's high-water mark and invalidates outstanding leases:
//    accessing a stale lease's span() throws (always-on check, so the trap
//    fires in release builds too); returning one is tolerated but counted
//    in `stale_releases`.
//  - set_pooling(false) degrades every checkout to a plain heap allocation
//    (and every return to a free), which gives the determinism tests a
//    pooling-off baseline with identical observable behaviour.
//
// Thread safety: all public members are safe to call concurrently; gpusim
// blocks check arena pages and hash scratch out from worker threads.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "gala/common/error.hpp"
#include "gala/memtrace/memtrace.hpp"

namespace gala::exec {

/// Checkout fill policy — zeroing is explicit, never implicit.
enum class Fill : std::uint8_t {
  Dirty,  ///< slab handed over as-is; caller writes before reading
  Zero,   ///< requested byte range is zeroed
};

/// Point-in-time snapshot of a workspace's accounting.
struct WorkspaceStats {
  std::uint64_t checkouts = 0;       ///< total take() calls
  std::uint64_t heap_allocs = 0;     ///< pool misses (operator new)
  std::uint64_t reuse_hits = 0;      ///< checkouts served from the pool
  std::uint64_t tag_hits = 0;        ///< reuse hits with a matching tag
  std::uint64_t stale_releases = 0;  ///< leases returned after reset_level()
  std::uint64_t bytes_allocated = 0; ///< cumulative heap bytes ever allocated
  std::uint64_t pooled_bytes = 0;    ///< bytes idle in free lists right now
  std::uint64_t outstanding_bytes = 0;  ///< bytes checked out right now
  std::uint64_t peak_bytes = 0;         ///< lifetime outstanding high-water mark
  std::uint64_t level_peak_bytes = 0;   ///< high-water mark of the current epoch
  std::uint64_t levels = 0;             ///< reset_level() calls so far

  /// Fraction of checkouts that avoided a heap allocation.
  double reuse_rate() const {
    return checkouts > 0 ? static_cast<double>(reuse_hits) / static_cast<double>(checkouts) : 0.0;
  }
};

class Workspace {
  /// One pooled buffer: heap storage rounded up to a size class, plus the
  /// tag it was last checked out under (for tag-affine reuse).
  struct Slab {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;   ///< bytes, a size-class power of two
    std::uint64_t tag_hash = 0; ///< tag of the last checkout
  };

 public:
  explicit Workspace(bool pooling = true) : pooling_(pooling) {}

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// A checked-out slab, typed. Movable; returns its slab on destruction.
  template <typename T>
  class Lease {
    static_assert(std::is_trivially_copyable_v<T> || std::is_trivially_destructible_v<T>,
                  "workspace slabs hold raw storage: elements must not need destruction");

   public:
    Lease() = default;
    ~Lease() { release_quiet(); }

    Lease(Lease&& o) noexcept { *this = std::move(o); }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release_quiet();
        ws_ = o.ws_;
        slab_ = std::move(o.slab_);
        count_ = o.count_;
        epoch_ = o.epoch_;
        same_tag_ = o.same_tag_;
        tag_ = o.tag_;
        o.ws_ = nullptr;
        o.count_ = 0;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    explicit operator bool() const { return slab_.data != nullptr; }

    /// The requested element range. Throws gala::Error when the lease
    /// outlived a reset_level() epoch (use-after-reset trap, always on).
    std::span<T> span() const {
      check_epoch();
      return {data(), count_};
    }
    T* data() const { return reinterpret_cast<T*>(slab_.data.get()); }
    std::size_t size() const { return count_; }
    /// Full element capacity of the underlying size-class slab (>= size()).
    std::size_t capacity() const { return slab_.capacity / sizeof(T); }
    /// True when this checkout reused a pooled slab last held under the same
    /// tag — its bytes are exactly what that tag's previous holder left.
    bool recycled_same_tag() const { return same_tag_; }

    T& operator[](std::size_t i) const {
      GALA_ASSERT(i < capacity());
      return data()[i];
    }

    /// Returns the slab to the pool now (idempotent).
    void release() { release_quiet(); }

   private:
    friend class Workspace;

    void check_epoch() const {
      GALA_CHECK(ws_ == nullptr || epoch_ == ws_->epoch(),
                 "workspace lease used after reset_level(): checked out in epoch "
                     << epoch_ << ", workspace is in epoch " << ws_->epoch());
    }

    void release_quiet() noexcept {
      if (ws_ != nullptr && slab_.data != nullptr) {
        // Credit memtrace before the slab goes back: the modeled charge is
        // the request's size class, matching the checkout-side on_alloc.
        memtrace::on_free(tag_, Workspace::class_bytes(count_ * sizeof(T)));
        ws_->give_back(std::move(slab_), count_ * sizeof(T), epoch_);
      }
      ws_ = nullptr;
      count_ = 0;
    }

    Workspace* ws_ = nullptr;
    Slab slab_;
    std::size_t count_ = 0;
    std::uint64_t epoch_ = 0;
    bool same_tag_ = false;
    std::string_view tag_;  ///< checkout tag; literals only, so the view is stable
  };

  /// Checks out `count` elements of T under `tag`. The slab's capacity is
  /// the smallest size class holding the request; span() exposes exactly
  /// `count` elements. Alignment is operator new's (16 B), which covers
  /// every pooled element type.
  template <typename T>
  Lease<T> take(std::size_t count, std::string_view tag, Fill fill = Fill::Dirty) {
    const std::size_t bytes = count * sizeof(T);
    // Budget admission runs before any slab moves: a governor refusal
    // (gala::ResourceExhausted) unwinds with the lease still empty, so the
    // destructor has nothing to credit back.
    memtrace::admit(tag, class_bytes(bytes), /*may_throw=*/true);
    Lease<T> lease;
    lease.ws_ = this;
    lease.count_ = count;
    lease.tag_ = tag;
    lease.epoch_ = checkout(bytes, tag_hash(tag), lease.slab_, lease.same_tag_);
    if (memtrace::MemRegistry::armed()) {
      // Modeled charge: the request's size class, never the (pool-state
      // dependent) capacity of the serving slab — that difference is slack,
      // tracked in the host section.
      const std::size_t modeled = class_bytes(bytes);
      memtrace::MemRegistry::global().on_alloc(tag, modeled, bytes, /*workspace=*/true);
      if (lease.slab_.capacity > modeled) {
        memtrace::MemRegistry::global().note_slack(lease.slab_.capacity - modeled);
      }
    }
    if (fill == Fill::Zero && bytes > 0) std::memset(lease.slab_.data.get(), 0, bytes);
    return lease;
  }

  /// Current epoch; bumped by reset_level().
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Starts a new epoch: records the finished level's high-water mark and
  /// invalidates outstanding leases (their span() now throws).
  void reset_level();

  /// Frees every pooled slab; returns the bytes released to the heap. The
  /// scratch-retention regression test uses this to prove the pool — not a
  /// thread_local — owns all idle memory.
  std::size_t trim();

  /// Pooling toggle (determinism A/B: pooling off = plain heap allocation).
  void set_pooling(bool enabled);
  bool pooling() const;

  WorkspaceStats stats() const;

 private:
  static std::uint64_t tag_hash(std::string_view tag) {
    // FNV-1a; tags are compile-time literals, collisions are a non-issue.
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : tag) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ULL;
    }
    return h;
  }

  /// Rounds a byte request up to its size class (power of two, min 64).
  static std::size_t class_bytes(std::size_t bytes) {
    return std::bit_ceil(std::max<std::size_t>(bytes, kMinSlabBytes));
  }
  static std::size_t class_index(std::size_t capacity) {
    return static_cast<std::size_t>(std::countr_zero(capacity));
  }

  /// Serves one checkout; returns the epoch the lease belongs to.
  std::uint64_t checkout(std::size_t bytes, std::uint64_t tag, Slab& out, bool& same_tag);
  void give_back(Slab&& slab, std::size_t bytes, std::uint64_t lease_epoch) noexcept;

  static constexpr std::size_t kMinSlabBytes = 64;
  static constexpr std::size_t kNumClasses = 48;  // up to 2^47 B — beyond any host

  mutable std::mutex mutex_;
  std::vector<Slab> free_[kNumClasses];
  WorkspaceStats stats_;
  std::atomic<std::uint64_t> epoch_{0};
  bool pooling_ = true;
};

/// A growable array over workspace slabs — the pooled stand-in for the hot
/// loop's per-iteration std::vectors (frontier lists, sync send buffers).
/// clear() keeps capacity, so after the first iteration has sized it no
/// further checkout (let alone heap allocation) happens.
template <typename T>
class PooledVec {
  static_assert(std::is_trivially_copyable_v<T>, "PooledVec elements are memcpy-grown");

 public:
  PooledVec(Workspace& ws, std::string_view tag) : ws_(&ws), tag_(tag) {}

  void push_back(const T& value) {
    if (size_ == capacity()) grow(size_ + 1);
    lease_.data()[size_++] = value;
  }

  /// Sets the size, growing storage if needed. New elements are
  /// uninitialised (Fill::Dirty) — callers write before reading, exactly as
  /// the vectors this replaces were used.
  void resize(std::size_t n) {
    if (n > capacity()) grow(n);
    size_ = n;
  }

  void clear() { size_ = 0; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return lease_ ? lease_.capacity() : 0; }

  T* data() { return lease_.data(); }
  const T* data() const { return lease_.data(); }
  T& operator[](std::size_t i) { return lease_[i]; }
  const T& operator[](std::size_t i) const { return lease_[i]; }
  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  std::span<T> span() { return {data(), size_}; }
  std::span<const T> span() const { return {data(), size_}; }
  operator std::span<const T>() const { return span(); }

  /// Releases the storage back to the pool.
  void reset() {
    lease_.release();
    size_ = 0;
  }

 private:
  void grow(std::size_t need) {
    const std::size_t want = std::max<std::size_t>({need, 2 * capacity(), 16});
    auto bigger = ws_->take<T>(want, tag_);
    if (size_ > 0) std::memcpy(bigger.data(), lease_.data(), size_ * sizeof(T));
    lease_ = std::move(bigger);
  }

  Workspace* ws_;
  std::string_view tag_;
  Workspace::Lease<T> lease_;
  std::size_t size_ = 0;
};

}  // namespace gala::exec
