#include "gala/exec/workspace.hpp"

#include <algorithm>

#include "gala/telemetry/flight_recorder.hpp"

namespace gala::exec {

std::uint64_t Workspace::checkout(std::size_t bytes, std::uint64_t tag, Slab& out,
                                  bool& same_tag) {
  const std::size_t capacity = class_bytes(bytes);
  const std::size_t first_class = class_index(capacity);
  same_tag = false;

  std::lock_guard lock(mutex_);
  ++stats_.checkouts;
  if (pooling_) {
    // Best fit: the exact class, then nearby larger ones. Within a class,
    // prefer a slab last used under the same tag. The slack bound keeps a
    // small request from consuming a much larger slab another consumer will
    // re-take this iteration (internal fragmentation ≤ 4×).
    constexpr std::size_t kMaxFitSlack = 2;  // up to 4 * requested class
    const std::size_t last_class = std::min(first_class + kMaxFitSlack + 1, kNumClasses);
    for (std::size_t c = first_class; c < last_class; ++c) {
      std::vector<Slab>& bucket = free_[c];
      if (bucket.empty()) continue;
      std::size_t pick = bucket.size() - 1;
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (bucket[i].tag_hash == tag) {
          pick = i;
          break;
        }
      }
      out = std::move(bucket[pick]);
      bucket.erase(bucket.begin() + static_cast<std::ptrdiff_t>(pick));
      same_tag = out.tag_hash == tag;
      out.tag_hash = tag;
      ++stats_.reuse_hits;
      if (same_tag) ++stats_.tag_hits;
      stats_.pooled_bytes -= out.capacity;
      stats_.outstanding_bytes += out.capacity;
      stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.outstanding_bytes);
      stats_.level_peak_bytes = std::max(stats_.level_peak_bytes, stats_.outstanding_bytes);
      return epoch_.load(std::memory_order_relaxed);
    }
  }
  out.data = std::make_unique<std::byte[]>(capacity);
  out.capacity = capacity;
  out.tag_hash = tag;
  ++stats_.heap_allocs;
  // Pool misses are the interesting checkout outcome (steady-state loops run
  // alloc-free), so only they earn a flight event.
  telemetry::flight(telemetry::FlightKind::WorkspaceAlloc, static_cast<double>(capacity),
                    static_cast<double>(stats_.heap_allocs));
  stats_.bytes_allocated += capacity;
  stats_.outstanding_bytes += capacity;
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.outstanding_bytes);
  stats_.level_peak_bytes = std::max(stats_.level_peak_bytes, stats_.outstanding_bytes);
  return epoch_.load(std::memory_order_relaxed);
}

void Workspace::give_back(Slab&& slab, std::size_t /*bytes*/, std::uint64_t lease_epoch) noexcept {
  Slab taken = std::move(slab);  // always consume: the lease's slab goes null
  std::lock_guard lock(mutex_);
  stats_.outstanding_bytes -= taken.capacity;
  if (lease_epoch != epoch_.load(std::memory_order_relaxed)) ++stats_.stale_releases;
  if (!pooling_) return;  // `taken` frees the storage here
  stats_.pooled_bytes += taken.capacity;
  free_[class_index(taken.capacity)].push_back(std::move(taken));
}

void Workspace::reset_level() {
  {
    std::lock_guard lock(mutex_);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    ++stats_.levels;
    // The new level starts from whatever is still (illegitimately) checked
    // out; normally zero, since leases must not straddle levels.
    stats_.level_peak_bytes = stats_.outstanding_bytes;
  }
  // Leak detector hook (outside the workspace lock — the registry takes its
  // own): any tag with live modeled bytes here is a lease straddling levels.
  if (memtrace::MemRegistry::armed()) memtrace::MemRegistry::global().note_level_reset();
}

std::size_t Workspace::trim() {
  std::lock_guard lock(mutex_);
  std::size_t freed = 0;
  for (auto& bucket : free_) {
    for (const Slab& slab : bucket) freed += slab.capacity;
    bucket.clear();
  }
  stats_.pooled_bytes = 0;
  return freed;
}

void Workspace::set_pooling(bool enabled) {
  std::lock_guard lock(mutex_);
  pooling_ = enabled;
}

bool Workspace::pooling() const {
  std::lock_guard lock(mutex_);
  return pooling_;
}

WorkspaceStats Workspace::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace gala::exec
