#include "gala/resilience/fault_injection.hpp"

#include <fstream>
#include <sstream>

#include "gala/common/json.hpp"
#include "gala/common/prng.hpp"
#include "gala/telemetry/flight_recorder.hpp"
#include "gala/telemetry/telemetry.hpp"

namespace gala::resilience {

std::string to_string(FaultSite site) {
  switch (site) {
    case FaultSite::KernelLaunch:
      return "kernel-launch";
    case FaultSite::SharedAlloc:
      return "shared-alloc";
    case FaultSite::ScratchGrow:
      return "scratch-grow";
    case FaultSite::CollectiveDrop:
      return "collective-drop";
    case FaultSite::CollectiveTimeout:
      return "collective-timeout";
    case FaultSite::CollectiveCorrupt:
      return "collective-corrupt";
    case FaultSite::BudgetShrink:
      return "budget-shrink";
  }
  return "?";
}

FaultSite fault_site_from_string(std::string_view name) {
  if (name == "kernel-launch") return FaultSite::KernelLaunch;
  if (name == "shared-alloc") return FaultSite::SharedAlloc;
  if (name == "scratch-grow") return FaultSite::ScratchGrow;
  if (name == "collective-drop") return FaultSite::CollectiveDrop;
  if (name == "collective-timeout") return FaultSite::CollectiveTimeout;
  if (name == "collective-corrupt") return FaultSite::CollectiveCorrupt;
  if (name == "budget-shrink") return FaultSite::BudgetShrink;
  GALA_CHECK(false, "unknown fault site '" << std::string(name)
                                           << "' (kernel-launch|shared-alloc|scratch-grow|"
                                              "collective-drop|collective-timeout|"
                                              "collective-corrupt|budget-shrink)");
}

FaultPlan FaultPlan::from_json(std::string_view text) {
  const JsonValue doc = parse_json(text);
  GALA_CHECK(doc.is_object(), "fault plan must be a JSON object");
  FaultPlan plan;
  if (const JsonValue* seed = doc.find("seed")) {
    GALA_CHECK(seed->is_number() && seed->number >= 0, "fault plan 'seed' must be a non-negative number");
    plan.seed = static_cast<std::uint64_t>(seed->number);
  }
  const JsonValue& rules = doc.at("rules");
  GALA_CHECK(rules.is_array(), "fault plan 'rules' must be an array");
  for (const JsonValue& r : rules.array) {
    GALA_CHECK(r.is_object(), "fault rule must be a JSON object");
    FaultRule rule;
    rule.site = fault_site_from_string(r.at("site").string);
    if (const JsonValue* v = r.find("label")) rule.label = v->string;
    if (const JsonValue* v = r.find("rank")) rule.rank = static_cast<int>(v->number);
    if (const JsonValue* v = r.find("probability")) {
      GALA_CHECK(v->is_number() && v->number >= 0.0 && v->number <= 1.0,
                 "fault rule 'probability' must be in [0, 1]");
      rule.probability = v->number;
    }
    if (const JsonValue* v = r.find("skip_first")) {
      GALA_CHECK(v->is_number() && v->number >= 0, "fault rule 'skip_first' must be >= 0");
      rule.skip_first = static_cast<int>(v->number);
    }
    if (const JsonValue* v = r.find("max_fires")) {
      rule.max_fires = static_cast<int>(v->number);
    }
    plan.rules.push_back(std::move(rule));
  }
  return plan;
}

FaultPlan FaultPlan::load(const std::string& path) {
  std::ifstream in(path);
  GALA_CHECK(in.is_open(), "cannot open fault plan: " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_json(buf.str());
}

std::string FaultPlan::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("seed").value(static_cast<std::uint64_t>(seed));
  w.key("rules").begin_array();
  for (const FaultRule& r : rules) {
    w.begin_object();
    w.key("site").value(to_string(r.site));
    if (!r.label.empty()) w.key("label").value(r.label);
    if (r.rank >= 0) w.key("rank").value(r.rank);
    w.key("probability").value(r.probability);
    if (r.skip_first > 0) w.key("skip_first").value(r.skip_first);
    if (r.max_fires >= 0) w.key("max_fires").value(r.max_fires);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

FaultInjector& FaultInjector::global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(FaultPlan plan) {
  std::lock_guard lock(mutex_);
  plan_ = std::move(plan);
  hits_.assign(plan_.rules.size(), 0);
  fired_.assign(plan_.rules.size(), 0);
  fires_.store(0, std::memory_order_relaxed);
  armed_flag_.store(!plan_.rules.empty(), std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  std::lock_guard lock(mutex_);
  armed_flag_.store(false, std::memory_order_relaxed);
  plan_ = FaultPlan{};
  hits_.clear();
  fired_.clear();
}

bool FaultInjector::should_fire(FaultSite site, std::string_view label, int rank,
                                FaultRule* fired_rule) {
  if (!armed()) return false;
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (rule.site != site) continue;
    if (!rule.label.empty() && label.find(rule.label) == std::string_view::npos) continue;
    if (rule.rank >= 0 && rank >= 0 && rule.rank != rank) continue;
    const std::uint64_t hit = hits_[i]++;
    if (hit < static_cast<std::uint64_t>(rule.skip_first)) continue;
    if (rule.max_fires >= 0 && fired_[i] >= static_cast<std::uint64_t>(rule.max_fires)) continue;
    if (rule.probability < 1.0) {
      // Counter-based seeded coin: deterministic for a fixed (seed, rule, hit).
      const std::uint64_t h = splitmix64(plan_.seed ^ (i * 0x9e3779b97f4a7c15ULL) ^ hit);
      if (static_cast<double>(h >> 11) * 0x1.0p-53 >= rule.probability) continue;
    }
    ++fired_[i];
    const std::uint64_t total = fires_.fetch_add(1, std::memory_order_relaxed) + 1;
    telemetry::Registry::global().counter("resilience.faults_injected").add(1);
    telemetry::flight(telemetry::FlightKind::FaultFire, static_cast<double>(static_cast<int>(site)),
                      static_cast<double>(total), rank);
    if (fired_rule != nullptr) *fired_rule = rule;
    return true;
  }
  return false;
}

void inject_throw(FaultSite site, std::string_view label) {
  if (!FaultInjector::global().should_fire(site, label)) return;
  switch (site) {
    case FaultSite::SharedAlloc:
      GALA_THROW(ResourceExhausted, "injected fault [shared-alloc] at '" << std::string(label)
                                                                         << "': shared-memory "
                                                                            "arena exhausted");
    case FaultSite::ScratchGrow:
      GALA_THROW(ResourceExhausted, "injected fault [scratch-grow] at '" << std::string(label)
                                                                         << "': global scratch "
                                                                            "exhausted");
    default:
      GALA_THROW(TransientFault,
                 "injected fault [" << to_string(site) << "] at '" << std::string(label) << "'");
  }
}

}  // namespace gala::resilience
