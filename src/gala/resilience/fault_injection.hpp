// Deterministic, seeded fault injection for the GALA pipeline.
//
// A FaultPlan is a list of rules, each naming an injection *site* (kernel
// launch, shared-memory allocation, hashtable global-scratch growth, or a
// multi-GPU collective), an optional label substring (kernel name, policy
// name), an optional rank, and a firing schedule (skip the first N matching
// hits, then fire up to M times, each with a seeded deterministic
// probability). Plans load from JSON (schema in docs/resilience.md) or are
// built programmatically by tests.
//
// Cost discipline (same as telemetry): when no plan is armed, every
// instrumented site pays exactly one relaxed atomic load and a predicted
// branch — no strings, no locks, no allocation. Sites are wired via
// maybe_inject() (throwing sites: gpusim launches, arena allocation, scratch
// growth) or should_fire() (non-throwing sites: the Communicator corrupts /
// drops payloads itself so the fault is *detected* rather than thrown).
//
// Determinism: a rule's firing decision depends only on (plan seed, rule
// index, per-rule hit count). Rules evaluated from a single call site — or
// from a rank-filtered collective site — fire identically run after run;
// probability < 1 on a site reached concurrently from many threads is
// deterministic in *count* but not in which thread observes the fault.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "gala/common/error.hpp"

namespace gala::resilience {

/// Retryable injected failure (kernel launch died, collective failed). The
/// run supervisor retries these with backoff before degrading.
class TransientFault : public Error {
 public:
  using Error::Error;
};

enum class FaultSite {
  KernelLaunch,       ///< gpusim::Device::launch / launch_sequential entry
  SharedAlloc,        ///< SharedMemoryArena::allocate (simulated exhaustion)
  ScratchGrow,        ///< NeighborCommunityTable global-scratch growth
  CollectiveDrop,     ///< a rank's collective contribution is lost
  CollectiveTimeout,  ///< a rank stalls past the collective deadline
  CollectiveCorrupt,  ///< a rank's payload is corrupted on the wire
  BudgetShrink,       ///< the governor's memory budget is cut mid-run
};

std::string to_string(FaultSite site);
/// Inverse of to_string; throws gala::Error on an unknown name.
FaultSite fault_site_from_string(std::string_view name);

struct FaultRule {
  FaultSite site = FaultSite::KernelLaunch;
  /// Substring match on the site label (kernel name, policy, collective
  /// name); empty matches everything.
  std::string label;
  /// Collective sites only: fire on this rank (-1 = any rank).
  int rank = -1;
  /// Seeded per-hit firing probability in [0, 1].
  double probability = 1.0;
  /// Matching hits to let pass before the rule may fire.
  int skip_first = 0;
  /// Cap on total fires (-1 = unlimited).
  int max_fires = -1;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;

  /// Parses the JSON schema documented in docs/resilience.md.
  static FaultPlan from_json(std::string_view text);
  /// Reads and parses a plan file.
  static FaultPlan load(const std::string& path);
  std::string to_json() const;
};

/// The process-wide injector. Disarmed by default; arm() installs a plan and
/// flips the fast-path flag that every instrumented site checks.
class FaultInjector {
 public:
  static FaultInjector& global();

  /// Fast disarmed check: a single relaxed load (the only cost instrumented
  /// sites pay in production).
  static bool armed() { return armed_flag_.load(std::memory_order_relaxed); }

  void arm(FaultPlan plan);
  void disarm();

  /// Evaluates the plan for one site hit; true when a rule fires. `fired_rule`
  /// (optional) receives a copy of the winning rule. Safe to call when
  /// disarmed (returns false).
  bool should_fire(FaultSite site, std::string_view label, int rank = -1,
                   FaultRule* fired_rule = nullptr);

  /// Total fires since the last arm().
  std::uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }

 private:
  FaultInjector() = default;

  static inline std::atomic<bool> armed_flag_{false};

  mutable std::mutex mutex_;
  FaultPlan plan_;
  std::vector<std::uint64_t> hits_;   // per-rule matching-hit count
  std::vector<std::uint64_t> fired_;  // per-rule fire count
  std::atomic<std::uint64_t> fires_{0};
};

/// Throwing injection hook for sites whose natural failure is an exception:
/// kernel launches throw TransientFault; shared-memory allocation and
/// global-scratch growth throw gala::ResourceExhausted (the same type a real
/// overflow raises, so degradation paths treat both identically).
void inject_throw(FaultSite site, std::string_view label);

/// The hot-path wrapper: zero work unless a plan is armed.
inline void maybe_inject(FaultSite site, std::string_view label) {
  if (!FaultInjector::armed()) return;
  inject_throw(site, label);
}

/// RAII arm/disarm for tests: arms the global injector on construction and
/// disarms on destruction (exception-safe).
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan) { FaultInjector::global().arm(std::move(plan)); }
  ~ScopedFaultPlan() { FaultInjector::global().disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace gala::resilience
