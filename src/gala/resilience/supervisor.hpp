// Supervised execution of the GALA pipeline: checkpoints, validation,
// bounded retry, and graceful degradation.
//
// run_louvain_supervised() mirrors core::run_louvain's level loop but wraps
// each level in a supervision envelope:
//
//   1. checkpoint — before a level runs, the best composed assignment so far
//      (plus its community weights and modularity) is retained as the
//      rollback target ("dendrogram cursor": how deep the accepted hierarchy
//      goes).
//   2. run phase 1, retrying transient faults (resilience::TransientFault,
//      gala::ResourceExhausted, ValidationError) up to max_retries with
//      exponential backoff. Retries are counted and emitted as
//      RecoveryEvents.
//   3. degrade — when retries are exhausted the level re-runs on the
//      sequential host path (core/sequential_louvain.hpp): no gpusim, no
//      arena, no scratch, so no injection point can reach it and the ladder
//      terminates. The result may differ slightly from the BSP optimum, so
//      degraded runs report the path taken (SupervisedResult::degraded +
//      events) instead of promising bitwise parity.
//   4. validate — between phases: assignment well-formedness (size, id
//      bounds), finite/non-negative community weights, finite modularity in
//      [-1, 1]. Failures are retryable (they indicate corrupted state).
//   5. monotonicity guard — a level whose modularity falls more than q_slack
//      below the best prior level is rejected and the run rolls back to the
//      best checkpoint instead of folding the bad partition in.
//
// strict mode disables every recovery path: the first fault is rethrown
// unchanged (chaos suites use this to assert fail-closed behaviour).
//
// Every recovery decision increments a telemetry counter
// (resilience.retries / sequential_fallbacks / rollbacks) and is recorded in
// SupervisedResult::events for the run report.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "gala/core/gala.hpp"
#include "gala/metrics/health.hpp"
#include "gala/resilience/fault_injection.hpp"

namespace gala::resilience {

/// An inter-phase invariant did not hold (corrupted assignment, non-finite
/// weights, out-of-range modularity). Retryable under supervision.
class ValidationError : public Error {
 public:
  using Error::Error;
};

struct SupervisorConfig {
  /// Transient-fault retries per level before degrading.
  int max_retries = 2;
  /// Backoff before retry r sleeps backoff_base_ms << r (0 = no sleep; the
  /// simulated faults need no cool-down, real deployments would set this).
  int backoff_base_ms = 0;
  /// Fail closed: rethrow the first fault, no retry / fallback / rollback.
  bool strict = false;
  /// Allow the sequential host-path re-run once retries are exhausted.
  bool sequential_fallback = true;
  /// Validate inter-phase invariants (cheap: O(V) per level).
  bool validate = true;
  /// Modularity-monotonicity tolerance before a rollback triggers.
  double q_slack = 1e-9;
  /// When non-empty, every recovery decision (retry, validator failure,
  /// sequential fallback, rollback) dumps the flight recorder's merged
  /// event window to this path as a post-mortem JSON document
  /// (telemetry/flight_recorder.hpp). Later dumps overwrite earlier ones,
  /// so the file always holds the window around the *latest* incident.
  std::string flight_dump_path;
  /// Keep only the newest N events per dump (0 = the full window).
  std::size_t flight_dump_depth = 0;
  /// Run the algorithm-health monitor (metrics/health.hpp) over every
  /// level's iteration trajectory and record stall / oscillation verdicts
  /// as advisory RecoveryEvents (stage "health", action "advisory"). Purely
  /// observational: advisories never trigger retries or rollbacks.
  bool health_advisory = true;
};

/// One recovery decision taken by the supervisor (chronological).
struct RecoveryEvent {
  int level = 0;
  int attempt = 0;
  std::string stage;   ///< "phase1", "validate", "monotonicity"
  std::string action;  ///< "retry", "sequential-fallback", "rollback"
  std::string detail;  ///< the fault/violation message that triggered it
};

/// A restorable snapshot of the accepted hierarchy: the composed assignment
/// after `level` folds, its per-community total degrees D_V(C) on the
/// original graph, and its modularity.
struct Checkpoint {
  int level = -1;  ///< dendrogram cursor: folds accepted so far
  std::vector<cid_t> assignment;
  std::vector<wt_t> community_weights;
  wt_t modularity = -1;
};

struct SupervisedResult {
  core::GalaResult result;
  std::vector<RecoveryEvent> events;
  int retries = 0;
  /// True when any level ran on a degraded path (sequential fallback).
  bool degraded = false;
  /// True when the monotonicity guard rejected a level.
  bool rolled_back = false;
  /// Algorithm-health verdicts per accepted attempt (only populated when
  /// SupervisorConfig::health_advisory is on). Retried attempts restart the
  /// level trajectory, so the report reflects the attempt that stuck.
  metrics::HealthReport health;
};

// -- Inter-phase validators (throw ValidationError) --------------------------

/// Assignment covers every vertex with an id in [0, V).
void validate_partition(const graph::Graph& g, std::span<const cid_t> community);

/// Per-community total degrees are finite, non-negative, and sum to 2|E|.
/// Returns the computed weights (reused for checkpoints).
std::vector<wt_t> validate_community_weights(const graph::Graph& g,
                                             std::span<const cid_t> community);

/// Modularity is finite and within the theoretical [-1, 1] envelope.
void validate_modularity(wt_t q);

/// Structural CSR invariants (delegates to graph::Graph::validate, wrapping
/// its Error as ValidationError).
void validate_csr(const graph::Graph& g);

/// Runs the full multi-level pipeline under supervision.
SupervisedResult run_louvain_supervised(const graph::Graph& g, const core::GalaConfig& config = {},
                                        const SupervisorConfig& sup = {});

}  // namespace gala::resilience
