#include "gala/resilience/supervisor.hpp"

#include <chrono>
#include <cmath>
#include <optional>
#include <thread>
#include <utility>

#include "gala/common/timer.hpp"
#include "gala/core/aggregation.hpp"
#include "gala/core/modularity.hpp"
#include "gala/core/refinement.hpp"
#include "gala/core/sequential_louvain.hpp"
#include "gala/core/vertex_following.hpp"
#include "gala/metrics/health.hpp"
#include "gala/telemetry/flight_recorder.hpp"
#include "gala/telemetry/telemetry.hpp"

namespace gala::resilience {

namespace {

/// The last-resort level re-run: the reference sequential Louvain sweep on
/// the host (core/sequential_louvain.hpp). It shares no code with the gpusim
/// substrate — no kernel launches, no shared-memory arena, no hashtable
/// scratch — so no injection point can reach it and the degradation ladder
/// terminates. Vertex-at-a-time greedy with immediate updates typically
/// lands on a (slightly different) local optimum, which is why degraded runs
/// report the path taken instead of promising bitwise modularity parity.
core::Phase1Result sequential_host_phase1(const graph::Graph& g, const core::BspConfig& bsp) {
  core::SequentialOptions opts;
  opts.resolution = bsp.resolution;
  opts.theta = bsp.theta;
  opts.max_passes_per_level = bsp.max_iterations;
  core::SequentialResult seq = core::sequential_phase1(g, opts);
  core::Phase1Result phase1;
  phase1.community = std::move(seq.assignment);
  phase1.modularity = seq.modularity;
  phase1.num_communities = seq.num_communities;
  return phase1;
}

bool is_transient(const std::exception& e) {
  return dynamic_cast<const TransientFault*>(&e) != nullptr ||
         dynamic_cast<const ResourceExhausted*>(&e) != nullptr ||
         dynamic_cast<const ValidationError*>(&e) != nullptr;
}

}  // namespace

void validate_partition(const graph::Graph& g, std::span<const cid_t> community) {
  if (community.size() != g.num_vertices()) {
    GALA_THROW(ValidationError, "assignment size " << community.size() << " != vertex count "
                                                   << g.num_vertices());
  }
  for (std::size_t v = 0; v < community.size(); ++v) {
    if (community[v] >= g.num_vertices()) {
      GALA_THROW(ValidationError, "assignment[" << v << "] = " << community[v]
                                                << " out of range [0, " << g.num_vertices()
                                                << ")");
    }
  }
}

std::vector<wt_t> validate_community_weights(const graph::Graph& g,
                                             std::span<const cid_t> community) {
  validate_partition(g, community);
  std::vector<wt_t> totals(g.num_vertices(), 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) totals[community[v]] += g.degree(v);
  wt_t sum = 0;
  for (std::size_t c = 0; c < totals.size(); ++c) {
    const wt_t w = totals[c];
    if (!std::isfinite(w) || w < 0) {
      GALA_THROW(ValidationError, "community " << c << " has invalid total degree " << w);
    }
    sum += w;
  }
  const wt_t two_m = 2 * g.total_weight();
  if (two_m > 0 && std::abs(sum - two_m) > 1e-6 * two_m) {
    GALA_THROW(ValidationError,
               "community degrees sum to " << sum << ", expected 2|E| = " << two_m);
  }
  return totals;
}

void validate_modularity(wt_t q) {
  if (!std::isfinite(q) || q < -1.0 || q > 1.0) {
    GALA_THROW(ValidationError, "modularity " << q << " outside [-1, 1]");
  }
}

void validate_csr(const graph::Graph& g) {
  try {
    g.validate();
  } catch (const Error& e) {
    GALA_THROW(ValidationError, "CSR invariant violated: " << e.what());
  }
}

SupervisedResult run_louvain_supervised(const graph::Graph& g, const core::GalaConfig& config,
                                        const SupervisorConfig& sup) {
  using core::AggregationResult;
  using core::Phase1Result;

  if (config.vertex_following) {
    // Same preprocessing recursion as core::run_louvain: contraction is
    // modularity-exact, so supervision of the reduced run covers the whole.
    core::VertexFollowingResult vf = core::follow_vertices(g);
    core::GalaConfig inner = config;
    inner.vertex_following = false;
    SupervisedResult sr = run_louvain_supervised(vf.reduced, inner, sup);
    sr.result.assignment = core::expand_assignment(vf, sr.result.assignment);
    sr.result.num_communities = core::renumber_communities(sr.result.assignment);
    return sr;
  }

  SupervisedResult sr;
  core::GalaResult& result = sr.result;
  Timer total_timer;

  auto& retries_counter = telemetry::Registry::global().counter("resilience.retries");
  auto& fallback_counter = telemetry::Registry::global().counter("resilience.sequential_fallbacks");
  auto& rollback_counter = telemetry::Registry::global().counter("resilience.rollbacks");

  // Post-mortem hook: each recovery decision dumps the flight recorder's
  // merged event window. write_postmortem is noexcept — a dump that cannot
  // be written never masks the incident being recorded.
  auto dump_flight = [&sup](const std::string& reason) {
    if (sup.flight_dump_path.empty()) return;
    telemetry::FlightRecorder::global().write_postmortem(sup.flight_dump_path, reason,
                                                         sup.flight_dump_depth);
  };

  // Health advisory: a fresh monitor per phase-1 attempt (each attempt is
  // one engine run == one level trajectory), observed through the engine's
  // iteration callback without displacing the caller's own hook.
  core::BspConfig bsp = config.bsp;
  metrics::HealthMonitor* live_monitor = nullptr;
  if (sup.health_advisory) {
    core::IterationCallback user = config.bsp.on_iteration;
    bsp.on_iteration = [&live_monitor, user](int iter, const core::IterationStats& stats,
                                             std::span<const std::uint8_t> active,
                                             std::span<const std::uint8_t> moved,
                                             std::span<const cid_t> comm) {
      if (live_monitor != nullptr) live_monitor->observe(iter, stats, active, moved, comm);
      if (user) user(iter, stats, active, moved, comm);
    };
  }

  const vid_t n = g.num_vertices();
  result.assignment.resize(n);
  for (vid_t v = 0; v < n; ++v) result.assignment[v] = v;

  const graph::Graph* current = &g;
  graph::Graph owned;
  wt_t prev_q = -1;  // any first level is an improvement

  // The rollback target: the best accepted hierarchy so far. Level -1 is the
  // singleton partition (every vertex its own community).
  Checkpoint best;
  best.assignment = result.assignment;
  best.modularity = prev_q;

  for (int level = 0; level < config.max_levels; ++level) {
    telemetry::ScopedSpan level_span(telemetry::Tracer::global(), "supervised-level", "pipeline");
    Timer level_timer;

    // ---- phase 1 under retry/degradation ----------------------------------
    Phase1Result phase1;
    bool level_ok = false;
    std::optional<metrics::HealthMonitor> attempt_monitor;
    for (int attempt = 0; !level_ok; ++attempt) {
      try {
        if (sup.health_advisory) {
          attempt_monitor.emplace();
          live_monitor = &*attempt_monitor;
        }
        phase1 = core::bsp_phase1(*current, bsp);
        if (sup.validate) {
          validate_partition(*current, phase1.community);
          validate_modularity(phase1.modularity);
        }
        level_ok = true;
      } catch (const Error& e) {
        if (dynamic_cast<const ValidationError*>(&e) != nullptr) {
          telemetry::flight(telemetry::FlightKind::ValidatorFail, static_cast<double>(level),
                            static_cast<double>(attempt));
        }
        if (sup.strict || !is_transient(e)) {
          dump_flight(std::string("fatal: ") + e.what());
          throw;
        }
        if (attempt < sup.max_retries) {
          telemetry::flight(telemetry::FlightKind::Retry, static_cast<double>(level),
                            static_cast<double>(attempt));
          sr.events.push_back({level, attempt, "phase1", "retry", e.what()});
          ++sr.retries;
          retries_counter.add(1);
          dump_flight(std::string("retry: ") + e.what());
          if (sup.backoff_base_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(static_cast<long>(sup.backoff_base_ms) << attempt));
          }
          continue;
        }
        if (!sup.sequential_fallback) {
          dump_flight(std::string("retries-exhausted: ") + e.what());
          throw;
        }
        // Last resort: re-run this level on the sequential host path. If the
        // armed plan reaches this path too, the fault propagates — the run
        // fails closed with the injection point named.
        telemetry::ScopedSpan fb_span(telemetry::Tracer::global(), "sequential-fallback",
                                      "resilience");
        telemetry::flight(telemetry::FlightKind::SequentialFallback, static_cast<double>(level),
                          static_cast<double>(attempt));
        sr.events.push_back({level, attempt, "phase1", "sequential-fallback", e.what()});
        fallback_counter.add(1);
        sr.degraded = true;
        dump_flight(std::string("sequential-fallback: ") + e.what());
        if (sup.health_advisory) {
          // The failed BSP attempt may have fed the monitor a partial
          // trajectory; the sequential path reports no iterations, so start
          // clean rather than misattribute the aborted attempt.
          attempt_monitor.emplace();
          live_monitor = &*attempt_monitor;
        }
        phase1 = sequential_host_phase1(*current, config.bsp);
        if (sup.validate) {
          validate_partition(*current, phase1.community);
          validate_modularity(phase1.modularity);
        }
        level_ok = true;
      }
    }

    // ---- health advisory on the attempt that stuck ------------------------
    if (sup.health_advisory && attempt_monitor.has_value()) {
      live_monitor = nullptr;
      metrics::HealthReport attempt_health = attempt_monitor->report();
      sr.health.config = attempt_health.config;
      for (metrics::LevelHealth lv : attempt_health.levels) {
        lv.level = level;  // the monitor numbers attempts; renumber to the pipeline level
        if (lv.stalled) {
          sr.events.push_back({level, 0, "health", "advisory",
                               "stall: gain below epsilon from iteration " +
                                   std::to_string(lv.first_stall) + " while vertices still move"});
        }
        if (lv.oscillating_vertices > 0) {
          sr.events.push_back({level, 0, "health", "advisory",
                               std::to_string(lv.oscillating_vertices) +
                                   " oscillating vertices (" +
                                   std::to_string(lv.oscillation_moves) + " flip-flops)"});
        }
        sr.health.levels.push_back(std::move(lv));
      }
    }

    if (level == 0 && config.keep_first_round) result.first_round = phase1;
    if (level_span.active()) {
      level_span.arg("level", static_cast<double>(level));
      level_span.arg("vertices", static_cast<double>(current->num_vertices()));
      level_span.arg("modularity", phase1.modularity);
    }

    core::GalaLevel lv;
    lv.vertices = current->num_vertices();
    lv.communities = phase1.num_communities;
    lv.modularity = phase1.modularity;
    lv.iterations = static_cast<int>(phase1.iterations.size());
    result.modeled_ms += phase1.modeled_ms();

    // ---- monotonicity guard ----------------------------------------------
    if (level > 0 && phase1.modularity < prev_q - sup.q_slack) {
      if (sup.strict) {
        GALA_THROW(ValidationError, "modularity regressed at level "
                                        << level << ": " << phase1.modularity << " < " << prev_q);
      }
      telemetry::flight(telemetry::FlightKind::Rollback, static_cast<double>(level),
                        phase1.modularity);
      sr.events.push_back({level, 0, "monotonicity", "rollback",
                           "level modularity " + std::to_string(phase1.modularity) +
                               " below best " + std::to_string(best.modularity)});
      rollback_counter.add(1);
      dump_flight("rollback: modularity regressed at level " + std::to_string(level));
      sr.rolled_back = true;
      result.assignment = best.assignment;
      prev_q = best.modularity;
      break;
    }

    // ---- convergence / fold (mirrors core::run_louvain) -------------------
    if (level > 0 && phase1.modularity - prev_q < config.level_theta) {
      const AggregationResult last = core::aggregate(*current, phase1.community);
      result.assignment = core::compose_assignment(result.assignment, last.fine_to_coarse);
      prev_q = phase1.modularity;
      lv.wall_seconds = level_timer.seconds();
      result.levels.push_back(lv);
      break;
    }
    prev_q = phase1.modularity;

    AggregationResult agg;
    if (config.refine) {
      core::RefinementResult refined = core::refine_partition(
          *current, phase1.community, config.bsp.resolution, config.bsp.seed ^ (level + 1));
      agg = core::aggregate(*current, refined.refined);
    } else {
      agg = core::aggregate(*current, phase1.community);
    }
    result.assignment = core::compose_assignment(result.assignment, agg.fine_to_coarse);
    lv.wall_seconds = level_timer.seconds();
    result.levels.push_back(lv);

    // ---- checkpoint the accepted fold -------------------------------------
    if (prev_q > best.modularity) {
      best.level = level;
      best.assignment = result.assignment;
      best.modularity = prev_q;
      if (sup.validate) {
        best.community_weights = validate_community_weights(g, result.assignment);
        validate_csr(agg.coarse);
      }
    }

    if (agg.num_communities == current->num_vertices()) break;  // no compression
    owned = std::move(agg.coarse);
    current = &owned;
  }

  result.num_communities = core::renumber_communities(result.assignment);
  result.modularity = prev_q;
  result.wall_seconds = total_timer.seconds();
  return sr;
}

}  // namespace gala::resilience
