// Fundamental fixed-width types shared by all GALA modules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace gala {

/// Vertex identifier. 32 bits covers every graph in the paper's suite; the
/// edge-offset type below is 64-bit so edge counts beyond 4B are representable.
using vid_t = std::uint32_t;

/// Edge offset / edge count type (CSR row offsets).
using eid_t = std::uint64_t;

/// Community identifier. Communities are renumbered to [0, n) each level, so
/// the vertex id type suffices.
using cid_t = std::uint32_t;

/// Edge weight / modularity accumulator type.
using wt_t = double;

/// Sentinel for "no vertex" / "no community".
inline constexpr vid_t kInvalidVid = std::numeric_limits<vid_t>::max();
inline constexpr cid_t kInvalidCid = std::numeric_limits<cid_t>::max();
inline constexpr eid_t kInvalidEid = std::numeric_limits<eid_t>::max();

}  // namespace gala
