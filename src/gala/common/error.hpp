// Error handling: precondition checks and a library exception type.
//
// Following the C++ Core Guidelines (I.5/I.6, E.x): interface preconditions
// are checked with GALA_CHECK (always on — graph loading and configuration
// are not hot paths), and internal invariants with GALA_ASSERT (compiled out
// in NDEBUG builds, usable in kernels).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gala {

/// Exception thrown on violated preconditions or invalid input data.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A bounded resource ran out (shared-memory arena, hashtable scratch).
/// Distinguished from plain Error so degradation paths can catch exhaustion
/// specifically and fall back to a placement that needs less of the resource.
class ResourceExhausted : public Error {
 public:
  using Error::Error;
};

namespace detail {

template <typename E>
[[noreturn]] inline void throw_with_location(const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << msg << " (" << file << ':' << line << ')';
  throw E(os.str());
}

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << "GALA_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace gala

/// Throws exception type `E` (a gala::Error subclass) with a streamed
/// message and file:line context, e.g.
///   GALA_THROW(ResourceExhausted, "need " << bytes << "B");
#define GALA_THROW(E, msg)                                                       \
  do {                                                                           \
    std::ostringstream gala_throw_os_;                                           \
    gala_throw_os_ << msg; /* NOLINT */                                          \
    ::gala::detail::throw_with_location<E>(__FILE__, __LINE__,                   \
                                           gala_throw_os_.str());                \
  } while (0)

/// Always-on precondition check. `msg` is streamed, e.g.
///   GALA_CHECK(u < n, "vertex " << u << " out of range");
#define GALA_CHECK(expr, msg)                                                    \
  do {                                                                           \
    if (!(expr)) {                                                               \
      std::ostringstream gala_check_os_;                                         \
      gala_check_os_ << msg; /* NOLINT */                                        \
      ::gala::detail::throw_check_failure(#expr, __FILE__, __LINE__,             \
                                          gala_check_os_.str());                 \
    }                                                                            \
  } while (0)

/// Debug-only internal invariant check.
#ifdef NDEBUG
#define GALA_ASSERT(expr) ((void)0)
#else
#define GALA_ASSERT(expr)                                                        \
  do {                                                                           \
    if (!(expr)) {                                                               \
      ::gala::detail::throw_check_failure(#expr, __FILE__, __LINE__, "");        \
    }                                                                            \
  } while (0)
#endif
