// Minimal JSON support: a streaming writer and a small DOM parser.
//
// No external dependency. The writer produces compact JSON with correct
// escaping and comma management; the parser is the validation counterpart
// used by tests and tools to read back what the writer (or the telemetry
// exporters) emitted. Neither aims to be a general-purpose JSON library —
// they cover exactly the documents this repo produces.
#pragma once

#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gala/common/error.hpp"

namespace gala {

/// Streaming JSON writer with correct escaping and comma management.
/// Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("LJ");
///   w.key("sizes").begin_array().value(1).value(2).end_array();
///   w.end_object();
///   std::string json = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object() {
    prefix();
    out_ << '{';
    stack_.push_back(State::FirstInObject);
    return *this;
  }
  JsonWriter& end_object() {
    pop(State::FirstInObject, State::InObject);
    out_ << '}';
    return *this;
  }
  JsonWriter& begin_array() {
    prefix();
    out_ << '[';
    stack_.push_back(State::FirstInArray);
    return *this;
  }
  JsonWriter& end_array() {
    pop(State::FirstInArray, State::InArray);
    out_ << ']';
    return *this;
  }
  JsonWriter& key(const std::string& k) {
    prefix();
    write_string(k);
    out_ << ':';
    pending_value_ = true;
    return *this;
  }
  JsonWriter& value(const std::string& v) {
    prefix();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v) {
    prefix();
    // Shortest round-trip-exact form, so readers recover the precise value
    // (the telemetry contract: exported modeled-ms figures equal the
    // in-memory ones bit for bit).
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    out_.write(buf, res.ptr - buf);
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    prefix();
    out_ << v;
    return *this;
  }
  JsonWriter& value(int v) {
    prefix();
    out_ << v;
    return *this;
  }
  JsonWriter& value(bool v) {
    prefix();
    out_ << (v ? "true" : "false");
    return *this;
  }
  /// Splices a pre-rendered JSON value verbatim (no escaping, no
  /// validation). For embedding a fragment another writer produced — e.g.
  /// the governor section inside the mem report.
  JsonWriter& raw(const std::string& fragment) {
    prefix();
    out_ << fragment;
    return *this;
  }

  std::string str() const { return out_.str(); }

 private:
  enum class State { FirstInObject, InObject, FirstInArray, InArray };

  void prefix() {
    if (pending_value_) {
      pending_value_ = false;
      return;  // value directly after a key: no comma
    }
    if (stack_.empty()) return;
    State& s = stack_.back();
    if (s == State::FirstInObject) {
      s = State::InObject;
    } else if (s == State::FirstInArray) {
      s = State::InArray;
    } else {
      out_ << ',';
    }
  }

  void pop(State first, State rest) {
    GALA_CHECK(!stack_.empty() && (stack_.back() == first || stack_.back() == rest),
               "mismatched JSON begin/end");
    stack_.pop_back();
  }

  void write_string(const std::string& s) {
    out_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"':
          out_ << "\\\"";
          break;
        case '\\':
          out_ << "\\\\";
          break;
        case '\n':
          out_ << "\\n";
          break;
        case '\t':
          out_ << "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out_ << buf;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostringstream out_;
  std::vector<State> stack_;
  bool pending_value_ = false;
};

/// Parsed JSON document node. Object members preserve insertion order.
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::Null; }
  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }
  bool is_number() const { return type == Type::Number; }
  bool is_string() const { return type == Type::String; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const {
    if (type != Type::Object) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Object member that must exist.
  const JsonValue& at(std::string_view key) const {
    const JsonValue* v = find(key);
    GALA_CHECK(v != nullptr, "JSON object has no member '" << std::string(key) << "'");
    return *v;
  }
};

namespace detail {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    GALA_CHECK(pos_ == text_.size(), "trailing characters after JSON value at offset " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() {
    skip_ws();
    GALA_CHECK(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    GALA_CHECK(peek() == c, "expected '" << c << "' at offset " << pos_ << ", found '"
                                         << text_[pos_] << "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    JsonValue v;
    switch (peek()) {
      case '{': {
        v.type = JsonValue::Type::Object;
        ++pos_;
        if (peek() == '}') {
          ++pos_;
          return v;
        }
        while (true) {
          GALA_CHECK(peek() == '"', "expected object key at offset " << pos_);
          std::string key = parse_string_body();
          expect(':');
          v.object.emplace_back(std::move(key), parse_value());
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.type = JsonValue::Type::Array;
        ++pos_;
        if (peek() == ']') {
          ++pos_;
          return v;
        }
        while (true) {
          v.array.push_back(parse_value());
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return v;
        }
      }
      case '"':
        v.type = JsonValue::Type::String;
        v.string = parse_string_body();
        return v;
      case 't':
        GALA_CHECK(consume_literal("true"), "malformed literal at offset " << pos_);
        v.type = JsonValue::Type::Bool;
        v.boolean = true;
        return v;
      case 'f':
        GALA_CHECK(consume_literal("false"), "malformed literal at offset " << pos_);
        v.type = JsonValue::Type::Bool;
        v.boolean = false;
        return v;
      case 'n':
        GALA_CHECK(consume_literal("null"), "malformed literal at offset " << pos_);
        v.type = JsonValue::Type::Null;
        return v;
      default:
        v.type = JsonValue::Type::Number;
        v.number = parse_number();
        return v;
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      digits = digits || std::isdigit(static_cast<unsigned char>(text_[pos_]));
      ++pos_;
    }
    GALA_CHECK(digits, "malformed number at offset " << start);
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    GALA_CHECK(end != nullptr && *end == '\0', "malformed number '" << token << "'");
    return d;
  }

  /// Parses a string starting at the opening quote; returns the decoded body.
  std::string parse_string_body() {
    expect('"');
    std::string out;
    while (true) {
      GALA_CHECK(pos_ < text_.size(), "unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      GALA_CHECK(pos_ < text_.size(), "unterminated escape in JSON string");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          GALA_CHECK(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else GALA_CHECK(false, "bad hex digit in \\u escape");
          }
          // UTF-8 encode (no surrogate-pair handling — the writer never
          // emits escapes outside the BMP control range).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          GALA_CHECK(false, "unknown escape '\\" << esc << "' in JSON string");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses a complete JSON document; throws gala::Error on malformed input.
inline JsonValue parse_json(std::string_view text) {
  return detail::JsonParser(text).parse_document();
}

}  // namespace gala
