#include "gala/common/thread_pool.hpp"

#include <algorithm>

#include "gala/common/error.hpp"

namespace gala {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    GALA_CHECK(!stop_, "submit() on a stopped pool");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  parallel_for_chunked(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

void ThreadPool::parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body, std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  grain = std::max<std::size_t>(1, grain);
  // Aim for a few chunks per worker to smooth load imbalance without
  // flooding the queue.
  const std::size_t target_chunks = size() * 4;
  const std::size_t chunk = std::max(grain, (n + target_chunks - 1) / target_chunks);
  if (n <= chunk || size() == 1) {
    body(begin, end);
    return;
  }
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    submit([&body, lo, hi] { body(lo, hi); });
  }
  wait_idle();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gala
