// Wall-clock timing helpers.
#pragma once

#include <chrono>
#include <cstdint>

namespace gala {

/// Monotonic stopwatch measuring elapsed wall time in seconds.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulating timer for repeated phases (start/stop pairs).
class PhaseTimer {
 public:
  /// Begins an interval. Calling start() while already running counts as an
  /// implicit stop(): the in-flight interval is folded into the total rather
  /// than silently discarded.
  void start() {
    if (running_) stop();
    timer_.reset();
    running_ = true;
  }

  void stop() {
    if (running_) {
      total_ += timer_.seconds();
      ++count_;
      running_ = false;
    }
  }

  double total_seconds() const { return total_; }
  std::uint64_t count() const { return count_; }

  void reset() {
    total_ = 0;
    count_ = 0;
    running_ = false;
  }

 private:
  Timer timer_;
  double total_ = 0;
  std::uint64_t count_ = 0;
  bool running_ = false;
};

/// RAII interval on a PhaseTimer: start() on construction, stop() on
/// destruction. Exception-safe replacement for manual start/stop pairs.
class ScopedPhase {
 public:
  explicit ScopedPhase(PhaseTimer& timer) : timer_(timer) { timer_.start(); }
  ~ScopedPhase() { timer_.stop(); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer& timer_;
};

}  // namespace gala
