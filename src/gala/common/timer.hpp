// Wall-clock timing helpers.
#pragma once

#include <chrono>
#include <cstdint>

namespace gala {

/// Monotonic stopwatch measuring elapsed wall time in seconds.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulating timer for repeated phases (start/stop pairs).
class PhaseTimer {
 public:
  void start() { timer_.reset(); running_ = true; }

  void stop() {
    if (running_) {
      total_ += timer_.seconds();
      ++count_;
      running_ = false;
    }
  }

  double total_seconds() const { return total_; }
  std::uint64_t count() const { return count_; }

  void reset() {
    total_ = 0;
    count_ = 0;
    running_ = false;
  }

 private:
  Timer timer_;
  double total_ = 0;
  std::uint64_t count_ = 0;
  bool running_ = false;
};

}  // namespace gala
