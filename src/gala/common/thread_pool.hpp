// A small blocking thread pool with a chunked parallel_for.
//
// This is the host-side parallelism substrate: the gpusim block scheduler and
// the CPU baselines both run on top of it. The pool is created once and
// reused; parallel_for partitions the index range into contiguous chunks
// (grain-size controlled) and blocks until all chunks complete. Exceptions
// thrown by worker bodies are captured and rethrown on the calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gala {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Prefer parallel_for for data-parallel loops.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished. Rethrows the
  /// first captured worker exception, if any.
  void wait_idle();

  /// Runs body(i) for i in [begin, end) across the pool, in chunks of at
  /// least `grain` indices. Blocks until done; rethrows worker exceptions.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 256);

  /// Like parallel_for but hands each worker a whole [chunk_begin, chunk_end)
  /// range, for bodies that want to amortise per-chunk setup.
  void parallel_for_chunked(std::size_t begin, std::size_t end,
                            const std::function<void(std::size_t, std::size_t)>& body,
                            std::size_t grain = 256);

  /// Process-wide default pool (lazily constructed, sized to the machine).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace gala
