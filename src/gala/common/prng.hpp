// Deterministic pseudo-random number generation.
//
// All randomness in GALA (graph generators, the PM pruning strategy's coin
// flips, hash-function salts) flows through these generators so that every
// experiment is reproducible bit-for-bit from a seed.
#pragma once

#include <cstdint>

#include "gala/common/error.hpp"

namespace gala {

/// splitmix64 — used to expand a single seed into generator state and as a
/// cheap stateless mixer for hash-function salting.
inline constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** 1.0 — small, fast, high-quality PRNG (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator so it plugs into <random> facilities.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    // Expand the seed via splitmix64 as recommended by the authors.
    std::uint64_t sm = seed;
    for (auto& word : s_) {
      word = splitmix64(sm);
      sm = word;
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Lemire's nearly-divisionless method.
  std::uint64_t next_below(std::uint64_t bound) {
    GALA_ASSERT(bound > 0);
    const std::uint64_t x = (*this)();
    const unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Splits off an independently-seeded child generator (for per-thread or
  /// per-partition streams).
  Xoshiro256 split() { return Xoshiro256{(*this)() ^ 0x2545f4914f6cdd1dULL}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace gala
