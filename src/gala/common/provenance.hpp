// Build provenance stamped into every JSON report this repo writes (trace,
// metrics, profile, flight, health, mem). A report artifact pulled off a CI
// failure must answer "which commit, which build type, which schema" without
// the workflow context that produced it.
//
// The values come from compile definitions the top-level CMakeLists injects
// (GALA_GIT_SHA via `git rev-parse`, GALA_BUILD_TYPE from the configured
// build type); builds outside git fall back to "unknown". gala_perf_diff
// only compares numbers, so the provenance strings never trip the perf gate.
#pragma once

#include <string_view>

#include "gala/common/json.hpp"

namespace gala::provenance {

#ifndef GALA_GIT_SHA
#define GALA_GIT_SHA "unknown"
#endif
#ifndef GALA_BUILD_TYPE
#define GALA_BUILD_TYPE "unknown"
#endif

inline constexpr std::string_view git_sha() { return GALA_GIT_SHA; }
inline constexpr std::string_view build_type() { return GALA_BUILD_TYPE; }

/// Writes the "provenance" member into an open JSON object:
///   "provenance": {"git_sha": ..., "build_type": ..., "schema": "mem",
///                  "schema_version": 1}
inline void append(JsonWriter& w, std::string_view schema, int schema_version) {
  w.key("provenance").begin_object();
  w.key("git_sha").value(std::string(git_sha()));
  w.key("build_type").value(std::string(build_type()));
  w.key("schema").value(std::string(schema));
  w.key("schema_version").value(schema_version);
  w.end_object();
}

}  // namespace gala::provenance
