// Plain-text table formatting for the benchmark harnesses.
//
// Every bench binary prints the rows/series of the paper table or figure it
// regenerates; this helper keeps that output aligned and consistent.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "gala/common/error.hpp"

namespace gala {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  // Non-copyable: row()/cell() return *this for chaining, and accidentally
  // binding that to a copy silently drops cells.
  TextTable(const TextTable&) = delete;
  TextTable& operator=(const TextTable&) = delete;

  /// Starts a new row. Follow with cell() calls.
  TextTable& row() {
    rows_.emplace_back();
    return *this;
  }

  TextTable& cell(const std::string& value) {
    GALA_CHECK(!rows_.empty(), "cell() before row()");
    rows_.back().push_back(value);
    return *this;
  }

  template <typename T>
  TextTable& cell(const T& value, int precision = -1) {
    std::ostringstream os;
    if (precision >= 0) os << std::fixed << std::setprecision(precision);
    os << value;
    return cell(os.str());
  }

  void print(std::ostream& out = std::cout) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      out << "| ";
      for (std::size_t c = 0; c < header_.size(); ++c) {
        const std::string& v = c < cells.size() ? cells[c] : std::string{};
        out << std::left << std::setw(static_cast<int>(width[c])) << v;
        out << (c + 1 == header_.size() ? " |" : " | ");
      }
      out << '\n';
    };
    print_row(header_);
    out << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      out << std::string(width[c] + 2, '-') << (c + 1 == header_.size() ? "|" : "+");
    }
    out << '\n';
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gala
