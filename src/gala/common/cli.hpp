// A small declarative command-line parser for the tools/ binaries.
//
// Supports --flag, --option value, --option=value, positional arguments,
// and generated usage text. Typed getters throw gala::Error with a readable
// message on malformed values.
#pragma once

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "gala/common/error.hpp"

namespace gala {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  ArgParser& add_flag(const std::string& name, const std::string& help) {
    specs_.push_back({name, help, "", /*is_flag=*/true, /*required=*/false});
    return *this;
  }

  ArgParser& add_option(const std::string& name, const std::string& help,
                        const std::string& default_value = "") {
    specs_.push_back({name, help, default_value, false, false});
    return *this;
  }

  ArgParser& add_positional(const std::string& name, const std::string& help,
                            bool required = true) {
    positional_specs_.push_back({name, help, "", false, required});
    return *this;
  }

  /// Parses argv[1..). Returns false (after printing usage) on --help or a
  /// parse error.
  bool parse(int argc, const char* const* argv) {
    std::size_t next_positional = 0;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        print_usage();
        return false;
      }
      if (arg.rfind("--", 0) == 0) {
        std::string name = arg.substr(2);
        std::string inline_value;
        bool has_inline = false;
        if (const auto eq = name.find('='); eq != std::string::npos) {
          inline_value = name.substr(eq + 1);
          name = name.substr(0, eq);
          has_inline = true;
        }
        const Spec* spec = find_spec(name);
        if (spec == nullptr) {
          return fail("unknown option --" + name);
        }
        if (spec->is_flag) {
          if (has_inline) return fail("flag --" + name + " takes no value");
          set_value(name, "true");
        } else if (has_inline) {
          set_value(name, inline_value);
        } else {
          if (i + 1 >= argc) return fail("option --" + name + " needs a value");
          set_value(name, argv[++i]);
        }
      } else {
        if (next_positional >= positional_specs_.size()) {
          return fail("unexpected argument '" + arg + "'");
        }
        set_value(positional_specs_[next_positional++].name, arg);
      }
    }
    for (std::size_t p = next_positional; p < positional_specs_.size(); ++p) {
      if (positional_specs_[p].required) {
        return fail("missing required argument <" + positional_specs_[p].name + ">");
      }
    }
    return true;
  }

  bool has(const std::string& name) const { return find_value(name) != nullptr; }

  std::string get(const std::string& name) const {
    if (const std::string* v = find_value(name)) return *v;
    for (const Spec& s : specs_) {
      if (s.name == name) return s.default_value;
    }
    GALA_CHECK(false, "option --" << name << " was never declared");
  }

  double get_double(const std::string& name) const {
    const std::string v = get(name);
    char* end = nullptr;
    const double x = std::strtod(v.c_str(), &end);
    GALA_CHECK(end != v.c_str() && *end == '\0', "--" << name << ": '" << v << "' is not a number");
    return x;
  }

  long get_int(const std::string& name) const {
    const std::string v = get(name);
    char* end = nullptr;
    const long x = std::strtol(v.c_str(), &end, 10);
    GALA_CHECK(end != v.c_str() && *end == '\0',
               "--" << name << ": '" << v << "' is not an integer");
    return x;
  }

  void print_usage(std::ostream& out = std::cerr) const {
    out << "usage: " << program_;
    for (const Spec& p : positional_specs_) {
      out << (p.required ? " <" : " [") << p.name << (p.required ? ">" : "]");
    }
    out << " [options]\n\n" << description_ << "\n\n";
    for (const Spec& p : positional_specs_) {
      out << "  " << p.name << "  " << p.help << '\n';
    }
    out << "options:\n";
    for (const Spec& s : specs_) {
      out << "  --" << s.name << (s.is_flag ? "" : " <value>") << "  " << s.help;
      if (!s.default_value.empty()) out << " (default: " << s.default_value << ")";
      out << '\n';
    }
  }

  const std::string& error() const { return error_; }

 private:
  struct Spec {
    std::string name;
    std::string help;
    std::string default_value;
    bool is_flag;
    bool required;
  };

  const Spec* find_spec(const std::string& name) const {
    for (const Spec& s : specs_) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }

  const std::string* find_value(const std::string& name) const {
    for (const auto& [k, v] : values_) {
      if (k == name) return &v;
    }
    return nullptr;
  }

  void set_value(const std::string& name, std::string value) {
    for (auto& [k, v] : values_) {
      if (k == name) {
        v = std::move(value);
        return;
      }
    }
    values_.emplace_back(name, std::move(value));
  }

  bool fail(const std::string& message) {
    error_ = message;
    std::cerr << program_ << ": " << message << "\n";
    print_usage();
    return false;
  }

  std::string program_;
  std::string description_;
  std::vector<Spec> specs_;
  std::vector<Spec> positional_specs_;
  std::vector<std::pair<std::string, std::string>> values_;
  std::string error_;
};

/// Fail fast on an unwritable output destination: probes `path` with an
/// append-mode open (no truncation of existing content), throwing a
/// gala::Error naming the flag and the OS reason on failure. Tools call this
/// for every --*-out style flag before any real work, so a typo'd directory
/// surfaces in milliseconds instead of after the solve. Empty paths (flag
/// not given) are ignored.
inline void probe_output_path(const std::string& flag, const std::string& path) {
  if (path.empty()) return;
  std::ofstream probe(path, std::ios::app);
  if (!probe.is_open()) {
    GALA_CHECK(false, path << ": " << std::strerror(errno) << " (--" << flag << ")");
  }
}

}  // namespace gala
