#include "gala/profiler/profiler.hpp"

#include <algorithm>
#include <cmath>

#include "gala/common/provenance.hpp"
#include "gala/telemetry/telemetry.hpp"

namespace gala::profiler {

double gini(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double total = 0, weighted = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    total += sorted[i];
    weighted += static_cast<double>(i + 1) * sorted[i];
  }
  if (total <= 0) return 0.0;
  return 2.0 * weighted / (n * total) - (n + 1.0) / n;
}

double modeled_dram_bytes(const gpusim::MemoryStats& s) {
  return 4.0 * static_cast<double>(s.global_reads + s.global_writes) +
         8.0 * static_cast<double>(s.global_atomics);
}

Profiler& Profiler::global() {
  static Profiler profiler;
  return profiler;
}

RooflineCeilings Profiler::ceilings() const {
  std::lock_guard lock(mutex_);
  return ceilings_;
}

void Profiler::set_ceilings(const RooflineCeilings& c) {
  std::lock_guard lock(mutex_);
  ceilings_ = c;
}

void Profiler::record_launch(std::string_view name, std::size_t num_blocks,
                             const gpusim::MemoryStats& traffic, double modeled_cycles,
                             double modeled_ms, double wall_seconds,
                             std::span<const double> block_cycles) {
  double max_over_mean = 0, g = 0;
  bool have_imbalance = false;
  if (!block_cycles.empty()) {
    double sum = 0, max = 0;
    for (const double c : block_cycles) {
      sum += c;
      max = std::max(max, c);
    }
    if (sum > 0) {
      have_imbalance = true;
      max_over_mean = max / (sum / static_cast<double>(block_cycles.size()));
      g = gini(block_cycles);
    }
  }

  {
    std::lock_guard lock(mutex_);
    auto it = kernels_.find(name);
    if (it == kernels_.end()) {
      it = kernels_.emplace(std::string(name), KernelProfile{}).first;
      it->second.name = std::string(name);
    }
    KernelProfile& k = it->second;
    k.launches += 1;
    k.blocks += num_blocks;
    k.traffic += traffic;
    k.modeled_cycles += modeled_cycles;
    k.modeled_ms += modeled_ms;
    k.wall_seconds += wall_seconds;
    if (have_imbalance) {
      k.max_over_mean_sum += max_over_mean;
      k.worst_max_over_mean = std::max(k.worst_max_over_mean, max_over_mean);
      k.gini_sum += g;
      k.imbalance_samples += 1;
    }
  }

  // Surface the launch through the telemetry registry so --metrics-out and
  // registry consumers see the same counters without a profile export.
  auto& registry = telemetry::Registry::global();
  registry.counter("profiler.gather_requests").add(traffic.gather_requests);
  registry.counter("profiler.gather_transactions").add(traffic.gather_transactions);
  registry.counter("profiler.simt_lane_slots").add(traffic.simt_lane_slots);
  registry.counter("profiler.simt_active_lanes").add(traffic.simt_active_lanes);
  registry.counter("profiler.shared_requests").add(traffic.shared_requests);
  registry.counter("profiler.bank_conflicts").add(traffic.bank_conflicts());
  if (traffic.ht_lookups > 0) {
    auto& hist = registry.histogram("profiler.ht_probe_length");
    for (std::size_t len = 1; len < gpusim::MemoryStats::kProbeBuckets; ++len) {
      if (traffic.ht_probe_hist[len] > 0) hist.observe_n(len, traffic.ht_probe_hist[len]);
    }
  }
}

void Profiler::reset() {
  std::lock_guard lock(mutex_);
  kernels_.clear();
}

std::vector<KernelProfile> Profiler::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<KernelProfile> out;
  out.reserve(kernels_.size());
  for (const auto& [name, k] : kernels_) out.push_back(k);
  return out;
}

namespace {

void append_counters(JsonWriter& w, const gpusim::MemoryStats& s) {
  w.key("counters").begin_object();
  w.key("global_reads").value(s.global_reads);
  w.key("global_writes").value(s.global_writes);
  w.key("global_atomics").value(s.global_atomics);
  w.key("shared_reads").value(s.shared_reads);
  w.key("shared_writes").value(s.shared_writes);
  w.key("shared_atomics").value(s.shared_atomics);
  w.key("register_ops").value(s.register_ops);
  w.key("shuffle_ops").value(s.shuffle_ops);
  w.key("gather_requests").value(s.gather_requests);
  w.key("gather_transactions").value(s.gather_transactions);
  w.key("simt_lane_slots").value(s.simt_lane_slots);
  w.key("simt_active_lanes").value(s.simt_active_lanes);
  w.key("shared_requests").value(s.shared_requests);
  w.key("shared_waves").value(s.shared_waves);
  w.key("bank_conflicts").value(s.bank_conflicts());
  w.end_object();
}

void append_hashtable(JsonWriter& w, const gpusim::MemoryStats& s) {
  w.key("hashtable").begin_object();
  w.key("lookups").value(s.ht_lookups);
  w.key("probes").value(s.ht_probes);
  w.key("tables").value(s.ht_tables);
  w.key("mean_probe_length").value(s.mean_probe_length());
  w.key("maintenance_rate").value(s.maintenance_rate());
  w.key("access_rate").value(s.access_rate());
  w.key("probe_hist").begin_array();
  for (std::size_t len = 1; len < gpusim::MemoryStats::kProbeBuckets; ++len) {
    if (s.ht_probe_hist[len] == 0) continue;
    w.begin_object();
    w.key("len").value(static_cast<std::uint64_t>(len));
    w.key("count").value(s.ht_probe_hist[len]);
    w.end_object();
  }
  w.end_array();
  w.key("occupancy_hist").begin_array();
  for (std::size_t d = 0; d < gpusim::MemoryStats::kOccupancyBuckets; ++d) {
    if (s.ht_occupancy_hist[d] == 0) continue;
    w.begin_object();
    w.key("lo_pct").value(static_cast<std::uint64_t>(d * 10));
    w.key("count").value(s.ht_occupancy_hist[d]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void append_roofline(JsonWriter& w, const KernelProfile& k, const RooflineCeilings& c) {
  const double bytes = modeled_dram_bytes(k.traffic);
  const double ops = static_cast<double>(k.traffic.register_ops);
  const double ai = bytes > 0 ? ops / bytes : 0.0;  // ops per DRAM byte
  const double attainable_gops = std::min(c.peak_gops, ai * c.dram_gbps);
  const double achieved_gops = k.modeled_ms > 0 ? ops / (k.modeled_ms * 1e6) : 0.0;
  w.key("roofline").begin_object();
  w.key("dram_bytes").value(bytes);
  w.key("ops").value(ops);
  w.key("arithmetic_intensity").value(ai);
  w.key("achieved_gops").value(achieved_gops);
  w.key("attainable_gops").value(attainable_gops);
  w.key("roof_fraction").value(attainable_gops > 0 ? achieved_gops / attainable_gops : 0.0);
  w.key("bound").value(ai * c.dram_gbps < c.peak_gops ? "memory" : "compute");
  w.end_object();
}

}  // namespace

void Profiler::append_report(JsonWriter& w) const {
  RooflineCeilings ceilings;
  std::vector<KernelProfile> kernels;
  {
    std::lock_guard lock(mutex_);
    ceilings = ceilings_;
    kernels.reserve(kernels_.size());
    for (const auto& [name, k] : kernels_) kernels.push_back(k);
  }
  w.key("profile_schema").value(1);
  w.key("ceilings").begin_object();
  w.key("dram_gbps").value(ceilings.dram_gbps);
  w.key("peak_gops").value(ceilings.peak_gops);
  w.end_object();
  w.key("kernels").begin_array();
  for (const KernelProfile& k : kernels) {
    w.begin_object();
    w.key("name").value(k.name);
    w.key("launches").value(k.launches);
    w.key("blocks").value(k.blocks);
    w.key("modeled_cycles").value(k.modeled_cycles);
    w.key("modeled_ms").value(k.modeled_ms);
    w.key("wall_seconds").value(k.wall_seconds);
    append_counters(w, k.traffic);
    w.key("coalescing_efficiency").value(k.traffic.coalescing_efficiency());
    w.key("transactions_per_gather").value(k.traffic.transactions_per_gather());
    w.key("divergence_efficiency").value(k.traffic.divergence_efficiency());
    w.key("bank_conflict_factor").value(k.traffic.bank_conflict_factor());
    w.key("load_imbalance").begin_object();
    w.key("mean_max_over_mean").value(k.mean_max_over_mean());
    w.key("worst_max_over_mean").value(k.worst_max_over_mean);
    w.key("mean_gini").value(k.mean_gini());
    w.key("samples").value(k.imbalance_samples);
    w.end_object();
    if (k.traffic.ht_lookups > 0 || k.traffic.ht_tables > 0) append_hashtable(w, k.traffic);
    append_roofline(w, k, ceilings);
    w.end_object();
  }
  w.end_array();
}

std::string Profiler::report_json() const {
  JsonWriter w;
  w.begin_object();
  append_report(w);
  provenance::append(w, "profile", 1);
  w.end_object();
  return w.str();
}

}  // namespace gala::profiler
