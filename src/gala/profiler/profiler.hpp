// Hardware-counter emulation: per-kernel profiles and the roofline report.
//
// `gala::gpusim` executes every memory access in software, so the counters a
// real profiler samples (achieved coalescing, warp divergence, shared-memory
// bank conflicts, per-block load balance, hashtable probe chains) can be
// emulated *exactly*. The raw events live in `MemoryStats`; this layer scopes
// them per kernel launch: `Device::launch` calls `record_launch` when the
// profiler is enabled, and the accumulated per-kernel profiles export as a
// roofline-style JSON report (`gala detect --profile-out`, bench sidecars).
//
// Cost discipline matches the tracer: disabled (the default), the only cost
// is one relaxed atomic load per launch. Enabled, the device additionally
// tracks per-block modeled cycles for the load-imbalance statistics.
//
// docs/observability.md defines every counter and its nvprof/ncu analogue.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "gala/common/json.hpp"
#include "gala/gpusim/memory.hpp"

namespace gala::profiler {

/// Calibrated A100-SXM4 ceilings for the roofline report.
struct RooflineCeilings {
  double dram_gbps = 1555.0;   ///< HBM2e peak bandwidth, GB/s
  double peak_gops = 19500.0;  ///< FP32 peak, GFLOP/s (ops here are modeled register ops)
};

/// Aggregated profile of one kernel (all launches under the same name).
struct KernelProfile {
  std::string name;
  std::uint64_t launches = 0;
  std::uint64_t blocks = 0;
  gpusim::MemoryStats traffic;  ///< summed over launches
  double modeled_cycles = 0;
  double modeled_ms = 0;
  double wall_seconds = 0;

  // Load-imbalance statistics over per-block modeled cycles. max/mean and
  // Gini are computed per launch; the sums average over launches, the worst
  // keeps the most skewed launch seen.
  double max_over_mean_sum = 0;
  double worst_max_over_mean = 0;
  double gini_sum = 0;
  std::uint64_t imbalance_samples = 0;  ///< launches with >= 1 nonzero block

  double mean_max_over_mean() const {
    return imbalance_samples == 0 ? 1.0 : max_over_mean_sum / static_cast<double>(imbalance_samples);
  }
  double mean_gini() const {
    return imbalance_samples == 0 ? 0.0 : gini_sum / static_cast<double>(imbalance_samples);
  }
};

/// Gini coefficient of a work distribution (0 = perfectly balanced,
/// -> 1 = one block does everything). Sorts a copy; profiling-path only.
double gini(std::span<const double> values);

/// Modeled DRAM bytes of a traffic snapshot: 4 bytes per plain global word,
/// 8 per atomic (read-modify-write). Shared traffic never reaches DRAM.
double modeled_dram_bytes(const gpusim::MemoryStats& s);

/// Thread-safe per-kernel profile registry (process-global, like the
/// telemetry tracer/registry).
class Profiler {
 public:
  static Profiler& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  RooflineCeilings ceilings() const;
  void set_ceilings(const RooflineCeilings& c);

  /// Folds one kernel launch into the profile named `name`. `block_cycles`
  /// (may be empty) holds per-block modeled cycles for load-imbalance
  /// statistics. Also surfaces the launch through the telemetry registry
  /// (profiler.* counters and the probe-length histogram).
  void record_launch(std::string_view name, std::size_t num_blocks,
                     const gpusim::MemoryStats& traffic, double modeled_cycles,
                     double modeled_ms, double wall_seconds,
                     std::span<const double> block_cycles);

  /// Forgets all accumulated profiles (ceilings and the enabled flag stay).
  void reset();

  std::vector<KernelProfile> snapshot() const;

  /// Writes the "kernels" array and "ceilings"/"schema" members into an open
  /// JSON object (shared by --profile-out and the bench sidecars).
  void append_report(JsonWriter& w) const;

  /// Complete report document: {"profile_schema":1,"ceilings":{...},
  /// "kernels":[...]}.
  std::string report_json() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  RooflineCeilings ceilings_{};
  std::map<std::string, KernelProfile, std::less<>> kernels_;
};

}  // namespace gala::profiler
