// Adjusted Rand Index (Hubert & Arabie 1985) — a second external clustering
// quality measure next to NMI, chance-corrected: 1 for identical partitions,
// ~0 for independent ones, negative for adversarial disagreement.
#pragma once

#include <span>

#include "gala/common/types.hpp"

namespace gala::metrics {

/// ARI between two assignments over the same vertex set (ids need not be
/// dense). Returns 1.0 when both partitions are trivial and identical.
double adjusted_rand_index(std::span<const cid_t> a, std::span<const cid_t> b);

}  // namespace gala::metrics
