// Algorithm-health diagnostics: convergence-trajectory analysis on top of
// the engines' per-iteration stats.
//
// The BSP engine reports *what* happened each iteration (moved counts,
// modularity, traffic); this layer judges *how healthy* the trajectory is:
//
//   - stall: the gain curve flat-lines (delta_q < stall_epsilon) while
//     vertices are still moving — work is burned without progress, usually a
//     resolution/theta mismatch or a pruning strategy reactivating a plateau.
//   - oscillation: a vertex returns to the community it left two iterations
//     ago (BSP flip-flop; the symmetric-swap pathology of simultaneous-move
//     Louvain). A few flip-flops are normal, a growing population is not.
//   - frontier decay: the active set of a healthy pruned run shrinks
//     geometrically (paper §3, Fig. 5); the fitted half-life quantifies the
//     decay, and a non-decaying frontier flags ineffective pruning.
//   - community churn: fraction of vertices changing community per
//     iteration; the peak/mean profile separates "big early consolidation"
//     (healthy) from "sustained thrash" (unhealthy).
//   - hashtable pressure: the trend of the mean probe-chain length across
//     iterations. Rising pressure means the per-iteration community
//     neighbourhoods are outgrowing the table policy mid-level.
//
// Two entry points share the analysis:
//
//   - analyze_iterations() works on recorded IterationStats alone (no
//     per-vertex history, so no oscillation detection) — used by benches and
//     the supervisor's advisory signal on Phase1Result::iterations.
//   - HealthMonitor hooks BspConfig::on_iteration / the distributed
//     engine's observer, tracks per-vertex two-deep community history for
//     flip-flop detection, and emits HealthStall / HealthOscillation flight
//     events (telemetry/flight_recorder.hpp) as levels close.
//
// The report is deterministic: every field derives from modeled, seeded
// state, so a fixed (graph, config, seed) yields a byte-identical document
// regardless of pooling, parallelism, or sync schedule.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "gala/common/types.hpp"
#include "gala/core/bsp_louvain.hpp"

namespace gala::metrics {

struct HealthConfig {
  /// A gain below this while vertices still move counts as a stalled
  /// iteration (matches the engines' default convergence theta).
  double stall_epsilon = 1e-6;
  /// Consecutive stalled iterations before the level is flagged stalled.
  int stall_window = 3;
};

/// Health verdict for one level's iteration trajectory.
struct LevelHealth {
  int level = 0;
  int iterations = 0;
  vid_t vertices = 0;
  double final_modularity = 0;
  /// Stall detection (gain flat-lines while moves continue).
  bool stalled = false;
  int first_stall = -1;     ///< iteration at which the stall window filled
  int stall_iterations = 0; ///< total iterations with delta_q < eps and moved > 0
  /// Oscillation (HealthMonitor only; zero from analyze_iterations).
  vid_t oscillating_vertices = 0;     ///< distinct vertices that flip-flopped
  std::uint64_t oscillation_moves = 0;///< total flip-flop events
  /// Active-frontier decay: half-life in iterations from a least-squares fit
  /// of ln(active) over the level (0 = frontier did not decay).
  double frontier_half_life = 0;
  /// Community churn = moved / V per iteration.
  double churn_peak = 0;
  double churn_mean = 0;
  /// Slope of the mean hash-probe length across iterations (pressure trend;
  /// positive = tables are degrading as the level progresses).
  double ht_probe_trend = 0;
  /// Per-iteration series (columnar, index = iteration).
  std::vector<double> modularity;
  std::vector<double> delta_q;
  std::vector<vid_t> active;
  std::vector<vid_t> moved;
  std::vector<vid_t> flip_flops;
  std::vector<double> ht_mean_probe_length;
};

struct HealthReport {
  HealthConfig config;
  std::vector<LevelHealth> levels;

  /// Cross-level rollups.
  int total_iterations() const;
  int stalled_levels() const;
  int first_stall_level() const;  ///< -1 when no level stalled
  vid_t oscillating_vertices() const;
  std::uint64_t oscillation_moves() const;
  /// Level-0 frontier half-life — the full-graph decay rate (Fig. 5's
  /// subject); 0 when no decay was measured.
  double frontier_half_life() const;

  /// {"health_schema":1,"config":{...},"levels":[...],"summary":{...}}.
  std::string json() const;
  void save(const std::string& path) const;
};

/// Stats-only analysis of one level's recorded iterations. No per-vertex
/// history is available, so oscillation fields stay zero.
LevelHealth analyze_iterations(std::span<const core::IterationStats> iterations, vid_t vertices,
                               const HealthConfig& config = {});

/// Incremental monitor for live runs. Feed it every iteration (it detects
/// level boundaries by the iteration index resetting to 0) and collect the
/// report at the end. Not thread-safe: call from one observer thread.
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig config = {});

  /// IterationCallback-compatible hook (core/bsp_louvain.hpp): iteration
  /// index within the level, its stats, active/moved flags, post-iteration
  /// community assignment.
  void observe(int iter, const core::IterationStats& stats, std::span<const std::uint8_t> active,
               std::span<const std::uint8_t> moved, std::span<const cid_t> comm);

  /// Adapter: a copyable callback bound to this monitor (the monitor must
  /// outlive the engine run).
  core::IterationCallback callback();

  /// Finalizes the in-flight level and returns the accumulated report.
  /// Callable repeatedly; observation may continue afterwards.
  HealthReport report();

 private:
  void finalize_level();

  HealthConfig config_;
  std::vector<LevelHealth> done_;
  // In-flight level state.
  bool open_ = false;
  int level_index_ = -1;
  LevelHealth cur_;
  std::vector<cid_t> h1_;  // community one iteration ago
  std::vector<cid_t> h2_;  // community two iterations ago
  std::vector<std::uint8_t> osc_mask_;
};

}  // namespace gala::metrics
