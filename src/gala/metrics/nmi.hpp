// Normalized Mutual Information (Strehl & Ghosh 2002) between two
// clusterings — the community-quality metric of the paper's Table 4.
//
// NMI(X, Y) = I(X; Y) / sqrt(H(X) * H(Y)), in [0, 1]; 1 means identical
// partitions (up to relabeling).
#pragma once

#include <span>

#include "gala/common/types.hpp"

namespace gala::metrics {

/// Computes NMI between two assignments over the same vertex set. Ids need
/// not be dense. Returns 1.0 for two identical single-cluster partitions
/// (both entropies zero).
double nmi(std::span<const cid_t> a, std::span<const cid_t> b);

/// Shannon entropy (nats) of a clustering.
double entropy(std::span<const cid_t> a);

}  // namespace gala::metrics
