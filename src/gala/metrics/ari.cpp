#include "gala/metrics/ari.hpp"

#include <unordered_map>
#include <vector>

#include "gala/common/error.hpp"

namespace gala::metrics {

double adjusted_rand_index(std::span<const cid_t> a, std::span<const cid_t> b) {
  GALA_CHECK(a.size() == b.size(), "clusterings must cover the same vertex set");
  const double n = static_cast<double>(a.size());
  if (a.empty()) return 1.0;

  auto comb2 = [](double x) { return x * (x - 1) / 2; };

  // Sparse contingency table over (cluster-in-a, cluster-in-b) pairs.
  std::unordered_map<cid_t, double> count_a, count_b;
  std::unordered_map<std::uint64_t, double> joint;
  std::unordered_map<cid_t, std::uint32_t> ida, idb;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto ca = ida.try_emplace(a[i], static_cast<std::uint32_t>(ida.size())).first->second;
    const auto cb = idb.try_emplace(b[i], static_cast<std::uint32_t>(idb.size())).first->second;
    count_a[ca] += 1;
    count_b[cb] += 1;
    joint[(static_cast<std::uint64_t>(ca) << 32) | cb] += 1;
  }

  double sum_joint = 0, sum_a = 0, sum_b = 0;
  for (const auto& [key, c] : joint) sum_joint += comb2(c);
  for (const auto& [key, c] : count_a) sum_a += comb2(c);
  for (const auto& [key, c] : count_b) sum_b += comb2(c);

  const double total_pairs = comb2(n);
  const double expected = sum_a * sum_b / total_pairs;
  const double max_index = (sum_a + sum_b) / 2;
  if (max_index == expected) return 1.0;  // both trivial partitions
  return (sum_joint - expected) / (max_index - expected);
}

}  // namespace gala::metrics
