#include "gala/metrics/report.hpp"

#include <fstream>

#include "gala/graph/stats.hpp"

namespace gala::metrics {

std::string run_report_json(const graph::Graph& g, const core::GalaConfig& config,
                            const core::GalaResult& result) {
  JsonWriter w;
  w.begin_object();

  w.key("graph").begin_object();
  w.key("vertices").value(static_cast<std::uint64_t>(g.num_vertices()));
  w.key("edges").value(static_cast<std::uint64_t>(g.num_edges()));
  w.key("total_weight").value(g.total_weight());
  w.key("max_out_degree").value(static_cast<std::uint64_t>(g.max_out_degree()));
  w.end_object();

  w.key("config").begin_object();
  w.key("pruning").value(core::to_string(config.bsp.pruning));
  w.key("kernel").value(core::to_string(config.bsp.kernel));
  w.key("hashtable").value(core::to_string(config.bsp.hashtable));
  w.key("weight_update").value(core::to_string(config.bsp.weight_update));
  w.key("resolution").value(config.bsp.resolution);
  w.key("theta").value(config.bsp.theta);
  w.key("refine").value(config.refine);
  w.key("vertex_following").value(config.vertex_following);
  w.end_object();

  w.key("result").begin_object();
  w.key("modularity").value(result.modularity);
  w.key("communities").value(static_cast<std::uint64_t>(result.num_communities));
  w.key("wall_seconds").value(result.wall_seconds);
  w.key("modeled_ms").value(result.modeled_ms);
  const auto cs = graph::community_stats(g, result.assignment);
  w.key("largest_community").value(static_cast<std::uint64_t>(cs.largest));
  w.key("coverage").value(cs.coverage);
  w.key("levels").begin_array();
  for (const auto& lv : result.levels) {
    w.begin_object();
    w.key("vertices").value(static_cast<std::uint64_t>(lv.vertices));
    w.key("communities").value(static_cast<std::uint64_t>(lv.communities));
    w.key("modularity").value(lv.modularity);
    w.key("iterations").value(lv.iterations);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.end_object();
  return w.str();
}

void save_run_report(const graph::Graph& g, const core::GalaConfig& config,
                     const core::GalaResult& result, const std::string& path) {
  std::ofstream out(path);
  GALA_CHECK(out.is_open(), "cannot open report file: " << path);
  out << run_report_json(g, config, result) << '\n';
  GALA_CHECK(out.good(), "write failure: " << path);
}

}  // namespace gala::metrics
