#include "gala/metrics/confusion.hpp"

namespace gala::metrics {

ConfusionSummary summarize_confusion(const std::vector<core::IterationStats>& iterations) {
  ConfusionSummary s;
  for (const auto& it : iterations) {
    s.tp += it.tp;
    s.fp += it.fp;
    s.tn += it.tn;
    s.fn += it.fn;
  }
  return s;
}

}  // namespace gala::metrics
