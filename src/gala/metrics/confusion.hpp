// Aggregation of the per-iteration pruning confusion matrices into the
// FNR/FPR numbers of the paper's Table 1.
//
//   FNR = FN / (FN + TP)  — share of would-move vertices wrongly pruned
//   FPR = FP / (FP + TN)  — share of stay-put vertices wrongly kept active
#pragma once

#include <vector>

#include "gala/core/bsp_louvain.hpp"

namespace gala::metrics {

struct ConfusionSummary {
  std::uint64_t tp = 0, fp = 0, tn = 0, fn = 0;

  double fnr() const {
    const std::uint64_t denom = fn + tp;
    return denom == 0 ? 0.0 : static_cast<double>(fn) / static_cast<double>(denom);
  }
  double fpr() const {
    const std::uint64_t denom = fp + tn;
    return denom == 0 ? 0.0 : static_cast<double>(fp) / static_cast<double>(denom);
  }
};

/// Sums the confusion entries over all iterations of a phase-1 run (the
/// engine must have been configured with track_confusion = true).
ConfusionSummary summarize_confusion(const std::vector<core::IterationStats>& iterations);

}  // namespace gala::metrics
