#include "gala/metrics/health.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

#include "gala/common/error.hpp"
#include "gala/common/json.hpp"
#include "gala/common/provenance.hpp"
#include "gala/telemetry/flight_recorder.hpp"

namespace gala::metrics {

namespace {

/// Least-squares slope of y over x = 0..n-1. Points where `use` is false are
/// skipped (their x positions still advance, so gaps do not compress the
/// axis). Returns 0 with fewer than two usable points.
template <class Y, class Use>
double ls_slope(const std::vector<Y>& y, Use use) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (!use(y[i])) continue;
    const double xi = static_cast<double>(i);
    const double yi = static_cast<double>(y[i]);
    sx += xi;
    sy += yi;
    sxx += xi * xi;
    sxy += xi * yi;
    ++n;
  }
  if (n < 2) return 0;
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (denom == 0) return 0;
  return (static_cast<double>(n) * sxy - sx * sy) / denom;
}

/// Computes every series-derived field of `lv` (stall, churn, frontier
/// decay, hashtable trend). Oscillation fields are left as accumulated.
void derive(LevelHealth& lv, const HealthConfig& cfg) {
  lv.iterations = static_cast<int>(lv.delta_q.size());

  lv.stalled = false;
  lv.first_stall = -1;
  lv.stall_iterations = 0;
  int run = 0;
  for (int i = 0; i < lv.iterations; ++i) {
    const bool flat = lv.delta_q[static_cast<std::size_t>(i)] < cfg.stall_epsilon &&
                      lv.moved[static_cast<std::size_t>(i)] > 0;
    if (!flat) {
      run = 0;
      continue;
    }
    ++lv.stall_iterations;
    if (++run >= cfg.stall_window && !lv.stalled) {
      lv.stalled = true;
      lv.first_stall = i;
    }
  }

  lv.churn_peak = 0;
  lv.churn_mean = 0;
  if (lv.vertices > 0 && lv.iterations > 0) {
    double sum = 0;
    for (vid_t m : lv.moved) {
      const double churn = static_cast<double>(m) / static_cast<double>(lv.vertices);
      lv.churn_peak = std::max(lv.churn_peak, churn);
      sum += churn;
    }
    lv.churn_mean = sum / lv.iterations;
  }

  // Fit ln(active) against the iteration index; a geometric frontier decays
  // along a straight line whose slope gives the half-life directly.
  // Iterations whose frontier already hit 0 are masked out (NaN) so they do
  // not drag the fit toward -inf.
  std::vector<double> log_active(lv.active.size(), 0);
  for (std::size_t i = 0; i < lv.active.size(); ++i) {
    log_active[i] = lv.active[i] > 0 ? std::log(static_cast<double>(lv.active[i]))
                                     : std::numeric_limits<double>::quiet_NaN();
  }
  const double decay = ls_slope(log_active, [](double v) { return !std::isnan(v); });
  lv.frontier_half_life = decay < 0 ? std::log(2.0) / -decay : 0;

  lv.ht_probe_trend = ls_slope(lv.ht_mean_probe_length, [](double) { return true; });
}

void write_level(JsonWriter& w, const LevelHealth& lv) {
  w.begin_object();
  w.key("level").value(lv.level);
  w.key("vertices").value(static_cast<std::uint64_t>(lv.vertices));
  w.key("iterations").value(lv.iterations);
  w.key("final_modularity").value(lv.final_modularity);
  w.key("stalled").value(lv.stalled);
  w.key("first_stall").value(lv.first_stall);
  w.key("stall_iterations").value(lv.stall_iterations);
  w.key("oscillating_vertices").value(static_cast<std::uint64_t>(lv.oscillating_vertices));
  w.key("oscillation_moves").value(static_cast<std::uint64_t>(lv.oscillation_moves));
  w.key("frontier_half_life").value(lv.frontier_half_life);
  w.key("churn_peak").value(lv.churn_peak);
  w.key("churn_mean").value(lv.churn_mean);
  w.key("ht_probe_trend").value(lv.ht_probe_trend);
  w.key("series").begin_object();
  w.key("modularity").begin_array();
  for (double v : lv.modularity) w.value(v);
  w.end_array();
  w.key("delta_q").begin_array();
  for (double v : lv.delta_q) w.value(v);
  w.end_array();
  w.key("active").begin_array();
  for (vid_t v : lv.active) w.value(static_cast<std::uint64_t>(v));
  w.end_array();
  w.key("moved").begin_array();
  for (vid_t v : lv.moved) w.value(static_cast<std::uint64_t>(v));
  w.end_array();
  w.key("flip_flops").begin_array();
  for (vid_t v : lv.flip_flops) w.value(static_cast<std::uint64_t>(v));
  w.end_array();
  w.key("ht_mean_probe_length").begin_array();
  for (double v : lv.ht_mean_probe_length) w.value(v);
  w.end_array();
  w.end_object();
  w.end_object();
}

}  // namespace

int HealthReport::total_iterations() const {
  int total = 0;
  for (const LevelHealth& lv : levels) total += lv.iterations;
  return total;
}

int HealthReport::stalled_levels() const {
  int total = 0;
  for (const LevelHealth& lv : levels) total += lv.stalled;
  return total;
}

int HealthReport::first_stall_level() const {
  for (const LevelHealth& lv : levels)
    if (lv.stalled) return lv.level;
  return -1;
}

vid_t HealthReport::oscillating_vertices() const {
  vid_t total = 0;
  for (const LevelHealth& lv : levels) total += lv.oscillating_vertices;
  return total;
}

std::uint64_t HealthReport::oscillation_moves() const {
  std::uint64_t total = 0;
  for (const LevelHealth& lv : levels) total += lv.oscillation_moves;
  return total;
}

double HealthReport::frontier_half_life() const {
  return levels.empty() ? 0 : levels.front().frontier_half_life;
}

std::string HealthReport::json() const {
  JsonWriter w;
  w.begin_object();
  w.key("health_schema").value(1);
  w.key("config").begin_object();
  w.key("stall_epsilon").value(config.stall_epsilon);
  w.key("stall_window").value(config.stall_window);
  w.end_object();
  w.key("levels").begin_array();
  for (const LevelHealth& lv : levels) write_level(w, lv);
  w.end_array();
  w.key("summary").begin_object();
  w.key("levels").value(static_cast<int>(levels.size()));
  w.key("total_iterations").value(total_iterations());
  w.key("stalled_levels").value(stalled_levels());
  w.key("first_stall_level").value(first_stall_level());
  w.key("oscillating_vertices").value(static_cast<std::uint64_t>(oscillating_vertices()));
  w.key("oscillation_moves").value(oscillation_moves());
  w.key("frontier_half_life").value(frontier_half_life());
  w.end_object();
  provenance::append(w, "health", 1);
  w.end_object();
  return w.str();
}

void HealthReport::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  GALA_CHECK(out.is_open(), "cannot write health report: " << path);
  out << json() << '\n';
  GALA_CHECK(out.good(), "short write on health report: " << path);
}

LevelHealth analyze_iterations(std::span<const core::IterationStats> iterations, vid_t vertices,
                               const HealthConfig& config) {
  LevelHealth lv;
  lv.vertices = vertices;
  for (const core::IterationStats& it : iterations) {
    lv.modularity.push_back(it.modularity);
    lv.delta_q.push_back(it.delta_q);
    lv.active.push_back(it.active);
    lv.moved.push_back(it.moved);
    lv.flip_flops.push_back(0);
    lv.ht_mean_probe_length.push_back(it.ht_mean_probe_length);
    lv.final_modularity = it.modularity;
  }
  derive(lv, config);
  return lv;
}

HealthMonitor::HealthMonitor(HealthConfig config) : config_(config) {}

void HealthMonitor::observe(int iter, const core::IterationStats& stats,
                            std::span<const std::uint8_t> /*active*/,
                            std::span<const std::uint8_t> /*moved*/,
                            std::span<const cid_t> comm) {
  if (iter == 0) {
    finalize_level();
    ++level_index_;
    open_ = true;
    cur_ = LevelHealth{};
    cur_.level = level_index_;
    cur_.vertices = static_cast<vid_t>(comm.size());
    h1_.resize(comm.size());
    h2_.resize(comm.size());
    osc_mask_.assign(comm.size(), 0);
    // The pre-iteration state of every level is the singleton partition
    // (community id == vertex id), so it seeds the two-deep history: a
    // vertex that moves away at iteration 0 and returns at iteration 1 is
    // the earliest detectable flip-flop.
    for (std::size_t v = 0; v < comm.size(); ++v) {
      h2_[v] = static_cast<cid_t>(v);
      h1_[v] = comm[v];
    }
    cur_.flip_flops.push_back(0);
  } else {
    vid_t flips = 0;
    const std::size_t n = std::min(comm.size(), h1_.size());
    for (std::size_t v = 0; v < n; ++v) {
      const cid_t c = comm[v];
      const cid_t one_ago = h1_[v];
      const cid_t two_ago = h2_[v];
      if (c == two_ago && c != one_ago) {
        ++flips;
        if (!osc_mask_[v]) {
          osc_mask_[v] = 1;
          ++cur_.oscillating_vertices;
        }
      }
      h2_[v] = one_ago;
      h1_[v] = c;
    }
    cur_.oscillation_moves += flips;
    cur_.flip_flops.push_back(flips);
  }

  cur_.modularity.push_back(stats.modularity);
  cur_.delta_q.push_back(stats.delta_q);
  cur_.active.push_back(stats.active);
  cur_.moved.push_back(stats.moved);
  cur_.ht_mean_probe_length.push_back(stats.ht_mean_probe_length);
  cur_.final_modularity = stats.modularity;
}

core::IterationCallback HealthMonitor::callback() {
  return [this](int iter, const core::IterationStats& stats, std::span<const std::uint8_t> active,
                std::span<const std::uint8_t> moved, std::span<const cid_t> comm) {
    observe(iter, stats, active, moved, comm);
  };
}

void HealthMonitor::finalize_level() {
  if (!open_) return;
  derive(cur_, config_);
  if (cur_.stalled) {
    telemetry::flight(telemetry::FlightKind::HealthStall, static_cast<double>(cur_.level),
                      static_cast<double>(cur_.first_stall));
  }
  if (cur_.oscillating_vertices > 0) {
    telemetry::flight(telemetry::FlightKind::HealthOscillation, static_cast<double>(cur_.level),
                      static_cast<double>(cur_.oscillating_vertices));
  }
  done_.push_back(std::move(cur_));
  cur_ = LevelHealth{};
  open_ = false;
}

HealthReport HealthMonitor::report() {
  finalize_level();
  HealthReport rep;
  rep.config = config_;
  rep.levels = done_;
  return rep;
}

}  // namespace gala::metrics
