// Machine-readable run reports.
//
// Builders that serialise detection runs (via the shared gala::JsonWriter,
// see common/json.hpp) so downstream tooling (dashboards, regression
// trackers) can consume bench and CLI output.
#pragma once

#include <string>

#include "gala/common/json.hpp"
#include "gala/core/gala.hpp"
#include "gala/graph/csr.hpp"

namespace gala::metrics {

using ::gala::JsonWriter;  // writer lived here historically; keep the alias

/// Serialises a detection run (graph summary, config highlights, per-level
/// stats, final quality) as a JSON document.
std::string run_report_json(const graph::Graph& g, const core::GalaConfig& config,
                            const core::GalaResult& result);

/// Writes run_report_json to a file.
void save_run_report(const graph::Graph& g, const core::GalaConfig& config,
                     const core::GalaResult& result, const std::string& path);

}  // namespace gala::metrics
