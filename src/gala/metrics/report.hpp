// Machine-readable run reports.
//
// A minimal JSON writer (objects, arrays, numbers, escaped strings — no
// external dependency) plus builders that serialise detection runs so
// downstream tooling (dashboards, regression trackers) can consume bench
// and CLI output.
#pragma once

#include <sstream>
#include <string>
#include <vector>

#include "gala/core/gala.hpp"
#include "gala/graph/csr.hpp"

namespace gala::metrics {

/// Streaming JSON writer with correct escaping and comma management.
/// Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("LJ");
///   w.key("sizes").begin_array().value(1).value(2).end_array();
///   w.end_object();
///   std::string json = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object() {
    prefix();
    out_ << '{';
    stack_.push_back(State::FirstInObject);
    return *this;
  }
  JsonWriter& end_object() {
    pop(State::FirstInObject, State::InObject);
    out_ << '}';
    return *this;
  }
  JsonWriter& begin_array() {
    prefix();
    out_ << '[';
    stack_.push_back(State::FirstInArray);
    return *this;
  }
  JsonWriter& end_array() {
    pop(State::FirstInArray, State::InArray);
    out_ << ']';
    return *this;
  }
  JsonWriter& key(const std::string& k) {
    prefix();
    write_string(k);
    out_ << ':';
    pending_value_ = true;
    return *this;
  }
  JsonWriter& value(const std::string& v) {
    prefix();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v) {
    prefix();
    out_ << v;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    prefix();
    out_ << v;
    return *this;
  }
  JsonWriter& value(int v) {
    prefix();
    out_ << v;
    return *this;
  }
  JsonWriter& value(bool v) {
    prefix();
    out_ << (v ? "true" : "false");
    return *this;
  }

  std::string str() const { return out_.str(); }

 private:
  enum class State { FirstInObject, InObject, FirstInArray, InArray };

  void prefix() {
    if (pending_value_) {
      pending_value_ = false;
      return;  // value directly after a key: no comma
    }
    if (stack_.empty()) return;
    State& s = stack_.back();
    if (s == State::FirstInObject) {
      s = State::InObject;
    } else if (s == State::FirstInArray) {
      s = State::InArray;
    } else {
      out_ << ',';
    }
  }

  void pop(State first, State rest) {
    GALA_CHECK(!stack_.empty() && (stack_.back() == first || stack_.back() == rest),
               "mismatched JSON begin/end");
    stack_.pop_back();
  }

  void write_string(const std::string& s) {
    out_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"':
          out_ << "\\\"";
          break;
        case '\\':
          out_ << "\\\\";
          break;
        case '\n':
          out_ << "\\n";
          break;
        case '\t':
          out_ << "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ << buf;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostringstream out_;
  std::vector<State> stack_;
  bool pending_value_ = false;
};

/// Serialises a detection run (graph summary, config highlights, per-level
/// stats, final quality) as a JSON document.
std::string run_report_json(const graph::Graph& g, const core::GalaConfig& config,
                            const core::GalaResult& result);

/// Writes run_report_json to a file.
void save_run_report(const graph::Graph& g, const core::GalaConfig& config,
                     const core::GalaResult& result, const std::string& path);

}  // namespace gala::metrics
