#include "gala/metrics/nmi.hpp"

#include <cmath>
#include <unordered_map>
#include <vector>

#include "gala/common/error.hpp"

namespace gala::metrics {
namespace {

/// Renumbers arbitrary ids to [0, k); returns k.
std::size_t densify(std::span<const cid_t> in, std::vector<std::uint32_t>& out) {
  std::unordered_map<cid_t, std::uint32_t> remap;
  out.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    auto [it, inserted] = remap.try_emplace(in[i], static_cast<std::uint32_t>(remap.size()));
    out[i] = it->second;
  }
  return remap.size();
}

}  // namespace

double entropy(std::span<const cid_t> a) {
  if (a.empty()) return 0;
  std::vector<std::uint32_t> dense;
  const std::size_t k = densify(a, dense);
  std::vector<double> count(k, 0);
  for (const auto c : dense) count[c] += 1;
  const double n = static_cast<double>(a.size());
  double h = 0;
  for (const double c : count) {
    if (c > 0) h -= (c / n) * std::log(c / n);
  }
  return h;
}

double nmi(std::span<const cid_t> a, std::span<const cid_t> b) {
  GALA_CHECK(a.size() == b.size(), "clusterings must cover the same vertex set");
  if (a.empty()) return 1.0;
  const double n = static_cast<double>(a.size());

  std::vector<std::uint32_t> da, db;
  const std::size_t ka = densify(a, da);
  const std::size_t kb = densify(b, db);

  // Sparse contingency table.
  std::unordered_map<std::uint64_t, double> joint;
  std::vector<double> ca(ka, 0), cb(kb, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ca[da[i]] += 1;
    cb[db[i]] += 1;
    joint[(static_cast<std::uint64_t>(da[i]) << 32) | db[i]] += 1;
  }

  double mi = 0;
  for (const auto& [key, nij] : joint) {
    const double ni = ca[key >> 32];
    const double nj = cb[key & 0xffffffffu];
    mi += (nij / n) * std::log((nij * n) / (ni * nj));
  }
  const double ha = entropy(a);
  const double hb = entropy(b);
  if (ha == 0 && hb == 0) return 1.0;  // both trivial partitions: identical
  if (ha == 0 || hb == 0) return 0.0;
  return mi / std::sqrt(ha * hb);
}

}  // namespace gala::metrics
