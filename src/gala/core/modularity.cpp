#include "gala/core/modularity.hpp"

#include <algorithm>
#include <unordered_map>

#include "gala/common/error.hpp"

namespace gala::core {

wt_t modularity(const graph::Graph& g, std::span<const cid_t> community, wt_t resolution) {
  const vid_t n = g.num_vertices();
  GALA_CHECK(community.size() == n, "assignment size mismatch");
  if (n == 0 || g.total_weight() <= 0) return 0;

  // Community ids may be sparse; renumber into a scratch copy.
  std::vector<cid_t> dense(community.begin(), community.end());
  const vid_t k = renumber_communities(dense);

  std::vector<wt_t> internal(k, 0);  // D_C(C): internal edges twice, loops twice
  std::vector<wt_t> total(k, 0);     // D_V(C)
  for (vid_t v = 0; v < n; ++v) {
    const cid_t c = dense[v];
    total[c] += g.degree(v);
    internal[c] += 2 * g.self_loop(v);
    auto nbrs = g.neighbors(v);
    auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] != v && dense[nbrs[i]] == c) internal[c] += ws[i];
    }
  }
  const wt_t two_m = g.two_m();
  wt_t q = 0;
  for (cid_t c = 0; c < k; ++c) {
    q += internal[c] / two_m - resolution * (total[c] / two_m) * (total[c] / two_m);
  }
  return q;
}

vid_t count_communities(std::span<const cid_t> community) {
  std::vector<cid_t> copy(community.begin(), community.end());
  std::sort(copy.begin(), copy.end());
  return static_cast<vid_t>(std::unique(copy.begin(), copy.end()) - copy.begin());
}

vid_t renumber_communities(std::span<cid_t> community, std::vector<cid_t>* representative) {
  // Vertex-derived ids (< n) take a dense fast path; arbitrary ids fall back
  // to a hash map.
  const std::size_t n = community.size();
  if (representative) representative->clear();
  cid_t next = 0;
  const bool dense_ids =
      std::all_of(community.begin(), community.end(), [n](cid_t c) { return c < n; });
  if (dense_ids) {
    std::vector<cid_t> remap(n, kInvalidCid);
    for (auto& c : community) {
      if (remap[c] == kInvalidCid) {
        remap[c] = next++;
        if (representative) representative->push_back(c);
      }
      c = remap[c];
    }
  } else {
    std::unordered_map<cid_t, cid_t> remap;
    for (auto& c : community) {
      auto [it, inserted] = remap.try_emplace(c, next);
      if (inserted) {
        ++next;
        if (representative) representative->push_back(c);
      }
      c = it->second;
    }
  }
  return next;
}

}  // namespace gala::core
