#include "gala/core/incremental.hpp"

#include <map>

#include "gala/core/aggregation.hpp"
#include "gala/core/modularity.hpp"

namespace gala::core {
namespace {

std::uint64_t edge_key(vid_t u, vid_t v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

graph::Graph apply_edge_updates(const graph::Graph& g, std::span<const EdgeUpdate> updates) {
  const vid_t n = g.num_vertices();
  // Collect the undirected edge map once, apply deltas, rebuild.
  std::map<std::uint64_t, wt_t> edges;
  for (vid_t v = 0; v < n; ++v) {
    auto nbrs = g.neighbors(v);
    auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] >= v) edges[edge_key(v, nbrs[i])] = ws[i];
    }
  }
  for (const EdgeUpdate& u : updates) {
    GALA_CHECK(u.u < n && u.v < n, "update touches vertex outside the graph");
    GALA_CHECK(u.weight > 0, "update weight must be positive");
    const std::uint64_t key = edge_key(u.u, u.v);
    if (u.remove) {
      auto it = edges.find(key);
      GALA_CHECK(it != edges.end(), "removing non-existent edge {" << u.u << "," << u.v << "}");
      it->second -= u.weight;
      if (it->second <= 1e-12) edges.erase(it);
    } else {
      edges[key] += u.weight;
    }
  }
  graph::GraphBuilder builder(n);
  for (const auto& [key, w] : edges) {
    builder.add_edge(static_cast<vid_t>(key >> 32), static_cast<vid_t>(key & 0xffffffffu), w);
  }
  return builder.build();
}

IncrementalResult update_communities(const graph::Graph& g, std::span<const cid_t> previous,
                                     std::span<const EdgeUpdate> updates,
                                     const GalaConfig& config) {
  GALA_CHECK(previous.size() == g.num_vertices(), "assignment size mismatch");
  IncrementalResult result;
  result.graph = apply_edge_updates(g, updates);

  // Round 1: warm-started repair. MG pruning deactivates the untouched bulk
  // on iteration 0.
  std::vector<cid_t> warm(previous.begin(), previous.end());
  renumber_communities(warm);
  BspLouvainEngine engine(result.graph, config.bsp, warm);
  const Phase1Result repair = engine.run();
  result.repair_iterations = static_cast<int>(repair.iterations.size());
  for (const auto& it : repair.iterations) result.evaluated_vertices += it.active;

  // Contract the repaired partition and finish with the standard pipeline.
  AggregationResult agg = aggregate(result.graph, repair.community);
  result.assignment = agg.fine_to_coarse;
  if (agg.num_communities > 1 && agg.num_communities < result.graph.num_vertices()) {
    GalaConfig rest = config;
    const GalaResult deeper = run_louvain(agg.coarse, rest);
    result.assignment = compose_assignment(result.assignment, deeper.assignment);
  }
  result.num_communities = renumber_communities(result.assignment);
  result.modularity = modularity(result.graph, result.assignment, config.bsp.resolution);
  return result;
}

}  // namespace gala::core
