// The linear-algebra Louvain engine — phase 1 expressed through gala::blas
// primitives (the GraphBLAS formulation of Algorithm 1).
//
// One iteration runs the same five steps as the BSP engine, but:
//   - DecideAndMove is a masked SpMV (blas::masked_gather): the SPA gathers
//     each active row's neighbour-community weights and the row visitor
//     scores them with the shared move rule (move_score + BestTracker +
//     apply_move_guard). Direction is chosen per launch from frontier
//     density — pull streams all rows against the active mask, push compacts
//     a frontier (bounded by the governor's rung-4 window).
//   - The community-weight update is a second gather against the *next*
//     assignment: w(v) = (A ⊗ S_next)[v][C_next[v]], the element-wise
//     masked-extract form. Honest cost: it rescans every row (the recompute
//     bound), which is the backend's ablation story against §3.5's delta.
//
// Trajectory parity: the SPA sums in adjacency encounter order — the BSP
// hash kernel's upsert order — and scoring, tie-breaks, move guard, pruning,
// bookkeeping, and convergence are byte-for-byte the same rules, so on
// exact-weight graphs the two engines produce bit-identical assignments per
// iteration (and 1e-9-close modularity in general).
//
// Oracle confusion tracking (BspConfig::track_confusion) is a BSP-engine
// diagnostic and is ignored here.
#pragma once

#include <cstdint>

#include "gala/blas/blas.hpp"
#include "gala/core/bsp_louvain.hpp"

namespace gala::core {

/// Counters specific to the linear-algebra engine (perf_profile rows).
struct BlasPhase1Stats {
  int pull_iterations = 0;
  int push_iterations = 0;
  /// Iterations whose chosen direction differed from the previous one.
  int direction_switches = 0;
  /// Rows evaluated by decide gathers over the whole run (== Σ active).
  std::uint64_t gathered_rows = 0;
};

/// Runs phase 1 through the blas primitives. Accepts the same config as the
/// BSP engine (kernel/hashtable knobs are ignored — there is no hash
/// kernel); `tuning` selects the accumulator and the pull/push threshold.
Phase1Result blas_phase1(const graph::Graph& g, const BspConfig& config,
                         const blas::Tuning& tuning = {}, BlasPhase1Stats* stats = nullptr);

}  // namespace gala::core
