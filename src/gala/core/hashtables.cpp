#include "gala/core/hashtables.hpp"

#include <bit>

#include "gala/memtrace/memtrace.hpp"
#include "gala/resilience/fault_injection.hpp"

namespace gala::core {

std::string to_string(HashTablePolicy policy) {
  switch (policy) {
    case HashTablePolicy::GlobalOnly:
      return "global-only";
    case HashTablePolicy::Unified:
      return "unified";
    case HashTablePolicy::Hierarchical:
      return "hierarchical";
  }
  return "?";
}

void HashScratch::ensure(std::size_t n) {
  if (cap_ >= n) return;
  if (ws_ == nullptr) {
    heap_.resize(n);  // value-initialised: empty buckets
    data_ = heap_.data();
    cap_ = heap_.size();
    memtrace::charge("core.hash_scratch", n * sizeof(HashBucket));
    return;
  }
  // The outgoing slab is fully empty (table invariant), so pool it before
  // taking the larger one — a same-tag successor can skip initialisation.
  lease_.release();
  lease_ = ws_->take<HashBucket>(n, "core.hash_scratch");
  data_ = lease_.data();
  cap_ = lease_.capacity();
  if (!lease_.recycled_same_tag()) {
    for (std::size_t i = 0; i < cap_; ++i) data_[i] = HashBucket{};
  }
}

NeighborCommunityTable::NeighborCommunityTable(HashTablePolicy policy,
                                               gpusim::SharedMemoryArena& arena,
                                               HashScratch& global_scratch,
                                               vid_t capacity_hint, std::uint64_t salt,
                                               gpusim::MemoryStats& stats)
    : policy_(policy), global_scratch_(global_scratch), salt_(salt), stats_(&stats),
      bank_model_(stats) {
  GALA_CHECK(capacity_hint > 0, "empty table");
  // Capacity sizing: ~2x distinct-key upper bound, power of two for cheap
  // modulo, as GPU hashtable implementations conventionally do.
  const std::uint32_t want = std::bit_ceil(static_cast<std::uint32_t>(capacity_hint) * 2);

  std::uint32_t s = 0;
  if (policy != HashTablePolicy::GlobalOnly) {
    const auto arena_max = static_cast<std::uint32_t>(arena.max_elements<HashBucket>());
    GALA_CHECK(arena_max > 0, "shared arena too small for any bucket");
    s = std::min(want, std::bit_floor(arena_max));
    shared_ = arena.allocate<HashBucket>(s);
  }
  // The global part must be able to absorb everything that misses shared.
  global_count_ = want;
  if (global_scratch_.size() < global_count_) {
    resilience::maybe_inject(resilience::FaultSite::ScratchGrow, to_string(policy));
    global_scratch_.ensure(global_count_);
  }
  used_.reserve(capacity_hint);
}

std::uint32_t NeighborCommunityTable::hash0(cid_t c) const {
  return static_cast<std::uint32_t>(splitmix64(static_cast<std::uint64_t>(c) ^ salt_) >> 32);
}

std::uint32_t NeighborCommunityTable::hash1(cid_t c) const {
  return static_cast<std::uint32_t>(
      splitmix64(static_cast<std::uint64_t>(c) * 0x9e3779b97f4a7c15ULL ^ ~salt_) >> 32);
}

NeighborCommunityTable::Slot NeighborCommunityTable::locate(cid_t c) {
  const std::uint32_t s = static_cast<std::uint32_t>(shared_.size());
  const std::uint32_t g = global_count_;
  constexpr std::uint64_t kBucketWords = sizeof(HashBucket) / 4;  // 4-byte bank words

  // One probe = one bucket touch; shared-bucket probes additionally feed the
  // warp-regrouped bank-conflict model (the probing lane's key-word access).
  std::uint64_t probes = 0;
  const auto probe = [&](Slot slot) {
    ++probes;
    charge_probe(slot);
    if (slot.in_shared) bank_model_.observe_word(slot.index * kBucketWords);
  };
  const auto found = [&](Slot slot) {
    stats_->record_probe_chain(probes);
    return slot;
  };

  switch (policy_) {
    case HashTablePolicy::GlobalOnly: {
      // Single hash over the global buckets, linear probing.
      std::uint32_t idx = hash1(c) & (g - 1);
      for (;;) {
        Slot slot{false, idx};
        probe(slot);  // atomicCAS probe on the key
        const HashBucket& b = const_bucket(slot);
        if (b.key == kInvalidCid || b.key == c) return found(slot);
        idx = (idx + 1) & (g - 1);
      }
    }
    case HashTablePolicy::Unified: {
      // One hash function over s + g buckets; [0, s) shared, [s, s+g) global.
      const std::uint32_t total = s + g;
      std::uint32_t idx = hash0(c) % total;
      for (;;) {
        Slot slot{idx < s, idx < s ? idx : idx - s};
        probe(slot);
        const HashBucket& b = const_bucket(slot);
        if (b.key == kInvalidCid || b.key == c) return found(slot);
        idx = (idx + 1) % total;
      }
    }
    case HashTablePolicy::Hierarchical: {
      // Shared first via h0 (one slot — a collision falls through to global
      // via h1 with linear probing; see Example 2 in the paper).
      if (s > 0) {
        Slot slot{true, hash0(c) & (s - 1)};
        probe(slot);
        const HashBucket& b = const_bucket(slot);
        if (b.key == kInvalidCid || b.key == c) return found(slot);
      }
      std::uint32_t idx = hash1(c) & (g - 1);
      for (;;) {
        Slot slot{false, idx};
        probe(slot);
        const HashBucket& b = const_bucket(slot);
        if (b.key == kInvalidCid || b.key == c) return found(slot);
        idx = (idx + 1) & (g - 1);
      }
    }
  }
  GALA_CHECK(false, "unreachable");
}

void NeighborCommunityTable::reset() {
  if (!retired_) {
    // First reset ends the table's lifetime for the profiler: close the
    // partially-filled warp of shared probes and sample the load factor.
    retired_ = true;
    bank_model_.flush();
    stats_->record_table_occupancy(used_.size(),
                                   shared_.size() + static_cast<std::size_t>(global_count_));
  }
  for (const Slot slot : used_) bucket(slot) = HashBucket{};
  used_.clear();
}

}  // namespace gala::core
