// Pruning strategies for predicting unmoved vertices (paper §3).
//
//  SM  Strict movement-based [Shi et al.]: v is inactive only if every
//      community touching v (its own and each neighbour's) had no membership
//      change in the previous iteration. Zero false negatives, but almost
//      everything stays active (FPR ≈ 92% in the paper).
//
//  RM  Relaxed movement-based [Leiden / parallel adaptations]: v is inactive
//      if v and all of its neighbours were unmoved in the previous
//      iteration. Good pruning but false negatives (modularity loss): a
//      non-neighbour leaving a neighbouring community changes D_V(C)
//      (Lemma 4's counterexample).
//
//  PM  Probabilistic movement-based [Vite]: if v was unmoved in the previous
//      iteration it is pruned with probability alpha (default 0.25).
//
//  MG  Modularity gain-based (GALA's contribution, §3.3): v is inactive iff
//      Equation 6 holds,
//        2*d_{C[v]}(v) - d(v) + (min_C D_V(C) - D_V(C[v])) * d(v)/(2|E|) >= 0,
//      a sufficient condition for Lemma 5's "no neighbouring community can
//      beat staying", evaluated only from states the BSP model already
//      maintains. Zero false negatives by Theorem 6.
//
//  MG+RM  Union of the two inactive sets (the complementary combination of
//      §5.3) — inherits RM's false negatives but prunes the most.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "gala/common/prng.hpp"
#include "gala/common/thread_pool.hpp"
#include "gala/common/types.hpp"
#include "gala/exec/context.hpp"
#include "gala/graph/csr.hpp"

namespace gala::core {

enum class PruningStrategy {
  None,
  Strict,
  Relaxed,
  Probabilistic,
  ModularityGain,
  MgPlusRelaxed,
};

std::string to_string(PruningStrategy s);

/// Iteration state the strategies read. All spans are indexed as noted.
struct PruningContext {
  const graph::Graph* g = nullptr;
  std::span<const cid_t> comm;                ///< per vertex
  std::span<const wt_t> vertex_comm_weight;   ///< e_{v,C[v]} per vertex
  std::span<const wt_t> comm_total;           ///< D_V(C) per community id
  wt_t min_comm_total = 0;                    ///< min over non-empty communities
  wt_t two_m = 0;
  std::span<const std::uint8_t> prev_moved;   ///< v moved in previous iteration
  std::span<const std::uint8_t> comm_changed; ///< community membership changed last iter
  int iteration = 0;                          ///< 0 on the first BSP iteration
  wt_t resolution = 1.0;                      ///< gamma (generalised modularity)
};

/// Fills `active[v]` (1 = process in this iteration). Movement-history
/// strategies activate everything on iteration 0. `rng` is consumed only by
/// PM. Runs on `pool` if non-null.
void compute_active(PruningStrategy strategy, const PruningContext& ctx, double pm_alpha,
                    Xoshiro256& rng, std::span<std::uint8_t> active, ThreadPool* pool = nullptr);

/// ExecutionContext-threaded form: runs on the context's pool when
/// `parallel`, sequentially otherwise. Same classification either way.
void compute_active(PruningStrategy strategy, const PruningContext& ctx, double pm_alpha,
                    Xoshiro256& rng, std::span<std::uint8_t> active,
                    exec::ExecutionContext& exec_ctx, bool parallel);

/// The MG predicate (Equation 6) for a single vertex; exposed for tests.
bool mg_is_inactive(const PruningContext& ctx, vid_t v);

/// Per-vertex predicate used by both compute_active and the distributed
/// engine (which evaluates only its owned range). `pm_base` seeds PM's
/// deterministic per-vertex coin for this iteration.
bool is_inactive(PruningStrategy strategy, const PruningContext& ctx, vid_t v, double pm_alpha,
                 std::uint64_t pm_base);

}  // namespace gala::core
