#include "gala/core/backend.hpp"

#include "gala/core/blas_louvain.hpp"

namespace gala::core {
namespace {

class BspBackend final : public LouvainBackend {
 public:
  explicit BspBackend(const blas::Tuning& tuning) : tuning_(tuning) {}

  const char* name() const override { return "bsp"; }

  Phase1Result run_level(const graph::Graph& g, const BspConfig& config) override {
    return bsp_phase1(g, config);
  }

  AggregationResult contract(const graph::Graph& g, std::span<const cid_t> community,
                             exec::Workspace* workspace) override {
    return aggregate(g, community, workspace, tuning_);
  }

 private:
  blas::Tuning tuning_;
};

class BlasBackend final : public LouvainBackend {
 public:
  explicit BlasBackend(const blas::Tuning& tuning) : tuning_(tuning) {}

  const char* name() const override { return "blas"; }

  Phase1Result run_level(const graph::Graph& g, const BspConfig& config) override {
    return blas_phase1(g, config, tuning_);
  }

  AggregationResult contract(const graph::Graph& g, std::span<const cid_t> community,
                             exec::Workspace* workspace) override {
    return aggregate(g, community, workspace, tuning_);
  }

 private:
  blas::Tuning tuning_;
};

}  // namespace

std::string to_string(Backend backend) {
  switch (backend) {
    case Backend::Bsp:
      return "bsp";
    case Backend::Blas:
      return "blas";
  }
  return "?";
}

std::unique_ptr<LouvainBackend> make_backend(Backend backend, const blas::Tuning& tuning) {
  switch (backend) {
    case Backend::Blas:
      return std::make_unique<BlasBackend>(tuning);
    case Backend::Bsp:
      break;
  }
  return std::make_unique<BspBackend>(tuning);
}

}  // namespace gala::core
