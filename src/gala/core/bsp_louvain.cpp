#include "gala/core/bsp_louvain.hpp"

#include <atomic>
#include <cmath>
#include <new>

#include "gala/common/error.hpp"
#include "gala/common/timer.hpp"
#include "gala/core/modularity.hpp"
#include "gala/governor/governor.hpp"
#include "gala/memtrace/memtrace.hpp"
#include "gala/telemetry/flight_recorder.hpp"
#include "gala/telemetry/telemetry.hpp"

namespace gala::core {

std::string to_string(WeightUpdateMode mode) {
  switch (mode) {
    case WeightUpdateMode::Recompute:
      return "recompute";
    case WeightUpdateMode::Delta:
      return "delta";
  }
  return "?";
}

BspLouvainEngine::BspLouvainEngine(const graph::Graph& g, const BspConfig& config)
    : g_(g), config_(config),
      owned_context_(config.context != nullptr
                         ? nullptr
                         : std::make_unique<exec::ExecutionContext>(config.device, config.seed)),
      ctx_(config.context != nullptr ? config.context : owned_context_.get()),
      rng_(config.seed), salt_(splitmix64(config.seed ^ 0xabcdef0123456789ULL)),
      shuffle_list_(ctx_->workspace(), "phase1.shuffle_list"),
      hash_list_(ctx_->workspace(), "phase1.hash_list") {
  GALA_CHECK(g.total_weight() > 0, "graph has no edge weight");
  const vid_t n = g.num_vertices();
  comm_.resize(n);
  next_comm_.resize(n);
  comm_total_.resize(n);
  comm_size_.resize(n);
  weight_.assign(n, 0);
  prev_moved_.assign(n, 0);
  comm_changed_.assign(n, 0);
  for (vid_t v = 0; v < n; ++v) {
    comm_[v] = v;
    comm_total_[v] = g.degree(v);
    comm_size_[v] = 1;
    sum_self_loops_ += g.self_loop(v);
  }
}

BspLouvainEngine::BspLouvainEngine(const graph::Graph& g, const BspConfig& config,
                                   std::span<const cid_t> initial)
    : BspLouvainEngine(g, config) {
  const vid_t n = g.num_vertices();
  GALA_CHECK(initial.size() == n, "initial assignment size mismatch");
  std::fill(comm_total_.begin(), comm_total_.end(), 0);
  std::fill(comm_size_.begin(), comm_size_.end(), 0);
  for (vid_t v = 0; v < n; ++v) {
    GALA_CHECK(initial[v] < n, "initial community id out of range");
    comm_[v] = initial[v];
    comm_total_[initial[v]] += g.degree(v);
    ++comm_size_[initial[v]];
  }
  // e_{v,C[v]} of the warm-started partition (one-off full scan).
  for (vid_t v = 0; v < n; ++v) {
    auto nbrs = g.neighbors(v);
    auto ws = g.weights(v);
    wt_t sum = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] != v && comm_[nbrs[i]] == comm_[v]) sum += ws[i];
    }
    weight_[v] = sum;
  }
}

void BspLouvainEngine::ensure_delta_buffer(vid_t n) {
  if (delta_.size() >= n) return;
  using AtomicWt = std::atomic<wt_t>;
  static_assert(std::is_trivially_destructible_v<AtomicWt>,
                "pooled delta slab is released without running destructors");
  delta_lease_.release();
  delta_lease_ = ctx_->workspace().take<std::byte>(static_cast<std::size_t>(n) * sizeof(AtomicWt),
                                                   "phase1.delta");
  auto* base = reinterpret_cast<AtomicWt*>(delta_lease_.data());
  for (vid_t v = 0; v < n; ++v) new (base + v) AtomicWt{0};
  delta_ = {base, static_cast<std::size_t>(n)};
}

wt_t BspLouvainEngine::state_modularity() const {
  // Q = (sum_v e_{v,C[v]} + 2*sum_v loop_v) / 2|E| - sum_C (D_V(C)/2|E|)^2.
  const wt_t two_m = g_.two_m();
  wt_t internal = 2 * sum_self_loops_;
  wt_t sq = 0;
  for (vid_t v = 0; v < g_.num_vertices(); ++v) {
    internal += weight_[v];
    if (comm_size_[v] > 0) {
      const wt_t frac = comm_total_[v] / two_m;
      sq += frac * frac;
    }
  }
  return internal / two_m - config_.resolution * sq;
}

wt_t BspLouvainEngine::min_nonempty_total() const {
  wt_t best = std::numeric_limits<wt_t>::max();
  for (vid_t c = 0; c < g_.num_vertices(); ++c) {
    if (comm_size_[c] > 0 && comm_total_[c] < best) best = comm_total_[c];
  }
  return best;
}

bool prune_and_decide(PruningStrategy strategy, const PruningContext& prune_ctx, double pm_alpha,
                      std::uint64_t pm_base, const DecideInput& in, vid_t v,
                      const DecideDispatch& dispatch, gpusim::SharedMemoryArena& arena,
                      HashScratch& scratch, std::uint64_t salt, gpusim::MemoryStats& stats,
                      Decision& out) {
  if (is_inactive(strategy, prune_ctx, v, pm_alpha, pm_base)) return false;
  out = decide_vertex(in, v, dispatch, arena, scratch, salt, stats);
  return true;
}

void BspLouvainEngine::decide_phase(std::span<const std::uint8_t> active,
                                    std::span<Decision> decisions,
                                    IterationStats& iter_stats) {
  const vid_t n = g_.num_vertices();
  // Governor rung 2: GlobalOnly is the exact-parity fallback (decisions are
  // policy-independent), so forcing it sheds shared-arena pages without
  // moving a single vertex differently.
  const HashTablePolicy table = governor::Governor::global().force_global_only()
                                    ? HashTablePolicy::GlobalOnly
                                    : config_.hashtable;
  const DecideDispatch dispatch{config_.kernel, table, config_.shuffle_degree_limit};

  const DecideInput input{&g_, comm_, comm_total_, g_.two_m(), config_.resolution};

  // Both launches run the same per-vertex body: decide_vertex re-applies the
  // dispatch rule, which maps each list back onto its own kernel. The hash
  // scratch is checked out of the launch's workspace per block (tag-affine
  // recycling), replacing the old thread_local vector that pinned peak-sized
  // slabs to pool threads for the process lifetime.
  const auto decide_range = [&](gpusim::BlockContext& ctx, std::span<const vid_t> list,
                                std::size_t lo, std::size_t hi) {
    HashScratch global_scratch(ctx.workspace);
    for (std::size_t i = lo; i < hi; ++i) {
      const vid_t v = list[i];
      decisions[v] =
          decide_vertex(input, v, dispatch, *ctx.shared, global_scratch, salt_, *ctx.stats);
    }
  };
  // Shuffle kernel: one warp per vertex; blocks batch several warps.
  constexpr std::size_t kWarpsPerBlock = 32;
  const auto run_shuffle = [&](gpusim::BlockContext& ctx) {
    const std::size_t lo = ctx.block_id * kWarpsPerBlock;
    const std::size_t hi = std::min(shuffle_list_.size(), lo + kWarpsPerBlock);
    decide_range(ctx, shuffle_list_, lo, hi);
  };
  // Hash kernel: one block per vertex (paper's assignment for large degrees).
  const auto run_hash = [&](gpusim::BlockContext& ctx) {
    decide_range(ctx, hash_list_, ctx.block_id, ctx.block_id + 1);
  };

  const auto launch = [&](std::size_t blocks, const auto& body, std::string_view name) {
    const gpusim::Device& device = ctx_->device();
    return config_.parallel ? device.launch(blocks, body, name)
                            : device.launch_sequential(blocks, body, name);
  };

  telemetry::ScopedSpan span(telemetry::Tracer::global(), "decide", "phase1");
  gpusim::LaunchStats total;
  std::size_t shuffle_total = 0;
  std::size_t hash_total = 0;
  const auto flush = [&] {
    if (!shuffle_list_.empty()) {
      total += launch((shuffle_list_.size() + kWarpsPerBlock - 1) / kWarpsPerBlock, run_shuffle,
                      "decide_shuffle");
      shuffle_total += shuffle_list_.size();
      shuffle_list_.clear();
    }
    if (!hash_list_.empty()) {
      total += launch(hash_list_.size(), run_hash, "decide_hash");
      hash_total += hash_list_.size();
      hash_list_.clear();
    }
  };

  // Workload-aware dispatch: split the active set by degree. The lists are
  // pooled members — clear() keeps capacity, so steady-state iterations
  // rebuild them without touching the allocator. Governor rung 4 bounds the
  // materialised window: each decision is a per-vertex function of the same
  // pre-iteration community state (applied later, in apply_phase), so
  // chunked launches compute exactly what one launch would.
  const std::size_t window = governor::Governor::global().frontier_chunk();
  shuffle_list_.clear();
  hash_list_.clear();
  for (vid_t v = 0; v < n; ++v) {
    if (!active[v]) continue;
    (use_shuffle_kernel(g_, v, dispatch) ? shuffle_list_ : hash_list_).push_back(v);
    if (window > 0 && shuffle_list_.size() + hash_list_.size() >= window) flush();
  }
  flush();

  iter_stats.decide_traffic += total.traffic;
  iter_stats.decide_wall += total.wall_seconds;
  iter_stats.ht_maintenance_rate = total.traffic.maintenance_rate();
  iter_stats.ht_access_rate = total.traffic.access_rate();
  iter_stats.ht_mean_probe_length = total.traffic.mean_probe_length();
  telemetry::flight(telemetry::FlightKind::Decide, static_cast<double>(shuffle_total),
                    static_cast<double>(hash_total));
  if (span.active()) {
    span.arg("shuffle_vertices", static_cast<double>(shuffle_total));
    span.arg("hash_vertices", static_cast<double>(hash_total));
    span.arg("modeled_ms", config_.device.modeled_ms(total.traffic));
    gpusim::attach_traffic(span, total.traffic);
  }
}

void BspLouvainEngine::oracle_pass(std::span<const std::uint8_t> active,
                                   std::span<Decision> decisions,
                                   std::span<std::uint8_t> would_move) {
  // Evaluates the pruned vertices too, off the books (scratch stats), so the
  // confusion matrix can be measured without perturbing traffic accounting.
  const DecideInput input{&g_, comm_, comm_total_, g_.two_m(), config_.resolution};
  const vid_t n = g_.num_vertices();
  // Oracle decisions always take the hash path (policy-independent result).
  const DecideDispatch dispatch{KernelMode::HashOnly, config_.hashtable,
                                config_.shuffle_degree_limit};
  exec::Workspace& ws = ctx_->workspace();
  ThreadPool* pool = config_.parallel ? &ThreadPool::global() : nullptr;
  const auto body = [&](std::size_t lo, std::size_t hi) {
    auto pages = ws.take<std::byte>(config_.device.shared_bytes_per_block, "gpusim.shared_arena");
    gpusim::SharedMemoryArena arena(pages.span());
    gpusim::MemoryStats scratch;
    HashScratch global_scratch(ws);
    for (std::size_t v = lo; v < hi; ++v) {
      if (active[v]) continue;  // active vertices already have real decisions
      decisions[v] = decide_vertex(input, static_cast<vid_t>(v), dispatch, arena, global_scratch,
                                   salt_, scratch);
    }
  };
  if (pool) {
    pool->parallel_for_chunked(0, n, body, 512);
  } else {
    body(0, n);
  }
  for (vid_t v = 0; v < n; ++v) {
    would_move[v] =
        apply_move_guard(decisions[v], comm_[v], comm_size_) != comm_[v] ? 1 : 0;
  }
}

void BspLouvainEngine::weight_update_phase(std::span<const std::uint8_t> moved,
                                           IterationStats& iter_stats) {
  // Updates weight_[v] = e_{v, next_C[v]} given comm_ (old) and next_comm_
  // (new). Traffic is charged as the corresponding GPU kernel would.
  const vid_t n = g_.num_vertices();
  telemetry::ScopedSpan span(telemetry::Tracer::global(), "weight-update", "phase1");
  Timer timer;
  gpusim::MemoryStats traffic;
  ThreadPool* pool = config_.parallel ? &ThreadPool::global() : nullptr;
  const auto for_chunks = [&](const std::function<void(std::size_t, std::size_t,
                                                       gpusim::MemoryStats&)>& body) {
    if (pool) {
      std::mutex merge;
      pool->parallel_for_chunked(
          0, n,
          [&](std::size_t lo, std::size_t hi) {
            gpusim::MemoryStats local;
            body(lo, hi, local);
            std::lock_guard lock(merge);
            traffic += local;
          },
          512);
    } else {
      body(0, n, traffic);
    }
  };

  if (config_.weight_update == WeightUpdateMode::Recompute) {
    // Naive: every vertex rescans its neighbourhood (as expensive as
    // DecideAndMove — the bottleneck Fig. 8's P1 column exhibits).
    for_chunks([&](std::size_t lo, std::size_t hi, gpusim::MemoryStats& local) {
      for (std::size_t v = lo; v < hi; ++v) {
        const cid_t c = next_comm_[v];
        auto nbrs = g_.neighbors(static_cast<vid_t>(v));
        auto ws = g_.weights(static_cast<vid_t>(v));
        wt_t sum = 0;
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          local.global_reads += 2;
          if (nbrs[i] != v && next_comm_[nbrs[i]] == c) sum += ws[i];
        }
        weight_[v] = sum;
        local.global_writes += 1;
      }
    });
  } else {
    // Delta (§3.5): moved vertices recompute and notify unmoved neighbours;
    // unmoved vertices only fold in the deltas they received. Cost is
    // proportional to the degrees of *moved* vertices.
    ensure_delta_buffer(n);
    auto delta = delta_;  // pooled slab, reused across iterations
    for_chunks([&](std::size_t lo, std::size_t hi, gpusim::MemoryStats&) {
      for (std::size_t v = lo; v < hi; ++v) delta[v].store(0, std::memory_order_relaxed);
    });
    for_chunks([&](std::size_t lo, std::size_t hi, gpusim::MemoryStats& local) {
      for (std::size_t u = lo; u < hi; ++u) {
        if (!moved[u]) continue;
        const cid_t old_c = comm_[u];
        const cid_t new_c = next_comm_[u];
        auto nbrs = g_.neighbors(static_cast<vid_t>(u));
        auto ws = g_.weights(static_cast<vid_t>(u));
        wt_t own = 0;
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          const vid_t x = nbrs[i];
          local.global_reads += 2;
          if (x == u) continue;
          // Recompute u's own weight against the new assignment.
          if (next_comm_[x] == new_c) own += ws[i];
          // Message to unmoved neighbours: u left old_c / joined new_c.
          if (!moved[x]) {
            const cid_t cx = comm_[x];  // == next_comm_[x]
            wt_t d = 0;
            if (cx == old_c) d -= ws[i];
            if (cx == new_c) d += ws[i];
            if (d != 0) {
              delta[x].fetch_add(d, std::memory_order_relaxed);
              local.global_atomics += 1;
            }
          }
        }
        weight_[u] = own;
        local.global_writes += 1;
      }
    });
    for_chunks([&](std::size_t lo, std::size_t hi, gpusim::MemoryStats& local) {
      for (std::size_t v = lo; v < hi; ++v) {
        if (moved[v]) continue;
        const wt_t d = delta[v].load(std::memory_order_relaxed);
        if (d != 0) {
          weight_[v] += d;
          local.global_reads += 1;
          local.global_writes += 1;
        }
      }
    });
  }
  iter_stats.update_traffic += traffic;
  iter_stats.update_wall += timer.seconds();
  if (span.active()) {
    span.arg("mode", config_.weight_update == WeightUpdateMode::Delta ? 1.0 : 0.0);
    span.arg("modeled_ms", config_.device.modeled_ms(traffic));
    gpusim::attach_traffic(span, traffic);
  }
}

Phase1Result BspLouvainEngine::run() {
  const vid_t n = g_.num_vertices();
  Phase1Result result;
  telemetry::ScopedSpan phase_span(telemetry::Tracer::global(), "phase1", "pipeline");
  Timer total_timer;

  // Per-run iteration state, checked out of the workspace. The first
  // iteration establishes the slabs; with pooling on, every later take()
  // anywhere in the hot loop is served from the pool (ws_allocs == 0).
  exec::Workspace& ws = ctx_->workspace();
  const exec::WorkspaceStats ws_start = ws.stats();
  auto active_lease = ws.take<std::uint8_t>(n, "phase1.active");
  auto moved_lease = ws.take<std::uint8_t>(n, "phase1.moved", exec::Fill::Zero);
  auto decisions_lease = ws.take<Decision>(n, "phase1.decisions");
  std::span<std::uint8_t> active = active_lease.span();
  std::span<std::uint8_t> moved = moved_lease.span();
  std::span<Decision> decisions = decisions_lease.span();
  std::fill(active.begin(), active.end(), 1);
  exec::Workspace::Lease<std::uint8_t> would_move_lease;  // oracle mode only
  std::span<std::uint8_t> would_move;

  wt_t q = state_modularity();
  wt_t min_total = min_nonempty_total();

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    telemetry::ScopedSpan iter_span(telemetry::Tracer::global(), "iteration", "phase1");
    telemetry::flight(telemetry::FlightKind::IterationBegin, static_cast<double>(iter),
                      static_cast<double>(n));
    IterationStats stats;
    const std::uint64_t ws_allocs_before = ws.stats().heap_allocs;
    Timer other_timer;

    // 1. Pruning (§3).
    {
      telemetry::ScopedSpan prune_span(telemetry::Tracer::global(), "pruning", "phase1");
      const PruningContext prune_ctx{&g_,    comm_,        weight_,       comm_total_,
                                     min_total, g_.two_m(), prev_moved_,  comm_changed_,
                                     iter,      config_.resolution};
      compute_active(config_.pruning, prune_ctx, config_.pm_alpha, rng_, active, *ctx_,
                     config_.parallel);
      for (vid_t v = 0; v < n; ++v) stats.active += active[v];
      if (prune_span.active()) {
        prune_span.arg("active", static_cast<double>(stats.active));
        prune_span.arg("pruned", static_cast<double>(n - stats.active));
      }
      telemetry::flight(telemetry::FlightKind::Prune, static_cast<double>(stats.active),
                        static_cast<double>(n - stats.active));
    }
    stats.other_wall += other_timer.seconds();

    // 2. DecideAndMove for the active set.
    decide_phase(active, decisions, stats);

    other_timer.reset();
    // 3. Apply the move guard; BSP semantics: all decisions saw iteration-
    //    start state.
    vid_t moved_count = 0;
    for (vid_t v = 0; v < n; ++v) {
      next_comm_[v] = active[v] ? apply_move_guard(decisions[v], comm_[v], comm_size_) : comm_[v];
      moved[v] = next_comm_[v] != comm_[v] ? 1 : 0;
      moved_count += moved[v];
    }
    stats.moved = moved_count;
    telemetry::flight(telemetry::FlightKind::Apply, static_cast<double>(moved_count),
                      static_cast<double>(iter));

    // Confusion matrix (oracle mode): evaluate pruned vertices off-the-books.
    if (config_.track_confusion) {
      if (!would_move_lease) {
        would_move_lease = ws.take<std::uint8_t>(n, "phase1.would_move");
        would_move = would_move_lease.span();
      }
      std::fill(would_move.begin(), would_move.end(), 0);
      oracle_pass(active, decisions, would_move);
      for (vid_t v = 0; v < n; ++v) {
        if (active[v]) {
          moved[v] ? ++stats.tp : ++stats.fp;
        } else {
          would_move[v] ? ++stats.fn : ++stats.tn;
        }
      }
    }
    stats.other_wall += other_timer.seconds();

    // 4. Community weight update (§3.5) — needs old comm_ and next_comm_.
    weight_update_phase(moved, stats);

    other_timer.reset();
    {
      // 5. Bookkeeping: totals, sizes, changed flags (Alg. 1 lines 5-11).
      telemetry::ScopedSpan bk_span(telemetry::Tracer::global(), "bookkeeping", "phase1");
      std::fill(comm_changed_.begin(), comm_changed_.end(), 0);
      for (vid_t v = 0; v < n; ++v) {
        if (!moved[v]) continue;
        const cid_t old_c = comm_[v];
        const cid_t new_c = next_comm_[v];
        comm_total_[old_c] -= g_.degree(v);
        comm_total_[new_c] += g_.degree(v);
        GALA_ASSERT(comm_size_[old_c] > 0);
        --comm_size_[old_c];
        ++comm_size_[new_c];
        comm_changed_[old_c] = 1;
        comm_changed_[new_c] = 1;
        stats.bookkeeping_traffic.global_atomics += 4;
      }
      comm_.swap(next_comm_);
      prev_moved_.assign(moved.begin(), moved.end());
      min_total = min_nonempty_total();
      stats.bookkeeping_traffic.global_reads += n;  // totals/size scan

      const wt_t next_q = state_modularity();
      stats.bookkeeping_traffic.global_reads += n;  // modularity reduction
      stats.modularity = next_q;
      stats.delta_q = next_q - q;
      q = next_q;
      if (bk_span.active()) {
        bk_span.arg("modeled_ms", config_.device.modeled_ms(stats.bookkeeping_traffic));
      }
    }
    stats.other_wall += other_timer.seconds();

    stats.ws_allocs = ws.stats().heap_allocs - ws_allocs_before;

    if (iter_span.active()) {
      iter_span.arg("iteration", static_cast<double>(iter));
      iter_span.arg("active", static_cast<double>(stats.active));
      iter_span.arg("moved", static_cast<double>(stats.moved));
      iter_span.arg("modularity", stats.modularity);
      iter_span.arg("delta_q", stats.delta_q);
      iter_span.arg("ws_allocs", static_cast<double>(stats.ws_allocs));
      auto& registry = telemetry::Registry::global();
      registry.counter("phase1.iterations").add(1);
      registry.counter("phase1.moved").add(stats.moved);
      registry.counter("workspace.heap_allocs").add(stats.ws_allocs);
      registry.histogram("phase1.active_per_iteration").observe(stats.active);
    }

    telemetry::flight(telemetry::FlightKind::IterationEnd, stats.modularity, stats.delta_q);
    memtrace::mark_epoch(memtrace::EpochKind::Iteration, iter);

    result.iterations.push_back(stats);
    if (observer_) observer_(iter, stats, active, moved);
    if (config_.on_iteration) config_.on_iteration(iter, stats, active, moved, comm_);

    if (moved_count == 0 || stats.delta_q < config_.theta) break;
  }

  result.community = comm_;
  result.modularity = q;
  result.num_communities = count_communities(result.community);
  result.wall_seconds = total_timer.seconds();
  for (const auto& it : result.iterations) {
    result.total_traffic += it.decide_traffic;
    result.total_traffic += it.update_traffic;
    result.total_traffic += it.bookkeeping_traffic;
    result.decide_modeled_ms += config_.device.modeled_ms(it.decide_traffic);
    result.update_modeled_ms += config_.device.modeled_ms(it.update_traffic);
    result.other_modeled_ms += config_.device.modeled_ms(it.bookkeeping_traffic);
  }
  result.workspace = ws.stats();
  if (phase_span.active()) {
    phase_span.arg("iterations", static_cast<double>(result.iterations.size()));
    phase_span.arg("communities", static_cast<double>(result.num_communities));
    phase_span.arg("modularity", result.modularity);
    phase_span.arg("decide_modeled_ms", result.decide_modeled_ms);
    phase_span.arg("update_modeled_ms", result.update_modeled_ms);
    phase_span.arg("other_modeled_ms", result.other_modeled_ms);
    // Per-run deltas: span args sum across instances (one phase1 span per
    // level), so only deltas aggregate meaningfully. Snapshot totals live in
    // Phase1Result::workspace and the gauges below.
    phase_span.arg("ws_heap_allocs",
                   static_cast<double>(result.workspace.heap_allocs - ws_start.heap_allocs));
    phase_span.arg("ws_reuse_hits",
                   static_cast<double>(result.workspace.reuse_hits - ws_start.reuse_hits));
    auto& registry = telemetry::Registry::global();
    registry.gauge("workspace.outstanding_bytes")
        .set(static_cast<double>(result.workspace.outstanding_bytes));
    registry.gauge("workspace.pooled_bytes")
        .set(static_cast<double>(result.workspace.pooled_bytes));
    registry.gauge("workspace.peak_bytes").set(static_cast<double>(result.workspace.peak_bytes));
  }
  return result;
}

Phase1Result bsp_phase1(const graph::Graph& g, const BspConfig& config) {
  BspLouvainEngine engine(g, config);
  return engine.run();
}

}  // namespace gala::core
