#include "gala/core/sequential_louvain.hpp"

#include <vector>

#include "gala/common/error.hpp"
#include "gala/core/aggregation.hpp"
#include "gala/core/modularity.hpp"

namespace gala::core {
namespace {

/// One full sweep: each vertex greedily moves to the best neighbouring
/// community with instant state updates. Returns the number of moves.
vid_t sweep(const graph::Graph& g, std::vector<cid_t>& comm, std::vector<wt_t>& comm_total,
            wt_t resolution) {
  const vid_t n = g.num_vertices();
  const wt_t two_m = g.two_m();
  // Scratch: community id -> accumulated edge weight for the current vertex.
  std::vector<wt_t> weight_to(n, 0);
  std::vector<cid_t> touched;
  vid_t moves = 0;

  for (vid_t v = 0; v < n; ++v) {
    const cid_t old_c = comm[v];
    const wt_t dv = g.degree(v);
    auto nbrs = g.neighbors(v);
    auto ws = g.weights(v);

    touched.clear();
    weight_to[old_c] = 0;
    touched.push_back(old_c);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vid_t u = nbrs[i];
      if (u == v) continue;  // self-loops cancel out of every comparison
      const cid_t c = comm[u];
      if (weight_to[c] == 0 && c != old_c) touched.push_back(c);
      weight_to[c] += ws[i];
    }

    // Remove v, then choose the best insertion (including back into old_c).
    comm_total[old_c] -= dv;
    cid_t best_c = old_c;
    wt_t best_score = weight_to[old_c] - resolution * comm_total[old_c] * dv / two_m;
    for (const cid_t c : touched) {
      if (c == old_c) continue;
      const wt_t score = weight_to[c] - resolution * comm_total[c] * dv / two_m;
      if (score > best_score || (score == best_score && c < best_c)) {
        best_score = score;
        best_c = c;
      }
    }
    comm_total[best_c] += dv;
    comm[v] = best_c;
    if (best_c != old_c) ++moves;
    for (const cid_t c : touched) weight_to[c] = 0;
  }
  return moves;
}

}  // namespace

SequentialResult sequential_phase1(const graph::Graph& g, const SequentialOptions& opts) {
  const vid_t n = g.num_vertices();
  std::vector<cid_t> comm(n);
  std::vector<wt_t> comm_total(n);
  for (vid_t v = 0; v < n; ++v) {
    comm[v] = v;
    comm_total[v] = g.degree(v);
  }

  wt_t prev_q = modularity(g, comm, opts.resolution);
  for (int pass = 0; pass < opts.max_passes_per_level; ++pass) {
    const vid_t moves = sweep(g, comm, comm_total, opts.resolution);
    if (moves == 0) break;
    const wt_t q = modularity(g, comm, opts.resolution);
    if (q - prev_q < opts.theta) {
      prev_q = q;
      break;
    }
    prev_q = q;
  }

  SequentialResult result;
  result.assignment = std::move(comm);
  result.num_communities = renumber_communities(result.assignment);
  result.modularity = prev_q;
  result.levels = 1;
  return result;
}

SequentialResult sequential_louvain(const graph::Graph& g, const SequentialOptions& opts) {
  SequentialResult total;
  total.assignment.resize(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) total.assignment[v] = v;

  const graph::Graph* current = &g;
  graph::Graph owned;  // coarse graph of the previous level
  wt_t prev_q = modularity(g, total.assignment, opts.resolution);

  for (int level = 0; level < opts.max_levels; ++level) {
    SequentialResult phase1 = sequential_phase1(*current, opts);
    ++total.levels;
    if (phase1.modularity - prev_q < opts.level_theta && level > 0) break;

    AggregationResult agg = aggregate(*current, phase1.assignment);
    total.assignment = compose_assignment(total.assignment, agg.fine_to_coarse);
    prev_q = phase1.modularity;
    if (agg.num_communities == current->num_vertices()) break;  // no compression
    owned = std::move(agg.coarse);
    current = &owned;
  }

  total.num_communities = renumber_communities(total.assignment);
  total.modularity = prev_q;
  return total;
}

}  // namespace gala::core
