#include "gala/core/gala.hpp"

#include <memory>

#include "gala/common/timer.hpp"
#include "gala/core/aggregation.hpp"
#include "gala/core/modularity.hpp"
#include "gala/core/refinement.hpp"
#include "gala/core/vertex_following.hpp"
#include "gala/memtrace/memtrace.hpp"
#include "gala/telemetry/flight_recorder.hpp"
#include "gala/telemetry/telemetry.hpp"

namespace gala::core {

GalaResult run_louvain(const graph::Graph& g, const GalaConfig& config) {
  if (config.vertex_following) {
    // Preprocess: merge pendant vertices, solve the reduced instance, and
    // expand. Contraction preserves modularity exactly (see
    // vertex_following.hpp), so the reported Q transfers unchanged.
    VertexFollowingResult vf;
    {
      telemetry::ScopedSpan vf_span(telemetry::Tracer::global(), "vertex-following", "pipeline");
      vf = follow_vertices(g);
      if (vf_span.active()) {
        vf_span.arg("vertices", static_cast<double>(g.num_vertices()));
        vf_span.arg("reduced_vertices", static_cast<double>(vf.reduced.num_vertices()));
      }
    }
    GalaConfig inner = config;
    inner.vertex_following = false;
    GalaResult result = run_louvain(vf.reduced, inner);
    result.assignment = expand_assignment(vf, result.assignment);
    result.num_communities = renumber_communities(result.assignment);
    return result;
  }

  GalaResult result;
  Timer total_timer;

  // One execution context per pipeline run: every level's engine draws from
  // the same pooled workspace (level N+1 recycles level N's slabs), and
  // reset_level() marks the level boundaries for the epoch trap and the
  // per-level high-water mark. Callers may pre-bind their own context.
  std::unique_ptr<exec::ExecutionContext> owned_ctx;
  GalaConfig cfg = config;
  if (cfg.bsp.context == nullptr) {
    owned_ctx = std::make_unique<exec::ExecutionContext>(cfg.bsp.device, cfg.bsp.seed);
    cfg.bsp.context = owned_ctx.get();
  }
  exec::Workspace& ws = cfg.bsp.context->workspace();
  const std::unique_ptr<LouvainBackend> engine = make_backend(cfg.backend, cfg.blas);

  const vid_t n = g.num_vertices();
  result.assignment.resize(n);
  for (vid_t v = 0; v < n; ++v) result.assignment[v] = v;

  const graph::Graph* current = &g;
  graph::Graph owned;
  wt_t prev_q = -1;  // any first level is an improvement
  memtrace::set_resident("graph.csr", g.memory_bytes());

  for (int level = 0; level < cfg.max_levels; ++level) {
    telemetry::ScopedSpan level_span(telemetry::Tracer::global(), "level", "pipeline");
    telemetry::flight(telemetry::FlightKind::LevelBegin, static_cast<double>(level),
                      static_cast<double>(current->num_vertices()));
    Timer level_timer;
    Phase1Result phase1 = engine->run_level(*current, cfg.bsp);
    if (level == 0 && config.keep_first_round) result.first_round = phase1;
    if (level_span.active()) {
      level_span.arg("level", static_cast<double>(level));
      level_span.arg("vertices", static_cast<double>(current->num_vertices()));
      level_span.arg("communities", static_cast<double>(phase1.num_communities));
      level_span.arg("modularity", phase1.modularity);
    }

    GalaLevel lv;
    lv.vertices = current->num_vertices();
    lv.communities = phase1.num_communities;
    lv.modularity = phase1.modularity;
    lv.iterations = static_cast<int>(phase1.iterations.size());
    result.modeled_ms += phase1.modeled_ms();

    if (level > 0 && phase1.modularity - prev_q < cfg.level_theta) {
      // Fold the final phase-1 partition so the reported assignment matches
      // the reported modularity exactly (matters when refinement made the
      // previously-folded partition finer than phase 1's).
      const AggregationResult last = engine->contract(*current, phase1.community, &ws);
      result.assignment = compose_assignment(result.assignment, last.fine_to_coarse);
      prev_q = phase1.modularity;
      lv.wall_seconds = level_timer.seconds();
      result.levels.push_back(lv);
      memtrace::mark_epoch(memtrace::EpochKind::Level, level);
      break;
    }
    prev_q = phase1.modularity;

    AggregationResult agg;
    if (cfg.refine) {
      RefinementResult refined;
      {
        telemetry::ScopedSpan refine_span(telemetry::Tracer::global(), "refine", "phase2");
        refined = refine_partition(*current, phase1.community, cfg.bsp.resolution,
                                   cfg.bsp.seed ^ (level + 1));
      }
      telemetry::ScopedSpan agg_span(telemetry::Tracer::global(), "aggregate", "phase2");
      agg = engine->contract(*current, refined.refined, &ws);
    } else {
      telemetry::ScopedSpan agg_span(telemetry::Tracer::global(), "aggregate", "phase2");
      agg = engine->contract(*current, phase1.community, &ws);
    }
    result.assignment = compose_assignment(result.assignment, agg.fine_to_coarse);
    lv.wall_seconds = level_timer.seconds();
    result.levels.push_back(lv);
    memtrace::mark_epoch(memtrace::EpochKind::Level, level);

    if (agg.num_communities == current->num_vertices()) break;  // no compression
    owned = std::move(agg.coarse);
    current = &owned;
    // Level boundary: no lease is outstanding here (the engine and the
    // aggregation scratch are gone), so the epoch bump only arms the
    // use-after-reset trap and snapshots the level high-water mark.
    ws.reset_level();
  }

  result.num_communities = renumber_communities(result.assignment);
  result.modularity = prev_q;
  result.wall_seconds = total_timer.seconds();
  result.workspace = ws.stats();
  return result;
}

}  // namespace gala::core
