// Phase 2 of Louvain: contract each community into a super-vertex (§2.2).
//
// Intra-community weight becomes a super-vertex self-loop (stored once;
// degree accounting doubles it, preserving D_C(C)); inter-community weights
// aggregate into super-edges. Modularity is invariant under contraction,
// which the tests assert.
#pragma once

#include <span>
#include <vector>

#include "gala/blas/spgemm.hpp"
#include "gala/common/types.hpp"
#include "gala/exec/workspace.hpp"
#include "gala/graph/csr.hpp"

namespace gala::core {

struct AggregationResult {
  graph::Graph coarse;
  /// For each fine vertex, the coarse vertex (renumbered community) owning it.
  std::vector<cid_t> fine_to_coarse;
  vid_t num_communities = 0;
};

/// Contracts `g` according to `community` (ids need not be dense). When a
/// workspace is given, the level-transition renumber scratch is checked out
/// of it (tag "phase2.renumber") instead of heap-allocated, so successive
/// levels of the pipeline recycle one slab. Results are identical.
///
/// The contraction itself is S^T·A·S through the shared SpGEMM
/// (blas::contract_csr); `tuning` selects its accumulator and `stats`, when
/// given, receives the kernel counters. The historical edge-list builder
/// produced the same graph — the SpGEMM replicates its counting conventions
/// (see blas/spgemm.hpp) — so exact-weight contractions are bit-identical
/// to the pre-SpGEMM output.
AggregationResult aggregate(const graph::Graph& g, std::span<const cid_t> community,
                            exec::Workspace* workspace, const blas::Tuning& tuning,
                            blas::SpgemmStats* stats = nullptr);
AggregationResult aggregate(const graph::Graph& g, std::span<const cid_t> community,
                            exec::Workspace* workspace = nullptr);

/// Composes a two-level assignment: result[v] = coarse_assignment[fine_to_coarse[v]].
std::vector<cid_t> compose_assignment(std::span<const cid_t> fine_to_coarse,
                                      std::span<const cid_t> coarse_assignment);

}  // namespace gala::core
