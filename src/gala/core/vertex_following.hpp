// Vertex following (Lu, Halappanavar & Kalyanaraman 2015 — one of the
// "heuristics in Grappolo to ensure the convergence" the paper's footnote 1
// adopts).
//
// A degree-one vertex always ends up in its sole neighbour's community (its
// gain is maximal there and can never be beaten), so processing it every
// iteration is wasted work and its singleton community inflates the search
// space. The preprocessing pass merges every such vertex into its
// neighbour — following chains (pendant paths) to their anchor — producing
// a smaller graph plus a mapping to undo the merge afterwards.
#pragma once

#include <span>
#include <vector>

#include "gala/common/types.hpp"
#include "gala/graph/csr.hpp"

namespace gala::core {

struct VertexFollowingResult {
  /// The reduced graph (followers merged into their anchors).
  graph::Graph reduced;
  /// original vertex -> reduced-graph vertex.
  std::vector<vid_t> original_to_reduced;
  /// How many vertices were merged away.
  vid_t followers = 0;
};

/// Merges degree-1 vertices (and pendant chains) into their anchors.
/// Isolated vertices are kept. An edge {v, anchor} becomes a self-loop
/// contribution on the anchor so modularity bookkeeping stays exact.
VertexFollowingResult follow_vertices(const graph::Graph& g);

/// Expands an assignment on the reduced graph back to original vertices.
std::vector<cid_t> expand_assignment(const VertexFollowingResult& vf,
                                     std::span<const cid_t> reduced_assignment);

}  // namespace gala::core
