// GALA public API: the full multi-level Louvain pipeline.
//
// Repeats { BSP phase 1 (bsp_louvain.hpp) ; phase 2 contraction
// (aggregation.hpp) } until the modularity gain between levels drops below
// `level_theta` or the graph stops compressing — the complete algorithm the
// paper's §5.1 end-to-end comparison runs.
//
// Quickstart:
//   gala::graph::Graph g = gala::graph::load_edge_list("graph.txt");
//   gala::core::GalaResult r = gala::core::run_louvain(g);
//   // r.assignment[v] = community of v, r.modularity = Q
#pragma once

#include <vector>

#include "gala/core/backend.hpp"
#include "gala/core/bsp_louvain.hpp"

namespace gala::core {

struct GalaConfig {
  /// Phase-1 engine configuration (pruning, kernels, hashtable, ...).
  BspConfig bsp{};
  /// Which engine runs every level (core/backend.hpp): the BSP kernels or
  /// the gala::blas linear-algebra formulation. Both contract through the
  /// shared SpGEMM and follow the same trajectory rules.
  Backend backend = Backend::Bsp;
  /// blas primitive tuning (SpGEMM accumulator, pull/push threshold); the
  /// contraction honours it under either backend.
  blas::Tuning blas{};
  /// Stop when a level improves modularity by less than this.
  double level_theta = 1e-6;
  int max_levels = 30;
  /// Keep the full Phase1Result of the first round (the round every
  /// per-iteration experiment in the paper measures).
  bool keep_first_round = false;
  /// Leiden-style refinement (extension, core/refinement.hpp): refine each
  /// level's partition before aggregation so every community of the final
  /// hierarchy is internally connected.
  bool refine = false;
  /// Vertex following (Grappolo heuristic, core/vertex_following.hpp):
  /// merge degree-1 vertices into their neighbours before the first level.
  /// A degree-1 vertex always gains by joining its sole neighbour, so this
  /// is quality-neutral and shrinks round 1.
  bool vertex_following = false;
};

struct GalaLevel {
  vid_t vertices = 0;
  vid_t communities = 0;
  wt_t modularity = 0;
  int iterations = 0;
  double wall_seconds = 0;
};

struct GalaResult {
  /// Final community per original vertex (dense ids in [0, communities)).
  std::vector<cid_t> assignment;
  wt_t modularity = 0;
  vid_t num_communities = 0;
  std::vector<GalaLevel> levels;
  double wall_seconds = 0;
  /// Modeled GPU time across all levels (cost model), milliseconds.
  double modeled_ms = 0;
  /// First-round phase 1 detail (when keep_first_round).
  Phase1Result first_round;
  /// Workspace counters of the pipeline's execution context at completion —
  /// pool reuse across every level, kernel launch, and aggregation.
  exec::WorkspaceStats workspace;
};

/// Runs the full pipeline on `g`.
GalaResult run_louvain(const graph::Graph& g, const GalaConfig& config = {});

}  // namespace gala::core
