#include "gala/core/refinement.hpp"

#include <numeric>
#include <unordered_map>

#include "gala/common/error.hpp"
#include "gala/common/prng.hpp"
#include "gala/core/modularity.hpp"

namespace gala::core {

RefinementResult refine_partition(const graph::Graph& g, std::span<const cid_t> community,
                                  wt_t resolution, std::uint64_t seed) {
  const vid_t n = g.num_vertices();
  GALA_CHECK(community.size() == n, "assignment size mismatch");
  const wt_t two_m = g.two_m();

  RefinementResult result;
  result.refined.resize(n);
  std::iota(result.refined.begin(), result.refined.end(), 0);
  if (n == 0) return result;

  // Sub-community totals (singletons to start) and singleton flags.
  std::vector<wt_t> sub_total(n);
  std::vector<vid_t> sub_size(n, 1);
  for (vid_t v = 0; v < n; ++v) sub_total[v] = g.degree(v);

  // Randomised visit order (Leiden uses a random queue).
  std::vector<vid_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Xoshiro256 rng(seed);
  for (vid_t i = n; i > 1; --i) std::swap(order[i - 1], order[rng.next_below(i)]);

  std::unordered_map<cid_t, wt_t> weight_to;  // sub-community -> edge weight
  for (const vid_t v : order) {
    if (sub_size[result.refined[v]] != 1) continue;  // merged vertices never move
    const cid_t original = community[v];
    const wt_t dv = g.degree(v);

    weight_to.clear();
    auto nbrs = g.neighbors(v);
    auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vid_t u = nbrs[i];
      // Only sub-communities inside v's own phase-1 community are eligible.
      if (u == v || community[u] != original) continue;
      weight_to[result.refined[u]] += ws[i];
    }

    // Singleton leaving itself: the stay score is 0 (e = 0, empty rest).
    cid_t best = kInvalidCid;
    wt_t best_score = 0;
    for (const auto& [sub, w] : weight_to) {
      if (sub == result.refined[v]) continue;
      const wt_t score = move_score(w, sub_total[sub], dv, two_m, false, resolution);
      if (score > best_score || (score == best_score && best != kInvalidCid && sub < best)) {
        best = sub;
        best_score = score;
      }
    }
    if (best != kInvalidCid && best_score > 0) {
      const cid_t old_sub = result.refined[v];
      sub_total[old_sub] -= dv;
      --sub_size[old_sub];
      result.refined[v] = best;
      sub_total[best] += dv;
      ++sub_size[best];
    }
  }

  result.num_subcommunities = renumber_communities(result.refined);

  // Count split communities: phase-1 communities mapping to 2+ sub-ids.
  std::unordered_map<cid_t, cid_t> first_sub;
  std::unordered_map<cid_t, bool> split;
  for (vid_t v = 0; v < n; ++v) {
    auto [it, inserted] = first_sub.try_emplace(community[v], result.refined[v]);
    if (!inserted && it->second != result.refined[v]) split[community[v]] = true;
  }
  result.communities_split = static_cast<vid_t>(split.size());
  return result;
}

bool is_partition_connected(const graph::Graph& g, std::span<const cid_t> community) {
  const vid_t n = g.num_vertices();
  GALA_CHECK(community.size() == n, "assignment size mismatch");
  // One BFS per community, seeded from its first member; a community is
  // connected iff the BFS reaches every member.
  std::vector<cid_t> dense(community.begin(), community.end());
  const vid_t k = renumber_communities(dense);
  std::vector<vid_t> comm_count(k, 0);
  std::vector<vid_t> first_member(k, kInvalidVid);
  for (vid_t v = 0; v < n; ++v) {
    const cid_t c = dense[v];
    ++comm_count[c];
    if (first_member[c] == kInvalidVid) first_member[c] = v;
  }
  std::vector<std::uint8_t> visited(n, 0);
  std::vector<vid_t> queue;
  for (cid_t c = 0; c < k; ++c) {
    queue.clear();
    queue.push_back(first_member[c]);
    visited[first_member[c]] = 1;
    vid_t reached = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const vid_t v = queue[head];
      ++reached;
      for (const vid_t u : g.neighbors(v)) {
        if (!visited[u] && dense[u] == c) {
          visited[u] = 1;
          queue.push_back(u);
        }
      }
    }
    if (reached != comm_count[c]) return false;
  }
  return true;
}

}  // namespace gala::core
