#include "gala/core/aggregation.hpp"

#include "gala/common/error.hpp"
#include "gala/core/modularity.hpp"

namespace gala::core {

AggregationResult aggregate(const graph::Graph& g, std::span<const cid_t> community) {
  const vid_t n = g.num_vertices();
  GALA_CHECK(community.size() == n, "assignment size mismatch");

  AggregationResult result;
  result.fine_to_coarse.assign(community.begin(), community.end());
  result.num_communities = renumber_communities(result.fine_to_coarse);

  graph::GraphBuilder builder(result.num_communities);
  for (vid_t v = 0; v < n; ++v) {
    const cid_t cv = result.fine_to_coarse[v];
    auto nbrs = g.neighbors(v);
    auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vid_t u = nbrs[i];
      // Emit each undirected edge once (adjacency holds both directions for
      // u != v, and self-loops once).
      if (u < v) continue;
      builder.add_edge(cv, result.fine_to_coarse[u], ws[i]);
    }
  }
  result.coarse = builder.build();
  return result;
}

std::vector<cid_t> compose_assignment(std::span<const cid_t> fine_to_coarse,
                                      std::span<const cid_t> coarse_assignment) {
  std::vector<cid_t> out(fine_to_coarse.size());
  for (std::size_t v = 0; v < fine_to_coarse.size(); ++v) {
    GALA_CHECK(fine_to_coarse[v] < coarse_assignment.size(), "coarse id out of range");
    out[v] = coarse_assignment[fine_to_coarse[v]];
  }
  return out;
}

}  // namespace gala::core
