#include "gala/core/aggregation.hpp"

#include <algorithm>

#include "gala/common/error.hpp"
#include "gala/core/modularity.hpp"
#include "gala/memtrace/memtrace.hpp"

namespace gala::core {
namespace {

/// renumber_communities with the dense fast path's remap table drawn from
/// the workspace — same algorithm, same output, pooled scratch.
vid_t renumber_pooled(std::span<cid_t> community, exec::Workspace* ws) {
  const std::size_t n = community.size();
  const bool dense_ids =
      std::all_of(community.begin(), community.end(), [n](cid_t c) { return c < n; });
  if (ws == nullptr || !dense_ids) return renumber_communities(community);
  auto remap_lease = ws->take<cid_t>(n, "phase2.renumber");
  const std::span<cid_t> remap = remap_lease.span();
  std::fill(remap.begin(), remap.end(), kInvalidCid);
  cid_t next = 0;
  for (auto& c : community) {
    if (remap[c] == kInvalidCid) remap[c] = next++;
    c = remap[c];
  }
  return next;
}

}  // namespace

AggregationResult aggregate(const graph::Graph& g, std::span<const cid_t> community,
                            exec::Workspace* workspace, const blas::Tuning& tuning,
                            blas::SpgemmStats* stats) {
  const vid_t n = g.num_vertices();
  GALA_CHECK(community.size() == n, "assignment size mismatch");

  AggregationResult result;
  result.fine_to_coarse.assign(community.begin(), community.end());
  result.num_communities = renumber_pooled(result.fine_to_coarse, workspace);
  result.coarse = blas::contract_csr(g, result.fine_to_coarse, result.num_communities, workspace,
                                     tuning, stats);
  memtrace::set_resident("graph.contraction", result.coarse.memory_bytes());
  return result;
}

AggregationResult aggregate(const graph::Graph& g, std::span<const cid_t> community,
                            exec::Workspace* workspace) {
  return aggregate(g, community, workspace, blas::Tuning{}, nullptr);
}

std::vector<cid_t> compose_assignment(std::span<const cid_t> fine_to_coarse,
                                      std::span<const cid_t> coarse_assignment) {
  std::vector<cid_t> out(fine_to_coarse.size());
  for (std::size_t v = 0; v < fine_to_coarse.size(); ++v) {
    GALA_CHECK(fine_to_coarse[v] < coarse_assignment.size(), "coarse id out of range");
    out[v] = coarse_assignment[fine_to_coarse[v]];
  }
  return out;
}

}  // namespace gala::core
