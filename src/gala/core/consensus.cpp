#include "gala/core/consensus.hpp"

#include "gala/core/modularity.hpp"
#include "gala/graph/reorder.hpp"
#include "gala/metrics/nmi.hpp"

namespace gala::core {

ConsensusResult consensus_louvain(const graph::Graph& g, const ConsensusConfig& config) {
  GALA_CHECK(config.runs >= 1, "need at least one ensemble run");
  GALA_CHECK(config.threshold >= 0 && config.threshold <= 1, "threshold must be in [0,1]");
  const vid_t n = g.num_vertices();

  // 1. Ensemble: the engine is deterministic given a seed, so diversity
  //    comes from random vertex relabelling — Louvain's id-based tie-breaks
  //    make each relabelled instance explore a different local optimum.
  std::vector<std::vector<cid_t>> members;
  members.reserve(static_cast<std::size_t>(config.runs));
  for (int r = 0; r < config.runs; ++r) {
    const std::uint64_t seed = splitmix64(config.base_seed + static_cast<std::uint64_t>(r));
    GalaConfig cfg = config.detector;
    cfg.bsp.seed = seed;
    if (r == 0) {
      members.push_back(run_louvain(g, cfg).assignment);
    } else {
      const graph::Permutation perm = graph::random_permutation(n, seed);
      const graph::Graph shuffled = graph::apply_permutation(g, perm);
      members.push_back(graph::unpermute_assignment(perm, run_louvain(shuffled, cfg).assignment));
    }
  }

  ConsensusResult result;

  // Agreement diagnostic: mean pairwise NMI (exact for small ensembles).
  if (members.size() > 1) {
    double sum = 0;
    int pairs = 0;
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        sum += metrics::nmi(members[i], members[j]);
        ++pairs;
      }
    }
    result.ensemble_agreement = sum / pairs;
  } else {
    result.ensemble_agreement = 1.0;
  }

  // 2. Consensus graph: reweight each input edge by its co-classification
  //    frequency; drop edges below the threshold.
  graph::GraphBuilder builder(n);
  for (vid_t v = 0; v < n; ++v) {
    auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vid_t u = nbrs[i];
      if (u < v) continue;  // each undirected edge once (self-loops kept)
      int together = 0;
      for (const auto& m : members) together += m[v] == m[u];
      const double fraction = static_cast<double>(together) / static_cast<double>(members.size());
      if (fraction >= config.threshold && fraction > 0) builder.add_edge(v, u, fraction);
    }
  }
  graph::Graph consensus = builder.build();

  // Degenerate consensus (everything dropped): fall back to the best member.
  if (consensus.total_weight() <= 0) {
    wt_t best_q = -1;
    for (auto& m : members) {
      const wt_t q = modularity(g, m);
      if (q > best_q) {
        best_q = q;
        result.assignment = m;
      }
    }
    result.modularity = best_q;
    result.num_communities = renumber_communities(result.assignment);
    return result;
  }

  // 3. Final clustering of the consensus graph; scored on the original.
  GalaConfig final_cfg = config.detector;
  final_cfg.bsp.seed = splitmix64(config.base_seed ^ 0xc0ffee);
  result.assignment = run_louvain(consensus, final_cfg).assignment;
  result.num_communities = renumber_communities(result.assignment);
  result.modularity = modularity(g, result.assignment, config.detector.bsp.resolution);
  return result;
}

}  // namespace gala::core
