// Consensus (ensemble) clustering on top of GALA (extension).
//
// Louvain is seed-sensitive: different tie-breaks and orderings land in
// different local optima. The standard remedy (Lancichinetti & Fortunato
// 2012) runs the detector R times, builds the co-classification graph
// (edge weight = how often two vertices shared a community, restricted to
// the input edges plus each run's intra-community pairs being implied by
// them), and clusters that. This implementation uses the practical
// edge-restricted variant: the consensus graph reweights each *input edge*
// {u,v} by the fraction of runs putting u and v together, then runs GALA on
// it; edges never co-classified are dropped.
#pragma once

#include <vector>

#include "gala/core/gala.hpp"

namespace gala::core {

struct ConsensusConfig {
  /// Number of ensemble runs (distinct seeds derived from base_seed).
  int runs = 8;
  /// Keep an edge in the consensus graph only if at least this fraction of
  /// runs co-classified its endpoints.
  double threshold = 0.25;
  std::uint64_t base_seed = 1;
  /// Configuration for both the ensemble members and the final run.
  GalaConfig detector{};
};

struct ConsensusResult {
  std::vector<cid_t> assignment;  ///< dense ids per vertex
  wt_t modularity = 0;            ///< on the *original* graph
  vid_t num_communities = 0;
  /// Mean pairwise NMI between ensemble members — low values flag a graph
  /// where single-run results should not be trusted.
  double ensemble_agreement = 0;
};

ConsensusResult consensus_louvain(const graph::Graph& g, const ConsensusConfig& config = {});

}  // namespace gala::core
