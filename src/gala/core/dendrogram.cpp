#include "gala/core/dendrogram.hpp"

#include <numeric>

#include "gala/core/aggregation.hpp"
#include "gala/core/modularity.hpp"

namespace gala::core {

std::vector<cid_t> Dendrogram::cut(std::size_t depth) const {
  GALA_CHECK(depth <= levels_.size(), "cut depth " << depth << " > " << levels_.size());
  std::vector<cid_t> assignment(num_vertices_);
  std::iota(assignment.begin(), assignment.end(), 0);
  for (std::size_t i = 0; i < depth; ++i) {
    assignment = compose_assignment(assignment, levels_[i].contraction);
  }
  return assignment;
}

std::vector<cid_t> Dendrogram::cut_at_most(vid_t max_communities) const {
  // Cuts get coarser with depth; take the shallowest cut under the bound.
  for (std::size_t depth = 0; depth <= levels_.size(); ++depth) {
    const vid_t k = depth == 0 ? num_vertices_ : levels_[depth - 1].num_communities;
    if (k <= max_communities) return cut(depth);
  }
  return cut(levels_.size());
}

Dendrogram build_dendrogram(const graph::Graph& g, const BspConfig& config, double level_theta,
                            int max_levels) {
  Dendrogram dendrogram(g.num_vertices());
  const graph::Graph* current = &g;
  graph::Graph owned;
  wt_t prev_q = -1;
  for (int level = 0; level < max_levels; ++level) {
    const Phase1Result phase1 = bsp_phase1(*current, config);
    if (level > 0 && phase1.modularity - prev_q < level_theta) break;
    prev_q = phase1.modularity;

    AggregationResult agg = aggregate(*current, phase1.community);
    Dendrogram::Level lv;
    lv.contraction = agg.fine_to_coarse;
    lv.modularity = phase1.modularity;
    lv.num_communities = agg.num_communities;
    dendrogram.push_level(std::move(lv));
    if (agg.num_communities == current->num_vertices()) break;
    owned = std::move(agg.coarse);
    current = &owned;
  }
  return dendrogram;
}

}  // namespace gala::core
