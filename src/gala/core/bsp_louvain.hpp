// The BSP parallel Louvain engine — phase 1 of Algorithm 1.
//
// One iteration:
//   1. classify vertices active/inactive under the configured pruning
//      strategy (§3),
//   2. DecideAndMove for active vertices through the workload-aware kernels
//      (§4: shuffle for small degrees, hash for large, per KernelMode),
//   3. apply moves (BSP: all decisions read the iteration-start state),
//   4. update each vertex's community weight d_{C[v]}(v) — full recompute or
//      the efficient delta update of §3.5,
//   5. refresh community totals/sizes, modularity; stop when the gain drops
//      below theta (Grappolo's convergence rule) or nothing moved.
//
// The engine doubles as the measurement harness: per-iteration stats carry
// counts, confusion-matrix entries (oracle mode), per-phase memory traffic
// and wall time, from which every pruning/memory figure of the paper is
// regenerated.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "gala/common/types.hpp"
#include "gala/core/hashtables.hpp"
#include "gala/core/kernels.hpp"
#include "gala/core/pruning.hpp"
#include "gala/exec/context.hpp"
#include "gala/gpusim/device.hpp"
#include "gala/graph/csr.hpp"

namespace gala::core {

enum class WeightUpdateMode { Recompute, Delta };
std::string to_string(WeightUpdateMode mode);

struct IterationStats;

/// End-of-iteration hook shared by the single-GPU and distributed engines:
/// the iteration index (0-based within the level), its stats, the
/// active/moved flags, and the post-iteration community array. Spans are
/// valid only during the call. Used by the algorithm-health layer
/// (gala/metrics/health.hpp) to track convergence without the engine
/// depending on gala_metrics.
using IterationCallback =
    std::function<void(int, const IterationStats&, std::span<const std::uint8_t>,
                       std::span<const std::uint8_t>, std::span<const cid_t>)>;

struct BspConfig {
  PruningStrategy pruning = PruningStrategy::ModularityGain;
  KernelMode kernel = KernelMode::Auto;
  HashTablePolicy hashtable = HashTablePolicy::Hierarchical;
  WeightUpdateMode weight_update = WeightUpdateMode::Delta;
  /// Resolution parameter gamma (generalised modularity); 1.0 = classical.
  double resolution = 1.0;
  /// Convergence threshold theta on the per-iteration modularity gain.
  double theta = 1e-6;
  int max_iterations = 1000;
  /// PM pruning probability (Vite's alpha).
  double pm_alpha = 0.25;
  std::uint64_t seed = 7;
  /// Auto dispatch: out-degree < limit -> shuffle kernel (warp-sized).
  vid_t shuffle_degree_limit = 32;
  /// Record the per-iteration confusion matrix by additionally evaluating
  /// pruned vertices with an uncharged oracle pass (Table 1).
  bool track_confusion = false;
  /// Run blocks on the host pool (false = deterministic sequential launch).
  bool parallel = true;
  gpusim::DeviceConfig device{};
  /// Execution context to run in (device binding + pooled workspace). When
  /// null the engine owns a private context built from `device`/`seed`; the
  /// multi-level pipeline (run_louvain) shares one context across levels so
  /// level N reuses level N-1's slabs. Must outlive the engine.
  exec::ExecutionContext* context = nullptr;
  /// End-of-iteration hook (convergence diagnostics). Travels with the
  /// config, so run_louvain and the supervisor forward it to every level's
  /// engine for free.
  IterationCallback on_iteration;
};

struct IterationStats {
  vid_t active = 0;
  vid_t moved = 0;
  // Confusion matrix over the active/inactive prediction (oracle mode only):
  // positive = "will move".
  vid_t tp = 0, fp = 0, tn = 0, fn = 0;
  wt_t modularity = 0;
  wt_t delta_q = 0;
  gpusim::MemoryStats decide_traffic;
  gpusim::MemoryStats update_traffic;
  gpusim::MemoryStats bookkeeping_traffic;
  double decide_wall = 0;
  double update_wall = 0;
  double other_wall = 0;
  // Hashtable shared-memory rates for this iteration (Fig. 4).
  double ht_maintenance_rate = 0;
  double ht_access_rate = 0;
  // Mean probe-chain length over the iteration's hash-kernel lookups
  // (profiler diagnostic; 0 when no hash vertices ran).
  double ht_mean_probe_length = 0;
  // Workspace heap allocations performed during this iteration. With pooling
  // on, this drops to zero after the first iteration of a level: the
  // steady-state move loop runs entirely out of recycled slabs.
  std::uint64_t ws_allocs = 0;

  vid_t inactive() const { return tp + fp + tn + fn > 0 ? tn + fn : 0; }
};

struct Phase1Result {
  std::vector<cid_t> community;  ///< final assignment, raw ids in [0, V)
  wt_t modularity = 0;
  vid_t num_communities = 0;
  std::vector<IterationStats> iterations;
  double wall_seconds = 0;
  gpusim::MemoryStats total_traffic;
  /// Modeled time (cost model) split by phase, milliseconds.
  double decide_modeled_ms = 0;
  double update_modeled_ms = 0;
  double other_modeled_ms = 0;
  /// Workspace counters snapshot at the end of the run (cumulative over the
  /// engine's context — shared-context callers see pipeline-wide totals).
  exec::WorkspaceStats workspace;
  double modeled_ms() const { return decide_modeled_ms + update_modeled_ms + other_modeled_ms; }
};

class BspLouvainEngine {
 public:
  /// The graph must outlive the engine. total_weight() must be positive.
  BspLouvainEngine(const graph::Graph& g, const BspConfig& config);

  /// Warm start: begin from `initial` (community ids must lie in [0, V))
  /// instead of singletons. Used by the incremental-update extension — with
  /// MG pruning, Equation 6 immediately deactivates every vertex whose
  /// converged neighbourhood still holds, so only perturbed regions rerun.
  BspLouvainEngine(const graph::Graph& g, const BspConfig& config,
                   std::span<const cid_t> initial);

  /// Called at the end of every iteration with the iteration index, its
  /// stats, and the active/moved flags (valid only during the call).
  using IterationObserver =
      std::function<void(int, const IterationStats&, std::span<const std::uint8_t>,
                         std::span<const std::uint8_t>)>;
  void set_observer(IterationObserver observer) { observer_ = std::move(observer); }

  /// Runs phase 1 to convergence and returns the result.
  Phase1Result run();

 private:
  void decide_phase(std::span<const std::uint8_t> active, std::span<Decision> decisions,
                    IterationStats& iter_stats);
  void oracle_pass(std::span<const std::uint8_t> active, std::span<Decision> decisions,
                   std::span<std::uint8_t> would_move);
  void weight_update_phase(std::span<const std::uint8_t> moved, IterationStats& iter_stats);
  void ensure_delta_buffer(vid_t n);
  wt_t state_modularity() const;
  wt_t min_nonempty_total() const;

  const graph::Graph& g_;
  BspConfig config_;
  // Context first: it (and its workspace) must outlive every lease and
  // pooled vector below, so they are destroyed before it.
  std::unique_ptr<exec::ExecutionContext> owned_context_;
  exec::ExecutionContext* ctx_;  // == owned_context_.get() or config.context
  Xoshiro256 rng_;
  std::uint64_t salt_;

  // BSP state (comm_* indexed by community id == original vertex id space).
  std::vector<cid_t> comm_;
  std::vector<cid_t> next_comm_;
  std::vector<wt_t> comm_total_;   // D_V(C)
  std::vector<vid_t> comm_size_;
  std::vector<wt_t> weight_;       // e_{v,C[v]} = d_{C[v]}(v) minus self-loop
  std::vector<std::uint8_t> prev_moved_;
  std::vector<std::uint8_t> comm_changed_;
  // Delta-update message buffer: a pooled slab of std::atomic<wt_t>,
  // placement-constructed once per engine (atomics are not trivially
  // copyable, so PooledVec does not apply).
  exec::Workspace::Lease<std::byte> delta_lease_;
  std::span<std::atomic<wt_t>> delta_;
  // Workload-aware dispatch lists, pooled and rebuilt each iteration.
  exec::PooledVec<vid_t> shuffle_list_;
  exec::PooledVec<vid_t> hash_list_;
  wt_t sum_self_loops_ = 0;

  IterationObserver observer_;
};

/// One vertex through the prune-then-decide dispatch, exactly as the engines
/// sequence it: classify `v` under `strategy`, and when active run the
/// workload-aware decide kernel. Returns whether v was active; `out` is
/// written only for active vertices. Shared by the distributed engine's
/// eager decide pass and its overlapped (speculative) decide during the
/// weight-gather window, so both paths stay on one trajectory.
bool prune_and_decide(PruningStrategy strategy, const PruningContext& prune_ctx, double pm_alpha,
                      std::uint64_t pm_base, const DecideInput& in, vid_t v,
                      const DecideDispatch& dispatch, gpusim::SharedMemoryArena& arena,
                      HashScratch& scratch, std::uint64_t salt, gpusim::MemoryStats& stats,
                      Decision& out);

/// Convenience wrapper: construct + run.
Phase1Result bsp_phase1(const graph::Graph& g, const BspConfig& config = {});

}  // namespace gala::core
