#include "gala/core/kernels.hpp"

#include <algorithm>
#include <limits>

#include "gala/common/error.hpp"
#include "gala/gpusim/block.hpp"
#include "gala/telemetry/telemetry.hpp"

namespace gala::core {
namespace {

using gpusim::kWarpSize;
using gpusim::LaneMask;
using gpusim::MemoryStats;
using gpusim::WarpValues;

/// (community, partial d_C(v)) pair spilled by chunk leaders.
struct SpillEntry {
  cid_t community;
  wt_t weight;
};

}  // namespace

Decision shuffle_decide(const DecideInput& in, vid_t v, gpusim::SharedMemoryArena& spill_arena,
                        MemoryStats& stats) {
  const graph::Graph& g = *in.g;
  const cid_t curr = in.comm[v];
  const wt_t dv = g.degree(v);
  const auto nbrs = g.neighbors(v);
  const auto ws = g.weights(v);
  const std::size_t deg = nbrs.size();

  Decision result;
  wt_t e_curr = 0;
  BestTracker tracker;

  const bool multi_chunk = deg > static_cast<std::size_t>(kWarpSize);
  std::span<SpillEntry> spill;
  std::size_t spill_count = 0;
  if (multi_chunk) spill = spill_arena.allocate<SpillEntry>(deg);

  for (std::size_t base = 0; base < deg; base += kWarpSize) {
    const int lanes = static_cast<int>(std::min<std::size_t>(kWarpSize, deg - base));
    LaneMask active = gpusim::warp::first_lanes(lanes);
    WarpValues<cid_t> my_c{};
    WarpValues<wt_t> my_w{};
    for (int i = 0; i < lanes; ++i) {
      const vid_t u = nbrs[base + i];
      // Loads: neighbour id, edge weight, C[u] (Alg. 2 lines 2-4).
      stats.global_reads += 3;
      if (u == v) {
        active &= ~(LaneMask{1} << i);  // self-loops cancel out of every comparison
        continue;
      }
      my_c[i] = in.comm[u];
      my_w[i] = ws[base + i];
    }
    if (active == 0) continue;

    // Coalescing diagnostic: the C[u] lookups gather by neighbour id.
    {
      WarpValues<vid_t> addrs{};
      for (int i = 0; i < lanes; ++i) addrs[i] = nbrs[base + i];
      gpusim::warp::gather_transactions(active, addrs, stats);
    }

    const auto masks = gpusim::warp::match_any(active, my_c, stats);  // Alg. 2 line 5
    const auto sums = gpusim::warp::segmented_reduce_add(active, masks, my_w, stats);  // line 6

    if (!multi_chunk) {
      // Score per group leader; __reduce_max_sync picks the winner (lines 7-9).
      WarpValues<wt_t> my_dq{};
      for (int i = 0; i < kWarpSize; ++i) my_dq[i] = std::numeric_limits<wt_t>::lowest();
      for (int i = 0; i < kWarpSize; ++i) {
        if (!((active >> i) & 1u)) continue;
        if (gpusim::warp::leader_lane(masks[i]) != i) continue;  // one lane per community
        const cid_t c = my_c[i];
        stats.global_reads += 1;  // D_V(C) load
        my_dq[i] = move_score(sums[i], in.comm_total[c], dv, in.two_m, c == curr, in.resolution);
        if (c == curr) e_curr = sums[i];
      }
      const wt_t max_dq = gpusim::warp::reduce_max(active, my_dq, stats);
      // Winner election: among lanes achieving the max, the smallest
      // community id wins (a ballot + min-reduce on hardware).
      stats.shuffle_ops += 1;
      for (int i = 0; i < kWarpSize; ++i) {
        if (((active >> i) & 1u) && my_dq[i] == max_dq) tracker.offer(my_c[i], my_dq[i]);
      }
    } else {
      // Chunk leaders spill their (community, partial sum) pair to shared
      // memory for the cross-chunk merge. The leaders' stores form one
      // warp-wide shared request; consecutive spill slots keep it (mostly)
      // conflict-free, which the bank model verifies.
      constexpr std::uint64_t kSpillWords = sizeof(SpillEntry) / 4;
      LaneMask leaders = 0;
      WarpValues<std::uint64_t> spill_words{};
      for (int i = 0; i < kWarpSize; ++i) {
        if (!((active >> i) & 1u)) continue;
        if (gpusim::warp::leader_lane(masks[i]) != i) continue;
        GALA_ASSERT(spill_count < spill.size());
        leaders |= (LaneMask{1} << i);
        spill_words[i] = static_cast<std::uint64_t>(spill_count) * kSpillWords;
        spill[spill_count++] = {my_c[i], sums[i]};
        stats.shared_writes += 1;
      }
      if (leaders != 0) gpusim::warp::shared_transactions(leaders, spill_words, stats);
    }
  }

  if (multi_chunk) {
    // Consolidate partial sums that belong to the same community across
    // chunks (in-place linear merge over the shared-memory spill list).
    std::size_t unique = 0;
    for (std::size_t j = 0; j < spill_count; ++j) {
      stats.shared_reads += 1;
      bool merged = false;
      for (std::size_t k = 0; k < unique; ++k) {
        stats.shared_reads += 1;
        if (spill[k].community == spill[j].community) {
          spill[k].weight += spill[j].weight;
          stats.shared_writes += 1;
          merged = true;
          break;
        }
      }
      if (!merged) {
        spill[unique] = spill[j];
        stats.shared_writes += 1;
        ++unique;
      }
    }
    for (std::size_t k = 0; k < unique; ++k) {
      stats.shared_reads += 1;
      stats.global_reads += 1;  // D_V(C) load
      const cid_t c = spill[k].community;
      const wt_t score = move_score(spill[k].weight, in.comm_total[c], dv, in.two_m, c == curr, in.resolution);
      stats.register_ops += 1;
      if (c == curr) e_curr = spill[k].weight;
      tracker.offer(c, score);
    }
  }

  result.weight_to_curr = e_curr;
  stats.global_reads += 1;  // D_V(C[v])
  result.curr_score = move_score(e_curr, in.comm_total[curr], dv, in.two_m, /*in_community=*/true, in.resolution);
  if (tracker.best == kInvalidCid) {
    result.best = curr;
    result.best_score = result.curr_score;
  } else {
    result.best = tracker.best;
    result.best_score = tracker.score;
  }
  return result;
}

namespace {

Decision hash_decide_impl(const DecideInput& in, vid_t v, HashTablePolicy policy,
                          gpusim::SharedMemoryArena& arena, HashScratch& global_scratch,
                          std::uint64_t salt, MemoryStats& stats) {
  const graph::Graph& g = *in.g;
  const cid_t curr = in.comm[v];
  const wt_t dv = g.degree(v);
  const auto nbrs = g.neighbors(v);
  const auto ws = g.weights(v);
  const std::size_t deg = nbrs.size();

  Decision result;
  if (deg == 0) {
    result.best = curr;
    stats.global_reads += 1;
    result.curr_score = move_score(0, in.comm_total[curr], dv, in.two_m, true, in.resolution);
    result.best_score = result.curr_score;
    return result;
  }

  NeighborCommunityTable table(policy, arena, global_scratch, static_cast<vid_t>(deg), salt,
                               stats);

  // Threads stride over the adjacency (Alg. 3 lines 4-10); sequentially
  // simulated, identical traffic.
  for (std::size_t i = 0; i < deg; ++i) {
    const vid_t u = nbrs[i];
    stats.global_reads += 3;  // neighbour id, weight, C[u]
    if (u == v) continue;
    table.upsert(in.comm[u], ws[i], [&](cid_t c) { return in.comm_total[c]; });
  }

  // Score every neighbouring community; the block-wide max over the
  // threads' my_best_C candidates (lines 11-15) is a shared-memory tree
  // reduction, charged explicitly.
  BestTracker tracker;
  wt_t e_curr = 0;
  table.for_each([&](cid_t c, wt_t weight, wt_t total) {
    stats.register_ops += 1;
    const wt_t score = move_score(weight, total, dv, in.two_m, c == curr, in.resolution);
    if (c == curr) e_curr = weight;
    tracker.offer(c, score);
  });
  gpusim::block::charge_tree_reduction(std::min<std::size_t>(table.size(), 256), stats);
  table.reset();

  result.weight_to_curr = e_curr;
  stats.global_reads += 1;  // D_V(C[v])
  result.curr_score = move_score(e_curr, in.comm_total[curr], dv, in.two_m, true, in.resolution);
  if (tracker.best == kInvalidCid) {
    result.best = curr;
    result.best_score = result.curr_score;
  } else {
    result.best = tracker.best;
    result.best_score = tracker.score;
  }
  return result;
}

}  // namespace

Decision hash_decide(const DecideInput& in, vid_t v, HashTablePolicy policy,
                     gpusim::SharedMemoryArena& arena, HashScratch& global_scratch,
                     std::uint64_t salt, MemoryStats& stats) {
  if (policy == HashTablePolicy::GlobalOnly) {
    return hash_decide_impl(in, v, policy, arena, global_scratch, salt, stats);
  }
  try {
    return hash_decide_impl(in, v, policy, arena, global_scratch, salt, stats);
  } catch (const ResourceExhausted&) {
    // Degradation ladder (§4.2 read backwards): shared-memory pressure —
    // arena exhaustion, real or injected — retries this vertex with every
    // bucket in global memory. Exhaustion can only be thrown from the table
    // constructor, before any traffic is charged, so the retry accounts
    // cleanly. Decisions are policy-independent: same result, more global
    // traffic.
    telemetry::Registry::global().counter("resilience.hashtable_fallbacks").add(1);
    return hash_decide_impl(in, v, HashTablePolicy::GlobalOnly, arena, global_scratch, salt,
                            stats);
  }
}

std::string to_string(KernelMode mode) {
  switch (mode) {
    case KernelMode::Auto:
      return "auto";
    case KernelMode::ShuffleOnly:
      return "shuffle-only";
    case KernelMode::HashOnly:
      return "hash-only";
  }
  return "?";
}

bool use_shuffle_kernel(const graph::Graph& g, vid_t v, const DecideDispatch& d) {
  if (d.mode == KernelMode::ShuffleOnly) return true;
  return d.mode == KernelMode::Auto && g.out_degree(v) < d.shuffle_degree_limit;
}

Decision decide_vertex(const DecideInput& in, vid_t v, const DecideDispatch& d,
                       gpusim::SharedMemoryArena& arena, HashScratch& global_scratch,
                       std::uint64_t salt, MemoryStats& stats) {
  arena.reset();
  if (use_shuffle_kernel(*in.g, v, d)) return shuffle_decide(in, v, arena, stats);
  return hash_decide(in, v, d.hashtable, arena, global_scratch, salt, stats);
}

cid_t apply_move_guard(const Decision& d, cid_t curr, std::span<const vid_t> comm_size) {
  if (d.best == kInvalidCid || d.best == curr) return curr;
  if (d.best_score <= d.curr_score) return curr;  // strict improvement only (Lemma 5)
  // Grappolo's singleton-swap guard: two singleton communities may only
  // merge toward the smaller id, or BSP rounds would swap them forever.
  if (comm_size[curr] == 1 && comm_size[d.best] == 1 && d.best > curr) return curr;
  return d.best;
}

}  // namespace gala::core
