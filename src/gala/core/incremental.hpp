// Incremental community maintenance on dynamic graphs (extension).
//
// Real deployments rarely recompute communities from scratch: edges arrive
// and disappear in batches. This extension applies a batch of edge updates
// and *repairs* the previous community structure instead of restarting:
//
//   1. rebuild the CSR with the updates applied,
//   2. warm-start the BSP engine from the previous assignment,
//   3. let MG pruning (Equation 6) act as delta screening — vertices whose
//      converged neighbourhood is untouched satisfy the inequality on
//      iteration 0 and are never re-evaluated; only the perturbed region
//      (and whatever it destabilises transitively) reruns,
//   4. finish with the standard multi-level pipeline on the repaired
//      partition's contraction.
//
// The zero-false-negative guarantee of MG means the repair converges to the
// same fixed-point family a full rerun would reach from this partition.
#pragma once

#include <span>
#include <vector>

#include "gala/core/gala.hpp"

namespace gala::core {

/// One edge mutation. `remove` deletes weight from the undirected edge
/// {u, v} (removing the edge entirely when the remaining weight is <= 0);
/// otherwise `weight` is added (creating the edge if absent).
struct EdgeUpdate {
  vid_t u = 0;
  vid_t v = 0;
  wt_t weight = 1.0;
  bool remove = false;
};

/// Applies `updates` to `g` and returns the new graph. Vertex count is
/// unchanged; removing more weight than an edge has deletes the edge.
graph::Graph apply_edge_updates(const graph::Graph& g, std::span<const EdgeUpdate> updates);

struct IncrementalResult {
  graph::Graph graph;             ///< the updated graph
  std::vector<cid_t> assignment;  ///< repaired communities (dense ids)
  wt_t modularity = 0;
  vid_t num_communities = 0;
  /// Vertices DecideAndMove actually evaluated during the repair's first
  /// round — the savings relative to V * iterations is the point.
  std::uint64_t evaluated_vertices = 0;
  int repair_iterations = 0;
};

/// Repairs `previous` (an assignment on `g`, any dense id space over [0,V))
/// after applying `updates`. `config.bsp.pruning` should be ModularityGain
/// (or MgPlusRelaxed) for the delta-screening effect; other strategies work
/// but re-evaluate everything in round 1.
IncrementalResult update_communities(const graph::Graph& g, std::span<const cid_t> previous,
                                     std::span<const EdgeUpdate> updates,
                                     const GalaConfig& config = {});

}  // namespace gala::core
