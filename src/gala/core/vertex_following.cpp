#include "gala/core/vertex_following.hpp"

#include <numeric>

#include "gala/common/error.hpp"

namespace gala::core {

VertexFollowingResult follow_vertices(const graph::Graph& g) {
  const vid_t n = g.num_vertices();
  // anchor[v]: the vertex v is merged into (itself if kept). Pendant chains
  // are followed iteratively: a degree-1 vertex points at its neighbour;
  // path-compress afterwards.
  std::vector<vid_t> anchor(n);
  std::iota(anchor.begin(), anchor.end(), 0);

  // Work on mutable residual degrees so chains (a-b-c where a has degree 1
  // and b degree 2) collapse end-to-end.
  std::vector<vid_t> residual_degree(n);
  for (vid_t v = 0; v < n; ++v) residual_degree[v] = g.out_degree(v);
  std::vector<std::uint8_t> merged(n, 0);
  std::vector<vid_t> frontier;
  for (vid_t v = 0; v < n; ++v) {
    // A self-loop-only vertex is not a follower.
    if (residual_degree[v] == 1 && g.self_loop(v) == 0) frontier.push_back(v);
  }
  while (!frontier.empty()) {
    std::vector<vid_t> next;
    for (const vid_t v : frontier) {
      if (merged[v] || residual_degree[v] != 1) continue;
      // Find the single unmerged neighbour.
      vid_t target = kInvalidVid;
      for (const vid_t u : g.neighbors(v)) {
        if (u != v && !merged[u]) {
          target = u;
          break;
        }
      }
      if (target == kInvalidVid) continue;  // whole component collapsed
      merged[v] = 1;
      anchor[v] = target;
      if (residual_degree[target] > 0) --residual_degree[target];
      if (residual_degree[target] == 1 && g.self_loop(target) == 0 && !merged[target]) {
        next.push_back(target);
      }
    }
    frontier.swap(next);
  }

  // Path compression: anchors may themselves have been merged.
  for (vid_t v = 0; v < n; ++v) {
    vid_t a = anchor[v];
    while (anchor[a] != a) a = anchor[a];
    anchor[v] = a;
  }

  VertexFollowingResult result;
  result.original_to_reduced.assign(n, kInvalidVid);
  vid_t next_id = 0;
  for (vid_t v = 0; v < n; ++v) {
    if (anchor[v] == v) result.original_to_reduced[v] = next_id++;
  }
  for (vid_t v = 0; v < n; ++v) {
    result.original_to_reduced[v] = result.original_to_reduced[anchor[v]];
    if (anchor[v] != v) ++result.followers;
  }

  graph::GraphBuilder builder(next_id);
  for (vid_t v = 0; v < n; ++v) {
    auto nbrs = g.neighbors(v);
    auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] < v) continue;  // each undirected edge once
      const vid_t a = result.original_to_reduced[v];
      const vid_t b = result.original_to_reduced[nbrs[i]];
      // Intra-anchor edges (follower-anchor) become self-loops, preserving
      // total weight and degrees.
      builder.add_edge(a, b, ws[i]);
    }
  }
  result.reduced = builder.build();
  return result;
}

std::vector<cid_t> expand_assignment(const VertexFollowingResult& vf,
                                     std::span<const cid_t> reduced_assignment) {
  GALA_CHECK(reduced_assignment.size() == vf.reduced.num_vertices(),
             "reduced assignment size mismatch");
  std::vector<cid_t> out(vf.original_to_reduced.size());
  for (std::size_t v = 0; v < out.size(); ++v) {
    out[v] = reduced_assignment[vf.original_to_reduced[v]];
  }
  return out;
}

}  // namespace gala::core
