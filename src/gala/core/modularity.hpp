// Modularity (Equation 1) and modularity gain (Equation 2).
//
// Conventions (see also graph/csr.hpp):
//  - d(v) counts self-loops twice; sum_v d(v) = 2|E|.
//  - e_{v,C} ("community weight" d_C(v) in the paper) is the weight between
//    v and the members of C *excluding v's own self-loop*. Self-loops stay
//    internal under any move, so they cancel out of every gain comparison;
//    they are added back (twice) when computing D_C(C) for Equation 1.
//  - Gains are always evaluated with v removed from its current community
//    (the Grappolo convention), which makes "stay" vs "move" comparisons
//    exact: score(v, C) = e_{v,C} - (D_V(C) - [v in C] d(v)) * d(v) / 2|E|,
//    and DeltaQ(v -> C) = score(v, C) / |E|.
#pragma once

#include <span>
#include <vector>

#include "gala/common/types.hpp"
#include "gala/graph/csr.hpp"

namespace gala::core {

/// Computes (generalised) modularity of an assignment from scratch
/// (O(V + E)); the independent audit used by tests and benches.
///
/// `resolution` is the gamma of Reichardt–Bornholdt / Arenas et al. (the
/// paper's remedy for the resolution limit, §1 [4, 30]):
///   Q_gamma = sum_C [ D_C(C)/2|E| - gamma * (D_V(C)/2|E|)^2 ].
/// gamma = 1 is classical modularity; gamma > 1 favours smaller communities.
wt_t modularity(const graph::Graph& g, std::span<const cid_t> community, wt_t resolution = 1.0);

/// The move score: e_vc - gamma * (D_V(C) - [v in C]*d(v)) * d(v) / 2|E|.
/// `in_community` says whether v currently belongs to C (so its degree is
/// excluded from the community total). DeltaQ(v->C) = score / |E|.
inline wt_t move_score(wt_t e_vc, wt_t community_total_degree, wt_t degree_v, wt_t two_m,
                       bool in_community, wt_t resolution = 1.0) {
  const wt_t total = in_community ? community_total_degree - degree_v : community_total_degree;
  return e_vc - resolution * total * degree_v / two_m;
}

/// Number of distinct community ids used by `community` (renumber count).
vid_t count_communities(std::span<const cid_t> community);

/// Renumbers community ids to the dense range [0, k); returns k. `community`
/// is rewritten in place; `representative` (optional) receives, for each new
/// id, one original vertex-community id.
vid_t renumber_communities(std::span<cid_t> community, std::vector<cid_t>* representative = nullptr);

}  // namespace gala::core
