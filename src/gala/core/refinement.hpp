// Leiden-style partition refinement (Traag et al. 2019 — the paper's [54]).
//
// Louvain's phase 1 can produce internally *disconnected* communities: a
// bridge vertex moves away and strands the two halves it connected. The
// Leiden remedy, implemented here as an optional extension, refines the
// phase-1 partition before aggregation:
//
//   - every vertex starts as a singleton sub-community;
//   - in random order, each still-singleton vertex may merge into a
//     sub-community inside its *own* phase-1 community (positive gain,
//     ties toward the smaller id);
//   - merged vertices never leave, so every sub-community stays connected
//     by construction.
//
// Aggregating the refined partition instead of the raw phase-1 partition
// makes every community of the final hierarchy connected (tested as a
// property), at a small modularity cost per level that the next level
// recovers.
#pragma once

#include <span>
#include <vector>

#include "gala/common/types.hpp"
#include "gala/graph/csr.hpp"

namespace gala::core {

struct RefinementResult {
  /// Sub-community per vertex, dense ids in [0, num_subcommunities). Refines
  /// `community`: two vertices share a sub-community only if they shared a
  /// community.
  std::vector<cid_t> refined;
  vid_t num_subcommunities = 0;
  /// How many phase-1 communities were split into 2+ sub-communities.
  vid_t communities_split = 0;
};

/// Refines `community` (any id space) on `g`. Deterministic in `seed`.
RefinementResult refine_partition(const graph::Graph& g, std::span<const cid_t> community,
                                  wt_t resolution = 1.0, std::uint64_t seed = 1);

/// True iff every community of `community` induces a connected subgraph of
/// `g` (isolated vertices count as connected singletons). Used by the tests
/// and by callers that want to verify partition quality.
bool is_partition_connected(const graph::Graph& g, std::span<const cid_t> community);

}  // namespace gala::core
