// Reference sequential Louvain (Blondel et al. 2008).
//
// The correctness oracle for the parallel implementations: classic
// vertex-at-a-time greedy phase 1 with immediate state updates, plus the
// standard multi-level driver. Not performance-tuned on purpose.
#pragma once

#include <vector>

#include "gala/common/types.hpp"
#include "gala/graph/csr.hpp"

namespace gala::core {

struct SequentialOptions {
  /// Resolution parameter gamma (generalised modularity); 1.0 = classical.
  double resolution = 1.0;
  /// Stop a phase-1 sweep loop when a full pass improves Q by less than this.
  double theta = 1e-6;
  /// Stop the multi-level loop when a level improves Q by less than this.
  double level_theta = 1e-6;
  int max_passes_per_level = 100;
  int max_levels = 50;
};

struct SequentialResult {
  std::vector<cid_t> assignment;  ///< original vertex -> final community (dense ids)
  wt_t modularity = 0;
  int levels = 0;
  vid_t num_communities = 0;
};

/// One phase-1 optimisation of `g` starting from singletons. Returns the
/// assignment (dense ids) and achieved modularity.
SequentialResult sequential_phase1(const graph::Graph& g, const SequentialOptions& opts = {});

/// Full multi-level Louvain.
SequentialResult sequential_louvain(const graph::Graph& g, const SequentialOptions& opts = {});

}  // namespace gala::core
