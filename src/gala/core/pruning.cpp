#include "gala/core/pruning.hpp"

#include <functional>

#include "gala/common/error.hpp"

namespace gala::core {
namespace {

/// Runs body(v) for all vertices, on the pool when provided.
void for_all(vid_t n, ThreadPool* pool, const std::function<void(std::size_t)>& body) {
  if (pool) {
    pool->parallel_for(0, n, body, /*grain=*/1024);
  } else {
    for (vid_t v = 0; v < n; ++v) body(v);
  }
}

bool sm_is_inactive(const PruningContext& ctx, vid_t v) {
  // Every community containing v or a neighbour must be untouched.
  if (ctx.comm_changed[ctx.comm[v]]) return false;
  for (const vid_t u : ctx.g->neighbors(v)) {
    if (ctx.comm_changed[ctx.comm[u]]) return false;
  }
  return true;
}

bool rm_is_inactive(const PruningContext& ctx, vid_t v) {
  // v and all neighbours unmoved in the previous iteration.
  if (ctx.prev_moved[v]) return false;
  for (const vid_t u : ctx.g->neighbors(v)) {
    if (ctx.prev_moved[u]) return false;
  }
  return true;
}

bool pm_is_inactive(const PruningContext& ctx, vid_t v, double pm_alpha, std::uint64_t pm_base) {
  if (ctx.prev_moved[v]) return false;
  const double coin =
      static_cast<double>(splitmix64(pm_base ^ (v * 0x9e3779b97f4a7c15ULL)) >> 11) * 0x1.0p-53;
  return coin < pm_alpha;
}

}  // namespace

std::string to_string(PruningStrategy s) {
  switch (s) {
    case PruningStrategy::None:
      return "none";
    case PruningStrategy::Strict:
      return "SM";
    case PruningStrategy::Relaxed:
      return "RM";
    case PruningStrategy::Probabilistic:
      return "PM";
    case PruningStrategy::ModularityGain:
      return "MG";
    case PruningStrategy::MgPlusRelaxed:
      return "MG+RM";
  }
  return "?";
}

bool mg_is_inactive(const PruningContext& ctx, vid_t v) {
  // Equation 6. Uses the raw D_V(C[v]) maintained by the BSP state (which
  // includes d(v)); subtracting more only tightens the condition, so zero
  // false negatives is preserved.
  const wt_t dv = ctx.g->degree(v);
  const wt_t lhs =
      2 * ctx.vertex_comm_weight[v] - dv +
      ctx.resolution * (ctx.min_comm_total - ctx.comm_total[ctx.comm[v]]) * dv / ctx.two_m;
  return lhs >= 0;
}

bool is_inactive(PruningStrategy strategy, const PruningContext& ctx, vid_t v, double pm_alpha,
                 std::uint64_t pm_base) {
  const bool history_ready = ctx.iteration > 0;
  switch (strategy) {
    case PruningStrategy::None:
      return false;
    case PruningStrategy::Strict:
      return history_ready && sm_is_inactive(ctx, v);
    case PruningStrategy::Relaxed:
      return history_ready && rm_is_inactive(ctx, v);
    case PruningStrategy::Probabilistic:
      return history_ready && pm_is_inactive(ctx, v, pm_alpha, pm_base);
    case PruningStrategy::ModularityGain:
      return mg_is_inactive(ctx, v);
    case PruningStrategy::MgPlusRelaxed:
      return mg_is_inactive(ctx, v) || (history_ready && rm_is_inactive(ctx, v));
  }
  GALA_CHECK(false, "unknown pruning strategy");
}

void compute_active(PruningStrategy strategy, const PruningContext& ctx, double pm_alpha,
                    Xoshiro256& rng, std::span<std::uint8_t> active, ThreadPool* pool) {
  const vid_t n = ctx.g->num_vertices();
  GALA_CHECK(active.size() == n, "active span size mismatch");
  // One deterministic draw per iteration seeds PM's per-vertex coins, so the
  // parallel loop is schedule-independent.
  const std::uint64_t pm_base = strategy == PruningStrategy::Probabilistic ? rng() : 0;
  for_all(n, pool, [&](std::size_t v) {
    active[v] = is_inactive(strategy, ctx, static_cast<vid_t>(v), pm_alpha, pm_base) ? 0 : 1;
  });
}

void compute_active(PruningStrategy strategy, const PruningContext& ctx, double pm_alpha,
                    Xoshiro256& rng, std::span<std::uint8_t> active,
                    exec::ExecutionContext& exec_ctx, bool parallel) {
  compute_active(strategy, ctx, pm_alpha, rng, active, parallel ? &exec_ctx.pool() : nullptr);
}

}  // namespace gala::core
