// Neighbour-community hashtables for the hash-based kernel (paper §4.2).
//
// The hash kernel accumulates, for one vertex v, the map
//   H : community C -> (d_C(v), D_V(C))
// over v's neighbours. Three placement policies are compared in the paper:
//
//  - GlobalOnly   : every bucket in global memory (prior work [8,15,39]).
//  - Unified      : one hash function over s shared + g global buckets;
//                   an entry lands in shared memory only with probability
//                   s/(s+g) — shared and global are treated as equals.
//  - Hierarchical : GALA's design. h0 indexes the s shared buckets; only on
//                   a shared-bucket collision does the entry fall through to
//                   the global buckets via h1 with linear probing. Shared
//                   memory is always tried first on access, too.
//
// The table charges every probe/update to MemoryStats at the level of the
// bucket it touches and records where entries are *maintained* vs *accessed*
// (the Fig. 4 rates).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gala/common/error.hpp"
#include "gala/common/prng.hpp"
#include "gala/common/types.hpp"
#include "gala/exec/workspace.hpp"
#include "gala/gpusim/memory.hpp"
#include "gala/gpusim/shared_memory.hpp"

namespace gala::core {

enum class HashTablePolicy { GlobalOnly, Unified, Hierarchical };

std::string to_string(HashTablePolicy policy);

/// One bucket: community id, accumulated d_C(v), cached D_V(C).
struct HashBucket {
  cid_t key = kInvalidCid;
  wt_t weight = 0;
  wt_t community_total = 0;
};

/// The "global memory" bucket slab that absorbs entries missing the shared
/// part. Replaces the ad-hoc `std::vector<HashBucket>` scratch (and the
/// engine's thread_local copies, which retained peak-sized memory for the
/// life of the thread pool). Two modes:
///
///  - heap mode (default constructor): owns a private vector — a drop-in
///    for tests and benches that probe tables directly;
///  - workspace mode: slabs are checked out of an exec::Workspace under one
///    tag and returned on destruction, so memory is pool-recycled across
///    vertices, launches, and levels, and provably given back after a run.
///
/// Invariant: every bucket in [0, size()) is empty (key == kInvalidCid)
/// whenever no table is live on the scratch — NeighborCommunityTable::reset()
/// restores it on each table's retirement. That is what lets a workspace
/// checkout that recycles a same-tag slab skip re-initialisation, keeping
/// pooled runs bit-identical to fresh-allocation runs.
class HashScratch {
 public:
  HashScratch() = default;
  explicit HashScratch(exec::Workspace& ws) : ws_(&ws) {}
  /// Pointer form for kernel bodies: null falls back to heap mode (unbound
  /// device; BlockContext::workspace may legitimately be null).
  explicit HashScratch(exec::Workspace* ws) : ws_(ws) {}

  /// Usable bucket count (>= every ensure() so far; never shrinks).
  std::size_t size() const { return cap_; }

  /// Grows to at least `n` empty buckets; existing buckets are preserved
  /// empty (growth only happens between tables, when all are empty).
  void ensure(std::size_t n);

  HashBucket& operator[](std::size_t i) { return data_[i]; }
  const HashBucket& operator[](std::size_t i) const { return data_[i]; }

  HashBucket* begin() { return data_; }
  HashBucket* end() { return data_ + cap_; }
  const HashBucket* begin() const { return data_; }
  const HashBucket* end() const { return data_ + cap_; }

 private:
  exec::Workspace* ws_ = nullptr;             // null = heap mode
  exec::Workspace::Lease<HashBucket> lease_;  // workspace mode storage
  std::vector<HashBucket> heap_;              // heap mode storage
  HashBucket* data_ = nullptr;
  std::size_t cap_ = 0;
};

/// A per-vertex neighbour-community table. The shared part lives in the
/// block's SharedMemoryArena; the global part in a caller-provided
/// HashScratch slab (reused across vertices, standing in for a
/// global-memory slab).
class NeighborCommunityTable {
 public:
  /// `capacity_hint` is an upper bound on distinct communities (the vertex
  /// degree). `shared_budget_buckets` limits how much of the arena the
  /// policy may claim (0 = as much as fits).
  NeighborCommunityTable(HashTablePolicy policy, gpusim::SharedMemoryArena& arena,
                         HashScratch& global_scratch, vid_t capacity_hint,
                         std::uint64_t salt, gpusim::MemoryStats& stats);

  /// Restores the scratch buffers so the next vertex starts from an empty
  /// table even if the caller forgets reset().
  ~NeighborCommunityTable() { reset(); }

  NeighborCommunityTable(const NeighborCommunityTable&) = delete;
  NeighborCommunityTable& operator=(const NeighborCommunityTable&) = delete;

  /// Adds `w` to community `c`'s entry, creating it if absent. On creation
  /// the caller-supplied loader provides D_V(c) (charged as one global read,
  /// as the kernel loads it from the community-total array).
  template <typename TotalLoader>
  void upsert(cid_t c, wt_t w, TotalLoader&& load_total) {
    const Slot slot = locate(c);
    HashBucket& b = bucket(slot);
    if (b.key == kInvalidCid) {
      b.key = c;
      b.weight = 0;
      stats_->global_reads += 1;  // load D_V(C[u]) into H (Alg. 3 line 9)
      b.community_total = load_total(c);
      charge_write(slot);
      charge_maintenance(slot);
      used_.push_back(slot);
    }
    // atomicAdd on the accumulated weight (Alg. 3 line 10).
    b.weight += w;
    charge_atomic(slot);
    charge_access(slot);
  }

  /// Iterates occupied buckets; f(key, weight, community_total).
  template <typename F>
  void for_each(F&& f) const {
    for (const Slot slot : used_) {
      const HashBucket& b = const_bucket(slot);
      charge_read(slot);
      f(b.key, b.weight, b.community_total);
    }
  }

  std::size_t size() const { return used_.size(); }
  std::size_t shared_buckets() const { return shared_.size(); }
  std::size_t global_buckets() const { return global_count_; }

  /// Clears occupied buckets for reuse on the next vertex.
  void reset();

 private:
  struct Slot {
    bool in_shared;
    std::uint32_t index;
  };

  Slot locate(cid_t c);
  HashBucket& bucket(Slot s) { return s.in_shared ? shared_[s.index] : global_scratch_[s.index]; }
  const HashBucket& const_bucket(Slot s) const {
    return s.in_shared ? shared_[s.index] : global_scratch_[s.index];
  }

  std::uint32_t hash0(cid_t c) const;
  std::uint32_t hash1(cid_t c) const;

  void charge_probe(Slot s) const {
    s.in_shared ? ++stats_->shared_reads : ++stats_->global_reads;
  }
  void charge_read(Slot s) const { charge_probe(s); }
  void charge_write(Slot s) const {
    s.in_shared ? ++stats_->shared_writes : ++stats_->global_writes;
  }
  void charge_atomic(Slot s) const {
    s.in_shared ? ++stats_->shared_atomics : ++stats_->global_atomics;
  }
  void charge_maintenance(Slot s) const {
    s.in_shared ? ++stats_->ht_maintain_shared : ++stats_->ht_maintain_global;
  }
  void charge_access(Slot s) const {
    s.in_shared ? ++stats_->ht_access_shared : ++stats_->ht_access_global;
  }

  HashTablePolicy policy_;
  std::span<HashBucket> shared_;      // s buckets in the block arena
  HashScratch& global_scratch_;       // >= g buckets in "global memory"
  std::uint32_t global_count_ = 0;          // g
  std::uint64_t salt_;
  gpusim::MemoryStats* stats_;
  std::vector<Slot> used_;
  // Profiler diagnostics: shared-bucket probes regrouped into warp-wide
  // requests for bank-conflict accounting, and a once-per-table occupancy
  // sample recorded on the first reset().
  gpusim::BankConflictModel bank_model_;
  bool retired_ = false;
};

}  // namespace gala::core
