// The backend-neutral engine seam: phase 1 (decide-and-move to convergence)
// and phase 2 (contraction) as an interface, with the BSP kernels and the
// gala::blas linear-algebra formulation as the two implementations.
//
// The pipeline (run_louvain) programs against this seam only — it picks an
// engine once from GalaConfig::backend and drives every level through it.
// Both backends share the move rule, pruning, convergence test, and the
// SpGEMM contraction, which is what pins their trajectories together (see
// blas_louvain.hpp for the parity argument).
#pragma once

#include <memory>
#include <string>

#include "gala/blas/blas.hpp"
#include "gala/core/aggregation.hpp"
#include "gala/core/bsp_louvain.hpp"

namespace gala::core {

enum class Backend : std::uint8_t { Bsp, Blas };
std::string to_string(Backend backend);

class LouvainBackend {
 public:
  virtual ~LouvainBackend() = default;

  virtual const char* name() const = 0;

  /// Phase 1: run one level's move loop to convergence.
  virtual Phase1Result run_level(const graph::Graph& g, const BspConfig& config) = 0;

  /// Phase 2: contract `g` by `community` (ids need not be dense).
  virtual AggregationResult contract(const graph::Graph& g, std::span<const cid_t> community,
                                     exec::Workspace* workspace) = 0;
};

/// Builds the engine for `backend`. `tuning` parameterises the blas engine
/// (accumulator, pull/push threshold); the BSP engine ignores it except for
/// the contraction accumulator, which both backends draw from the shared
/// SpGEMM.
std::unique_ptr<LouvainBackend> make_backend(Backend backend, const blas::Tuning& tuning = {});

}  // namespace gala::core
