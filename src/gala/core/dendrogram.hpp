// Dendrogram: the full Louvain hierarchy, queryable at any level.
//
// run_louvain flattens the hierarchy to its final partition; analysts often
// want intermediate granularities ("give me ~500 communities"). Dendrogram
// retains every level's contraction map and exposes cuts:
//
//   Dendrogram d = build_dendrogram(g);
//   auto coarse = d.cut(d.num_levels() - 1);   // final communities
//   auto finer  = d.cut(1);                    // first-level communities
//   auto k500   = d.cut_at_most(500);          // finest cut with <= 500
#pragma once

#include <vector>

#include "gala/core/bsp_louvain.hpp"

namespace gala::core {

class Dendrogram {
 public:
  struct Level {
    /// Maps a level-(i) vertex to its level-(i+1) community (dense ids).
    std::vector<cid_t> contraction;
    wt_t modularity = 0;
    vid_t num_communities = 0;
  };

  explicit Dendrogram(vid_t num_vertices) : num_vertices_(num_vertices) {}

  void push_level(Level level) { levels_.push_back(std::move(level)); }

  std::size_t num_levels() const { return levels_.size(); }
  vid_t num_vertices() const { return num_vertices_; }
  const Level& level(std::size_t i) const {
    GALA_CHECK(i < levels_.size(), "level " << i << " out of range");
    return levels_[i];
  }

  /// Assignment of original vertices after the first `depth` levels
  /// (depth 0 = singletons; depth num_levels() = final partition).
  std::vector<cid_t> cut(std::size_t depth) const;

  /// The deepest cut with at most `max_communities` communities; falls back
  /// to the final partition if every cut is coarser-bounded than requested.
  std::vector<cid_t> cut_at_most(vid_t max_communities) const;

 private:
  vid_t num_vertices_;
  std::vector<Level> levels_;
};

/// Runs the multi-level pipeline and retains every level's contraction.
Dendrogram build_dendrogram(const graph::Graph& g, const BspConfig& config = {},
                            double level_theta = 1e-6, int max_levels = 30);

}  // namespace gala::core
