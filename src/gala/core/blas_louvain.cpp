#include "gala/core/blas_louvain.hpp"

#include <algorithm>
#include <limits>

#include "gala/blas/spmv.hpp"
#include "gala/common/error.hpp"
#include "gala/common/timer.hpp"
#include "gala/core/modularity.hpp"
#include "gala/governor/governor.hpp"
#include "gala/memtrace/memtrace.hpp"
#include "gala/telemetry/flight_recorder.hpp"
#include "gala/telemetry/telemetry.hpp"

namespace gala::core {
namespace {

/// Engine-internal state; mirrors BspLouvainEngine member-for-member so the
/// two trajectories stay comparable line by line.
class BlasLouvainEngine {
 public:
  BlasLouvainEngine(const graph::Graph& g, const BspConfig& config, const blas::Tuning& tuning,
                    BlasPhase1Stats* blas_stats)
      : g_(g), config_(config), tuning_(tuning), blas_stats_(blas_stats),
        owned_context_(config.context != nullptr
                           ? nullptr
                           : std::make_unique<exec::ExecutionContext>(config.device, config.seed)),
        ctx_(config.context != nullptr ? config.context : owned_context_.get()),
        rng_(config.seed), frontier_(ctx_->workspace(), "blas.frontier") {
    GALA_CHECK(g.total_weight() > 0, "graph has no edge weight");
    const vid_t n = g.num_vertices();
    comm_.resize(n);
    next_comm_.resize(n);
    comm_total_.resize(n);
    comm_size_.resize(n);
    weight_.assign(n, 0);
    prev_moved_.assign(n, 0);
    comm_changed_.assign(n, 0);
    for (vid_t v = 0; v < n; ++v) {
      comm_[v] = v;
      comm_total_[v] = g.degree(v);
      comm_size_[v] = 1;
      sum_self_loops_ += g.self_loop(v);
    }
  }

  Phase1Result run();

 private:
  void decide_phase(std::span<const std::uint8_t> active, std::span<Decision> decisions,
                    vid_t active_count, IterationStats& iter_stats);
  void weight_update_phase(std::span<const std::uint8_t> ones, IterationStats& iter_stats);
  wt_t state_modularity() const;
  wt_t min_nonempty_total() const;

  const graph::Graph& g_;
  BspConfig config_;
  blas::Tuning tuning_;
  BlasPhase1Stats* blas_stats_;
  std::unique_ptr<exec::ExecutionContext> owned_context_;
  exec::ExecutionContext* ctx_;
  Xoshiro256 rng_;

  std::vector<cid_t> comm_;
  std::vector<cid_t> next_comm_;
  std::vector<wt_t> comm_total_;
  std::vector<vid_t> comm_size_;
  std::vector<wt_t> weight_;
  std::vector<std::uint8_t> prev_moved_;
  std::vector<std::uint8_t> comm_changed_;
  exec::PooledVec<vid_t> frontier_;
  wt_t sum_self_loops_ = 0;
  blas::Direction last_direction_ = blas::Direction::Pull;
  bool any_iteration_ = false;
};

wt_t BlasLouvainEngine::state_modularity() const {
  const wt_t two_m = g_.two_m();
  wt_t internal = 2 * sum_self_loops_;
  wt_t sq = 0;
  for (vid_t v = 0; v < g_.num_vertices(); ++v) {
    internal += weight_[v];
    if (comm_size_[v] > 0) {
      const wt_t frac = comm_total_[v] / two_m;
      sq += frac * frac;
    }
  }
  return internal / two_m - config_.resolution * sq;
}

wt_t BlasLouvainEngine::min_nonempty_total() const {
  wt_t best = std::numeric_limits<wt_t>::max();
  for (vid_t c = 0; c < g_.num_vertices(); ++c) {
    if (comm_size_[c] > 0 && comm_total_[c] < best) best = comm_total_[c];
  }
  return best;
}

void BlasLouvainEngine::decide_phase(std::span<const std::uint8_t> active,
                                     std::span<Decision> decisions, vid_t active_count,
                                     IterationStats& iter_stats) {
  const vid_t n = g_.num_vertices();
  const wt_t two_m = g_.two_m();
  const wt_t resolution = config_.resolution;

  // The visitor replicates the hash kernel's scoring tail value-for-value:
  // same move_score inputs, same BestTracker tie-break, same empty-row and
  // isolated-vertex handling — the SPA already summed in upsert order.
  const auto score_row = [&](vid_t v, std::span<const cid_t> touched, const wt_t* vals,
                             gpusim::MemoryStats& stats) {
    const cid_t curr = comm_[v];
    const wt_t dv = g_.degree(v);
    Decision result;
    BestTracker tracker;
    wt_t e_curr = 0;
    for (const cid_t c : touched) {
      stats.register_ops += 1;
      stats.global_reads += 1;  // D_V(c)
      const wt_t score = move_score(vals[c], comm_total_[c], dv, two_m, c == curr, resolution);
      if (c == curr) e_curr = vals[c];
      tracker.offer(c, score);
    }
    result.weight_to_curr = e_curr;
    stats.global_reads += 1;  // D_V(C[v])
    result.curr_score = move_score(e_curr, comm_total_[curr], dv, two_m, true, resolution);
    if (tracker.best == kInvalidCid) {
      result.best = curr;
      result.best_score = result.curr_score;
    } else {
      result.best = tracker.best;
      result.best_score = tracker.score;
    }
    decisions[v] = result;
    stats.global_writes += 1;
  };

  const blas::Direction dir =
      blas::choose_direction(active_count, n, tuning_.pull_threshold);

  telemetry::ScopedSpan span(telemetry::Tracer::global(), "gather", "blas");
  gpusim::LaunchStats total;
  std::uint64_t pull_rows = 0;
  std::uint64_t push_rows = 0;
  if (dir == blas::Direction::Pull) {
    const blas::GatherStats gs =
        blas::masked_gather(g_, comm_, active, {}, blas::Direction::Pull, ctx_->device(),
                            config_.parallel, score_row, "blas_gather_pull");
    total += gs.launch;
    pull_rows += gs.rows;
  } else {
    // Push: compact the frontier; governor rung 4 bounds the materialised
    // window exactly like the BSP dispatch lists (decisions read
    // iteration-start state, so chunked launches are equivalent to one).
    const std::size_t window = governor::Governor::global().frontier_chunk();
    frontier_.clear();
    const auto flush = [&] {
      if (frontier_.empty()) return;
      const blas::GatherStats gs =
          blas::masked_gather(g_, comm_, {}, frontier_, blas::Direction::Push, ctx_->device(),
                              config_.parallel, score_row, "blas_gather_push");
      total += gs.launch;
      push_rows += gs.rows;
      frontier_.clear();
    };
    for (vid_t v = 0; v < n; ++v) {
      if (!active[v]) continue;
      frontier_.push_back(v);
      if (window > 0 && frontier_.size() >= window) flush();
    }
    flush();
  }

  if (blas_stats_ != nullptr) {
    (dir == blas::Direction::Pull ? blas_stats_->pull_iterations
                                  : blas_stats_->push_iterations) += 1;
    if (any_iteration_ && dir != last_direction_) ++blas_stats_->direction_switches;
    blas_stats_->gathered_rows += pull_rows + push_rows;
  }
  last_direction_ = dir;
  any_iteration_ = true;

  iter_stats.decide_traffic += total.traffic;
  iter_stats.decide_wall += total.wall_seconds;
  telemetry::flight(telemetry::FlightKind::Decide, static_cast<double>(pull_rows),
                    static_cast<double>(push_rows));
  if (span.active()) {
    span.arg("direction", dir == blas::Direction::Pull ? 0.0 : 1.0);
    span.arg("rows", static_cast<double>(pull_rows + push_rows));
    span.arg("modeled_ms", config_.device.modeled_ms(total.traffic));
    gpusim::attach_traffic(span, total.traffic);
  }
}

void BlasLouvainEngine::weight_update_phase(std::span<const std::uint8_t> ones,
                                            IterationStats& iter_stats) {
  // w(v) = e_{v, next_C[v]} as a masked extract from a gather against the
  // *next* assignment. The SPA sums in adjacency order — bit-identical to
  // the recompute kernel's per-row sum.
  telemetry::ScopedSpan span(telemetry::Tracer::global(), "weight-update", "blas");
  Timer timer;
  const auto extract_row = [&](vid_t v, std::span<const cid_t> touched, const wt_t* vals,
                               gpusim::MemoryStats& stats) {
    const cid_t c = next_comm_[v];
    stats.global_reads += 1;  // next assignment of the row vertex
    wt_t sum = 0;
    for (const cid_t t : touched) {
      stats.register_ops += 1;
      if (t == c) {
        sum = vals[t];
        break;
      }
    }
    weight_[v] = sum;
    stats.global_writes += 1;
  };
  const blas::GatherStats gs =
      blas::masked_gather(g_, next_comm_, ones, {}, blas::Direction::Pull, ctx_->device(),
                          config_.parallel, extract_row, "blas_weight_update");
  iter_stats.update_traffic += gs.launch.traffic;
  iter_stats.update_wall += timer.seconds();
  if (span.active()) {
    span.arg("modeled_ms", config_.device.modeled_ms(gs.launch.traffic));
    gpusim::attach_traffic(span, gs.launch.traffic);
  }
}

Phase1Result BlasLouvainEngine::run() {
  const vid_t n = g_.num_vertices();
  Phase1Result result;
  telemetry::ScopedSpan phase_span(telemetry::Tracer::global(), "phase1", "pipeline");
  Timer total_timer;

  exec::Workspace& ws = ctx_->workspace();
  const exec::WorkspaceStats ws_start = ws.stats();
  auto active_lease = ws.take<std::uint8_t>(n, "phase1.active");
  auto moved_lease = ws.take<std::uint8_t>(n, "phase1.moved", exec::Fill::Zero);
  auto decisions_lease = ws.take<Decision>(n, "phase1.decisions");
  auto ones_lease = ws.take<std::uint8_t>(n, "blas.ones");
  std::span<std::uint8_t> active = active_lease.span();
  std::span<std::uint8_t> moved = moved_lease.span();
  std::span<Decision> decisions = decisions_lease.span();
  std::fill(active.begin(), active.end(), 1);
  std::fill(ones_lease.span().begin(), ones_lease.span().end(), 1);

  wt_t q = state_modularity();
  wt_t min_total = min_nonempty_total();

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    telemetry::ScopedSpan iter_span(telemetry::Tracer::global(), "iteration", "phase1");
    telemetry::flight(telemetry::FlightKind::IterationBegin, static_cast<double>(iter),
                      static_cast<double>(n));
    IterationStats stats;
    const std::uint64_t ws_allocs_before = ws.stats().heap_allocs;
    Timer other_timer;

    // 1. Pruning — the identical strategy/rng sequencing keeps the two
    //    backends on one trajectory.
    {
      telemetry::ScopedSpan prune_span(telemetry::Tracer::global(), "pruning", "phase1");
      const PruningContext prune_ctx{&g_,       comm_,      weight_,      comm_total_,
                                     min_total, g_.two_m(), prev_moved_,  comm_changed_,
                                     iter,      config_.resolution};
      compute_active(config_.pruning, prune_ctx, config_.pm_alpha, rng_, active, *ctx_,
                     config_.parallel);
      for (vid_t v = 0; v < n; ++v) stats.active += active[v];
      if (prune_span.active()) {
        prune_span.arg("active", static_cast<double>(stats.active));
        prune_span.arg("pruned", static_cast<double>(n - stats.active));
      }
      telemetry::flight(telemetry::FlightKind::Prune, static_cast<double>(stats.active),
                        static_cast<double>(n - stats.active));
    }
    stats.other_wall += other_timer.seconds();

    // 2. DecideAndMove as a masked gather.
    decide_phase(active, decisions, stats.active, stats);

    other_timer.reset();
    // 3. Apply the shared move guard (BSP semantics).
    vid_t moved_count = 0;
    for (vid_t v = 0; v < n; ++v) {
      next_comm_[v] = active[v] ? apply_move_guard(decisions[v], comm_[v], comm_size_) : comm_[v];
      moved[v] = next_comm_[v] != comm_[v] ? 1 : 0;
      moved_count += moved[v];
    }
    stats.moved = moved_count;
    telemetry::flight(telemetry::FlightKind::Apply, static_cast<double>(moved_count),
                      static_cast<double>(iter));
    stats.other_wall += other_timer.seconds();

    // 4. Community weight update via the next-assignment gather.
    weight_update_phase(ones_lease.span(), stats);

    other_timer.reset();
    {
      // 5. Bookkeeping — identical to the BSP engine.
      telemetry::ScopedSpan bk_span(telemetry::Tracer::global(), "bookkeeping", "phase1");
      std::fill(comm_changed_.begin(), comm_changed_.end(), 0);
      for (vid_t v = 0; v < n; ++v) {
        if (!moved[v]) continue;
        const cid_t old_c = comm_[v];
        const cid_t new_c = next_comm_[v];
        comm_total_[old_c] -= g_.degree(v);
        comm_total_[new_c] += g_.degree(v);
        GALA_ASSERT(comm_size_[old_c] > 0);
        --comm_size_[old_c];
        ++comm_size_[new_c];
        comm_changed_[old_c] = 1;
        comm_changed_[new_c] = 1;
        stats.bookkeeping_traffic.global_atomics += 4;
      }
      comm_.swap(next_comm_);
      prev_moved_.assign(moved.begin(), moved.end());
      min_total = min_nonempty_total();
      stats.bookkeeping_traffic.global_reads += n;

      const wt_t next_q = state_modularity();
      stats.bookkeeping_traffic.global_reads += n;
      stats.modularity = next_q;
      stats.delta_q = next_q - q;
      q = next_q;
      if (bk_span.active()) {
        bk_span.arg("modeled_ms", config_.device.modeled_ms(stats.bookkeeping_traffic));
      }
    }
    stats.other_wall += other_timer.seconds();

    stats.ws_allocs = ws.stats().heap_allocs - ws_allocs_before;

    if (iter_span.active()) {
      iter_span.arg("iteration", static_cast<double>(iter));
      iter_span.arg("active", static_cast<double>(stats.active));
      iter_span.arg("moved", static_cast<double>(stats.moved));
      iter_span.arg("modularity", stats.modularity);
      iter_span.arg("delta_q", stats.delta_q);
      iter_span.arg("ws_allocs", static_cast<double>(stats.ws_allocs));
      auto& registry = telemetry::Registry::global();
      registry.counter("phase1.iterations").add(1);
      registry.counter("phase1.moved").add(stats.moved);
      registry.counter("workspace.heap_allocs").add(stats.ws_allocs);
      registry.histogram("phase1.active_per_iteration").observe(stats.active);
    }

    telemetry::flight(telemetry::FlightKind::IterationEnd, stats.modularity, stats.delta_q);
    memtrace::mark_epoch(memtrace::EpochKind::Iteration, iter);

    result.iterations.push_back(stats);
    if (config_.on_iteration) config_.on_iteration(iter, stats, active, moved, comm_);

    if (moved_count == 0 || stats.delta_q < config_.theta) break;
  }

  result.community = comm_;
  result.modularity = q;
  result.num_communities = count_communities(result.community);
  result.wall_seconds = total_timer.seconds();
  for (const auto& it : result.iterations) {
    result.total_traffic += it.decide_traffic;
    result.total_traffic += it.update_traffic;
    result.total_traffic += it.bookkeeping_traffic;
    result.decide_modeled_ms += config_.device.modeled_ms(it.decide_traffic);
    result.update_modeled_ms += config_.device.modeled_ms(it.update_traffic);
    result.other_modeled_ms += config_.device.modeled_ms(it.bookkeeping_traffic);
  }
  result.workspace = ws.stats();
  if (phase_span.active()) {
    phase_span.arg("iterations", static_cast<double>(result.iterations.size()));
    phase_span.arg("communities", static_cast<double>(result.num_communities));
    phase_span.arg("modularity", result.modularity);
    phase_span.arg("decide_modeled_ms", result.decide_modeled_ms);
    phase_span.arg("update_modeled_ms", result.update_modeled_ms);
    phase_span.arg("other_modeled_ms", result.other_modeled_ms);
    phase_span.arg("ws_heap_allocs",
                   static_cast<double>(result.workspace.heap_allocs - ws_start.heap_allocs));
    phase_span.arg("ws_reuse_hits",
                   static_cast<double>(result.workspace.reuse_hits - ws_start.reuse_hits));
    auto& registry = telemetry::Registry::global();
    registry.gauge("workspace.outstanding_bytes")
        .set(static_cast<double>(result.workspace.outstanding_bytes));
    registry.gauge("workspace.pooled_bytes")
        .set(static_cast<double>(result.workspace.pooled_bytes));
    registry.gauge("workspace.peak_bytes").set(static_cast<double>(result.workspace.peak_bytes));
  }
  return result;
}

}  // namespace

Phase1Result blas_phase1(const graph::Graph& g, const BspConfig& config,
                         const blas::Tuning& tuning, BlasPhase1Stats* stats) {
  BlasLouvainEngine engine(g, config, tuning, stats);
  return engine.run();
}

}  // namespace gala::core
