// The two workload-aware DecideAndMove kernels (paper §4).
//
//  - shuffle_decide (Algorithm 2): a warp handles one vertex; each lane owns
//    one neighbour's (community, weight); __match_any_sync groups lanes by
//    community; __reduce_add_sync produces d_C(v) per group; the best gain
//    is selected with __reduce_max_sync. States never leave registers for
//    degree <= 32. For larger degrees in shuffle-only mode, per-chunk group
//    leaders spill (community, partial-sum) pairs into shared memory and a
//    merge pass consolidates them (the natural extension "through loop" the
//    paper sketches).
//
//  - hash_decide (Algorithm 3): a block handles one vertex; threads stride
//    over neighbours, accumulating into a NeighborCommunityTable under the
//    configured placement policy (global-only / unified / hierarchical).
//
// Both return the same Decision and charge their traffic to MemoryStats, so
// the engine can dispatch by degree (the "workload-aware" strategy) and the
// benches can compare them on identical inputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gala/common/types.hpp"
#include "gala/core/hashtables.hpp"
#include "gala/core/modularity.hpp"
#include "gala/gpusim/device.hpp"
#include "gala/gpusim/warp.hpp"
#include "gala/graph/csr.hpp"

namespace gala::core {

/// Read-only iteration state a kernel needs to evaluate one vertex.
struct DecideInput {
  const graph::Graph* g = nullptr;
  std::span<const cid_t> comm;        ///< current community id per vertex
  std::span<const wt_t> comm_total;   ///< D_V(C) per community id
  wt_t two_m = 0;
  wt_t resolution = 1.0;              ///< gamma (generalised modularity)
};

/// Outcome of DecideAndMove for one vertex (before the engine's move guard).
struct Decision {
  cid_t best = kInvalidCid;     ///< argmax-score neighbouring community (may equal current)
  wt_t best_score = 0;          ///< score of `best` (DeltaQ * |E|)
  wt_t curr_score = 0;          ///< score of staying in the current community
  wt_t weight_to_curr = 0;      ///< e_{v,C[v]} — reused by the weight-update stage
};

/// Candidate tracker with the tie-break rule every engine shares (smaller
/// community id on equal scores). The rule is enumeration-order independent,
/// which is what lets the blas gather — whose candidate order differs from
/// the hash table's iteration order — reach identical decisions.
struct BestTracker {
  cid_t best = kInvalidCid;
  wt_t score = 0;

  void offer(cid_t c, wt_t s) {
    if (best == kInvalidCid || s > score || (s == score && c < best)) {
      best = c;
      score = s;
    }
  }
};

/// Warp-level shuffle-based kernel. `spill_arena` is only touched when
/// out_degree(v) exceeds a warp (shuffle-only mode on large vertices).
Decision shuffle_decide(const DecideInput& in, vid_t v, gpusim::SharedMemoryArena& spill_arena,
                        gpusim::MemoryStats& stats);

/// Block-level hash-based kernel under the given hashtable policy.
/// `global_scratch` is the reusable global-memory bucket slab.
/// Shared-memory exhaustion (gala::ResourceExhausted from the arena, real or
/// fault-injected) degrades the vertex to GlobalOnly placement and retries —
/// decisions are policy-independent, so the result is unchanged. Counted in
/// the `resilience.hashtable_fallbacks` telemetry counter.
Decision hash_decide(const DecideInput& in, vid_t v, HashTablePolicy policy,
                     gpusim::SharedMemoryArena& arena, HashScratch& global_scratch,
                     std::uint64_t salt, gpusim::MemoryStats& stats);

/// Workload-aware kernel selection (paper §4.3). Lives here — not in the
/// engine — so the single-GPU decide phase, the oracle pass, and the
/// multi-GPU rank loop all dispatch through the same rule.
enum class KernelMode { Auto, ShuffleOnly, HashOnly };
std::string to_string(KernelMode mode);

/// How one call site dispatches DecideAndMove across the two kernels.
struct DecideDispatch {
  KernelMode mode = KernelMode::Auto;
  HashTablePolicy hashtable = HashTablePolicy::Hierarchical;
  /// Auto dispatch: out_degree(v) < limit -> shuffle kernel (warp-sized).
  vid_t shuffle_degree_limit = 32;
};

/// True when vertex `v` goes to the shuffle kernel under `d`.
bool use_shuffle_kernel(const graph::Graph& g, vid_t v, const DecideDispatch& d);

/// One vertex through the dispatch rule: resets `arena` (every kernel body
/// did this per vertex; keeping it here keeps traffic bit-identical) and
/// runs the selected kernel.
Decision decide_vertex(const DecideInput& in, vid_t v, const DecideDispatch& d,
                       gpusim::SharedMemoryArena& arena, HashScratch& global_scratch,
                       std::uint64_t salt, gpusim::MemoryStats& stats);

/// The move rule shared by every implementation (Grappolo heuristics): move
/// on strictly better score; on ties prefer the smaller community id; never
/// swap two singleton communities upward (prevents BSP oscillation).
/// `comm_size` is indexed by community id.
cid_t apply_move_guard(const Decision& d, cid_t curr, std::span<const vid_t> comm_size);

}  // namespace gala::core
