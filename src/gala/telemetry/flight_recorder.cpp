#include "gala/telemetry/flight_recorder.hpp"

#include <algorithm>
#include <bit>
#include <fstream>

#include "gala/common/json.hpp"
#include "gala/common/provenance.hpp"
#include "gala/telemetry/telemetry.hpp"

namespace gala::telemetry {
namespace {

/// Event metadata packed into one ring word: kind in bits [0,16), dense
/// thread id in [16,32), rank (as a two's-complement 32-bit value) above.
std::uint64_t pack_meta(FlightKind kind, std::uint32_t tid, std::int32_t rank) {
  return static_cast<std::uint64_t>(static_cast<std::uint16_t>(kind)) |
         (static_cast<std::uint64_t>(tid & 0xffffu) << 16) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) << 32);
}

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 8;
  while (p < v) p <<= 1;
  return p;
}

std::uint64_t pack_config(std::uint32_t generation, std::size_t depth) {
  return (static_cast<std::uint64_t>(generation) << 32) | static_cast<std::uint64_t>(depth);
}

}  // namespace

const char* to_string(FlightKind kind) {
  switch (kind) {
    case FlightKind::LevelBegin:
      return "level-begin";
    case FlightKind::IterationBegin:
      return "iter-begin";
    case FlightKind::Prune:
      return "prune";
    case FlightKind::Decide:
      return "decide";
    case FlightKind::Apply:
      return "apply";
    case FlightKind::IterationEnd:
      return "iter-end";
    case FlightKind::SyncPost:
      return "sync-post";
    case FlightKind::SyncComplete:
      return "sync-complete";
    case FlightKind::FaultFire:
      return "fault-fire";
    case FlightKind::Retry:
      return "retry";
    case FlightKind::SequentialFallback:
      return "sequential-fallback";
    case FlightKind::Rollback:
      return "rollback";
    case FlightKind::ValidatorFail:
      return "validator-fail";
    case FlightKind::WorkspaceAlloc:
      return "ws-alloc";
    case FlightKind::HealthStall:
      return "health-stall";
    case FlightKind::HealthOscillation:
      return "health-oscillation";
    case FlightKind::GovernorRung:
      return "governor-rung";
    case FlightKind::GovernorShrink:
      return "governor-shrink";
  }
  return "?";
}

/// One thread's ring: 4 atomic words per event slot, written relaxed by the
/// owning thread only, read concurrently by drain(). `config` remembers the
/// recorder configuration the ring was built under, so a depth change or
/// reset retires it (the owner re-registers on its next append).
struct FlightRecorder::Ring {
  Ring(std::size_t cap, std::uint32_t tid_in, std::uint64_t config_in)
      : capacity(cap),
        mask(cap - 1),
        tid(tid_in),
        config(config_in),
        words(std::make_unique<std::atomic<std::uint64_t>[]>(4 * cap)) {}

  const std::size_t capacity;
  const std::size_t mask;
  const std::uint32_t tid;
  const std::uint64_t config;
  std::atomic<std::uint64_t> head{0};  ///< events ever pushed to this ring
  std::unique_ptr<std::atomic<std::uint64_t>[]> words;

  void push(std::uint64_t seq, FlightKind kind, std::int32_t rank, double a, double b) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    std::atomic<std::uint64_t>* w = words.get() + 4 * (h & mask);
    w[0].store(seq, std::memory_order_relaxed);
    w[1].store(pack_meta(kind, tid, rank), std::memory_order_relaxed);
    w[2].store(std::bit_cast<std::uint64_t>(a), std::memory_order_relaxed);
    w[3].store(std::bit_cast<std::uint64_t>(b), std::memory_order_relaxed);
    head.store(h + 1, std::memory_order_release);
  }
};

FlightRecorder::FlightRecorder()
    : id_([] {
        static std::atomic<std::uint64_t> next{1};
        return next.fetch_add(1, std::memory_order_relaxed);
      }()),
      config_(pack_config(1, kDefaultDepth)) {}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::set_depth(std::size_t events) {
  const std::size_t depth = round_up_pow2(events);
  std::lock_guard lock(mutex_);
  const std::uint64_t cfg = config_.load(std::memory_order_relaxed);
  config_.store(pack_config(static_cast<std::uint32_t>(cfg >> 32) + 1, depth),
                std::memory_order_relaxed);
  rings_.clear();  // abandoned; owners re-register against the new config
}

std::size_t FlightRecorder::depth() const {
  return static_cast<std::size_t>(config_.load(std::memory_order_relaxed) & 0xffffffffu);
}

FlightRecorder::Ring* FlightRecorder::ring_for_this_thread() {
  thread_local std::uint64_t cached_id = 0;
  thread_local std::shared_ptr<Ring> cached;
  const std::uint64_t cfg = config_.load(std::memory_order_relaxed);
  if (cached_id == id_ && cached != nullptr && cached->config == cfg) return cached.get();
  std::lock_guard lock(mutex_);
  // Build against the config as it stands under the lock, so a concurrent
  // set_depth cannot leave a freshly-registered ring orphaned.
  const std::uint64_t now = config_.load(std::memory_order_relaxed);
  auto ring = std::make_shared<Ring>(static_cast<std::size_t>(now & 0xffffffffu),
                                     next_tid_.fetch_add(1, std::memory_order_relaxed), now);
  rings_.push_back(ring);
  cached_id = id_;
  cached = std::move(ring);
  return cached.get();
}

void FlightRecorder::record(FlightKind kind, double a, double b, int rank) {
  Ring* ring = ring_for_this_thread();
  if (rank < 0) rank = RankScope::current();
  ring->push(clock_.fetch_add(1, std::memory_order_relaxed), kind,
             static_cast<std::int32_t>(rank), a, b);
}

std::vector<FlightEvent> FlightRecorder::drain() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard lock(mutex_);
    rings = rings_;
  }
  std::vector<FlightEvent> out;
  std::vector<std::uint64_t> slots;  // push index of each copied event
  for (const auto& ring : rings) {
    const std::uint64_t cap = ring->capacity;
    const std::uint64_t h1 = ring->head.load(std::memory_order_acquire);
    const std::uint64_t first = h1 > cap ? h1 - cap : 0;
    slots.clear();
    const std::size_t start = out.size();
    for (std::uint64_t i = first; i < h1; ++i) {
      const std::atomic<std::uint64_t>* w = ring->words.get() + 4 * (i & ring->mask);
      FlightEvent e;
      e.seq = w[0].load(std::memory_order_relaxed);
      const std::uint64_t meta = w[1].load(std::memory_order_relaxed);
      e.kind = static_cast<FlightKind>(meta & 0xffffu);
      e.tid = static_cast<std::uint16_t>((meta >> 16) & 0xffffu);
      e.rank = static_cast<std::int32_t>(static_cast<std::uint32_t>(meta >> 32));
      e.a = std::bit_cast<double>(w[2].load(std::memory_order_relaxed));
      e.b = std::bit_cast<double>(w[3].load(std::memory_order_relaxed));
      out.push_back(e);
      slots.push_back(i);
    }
    // The owner may have kept appending during the copy; any slot it could
    // have lapped is dropped instead of surfacing a torn event.
    const std::uint64_t h2 = ring->head.load(std::memory_order_acquire);
    const std::uint64_t min_valid = h2 > cap ? h2 - cap : 0;
    std::size_t keep = start;
    for (std::size_t k = 0; k < slots.size(); ++k) {
      if (slots[k] >= min_valid) out[keep++] = out[start + k];
    }
    out.resize(keep);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) { return x.seq < y.seq; });
  return out;
}

void FlightRecorder::reset() {
  std::lock_guard lock(mutex_);
  const std::uint64_t cfg = config_.load(std::memory_order_relaxed);
  config_.store(pack_config(static_cast<std::uint32_t>(cfg >> 32) + 1, cfg & 0xffffffffu),
                std::memory_order_relaxed);
  rings_.clear();
  clock_.store(0, std::memory_order_relaxed);
}

std::string FlightRecorder::json(std::string_view reason, std::size_t last_n) const {
  std::vector<FlightEvent> events = drain();
  const std::uint64_t total = recorded();
  const std::uint64_t dropped = total >= events.size() ? total - events.size() : 0;
  if (last_n > 0 && events.size() > last_n) {
    events.erase(events.begin(), events.end() - static_cast<std::ptrdiff_t>(last_n));
  }
  JsonWriter w;
  w.begin_object();
  w.key("flight_schema").value(static_cast<std::uint64_t>(kSchema));
  w.key("reason").value(std::string(reason));
  w.key("depth").value(static_cast<std::uint64_t>(depth()));
  w.key("recorded").value(total);
  w.key("dropped").value(dropped);
  w.key("events").begin_array();
  for (const FlightEvent& e : events) {
    w.begin_object();
    w.key("seq").value(e.seq);
    w.key("kind").value(to_string(e.kind));
    w.key("tid").value(static_cast<std::uint64_t>(e.tid));
    w.key("rank").value(static_cast<double>(e.rank));
    w.key("a").value(e.a);
    w.key("b").value(e.b);
    w.end_object();
  }
  w.end_array();
  provenance::append(w, "flight", static_cast<int>(kSchema));
  w.end_object();
  return w.str();
}

bool FlightRecorder::write_postmortem(const std::string& path, std::string_view reason,
                                      std::size_t last_n) const noexcept {
  try {
    std::ofstream out(path);
    if (!out.is_open()) return false;
    out << json(reason, last_n) << '\n';
    return out.good();
  } catch (...) {
    return false;
  }
}

}  // namespace gala::telemetry
