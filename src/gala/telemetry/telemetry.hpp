// Unified telemetry: span tracing, a counter/gauge/histogram registry, and
// machine-readable exporters.
//
// The tracer records nested begin/end spans (wall-clock microseconds plus
// arbitrary numeric payloads such as modeled cycles or memory traffic) from
// any thread. Spans export as Chrome `chrome://tracing` / Perfetto JSON, as
// a flat per-span JSON dump, or as an aggregated summary. The registry
// subsumes ad-hoc tallies: named monotonic counters, gauges, and log-2
// bucketed histograms (degree / occupancy distributions), all thread-safe.
//
// Cost discipline: everything is off by default. When the tracer is
// disabled, ScopedSpan's constructor is a single relaxed atomic load and no
// strings are built — instrumented hot paths pay one predictable branch.
//
// Usage:
//   auto& tracer = telemetry::Tracer::global();
//   tracer.add_sink(std::make_shared<telemetry::ChromeTraceSink>("trace.json"));
//   {
//     telemetry::ScopedSpan span(tracer, "decide", "phase1");
//     span.arg("modeled_cycles", cycles);
//     ...
//   }
//   tracer.flush_sinks();
#pragma once

#include "gala/common/json.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gala::telemetry {

/// Numeric span payload: (key, value) pairs, e.g. {"global_reads", 1234}.
using Args = std::vector<std::pair<std::string, double>>;

/// Ambient multi-GPU rank for the current thread. A rank's worker thread
/// installs one scope at entry; every span and flight event recorded inside
/// picks the rank up automatically, which is what groups the merged Chrome
/// trace into per-rank tracks. -1 (the default) means "not rank-scoped".
class RankScope {
 public:
  explicit RankScope(int rank) : prev_(current_ref()) { current_ref() = rank; }
  ~RankScope() { current_ref() = prev_; }
  RankScope(const RankScope&) = delete;
  RankScope& operator=(const RankScope&) = delete;

  static int current() { return current_ref(); }

 private:
  static int& current_ref() {
    thread_local int rank = -1;
    return rank;
  }
  int prev_;
};

/// One completed span. Timestamps are microseconds relative to the owning
/// tracer's epoch (its construction, or the last reset()).
struct SpanRecord {
  std::string name;
  std::string category;
  double start_us = 0;
  double dur_us = 0;
  std::uint32_t tid = 0;   ///< dense per-thread id (not the OS tid)
  std::uint32_t depth = 0; ///< nesting depth within the thread at begin
  std::uint64_t seq = 0;   ///< global begin order
  std::int32_t rank = -1;  ///< ambient RankScope at begin (-1 = none)
  /// Flow-arrow correlation (Chrome "s"/"f" events): flow_out emits a flow
  /// start at this span's end, flow_in a flow finish at its begin. 0 = none.
  /// Used to link post_gather -> complete_gather pairs across a window.
  std::uint64_t flow_out = 0;
  std::uint64_t flow_in = 0;
  Args args;
};

/// One counter sample for a Chrome counter ("C") track: named series values
/// at a point in time. memtrace emits these on its "memory" track so byte
/// curves line up with the level/iteration spans.
struct CounterRecord {
  std::string name;        ///< track name (e.g. "memory")
  double ts_us = 0;        ///< tracer-epoch-relative timestamp
  std::int32_t rank = -1;  ///< ambient RankScope at emission (-1 = host)
  Args values;             ///< series name -> sampled value
};

/// Receives completed spans as they end. Implementations must tolerate
/// concurrent on_span calls (the tracer serialises them under its lock, but
/// flush() may race with a manual flush — keep sinks internally locked or
/// flush only after tracing stops).
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_span(const SpanRecord& span) = 0;
  /// Counter samples; sinks without a counter track ignore them.
  virtual void on_counter(const CounterRecord& counter) { (void)counter; }
  /// Writes any buffered output. Called by Tracer::flush_sinks and on tracer
  /// shutdown; must be idempotent.
  virtual void flush() {}
};

/// Human-readable streaming sink: one line per span, indented by depth.
class TextSink : public Sink {
 public:
  explicit TextSink(std::FILE* out = stderr) : out_(out) {}
  void on_span(const SpanRecord& span) override;

 private:
  std::FILE* out_;
};

/// Buffers spans and writes a flat JSON dump {"spans":[...]} on flush().
class JsonSink : public Sink {
 public:
  explicit JsonSink(std::string path) : path_(std::move(path)) {}
  // Best-effort: write failures surface from an explicit flush(), never from
  // a destructor (which may run during static teardown after main exited).
  ~JsonSink() override {
    try {
      flush();
    } catch (...) {
    }
  }
  void on_span(const SpanRecord& span) override;
  void flush() override;

 private:
  std::mutex mutex_;
  std::string path_;
  std::vector<SpanRecord> spans_;
  bool dirty_ = false;
};

/// Buffers spans and writes Chrome-trace/Perfetto JSON on flush(). Open the
/// file via chrome://tracing or https://ui.perfetto.dev.
class ChromeTraceSink : public Sink {
 public:
  explicit ChromeTraceSink(std::string path) : path_(std::move(path)) {}
  ~ChromeTraceSink() override {
    try {
      flush();
    } catch (...) {
    }
  }
  void on_span(const SpanRecord& span) override;
  void on_counter(const CounterRecord& counter) override;
  void flush() override;

 private:
  std::mutex mutex_;
  std::string path_;
  std::vector<SpanRecord> spans_;
  std::vector<CounterRecord> counters_;
  bool dirty_ = false;
};

/// Thread-safe span tracer. Disabled (null-sink) by default: recording costs
/// one relaxed load until a sink is attached or set_enabled(true) is called.
class Tracer {
 public:
  Tracer();

  /// The process-wide tracer that the GALA pipeline instrumentation uses.
  static Tracer& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Attaches a sink and enables the tracer.
  void add_sink(std::shared_ptr<Sink> sink);
  /// Flushes buffered sink output (e.g. before reading an exported file).
  void flush_sinks();
  /// Drops all sinks (the tracer stays enabled if set_enabled(true) held).
  void clear_sinks();

  /// Records a completed span (normally via ScopedSpan, not directly).
  void record(SpanRecord&& span);

  /// Records a counter sample (Chrome "C" track). Subject to the same
  /// retention cap as spans; dropped samples count toward dropped().
  void record_counter(CounterRecord&& counter);

  /// Copies out all retained spans, in completion order.
  std::vector<SpanRecord> snapshot() const;
  /// Copies out all retained counter samples, in emission order.
  std::vector<CounterRecord> counters_snapshot() const;
  std::size_t span_count() const;
  /// Spans dropped after the retention cap was hit.
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Forgets retained spans and restarts the clock epoch. Sinks and the
  /// enabled flag are untouched.
  void reset();

  /// Microseconds since the tracer epoch.
  double now_us() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - epoch_).count();
  }

  std::uint64_t next_seq() { return seq_.fetch_add(1, std::memory_order_relaxed); }

  /// Chrome-trace JSON ({"traceEvents":[...]}) of the retained spans.
  std::string chrome_trace_json() const;
  /// Aggregated per-(category,name) summary of the retained spans: counts,
  /// wall totals, and summed args.
  std::string summary_json() const;
  /// Writes the summary's "spans" member into an open JSON object.
  void append_summary(JsonWriter& w) const;

  void write_chrome_trace(const std::string& path) const;

  /// Retention cap (default 1M spans); exceeding it increments dropped().
  void set_max_spans(std::size_t cap) { max_spans_ = cap; }

 private:
  using Clock = std::chrono::steady_clock;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> dropped_{0};
  Clock::time_point epoch_;
  std::size_t max_spans_ = 1u << 20;

  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::vector<CounterRecord> counters_;
  std::vector<std::shared_ptr<Sink>> sinks_;
};

/// RAII span: begins on construction (if the tracer is enabled), ends and
/// records on destruction. arg() attaches numeric payloads while open.
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, std::string_view name, std::string_view category = "phase");
  explicit ScopedSpan(std::string_view name, std::string_view category = "phase")
      : ScopedSpan(Tracer::global(), name, category) {}
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when the tracer was enabled at construction (payload work can be
  /// skipped otherwise).
  bool active() const { return tracer_ != nullptr; }

  void arg(std::string_view key, double value) {
    if (tracer_ != nullptr) rec_.args.emplace_back(key, value);
  }

  /// Marks this span as the source (flow_out) or destination (flow_in) of a
  /// Chrome flow arrow; both ends must use the same non-zero id.
  void flow_out(std::uint64_t id) {
    if (tracer_ != nullptr) rec_.flow_out = id;
  }
  void flow_in(std::uint64_t id) {
    if (tracer_ != nullptr) rec_.flow_in = id;
  }

 private:
  Tracer* tracer_ = nullptr;  // null when tracing was disabled at construction
  SpanRecord rec_;
};

// ---------------------------------------------------------------------------
// Counter / gauge / histogram registry.

/// Monotonic counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

/// Histogram over unsigned values with fixed log-2 buckets: bucket 0 holds
/// exact zeros, bucket i>=1 holds [2^(i-1), 2^i). Suited to degree and
/// occupancy distributions.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Records `n` observations of value `v` in one shot (bulk ingest from
  /// pre-aggregated sources such as the profiler's probe-length counts).
  void observe_n(std::uint64_t v, std::uint64_t n) {
    if (n == 0) return;
    buckets_[bucket_index(v)].fetch_add(n, std::memory_order_relaxed);
    sum_.fetch_add(v * n, std::memory_order_relaxed);
  }

  /// Approximate quantile (q in [0, 1]): the inclusive lower bound of the
  /// bucket holding the ceil(q * count)-th observation. Exact for
  /// distributions concentrated on bucket boundaries; otherwise a lower
  /// bound within one power of two. Returns 0 for an empty histogram.
  std::uint64_t percentile(double q) const {
    const std::uint64_t total = count();
    if (total == 0) return 0;
    q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
    std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
    if (rank < q * static_cast<double>(total)) ++rank;  // ceil
    if (rank == 0) rank = 1;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      cumulative += bucket_count(i);
      if (cumulative >= rank) return bucket_lo(i);
    }
    return bucket_lo(kBuckets - 1);
  }

  static std::size_t bucket_index(std::uint64_t v) {
    std::size_t b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b;  // 0 for 0, else bit_width(v) in [1, 64]
  }

  /// Inclusive lower bound of bucket i (0, 1, 2, 4, 8, ...).
  static std::uint64_t bucket_lo(std::size_t i) {
    return i == 0 ? 0 : (i == 1 ? 1 : (std::uint64_t{1} << (i - 1)));
  }

  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// Named instrument registry. Lookup is mutex-protected; returned references
/// are stable for the registry's lifetime, so hot paths should look up once
/// and cache the reference.
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zeroes every instrument (names stay registered).
  void reset();

  /// {"counters":{...},"gauges":{...},"histograms":{...}} — histograms list
  /// only non-empty buckets as {"lo":..,"count":..}.
  std::string json() const;
  /// Writes the counters/gauges/histograms members into an open JSON object.
  void append_json(JsonWriter& w) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Combined metrics document: the tracer's aggregated span summary plus the
/// registry's instruments (the CLI's --metrics-out payload).
std::string metrics_json(const Tracer& tracer, const Registry& registry);

void write_file(const std::string& path, const std::string& contents);

}  // namespace gala::telemetry
