#include "gala/telemetry/telemetry.hpp"

#include <algorithm>
#include <fstream>
#include <set>

#include "gala/common/error.hpp"
#include "gala/common/provenance.hpp"

namespace gala::telemetry {
namespace {

/// Dense thread ids: assigned on first use, stable for the thread lifetime.
std::uint32_t this_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Per-thread span nesting depth (shared across tracers; in practice one
/// tracer is live at a time and depth is only used for display/ordering).
std::uint32_t& this_thread_depth() {
  thread_local std::uint32_t depth = 0;
  return depth;
}

void append_args_object(JsonWriter& w, const Args& args) {
  w.begin_object();
  for (const auto& [k, v] : args) w.key(k).value(v);
  w.end_object();
}

}  // namespace

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  GALA_CHECK(out.is_open(), "cannot open " << path << " for writing");
  out << contents << '\n';
  GALA_CHECK(out.good(), "write failure: " << path);
}

// --------------------------------------------------------------------------
// Sinks.

void TextSink::on_span(const SpanRecord& span) {
  std::string line;
  line.append(2 * span.depth, ' ');
  std::fprintf(out_, "[trace t%u] %s%s/%s %.3f ms", span.tid, line.c_str(),
               span.category.c_str(), span.name.c_str(), span.dur_us / 1e3);
  for (const auto& [k, v] : span.args) std::fprintf(out_, " %s=%g", k.c_str(), v);
  std::fputc('\n', out_);
}

void JsonSink::on_span(const SpanRecord& span) {
  std::lock_guard lock(mutex_);
  spans_.push_back(span);
  dirty_ = true;
}

void JsonSink::flush() {
  std::lock_guard lock(mutex_);
  if (!dirty_) return;
  JsonWriter w;
  w.begin_object();
  w.key("spans").begin_array();
  for (const auto& s : spans_) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("cat").value(s.category);
    w.key("ts_us").value(s.start_us);
    w.key("dur_us").value(s.dur_us);
    w.key("tid").value(static_cast<std::uint64_t>(s.tid));
    w.key("depth").value(static_cast<std::uint64_t>(s.depth));
    w.key("seq").value(s.seq);
    w.key("rank").value(static_cast<double>(s.rank));
    w.key("args");
    append_args_object(w, s.args);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  write_file(path_, w.str());
  dirty_ = false;
}

void ChromeTraceSink::on_span(const SpanRecord& span) {
  std::lock_guard lock(mutex_);
  spans_.push_back(span);
  dirty_ = true;
}

void ChromeTraceSink::on_counter(const CounterRecord& counter) {
  std::lock_guard lock(mutex_);
  counters_.push_back(counter);
  dirty_ = true;
}

namespace {

/// Rank-scoped spans render on their own process track: pid = rank + 1, so
/// pid 0 stays the host/unscoped track and rank r is track r + 1.
int chrome_pid(const SpanRecord& s) { return s.rank >= 0 ? s.rank + 1 : 0; }

void append_chrome_events(JsonWriter& w, const std::vector<SpanRecord>& spans,
                          const std::vector<CounterRecord>& counters) {
  w.key("traceEvents").begin_array();
  std::set<int> pids;
  // Counter ("C") events first: each sample renders a stacked byte curve on
  // its named track (memtrace's "memory"), aligned with the span timeline.
  for (const auto& c : counters) {
    const int pid = c.rank >= 0 ? c.rank + 1 : 0;
    w.begin_object();
    w.key("name").value(c.name);
    w.key("cat").value("memory");
    w.key("ph").value("C");
    w.key("ts").value(c.ts_us);
    w.key("pid").value(pid);
    w.key("tid").value(std::uint64_t{0});
    w.key("args");
    append_args_object(w, c.values);
    w.end_object();
  }
  for (const auto& s : spans) {
    const int pid = chrome_pid(s);
    pids.insert(pid);
    w.begin_object();
    w.key("name").value(s.name);
    w.key("cat").value(s.category);
    w.key("ph").value("X");
    w.key("ts").value(s.start_us);
    w.key("dur").value(s.dur_us);
    w.key("pid").value(pid);
    w.key("tid").value(static_cast<std::uint64_t>(s.tid));
    w.key("args");
    append_args_object(w, s.args);
    w.end_object();
    // Flow arrows bind to the enclosing slice: the start rides the posting
    // span's end, the finish the completing span's begin. Viewers draw one
    // arrow per id from "s" to "f" (post_gather -> complete_gather).
    if (s.flow_out != 0) {
      w.begin_object();
      w.key("name").value("gather");
      w.key("cat").value("flow");
      w.key("ph").value("s");
      w.key("id").value(s.flow_out);
      w.key("ts").value(s.start_us + s.dur_us);
      w.key("pid").value(pid);
      w.key("tid").value(static_cast<std::uint64_t>(s.tid));
      w.end_object();
    }
    if (s.flow_in != 0) {
      w.begin_object();
      w.key("name").value("gather");
      w.key("cat").value("flow");
      w.key("ph").value("f");
      w.key("bp").value("e");
      w.key("id").value(s.flow_in);
      w.key("ts").value(s.start_us);
      w.key("pid").value(pid);
      w.key("tid").value(static_cast<std::uint64_t>(s.tid));
      w.end_object();
    }
  }
  // Name the per-rank tracks so the merged trace reads "rank 0..P-1" rather
  // than bare pid numbers. Host-only traces (no rank-scoped span anywhere)
  // skip the metadata and keep the legacy single-track shape.
  if (pids.size() == 1 && *pids.begin() == 0) pids.clear();
  for (const int pid : pids) {
    w.begin_object();
    w.key("name").value("process_name");
    w.key("ph").value("M");
    w.key("ts").value(0.0);
    w.key("pid").value(pid);
    w.key("args").begin_object();
    w.key("name").value(pid == 0 ? std::string("host") : "rank " + std::to_string(pid - 1));
    w.end_object();
    w.end_object();
    w.begin_object();
    w.key("name").value("process_sort_index");
    w.key("ph").value("M");
    w.key("ts").value(0.0);
    w.key("pid").value(pid);
    w.key("args").begin_object();
    w.key("sort_index").value(pid);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
}

}  // namespace

void ChromeTraceSink::flush() {
  std::lock_guard lock(mutex_);
  if (!dirty_) return;
  JsonWriter w;
  w.begin_object();
  append_chrome_events(w, spans_, counters_);
  provenance::append(w, "trace", 1);
  w.end_object();
  write_file(path_, w.str());
  dirty_ = false;
}

// --------------------------------------------------------------------------
// Tracer.

Tracer::Tracer() : epoch_(Clock::now()) {}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::add_sink(std::shared_ptr<Sink> sink) {
  {
    std::lock_guard lock(mutex_);
    sinks_.push_back(std::move(sink));
  }
  set_enabled(true);
}

void Tracer::flush_sinks() {
  std::vector<std::shared_ptr<Sink>> sinks;
  {
    std::lock_guard lock(mutex_);
    sinks = sinks_;
  }
  for (const auto& s : sinks) s->flush();
}

void Tracer::clear_sinks() {
  std::lock_guard lock(mutex_);
  sinks_.clear();
}

void Tracer::record(SpanRecord&& span) {
  std::lock_guard lock(mutex_);
  for (const auto& s : sinks_) s->on_span(span);
  if (spans_.size() < max_spans_) {
    spans_.push_back(std::move(span));
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Tracer::record_counter(CounterRecord&& counter) {
  std::lock_guard lock(mutex_);
  for (const auto& s : sinks_) s->on_counter(counter);
  if (counters_.size() < max_spans_) {
    counters_.push_back(std::move(counter));
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard lock(mutex_);
  return spans_;
}

std::vector<CounterRecord> Tracer::counters_snapshot() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

std::size_t Tracer::span_count() const {
  std::lock_guard lock(mutex_);
  return spans_.size();
}

void Tracer::reset() {
  std::lock_guard lock(mutex_);
  spans_.clear();
  counters_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ = Clock::now();
}

std::string Tracer::chrome_trace_json() const {
  std::vector<SpanRecord> spans = snapshot();
  // Chrome renders complete events fine in any order, but a stable begin-time
  // order makes the file diffable.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) { return a.seq < b.seq; });
  JsonWriter w;
  w.begin_object();
  append_chrome_events(w, spans, counters_snapshot());
  provenance::append(w, "trace", 1);
  w.end_object();
  return w.str();
}

void Tracer::append_summary(JsonWriter& w) const {
  struct Agg {
    std::uint64_t count = 0;
    double wall_ms = 0;
    std::map<std::string, double> args;
  };
  std::map<std::string, Agg> byname;
  for (const auto& s : snapshot()) {
    Agg& a = byname[s.category + "/" + s.name];
    ++a.count;
    a.wall_ms += s.dur_us / 1e3;
    for (const auto& [k, v] : s.args) a.args[k] += v;
  }
  w.key("spans").begin_object();
  for (const auto& [key, a] : byname) {
    w.key(key).begin_object();
    w.key("count").value(a.count);
    w.key("wall_ms").value(a.wall_ms);
    w.key("args").begin_object();
    for (const auto& [k, v] : a.args) w.key(k).value(v);
    w.end_object();
    w.end_object();
  }
  w.end_object();
}

std::string Tracer::summary_json() const {
  JsonWriter w;
  w.begin_object();
  append_summary(w);
  w.end_object();
  return w.str();
}

void Tracer::write_chrome_trace(const std::string& path) const {
  write_file(path, chrome_trace_json());
}

// --------------------------------------------------------------------------
// ScopedSpan.

ScopedSpan::ScopedSpan(Tracer& tracer, std::string_view name, std::string_view category) {
  if (!tracer.enabled()) return;  // the one branch a disabled hot path pays
  tracer_ = &tracer;
  rec_.name.assign(name);
  rec_.category.assign(category);
  rec_.tid = this_thread_id();
  rec_.rank = RankScope::current();
  rec_.depth = this_thread_depth()++;
  rec_.seq = tracer.next_seq();
  rec_.start_us = tracer.now_us();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  rec_.dur_us = tracer_->now_us() - rec_.start_us;
  --this_thread_depth();
  tracer_->record(std::move(rec_));
}

// --------------------------------------------------------------------------
// Registry.

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void Registry::append_json(JsonWriter& w) const {
  std::lock_guard lock(mutex_);
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.key(name).value(c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.key(name).value(g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(h->count());
    w.key("sum").value(h->sum());
    w.key("p50").value(h->percentile(0.50));
    w.key("p95").value(h->percentile(0.95));
    w.key("p99").value(h->percentile(0.99));
    w.key("buckets").begin_array();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h->bucket_count(b);
      if (n == 0) continue;
      w.begin_object();
      w.key("lo").value(Histogram::bucket_lo(b));
      w.key("count").value(n);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
}

std::string Registry::json() const {
  JsonWriter w;
  w.begin_object();
  append_json(w);
  w.end_object();
  return w.str();
}

std::string metrics_json(const Tracer& tracer, const Registry& registry) {
  JsonWriter w;
  w.begin_object();
  tracer.append_summary(w);
  registry.append_json(w);
  provenance::append(w, "metrics", 1);
  w.end_object();
  return w.str();
}

}  // namespace gala::telemetry
