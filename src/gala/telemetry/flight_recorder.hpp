// Always-on flight recorder: per-thread fixed-size ring buffers of compact
// binary events, drainable on demand for post-mortem diagnosis.
//
// The recorder answers "what was the solver doing just before it failed?"
// without the cost or volume of full span tracing. Each instrumented site
// appends one 32-byte event (iteration begin/end, decide outcome, prune
// summary, sync post/complete, fault fire, retry, rollback, workspace heap
// allocation, ...) to its thread's ring; the ring overwrites its oldest
// events, so memory is bounded and the last `depth` events per thread are
// always available. The resilience supervisor drains the merged window into
// a post-mortem JSON file on any validator failure, retry exhaustion, or
// degradation event (docs/resilience.md), and the CLI exposes the same dump
// via --flight-out / --flight-depth.
//
// Cost discipline: the recorder is armed by default, and an armed append is
// a handful of relaxed atomic word stores into a pre-allocated ring — no
// locks, no strings, no allocation (a thread allocates its ring once, on its
// first event). Disarmed, every site pays a single relaxed load, the same
// contract as Tracer and FaultInjector. Because events never touch the
// gpusim cost model, armed recording leaves every modeled counter
// bit-identical (bench/perf_profile.cpp gates this at <= 2% forever).
//
// Concurrency: writers are wait-free and never coordinate; drain() snapshots
// every ring through atomic word loads while writers keep appending, then
// discards any slot the writer could have lapped during the copy. The global
// monotonic event clock (`seq`) gives a total order across threads and
// ranks, which trace_check --flight validates.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gala::telemetry {

/// Event vocabulary. The a/b payload convention per kind:
///   LevelBegin          a = level,          b = vertices
///   IterationBegin      a = iteration,      b = vertices
///   Prune               a = active,         b = pruned
///   Decide              a = shuffle count,  b = hash count
///   Apply               a = moved,          b = iteration
///   IterationEnd        a = modularity,     b = delta_q
///   SyncPost            a = iteration,      b = bytes shipped
///   SyncComplete        a = iteration,      b = wait_us
///   FaultFire           a = site ordinal,   b = total fires
///   Retry               a = level,          b = attempt
///   SequentialFallback  a = level,          b = attempt
///   Rollback            a = level,          b = rejected modularity
///   ValidatorFail       a = level,          b = attempt
///   WorkspaceAlloc      a = bytes,          b = cumulative heap allocs
///   HealthStall         a = level,          b = first stalled iteration
///   HealthOscillation   a = level,          b = oscillating vertices
///   GovernorRung        a = rung ordinal,   b = projected modeled bytes
///   GovernorShrink      a = new budget,     b = old budget
enum class FlightKind : std::uint16_t {
  LevelBegin = 1,
  IterationBegin,
  Prune,
  Decide,
  Apply,
  IterationEnd,
  SyncPost,
  SyncComplete,
  FaultFire,
  Retry,
  SequentialFallback,
  Rollback,
  ValidatorFail,
  WorkspaceAlloc,
  HealthStall,
  HealthOscillation,
  GovernorRung,
  GovernorShrink,
};

const char* to_string(FlightKind kind);

/// One drained event. `seq` is the global monotonic clock (total order
/// across threads); `tid` is the recorder-assigned dense thread id; `rank`
/// is the multi-GPU rank (-1 outside any rank scope).
struct FlightEvent {
  std::uint64_t seq = 0;
  FlightKind kind{};
  std::uint16_t tid = 0;
  std::int32_t rank = -1;
  double a = 0;
  double b = 0;
};

class FlightRecorder {
 public:
  /// Post-mortem document schema version ("flight_schema").
  static constexpr int kSchema = 1;
  /// Default per-thread ring depth, in events.
  static constexpr std::size_t kDefaultDepth = 4096;

  FlightRecorder();

  /// The process-wide recorder every instrumented site appends to.
  static FlightRecorder& global();

  /// Fast disarmed check: one relaxed load. Armed by default.
  static bool armed() { return armed_flag_.load(std::memory_order_relaxed); }
  static void arm() { armed_flag_.store(true, std::memory_order_relaxed); }
  static void disarm() { armed_flag_.store(false, std::memory_order_relaxed); }

  /// Per-thread ring depth in events (rounded up to a power of two, min 8).
  /// Resizing abandons already-recorded events: threads re-register on their
  /// next append.
  void set_depth(std::size_t events);
  std::size_t depth() const;

  /// Appends one event to the calling thread's ring. When `rank` is -1 the
  /// ambient RankScope (telemetry.hpp) is recorded instead.
  void record(FlightKind kind, double a = 0, double b = 0, int rank = -1);

  /// Events ever recorded (including ones since overwritten).
  std::uint64_t recorded() const { return clock_.load(std::memory_order_relaxed); }

  /// Merged snapshot of every thread's ring, sorted by seq. Safe to call
  /// while writers are appending; events a writer lapped mid-copy are
  /// discarded rather than returned torn.
  std::vector<FlightEvent> drain() const;

  /// Forgets all recorded events and restarts the clock. Armed state is
  /// untouched.
  void reset();

  /// The post-mortem document: {"flight_schema":1,"reason":...,"depth":...,
  /// "recorded":...,"dropped":...,"events":[...]} with events sorted by seq.
  /// `last_n` > 0 keeps only the newest n events.
  std::string json(std::string_view reason, std::size_t last_n = 0) const;

  /// Writes json() to `path`. Returns false (never throws) on I/O failure —
  /// post-mortem dumps run inside exception handlers.
  bool write_postmortem(const std::string& path, std::string_view reason,
                        std::size_t last_n = 0) const noexcept;

 private:
  struct Ring;

  Ring* ring_for_this_thread();

  static inline std::atomic<bool> armed_flag_{true};

  const std::uint64_t id_;  // distinguishes recorder instances in the TLS cache
  std::atomic<std::uint64_t> clock_{0};
  /// Packed ring configuration: depth in the low 32 bits, a generation
  /// counter in the high 32. Writers revalidate their cached ring against
  /// this word with one relaxed load per event.
  std::atomic<std::uint64_t> config_;
  std::atomic<std::uint32_t> next_tid_{0};

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Ring>> rings_;
};

/// Append helper: one relaxed load when disarmed.
inline void flight(FlightKind kind, double a = 0, double b = 0, int rank = -1) {
  if (!FlightRecorder::armed()) return;
  FlightRecorder::global().record(kind, a, b, rank);
}

}  // namespace gala::telemetry
