#include "gala/memtrace/memtrace.hpp"

#include <algorithm>
#include <utility>

#include "gala/common/provenance.hpp"
#include "gala/telemetry/telemetry.hpp"

namespace gala::memtrace {

namespace {

std::string_view subsystem_of(std::string_view tag) {
  const auto dot = tag.find('.');
  return dot == std::string_view::npos ? tag : tag.substr(0, dot);
}

}  // namespace

const char* to_string(EpochKind kind) {
  switch (kind) {
    case EpochKind::Iteration:
      return "iteration";
    case EpochKind::Level:
      return "level";
  }
  return "unknown";
}

MemRegistry& MemRegistry::global() {
  static MemRegistry registry;
  return registry;
}

MemRegistry::Cell& MemRegistry::cell(std::string_view tag) {
  const int rank = telemetry::RankScope::current();
  const std::pair<std::string_view, int> key{tag, rank};
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    it = cells_.emplace(Key{std::string(tag), rank}, Cell{}).first;
  }
  return it->second;
}

void MemRegistry::on_alloc(std::string_view tag, std::uint64_t modeled,
                           std::uint64_t requested, bool workspace) {
  std::lock_guard lock(mutex_);
  Cell& c = cell(tag);
  ++c.allocs;
  c.bytes_total += modeled;
  c.live += modeled;
  c.peak = std::max(c.peak, c.live);
  if (modeled > requested) c.waste += modeled - requested;
  c.workspace = c.workspace || workspace;
  live_total_.fetch_add(modeled, std::memory_order_relaxed);
}

void MemRegistry::on_free(std::string_view tag, std::uint64_t modeled) noexcept {
  // Find-only (no node allocation): safe inside noexcept release paths. A
  // release for a tag the registry never saw allocate (armed mid-run) is
  // dropped rather than underflowing.
  std::lock_guard lock(mutex_);
  const std::pair<std::string_view, int> key{tag, telemetry::RankScope::current()};
  const auto it = cells_.find(key);
  if (it == cells_.end()) return;
  Cell& c = it->second;
  ++c.frees;
  const std::uint64_t delta = std::min(c.live, modeled);
  c.live -= delta;
  live_total_.fetch_sub(delta, std::memory_order_relaxed);
}

void MemRegistry::charge(std::string_view tag, std::uint64_t modeled) {
  std::lock_guard lock(mutex_);
  Cell& c = cell(tag);
  ++c.allocs;
  c.bytes_total += modeled;
  c.peak = std::max(c.peak, modeled);
}

void MemRegistry::set_resident(std::string_view tag, std::uint64_t bytes) {
  std::lock_guard lock(mutex_);
  Cell& c = cell(tag);
  if (bytes >= c.resident) {
    live_total_.fetch_add(bytes - c.resident, std::memory_order_relaxed);
  } else {
    live_total_.fetch_sub(c.resident - bytes, std::memory_order_relaxed);
  }
  c.resident = bytes;
  c.resident_peak = std::max(c.resident_peak, bytes);
}

std::uint64_t MemRegistry::live_subsystem(std::string_view subsys) const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, c] : cells_) {
    if (subsystem_of(key.tag) == subsys) total += c.live + c.resident;
  }
  return total;
}

std::uint64_t MemRegistry::resident_of(std::string_view tag) const {
  std::lock_guard lock(mutex_);
  const std::pair<std::string_view, int> key{tag, telemetry::RankScope::current()};
  const auto it = cells_.find(key);
  return it == cells_.end() ? 0 : it->second.resident;
}

void MemRegistry::note_slack(std::uint64_t bytes) {
  std::lock_guard lock(mutex_);
  slack_bytes_ += bytes;
}

void MemRegistry::mark_epoch(EpochKind kind, std::int64_t index) {
  EpochSnapshot snap;
  snap.kind = kind;
  snap.index = index;
  {
    std::lock_guard lock(mutex_);
    // Sum live + resident per subsystem across every rank's cells; cells_
    // is ordered by tag, so subsystems come out sorted and merged.
    for (const auto& [key, c] : cells_) {
      const std::uint64_t bytes = c.live + c.resident;
      if (bytes == 0) continue;
      const std::string_view subsys = subsystem_of(key.tag);
      if (!snap.subsystems.empty() && snap.subsystems.back().first == subsys) {
        snap.subsystems.back().second += bytes;
      } else {
        snap.subsystems.emplace_back(std::string(subsys), bytes);
      }
      snap.total += bytes;
    }
    if (timeline_.size() < kMaxTimeline) {
      timeline_.push_back(snap);
    } else {
      ++timeline_dropped_;
    }
  }
  // Counter emission outside the registry lock: the tracer takes its own.
  auto& tracer = telemetry::Tracer::global();
  if (tracer.enabled()) {
    telemetry::CounterRecord rec;
    rec.name = "memory";
    rec.ts_us = tracer.now_us();
    rec.rank = telemetry::RankScope::current();
    for (const auto& [name, bytes] : snap.subsystems) {
      rec.values.emplace_back(name, static_cast<double>(bytes));
    }
    tracer.record_counter(std::move(rec));
  }
}

void MemRegistry::note_level_reset() {
  std::lock_guard lock(mutex_);
  ++level_resets_;
  for (auto& [key, c] : cells_) {
    if (c.live > 0) c.retained = std::max(c.retained, c.live);
  }
}

MemReport MemRegistry::report() const {
  MemReport r;
  r.armed = armed();
  std::lock_guard lock(mutex_);
  // Merge ranks: cells_ is ordered by (tag, rank), so equal tags are
  // adjacent; counts, peaks, and waste sum deterministically.
  std::vector<TagStats> tags;
  for (const auto& [key, c] : cells_) {
    if (tags.empty() || tags.back().name != key.tag) {
      tags.emplace_back();
      tags.back().name = key.tag;
    }
    TagStats& t = tags.back();
    t.allocs += c.allocs;
    t.frees += c.frees;
    t.bytes_total += c.bytes_total;
    t.live += c.live;
    t.peak += c.peak;
    t.waste += c.waste;
    t.resident += c.resident;
    t.resident_peak += c.resident_peak;
    t.retained += c.retained;
    t.workspace = t.workspace || c.workspace;
  }
  // Group merged tags into subsystems (tags are sorted, so prefixes are
  // adjacent too).
  for (auto& t : tags) {
    const std::string_view subsys = subsystem_of(t.name);
    if (r.subsystems.empty() || r.subsystems.back().name != subsys) {
      r.subsystems.emplace_back();
      r.subsystems.back().name = std::string(subsys);
    }
    SubsystemStats& s = r.subsystems.back();
    s.allocs += t.allocs;
    s.bytes_total += t.bytes_total;
    s.live += t.live;
    s.peak += t.peak;
    s.waste += t.waste;
    s.resident += t.resident;
    s.resident_peak += t.resident_peak;
    s.tags.push_back(std::move(t));
  }
  r.timeline = timeline_;
  r.timeline_dropped = timeline_dropped_;
  r.level_resets = level_resets_;
  r.pool_slack_bytes = slack_bytes_;
  return r;
}

void MemRegistry::reset() {
  std::lock_guard lock(mutex_);
  cells_.clear();
  timeline_.clear();
  timeline_dropped_ = 0;
  level_resets_ = 0;
  slack_bytes_ = 0;
  live_total_.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------------------------
// MemReport.

std::uint64_t MemReport::peak_ws_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : subsystems) {
    for (const auto& t : s.tags) {
      if (t.workspace) total += t.peak;
    }
  }
  return total;
}

std::uint64_t MemReport::peak_total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : subsystems) total += s.peak + s.resident_peak;
  return total;
}

std::uint64_t MemReport::live_bytes() const {
  std::uint64_t total = 0;
  for (const auto& s : subsystems) total += s.live + s.resident;
  return total;
}

double MemReport::frag_pct() const {
  std::uint64_t waste = 0, charged = 0;
  for (const auto& s : subsystems) {
    waste += s.waste;
    charged += s.bytes_total;
  }
  return charged == 0 ? 0.0
                      : 100.0 * static_cast<double>(waste) / static_cast<double>(charged);
}

std::vector<const TagStats*> MemReport::leaks() const {
  std::vector<const TagStats*> out;
  for (const auto& s : subsystems) {
    for (const auto& t : s.tags) {
      if (t.retained > 0) out.push_back(&t);
    }
  }
  return out;
}

std::string MemReport::json(bool include_host) const {
  JsonWriter w;
  w.begin_object();
  w.key("mem_schema").value(kSchema);
  w.key("armed").value(armed);
  w.key("subsystems").begin_array();
  for (const auto& s : subsystems) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("allocs").value(s.allocs);
    w.key("bytes_total").value(s.bytes_total);
    w.key("live").value(s.live);
    w.key("peak").value(s.peak);
    w.key("waste").value(s.waste);
    w.key("resident").value(s.resident);
    w.key("resident_peak").value(s.resident_peak);
    w.key("tags").begin_array();
    for (const auto& t : s.tags) {
      w.begin_object();
      w.key("name").value(t.name);
      w.key("workspace").value(t.workspace);
      w.key("allocs").value(t.allocs);
      w.key("frees").value(t.frees);
      w.key("bytes_total").value(t.bytes_total);
      w.key("live").value(t.live);
      w.key("peak").value(t.peak);
      w.key("waste").value(t.waste);
      w.key("resident").value(t.resident);
      w.key("resident_peak").value(t.resident_peak);
      w.key("retained").value(t.retained);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("totals").begin_object();
  w.key("peak_ws_bytes").value(peak_ws_bytes());
  w.key("peak_total_bytes").value(peak_total_bytes());
  w.key("live_bytes").value(live_bytes());
  w.key("frag_pct").value(frag_pct());
  w.end_object();
  w.key("leak_check").begin_object();
  w.key("level_resets").value(level_resets);
  w.key("clean").value(leak_free());
  w.key("leaked_tags").begin_array();
  for (const TagStats* t : leaks()) {
    w.begin_object();
    w.key("name").value(t->name);
    w.key("retained").value(t->retained);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("timeline").begin_array();
  for (const auto& e : timeline) {
    w.begin_object();
    w.key("kind").value(to_string(e.kind));
    w.key("index").value(static_cast<std::uint64_t>(e.index < 0 ? 0 : e.index));
    w.key("total").value(e.total);
    w.key("subsystems").begin_object();
    for (const auto& [name, bytes] : e.subsystems) w.key(name).value(bytes);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("timeline_dropped").value(timeline_dropped);
  if (!governor.empty()) {
    // Pre-rendered by gala::governor::section_json(); absent when no budget
    // was installed, preserving the historical report shape.
    w.key("governor").raw(governor);
  }
  if (include_host) {
    // Host section: actual-slab-capacity facts that depend on pool state
    // (excluded from the byte-identity guarantee).
    w.key("host").begin_object();
    w.key("pool_slack_bytes").value(pool_slack_bytes);
    w.end_object();
  }
  provenance::append(w, "mem", kSchema);
  w.end_object();
  return w.str();
}

void MemReport::save(const std::string& path) const {
  telemetry::write_file(path, json());
}

}  // namespace gala::memtrace
