// gala::memtrace — whole-system memory observability.
//
// Every allocating subsystem (the exec Workspace slab pool, gpusim device
// arenas and cycle buffers, kernel hash scratch, multigpu sync staging and
// codec frames, graph CSR/contraction storage) reports into one process-wide
// MemRegistry keyed by the same dotted tags the Workspace already uses
// ("phase1.delta", "gpusim.shared_arena", ...). The registry answers the
// question the out-of-core roadmap item needs answered first: where do the
// bytes live, and when do they peak.
//
// Accounting model — modeled bytes, not host bytes:
//
//  - A workspace checkout is charged `class_bytes(requested)` — the size
//    class of the *request* — never the capacity of the slab that actually
//    served it. Pooled best-fit may hand out a slab up to 4x larger; that
//    slack is real host memory but it depends on pool state, so it is
//    tracked separately in the host section (note_slack). The modeled
//    charge depends only on the request sequence, which is why the
//    deterministic fields of the mem report are byte-identical with pooling
//    on or off, mirroring the health-report guarantee.
//  - Cells are keyed by (tag, ambient RankScope). Each distributed rank
//    thread owns its accounting stream, so per-cell live/peak trajectories
//    are single-threaded and deterministic; the report merges ranks by
//    summing (a deterministic upper bound on the true concurrent peak).
//    Host thread-pool workers all share rank -1, so peaks recorded under
//    parallel launches are scheduling-dependent — the determinism guarantee
//    (and the perf_profile gate rows) therefore use sequential launches,
//    exactly like the profiler baselines.
//  - charge() is alloc+free in one step for transient buffers that several
//    threads produce concurrently (codec frames, comm staging copies): it
//    advances the cumulative counters and records the largest single charge
//    as the peak, both of which are interleaving-independent.
//  - set_resident() is a gauge for storage the registry does not see
//    allocate (CSR arrays, contraction output): byte sizes are computed from
//    element counts, never vector capacities, so they are deterministic.
//
// Epoch-aligned residency timeline: engines call mark_epoch() at iteration
// and level boundaries (single-threaded coordination points — in the
// distributed engine rank 0 marks while the other ranks are parked at the
// iteration barrier). Each mark snapshots per-subsystem live+resident bytes
// into a bounded timeline and, when the tracer is enabled, emits a
// Chrome-trace counter ("C") event on the "memory" track so byte curves
// line up with the level/iteration spans.
//
// Leak detector: Workspace::reset_level() calls note_level_reset(); any tag
// with live modeled bytes at a level boundary is retention the pool contract
// forbids, and the report's leak_check section names it.
//
// Cost discipline: armed by default; an armed call is one registry mutex
// plus a map find on a hot path that only runs on pool checkout (steady
// state loops are checkout-free). Accounting never touches the gpusim cost
// model, so armed modeled counters are bit-identical to disarmed ones —
// bench/perf_profile.cpp gates the wall overhead under the same 2% cap as
// the flight recorder. Disarmed, every site pays a single relaxed load.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gala::memtrace {

/// What a mark_epoch() snapshot aligns to.
enum class EpochKind : std::uint8_t { Iteration, Level };

const char* to_string(EpochKind kind);

/// Per-tag gauge set, merged across ranks (counts and peaks summed).
struct TagStats {
  std::string name;
  std::uint64_t allocs = 0;        ///< checkouts + one-shot charges
  std::uint64_t frees = 0;         ///< lease give-backs
  std::uint64_t bytes_total = 0;   ///< cumulative modeled bytes ever charged
  std::uint64_t live = 0;          ///< modeled bytes live right now
  std::uint64_t peak = 0;          ///< high-water mark (summed per-rank peaks)
  std::uint64_t waste = 0;         ///< Σ size-class rounding (class − requested)
  std::uint64_t resident = 0;      ///< set_resident gauge value
  std::uint64_t resident_peak = 0; ///< high-water mark of the gauge
  std::uint64_t retained = 0;      ///< worst live bytes seen at a level reset
  bool workspace = false;          ///< charged via the Workspace slab pool
};

/// One subsystem (the tag prefix before the first '.'), totals plus tags.
struct SubsystemStats {
  std::string name;
  std::uint64_t allocs = 0;
  std::uint64_t bytes_total = 0;
  std::uint64_t live = 0;
  std::uint64_t peak = 0;
  std::uint64_t waste = 0;
  std::uint64_t resident = 0;
  std::uint64_t resident_peak = 0;
  std::vector<TagStats> tags;
};

/// One residency snapshot: live+resident bytes per subsystem at an epoch.
struct EpochSnapshot {
  EpochKind kind = EpochKind::Iteration;
  std::int64_t index = 0;
  std::uint64_t total = 0;
  std::vector<std::pair<std::string, std::uint64_t>> subsystems;
};

/// The "--mem-out" document ("mem_schema" 1). Every field except the host
/// section is derived from modeled bytes and deterministic for a fixed
/// configuration; json(/*include_host=*/false) is the byte-identity surface
/// the determinism tests compare.
struct MemReport {
  static constexpr int kSchema = 1;

  bool armed = true;
  std::vector<SubsystemStats> subsystems;
  std::vector<EpochSnapshot> timeline;
  std::uint64_t timeline_dropped = 0;
  std::uint64_t level_resets = 0;
  /// Pre-rendered "governor" JSON object (gala::governor::section_json).
  /// Empty when no budget was installed — the key is then absent, which
  /// keeps the historical json(false) byte-identity surface unchanged.
  std::string governor;
  /// Host section (pool-state dependent, excluded from byte-identity):
  /// actual-slab-capacity slack beyond the modeled size class.
  std::uint64_t pool_slack_bytes = 0;

  /// Σ per-tag peaks over workspace-pooled tags.
  std::uint64_t peak_ws_bytes() const;
  /// Σ per-tag peaks + resident peaks over every tag.
  std::uint64_t peak_total_bytes() const;
  /// Modeled bytes live (checked out + resident) right now.
  std::uint64_t live_bytes() const;
  /// Internal fragmentation from size-class rounding, percent of charged
  /// bytes. Deterministic: both terms depend only on the request sequence.
  double frag_pct() const;
  /// Tags that still held live bytes at a level reset.
  std::vector<const TagStats*> leaks() const;
  bool leak_free() const { return leaks().empty(); }

  std::string json(bool include_host = true) const;
  void save(const std::string& path) const;
};

/// Process-wide registry of per-subsystem memory gauges.
class MemRegistry {
 public:
  /// Timeline retention cap; marks beyond it count as timeline_dropped.
  static constexpr std::size_t kMaxTimeline = 1u << 16;

  static MemRegistry& global();

  /// Fast disarmed check: one relaxed load. Armed by default.
  static bool armed() { return armed_flag_.load(std::memory_order_relaxed); }
  static void arm() { armed_flag_.store(true, std::memory_order_relaxed); }
  static void disarm() { armed_flag_.store(false, std::memory_order_relaxed); }

  /// Admission hook, installed by gala::governor to veto allocations before
  /// their modeled bytes go live. `may_throw` marks sites where a refusal
  /// can unwind cleanly (Workspace checkouts); other sites must be observed
  /// without throwing. Null (the default) costs one relaxed load per site.
  using AdmitHook = void (*)(std::string_view tag, std::uint64_t modeled, bool may_throw);
  static void set_admit_hook(AdmitHook hook) {
    admit_hook_.store(hook, std::memory_order_relaxed);
  }
  static AdmitHook admit_hook() { return admit_hook_.load(std::memory_order_relaxed); }

  /// Modeled bytes live right now (checked out + resident), summed across
  /// all tags and ranks: the budget-enforcement input. One relaxed load.
  std::uint64_t live_total() const { return live_total_.load(std::memory_order_relaxed); }
  /// Modeled live+resident bytes for one subsystem (tag prefix).
  std::uint64_t live_subsystem(std::string_view subsys) const;
  /// Current set_resident() gauge for `tag` under the ambient RankScope
  /// (0 when the cell does not exist yet). Used by the admission wrapper to
  /// charge only the gauge's increase.
  std::uint64_t resident_of(std::string_view tag) const;

  /// A buffer went live under `tag`: `modeled` is its size-class charge,
  /// `requested` the raw request (their difference accumulates as waste).
  void on_alloc(std::string_view tag, std::uint64_t modeled, std::uint64_t requested,
                bool workspace);
  /// The matching release. Unknown tags are ignored (never throws — runs
  /// inside noexcept release paths).
  void on_free(std::string_view tag, std::uint64_t modeled) noexcept;
  /// One-shot charge for a transient buffer: counts and the largest single
  /// charge are recorded; live is untouched (interleaving-independent).
  void charge(std::string_view tag, std::uint64_t modeled);
  /// Gauge for externally-owned storage (CSR arrays, contraction output).
  void set_resident(std::string_view tag, std::uint64_t bytes);
  /// Host-section slack: actual slab capacity beyond the modeled class.
  void note_slack(std::uint64_t bytes);

  /// Snapshots per-subsystem live+resident bytes into the timeline and, when
  /// the tracer is enabled, emits a Chrome counter event on the "memory"
  /// track. Call from single-threaded coordination points only.
  void mark_epoch(EpochKind kind, std::int64_t index);

  /// Level-reset hook (called by Workspace::reset_level): live bytes here
  /// are retention the pool contract forbids — recorded per tag.
  void note_level_reset();

  MemReport report() const;

  /// Forgets all accounting (tags, timeline, leak records).
  void reset();

 private:
  struct Key {
    std::string tag;
    int rank;
  };
  struct KeyLess {
    using is_transparent = void;
    static std::pair<std::string_view, int> view(const Key& k) { return {k.tag, k.rank}; }
    bool operator()(const Key& a, const Key& b) const { return view(a) < view(b); }
    bool operator()(const Key& a, const std::pair<std::string_view, int>& b) const {
      return view(a) < b;
    }
    bool operator()(const std::pair<std::string_view, int>& a, const Key& b) const {
      return a < view(b);
    }
  };
  struct Cell {
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t bytes_total = 0;
    std::uint64_t live = 0;
    std::uint64_t peak = 0;
    std::uint64_t waste = 0;
    std::uint64_t resident = 0;
    std::uint64_t resident_peak = 0;
    std::uint64_t retained = 0;
    bool workspace = false;
  };

  Cell& cell(std::string_view tag);  // caller holds mutex_

  static inline std::atomic<bool> armed_flag_{true};
  static inline std::atomic<AdmitHook> admit_hook_{nullptr};

  std::atomic<std::uint64_t> live_total_{0};
  mutable std::mutex mutex_;
  std::map<Key, Cell, KeyLess> cells_;
  std::vector<EpochSnapshot> timeline_;
  std::uint64_t timeline_dropped_ = 0;
  std::uint64_t level_resets_ = 0;
  std::uint64_t slack_bytes_ = 0;
};

/// Admission check: allocation sites call this BEFORE the bytes go live.
/// With no governor installed it is one relaxed load. `may_throw` sites
/// (Workspace checkouts) let the governor refuse by throwing
/// gala::ResourceExhausted; all other sites are observe-and-escalate only.
inline void admit(std::string_view tag, std::uint64_t modeled, bool may_throw = false) {
  if (MemRegistry::AdmitHook hook = MemRegistry::admit_hook()) hook(tag, modeled, may_throw);
}

/// Convenience wrappers: one relaxed load when disarmed.
inline void on_alloc(std::string_view tag, std::uint64_t modeled, std::uint64_t requested,
                     bool workspace = false) {
  if (!MemRegistry::armed()) return;
  MemRegistry::global().on_alloc(tag, modeled, requested, workspace);
}
inline void on_free(std::string_view tag, std::uint64_t modeled) noexcept {
  if (!MemRegistry::armed()) return;
  MemRegistry::global().on_free(tag, modeled);
}
inline void charge(std::string_view tag, std::uint64_t modeled) {
  admit(tag, modeled, /*may_throw=*/false);
  if (!MemRegistry::armed()) return;
  MemRegistry::global().charge(tag, modeled);
}
inline void set_resident(std::string_view tag, std::uint64_t bytes) {
  if (MemRegistry::admit_hook() != nullptr) {
    // The governor projects live_total() + charge, and live_total_ already
    // includes this gauge's current value — admit only the increase, or a
    // re-set each level (e.g. "graph.contraction") double-counts the old
    // value and escalates the ladder spuriously. A shrinking re-set is a
    // release and can never be refused.
    const std::uint64_t current = MemRegistry::global().resident_of(tag);
    admit(tag, bytes > current ? bytes - current : 0, /*may_throw=*/false);
  }
  if (!MemRegistry::armed()) return;
  MemRegistry::global().set_resident(tag, bytes);
}
inline void note_slack(std::uint64_t bytes) {
  if (!MemRegistry::armed()) return;
  MemRegistry::global().note_slack(bytes);
}
inline void mark_epoch(EpochKind kind, std::int64_t index) {
  if (!MemRegistry::armed()) return;
  MemRegistry::global().mark_epoch(kind, index);
}

}  // namespace gala::memtrace
