#include "gala/gpusim/device.hpp"

#include <span>
#include <vector>

#include "gala/memtrace/memtrace.hpp"
#include "gala/profiler/profiler.hpp"
#include "gala/resilience/fault_injection.hpp"

namespace gala::gpusim {

Device::Device(const DeviceConfig& config, exec::Workspace* workspace)
    : config_(config), pool_(&ThreadPool::global()), workspace_(workspace) {}

void attach_traffic(telemetry::ScopedSpan& span, const MemoryStats& stats,
                    const CostModel* model) {
  if (!span.active()) return;
  span.arg("global_reads", static_cast<double>(stats.global_reads));
  span.arg("global_writes", static_cast<double>(stats.global_writes));
  span.arg("global_atomics", static_cast<double>(stats.global_atomics));
  span.arg("shared_reads", static_cast<double>(stats.shared_reads));
  span.arg("shared_writes", static_cast<double>(stats.shared_writes));
  span.arg("shared_atomics", static_cast<double>(stats.shared_atomics));
  span.arg("register_ops", static_cast<double>(stats.register_ops));
  span.arg("shuffle_ops", static_cast<double>(stats.shuffle_ops));
  if (stats.ht_maintain_shared + stats.ht_maintain_global > 0) {
    span.arg("ht_maintenance_rate", stats.maintenance_rate());
    span.arg("ht_access_rate", stats.access_rate());
  }
  if (stats.gather_requests > 0) {
    span.arg("transactions_per_gather", stats.transactions_per_gather());
    span.arg("coalescing_efficiency", stats.coalescing_efficiency());
  }
  if (stats.simt_lane_slots > 0) {
    span.arg("divergence_efficiency", stats.divergence_efficiency());
  }
  if (stats.shared_requests > 0) {
    span.arg("bank_conflict_factor", stats.bank_conflict_factor());
  }
  if (stats.ht_lookups > 0) {
    span.arg("ht_mean_probe_length", stats.mean_probe_length());
  }
  if (model != nullptr) {
    const CostBreakdown b = model->breakdown(stats);
    span.arg("cycles_global", b.global);
    span.arg("cycles_shared", b.shared);
    span.arg("cycles_registers", b.registers);
    span.arg("cycles_shuffle", b.shuffle);
    span.arg("cycles_atomics", b.atomics);
    span.arg("modeled_cycles", b.total());
  }
}

namespace {

/// Finalises a launch: modeled cycles, span payload, launch counter, and the
/// per-kernel profile when the profiler is enabled.
void finish_launch(LaunchStats& result, const DeviceConfig& config, std::size_t num_blocks,
                   telemetry::ScopedSpan& span, std::string_view name,
                   std::span<const double> block_cycles) {
  result.modeled_cycles = config.cost_model.cycles(result.traffic);
  if (span.active()) {
    span.arg("num_blocks", static_cast<double>(num_blocks));
    attach_traffic(span, result.traffic, &config.cost_model);
    telemetry::Registry::global().counter("gpusim.launches").add(1);
    telemetry::Registry::global().histogram("gpusim.blocks_per_launch").observe(num_blocks);
  }
  auto& profiler = profiler::Profiler::global();
  if (profiler.enabled()) {
    profiler.record_launch(name, num_blocks, result.traffic, result.modeled_cycles,
                           config.modeled_ms(result.traffic), result.wall_seconds, block_cycles);
  }
}

/// One worker chunk's block arena: workspace pages when the device is bound
/// (pool-recycled across launches), a private heap buffer otherwise. The
/// lease is sized to exactly the configured shared-memory budget, so arena
/// capacity — and with it the hashtable shared/global split — is identical
/// in both modes.
struct ChunkArena {
  exec::Workspace::Lease<std::byte> pages;
  SharedMemoryArena arena;

  ChunkArena(const DeviceConfig& config, exec::Workspace* ws)
      : pages(ws != nullptr
                  ? ws->take<std::byte>(config.shared_bytes_per_block, "gpusim.shared_arena")
                  : exec::Workspace::Lease<std::byte>{}),
        arena(ws != nullptr ? SharedMemoryArena(pages.span())
                            : SharedMemoryArena(config.shared_bytes_per_block)) {
    // The workspace route is accounted by take(); only the private heap
    // fallback needs an explicit memtrace charge.
    if (ws == nullptr) memtrace::charge("gpusim.shared_arena", config.shared_bytes_per_block);
  }
};

/// Per-block modeled-cycle buffer (profiler load-imbalance statistics);
/// pooled when a workspace is bound, empty when profiling is off.
struct CycleBuffer {
  exec::Workspace::Lease<double> lease;
  std::vector<double> heap;
  std::span<double> cycles;

  CycleBuffer(bool profiling, std::size_t num_blocks, exec::Workspace* ws) {
    if (!profiling) return;
    if (ws != nullptr) {
      lease = ws->take<double>(num_blocks, "gpusim.block_cycles", exec::Fill::Zero);
      cycles = lease.span();
    } else {
      heap.assign(num_blocks, 0.0);
      cycles = heap;
      memtrace::charge("gpusim.block_cycles", num_blocks * sizeof(double));
    }
  }
};

}  // namespace

LaunchStats Device::launch(std::size_t num_blocks,
                           const std::function<void(BlockContext&)>& body,
                           std::string_view name) const {
  resilience::maybe_inject(resilience::FaultSite::KernelLaunch, name);
  telemetry::ScopedSpan span(telemetry::Tracer::global(), name, "kernel");
  LaunchStats result;
  Timer timer;
  // Per-block modeled cycles feed the profiler's load-imbalance statistics.
  // Indexed writes by block id: no synchronisation needed between workers.
  const bool profiling = profiler::Profiler::global().enabled();
  CycleBuffer block_cycles(profiling, num_blocks, workspace_);
  std::mutex merge_mutex;
  pool_->parallel_for_chunked(
      0, num_blocks,
      [&](std::size_t lo, std::size_t hi) {
        ChunkArena chunk(config_, workspace_);
        MemoryStats stats;
        BlockContext ctx{0, &chunk.arena, &stats, workspace_};
        double cycles_before = 0;
        for (std::size_t b = lo; b < hi; ++b) {
          ctx.block_id = b;
          chunk.arena.reset();
          body(ctx);
          if (profiling) {
            const double cycles_after = config_.cost_model.cycles(stats);
            block_cycles.cycles[b] = cycles_after - cycles_before;
            cycles_before = cycles_after;
          }
        }
        std::lock_guard lock(merge_mutex);
        result.traffic += stats;
      },
      /*grain=*/16);
  result.wall_seconds = timer.seconds();
  finish_launch(result, config_, num_blocks, span, name, block_cycles.cycles);
  return result;
}

LaunchStats Device::launch_sequential(std::size_t num_blocks,
                                      const std::function<void(BlockContext&)>& body,
                                      std::string_view name) const {
  resilience::maybe_inject(resilience::FaultSite::KernelLaunch, name);
  telemetry::ScopedSpan span(telemetry::Tracer::global(), name, "kernel");
  LaunchStats result;
  Timer timer;
  const bool profiling = profiler::Profiler::global().enabled();
  CycleBuffer block_cycles(profiling, num_blocks, workspace_);
  ChunkArena chunk(config_, workspace_);
  MemoryStats stats;
  BlockContext ctx{0, &chunk.arena, &stats, workspace_};
  double cycles_before = 0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    ctx.block_id = b;
    chunk.arena.reset();
    body(ctx);
    if (profiling) {
      const double cycles_after = config_.cost_model.cycles(stats);
      block_cycles.cycles[b] = cycles_after - cycles_before;
      cycles_before = cycles_after;
    }
  }
  result.traffic = stats;
  result.wall_seconds = timer.seconds();
  finish_launch(result, config_, num_blocks, span, name, block_cycles.cycles);
  return result;
}

}  // namespace gala::gpusim
