#include "gala/gpusim/device.hpp"

#include <vector>

namespace gala::gpusim {

Device::Device(const DeviceConfig& config) : config_(config), pool_(&ThreadPool::global()) {}

LaunchStats Device::launch(std::size_t num_blocks,
                           const std::function<void(BlockContext&)>& body) const {
  LaunchStats result;
  Timer timer;
  std::mutex merge_mutex;
  pool_->parallel_for_chunked(
      0, num_blocks,
      [&](std::size_t lo, std::size_t hi) {
        SharedMemoryArena arena(config_.shared_bytes_per_block);
        MemoryStats stats;
        BlockContext ctx{0, &arena, &stats};
        for (std::size_t b = lo; b < hi; ++b) {
          ctx.block_id = b;
          arena.reset();
          body(ctx);
        }
        std::lock_guard lock(merge_mutex);
        result.traffic += stats;
      },
      /*grain=*/16);
  result.wall_seconds = timer.seconds();
  result.modeled_cycles = config_.cost_model.cycles(result.traffic);
  return result;
}

LaunchStats Device::launch_sequential(std::size_t num_blocks,
                                      const std::function<void(BlockContext&)>& body) const {
  LaunchStats result;
  Timer timer;
  SharedMemoryArena arena(config_.shared_bytes_per_block);
  MemoryStats stats;
  BlockContext ctx{0, &arena, &stats};
  for (std::size_t b = 0; b < num_blocks; ++b) {
    ctx.block_id = b;
    arena.reset();
    body(ctx);
  }
  result.traffic = stats;
  result.wall_seconds = timer.seconds();
  result.modeled_cycles = config_.cost_model.cycles(result.traffic);
  return result;
}

}  // namespace gala::gpusim
