// Block-level collectives.
//
// A CUDA block cooperates through shared memory: reductions and scans over
// per-thread values are implemented as log-step trees staged in a shared
// buffer. The hash kernel's final "obtain best_C of all threads" (Alg. 3
// line 15) is exactly such a block reduction; modelling it explicitly keeps
// its shared-memory traffic on the books.
//
// Per CUDA convention, the simulator charges a tree reduction over n values
// ceil(log2 n) rounds of shared reads+writes plus the final broadcast.
#pragma once

#include <bit>
#include <span>

#include "gala/common/error.hpp"
#include "gala/gpusim/memory.hpp"

namespace gala::gpusim::block {

/// Charges the traffic of a shared-memory tree reduction over `n` per-thread
/// values and returns the round count. Kernels call this next to computing
/// the reduction's value in plain code.
inline int charge_tree_reduction(std::size_t n, MemoryStats& stats) {
  if (n <= 1) return 0;
  constexpr std::size_t kLanes = 32;
  const int rounds = std::bit_width(n - 1);  // ceil(log2 n)
  std::size_t active = n;
  for (int r = 0; r < rounds; ++r) {
    active = (active + 1) / 2;
    stats.shared_reads += 2 * active;  // each surviving thread reads a pair
    stats.shared_writes += active;     // and writes the partial result
    // Sequential addressing keeps every warp request conflict-free; the
    // shrinking tail still occupies full warps (divergence).
    const std::size_t warps = (active + kLanes - 1) / kLanes;
    stats.shared_requests += 3 * warps;
    stats.shared_waves += 3 * warps;
    stats.simt_lane_slots += 3 * warps * kLanes;
    stats.simt_active_lanes += 3 * active;
  }
  stats.shared_reads += n;  // broadcast of the final value
  const std::size_t bcast_warps = (n + kLanes - 1) / kLanes;
  stats.shared_requests += bcast_warps;
  stats.shared_waves += bcast_warps;  // same-word broadcast: one wave each
  stats.simt_lane_slots += bcast_warps * kLanes;
  stats.simt_active_lanes += n;
  return rounds;
}

/// Block-wide argmax: returns the index of the maximum element (ties toward
/// the lower index, matching the kernels' community-id tie-break) and
/// charges the reduction traffic.
template <typename T>
std::size_t reduce_argmax(std::span<const T> values, MemoryStats& stats) {
  GALA_CHECK(!values.empty(), "argmax of empty block");
  std::size_t best = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] > values[best]) best = i;
  }
  charge_tree_reduction(values.size(), stats);
  return best;
}

/// Block-wide sum with the same traffic model.
template <typename T>
T reduce_add(std::span<const T> values, MemoryStats& stats) {
  T sum{};
  for (const T& v : values) sum += v;
  charge_tree_reduction(values.size(), stats);
  return sum;
}

/// Exclusive prefix sum (Blelloch scan): returns the scanned vector and
/// charges up-sweep + down-sweep traffic (2x the reduction tree).
template <typename T>
std::vector<T> exclusive_scan(std::span<const T> values, MemoryStats& stats) {
  std::vector<T> out(values.size());
  T acc{};
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = acc;
    acc += values[i];
  }
  charge_tree_reduction(values.size(), stats);
  charge_tree_reduction(values.size(), stats);
  return out;
}

}  // namespace gala::gpusim::block
