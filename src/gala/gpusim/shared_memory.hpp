// Per-block shared-memory arena.
//
// Models the fixed shared-memory budget a CUDA block owns (48 KiB default,
// configurable up to the A100's 164 KiB). Kernels allocate typed arrays out
// of the arena; an allocation beyond capacity fails, which is exactly the
// condition that forces hashtable buckets into global memory (§4.2).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gala/common/error.hpp"
#include "gala/gpusim/memory.hpp"
#include "gala/resilience/fault_injection.hpp"

namespace gala::gpusim {

/// Number of shared-memory banks (4 bytes wide each, as on every
/// sm_70+ part).
inline constexpr int kSharedBanks = 32;

/// Bank-conflict accumulator for sequentially-simulated block threads.
///
/// Kernels that stride a block's threads over data (the hash kernel's
/// per-neighbour upserts) execute lanes one after another in the simulator,
/// but on hardware each group of 32 consecutive strided elements is one
/// warp's simultaneous shared access. This accumulator regroups the
/// sequential accesses into those warps: observe one 4-byte word index per
/// simulated lane access and every 32 observations (or on flush) it replays
/// the group as one warp-wide request — same-word accesses broadcast,
/// distinct words in one bank serialise into extra waves.
class BankConflictModel {
 public:
  explicit BankConflictModel(MemoryStats& stats) : stats_(&stats) {}
  ~BankConflictModel() { flush(); }

  BankConflictModel(const BankConflictModel&) = delete;
  BankConflictModel& operator=(const BankConflictModel&) = delete;

  /// Records one lane's shared access of the 4-byte word at `word_index`
  /// (byte offset / 4).
  void observe_word(std::uint64_t word_index) {
    pending_[count_++] = word_index;
    if (count_ == kSharedBanks) flush();
  }

  /// Closes the currently-open partial warp (end of the strided loop).
  void flush() {
    if (count_ == 0) return;
    int per_bank[kSharedBanks] = {};
    int waves = 0;
    int distinct = 0;
    for (int i = 0; i < count_; ++i) {
      bool seen = false;
      for (int j = 0; j < distinct; ++j) {
        if (pending_[j] == pending_[i]) {
          seen = true;
          break;
        }
      }
      if (seen) continue;  // broadcast
      std::swap(pending_[distinct], pending_[i]);
      const int bank = static_cast<int>(pending_[distinct] % kSharedBanks);
      ++distinct;
      waves = std::max(waves, ++per_bank[bank]);
    }
    stats_->shared_requests += 1;
    stats_->shared_waves += static_cast<std::uint64_t>(std::max(waves, 1));
    count_ = 0;
  }

 private:
  MemoryStats* stats_;
  std::uint64_t pending_[kSharedBanks];
  int count_ = 0;
};

class SharedMemoryArena {
 public:
  explicit SharedMemoryArena(std::size_t capacity_bytes = 48 * 1024)
      : capacity_(capacity_bytes), owned_(capacity_bytes), mem_(owned_.data(), owned_.size()) {}

  /// Arena over caller-owned backing (workspace pages): the block's shared
  /// memory budget is exactly `backing.size()` bytes and nothing is
  /// allocated or freed by the arena itself.
  explicit SharedMemoryArena(std::span<std::byte> backing)
      : capacity_(backing.size()), mem_(backing) {}

  // Movable (vector moves keep the heap block, so mem_ stays valid); a copy
  // would alias the source's storage, so copying is disallowed.
  SharedMemoryArena(SharedMemoryArena&&) = default;
  SharedMemoryArena& operator=(SharedMemoryArena&&) = default;
  SharedMemoryArena(const SharedMemoryArena&) = delete;
  SharedMemoryArena& operator=(const SharedMemoryArena&) = delete;

  std::size_t capacity_bytes() const { return capacity_; }
  std::size_t used_bytes() const { return used_; }
  std::size_t free_bytes() const { return capacity_ - used_; }

  /// True if `count` elements of T fit in the remaining space.
  template <typename T>
  bool fits(std::size_t count) const {
    return aligned_used(alignof(T)) + count * sizeof(T) <= capacity_;
  }

  /// Allocates `count` default-initialised elements of T. Throws
  /// gala::ResourceExhausted when the block's shared-memory budget is
  /// exceeded — callers that can overflow must either check fits() first (as
  /// a CUDA kernel must at compile time / launch time) or catch the
  /// exhaustion and degrade (hashtables.cpp / the supervisor ladder).
  template <typename T>
  std::span<T> allocate(std::size_t count) {
    resilience::maybe_inject(resilience::FaultSite::SharedAlloc, "shared-arena");
    const std::size_t start = aligned_used(alignof(T));
    const std::size_t bytes = count * sizeof(T);
    if (start + bytes > capacity_) {
      GALA_THROW(ResourceExhausted, "shared memory overflow: need "
                                        << bytes << "B at offset " << start << ", capacity "
                                        << capacity_ << "B");
    }
    used_ = start + bytes;
    T* ptr = reinterpret_cast<T*>(mem_.data() + start);
    for (std::size_t i = 0; i < count; ++i) ptr[i] = T{};
    return {ptr, count};
  }

  /// Releases all allocations (start of a new block).
  void reset() { used_ = 0; }

  /// Largest count of T a fresh block could allocate.
  template <typename T>
  std::size_t max_elements() const {
    return capacity_ / sizeof(T);
  }

 private:
  std::size_t aligned_used(std::size_t alignment) const {
    return (used_ + alignment - 1) / alignment * alignment;
  }

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::vector<std::byte> owned_;  // empty when the backing is external
  std::span<std::byte> mem_;
};

}  // namespace gala::gpusim
