// Per-block shared-memory arena.
//
// Models the fixed shared-memory budget a CUDA block owns (48 KiB default,
// configurable up to the A100's 164 KiB). Kernels allocate typed arrays out
// of the arena; an allocation beyond capacity fails, which is exactly the
// condition that forces hashtable buckets into global memory (§4.2).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "gala/common/error.hpp"

namespace gala::gpusim {

class SharedMemoryArena {
 public:
  explicit SharedMemoryArena(std::size_t capacity_bytes = 48 * 1024)
      : capacity_(capacity_bytes), storage_(capacity_bytes) {}

  std::size_t capacity_bytes() const { return capacity_; }
  std::size_t used_bytes() const { return used_; }
  std::size_t free_bytes() const { return capacity_ - used_; }

  /// True if `count` elements of T fit in the remaining space.
  template <typename T>
  bool fits(std::size_t count) const {
    return aligned_used(alignof(T)) + count * sizeof(T) <= capacity_;
  }

  /// Allocates `count` default-initialised elements of T. Throws gala::Error
  /// when the block's shared-memory budget is exceeded — callers that can
  /// overflow must check fits() first (as a CUDA kernel must at compile
  /// time / launch time).
  template <typename T>
  std::span<T> allocate(std::size_t count) {
    const std::size_t start = aligned_used(alignof(T));
    const std::size_t bytes = count * sizeof(T);
    GALA_CHECK(start + bytes <= capacity_,
               "shared memory overflow: need " << bytes << "B at offset " << start
                                               << ", capacity " << capacity_ << "B");
    used_ = start + bytes;
    T* ptr = reinterpret_cast<T*>(storage_.data() + start);
    for (std::size_t i = 0; i < count; ++i) ptr[i] = T{};
    return {ptr, count};
  }

  /// Releases all allocations (start of a new block).
  void reset() { used_ = 0; }

  /// Largest count of T a fresh block could allocate.
  template <typename T>
  std::size_t max_elements() const {
    return capacity_ / sizeof(T);
  }

 private:
  std::size_t aligned_used(std::size_t alignment) const {
    return (used_ + alignment - 1) / alignment * alignment;
  }

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::vector<std::byte> storage_;
};

}  // namespace gala::gpusim
