// Warp-synchronous collective primitives.
//
// GALA's shuffle-based kernel (paper Algorithm 2) is built on the CUDA
// sm_70+ warp collectives. The simulator executes warps in SoA form: a
// "warp" is an array of 32 per-lane values plus an active-lane mask, and
// each primitive computes the per-lane results with exactly the semantics
// the CUDA programming guide documents:
//
//   __match_any_sync(mask, v) : per-lane mask of lanes holding an equal v
//   __reduce_add_sync(mask, v): sum of v over the lanes named in mask
//                               (every lane in mask receives the sum)
//   __reduce_max_sync(mask, v): max of v over the lanes named in mask
//   __ballot_sync(mask, pred) : bitmask of lanes with pred != 0
//   __shfl_sync(mask, v, src) : value of lane `src`
//
// Each collective charges one shuffle_op (plus per-lane register traffic)
// to the MemoryStats of the calling kernel.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "gala/common/error.hpp"
#include "gala/gpusim/memory.hpp"

namespace gala::gpusim {

inline constexpr int kWarpSize = 32;
using LaneMask = std::uint32_t;
inline constexpr LaneMask kFullMask = 0xffffffffu;

template <typename T>
using WarpValues = std::array<T, kWarpSize>;

template <typename T>
using WarpMasks = std::array<LaneMask, kWarpSize>;

namespace warp {

/// Divergence accounting for one warp-wide issue: 32 lane slots are
/// occupied, popcount(active) of them do useful work. Every collective and
/// gather below charges this alongside its own traffic.
inline void charge_simt_issue(LaneMask active, MemoryStats& stats) {
  stats.simt_lane_slots += kWarpSize;
  stats.simt_active_lanes += static_cast<std::uint64_t>(std::popcount(active));
}

/// __match_any_sync for every active lane at once. Inactive lanes receive 0.
template <typename T>
std::array<LaneMask, kWarpSize> match_any(LaneMask active, const WarpValues<T>& values,
                                          MemoryStats& stats) {
  std::array<LaneMask, kWarpSize> result{};
  for (int i = 0; i < kWarpSize; ++i) {
    if (!((active >> i) & 1u)) continue;
    LaneMask m = 0;
    for (int j = 0; j < kWarpSize; ++j) {
      if (((active >> j) & 1u) && values[j] == values[i]) m |= (1u << j);
    }
    result[i] = m;
  }
  stats.shuffle_ops += 1;
  stats.register_ops += static_cast<std::uint64_t>(std::popcount(active));
  charge_simt_issue(active, stats);
  return result;
}

/// __reduce_add_sync for every active lane: lane i receives the sum of
/// `values` over the lanes in masks[i]. In CUDA, lanes sharing a mask form
/// one hardware reduction; we charge one shuffle_op per *distinct* mask,
/// matching the hardware's group-wise execution.
template <typename T>
WarpValues<T> segmented_reduce_add(LaneMask active, const std::array<LaneMask, kWarpSize>& masks,
                                   const WarpValues<T>& values, MemoryStats& stats) {
  WarpValues<T> result{};
  LaneMask seen = 0;
  int groups = 0;
  for (int i = 0; i < kWarpSize; ++i) {
    if (!((active >> i) & 1u)) continue;
    if ((seen >> i) & 1u) continue;  // group already reduced via its leader
    T sum{};
    for (int j = 0; j < kWarpSize; ++j) {
      if ((masks[i] >> j) & 1u) sum += values[j];
    }
    for (int j = 0; j < kWarpSize; ++j) {
      if ((masks[i] >> j) & 1u) result[j] = sum;
    }
    seen |= masks[i];
    ++groups;
  }
  stats.shuffle_ops += static_cast<std::uint64_t>(groups);
  stats.register_ops += static_cast<std::uint64_t>(std::popcount(active));
  charge_simt_issue(active, stats);
  return result;
}

/// __reduce_max_sync over the full active mask: every active lane receives
/// the maximum of `values` over active lanes.
template <typename T>
T reduce_max(LaneMask active, const WarpValues<T>& values, MemoryStats& stats) {
  GALA_ASSERT(active != 0);
  bool first = true;
  T best{};
  for (int i = 0; i < kWarpSize; ++i) {
    if (!((active >> i) & 1u)) continue;
    if (first || values[i] > best) {
      best = values[i];
      first = false;
    }
  }
  stats.shuffle_ops += 1;
  stats.register_ops += static_cast<std::uint64_t>(std::popcount(active));
  charge_simt_issue(active, stats);
  return best;
}

template <typename T>
T reduce_add(LaneMask active, const WarpValues<T>& values, MemoryStats& stats) {
  T sum{};
  for (int i = 0; i < kWarpSize; ++i) {
    if ((active >> i) & 1u) sum += values[i];
  }
  stats.shuffle_ops += 1;
  stats.register_ops += static_cast<std::uint64_t>(std::popcount(active));
  charge_simt_issue(active, stats);
  return sum;
}

/// __ballot_sync.
inline LaneMask ballot(LaneMask active, const WarpValues<bool>& preds, MemoryStats& stats) {
  LaneMask m = 0;
  for (int i = 0; i < kWarpSize; ++i) {
    if (((active >> i) & 1u) && preds[i]) m |= (1u << i);
  }
  stats.shuffle_ops += 1;
  charge_simt_issue(active, stats);
  return m;
}

/// __shfl_sync: every active lane reads lane `src_lane`'s value.
template <typename T>
T shfl(LaneMask active, const WarpValues<T>& values, int src_lane, MemoryStats& stats) {
  GALA_ASSERT(src_lane >= 0 && src_lane < kWarpSize);
  GALA_ASSERT((active >> src_lane) & 1u);
  stats.shuffle_ops += 1;
  charge_simt_issue(active, stats);
  return values[src_lane];
}

/// Models the coalescing of a warp gather: per-lane addresses within the
/// same 32-element segment coalesce into one memory transaction (the
/// 128-byte-line rule for 4-byte elements). Returns the transaction count
/// and records it in the stats diagnostics. The per-access latency is
/// charged separately by the caller via global_reads.
template <typename Addr>
int gather_transactions(LaneMask active, const WarpValues<Addr>& addresses, MemoryStats& stats) {
  std::uint64_t segments_seen[kWarpSize];
  int count = 0;
  for (int i = 0; i < kWarpSize; ++i) {
    if (!((active >> i) & 1u)) continue;
    const std::uint64_t segment = static_cast<std::uint64_t>(addresses[i]) / kWarpSize;
    bool seen = false;
    for (int j = 0; j < count; ++j) {
      if (segments_seen[j] == segment) {
        seen = true;
        break;
      }
    }
    if (!seen) segments_seen[count++] = segment;
  }
  stats.gather_requests += 1;
  stats.gather_transactions += static_cast<std::uint64_t>(count);
  charge_simt_issue(active, stats);
  return count;
}

/// Models the bank conflicts of one warp-wide shared-memory access. Shared
/// memory has 32 banks, 4 bytes wide; `word_addrs` are per-lane 4-byte word
/// indices (byte offset / 4). Lanes reading the *same* word broadcast in one
/// wave; distinct words mapping to the same bank serialise. Returns the wave
/// count (1 = conflict-free, 32 = full 32-way conflict) and records it in the
/// stats diagnostics. The per-access latency is charged separately by the
/// caller via shared_reads/shared_writes.
template <typename Addr>
int shared_transactions(LaneMask active, const WarpValues<Addr>& word_addrs, MemoryStats& stats) {
  std::uint64_t words_seen[kWarpSize];
  int distinct = 0;
  int per_bank[kWarpSize] = {};
  int waves = 0;
  for (int i = 0; i < kWarpSize; ++i) {
    if (!((active >> i) & 1u)) continue;
    const std::uint64_t word = static_cast<std::uint64_t>(word_addrs[i]);
    bool seen = false;
    for (int j = 0; j < distinct; ++j) {
      if (words_seen[j] == word) {
        seen = true;
        break;
      }
    }
    if (seen) continue;  // same-word access broadcasts
    words_seen[distinct++] = word;
    const int bank = static_cast<int>(word % kWarpSize);
    waves = std::max(waves, ++per_bank[bank]);
  }
  if (active == 0) return 0;
  stats.shared_requests += 1;
  stats.shared_waves += static_cast<std::uint64_t>(waves);
  charge_simt_issue(active, stats);
  return waves;
}

/// Lowest set lane of a mask (leader election), -1 for empty.
inline int leader_lane(LaneMask mask) {
  return mask == 0 ? -1 : std::countr_zero(mask);
}

/// Mask with the low `n` lanes active.
inline LaneMask first_lanes(int n) {
  GALA_ASSERT(n >= 0 && n <= kWarpSize);
  return n == kWarpSize ? kFullMask : ((LaneMask{1} << n) - 1);
}

}  // namespace warp
}  // namespace gala::gpusim
