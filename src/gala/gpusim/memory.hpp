// Memory-hierarchy accounting and the latency cost model.
//
// The simulator cannot reproduce A100 wall-clock, so every kernel charges
// its memory traffic to per-level counters, and a calibrated cost model
// converts the traffic into "modeled cycles". The benches report modeled
// time as the primary series (the paper's figures are about traffic shape,
// which this reproduces exactly) next to host wall-clock.
//
// Default latencies follow published A100 microbenchmarks (Jia et al. /
// Citadel-style numbers): ~4 cycles register/ALU, ~30 cycles shared memory,
// ~400 cycles global (DRAM) access, atomics roughly 2x their level.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>

namespace gala::gpusim {

/// Traffic counters for one kernel execution (or one block; they add).
struct MemoryStats {
  /// Probe-length histogram bound: index i in [1, 16) counts lookups that
  /// took exactly i probes; the last bucket absorbs 16-and-longer chains.
  static constexpr std::size_t kProbeBuckets = 17;
  /// Hashtable load-factor histogram: one bucket per occupancy decile, the
  /// last for exactly-full tables.
  static constexpr std::size_t kOccupancyBuckets = 11;

  std::uint64_t global_reads = 0;
  std::uint64_t global_writes = 0;
  std::uint64_t global_atomics = 0;
  std::uint64_t shared_reads = 0;
  std::uint64_t shared_writes = 0;
  std::uint64_t shared_atomics = 0;
  std::uint64_t register_ops = 0;  ///< per-lane arithmetic / register traffic
  std::uint64_t shuffle_ops = 0;   ///< warp-collective invocations

  // Hashtable placement accounting (Fig. 4): where entries were *maintained*
  // (inserted) and where lookups landed.
  std::uint64_t ht_maintain_shared = 0;
  std::uint64_t ht_maintain_global = 0;
  std::uint64_t ht_access_shared = 0;
  std::uint64_t ht_access_global = 0;

  // Coalescing diagnostics for warp gathers (scattered per-lane global
  // loads, e.g. C[u] lookups): how many warp-gather requests were issued
  // and how many 32-element memory transactions they decomposed into
  // (1 per request = perfectly coalesced, up to 32 = fully scattered).
  std::uint64_t gather_requests = 0;
  std::uint64_t gather_transactions = 0;

  // Branch-divergence diagnostics: every warp-wide issue (collective or
  // gather) occupies 32 lane slots; only the active lanes do useful work.
  // active/slots is nvprof's warp_execution_efficiency.
  std::uint64_t simt_lane_slots = 0;
  std::uint64_t simt_active_lanes = 0;

  // Shared-memory bank-conflict diagnostics: warp-wide shared accesses
  // group into requests; each request serialises into >= 1 conflict-free
  // waves over the 32 4-byte-wide banks (same-word access broadcasts,
  // distinct words in one bank conflict). waves/requests == 1 means
  // conflict-free; a full 32-way conflict yields 32.
  std::uint64_t shared_requests = 0;
  std::uint64_t shared_waves = 0;

  // Hashtable probe/occupancy diagnostics (per-launch scope; device launches
  // merge them like every other counter).
  std::uint64_t ht_lookups = 0;  ///< locate() calls
  std::uint64_t ht_probes = 0;   ///< total probes across all lookups
  std::uint64_t ht_tables = 0;   ///< tables retired (occupancy samples)
  std::array<std::uint64_t, kProbeBuckets> ht_probe_hist{};
  std::array<std::uint64_t, kOccupancyBuckets> ht_occupancy_hist{};

  /// Records one hashtable lookup that needed `probes` bucket probes.
  void record_probe_chain(std::uint64_t probes) {
    ht_lookups += 1;
    ht_probes += probes;
    ht_probe_hist[std::min<std::uint64_t>(probes, kProbeBuckets - 1)] += 1;
  }

  /// Records the final load factor of a retired hashtable.
  void record_table_occupancy(std::uint64_t entries, std::uint64_t buckets) {
    if (buckets == 0) return;
    ht_tables += 1;
    const std::size_t decile = static_cast<std::size_t>(
        std::min<std::uint64_t>(kOccupancyBuckets - 1, entries * 10 / buckets));
    ht_occupancy_hist[decile] += 1;
  }

  MemoryStats& operator+=(const MemoryStats& o) {
    global_reads += o.global_reads;
    global_writes += o.global_writes;
    global_atomics += o.global_atomics;
    shared_reads += o.shared_reads;
    shared_writes += o.shared_writes;
    shared_atomics += o.shared_atomics;
    register_ops += o.register_ops;
    shuffle_ops += o.shuffle_ops;
    ht_maintain_shared += o.ht_maintain_shared;
    ht_maintain_global += o.ht_maintain_global;
    ht_access_shared += o.ht_access_shared;
    ht_access_global += o.ht_access_global;
    gather_requests += o.gather_requests;
    gather_transactions += o.gather_transactions;
    simt_lane_slots += o.simt_lane_slots;
    simt_active_lanes += o.simt_active_lanes;
    shared_requests += o.shared_requests;
    shared_waves += o.shared_waves;
    ht_lookups += o.ht_lookups;
    ht_probes += o.ht_probes;
    ht_tables += o.ht_tables;
    for (std::size_t i = 0; i < kProbeBuckets; ++i) ht_probe_hist[i] += o.ht_probe_hist[i];
    for (std::size_t i = 0; i < kOccupancyBuckets; ++i) {
      ht_occupancy_hist[i] += o.ht_occupancy_hist[i];
    }
    return *this;
  }

  /// Fraction of hashtable entries maintained in shared memory (Fig. 4).
  double maintenance_rate() const {
    const std::uint64_t total = ht_maintain_shared + ht_maintain_global;
    return total == 0 ? 0.0 : static_cast<double>(ht_maintain_shared) / static_cast<double>(total);
  }

  /// Mean memory transactions per warp gather (1 = perfectly coalesced).
  double transactions_per_gather() const {
    return gather_requests == 0
               ? 0.0
               : static_cast<double>(gather_transactions) / static_cast<double>(gather_requests);
  }

  /// Fraction of hashtable accesses that landed in shared memory (Fig. 4).
  double access_rate() const {
    const std::uint64_t total = ht_access_shared + ht_access_global;
    return total == 0 ? 0.0 : static_cast<double>(ht_access_shared) / static_cast<double>(total);
  }

  /// Achieved coalescing: ideal (1 transaction per gather) over actual.
  /// 1.0 = perfectly coalesced, 1/32 = fully scattered. The real-hardware
  /// analogue is nvprof's gld_efficiency.
  double coalescing_efficiency() const {
    return gather_transactions == 0
               ? 1.0
               : static_cast<double>(gather_requests) / static_cast<double>(gather_transactions);
  }

  /// Active-lane fraction over all warp-wide issues (nvprof
  /// warp_execution_efficiency). 1.0 when every issue had all 32 lanes on.
  double divergence_efficiency() const {
    return simt_lane_slots == 0
               ? 1.0
               : static_cast<double>(simt_active_lanes) / static_cast<double>(simt_lane_slots);
  }

  /// Serialisation factor of shared-memory requests (ncu-style
  /// shared_load_transactions_per_request). 1.0 = conflict-free.
  double bank_conflict_factor() const {
    return shared_requests == 0
               ? 1.0
               : static_cast<double>(shared_waves) / static_cast<double>(shared_requests);
  }

  /// Extra serialised waves beyond the conflict-free minimum.
  std::uint64_t bank_conflicts() const { return shared_waves - shared_requests; }

  /// Mean hashtable probe-chain length (1.0 = every lookup hit first try).
  double mean_probe_length() const {
    return ht_lookups == 0 ? 0.0
                           : static_cast<double>(ht_probes) / static_cast<double>(ht_lookups);
  }
};

/// Per-level decomposition of a kernel's modeled cycles (CostModel::breakdown).
/// Atomics are kept separate from plain traffic of their level so contention
/// cost is visible on its own.
struct CostBreakdown {
  double global = 0;     ///< plain global reads+writes
  double shared = 0;     ///< plain shared reads+writes
  double registers = 0;  ///< register/ALU ops
  double shuffle = 0;    ///< warp collectives
  double atomics = 0;    ///< global + shared atomics
  double total() const { return global + shared + registers + shuffle + atomics; }
};

/// Latency model converting traffic into modeled cycles.
struct CostModel {
  double register_cycles = 4;
  double shared_cycles = 30;
  double global_cycles = 400;
  double shared_atomic_cycles = 60;
  double global_atomic_cycles = 800;
  double shuffle_cycles = 8;

  /// Per-level cycle contributions; breakdown(s).total() == cycles(s).
  CostBreakdown breakdown(const MemoryStats& s) const {
    CostBreakdown b;
    b.global = static_cast<double>(s.global_reads + s.global_writes) * global_cycles;
    b.shared = static_cast<double>(s.shared_reads + s.shared_writes) * shared_cycles;
    b.registers = static_cast<double>(s.register_ops) * register_cycles;
    b.shuffle = static_cast<double>(s.shuffle_ops) * shuffle_cycles;
    b.atomics = static_cast<double>(s.global_atomics) * global_atomic_cycles +
                static_cast<double>(s.shared_atomics) * shared_atomic_cycles;
    return b;
  }

  double cycles(const MemoryStats& s) const { return breakdown(s).total(); }

  /// Modeled milliseconds assuming work spread over `parallel_lanes`
  /// concurrently-active lanes at `clock_ghz`.
  double milliseconds(const MemoryStats& s, double parallel_lanes = 108.0 * 2048.0,
                      double clock_ghz = 1.41) const {
    return cycles(s) / parallel_lanes / (clock_ghz * 1e6);
  }
};

}  // namespace gala::gpusim
