// The simulated device: a block scheduler over host threads.
//
// A "kernel launch" maps a range of block ids onto the host thread pool.
// Each block receives a BlockContext carrying its shared-memory arena and a
// MemoryStats sink; blocks run concurrently (real host parallelism), lanes
// within a block run warp-synchronously inside the kernel body. Launch
// results aggregate traffic, modeled cycles, and wall time.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <string>

#include "gala/common/thread_pool.hpp"
#include "gala/common/timer.hpp"
#include "gala/exec/workspace.hpp"
#include "gala/gpusim/memory.hpp"
#include "gala/gpusim/shared_memory.hpp"
#include "gala/telemetry/telemetry.hpp"

namespace gala::gpusim {

struct DeviceConfig {
  /// Host worker threads standing in for SMs. 0 = hardware concurrency.
  std::size_t num_workers = 0;
  /// Shared memory per block, bytes (A100 default opt-in max is 164 KiB;
  /// 48 KiB is the portable default).
  std::size_t shared_bytes_per_block = 48 * 1024;
  CostModel cost_model{};
  /// Concurrency assumed when converting traffic to modeled time. Defaults
  /// to full A100 occupancy; benches on scaled-down graphs scale this down
  /// proportionally (see DESIGN.md §4 "Modeled time").
  double model_parallel_lanes = 108.0 * 2048.0;
  double model_clock_ghz = 1.41;

  double modeled_ms(const MemoryStats& traffic) const {
    return cost_model.milliseconds(traffic, model_parallel_lanes, model_clock_ghz);
  }
};

/// Per-block execution context handed to kernel bodies.
struct BlockContext {
  std::size_t block_id = 0;
  SharedMemoryArena* shared = nullptr;
  MemoryStats* stats = nullptr;
  /// The launching device's workspace (null on an unbound device). Kernel
  /// bodies check per-block scratch out of it instead of keeping
  /// thread_local state.
  exec::Workspace* workspace = nullptr;
};

/// Aggregated result of one kernel launch.
struct LaunchStats {
  MemoryStats traffic;
  double wall_seconds = 0;
  double modeled_cycles = 0;

  LaunchStats& operator+=(const LaunchStats& o) {
    traffic += o.traffic;
    wall_seconds += o.wall_seconds;
    modeled_cycles += o.modeled_cycles;
    return *this;
  }
};

class Device {
 public:
  /// `workspace`, when given, backs per-launch transients (block arena
  /// pages, profiling buffers) with pooled slabs instead of heap
  /// allocations, and is handed to kernel bodies via BlockContext. It must
  /// outlive the device.
  explicit Device(const DeviceConfig& config = {}, exec::Workspace* workspace = nullptr);

  const DeviceConfig& config() const { return config_; }
  exec::Workspace* workspace() const { return workspace_; }

  /// Launches `num_blocks` blocks of `body`. Blocks are distributed over the
  /// pool; each worker reuses one arena (reset between blocks). Returns the
  /// aggregated traffic/cost of the launch. When the global tracer is
  /// enabled, emits one "kernel" span named `name` carrying the launch's
  /// MemoryStats snapshot and modeled-cycle breakdown.
  LaunchStats launch(std::size_t num_blocks, const std::function<void(BlockContext&)>& body,
                     std::string_view name = "kernel") const;

  /// Sequential launch on the calling thread (deterministic debugging and
  /// per-iteration accounting without pool scheduling noise).
  LaunchStats launch_sequential(std::size_t num_blocks,
                                const std::function<void(BlockContext&)>& body,
                                std::string_view name = "kernel") const;

 private:
  DeviceConfig config_;
  ThreadPool* pool_;               // not owned; the process-global pool
  exec::Workspace* workspace_;     // not owned; null = heap-backed transients
};

/// Attaches a MemoryStats snapshot to an open span, and — when `model` is
/// given — the per-level modeled-cycle breakdown (CostModel::breakdown).
/// No-op when the span is inactive.
void attach_traffic(telemetry::ScopedSpan& span, const MemoryStats& stats,
                    const CostModel* model = nullptr);

}  // namespace gala::gpusim
