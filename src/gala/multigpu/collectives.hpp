// Simulated NCCL collectives over partition threads (paper §4.3).
//
// P simulated devices run on P host threads; the collectives exchange state
// through shared staging buffers with barrier synchronisation (so they are
// *functionally* real), and every call is charged to an alpha-beta
// communication cost model
//     t = alpha + bytes_on_wire / beta
// per device, which is what the dense-vs-sparse trade-off depends on. Byte
// counts follow NCCL ring-collective conventions: AllGather and AllReduce
// move ~(P-1)/P of the full payload per device per direction; we charge the
// canonical full-payload volume for clarity (documented in DESIGN.md).
#pragma once

#include <barrier>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <span>
#include <vector>

#include "gala/common/error.hpp"
#include "gala/common/types.hpp"

namespace gala::multigpu {

struct CommCostModel {
  double alpha_us = 5.0;       ///< per-collective latency, microseconds
  double beta_gbps = 25.0;     ///< effective per-link bandwidth, GB/s

  double microseconds(std::size_t bytes) const {
    return alpha_us + static_cast<double>(bytes) / (beta_gbps * 1e3);  // bytes/GBps = ns
  }
};

/// Per-device communication accounting.
struct CommStats {
  std::uint64_t collectives = 0;
  std::uint64_t bytes = 0;
  double modeled_us = 0;

  CommStats& operator+=(const CommStats& o) {
    collectives += o.collectives;
    bytes += o.bytes;
    modeled_us += o.modeled_us;
    return *this;
  }
};

/// One communicator shared by all participants (like an ncclComm_t set).
/// Methods are *collective*: every rank must call them in the same order.
class Communicator {
 public:
  Communicator(std::size_t num_ranks, CommCostModel cost = {});

  std::size_t num_ranks() const { return num_ranks_; }

  /// ncclAllGather of variable-size per-rank contributions. Each rank passes
  /// its local chunk; returns the concatenation in rank order (identical on
  /// every rank).
  template <typename T>
  std::vector<T> all_gather_v(std::size_t rank, std::span<const T> local, CommStats& stats) {
    auto bytes_of = [](std::size_t count) { return count * sizeof(T); };
    // Stage the contribution.
    {
      std::lock_guard lock(mutex_);
      if (staging_.size() != num_ranks_) staging_.resize(num_ranks_);
      staging_[rank].assign(reinterpret_cast<const std::byte*>(local.data()),
                            reinterpret_cast<const std::byte*>(local.data()) + bytes_of(local.size()));
    }
    barrier_.arrive_and_wait();
    std::vector<T> out;
    std::size_t total_bytes = 0;
    for (const auto& chunk : staging_) total_bytes += chunk.size();
    out.resize(total_bytes / sizeof(T));
    std::size_t off = 0;
    for (const auto& chunk : staging_) {
      std::memcpy(reinterpret_cast<std::byte*>(out.data()) + off, chunk.data(), chunk.size());
      off += chunk.size();
    }
    stats.collectives += 1;
    stats.bytes += total_bytes;
    stats.modeled_us += cost_.microseconds(total_bytes);
    barrier_.arrive_and_wait();  // staging reusable after everyone copied out
    return out;
  }

  /// ncclAllReduce(sum) over a double vector (all ranks same length).
  void all_reduce_sum(std::size_t rank, std::span<double> data, CommStats& stats);

  /// ncclAllReduce(min) over a single scalar.
  double all_reduce_min(std::size_t rank, double value, CommStats& stats);

  /// Plain barrier (used around iteration boundaries).
  void barrier() { barrier_.arrive_and_wait(); }

 private:
  std::size_t num_ranks_;
  CommCostModel cost_;
  std::barrier<> barrier_;
  std::mutex mutex_;
  std::vector<std::vector<std::byte>> staging_;
  std::vector<double> reduce_buffer_;
  std::vector<double> scalar_buffer_;
};

}  // namespace gala::multigpu
