// Simulated NCCL collectives over partition threads (paper §4.3).
//
// P simulated devices run on P host threads; the collectives exchange state
// through shared staging buffers with barrier synchronisation (so they are
// *functionally* real), and every call is charged to an alpha-beta
// communication cost model
//     t = alpha + bytes_on_wire / beta
// per device, which is what the dense-vs-sparse trade-off depends on. Byte
// counts follow NCCL ring-collective conventions: AllGather and AllReduce
// move ~(P-1)/P of the full payload per device per direction; we charge the
// canonical full-payload volume for clarity (documented in DESIGN.md).
//
// Fault semantics (gala::resilience): every all_gather_v contribution
// carries an out-of-band FNV-1a checksum and a status flag. An armed fault
// plan can drop a rank's chunk, stall it past the collective deadline, or
// corrupt its payload (caught by the checksum). Detection is symmetric: all
// ranks inspect the same staged state after the exchange barrier and throw
// an identical CollectiveFault, so retry loops above stay barrier-aligned.
// The fault is raised only after the round's second barrier — every rank
// has finished reading the staging buffers before any rank can retry and
// re-stage its slot.
// Checksums and flags ride outside the modeled wire format — CommStats byte
// accounting is unchanged.
//
// A rank that dies outside a collective calls abort(): it marks the
// communicator failed and drops out of the barrier (arrive_and_drop), so
// every rank still waiting is released and fails fast at its next
// collective entry instead of deadlocking.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "gala/common/error.hpp"
#include "gala/common/types.hpp"
#include "gala/resilience/fault_injection.hpp"

namespace gala::multigpu {

/// A collective failed (injected drop/timeout/corruption, or a peer rank
/// aborted). Retryable: the supervisor and the distributed engine's sync
/// fallback catch it.
class CollectiveFault : public resilience::TransientFault {
 public:
  using TransientFault::TransientFault;
};

struct CommCostModel {
  double alpha_us = 5.0;       ///< per-collective latency, microseconds
  double beta_gbps = 25.0;     ///< effective per-link bandwidth, GB/s

  double microseconds(std::size_t bytes) const {
    return alpha_us + static_cast<double>(bytes) / (beta_gbps * 1e3);  // bytes/GBps = ns
  }
};

/// Per-device communication accounting.
struct CommStats {
  std::uint64_t collectives = 0;
  std::uint64_t bytes = 0;
  double modeled_us = 0;

  CommStats& operator+=(const CommStats& o) {
    collectives += o.collectives;
    bytes += o.bytes;
    modeled_us += o.modeled_us;
    return *this;
  }
};

/// FNV-1a over a byte span — the sync-message integrity check.
inline std::uint64_t fnv1a(std::span<const std::byte> bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ULL;
  }
  return h;
}

/// One communicator shared by all participants (like an ncclComm_t set).
/// Methods are *collective*: every rank must call them in the same order.
class Communicator {
 public:
  Communicator(std::size_t num_ranks, CommCostModel cost = {});

  std::size_t num_ranks() const { return num_ranks_; }

  /// ncclAllGather of variable-size per-rank contributions, written into a
  /// caller-provided buffer (any vector-like type with resize()/data(), e.g.
  /// an exec::PooledVec staged across sync rounds). Each rank passes its
  /// local chunk; `out` receives the concatenation in rank order (identical
  /// on every rank). Throws CollectiveFault — identically on all ranks —
  /// when any contribution was dropped, timed out, or fails its checksum;
  /// the throw happens *before* `out` is touched, so retry loops can reuse
  /// the same buffer.
  template <typename T, typename OutVec>
  void all_gather_v_into(std::size_t rank, std::span<const T> local, CommStats& stats,
                         OutVec& out) {
    GALA_CHECK(rank < num_ranks_,
               "all_gather_v: rank " << rank << " out of range [0, " << num_ranks_ << ")");
    check_abort("all_gather_v");
    {
      std::lock_guard lock(mutex_);
      Chunk& c = staging_[rank];
      c.bytes.assign(reinterpret_cast<const std::byte*>(local.data()),
                     reinterpret_cast<const std::byte*>(local.data()) + local.size() * sizeof(T));
      c.status = ChunkStatus::Ok;
      c.checksum = fnv1a(c.bytes);
      if (resilience::FaultInjector::armed()) inject_gather_faults(rank, c);
    }
    barrier_.arrive_and_wait();
    // All staged writes happened-before this point; every rank scans the
    // same staged state, so every rank computes the same verdict. The
    // verdict must NOT throw before the second barrier: a rank that threw
    // early could retry and re-stage its slot while a laggard is still
    // reading it (and a re-staged clean chunk would even pass the laggard's
    // checksum, handing it a mixed-round payload).
    const std::string fault = verify_round("all_gather_v");
    if (fault.empty()) {
      std::size_t total_bytes = 0;
      for (const Chunk& c : staging_) total_bytes += c.bytes.size();
      out.resize(total_bytes / sizeof(T));
      std::size_t off = 0;
      for (const Chunk& c : staging_) {
        if (c.bytes.empty()) continue;  // empty contribution: data() may be null
        std::memcpy(reinterpret_cast<std::byte*>(out.data()) + off, c.bytes.data(),
                    c.bytes.size());
        off += c.bytes.size();
      }
      stats.collectives += 1;
      stats.bytes += total_bytes;
      stats.modeled_us += cost_.microseconds(total_bytes);
    }
    barrier_.arrive_and_wait();  // staging reusable: every rank done reading
    if (!fault.empty()) GALA_THROW(CollectiveFault, fault);
  }

  /// Convenience form returning a fresh vector.
  template <typename T>
  std::vector<T> all_gather_v(std::size_t rank, std::span<const T> local, CommStats& stats) {
    std::vector<T> out;
    all_gather_v_into<T>(rank, local, stats, out);
    return out;
  }

  /// ncclAllReduce(sum) over a double vector (all ranks same length).
  void all_reduce_sum(std::size_t rank, std::span<double> data, CommStats& stats);

  /// ncclAllReduce(min) over a single scalar.
  double all_reduce_min(std::size_t rank, double value, CommStats& stats);

  /// Plain barrier (used around iteration boundaries).
  void barrier() { barrier_.arrive_and_wait(); }

  /// Marks the communicator failed and drops this rank out of the barrier,
  /// releasing any rank still waiting. Call from a rank's exception handler
  /// before unwinding; every surviving rank throws CollectiveFault at its
  /// next collective entry.
  void abort(const std::string& reason);

  /// True once any rank aborted.
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

 private:
  enum class ChunkStatus : std::uint8_t { Ok, Dropped, TimedOut };

  /// One rank's staged contribution plus out-of-band integrity metadata
  /// (not part of the modeled wire bytes).
  struct Chunk {
    std::vector<std::byte> bytes;
    std::uint64_t checksum = 0;
    ChunkStatus status = ChunkStatus::Ok;
  };

  /// Applies armed collective fault rules to this rank's staged chunk.
  void inject_gather_faults(std::size_t rank, Chunk& chunk);

  /// Post-exchange integrity scan; returns the fault message for the first
  /// bad chunk (deterministic rank order, identical on every rank) or empty
  /// when the round is clean. Never throws: the caller must cross the
  /// round's final barrier before raising the fault, so no rank can retry
  /// and re-stage while a peer is still reading the staging buffers.
  std::string verify_round(const char* op);

  /// Throws CollectiveFault when a peer aborted the communicator.
  void check_abort(const char* op);

  std::size_t num_ranks_;
  CommCostModel cost_;
  std::barrier<> barrier_;
  std::mutex mutex_;
  std::vector<Chunk> staging_;
  std::vector<double> reduce_buffer_;
  std::vector<double> scalar_buffer_;
  std::atomic<bool> aborted_{false};
  std::string abort_reason_;
};

}  // namespace gala::multigpu
