// Simulated NCCL collectives over partition threads (paper §4.3).
//
// P simulated devices run on P host threads; the collectives exchange state
// through shared staging buffers with barrier synchronisation (so they are
// *functionally* real), and every call is charged to an alpha-beta
// communication cost model
//     t = alpha + bytes_on_wire / beta
// per device, which is what the dense-vs-sparse trade-off depends on.
//
// Byte-charging convention is explicit (CommCostModel::ring_convention):
//   - canonical (default): the full payload volume is charged — an
//     AllGather of N bytes total charges N, an AllReduce of a B-byte buffer
//     charges B. Simple, matches the wire figures in the iteration log.
//   - ring: NCCL ring-collective volumes — AllGather moves (P-1)/P of the
//     total per device, AllReduce (reduce-scatter + all-gather) moves
//     2·(P-1)/P of its payload per device. Closed forms are asserted in
//     multigpu_test.cpp; fig10 uses the ring convention throughout.
//
// Asynchronous double buffering: all_gather_v_into() has a split form —
// post_gather_v() stages this rank's contribution and *arrives* at the
// exchange barrier without waiting, returning a PendingGather handle;
// complete_gather_v() waits for the phase, verifies, copies out, and crosses
// the round's second barrier. Compute performed between the two calls
// overlaps the modeled exchange: the caller passes its modeled microseconds
// as `overlap_credit_us` and the charge splits into hidden time
// (min(cost, credit), accumulated in CommStats::hidden_us) and exposed wait
// (CommStats::wait_us()). The blocking form is post + complete with zero
// credit — byte accounting and fault semantics are identical.
//
// Fault semantics (gala::resilience): every all_gather_v contribution
// carries an out-of-band FNV-1a checksum and a status flag. An armed fault
// plan can drop a rank's chunk, stall it past the collective deadline, or
// corrupt its payload (caught by the checksum). Detection is symmetric: all
// ranks inspect the same staged state after the exchange barrier and throw
// an identical CollectiveFault, so retry loops above stay barrier-aligned.
// The fault is raised only after the round's second barrier — every rank
// has finished reading the staging buffers before any rank can retry and
// re-stage its slot. This holds for the posted form too: complete_gather_v
// crosses both barriers before throwing, so a retry loop around a
// post/complete pair is exactly as barrier-aligned as the blocking one.
// Checksums and flags ride outside the modeled wire format — CommStats byte
// accounting is unchanged.
//
// A rank that dies outside a collective calls abort(): it marks the
// communicator failed and drops out of the barrier (arrive_and_drop), so
// every rank still waiting is released and fails fast at its next
// collective entry instead of deadlocking. A rank that throws between post
// and complete abandons its pending phase; its abort() releases the peers
// blocked on the round's barriers.
#pragma once

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "gala/codec/delta_codec.hpp"
#include "gala/common/error.hpp"
#include "gala/common/types.hpp"
#include "gala/memtrace/memtrace.hpp"
#include "gala/resilience/fault_injection.hpp"

namespace gala::multigpu {

/// A collective failed (injected drop/timeout/corruption, a malformed
/// sparse-delta payload, or a peer rank aborted). Retryable: the supervisor
/// and the distributed engine's sync fallback catch it. An alias of the
/// shared codec's fault type — decode errors and collective errors are the
/// same failure domain to every retry loop, and the alias keeps them one
/// type now that the codec lives below this library.
using CollectiveFault = codec::CodecFault;

struct CommCostModel {
  double alpha_us = 5.0;       ///< per-collective latency, microseconds
  double beta_gbps = 25.0;     ///< effective per-link bandwidth, GB/s
  /// Charge NCCL ring-collective volumes instead of canonical full-payload
  /// volumes (see the header comment for the closed forms).
  bool ring_convention = false;

  double microseconds(std::size_t bytes) const {
    return alpha_us + static_cast<double>(bytes) / (beta_gbps * 1e3);  // bytes/GBps = ns
  }
};

/// Per-device communication accounting.
struct CommStats {
  std::uint64_t collectives = 0;
  std::uint64_t posted = 0;    ///< collectives completed through post/complete
  std::uint64_t bytes = 0;     ///< charged wire bytes (per ring_convention)
  double modeled_us = 0;       ///< full alpha-beta cost of every collective
  double hidden_us = 0;        ///< portion hidden behind overlapped compute

  /// Exposed communication time: what actually sits on the critical path.
  double wait_us() const { return modeled_us - hidden_us; }
  /// Fraction of the modeled communication time hidden by overlap.
  double overlap_ratio() const { return modeled_us > 0 ? hidden_us / modeled_us : 0.0; }

  CommStats& operator+=(const CommStats& o) {
    collectives += o.collectives;
    posted += o.posted;
    bytes += o.bytes;
    modeled_us += o.modeled_us;
    hidden_us += o.hidden_us;
    return *this;
  }
};

/// FNV-1a over a byte span — the sync-message integrity check. Shared with
/// the frame codec; re-exported here for the staging-checksum call sites.
using codec::fnv1a;

/// One communicator shared by all participants (like an ncclComm_t set).
/// Methods are *collective*: every rank must call them in the same order.
class Communicator {
 public:
  Communicator(std::size_t num_ranks, CommCostModel cost = {});

  std::size_t num_ranks() const { return num_ranks_; }

  /// Handle for an in-flight posted all-gather. Move-only; must be passed to
  /// complete_gather_v before the next collective on the same communicator.
  class PendingGather {
   public:
    PendingGather() = default;
    PendingGather(PendingGather&&) = default;
    PendingGather& operator=(PendingGather&&) = default;
    PendingGather(const PendingGather&) = delete;
    PendingGather& operator=(const PendingGather&) = delete;

    bool active() const { return token_.has_value(); }

   private:
    friend class Communicator;
    std::optional<std::barrier<>::arrival_token> token_;
  };

  /// Stages this rank's contribution and arrives at the exchange barrier
  /// *without waiting* — the "post" half of an asynchronous all-gather. The
  /// caller may compute between post and complete; every rank must complete
  /// before its next collective call.
  template <typename T>
  [[nodiscard]] PendingGather post_gather_v(std::size_t rank, std::span<const T> local) {
    GALA_CHECK(rank < num_ranks_,
               "post_gather_v: rank " << rank << " out of range [0, " << num_ranks_ << ")");
    check_abort("post_gather_v");
    // Staging copies are charged per rank (the caller's RankScope is this
    // rank's worker thread), outside the communicator lock.
    memtrace::charge("multigpu.comm_staging", local.size() * sizeof(T));
    {
      std::lock_guard lock(mutex_);
      Chunk& c = staging_[rank];
      c.bytes.assign(reinterpret_cast<const std::byte*>(local.data()),
                     reinterpret_cast<const std::byte*>(local.data()) + local.size() * sizeof(T));
      c.status = ChunkStatus::Ok;
      c.checksum = fnv1a(c.bytes);
      if (resilience::FaultInjector::armed()) inject_gather_faults(rank, c);
    }
    PendingGather pending;
    pending.token_.emplace(barrier_.arrive());
    return pending;
  }

  /// The "complete" half: waits for every rank's contribution, verifies the
  /// round, writes the rank-order concatenation into `out`, and crosses the
  /// round's second barrier. `overlap_credit_us` is the modeled time of the
  /// compute the caller performed since post_gather_v; min(cost, credit) of
  /// this collective's alpha-beta cost is recorded as hidden. Throws
  /// CollectiveFault — identically on all ranks, after both barriers — on a
  /// dropped/timed-out/corrupted contribution; `out` is untouched on fault.
  template <typename T, typename OutVec>
  void complete_gather_v(PendingGather&& pending, CommStats& stats, OutVec& out,
                         double overlap_credit_us = 0.0) {
    GALA_CHECK(pending.token_.has_value(), "complete_gather_v: no posted collective");
    barrier_.wait(std::move(*pending.token_));
    pending.token_.reset();
    finish_gather<T>(stats, out, overlap_credit_us, /*async=*/true);
  }

  /// ncclAllGather of variable-size per-rank contributions, written into a
  /// caller-provided buffer (any vector-like type with resize()/data(), e.g.
  /// an exec::PooledVec staged across sync rounds). Each rank passes its
  /// local chunk; `out` receives the concatenation in rank order (identical
  /// on every rank). Blocking form of post + complete with zero overlap
  /// credit; throws CollectiveFault — identically on all ranks — when any
  /// contribution was dropped, timed out, or fails its checksum; the throw
  /// happens *before* `out` is touched, so retry loops can reuse the same
  /// buffer.
  template <typename T, typename OutVec>
  void all_gather_v_into(std::size_t rank, std::span<const T> local, CommStats& stats,
                         OutVec& out) {
    PendingGather pending = post_gather_v<T>(rank, local);
    barrier_.wait(std::move(*pending.token_));
    pending.token_.reset();
    finish_gather<T>(stats, out, 0.0, /*async=*/false);
  }

  /// Convenience form returning a fresh vector.
  template <typename T>
  std::vector<T> all_gather_v(std::size_t rank, std::span<const T> local, CommStats& stats) {
    std::vector<T> out;
    all_gather_v_into<T>(rank, local, stats, out);
    return out;
  }

  /// ncclAllReduce(sum) over a double vector (all ranks same length).
  void all_reduce_sum(std::size_t rank, std::span<double> data, CommStats& stats);

  /// ncclAllReduce(min) over a single scalar.
  double all_reduce_min(std::size_t rank, double value, CommStats& stats);

  /// Plain barrier (used around iteration boundaries).
  void barrier() { barrier_.arrive_and_wait(); }

  /// Charged per-device bytes for an all-gather whose contributions total
  /// `total` bytes: ring moves (P-1)/P of the payload, canonical charges it
  /// all. Exposed for the closed-form accounting tests.
  std::size_t charged_gather_bytes(std::size_t total) const {
    return cost_.ring_convention ? total * (num_ranks_ - 1) / num_ranks_ : total;
  }
  /// Charged per-device bytes for an all-reduce over a `payload`-byte
  /// buffer: ring (reduce-scatter + all-gather) moves 2·(P-1)/P of it.
  std::size_t charged_reduce_bytes(std::size_t payload) const {
    return cost_.ring_convention ? 2 * payload * (num_ranks_ - 1) / num_ranks_ : payload;
  }

  /// Marks the communicator failed and drops this rank out of the barrier,
  /// releasing any rank still waiting. Call from a rank's exception handler
  /// before unwinding; every surviving rank throws CollectiveFault at its
  /// next collective entry.
  void abort(const std::string& reason);

  /// True once any rank aborted.
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

 private:
  enum class ChunkStatus : std::uint8_t { Ok, Dropped, TimedOut };

  /// One rank's staged contribution plus out-of-band integrity metadata
  /// (not part of the modeled wire bytes).
  struct Chunk {
    std::vector<std::byte> bytes;
    std::uint64_t checksum = 0;
    ChunkStatus status = ChunkStatus::Ok;
  };

  /// Shared tail of the blocking and posted gather forms: runs after the
  /// exchange-barrier wait. Verifies, copies out, charges stats, crosses the
  /// second barrier, and only then raises any fault.
  template <typename T, typename OutVec>
  void finish_gather(CommStats& stats, OutVec& out, double overlap_credit_us, bool async) {
    // All staged writes happened-before this point; every rank scans the
    // same staged state, so every rank computes the same verdict. The
    // verdict must NOT throw before the second barrier: a rank that threw
    // early could retry and re-stage its slot while a laggard is still
    // reading it (and a re-staged clean chunk would even pass the laggard's
    // checksum, handing it a mixed-round payload).
    const std::string fault = verify_round("all_gather_v");
    if (fault.empty()) {
      std::size_t total_bytes = 0;
      for (const Chunk& c : staging_) total_bytes += c.bytes.size();
      out.resize(total_bytes / sizeof(T));
      std::size_t off = 0;
      for (const Chunk& c : staging_) {
        if (c.bytes.empty()) continue;  // empty contribution: data() may be null
        std::memcpy(reinterpret_cast<std::byte*>(out.data()) + off, c.bytes.data(),
                    c.bytes.size());
        off += c.bytes.size();
      }
      const std::size_t charged = charged_gather_bytes(total_bytes);
      const double cost_us = cost_.microseconds(charged);
      stats.collectives += 1;
      if (async) stats.posted += 1;
      stats.bytes += charged;
      stats.modeled_us += cost_us;
      stats.hidden_us += std::min(cost_us, std::max(0.0, overlap_credit_us));
    }
    barrier_.arrive_and_wait();  // staging reusable: every rank done reading
    if (!fault.empty()) GALA_THROW(CollectiveFault, fault);
  }

  /// Applies armed collective fault rules to this rank's staged chunk.
  void inject_gather_faults(std::size_t rank, Chunk& chunk);

  /// Post-exchange integrity scan; returns the fault message for the first
  /// bad chunk (deterministic rank order, identical on every rank) or empty
  /// when the round is clean. Never throws: the caller must cross the
  /// round's final barrier before raising the fault, so no rank can retry
  /// and re-stage while a peer is still reading the staging buffers.
  std::string verify_round(const char* op);

  /// Throws CollectiveFault when a peer aborted the communicator.
  void check_abort(const char* op);

  std::size_t num_ranks_;
  CommCostModel cost_;
  std::barrier<> barrier_;
  std::mutex mutex_;
  std::vector<Chunk> staging_;
  std::vector<double> reduce_buffer_;
  std::vector<double> scalar_buffer_;
  std::atomic<bool> aborted_{false};
  std::string abort_reason_;
};

}  // namespace gala::multigpu
