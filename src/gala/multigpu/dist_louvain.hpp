// Distributed (multi-GPU) BSP Louvain — paper §4.3.
//
// The graph's vertices are 1-D partitioned across P simulated devices (edge-
// balanced contiguous ranges); each device runs on its own host thread,
// decides moves for its owned vertices with the same workload-aware kernels
// as the single-GPU engine, and synchronises per iteration through the
// simulated NCCL communicator:
//
//   - dense sync   : every rank contributes its whole owned slice of the
//                    community array (ncclAllGather of n ids) — cheap when
//                    many vertices move,
//   - sparse sync  : ranks exchange only (vertex, new community) delta
//                    records — cheap in late iterations when few move,
//   - adaptive     : per-iteration choice by comparing the two wire sizes
//                    (the paper's "threshold according to communication
//                    size").
//
// Community weights d_{C[v]}(v) are owner-computed: each rank scans only its
// owned moved vertices and ships (neighbour, delta) messages, so computation
// scales with 1/P while communication stays ~constant — reproducing the
// sub-linear scaling of Fig. 10.
//
// Two orthogonal extensions ride on that pipeline (both default-off, both
// bit-identical to the blocking/raw baseline):
//
//   - overlap  : each exchange is split into post (stage + arrive at the
//                first barrier) and complete (wait + verify). Between the
//                two, the rank works the iteration's *eligible set* — owned
//                vertices with no remote moved neighbour (superset of the
//                static local frontier; see docs/multigpu.md for why the
//                elision is exact) — staging their weight messages during
//                the community gather and running their next-iteration
//                prune+decide during the weight gather. Work done inside a
//                window is credited against the modeled collective cost
//                (CommStats::hidden_us).
//   - compress : sparse syncs ship codec frames (delta_codec.hpp) instead of
//                raw MoveRecords; the adaptive dense/sparse crossover and the
//                alpha-beta cost model are charged the real encoded size.
#pragma once

#include <vector>

#include "gala/core/bsp_louvain.hpp"
#include "gala/graph/partition.hpp"
#include "gala/multigpu/collectives.hpp"

namespace gala::multigpu {

enum class SyncMode { Dense, Sparse, Adaptive };
std::string to_string(SyncMode mode);

struct DistributedConfig {
  std::size_t num_gpus = 2;
  SyncMode sync = SyncMode::Adaptive;
  core::PruningStrategy pruning = core::PruningStrategy::ModularityGain;
  core::KernelMode kernel = core::KernelMode::Auto;
  core::HashTablePolicy hashtable = core::HashTablePolicy::Hierarchical;
  vid_t shuffle_degree_limit = 32;
  double resolution = 1.0;
  double theta = 1e-6;
  int max_iterations = 1000;
  std::uint64_t seed = 7;
  double pm_alpha = 0.25;
  CommCostModel comm_cost{};
  gpusim::DeviceConfig device{};
  /// Community/weight-sync attempts after a CollectiveFault before the run
  /// fails closed. A failed *sparse* sync degrades to dense for the retry
  /// (the dense payload needs no per-move records a corrupted rank could
  /// poison selectively, and its cost is the known worst case).
  int max_sync_retries = 2;
  /// Asynchronous double-buffered sync: post each exchange, overlap rank-
  /// local frontier work with the collective, then complete. Retries stay
  /// barrier-aligned on both buffers; staged window work is reused, not
  /// recomputed, on a retry. Results are bit-identical to blocking sync.
  bool overlap = false;
  /// Sparse syncs ship compressed delta frames; the adaptive crossover
  /// compares the real encoded payload against the dense size.
  bool compress = false;
  /// End-of-iteration hook, invoked on rank 0 after the modularity reduce
  /// with globally-reduced stats (active/moved are cluster-wide counts; the
  /// community span is the synced post-iteration replica). Setting it adds
  /// one slot to the per-iteration moved-count reduction — the global active
  /// count rides along — so runs without an observer ship exactly the
  /// baseline byte counts. Used by the algorithm-health layer
  /// (metrics/health.hpp); the active/moved flag spans are empty.
  core::IterationCallback on_iteration;
};

/// Per-device accounting for the Fig. 10(b) breakdown.
struct DeviceTimeline {
  gpusim::MemoryStats traffic;
  double compute_modeled_ms = 0;
  CommStats comm;
  /// The rank's workspace counters at run end (pool reuse across the rank's
  /// arena pages, hash scratch, and sync staging buffers).
  exec::WorkspaceStats workspace;
  /// Exposed (un-hidden) communication time on the rank's critical path.
  /// With overlap off hidden_us is zero, so this equals the full cost.
  double comm_modeled_ms() const { return comm.wait_us() / 1e3; }
  /// Full modeled collective cost, ignoring overlap hiding.
  double comm_full_modeled_ms() const { return comm.modeled_us / 1e3; }
  double total_modeled_ms() const { return compute_modeled_ms + comm_modeled_ms(); }
};

struct DistIterationStats {
  vid_t moved = 0;
  bool sparse_sync = false;
  std::uint64_t sync_bytes = 0;  ///< community-sync wire payload this iteration
  /// What the sparse payload would cost as raw MoveRecords. Equal to
  /// sync_bytes when compression is off (or the sync went dense); the gap
  /// is the bytes the codec saved (framing overhead can make it negative
  /// for a handful of movers).
  std::uint64_t sync_raw_bytes = 0;
  wt_t modularity = 0;
  wt_t delta_q = 0;
  /// True when a sparse sync failed this iteration and the dense fallback
  /// completed it (graceful degradation, visible in the run report).
  bool recovered_dense = false;
};

struct DistributedResult {
  std::vector<cid_t> community;
  wt_t modularity = 0;
  int iterations = 0;
  double wall_seconds = 0;
  std::vector<DeviceTimeline> devices;
  std::vector<DistIterationStats> iteration_log;

  /// Modeled end-to-end time: the slowest device's compute + comm.
  double modeled_ms() const {
    double worst = 0;
    for (const auto& d : devices) worst = std::max(worst, d.total_modeled_ms());
    return worst;
  }
  double max_compute_modeled_ms() const {
    double worst = 0;
    for (const auto& d : devices) worst = std::max(worst, d.compute_modeled_ms);
    return worst;
  }
  double max_comm_modeled_ms() const {
    double worst = 0;
    for (const auto& d : devices) worst = std::max(worst, d.comm_modeled_ms());
    return worst;
  }
};

/// Runs phase 1 of round 1 across `config.num_gpus` simulated devices.
DistributedResult distributed_phase1(const graph::Graph& g, const DistributedConfig& config);

/// Full multi-level pipeline with every phase-1 round distributed
/// (aggregation is replicated — it is O(E) once per level and not the
/// bottleneck the paper optimises).
struct DistributedFullResult {
  std::vector<cid_t> assignment;  ///< dense ids per original vertex
  wt_t modularity = 0;
  vid_t num_communities = 0;
  int levels = 0;
  double modeled_ms = 0;  ///< sum over levels of the slowest device's time
  double wall_seconds = 0;
};

DistributedFullResult distributed_louvain(const graph::Graph& g,
                                          const DistributedConfig& config,
                                          double level_theta = 1e-6, int max_levels = 30);

}  // namespace gala::multigpu
