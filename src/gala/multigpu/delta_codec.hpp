// Thin re-export of the sparse-delta wire codec, which now lives in
// gala::codec (gala/codec/delta_codec.hpp) so it can be shared beyond the
// distributed engine. Format, preconditions, and fault semantics are
// documented there; the wire format is unchanged by the move. CollectiveFault
// (collectives.hpp) aliases codec::CodecFault, so decode failures still land
// in the sync path's existing catch sites.
#pragma once

#include "gala/codec/delta_codec.hpp"

namespace gala::multigpu {

using codec::MoveRecord;

using codec::decode_moves;
using codec::encode_moves;

}  // namespace gala::multigpu
