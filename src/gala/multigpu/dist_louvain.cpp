#include "gala/multigpu/dist_louvain.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <string_view>
#include <thread>

#include "gala/common/timer.hpp"
#include "gala/core/aggregation.hpp"
#include "gala/core/modularity.hpp"
#include "gala/telemetry/telemetry.hpp"

namespace gala::multigpu {
namespace {

/// Sparse-sync wire record: one moved vertex.
struct MoveRecord {
  vid_t vertex;
  cid_t community;
};

/// Owner-computed weight-update message: "add delta to d_{C[x]}(x)".
struct WeightMsg {
  vid_t target;
  wt_t delta;
};

/// State owned by one rank. Community-level arrays are full replicas (kept
/// identical by the sync); weight_ is valid for owned vertices only.
struct RankState {
  graph::VertexRange range;
  std::vector<cid_t> comm;
  std::vector<cid_t> next_comm;
  std::vector<wt_t> comm_total;
  std::vector<vid_t> comm_size;
  std::vector<wt_t> weight;
  std::vector<std::uint8_t> prev_moved;
  std::vector<std::uint8_t> moved;
  std::vector<std::uint8_t> comm_changed;
  std::vector<std::uint8_t> active;
  std::vector<core::Decision> decisions;
  DeviceTimeline timeline;
};

}  // namespace

std::string to_string(SyncMode mode) {
  switch (mode) {
    case SyncMode::Dense:
      return "dense";
    case SyncMode::Sparse:
      return "sparse";
    case SyncMode::Adaptive:
      return "adaptive";
  }
  return "?";
}

DistributedResult distributed_phase1(const graph::Graph& g, const DistributedConfig& config) {
  GALA_CHECK(config.num_gpus >= 1, "need at least one device");
  GALA_CHECK(g.total_weight() > 0, "graph has no edge weight");
  const vid_t n = g.num_vertices();
  const std::size_t P = config.num_gpus;
  const auto ranges = graph::partition_by_edges(g, P);

  Communicator comm_world(P, config.comm_cost);
  std::vector<RankState> ranks(P);
  DistributedResult result;
  result.iteration_log.reserve(64);
  std::mutex log_mutex;

  wt_t sum_self_loops = 0;
  for (vid_t v = 0; v < n; ++v) sum_self_loops += g.self_loop(v);

  Timer wall_timer;

  auto rank_main = [&](std::size_t rank) {
    RankState& st = ranks[rank];
    st.range = ranges[rank];
    st.comm.resize(n);
    st.next_comm.resize(n);
    st.comm_total.resize(n);
    st.comm_size.assign(n, 1);
    st.weight.assign(n, 0);
    st.prev_moved.assign(n, 0);
    st.moved.assign(n, 0);
    st.comm_changed.assign(n, 0);
    st.active.assign(n, 0);
    st.decisions.resize(n);
    for (vid_t v = 0; v < n; ++v) {
      st.comm[v] = v;
      st.comm_total[v] = g.degree(v);
    }

    // Per-rank execution context: each simulated device owns a private
    // pooled workspace, so the arena pages, hash scratch, and every sync
    // staging buffer below are recycled across the rank's iterations
    // without cross-rank allocator contention.
    exec::ExecutionContext ctx(config.device, config.seed);
    exec::Workspace& ws = ctx.workspace();
    auto arena_pages =
        ws.take<std::byte>(config.device.shared_bytes_per_block, "gpusim.shared_arena");
    gpusim::SharedMemoryArena arena(arena_pages.span());
    core::HashScratch hash_scratch(ws);
    const core::DecideDispatch dispatch{config.kernel, config.hashtable,
                                        config.shuffle_degree_limit};
    const std::uint64_t salt = splitmix64(config.seed ^ 0xabcdef0123456789ULL);

    // Sync staging, reused across every iteration's collective rounds.
    exec::PooledVec<MoveRecord> local_moves(ws, "multigpu.local_moves");
    exec::PooledVec<MoveRecord> recv_moves(ws, "multigpu.recv_moves");
    exec::PooledVec<cid_t> recv_slices(ws, "multigpu.recv_slices");
    exec::PooledVec<WeightMsg> out_msgs(ws, "multigpu.weight_msgs");
    exec::PooledVec<WeightMsg> recv_msgs(ws, "multigpu.recv_msgs");

    // Iteration-start modularity of the singleton partition.
    wt_t q;
    {
      wt_t sq = 0;
      for (vid_t c = 0; c < n; ++c) {
        const wt_t f = st.comm_total[c] / g.two_m();
        sq += f * f;
      }
      q = 2 * sum_self_loops / g.two_m() - config.resolution * sq;
    }
    wt_t min_total = *std::min_element(st.comm_total.begin(), st.comm_total.end());

    for (int iter = 0; iter < config.max_iterations; ++iter) {
      // --- 1. Pruning over the owned range only. -----------------------
      const core::PruningContext prune_ctx{&g,
                                           st.comm,
                                           st.weight,
                                           st.comm_total,
                                           min_total,
                                           g.two_m(),
                                           st.prev_moved,
                                           st.comm_changed,
                                           iter,
                                           config.resolution};
      const std::uint64_t pm_base = splitmix64(config.seed ^ (0x5851f42d4c957f2dULL * iter));
      for (vid_t v = st.range.begin; v < st.range.end; ++v) {
        st.active[v] =
            core::is_inactive(config.pruning, prune_ctx, v, config.pm_alpha, pm_base) ? 0 : 1;
      }

      // --- 2. DecideAndMove for owned active vertices. ------------------
      // A fault here (injected scratch exhaustion after the in-kernel
      // fallback, or any other error) is rank-local, so it cannot throw
      // directly without deadlocking peers at the next barrier. Instead it
      // is captured and piggybacked on the moved-count reduction below, so
      // every rank learns of it at the same collective and throws together.
      std::string decide_error;
      const core::DecideInput input{&g, st.comm, st.comm_total, g.two_m(), config.resolution};
      try {
        telemetry::ScopedSpan decide_span(telemetry::Tracer::global(), "decide", "multigpu");
        gpusim::MemoryStats stats;
        for (vid_t v = st.range.begin; v < st.range.end; ++v) {
          if (!st.active[v]) continue;
          st.decisions[v] =
              core::decide_vertex(input, v, dispatch, arena, hash_scratch, salt, stats);
        }
        st.timeline.traffic += stats;
        if (decide_span.active()) {
          decide_span.arg("rank", static_cast<double>(rank));
          decide_span.arg("iteration", static_cast<double>(iter));
          gpusim::attach_traffic(decide_span, stats, &config.device.cost_model);
        }
      } catch (const Error& e) {
        decide_error = e.what();
      }

      // Owned moves under the shared guard.
      local_moves.clear();
      if (decide_error.empty()) {
        for (vid_t v = st.range.begin; v < st.range.end; ++v) {
          const cid_t next =
              st.active[v] ? core::apply_move_guard(st.decisions[v], st.comm[v], st.comm_size)
                           : st.comm[v];
          if (next != st.comm[v]) local_moves.push_back({v, next});
        }
      }

      // --- 3. Community sync: dense vs sparse (§4.3). -------------------
      double moved_total_d = static_cast<double>(local_moves.size());
      {
        double buf[2] = {moved_total_d, decide_error.empty() ? 0.0 : 1.0};
        comm_world.all_reduce_sum(rank, std::span<double>(buf, 2), st.timeline.comm);
        moved_total_d = buf[0];
        if (buf[1] > 0) {
          // Symmetric fail-closed: every rank throws after the same
          // collective, so nobody is left waiting at a barrier.
          if (!decide_error.empty()) {
            GALA_THROW(CollectiveFault,
                       "decide phase failed on rank " << rank << ": " << decide_error);
          }
          GALA_THROW(CollectiveFault, "decide phase failed on a peer rank");
        }
      }
      const auto moved_total = static_cast<vid_t>(moved_total_d);
      const std::uint64_t sparse_bytes = static_cast<std::uint64_t>(moved_total) * sizeof(MoveRecord);
      const std::uint64_t dense_bytes = static_cast<std::uint64_t>(n) * sizeof(cid_t);
      const bool use_sparse = config.sync == SyncMode::Sparse ||
                              (config.sync == SyncMode::Adaptive && sparse_bytes < dense_bytes);

      // Retry loop around the sync: a CollectiveFault is thrown identically
      // on every rank, so all ranks take the same branch below and stay
      // barrier-aligned. A failed sparse sync degrades to dense for the
      // retry; a failed dense sync retries as-is. Retries exhausted → the
      // fault propagates (fail closed).
      bool sparse_now = use_sparse;
      bool recovered_dense = false;
      for (int sync_attempt = 0;; ++sync_attempt) {
        try {
          std::copy(st.comm.begin(), st.comm.end(), st.next_comm.begin());
          // Bytes this rank ships into the all-gather (sum over ranks = wire
          // total, matching the iteration log's sparse/dense payload figures).
          const std::uint64_t shipped_bytes =
              sparse_now ? local_moves.size() * sizeof(MoveRecord)
                         : st.range.size() * sizeof(cid_t);
          telemetry::ScopedSpan sync_span(telemetry::Tracer::global(),
                                          sparse_now ? "sync_sparse" : "sync_dense", "multigpu");
          if (sparse_now) {
            comm_world.all_gather_v_into<MoveRecord>(rank, local_moves.span(), st.timeline.comm,
                                                     recv_moves);
            for (const MoveRecord& m : recv_moves) st.next_comm[m.vertex] = m.community;
          } else {
            // Dense: every rank ships its whole owned slice of next_comm.
            for (const MoveRecord& m : local_moves) st.next_comm[m.vertex] = m.community;
            comm_world.all_gather_v_into<cid_t>(
                rank,
                std::span<const cid_t>(st.next_comm.data() + st.range.begin, st.range.size()),
                st.timeline.comm, recv_slices);
            GALA_ASSERT(recv_slices.size() == n);
            std::copy(recv_slices.begin(), recv_slices.end(), st.next_comm.begin());
          }
          if (sync_span.active()) {
            sync_span.arg("rank", static_cast<double>(rank));
            sync_span.arg("iteration", static_cast<double>(iter));
            sync_span.arg("bytes", static_cast<double>(shipped_bytes));
            sync_span.arg("moved_total", moved_total_d);
            telemetry::Registry::global().counter("multigpu.sync_bytes").add(shipped_bytes);
          }
          break;
        } catch (const CollectiveFault&) {
          if (sync_attempt >= config.max_sync_retries) throw;
          if (sparse_now) {
            sparse_now = false;
            recovered_dense = true;
            if (rank == 0) {
              telemetry::Registry::global().counter("multigpu.sync_fallback_dense").add(1);
            }
          }
        }
      }

      vid_t moved_check = 0;
      for (vid_t v = 0; v < n; ++v) {
        st.moved[v] = st.next_comm[v] != st.comm[v] ? 1 : 0;
        moved_check += st.moved[v];
      }
      GALA_ASSERT(moved_check == moved_total);

      // --- 4. Owner-computed weight update (§3.5, distributed). ---------
      out_msgs.clear();
      {
        gpusim::MemoryStats stats;
        for (const MoveRecord& m : local_moves) {
          const vid_t u = m.vertex;
          const cid_t old_c = st.comm[u];
          const cid_t new_c = m.community;
          auto nbrs = g.neighbors(u);
          auto ws = g.weights(u);
          wt_t own = 0;
          for (std::size_t i = 0; i < nbrs.size(); ++i) {
            const vid_t x = nbrs[i];
            stats.global_reads += 2;
            if (x == u) continue;
            if (st.next_comm[x] == new_c) own += ws[i];
            if (!st.moved[x]) {
              const cid_t cx = st.comm[x];
              wt_t d = 0;
              if (cx == old_c) d -= ws[i];
              if (cx == new_c) d += ws[i];
              if (d != 0) {
                out_msgs.push_back({x, d});
                stats.global_atomics += 1;
              }
            }
          }
          st.weight[u] = own;
          stats.global_writes += 1;
        }
        st.timeline.traffic += stats;
      }
      for (int wsync_attempt = 0;; ++wsync_attempt) {
        telemetry::ScopedSpan wsync_span(telemetry::Tracer::global(), "sync_weights", "multigpu");
        try {
          comm_world.all_gather_v_into<WeightMsg>(rank, out_msgs.span(), st.timeline.comm,
                                                  recv_msgs);
        } catch (const CollectiveFault&) {
          // The gather throws before any message is applied, so a straight
          // re-gather is safe (and symmetric across ranks).
          if (wsync_attempt >= config.max_sync_retries) throw;
          continue;
        }
        for (const WeightMsg& msg : recv_msgs) {
          if (msg.target >= st.range.begin && msg.target < st.range.end && !st.moved[msg.target]) {
            st.weight[msg.target] += msg.delta;
            st.timeline.traffic.global_reads += 1;
            st.timeline.traffic.global_writes += 1;
          }
        }
        if (wsync_span.active()) {
          const std::uint64_t shipped = out_msgs.size() * sizeof(WeightMsg);
          wsync_span.arg("rank", static_cast<double>(rank));
          wsync_span.arg("iteration", static_cast<double>(iter));
          wsync_span.arg("bytes", static_cast<double>(shipped));
          telemetry::Registry::global().counter("multigpu.weight_sync_bytes").add(shipped);
        }
        break;
      }

      // --- 5. Apply + bookkeeping on the replica. ------------------------
      std::fill(st.comm_changed.begin(), st.comm_changed.end(), 0);
      for (vid_t v = 0; v < n; ++v) {
        if (!st.moved[v]) continue;
        const cid_t old_c = st.comm[v];
        const cid_t new_c = st.next_comm[v];
        st.comm_total[old_c] -= g.degree(v);
        st.comm_total[new_c] += g.degree(v);
        --st.comm_size[old_c];
        ++st.comm_size[new_c];
        st.comm_changed[old_c] = 1;
        st.comm_changed[new_c] = 1;
      }
      st.comm.swap(st.next_comm);
      st.prev_moved.assign(st.moved.begin(), st.moved.end());
      st.timeline.traffic.global_reads += st.range.size();

      min_total = std::numeric_limits<wt_t>::max();
      for (vid_t c = 0; c < n; ++c) {
        if (st.comm_size[c] > 0) min_total = std::min(min_total, st.comm_total[c]);
      }

      // --- 6. Modularity: owned internal partial + replicated totals. ---
      wt_t internal_partial = 0;
      for (vid_t v = st.range.begin; v < st.range.end; ++v) {
        internal_partial += st.weight[v] + 2 * g.self_loop(v);
      }
      {
        double buf[1] = {internal_partial};
        comm_world.all_reduce_sum(rank, std::span<double>(buf, 1), st.timeline.comm);
        internal_partial = buf[0];
      }
      wt_t sq = 0;
      for (vid_t c = 0; c < n; ++c) {
        if (st.comm_size[c] > 0) {
          const wt_t f = st.comm_total[c] / g.two_m();
          sq += f * f;
        }
      }
      const wt_t next_q = internal_partial / g.two_m() - config.resolution * sq;
      const wt_t dq = next_q - q;
      q = next_q;

      if (rank == 0) {
        std::lock_guard lock(log_mutex);
        result.iteration_log.push_back({moved_total, sparse_now,
                                        sparse_now ? sparse_bytes : dense_bytes, q, dq,
                                        recovered_dense});
      }
      comm_world.barrier();  // iteration_log visible before anyone proceeds

      if (moved_total == 0 || dq < config.theta) break;
    }

    st.timeline.compute_modeled_ms =
        config.device.modeled_ms(st.timeline.traffic);
    st.timeline.workspace = ws.stats();
  };

  // Supervision net: a rank that unwinds past rank_main stores its
  // exception and aborts the communicator (arrive_and_drop), so peers
  // blocked at a barrier are released and fail at their next collective
  // entry instead of deadlocking. After the join the most informative
  // failure is rethrown as the run's structured error.
  std::vector<std::exception_ptr> rank_errors(P);
  auto rank_entry = [&](std::size_t rank) {
    try {
      rank_main(rank);
    } catch (const std::exception& e) {
      rank_errors[rank] = std::current_exception();
      comm_world.abort(e.what());
    } catch (...) {
      rank_errors[rank] = std::current_exception();
      comm_world.abort("unknown error");
    }
  };

  if (P == 1) {
    rank_entry(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(P);
    for (std::size_t r = 0; r < P; ++r) threads.emplace_back(rank_entry, r);
    for (auto& t : threads) t.join();
  }

  {
    // Prefer a rank that failed with its own diagnosis over one that merely
    // observed a peer's failure or the aborted communicator.
    std::exception_ptr chosen;
    for (const std::exception_ptr& err : rank_errors) {
      if (!err) continue;
      if (!chosen) chosen = err;
      try {
        std::rethrow_exception(err);
      } catch (const std::exception& e) {
        const std::string_view what(e.what());
        if (what.find("peer rank") == std::string_view::npos &&
            what.find("communicator aborted") == std::string_view::npos) {
          chosen = err;
          break;
        }
      } catch (...) {
      }
    }
    if (chosen) std::rethrow_exception(chosen);
  }

  result.community = ranks[0].comm;
  result.modularity = core::modularity(g, result.community);
  result.iterations = static_cast<int>(result.iteration_log.size());
  result.wall_seconds = wall_timer.seconds();
  result.devices.reserve(P);
  for (auto& st : ranks) result.devices.push_back(st.timeline);
  return result;
}

DistributedFullResult distributed_louvain(const graph::Graph& g,
                                          const DistributedConfig& config, double level_theta,
                                          int max_levels) {
  DistributedFullResult result;
  Timer timer;
  result.assignment.resize(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) result.assignment[v] = v;

  const graph::Graph* current = &g;
  graph::Graph owned;
  wt_t prev_q = -1;
  // Level-transition scratch shared across the replicated aggregations.
  exec::Workspace level_ws;
  for (int level = 0; level < max_levels; ++level) {
    const DistributedResult phase1 = distributed_phase1(*current, config);
    result.modeled_ms += phase1.modeled_ms();
    ++result.levels;
    const core::AggregationResult agg = core::aggregate(*current, phase1.community, &level_ws);
    if (level > 0 && phase1.modularity - prev_q < level_theta) {
      result.assignment = core::compose_assignment(result.assignment, agg.fine_to_coarse);
      prev_q = phase1.modularity;
      break;
    }
    prev_q = phase1.modularity;
    result.assignment = core::compose_assignment(result.assignment, agg.fine_to_coarse);
    if (agg.num_communities == current->num_vertices()) break;
    owned = std::move(agg.coarse);
    current = &owned;
  }
  result.num_communities = core::renumber_communities(result.assignment);
  result.modularity = prev_q;
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace gala::multigpu
