#include "gala/multigpu/dist_louvain.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <string_view>
#include <thread>

#include "gala/common/timer.hpp"
#include "gala/core/aggregation.hpp"
#include "gala/core/modularity.hpp"
#include "gala/governor/governor.hpp"
#include "gala/memtrace/memtrace.hpp"
#include "gala/multigpu/delta_codec.hpp"
#include "gala/telemetry/flight_recorder.hpp"
#include "gala/telemetry/telemetry.hpp"

namespace gala::multigpu {
namespace {

/// Owner-computed weight-update message: "add delta to d_{C[x]}(x)".
struct WeightMsg {
  vid_t target;
  wt_t delta;
};

/// One frontier mover's emission, staged during the community-sync window:
/// its own-weight accumulation plus the slice [begin, end) of the staged
/// message buffer it produced. Replayed (not recomputed) after the sync.
struct StagedRun {
  wt_t own = 0;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
};

/// State owned by one rank. Community-level arrays are full replicas (kept
/// identical by the sync); weight_ is valid for owned vertices only.
struct RankState {
  graph::VertexRange range;
  std::vector<cid_t> comm;
  std::vector<cid_t> next_comm;
  std::vector<wt_t> comm_total;
  std::vector<vid_t> comm_size;
  std::vector<wt_t> weight;
  std::vector<std::uint8_t> prev_moved;
  std::vector<std::uint8_t> moved;
  std::vector<std::uint8_t> comm_changed;
  std::vector<std::uint8_t> active;
  std::vector<core::Decision> decisions;
  DeviceTimeline timeline;
};

}  // namespace

std::string to_string(SyncMode mode) {
  switch (mode) {
    case SyncMode::Dense:
      return "dense";
    case SyncMode::Sparse:
      return "sparse";
    case SyncMode::Adaptive:
      return "adaptive";
  }
  return "?";
}

DistributedResult distributed_phase1(const graph::Graph& g, const DistributedConfig& config) {
  GALA_CHECK(config.num_gpus >= 1, "need at least one device");
  GALA_CHECK(g.total_weight() > 0, "graph has no edge weight");
  const vid_t n = g.num_vertices();
  const std::size_t P = config.num_gpus;
  const auto ranges = graph::partition_by_edges(g, P);

  Communicator comm_world(P, config.comm_cost);
  std::vector<RankState> ranks(P);
  DistributedResult result;
  result.iteration_log.reserve(64);
  std::mutex log_mutex;

  wt_t sum_self_loops = 0;
  for (vid_t v = 0; v < n; ++v) sum_self_loops += g.self_loop(v);

  memtrace::set_resident("graph.csr", g.memory_bytes());

  // Governor rung 3 is snapshotted once, before the rank threads spawn: the
  // sync mode and compression flag feed collective shapes, so every rank
  // must agree on them for the whole phase-1 call. A mid-phase per-rank read
  // would desynchronise the collectives; escalation instead takes effect at
  // the next level's phase 1.
  const bool governor_sparse = governor::Governor::global().force_sparse_sync();

  Timer wall_timer;

  auto rank_main = [&](std::size_t rank) {
    // Ambient rank for the thread: every span and flight event recorded
    // below lands on this rank's track in the merged Chrome trace.
    telemetry::RankScope rank_scope(static_cast<int>(rank));
    // Correlates each posted gather with its completion across the window:
    // ids are rank-unique (rank in the high word, a running sequence low).
    std::uint64_t flow_seq = 0;
    auto next_flow_id = [&] { return (static_cast<std::uint64_t>(rank) << 32) | ++flow_seq; };
    RankState& st = ranks[rank];
    st.range = ranges[rank];
    st.comm.resize(n);
    st.next_comm.resize(n);
    st.comm_total.resize(n);
    st.comm_size.assign(n, 1);
    st.weight.assign(n, 0);
    st.prev_moved.assign(n, 0);
    st.moved.assign(n, 0);
    st.comm_changed.assign(n, 0);
    st.active.assign(n, 0);
    st.decisions.resize(n);
    for (vid_t v = 0; v < n; ++v) {
      st.comm[v] = v;
      st.comm_total[v] = g.degree(v);
    }

    // The community-sync window may only stage vertices whose every
    // interaction is rank-local; that static frontier is fixed by the
    // partition, so it is computed once per level. The weight-gather window
    // additionally exploits a per-iteration *dynamic* eligibility (computed
    // below once the synced moved flags are known): an owned vertex whose
    // moved neighbours are all rank-local receives weight messages from this
    // rank alone, so those messages can be applied locally (elided from the
    // gather) and its next-iteration prune+decide inputs are final before
    // the gather lands. The static frontier is the subset of vertices that
    // are eligible in every iteration. When nothing is eligible the windows
    // degenerate to the blocking exchange (zero staged work, zero credit).
    const std::vector<vid_t> frontier = graph::local_frontier(g, st.range);
    std::vector<std::uint8_t> frontier_flag(n, 0);
    for (const vid_t v : frontier) frontier_flag[v] = 1;
    std::vector<std::uint8_t> elig_flag(n, 0);  // this iteration's eligible set
    std::vector<std::uint8_t> spec_flag(n, 0);  // set speculated in the last window
    const bool overlap_on = config.overlap;
    // Rung 3 forces sparse+compressed staging even in configurations that
    // asked for dense; with the governor engaged, Dense no longer vetoes
    // compression because the staging is sparse regardless.
    const bool effective_dense = config.sync == SyncMode::Dense && !governor_sparse;
    const bool compress_on = (config.compress || governor_sparse) && !effective_dense;

    // Per-rank execution context: each simulated device owns a private
    // pooled workspace, so the arena pages, hash scratch, and every sync
    // staging buffer below are recycled across the rank's iterations
    // without cross-rank allocator contention.
    exec::ExecutionContext ctx(config.device, config.seed);
    exec::Workspace& ws = ctx.workspace();
    auto arena_pages =
        ws.take<std::byte>(config.device.shared_bytes_per_block, "gpusim.shared_arena");
    gpusim::SharedMemoryArena arena(arena_pages.span());
    core::HashScratch hash_scratch(ws);
    const core::DecideDispatch dispatch{config.kernel, config.hashtable,
                                        config.shuffle_degree_limit};
    const std::uint64_t salt = splitmix64(config.seed ^ 0xabcdef0123456789ULL);

    // Sync staging, reused across every iteration's collective rounds. The
    // enc_* / staged_* / local_msgs buffers are the double-buffer side: one
    // buffer is in flight through the communicator while these hold the
    // window's staged work.
    exec::PooledVec<MoveRecord> local_moves(ws, "multigpu.local_moves");
    exec::PooledVec<MoveRecord> recv_moves(ws, "multigpu.recv_moves");
    exec::PooledVec<cid_t> recv_slices(ws, "multigpu.recv_slices");
    exec::PooledVec<WeightMsg> out_msgs(ws, "multigpu.weight_msgs");
    exec::PooledVec<WeightMsg> recv_msgs(ws, "multigpu.recv_msgs");
    exec::PooledVec<std::byte> enc_moves(ws, "multigpu.enc_moves");
    exec::PooledVec<std::byte> enc_recv(ws, "multigpu.enc_recv");
    exec::PooledVec<WeightMsg> local_msgs(ws, "multigpu.local_weight_msgs");
    exec::PooledVec<WeightMsg> staged_msgs(ws, "multigpu.staged_weight_msgs");
    exec::PooledVec<StagedRun> staged_runs(ws, "multigpu.staged_runs");

    // Iteration-start modularity of the singleton partition.
    wt_t q;
    {
      wt_t sq = 0;
      for (vid_t c = 0; c < n; ++c) {
        const wt_t f = st.comm_total[c] / g.two_m();
        sq += f * f;
      }
      q = 2 * sum_self_loops / g.two_m() - config.resolution * sq;
    }
    wt_t min_total = *std::min_element(st.comm_total.begin(), st.comm_total.end());

    // One mover's weight-update emission (§3.5): accumulate the mover's own
    // e_{v,C} into the return value and hand each (neighbour, delta) message
    // to `sink`. Charged exactly like the eager emission loop, so staged and
    // eager movers cost the same.
    auto emit_move = [&](const MoveRecord& m, gpusim::MemoryStats& stats, auto&& sink) -> wt_t {
      const vid_t u = m.vertex;
      const cid_t old_c = st.comm[u];
      const cid_t new_c = m.community;
      auto nbrs = g.neighbors(u);
      auto wts = g.weights(u);
      wt_t own = 0;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const vid_t x = nbrs[i];
        stats.global_reads += 2;
        if (x == u) continue;
        if (st.next_comm[x] == new_c) own += wts[i];
        if (!st.moved[x]) {
          const cid_t cx = st.comm[x];
          wt_t d = 0;
          if (cx == old_c) d -= wts[i];
          if (cx == new_c) d += wts[i];
          if (d != 0) {
            sink(WeightMsg{x, d});
            stats.global_atomics += 1;
          }
        }
      }
      stats.global_writes += 1;
      return own;
    };

    // Step-5 replica bookkeeping, shared by the blocking path and the
    // weight-gather overlap window (it reads only synced state: moved,
    // comm, next_comm). Charged like the single engine's bookkeeping
    // phase: 4 atomics per mover, an n-read totals/size scan, and an
    // n-read modularity reduction (the sum-of-squares term depends only
    // on post-bookkeeping totals, so it is folded in here and cached for
    // the modularity step).
    wt_t sq_cached = 0;
    auto bookkeeping = [&](gpusim::MemoryStats& stats) {
      std::fill(st.comm_changed.begin(), st.comm_changed.end(), 0);
      for (vid_t v = 0; v < n; ++v) {
        if (!st.moved[v]) continue;
        const cid_t old_c = st.comm[v];
        const cid_t new_c = st.next_comm[v];
        st.comm_total[old_c] -= g.degree(v);
        st.comm_total[new_c] += g.degree(v);
        --st.comm_size[old_c];
        ++st.comm_size[new_c];
        st.comm_changed[old_c] = 1;
        st.comm_changed[new_c] = 1;
        stats.global_atomics += 4;
      }
      st.comm.swap(st.next_comm);
      st.prev_moved.assign(st.moved.begin(), st.moved.end());
      stats.global_reads += st.range.size();

      min_total = std::numeric_limits<wt_t>::max();
      sq_cached = 0;
      for (vid_t c = 0; c < n; ++c) {
        if (st.comm_size[c] > 0) {
          min_total = std::min(min_total, st.comm_total[c]);
          const wt_t f = st.comm_total[c] / g.two_m();
          sq_cached += f * f;
        }
      }
      stats.global_reads += 2 * static_cast<std::uint64_t>(n);
    };

    // Speculative results from the previous iteration's weight-gather
    // window: frontier vertices already carry next-iteration active flags
    // and decisions. A speculation failure is deferred into the next
    // iteration's decide_error so it fails closed at the same collective.
    bool spec_valid = false;
    std::string spec_error;

    for (int iter = 0; iter < config.max_iterations; ++iter) {
      telemetry::flight(telemetry::FlightKind::IterationBegin, static_cast<double>(iter),
                        static_cast<double>(n), static_cast<int>(rank));
      // --- 1+2. Prune + DecideAndMove over the owned range. -------------
      // Frontier vertices may have been decided speculatively during the
      // previous weight gather; everything else goes through the same
      // prune_and_decide trajectory the speculation used.
      //
      // A fault here (injected scratch exhaustion after the in-kernel
      // fallback, or any other error) is rank-local, so it cannot throw
      // directly without deadlocking peers at the next barrier. Instead it
      // is captured and piggybacked on the moved-count reduction below, so
      // every rank learns of it at the same collective and throws together.
      const core::PruningContext prune_ctx{&g,
                                           st.comm,
                                           st.weight,
                                           st.comm_total,
                                           min_total,
                                           g.two_m(),
                                           st.prev_moved,
                                           st.comm_changed,
                                           iter,
                                           config.resolution};
      const std::uint64_t pm_base = splitmix64(config.seed ^ (0x5851f42d4c957f2dULL * iter));
      const bool use_spec = spec_valid;
      std::string decide_error = std::move(spec_error);
      spec_valid = false;
      spec_error.clear();
      const core::DecideInput input{&g, st.comm, st.comm_total, g.two_m(), config.resolution};
      if (decide_error.empty()) {
        try {
          telemetry::ScopedSpan decide_span(telemetry::Tracer::global(), "decide", "multigpu");
          gpusim::MemoryStats stats;
          for (vid_t v = st.range.begin; v < st.range.end; ++v) {
            if (use_spec && spec_flag[v]) continue;  // decided in the window
            st.active[v] = core::prune_and_decide(config.pruning, prune_ctx, config.pm_alpha,
                                                  pm_base, input, v, dispatch, arena, hash_scratch,
                                                  salt, stats, st.decisions[v])
                               ? 1
                               : 0;
          }
          st.timeline.traffic += stats;
          if (decide_span.active()) {
            decide_span.arg("rank", static_cast<double>(rank));
            decide_span.arg("iteration", static_cast<double>(iter));
            gpusim::attach_traffic(decide_span, stats, &config.device.cost_model);
          }
        } catch (const Error& e) {
          decide_error = e.what();
        }
      }

      // Owned moves under the shared guard.
      local_moves.clear();
      if (decide_error.empty()) {
        for (vid_t v = st.range.begin; v < st.range.end; ++v) {
          const cid_t next =
              st.active[v] ? core::apply_move_guard(st.decisions[v], st.comm[v], st.comm_size)
                           : st.comm[v];
          if (next != st.comm[v]) local_moves.push_back({v, next});
        }
      }

      // Compressed sparse sync ships codec frames; encode up front so the
      // adaptive crossover below can compare the real encoded payload.
      enc_moves.clear();
      if (compress_on && !local_moves.empty()) encode_moves(local_moves.span(), enc_moves);

      // --- 3. Community sync: dense vs sparse (§4.3). -------------------
      double moved_total_d = static_cast<double>(local_moves.size());
      double encoded_total_d = 0;
      double active_total_d = 0;
      const bool observe = static_cast<bool>(config.on_iteration);  // same on every rank
      {
        // The observer's global active count rides a 4th reduce slot; the
        // slot exists only when an observer is set, so baseline runs ship
        // exactly the historical byte counts.
        double active_partial = 0;
        if (observe && decide_error.empty()) {
          for (vid_t v = st.range.begin; v < st.range.end; ++v) active_partial += st.active[v];
        }
        double buf[4] = {moved_total_d, decide_error.empty() ? 0.0 : 1.0,
                         static_cast<double>(enc_moves.size()), active_partial};
        const std::size_t nbuf = observe ? 4 : (compress_on ? 3u : 2u);
        comm_world.all_reduce_sum(rank, std::span<double>(buf, nbuf), st.timeline.comm);
        moved_total_d = buf[0];
        encoded_total_d = buf[2];
        active_total_d = buf[3];
        if (buf[1] > 0) {
          // Symmetric fail-closed: every rank throws after the same
          // collective, so nobody is left waiting at a barrier.
          if (!decide_error.empty()) {
            GALA_THROW(CollectiveFault,
                       "decide phase failed on rank " << rank << ": " << decide_error);
          }
          GALA_THROW(CollectiveFault, "decide phase failed on a peer rank");
        }
      }
      const auto moved_total = static_cast<vid_t>(moved_total_d);
      const std::uint64_t raw_sparse_bytes =
          static_cast<std::uint64_t>(moved_total) * sizeof(MoveRecord);
      const std::uint64_t sparse_bytes =
          compress_on ? static_cast<std::uint64_t>(encoded_total_d) : raw_sparse_bytes;
      const std::uint64_t dense_bytes = static_cast<std::uint64_t>(n) * sizeof(cid_t);
      const bool use_sparse = governor_sparse || config.sync == SyncMode::Sparse ||
                              (config.sync == SyncMode::Adaptive && sparse_bytes < dense_bytes);

      // Retry loop around the sync: a CollectiveFault is thrown identically
      // on every rank, so all ranks take the same branch below and stay
      // barrier-aligned — in the posted form too, since complete_gather_v
      // crosses both of the round's barriers before it throws. A failed
      // sparse sync degrades to dense for the retry; a failed dense sync
      // retries as-is. Retries exhausted → the fault propagates (fail
      // closed). Window work staged on the first attempt is reused, not
      // recomputed (and earns no second overlap credit) on retries.
      bool sparse_now = use_sparse;
      bool recovered_dense = false;
      bool staged_ready = false;
      staged_runs.clear();
      staged_msgs.clear();
      for (int sync_attempt = 0;; ++sync_attempt) {
        try {
          // Seed next_comm from the current assignment. The sync payload
          // only reads the owned slice, so with overlap on the remote
          // slices are copied inside the gather window instead; the copy
          // is charged either way (it is a real device-side memcpy).
          if (overlap_on) {
            std::copy(st.comm.begin() + st.range.begin, st.comm.begin() + st.range.end,
                      st.next_comm.begin() + st.range.begin);
            st.timeline.traffic.global_reads += st.range.size();
            st.timeline.traffic.global_writes += st.range.size();
          } else {
            std::copy(st.comm.begin(), st.comm.end(), st.next_comm.begin());
            st.timeline.traffic.global_reads += n;
            st.timeline.traffic.global_writes += n;
          }
          for (const MoveRecord& m : local_moves) st.next_comm[m.vertex] = m.community;
          // Bytes this rank ships into the all-gather (sum over ranks = wire
          // total, matching the iteration log's sparse/dense payload figures).
          const std::uint64_t shipped_bytes =
              sparse_now ? (compress_on ? enc_moves.size()
                                        : local_moves.size() * sizeof(MoveRecord))
                         : st.range.size() * sizeof(cid_t);
          telemetry::ScopedSpan sync_span(telemetry::Tracer::global(),
                                          sparse_now ? "sync_sparse" : "sync_dense", "multigpu");
          const CommStats sync_comm_before = st.timeline.comm;
          if (!overlap_on) {
            telemetry::flight(telemetry::FlightKind::SyncPost, static_cast<double>(iter),
                              static_cast<double>(shipped_bytes), static_cast<int>(rank));
          }
          if (overlap_on) {
            // Post the exchange, then work the local frontier while it is in
            // flight. The staged emissions read only rank-local state, so
            // local moved flags are enough; the full flags are rebuilt from
            // the synced assignment right after the sync.
            std::fill(st.moved.begin(), st.moved.end(), 0);
            for (const MoveRecord& m : local_moves) st.moved[m.vertex] = 1;
            Communicator::PendingGather pending;
            std::uint64_t flow_id = 0;
            {
              telemetry::ScopedSpan post_span(telemetry::Tracer::global(), "post_gather",
                                              "multigpu");
              if (sparse_now && compress_on) {
                pending = comm_world.post_gather_v<std::byte>(rank, enc_moves.span());
              } else if (sparse_now) {
                pending = comm_world.post_gather_v<MoveRecord>(rank, local_moves.span());
              } else {
                pending = comm_world.post_gather_v<cid_t>(
                    rank,
                    std::span<const cid_t>(st.next_comm.data() + st.range.begin, st.range.size()));
              }
              if (post_span.active()) {
                flow_id = next_flow_id();
                post_span.arg("rank", static_cast<double>(rank));
                post_span.arg("iteration", static_cast<double>(iter));
                post_span.arg("bytes", static_cast<double>(shipped_bytes));
                post_span.flow_out(flow_id);
              }
              telemetry::flight(telemetry::FlightKind::SyncPost, static_cast<double>(iter),
                                static_cast<double>(shipped_bytes), static_cast<int>(rank));
            }
            double credit_us = 0;
            if (!staged_ready) {
              gpusim::MemoryStats wstats;
              // Initialise the remote slices of next_comm while the gather
              // is in flight — the posted payload reads only the owned
              // slice, and received contributions land on top afterwards.
              std::copy(st.comm.begin(), st.comm.begin() + st.range.begin,
                        st.next_comm.begin());
              std::copy(st.comm.begin() + st.range.end, st.comm.end(),
                        st.next_comm.begin() + st.range.end);
              wstats.global_reads += n - st.range.size();
              wstats.global_writes += n - st.range.size();
              for (const MoveRecord& m : local_moves) {
                if (!frontier_flag[m.vertex]) continue;
                StagedRun run;
                run.begin = static_cast<std::uint32_t>(staged_msgs.size());
                run.own = emit_move(m, wstats,
                                    [&](const WeightMsg& msg) { staged_msgs.push_back(msg); });
                run.end = static_cast<std::uint32_t>(staged_msgs.size());
                staged_runs.push_back(run);
              }
              staged_ready = true;
              st.timeline.traffic += wstats;
              credit_us = config.device.modeled_ms(wstats) * 1e3;
            }
            {
              telemetry::ScopedSpan comp_span(telemetry::Tracer::global(), "complete_gather",
                                              "multigpu");
              const CommStats comm_before = st.timeline.comm;
              if (sparse_now && compress_on) {
                comm_world.complete_gather_v<std::byte>(std::move(pending), st.timeline.comm,
                                                        enc_recv, credit_us);
                recv_moves.clear();
                decode_moves(enc_recv.span(), n, recv_moves);
                for (const MoveRecord& m : recv_moves) st.next_comm[m.vertex] = m.community;
              } else if (sparse_now) {
                comm_world.complete_gather_v<MoveRecord>(std::move(pending), st.timeline.comm,
                                                         recv_moves, credit_us);
                for (const MoveRecord& m : recv_moves) st.next_comm[m.vertex] = m.community;
              } else {
                comm_world.complete_gather_v<cid_t>(std::move(pending), st.timeline.comm,
                                                    recv_slices, credit_us);
                GALA_ASSERT(recv_slices.size() == n);
                std::copy(recv_slices.begin(), recv_slices.end(), st.next_comm.begin());
              }
              const double wait_delta = st.timeline.comm.wait_us() - comm_before.wait_us();
              if (comp_span.active()) {
                comp_span.arg("rank", static_cast<double>(rank));
                comp_span.arg("iteration", static_cast<double>(iter));
                // Comm-wait attribution for this window: full modeled cost,
                // the slice hidden behind the staged work, and the exposed
                // remainder on the critical path.
                comp_span.arg("modeled_us", st.timeline.comm.modeled_us - comm_before.modeled_us);
                comp_span.arg("hidden_us", st.timeline.comm.hidden_us - comm_before.hidden_us);
                comp_span.arg("wait_us", wait_delta);
                if (flow_id != 0) comp_span.flow_in(flow_id);
              }
              telemetry::flight(telemetry::FlightKind::SyncComplete, static_cast<double>(iter),
                                wait_delta, static_cast<int>(rank));
            }
          } else if (sparse_now && compress_on) {
            comm_world.all_gather_v_into<std::byte>(rank, enc_moves.span(), st.timeline.comm,
                                                    enc_recv);
            recv_moves.clear();
            decode_moves(enc_recv.span(), n, recv_moves);
            for (const MoveRecord& m : recv_moves) st.next_comm[m.vertex] = m.community;
          } else if (sparse_now) {
            comm_world.all_gather_v_into<MoveRecord>(rank, local_moves.span(), st.timeline.comm,
                                                     recv_moves);
            for (const MoveRecord& m : recv_moves) st.next_comm[m.vertex] = m.community;
          } else {
            // Dense: every rank ships its whole owned slice of next_comm.
            comm_world.all_gather_v_into<cid_t>(
                rank,
                std::span<const cid_t>(st.next_comm.data() + st.range.begin, st.range.size()),
                st.timeline.comm, recv_slices);
            GALA_ASSERT(recv_slices.size() == n);
            std::copy(recv_slices.begin(), recv_slices.end(), st.next_comm.begin());
          }
          if (!overlap_on) {
            telemetry::flight(telemetry::FlightKind::SyncComplete, static_cast<double>(iter),
                              st.timeline.comm.wait_us() - sync_comm_before.wait_us(),
                              static_cast<int>(rank));
          }
          if (sync_span.active()) {
            sync_span.arg("rank", static_cast<double>(rank));
            sync_span.arg("iteration", static_cast<double>(iter));
            sync_span.arg("bytes", static_cast<double>(shipped_bytes));
            sync_span.arg("moved_total", moved_total_d);
            sync_span.arg("overlap", overlap_on ? 1.0 : 0.0);
            telemetry::Registry::global().counter("multigpu.sync_bytes").add(shipped_bytes);
            if (sparse_now && compress_on) {
              telemetry::Registry::global()
                  .counter("multigpu.codec_raw_bytes")
                  .add(local_moves.size() * sizeof(MoveRecord));
              telemetry::Registry::global()
                  .counter("multigpu.codec_encoded_bytes")
                  .add(enc_moves.size());
            }
          }
          break;
        } catch (const CollectiveFault&) {
          if (sync_attempt >= config.max_sync_retries) throw;
          if (sparse_now) {
            sparse_now = false;
            recovered_dense = true;
            if (rank == 0) {
              telemetry::Registry::global().counter("multigpu.sync_fallback_dense").add(1);
            }
          }
        }
      }

      vid_t moved_check = 0;
      for (vid_t v = 0; v < n; ++v) {
        st.moved[v] = st.next_comm[v] != st.comm[v] ? 1 : 0;
        moved_check += st.moved[v];
      }
      GALA_ASSERT(moved_check == moved_total);

      // Dynamic eligibility for the weight-gather window: with the synced
      // moved flags in hand, an owned vertex whose moved neighbours are all
      // rank-local is a single-sender target — every weight message it will
      // receive originates here, in this rank's emission order, so applying
      // them locally preserves the gather's floating-point order exactly.
      // Any *subset* of the true eligible set is safe (a non-elided
      // eligible target simply ships through the gather like the blocking
      // path), so the computation is adaptive: when movers are rare (late
      // iterations, where per-collective latency dominates the wait) each
      // remote mover's adjacency marks its owned neighbours ineligible —
      // O(n + deg(remote movers)), charged to compute since it runs on the
      // critical path before the gather posts. When movers are dense the
      // exact set would cost an O(m/P) scan for little elision, so the
      // precomputed static frontier stands in for free.
      if (overlap_on && moved_total > 0) {
        if (static_cast<std::uint64_t>(moved_total) * 8 <= n) {
          gpusim::MemoryStats estats;
          std::fill(elig_flag.begin() + st.range.begin, elig_flag.begin() + st.range.end, 1);
          estats.global_writes += st.range.size();
          for (vid_t u = 0; u < n; ++u) {
            estats.global_reads += 1;
            if (!st.moved[u] || (u >= st.range.begin && u < st.range.end)) continue;
            for (const vid_t x : g.neighbors(u)) {
              estats.global_reads += 1;
              if (x >= st.range.begin && x < st.range.end) {
                elig_flag[x] = 0;
                estats.global_atomics += 1;
              }
            }
          }
          st.timeline.traffic += estats;
        } else {
          std::copy(frontier_flag.begin() + st.range.begin, frontier_flag.begin() + st.range.end,
                    elig_flag.begin() + st.range.begin);
        }
      }

      // --- 4. Owner-computed weight update (§3.5, distributed). ---------
      // Frontier movers were staged during the community-sync window; their
      // runs are replayed here in local_moves order, so per-target message
      // order is exactly the eager loop's. Messages whose target is
      // window-eligible never leave the rank (no other rank can emit to
      // such a target this iteration), trimming the weight-gather payload
      // without perturbing the floating-point application order.
      out_msgs.clear();
      local_msgs.clear();
      {
        gpusim::MemoryStats stats;
        std::size_t run_idx = 0;
        auto route = [&](const WeightMsg& msg) {
          (overlap_on && elig_flag[msg.target] ? local_msgs : out_msgs).push_back(msg);
        };
        for (const MoveRecord& m : local_moves) {
          if (overlap_on && frontier_flag[m.vertex]) {
            const StagedRun& run = staged_runs[run_idx++];
            st.weight[m.vertex] = run.own;
            for (std::uint32_t i = run.begin; i < run.end; ++i) route(staged_msgs[i]);
          } else {
            st.weight[m.vertex] = emit_move(m, stats, route);
          }
        }
        st.timeline.traffic += stats;
      }
      bool window2_done = false;
      for (int wsync_attempt = 0;; ++wsync_attempt) {
        telemetry::ScopedSpan wsync_span(telemetry::Tracer::global(), "sync_weights", "multigpu");
        try {
          if (overlap_on) {
            Communicator::PendingGather pending;
            std::uint64_t flow_id = 0;
            {
              telemetry::ScopedSpan post_span(telemetry::Tracer::global(), "post_gather",
                                              "multigpu");
              pending = comm_world.post_gather_v<WeightMsg>(rank, out_msgs.span());
              if (post_span.active()) {
                flow_id = next_flow_id();
                post_span.arg("rank", static_cast<double>(rank));
                post_span.arg("iteration", static_cast<double>(iter));
                post_span.arg("bytes", static_cast<double>(out_msgs.size() * sizeof(WeightMsg)));
                post_span.flow_out(flow_id);
              }
              telemetry::flight(telemetry::FlightKind::SyncPost, static_cast<double>(iter),
                                static_cast<double>(out_msgs.size() * sizeof(WeightMsg)),
                                static_cast<int>(rank));
            }
            double credit_us = 0;
            if (!window2_done) {
              // Weight-gather window: apply the rank-local (elided)
              // messages, run the replica bookkeeping, and speculate the
              // eligible set's next-iteration prune+decide — all of it
              // reads only state that is final before the gather lands
              // (an eligible vertex's weight is fully updated once the
              // elided messages are applied, and bookkeeping finalises
              // comm/comm_total/comm_changed/prev_moved/min_total).
              gpusim::MemoryStats wstats;
              for (const WeightMsg& msg : local_msgs) {
                st.weight[msg.target] += msg.delta;
                wstats.global_reads += 1;
                wstats.global_writes += 1;
              }
              bookkeeping(wstats);
              if (moved_total > 0) {
                const core::PruningContext next_ctx{&g,
                                                    st.comm,
                                                    st.weight,
                                                    st.comm_total,
                                                    min_total,
                                                    g.two_m(),
                                                    st.prev_moved,
                                                    st.comm_changed,
                                                    iter + 1,
                                                    config.resolution};
                const std::uint64_t next_pm_base =
                    splitmix64(config.seed ^ (0x5851f42d4c957f2dULL * (iter + 1)));
                const core::DecideInput next_input{&g, st.comm, st.comm_total, g.two_m(),
                                                   config.resolution};
                try {
                  for (vid_t v = st.range.begin; v < st.range.end; ++v) {
                    if (!elig_flag[v]) continue;
                    st.active[v] =
                        core::prune_and_decide(config.pruning, next_ctx, config.pm_alpha,
                                               next_pm_base, next_input, v, dispatch, arena,
                                               hash_scratch, salt, wstats, st.decisions[v])
                            ? 1
                            : 0;
                  }
                  spec_valid = true;
                } catch (const Error& e) {
                  // Defer: the next iteration's reduce carries the failure
                  // so every rank throws at the same collective.
                  spec_valid = true;
                  spec_error = e.what();
                }
                // Remember which vertices the window decided; the next
                // iteration's decide loop skips exactly these.
                spec_flag.swap(elig_flag);
              }
              window2_done = true;
              st.timeline.traffic += wstats;
              credit_us = config.device.modeled_ms(wstats) * 1e3;
            }
            {
              telemetry::ScopedSpan comp_span(telemetry::Tracer::global(), "complete_gather",
                                              "multigpu");
              const CommStats comm_before = st.timeline.comm;
              comm_world.complete_gather_v<WeightMsg>(std::move(pending), st.timeline.comm,
                                                      recv_msgs, credit_us);
              const double wait_delta = st.timeline.comm.wait_us() - comm_before.wait_us();
              if (comp_span.active()) {
                comp_span.arg("rank", static_cast<double>(rank));
                comp_span.arg("iteration", static_cast<double>(iter));
                comp_span.arg("modeled_us", st.timeline.comm.modeled_us - comm_before.modeled_us);
                comp_span.arg("hidden_us", st.timeline.comm.hidden_us - comm_before.hidden_us);
                comp_span.arg("wait_us", wait_delta);
                if (flow_id != 0) comp_span.flow_in(flow_id);
              }
              telemetry::flight(telemetry::FlightKind::SyncComplete, static_cast<double>(iter),
                                wait_delta, static_cast<int>(rank));
            }
          } else {
            comm_world.all_gather_v_into<WeightMsg>(rank, out_msgs.span(), st.timeline.comm,
                                                    recv_msgs);
          }
        } catch (const CollectiveFault&) {
          // The gather throws before any message is applied, so a straight
          // re-gather is safe (and symmetric across ranks). Staged window
          // work survives the retry untouched.
          if (wsync_attempt >= config.max_sync_retries) throw;
          continue;
        }
        for (const WeightMsg& msg : recv_msgs) {
          if (msg.target >= st.range.begin && msg.target < st.range.end && !st.moved[msg.target]) {
            st.weight[msg.target] += msg.delta;
            st.timeline.traffic.global_reads += 1;
            st.timeline.traffic.global_writes += 1;
          }
        }
        if (wsync_span.active()) {
          const std::uint64_t shipped = out_msgs.size() * sizeof(WeightMsg);
          wsync_span.arg("rank", static_cast<double>(rank));
          wsync_span.arg("iteration", static_cast<double>(iter));
          wsync_span.arg("bytes", static_cast<double>(shipped));
          telemetry::Registry::global().counter("multigpu.weight_sync_bytes").add(shipped);
        }
        break;
      }

      // --- 5. Apply + bookkeeping on the replica. ------------------------
      // With overlap on this already ran inside the weight-gather window.
      if (!overlap_on) {
        gpusim::MemoryStats stats;
        bookkeeping(stats);
        st.timeline.traffic += stats;
      }

      // --- 6. Modularity: owned internal partial + replicated totals. The
      // sum-of-squares term was computed (and charged) in bookkeeping.
      wt_t internal_partial = 0;
      for (vid_t v = st.range.begin; v < st.range.end; ++v) {
        internal_partial += st.weight[v] + 2 * g.self_loop(v);
      }
      st.timeline.traffic.global_reads += st.range.size();
      {
        double buf[1] = {internal_partial};
        comm_world.all_reduce_sum(rank, std::span<double>(buf, 1), st.timeline.comm);
        internal_partial = buf[0];
      }
      const wt_t next_q = internal_partial / g.two_m() - config.resolution * sq_cached;
      const wt_t dq = next_q - q;
      q = next_q;

      if (rank == 0) {
        std::lock_guard lock(log_mutex);
        result.iteration_log.push_back({moved_total, sparse_now,
                                        sparse_now ? sparse_bytes : dense_bytes,
                                        sparse_now ? raw_sparse_bytes : dense_bytes, q, dq,
                                        recovered_dense});
      }
      if (rank == 0 && observe) {
        // Globally-reduced stats over the synced replica: identical numbers
        // regardless of sync mode, overlap, or compression, so health
        // reports stay byte-identical across communication configs.
        core::IterationStats is;
        is.active = static_cast<vid_t>(active_total_d);
        is.moved = moved_total;
        is.modularity = q;
        is.delta_q = dq;
        config.on_iteration(iter, is, {}, {}, std::span<const cid_t>(st.comm.data(), n));
      }
      if (rank == 0) {
        telemetry::flight(telemetry::FlightKind::IterationEnd, q, dq, 0);
        // Residency snapshot while every other rank is parked at the barrier
        // below: the cross-rank live set is quiescent, so the timeline is
        // identical across sync modes and host scheduling.
        memtrace::mark_epoch(memtrace::EpochKind::Iteration, iter);
      }
      comm_world.barrier();  // iteration_log visible before anyone proceeds

      if (moved_total == 0 || dq < config.theta) break;
    }

    st.timeline.compute_modeled_ms =
        config.device.modeled_ms(st.timeline.traffic);
    st.timeline.workspace = ws.stats();
    telemetry::Registry::global()
        .counter("multigpu.overlap_hidden_us")
        .add(static_cast<std::uint64_t>(st.timeline.comm.hidden_us));
    if (rank == 0) {
      telemetry::Registry::global()
          .gauge("multigpu.overlap_ratio")
          .set(st.timeline.comm.overlap_ratio());
    }
  };

  // Supervision net: a rank that unwinds past rank_main stores its
  // exception and aborts the communicator (arrive_and_drop), so peers
  // blocked at a barrier are released and fail at their next collective
  // entry instead of deadlocking. After the join the most informative
  // failure is rethrown as the run's structured error.
  std::vector<std::exception_ptr> rank_errors(P);
  auto rank_entry = [&](std::size_t rank) {
    try {
      rank_main(rank);
    } catch (const std::exception& e) {
      rank_errors[rank] = std::current_exception();
      comm_world.abort(e.what());
    } catch (...) {
      rank_errors[rank] = std::current_exception();
      comm_world.abort("unknown error");
    }
  };

  if (P == 1) {
    rank_entry(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(P);
    for (std::size_t r = 0; r < P; ++r) threads.emplace_back(rank_entry, r);
    for (auto& t : threads) t.join();
  }

  {
    // Prefer a rank that failed with its own diagnosis over one that merely
    // observed a peer's failure or the aborted communicator.
    std::exception_ptr chosen;
    for (const std::exception_ptr& err : rank_errors) {
      if (!err) continue;
      if (!chosen) chosen = err;
      try {
        std::rethrow_exception(err);
      } catch (const std::exception& e) {
        const std::string_view what(e.what());
        if (what.find("peer rank") == std::string_view::npos &&
            what.find("communicator aborted") == std::string_view::npos) {
          chosen = err;
          break;
        }
      } catch (...) {
      }
    }
    if (chosen) std::rethrow_exception(chosen);
  }

  result.community = ranks[0].comm;
  result.modularity = core::modularity(g, result.community);
  result.iterations = static_cast<int>(result.iteration_log.size());
  result.wall_seconds = wall_timer.seconds();
  result.devices.reserve(P);
  for (auto& st : ranks) result.devices.push_back(st.timeline);
  return result;
}

DistributedFullResult distributed_louvain(const graph::Graph& g,
                                          const DistributedConfig& config, double level_theta,
                                          int max_levels) {
  DistributedFullResult result;
  Timer timer;
  result.assignment.resize(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) result.assignment[v] = v;

  const graph::Graph* current = &g;
  graph::Graph owned;
  wt_t prev_q = -1;
  // Level-transition scratch shared across the replicated aggregations.
  exec::Workspace level_ws;
  for (int level = 0; level < max_levels; ++level) {
    const DistributedResult phase1 = distributed_phase1(*current, config);
    result.modeled_ms += phase1.modeled_ms();
    ++result.levels;
    const core::AggregationResult agg = core::aggregate(*current, phase1.community, &level_ws);
    if (level > 0 && phase1.modularity - prev_q < level_theta) {
      result.assignment = core::compose_assignment(result.assignment, agg.fine_to_coarse);
      prev_q = phase1.modularity;
      break;
    }
    prev_q = phase1.modularity;
    result.assignment = core::compose_assignment(result.assignment, agg.fine_to_coarse);
    if (agg.num_communities == current->num_vertices()) break;
    owned = std::move(agg.coarse);
    current = &owned;
  }
  result.num_communities = core::renumber_communities(result.assignment);
  result.modularity = prev_q;
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace gala::multigpu
